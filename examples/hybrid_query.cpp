/**
 * @file
 * Hybrid-scheme encrypted analytics — a miniature of the HE3DB
 * workload the paper's Table X evaluates: logic-side filtering with
 * TFHE gates, arithmetic-side aggregation with CKKS, and the scheme
 * conversion (Algorithms 3-5) that moves data between the two worlds.
 *
 * Pipeline demonstrated functionally:
 *   1. TFHE: evaluate `quantity < threshold` per row with a bitwise
 *      comparator circuit (gate bootstrapping).
 *   2. CKKS: slot-wise revenue = price * discount and a rotate-and-sum
 *      aggregation.
 *   3. Conversion: extract CKKS coefficients as LWEs (Algorithm 3) and
 *      repack LWEs into an RLWE (Algorithms 4-5).
 */

#include <cstdio>
#include <memory>

#include "conv/conversion.h"
#include "tfhe/gates.h"

using namespace trinity;

namespace {

/** Encrypted 4-bit unsigned comparator: returns [[a < b]]. */
LweCiphertext
encryptedLess(TfheGateBootstrapper &gb,
              const std::vector<LweCiphertext> &a,
              const std::vector<LweCiphertext> &b)
{
    // MSB-first ripple comparator: lt = (~a_i & b_i) | (eq_i & lt_next)
    LweCiphertext lt = gb.encryptBit(false);
    for (size_t i = a.size(); i-- > 0;) {
        // Process from LSB upward: lt = (b_i & ~a_i) | (~(a_i ^ b_i) & lt)
        auto not_a = gb.gateNot(a[i]);
        auto bigger = gb.gateAnd(b[i], not_a);
        auto eq = gb.gateNot(gb.gateXor(a[i], b[i]));
        lt = gb.gateOr(bigger, gb.gateAnd(eq, lt));
    }
    return lt;
}

std::vector<LweCiphertext>
encryptNibble(TfheGateBootstrapper &gb, unsigned v)
{
    std::vector<LweCiphertext> bits;
    for (int i = 0; i < 4; ++i) {
        bits.push_back(gb.encryptBit((v >> i) & 1));
    }
    return bits;
}

} // namespace

int
main()
{
    std::printf("== Hybrid encrypted query (mini HE3DB) ==\n\n");

    // ---- 1. TFHE filter: quantity < 10 ------------------------------
    TfheGateBootstrapper gb(TfheParams::testTiny(), 777);
    unsigned quantities[] = {4, 12, 9, 15};
    unsigned threshold = 10;
    auto thr_bits = encryptNibble(gb, threshold);
    std::printf("TFHE filter (quantity < %u):\n", threshold);
    bool mask[4];
    for (int r = 0; r < 4; ++r) {
        auto q_bits = encryptNibble(gb, quantities[r]);
        auto lt = encryptedLess(gb, q_bits, thr_bits);
        mask[r] = gb.decryptBit(lt);
        std::printf("  row %d: quantity=%2u -> %s\n", r, quantities[r],
                    mask[r] ? "MATCH" : "no");
    }

    // ---- 2. CKKS aggregation: sum(price * discount) -----------------
    auto ctx = std::make_shared<CkksContext>(CkksParams::testSmall());
    CkksKeyGenerator keygen(ctx, 778);
    CkksEncoder encoder(ctx);
    CkksEncryptor enc(ctx, keygen.makePublicKey(), 779);
    CkksEvaluator eval(ctx);
    auto relin = keygen.makeRelinKey();
    auto rot1 = keygen.makeRotationKey(1);
    auto rot2 = keygen.makeRotationKey(2);

    std::vector<cd> price = {cd(10, 0), cd(20, 0), cd(30, 0), cd(40, 0)};
    std::vector<cd> disc = {cd(0.05, 0), cd(0.07, 0), cd(0.01, 0),
                            cd(0.06, 0)};
    // Apply the (decrypted-for-demo) filter mask as a plaintext.
    std::vector<cd> mask_v(4);
    for (int r = 0; r < 4; ++r) {
        mask_v[r] = cd(mask[r] ? 1.0 : 0.0, 0);
    }
    size_t level = ctx->params().maxLevel;
    auto ct_price = enc.encrypt(encoder.encode(price, level));
    auto revenue =
        eval.multiply(ct_price,
                      enc.encrypt(encoder.encode(disc, level)), relin);
    eval.rescaleInPlace(revenue);
    revenue = eval.mulPlain(revenue,
                            encoder.encode(mask_v, revenue.level));
    eval.rescaleInPlace(revenue);
    // Rotate-and-sum across 4 slots.
    auto acc = eval.add(revenue, eval.rotate(revenue, 1, rot1));
    acc = eval.add(acc, eval.rotate(acc, 2, rot2));
    auto out = encoder.decode(enc.decrypt(acc, keygen.secretKey()));
    double expect = 0;
    for (int r = 0; r < 4; ++r) {
        if (mask[r]) {
            expect += price[r].real() * disc[r].real();
        }
    }
    std::printf("\nCKKS aggregation: sum(price*discount | match) = "
                "%.4f (expected %.4f)\n",
                out[0].real(), expect);

    // ---- 3. Scheme conversion round trip ----------------------------
    LwePacker packer(ctx, keygen);
    u64 q0 = ctx->qChain()[0];
    std::vector<i64> coeffs(ctx->n(), 0);
    coeffs[0] = static_cast<i64>(q0 / 16);
    coeffs[1] = static_cast<i64>(q0 / 32);
    CkksPlaintext pt;
    pt.poly = RnsPoly::fromSigned(coeffs, ctx->n(), ctx->qTo(0));
    pt.level = 0;
    pt.scale = 1.0;
    auto rlwe = enc.encrypt(pt);
    auto lwes = ckksToTfhe(rlwe, 2); // Algorithm 3
    auto repacked = packer.tfheToCkks(lwes); // Algorithms 4-5
    auto dec = enc.decrypt(repacked, keygen.secretKey());
    Modulus m(q0);
    u64 got = dec.poly.limb(0)[0];
    u64 want = m.mul(toResidue(coeffs[0], q0),
                     m.reduce(static_cast<u64>(ctx->n())));
    std::printf("\nConversion round trip: coefficient 0 holds N*m0 "
                "(err %lld, bound %llu)\n",
                static_cast<long long>(
                    centeredRep(m.sub(got, want), q0)),
                static_cast<unsigned long long>(q0 / 256));
    std::printf("\nDone.\n");
    return 0;
}
