/**
 * @file
 * Quickstart: encrypted SIMD arithmetic with CKKS, a TFHE boolean
 * gate, and a Trinity latency estimate for each operation — the three
 * pillars of the library in ~100 lines.
 *
 * Build & run:  ./examples/quickstart
 */

#include <cstdio>
#include <memory>

#include "accel/configs.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "ckks/evaluator.h"
#include "tfhe/gates.h"
#include "workload/apps.h"
#include "workload/tfhe_ops.h"

using namespace trinity;

int
main()
{
    std::printf("== Trinity quickstart ==\n\n");

    // --- CKKS: encrypted vector arithmetic ---------------------------
    auto ctx = std::make_shared<CkksContext>(CkksParams::testSmall());
    CkksKeyGenerator keygen(ctx, 42);
    CkksEncoder encoder(ctx);
    CkksEncryptor enc(ctx, keygen.makePublicKey(), 43);
    CkksEvaluator eval(ctx);
    auto relin = keygen.makeRelinKey();

    std::vector<cd> xs = {cd(1.5, 0), cd(-2.0, 0), cd(0.25, 0)};
    std::vector<cd> ys = {cd(2.0, 0), cd(0.5, 0), cd(4.0, 0)};
    size_t level = ctx->params().maxLevel;
    auto ct_x = enc.encrypt(encoder.encode(xs, level));
    auto ct_y = enc.encrypt(encoder.encode(ys, level));

    auto ct_sum = eval.add(ct_x, ct_y);
    auto ct_prod = eval.multiply(ct_x, ct_y, relin);
    eval.rescaleInPlace(ct_prod);

    auto sum = encoder.decode(enc.decrypt(ct_sum, keygen.secretKey()));
    auto prod =
        encoder.decode(enc.decrypt(ct_prod, keygen.secretKey()));
    std::printf("CKKS SIMD:  x + y = [%.3f, %.3f, %.3f]\n",
                sum[0].real(), sum[1].real(), sum[2].real());
    std::printf("            x * y = [%.3f, %.3f, %.3f]\n",
                prod[0].real(), prod[1].real(), prod[2].real());

    // --- TFHE: an encrypted logic gate -------------------------------
    TfheGateBootstrapper gb(TfheParams::testTiny(), 44);
    auto bit_a = gb.encryptBit(true);
    auto bit_b = gb.encryptBit(false);
    std::printf("\nTFHE logic: NAND(1,0) = %d, AND(1,0) = %d, "
                "XOR(1,0) = %d\n",
                gb.decryptBit(gb.gateNand(bit_a, bit_b)),
                gb.decryptBit(gb.gateAnd(bit_a, bit_b)),
                gb.decryptBit(gb.gateXor(bit_a, bit_b)));

    // --- Live timing: the same computation, accelerator cycles ------
    // Re-run the multiply under the simulated-accelerator timing
    // backend: one code path produces the verified ciphertext AND
    // charges every kernel batch to the Trinity machine model.
    {
        auto &reg = BackendRegistry::instance();
        reg.use(std::make_unique<SimBackend>(reg.create("serial"),
                                             accel::trinityCkks(4)));
        SimBackend &sb = *activeSimBackend();
        sb.ledger().reset();
        auto ct_timed = eval.multiply(ct_x, ct_y, relin);
        eval.rescaleInPlace(ct_timed);
        double us = sb.seconds(sb.ledger().latencyCycles()) * 1e6;
        std::printf("\nLive-timed on Trinity (TRINITY_BACKEND=sim):\n");
        std::printf("  HMult+Rescale at N=2^10, L=%zu "
                    "...... %.2f us (%.0f compute / %.0f transfer "
                    "cycles)\n",
                    ctx->params().maxLevel, us,
                    sb.ledger().computeCycles(),
                    sb.ledger().transferCycles());
        reg.select("serial");
    }

    // --- Trinity: what would the accelerator do? ---------------------
    auto trinity_ckks = accel::trinityCkks(4);
    workload::CkksShape shape{1ULL << 16, 35, 35, 3};
    auto hmult = workload::hmultGraph(shape);
    double hmult_us =
        trinity_ckks.seconds(
            sim::schedule(hmult, trinity_ckks).makespanCycles) *
        1e6;
    auto trinity_tfhe = accel::trinityTfhe(4);
    double pbs_ops = workload::pbsThroughputOps(trinity_tfhe,
                                                TfheParams::setIII());
    std::printf("\nOn Trinity (simulated, paper parameters):\n");
    std::printf("  one CKKS HMult at L=35 ....... %.1f us\n", hmult_us);
    std::printf("  TFHE PBS throughput (Set-III)  %.0f ops/s\n",
                pbs_ops);
    std::printf("\nDone.\n");
    return 0;
}
