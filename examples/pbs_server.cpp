/**
 * @file
 * Serving-runtime demo: several client threads fire independent
 * encrypted-gate requests at a PbsServer, which coalesces them into
 * fused batched-PBS job streams (Trinity's CU bootstrap batching).
 * Prints the queue policy in effect, the achieved batch shapes, and
 * the throughput against a sequential per-call run of the same work.
 *
 * A second act runs the multi-tenant fleet on the tiny parameter set:
 * four tenants' keys behind a budgeted KeyStore, two key-affine
 * shards, and interleaved tenant traffic — the docs/SERVING.md
 * example, live.
 *
 * Knobs: TRINITY_BACKEND (engine), TRINITY_RUNTIME_BATCH,
 * TRINITY_RUNTIME_MAX_WAIT_US (queue policy). Set
 * TRINITY_TRACE=<path> to capture a Chrome trace of the run (per-op
 * spans, per-worker job timelines on threads, the priced virtual-time
 * schedule on sim); the run ends with an obs::MetricsRegistry dump of
 * the serving latency histograms and kernel dispatch counters.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "backend/registry.h"
#include "common/modarith.h"
#include "obs/metrics.h"
#include "runtime/sharded_server.h"

using namespace trinity;

namespace {

/** Act two: a sharded multi-tenant fleet under keystore pressure. */
size_t
multiTenantDemo()
{
    std::printf("\n== Multi-tenant sharded serving (test-tiny) ==\n");
    auto ctx =
        std::make_shared<TfheContext>(TfheParams::testTiny(), 777);
    TfheBootstrapper boot(ctx);
    const size_t tenants = 4;
    std::vector<runtime::TenantKeyMaterial> keys;
    for (size_t i = 0; i < tenants; ++i) {
        keys.push_back(runtime::TenantKeyMaterial::generate(*ctx, boot));
    }
    runtime::ShardedOptions opts;
    opts.shards = 2;
    // Budget for two resident tenants fleet-wide: the other two
    // evict/refault as traffic alternates.
    opts.keystoreBudgetBytes =
        2 * runtime::KeyStore::residentBytesFor(ctx->params());
    opts.server.maxWaitUs = 200;
    runtime::ShardedPbsServer server(
        ctx,
        [&keys](runtime::TenantId t)
            -> const runtime::TenantKeyMaterial & {
            return keys[static_cast<size_t>(t)];
        },
        opts);
    std::printf("tenants=%zu shards=%zu budget=%.1f MB "
                "(%.1f MB per tenant)\n",
                tenants, server.shards(),
                static_cast<double>(opts.keystoreBudgetBytes) / 1e6,
                static_cast<double>(runtime::KeyStore::residentBytesFor(
                    ctx->params())) /
                    1e6);

    size_t wrong = 0;
    const size_t rounds = 3;
    u64 mu = ctx->params().q / 8;
    for (size_t r = 0; r < rounds; ++r) {
        std::vector<std::future<LweCiphertext>> futures;
        std::vector<bool> sent;
        for (size_t t = 0; t < tenants; ++t) {
            bool b = ((r + t) % 3) != 1;
            sent.push_back(b);
            u64 m = b ? mu : ctx->modulus().neg(mu);
            futures.push_back(server.submit(
                t, ctx->lweEncrypt(m, keys[t].lweKey)));
        }
        for (size_t t = 0; t < tenants; ++t) {
            u64 phase =
                ctx->lwePhase(futures[t].get(), keys[t].lweKey);
            if ((centeredRep(phase, ctx->q()) > 0) != sent[t]) {
                ++wrong;
            }
        }
    }
    runtime::ShardedStats stats = server.stats();
    std::printf("served %llu requests; keystore: %.0f%% hits, "
                "%llu materializations, %llu evictions\n",
                static_cast<unsigned long long>(stats.serving.requests),
                100.0 * stats.keystore.hitRate(),
                static_cast<unsigned long long>(
                    stats.keystore.materializations),
                static_cast<unsigned long long>(
                    stats.keystore.evictions));
    std::printf("wrong results: %zu of %zu\n", wrong, rounds * tenants);
    return wrong;
}

} // namespace

int
main()
{
    const size_t clients = 4;
    const size_t per_client = 8;
    const size_t total = clients * per_client;

    std::printf("== Batched-PBS serving runtime ==\n");
    std::printf("engine: %s, keygen (Set-I)...\n",
                activeBackend().name());
    TfheGateBootstrapper gb(TfheParams::setI(), 424242);

    // Encrypt every client's request bits up front (the context RNG
    // is not thread-safe; serving is, submission happens per thread).
    std::vector<std::vector<LweCiphertext>> inputs(clients);
    std::vector<std::vector<bool>> bits(clients);
    for (size_t c = 0; c < clients; ++c) {
        for (size_t i = 0; i < per_client; ++i) {
            bool b = ((c * per_client + i) % 3) != 0;
            bits[c].push_back(b);
            inputs[c].push_back(gb.encryptBit(b));
        }
    }

    // Sequential reference: the same refreshes, one call at a time.
    auto t0 = std::chrono::steady_clock::now();
    for (size_t c = 0; c < clients; ++c) {
        for (auto &ct : inputs[c]) {
            (void)gb.bootstrapSign(ct);
        }
    }
    double seq_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    runtime::PbsServer server(gb);
    std::printf("queue policy: maxBatch=%zu, maxWaitUs=%llu\n",
                server.maxBatch(),
                static_cast<unsigned long long>(
                    server.options().maxWaitUs));

    auto t1 = std::chrono::steady_clock::now();
    size_t wrong = 0;
    {
        std::vector<std::thread> workers;
        std::mutex merge;
        for (size_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                std::vector<std::future<LweCiphertext>> futures;
                for (auto &ct : inputs[c]) {
                    futures.push_back(server.submit(ct));
                }
                size_t bad = 0;
                for (size_t i = 0; i < futures.size(); ++i) {
                    if (gb.decryptBit(futures[i].get()) != bits[c][i]) {
                        ++bad;
                    }
                }
                std::lock_guard<std::mutex> lk(merge);
                wrong += bad;
            });
        }
        for (auto &w : workers) {
            w.join();
        }
    }
    double served_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t1)
                           .count();

    runtime::ServerStats stats = server.stats();
    std::printf("served %llu requests in %llu batches "
                "(avg %.1f, largest %llu)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.batches),
                stats.avgBatch(),
                static_cast<unsigned long long>(stats.largestBatch));
    std::printf("sequential: %.0f ms (%.1f OPS)\n", seq_ms,
                1000.0 * total / seq_ms);
    std::printf("served    : %.0f ms (%.1f OPS), speedup %.2fx\n",
                served_ms, 1000.0 * total / served_ms,
                seq_ms / served_ms);
    std::printf("wrong results: %zu of %zu\n", wrong, total);

    wrong += multiTenantDemo();

    std::printf("\n-- metrics (obs::MetricsRegistry) --\n");
    obs::MetricsRegistry::instance().dump(stdout);
    return wrong == 0 ? 0 : 1;
}
