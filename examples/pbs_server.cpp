/**
 * @file
 * Serving-runtime demo: several client threads fire independent
 * encrypted-gate requests at a PbsServer, which coalesces them into
 * fused batched-PBS job streams (Trinity's CU bootstrap batching).
 * Prints the queue policy in effect, the achieved batch shapes, and
 * the throughput against a sequential per-call run of the same work.
 *
 * Knobs: TRINITY_BACKEND (engine), TRINITY_RUNTIME_BATCH,
 * TRINITY_RUNTIME_MAX_WAIT_US (queue policy). Set
 * TRINITY_TRACE=<path> to capture a Chrome trace of the run (per-op
 * spans, per-worker job timelines on threads, the priced virtual-time
 * schedule on sim); the run ends with an obs::MetricsRegistry dump of
 * the serving latency histograms and kernel dispatch counters.
 */

#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "backend/registry.h"
#include "obs/metrics.h"
#include "runtime/pbs_server.h"

using namespace trinity;

int
main()
{
    const size_t clients = 4;
    const size_t per_client = 8;
    const size_t total = clients * per_client;

    std::printf("== Batched-PBS serving runtime ==\n");
    std::printf("engine: %s, keygen (Set-I)...\n",
                activeBackend().name());
    TfheGateBootstrapper gb(TfheParams::setI(), 424242);

    // Encrypt every client's request bits up front (the context RNG
    // is not thread-safe; serving is, submission happens per thread).
    std::vector<std::vector<LweCiphertext>> inputs(clients);
    std::vector<std::vector<bool>> bits(clients);
    for (size_t c = 0; c < clients; ++c) {
        for (size_t i = 0; i < per_client; ++i) {
            bool b = ((c * per_client + i) % 3) != 0;
            bits[c].push_back(b);
            inputs[c].push_back(gb.encryptBit(b));
        }
    }

    // Sequential reference: the same refreshes, one call at a time.
    auto t0 = std::chrono::steady_clock::now();
    for (size_t c = 0; c < clients; ++c) {
        for (auto &ct : inputs[c]) {
            (void)gb.bootstrapSign(ct);
        }
    }
    double seq_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();

    runtime::PbsServer server(gb);
    std::printf("queue policy: maxBatch=%zu, maxWaitUs=%llu\n",
                server.maxBatch(),
                static_cast<unsigned long long>(
                    server.options().maxWaitUs));

    auto t1 = std::chrono::steady_clock::now();
    size_t wrong = 0;
    {
        std::vector<std::thread> workers;
        std::mutex merge;
        for (size_t c = 0; c < clients; ++c) {
            workers.emplace_back([&, c] {
                std::vector<std::future<LweCiphertext>> futures;
                for (auto &ct : inputs[c]) {
                    futures.push_back(server.submit(ct));
                }
                size_t bad = 0;
                for (size_t i = 0; i < futures.size(); ++i) {
                    if (gb.decryptBit(futures[i].get()) != bits[c][i]) {
                        ++bad;
                    }
                }
                std::lock_guard<std::mutex> lk(merge);
                wrong += bad;
            });
        }
        for (auto &w : workers) {
            w.join();
        }
    }
    double served_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t1)
                           .count();

    runtime::ServerStats stats = server.stats();
    std::printf("served %llu requests in %llu batches "
                "(avg %.1f, largest %llu)\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.batches),
                stats.avgBatch(),
                static_cast<unsigned long long>(stats.largestBatch));
    std::printf("sequential: %.0f ms (%.1f OPS)\n", seq_ms,
                1000.0 * total / seq_ms);
    std::printf("served    : %.0f ms (%.1f OPS), speedup %.2fx\n",
                served_ms, 1000.0 * total / served_ms,
                seq_ms / served_ms);
    std::printf("wrong results: %zu of %zu\n", wrong, total);
    std::printf("\n-- metrics (obs::MetricsRegistry) --\n");
    obs::MetricsRegistry::instance().dump(stdout);
    return wrong == 0 ? 0 : 1;
}
