/**
 * @file
 * Design-space exploration with the Trinity simulator — the Fig. 15/16
 * sensitivity study as an interactive tool: sweep the cluster count
 * and print performance, area, and power side by side, plus the
 * per-pool utilization that explains each configuration.
 */

#include <cstdio>

#include "accel/area.h"
#include "accel/configs.h"
#include "backend/registry.h"
#include "backend/simd_kernels.h"
#include "workload/apps.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::workload;

int
main()
{
    std::printf("== Trinity design-space explorer ==\n\n");
    std::printf("execution engines (TRINITY_BACKEND): %s\n",
                BackendRegistry::instance().listEngines().c_str());
    std::printf("simd levels (TRINITY_SIMD_LEVEL): %s (auto: %s)\n",
                simd::availableLevels().c_str(),
                simd::levelName(simd::bestAvailableLevel()));
    std::printf("machine configs (TRINITY_SIM_MACHINE):");
    for (const auto &name : accel::machineNames()) {
        std::printf(" %s", name.c_str());
    }
    std::printf("\n\n");
    std::printf("%-9s %12s %12s %12s %10s %10s %12s\n", "clusters",
                "Bootstrap", "PBS Set-I", "PBS Set-III", "area",
                "power", "perf/area");
    std::printf("%-9s %12s %12s %12s %10s %10s %12s\n", "", "(ms)",
                "(kOPS)", "(kOPS)", "(mm2)", "(W)", "(kOPS/mm2)");
    for (size_t c : {1u, 2u, 4u, 8u}) {
        auto ckks = accel::trinityCkks(c);
        auto tfhe = accel::trinityTfhe(c);
        accel::AreaModel area(c);
        double boot = ckksAppMs(ckks, packedBootstrap());
        double pbs1 =
            pbsThroughputOps(tfhe, TfheParams::setI()) / 1e3;
        double pbs3 =
            pbsThroughputOps(tfhe, TfheParams::setIII()) / 1e3;
        std::printf("%-9zu %12.2f %12.0f %12.0f %10.1f %10.1f %12.2f\n",
                    c, boot, pbs1, pbs3, area.totalArea(),
                    area.totalPower(), pbs3 / area.totalArea());
    }

    std::printf("\nPer-pool utilization, 4-cluster Trinity:\n");
    auto m = accel::trinityCkks(4);
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        auto r = runCkksApp(m, app);
        std::printf("  %-11s", app.name.c_str());
        for (const char *pool : {"NTTU", "CU", "EWE", "AUTOU"}) {
            std::printf("  %s=%4.1f%%", pool,
                        100 * r.utilization(pool));
        }
        std::printf("\n");
    }
    std::printf("\nThe knee: 4 clusters balance perf/area; 8 clusters "
                "double area for ~2x speed (Fig. 15/16).\n");
    return 0;
}
