/**
 * @file
 * PIR serving demo, client and server in one process: two tenants
 * register databases behind a budgeted PirDbStore, each client
 * encrypts a record index into a single RLWE query, the PirServer
 * answers through the full pipeline (oblivious expansion, RLWE->GSW
 * conversion, CommandStream first-dimension fold, CMux tree, modulus
 * switch), and every response is decrypted and verified against the
 * addressed record. The server never sees an index or a secret key —
 * only the uploaded query/key ciphertexts.
 *
 * Knobs: TRINITY_BACKEND (engine), TRINITY_PIR_DB_BYTES (residency
 * budget), TRINITY_PIR_FOLD_CHUNK (fold chunking),
 * TRINITY_RUNTIME_* (queue policy). Set TRINITY_TRACE=<path> for a
 * Chrome trace; the run ends with an obs::MetricsRegistry dump of the
 * serving histograms and kernel counters.
 */

#include <cstdio>
#include <future>
#include <vector>

#include "backend/registry.h"
#include "obs/metrics.h"
#include "runtime/pir_server.h"

using namespace trinity;

int
main()
{
    pir::PirParams pp = pir::PirParams::testTiny();
    std::printf("== PIR serving runtime ==\n");
    std::printf("engine: %s, params: N=%zu, records=%zu "
                "(%zu x 2^%u), %u-bit coefficients\n",
                activeBackend().name(), pp.tfhe.bigN, pp.records(),
                pp.dim1, pp.gswDims, pp.logP);

    // Each tenant is its own client: own secret key, own uploaded
    // query keys, own registered database.
    const size_t tenants = 2;
    std::vector<pir::PirClient> clients;
    std::vector<pir::PirQueryKeys> keys;
    std::vector<pir::PirDatabase> dbs;
    for (size_t t = 0; t < tenants; ++t) {
        clients.emplace_back(pp, 0xab1e + t);
        keys.push_back(clients[t].makeQueryKeys());
        dbs.push_back(pir::PirDatabase::random(pp, 0xdb + t));
    }
    std::printf("query upload: %zu ring elements; response: %zu "
                "bytes for a %zu-byte record\n",
                size_t(1),
                pp.responseBytes(),
                pp.recordBytes());

    pir::PirDbStore store(
        clients[0].ctx(),
        [&dbs](pir::PirTenantId t) -> const pir::PirDatabase & {
            return dbs[static_cast<size_t>(t)];
        },
        pir::PirDbStore::budgetFromEnv(0));
    runtime::PirServer server(
        clients[0].sharedCtx(), pp, store,
        [&keys](pir::PirTenantId t) -> const pir::PirQueryKeys & {
            return keys[static_cast<size_t>(t)];
        });
    std::printf("queue policy: maxBatch=%zu, maxWaitUs=%llu; "
                "db residency budget=%zu bytes (0 = unbounded)\n",
                server.maxBatch(),
                static_cast<unsigned long long>(
                    server.options().maxWaitUs),
                store.budgetBytes());

    // Interleaved traffic: each tenant retrieves a spread of indices;
    // the index never leaves the client in the clear.
    const size_t perTenant = 4;
    std::vector<std::vector<size_t>> indices(tenants);
    std::vector<std::vector<std::future<pir::PirResponse>>> futures(
        tenants);
    for (size_t i = 0; i < perTenant; ++i) {
        for (size_t t = 0; t < tenants; ++t) {
            size_t index =
                (i * (pp.records() / perTenant) + 3 * t) %
                pp.records();
            indices[t].push_back(index);
            futures[t].push_back(
                server.submit(t, clients[t].makeQuery(index)));
        }
    }

    size_t wrong = 0;
    for (size_t t = 0; t < tenants; ++t) {
        for (size_t i = 0; i < perTenant; ++i) {
            std::vector<u64> got =
                clients[t].decode(futures[t][i].get());
            if (got != dbs[t].record(indices[t][i])) {
                ++wrong;
            }
        }
    }

    runtime::ServerStats stats = server.stats();
    pir::PirDbStore::Stats ds = store.stats();
    std::printf("served %llu queries in %llu batches (largest %llu); "
                "dbstore: %llu materializations, %llu hits, "
                "%.1f MB resident\n",
                static_cast<unsigned long long>(stats.requests),
                static_cast<unsigned long long>(stats.batches),
                static_cast<unsigned long long>(stats.largestBatch),
                static_cast<unsigned long long>(ds.materializations),
                static_cast<unsigned long long>(ds.hits),
                static_cast<double>(ds.residentBytes) / 1e6);
    std::printf("wrong records: %zu of %zu\n", wrong,
                tenants * perTenant);

    std::printf("\n-- metrics (obs::MetricsRegistry) --\n");
    obs::MetricsRegistry::instance().dump(stdout);
    return wrong == 0 ? 0 : 1;
}
