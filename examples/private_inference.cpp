/**
 * @file
 * Private inference with TFHE programmable bootstrapping — a working
 * miniature of the paper's NN-x benchmark (Table VIII): a binarized
 * two-layer network evaluated entirely on encrypted inputs, with the
 * sign activation realized by PBS.
 *
 * Network: 4 inputs -> 3 hidden (sign) -> 1 output (sign), weights in
 * {-1, +1}. Every neuron is: weighted sum of LWE ciphertexts (linear,
 * cheap) followed by one programmable bootstrap (the sign LUT).
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "tfhe/gates.h"

using namespace trinity;

namespace {

/** Linear combination of LWE ciphertexts with +-1 weights. */
LweCiphertext
dotSign(const TfheContext &ctx, const std::vector<LweCiphertext> &xs,
        const std::vector<int> &w)
{
    const Modulus &m = ctx.modulus();
    LweCiphertext acc;
    acc.a.assign(xs[0].a.size(), 0);
    acc.b = 0;
    for (size_t i = 0; i < xs.size(); ++i) {
        for (size_t j = 0; j < acc.a.size(); ++j) {
            acc.a[j] = w[i] > 0 ? m.add(acc.a[j], xs[i].a[j])
                                : m.sub(acc.a[j], xs[i].a[j]);
        }
        acc.b = w[i] > 0 ? m.add(acc.b, xs[i].b)
                         : m.sub(acc.b, xs[i].b);
    }
    return acc;
}

int
signOf(const std::vector<int> &x, const std::vector<int> &w)
{
    int s = 0;
    for (size_t i = 0; i < x.size(); ++i) {
        s += x[i] * w[i];
    }
    return s >= 0 ? 1 : -1;
}

} // namespace

int
main()
{
    std::printf("== Private inference: binarized NN with PBS ==\n\n");
    TfheGateBootstrapper gb(TfheParams::testTiny(), 20240);
    auto &ctx = gb.context();

    // A fifth bias input keeps every hidden dot product odd-sized, so
    // the sign is never at the 0 phase boundary (standard BNN trick).
    const std::vector<std::vector<int>> w_hidden = {
        {1, -1, 1, 1, 1}, {-1, -1, 1, -1, 1}, {1, 1, -1, 1, -1}};
    const std::vector<int> w_out = {1, -1, 1};

    int correct = 0, total = 0;
    for (unsigned pattern = 0; pattern < 8; ++pattern) {
        // Inputs in {-1, +1}, encoded at +-q/16 so a 5-term dot
        // product (max |sum| = 5) stays below the q/2 wrap boundary.
        u64 mu_in = ctx.q() / 16;
        std::vector<int> x(5);
        std::vector<LweCiphertext> ct_x;
        for (int i = 0; i < 4; ++i) {
            x[i] = (pattern >> (i % 3)) & 1 ? 1 : -1;
            u64 m = x[i] > 0 ? mu_in : ctx.modulus().neg(mu_in);
            ct_x.push_back(ctx.lweEncrypt(m, gb.lweKey()));
        }
        x[4] = 1;
        ct_x.push_back(ctx.lweEncrypt(mu_in, gb.lweKey()));
        // Hidden layer: 3 neurons, each one PBS (sign activation).
        std::vector<LweCiphertext> hidden;
        std::vector<int> h_plain;
        for (const auto &w : w_hidden) {
            auto lin = dotSign(ctx, ct_x, w);
            hidden.push_back(gb.bootstrapSign(lin));
            h_plain.push_back(signOf(x, w));
        }
        // Output neuron.
        auto out = gb.bootstrapSign(dotSign(ctx, hidden, w_out));
        bool got = gb.decryptBit(out);
        bool expect = signOf(h_plain, w_out) > 0;
        correct += (got == expect);
        ++total;
        std::printf("  input %u%u%u%u -> encrypted output %+d "
                    "(plain %+d) %s\n",
                    x[0] > 0, x[1] > 0, x[2] > 0, x[3] > 0,
                    got ? 1 : -1, expect ? 1 : -1,
                    got == expect ? "ok" : "MISMATCH");
    }
    std::printf("\n%d/%d patterns correct — 4 PBS per inference, "
                "exactly the Table VIII execution pattern.\n",
                correct, total);
    return correct == total ? 0 : 1;
}
