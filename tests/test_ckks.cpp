/**
 * @file
 * End-to-end CKKS tests: encode/decode, encrypt/decrypt, every Table II
 * operation, and the hybrid keyswitch (Algorithm 1) both directly and
 * through HMult / HRotate.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "ckks/evaluator.h"

namespace trinity {
namespace {

struct CkksFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx = std::make_shared<CkksContext>(CkksParams::testSmall());
        keygen = std::make_unique<CkksKeyGenerator>(ctx, 777);
        encoder = std::make_unique<CkksEncoder>(ctx);
        encryptor = std::make_unique<CkksEncryptor>(
            ctx, keygen->makePublicKey(), 778);
        evaluator = std::make_unique<CkksEvaluator>(ctx);
    }

    std::vector<cd>
    randomSlots(size_t count, u64 seed)
    {
        Rng rng(seed);
        std::vector<cd> v(count);
        for (auto &x : v) {
            x = cd(rng.uniformReal() * 2 - 1, rng.uniformReal() * 2 - 1);
        }
        return v;
    }

    void
    expectNear(const std::vector<cd> &got, const std::vector<cd> &want,
               double tol)
    {
        ASSERT_GE(got.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i) {
            EXPECT_NEAR(got[i].real(), want[i].real(), tol)
                << "slot " << i;
            EXPECT_NEAR(got[i].imag(), want[i].imag(), tol)
                << "slot " << i;
        }
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksKeyGenerator> keygen;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<CkksEncryptor> encryptor;
    std::unique_ptr<CkksEvaluator> evaluator;
};

TEST_F(CkksFixture, EncodeDecodeRoundtrip)
{
    auto z = randomSlots(encoder->slots(), 1001);
    auto pt = encoder->encode(z, ctx->params().maxLevel);
    auto back = encoder->decode(pt);
    expectNear(back, z, 1e-6);
}

TEST_F(CkksFixture, EncryptDecrypt)
{
    auto z = randomSlots(encoder->slots(), 1002);
    auto pt = encoder->encode(z, ctx->params().maxLevel);
    auto ct = encryptor->encrypt(pt);
    auto dec = encryptor->decrypt(ct, keygen->secretKey());
    auto back = encoder->decode(dec);
    expectNear(back, z, 1e-5);
}

TEST_F(CkksFixture, HAdd)
{
    size_t level = ctx->params().maxLevel;
    auto z1 = randomSlots(8, 1003);
    auto z2 = randomSlots(8, 1004);
    auto ct1 = encryptor->encrypt(encoder->encode(z1, level));
    auto ct2 = encryptor->encrypt(encoder->encode(z2, level));
    auto sum = evaluator->add(ct1, ct2);
    auto back =
        encoder->decode(encryptor->decrypt(sum, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(back[i].real(), (z1[i] + z2[i]).real(), 1e-5);
        EXPECT_NEAR(back[i].imag(), (z1[i] + z2[i]).imag(), 1e-5);
    }
}

TEST_F(CkksFixture, HSubAndNegate)
{
    size_t level = ctx->params().maxLevel;
    auto z1 = randomSlots(8, 1005);
    auto z2 = randomSlots(8, 1006);
    auto ct1 = encryptor->encrypt(encoder->encode(z1, level));
    auto ct2 = encryptor->encrypt(encoder->encode(z2, level));
    auto diff = evaluator->sub(ct1, ct2);
    auto back =
        encoder->decode(encryptor->decrypt(diff, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(back[i].real(), (z1[i] - z2[i]).real(), 1e-5);
    }
    auto neg = evaluator->negate(ct1);
    auto nb =
        encoder->decode(encryptor->decrypt(neg, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(nb[i].real(), -z1[i].real(), 1e-5);
    }
}

TEST_F(CkksFixture, PAddAndPMult)
{
    size_t level = ctx->params().maxLevel;
    auto z = randomSlots(8, 1007);
    auto w = randomSlots(8, 1008);
    auto ct = encryptor->encrypt(encoder->encode(z, level));
    auto pt = encoder->encode(w, level);

    auto padd = evaluator->addPlain(ct, pt);
    auto back =
        encoder->decode(encryptor->decrypt(padd, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(back[i].real(), (z[i] + w[i]).real(), 1e-5);
    }

    auto pmul = evaluator->mulPlain(ct, pt);
    evaluator->rescaleInPlace(pmul);
    auto mb =
        encoder->decode(encryptor->decrypt(pmul, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(mb[i].real(), (z[i] * w[i]).real(), 1e-4);
        EXPECT_NEAR(mb[i].imag(), (z[i] * w[i]).imag(), 1e-4);
    }
}

TEST_F(CkksFixture, HMultWithRelinearization)
{
    size_t level = ctx->params().maxLevel;
    auto relin = keygen->makeRelinKey();
    auto z1 = randomSlots(8, 1009);
    auto z2 = randomSlots(8, 1010);
    auto ct1 = encryptor->encrypt(encoder->encode(z1, level));
    auto ct2 = encryptor->encrypt(encoder->encode(z2, level));
    auto prod = evaluator->multiply(ct1, ct2, relin);
    evaluator->rescaleInPlace(prod);
    EXPECT_EQ(prod.level, level - 1);
    auto back =
        encoder->decode(encryptor->decrypt(prod, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(back[i].real(), (z1[i] * z2[i]).real(), 1e-3);
        EXPECT_NEAR(back[i].imag(), (z1[i] * z2[i]).imag(), 1e-3);
    }
}

TEST_F(CkksFixture, MultiplicationDepthChain)
{
    // Use the whole modulus chain: ((z^2)^2) at depth 2, then once more
    // at depth 3.
    size_t level = ctx->params().maxLevel;
    auto relin = keygen->makeRelinKey();
    std::vector<cd> z = {cd(0.5, 0), cd(-0.7, 0), cd(1.1, 0),
                         cd(0.3, 0)};
    auto ct = encryptor->encrypt(encoder->encode(z, level));
    auto cur = ct;
    std::vector<cd> expect = z;
    for (int depth = 0; depth < 3; ++depth) {
        cur = evaluator->multiply(cur, cur, relin);
        evaluator->rescaleInPlace(cur);
        for (auto &x : expect) {
            x = x * x;
        }
    }
    EXPECT_EQ(cur.level, level - 3);
    auto back =
        encoder->decode(encryptor->decrypt(cur, keygen->secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(back[i].real(), expect[i].real(), 5e-2);
    }
}

TEST_F(CkksFixture, KeySwitchDirect)
{
    // keySwitch(d, evk_{s->s'}) must satisfy ct0 + ct1*s ~ d*s'.
    // Use the relin key (s' = s^2) and d = a fresh small polynomial.
    size_t level = ctx->params().maxLevel;
    auto relin = keygen->makeRelinKey();
    size_t n = ctx->n();
    Rng rng(1011);
    std::vector<i64> d_coeffs(n);
    for (auto &c : d_coeffs) {
        c = static_cast<i64>(rng.uniform(1 << 20)) - (1 << 19);
    }
    RnsPoly d = RnsPoly::fromSigned(d_coeffs, n, ctx->qTo(level));
    auto [ct0, ct1] = evaluator->keySwitch(d, relin, level);

    // Compute ct0 + ct1*s and d*s^2 exactly over the RNS basis.
    auto moduli = ctx->qTo(level);
    RnsPoly s = keygen->secretKey().embed(moduli);
    s.toEval();
    RnsPoly lhs = ct1;
    lhs.toEval();
    lhs.mulPointwiseInPlace(s);
    RnsPoly c0e = ct0;
    c0e.toEval();
    lhs.addInPlace(c0e);

    RnsPoly rhs = d;
    rhs.toEval();
    rhs.mulPointwiseInPlace(s);
    rhs.mulPointwiseInPlace(s);

    lhs.subInPlace(rhs);
    lhs.toCoeff();
    // The difference is the keyswitch noise: small relative to q_0.
    u64 err = lhs.limb(0).infNorm();
    double rel = static_cast<double>(err) /
                 static_cast<double>(ctx->qChain()[0]);
    EXPECT_LT(rel, 1e-3) << "keyswitch noise too large: " << err;
}

TEST_F(CkksFixture, HRotateShiftsSlots)
{
    size_t level = ctx->params().maxLevel;
    size_t n_slots = encoder->slots();
    auto z = randomSlots(n_slots, 1012);
    auto ct = encryptor->encrypt(encoder->encode(z, level));
    for (i64 steps : {1, 3}) {
        auto key = keygen->makeRotationKey(steps);
        auto rot = evaluator->rotate(ct, steps, key);
        auto back = encoder->decode(
            encryptor->decrypt(rot, keygen->secretKey()));
        // Left rotation: slot i now holds z[(i + steps) mod n].
        for (size_t i = 0; i < 16; ++i) {
            cd expect = z[(i + static_cast<size_t>(steps)) % n_slots];
            EXPECT_NEAR(back[i].real(), expect.real(), 1e-4)
                << "steps=" << steps << " slot=" << i;
            EXPECT_NEAR(back[i].imag(), expect.imag(), 1e-4);
        }
    }
}

TEST_F(CkksFixture, RotatePolyMultipliesByMonomial)
{
    // The paper's Rotate: (a(X), b(X)) -> (a*X^r, b*X^r). Decryption of
    // the rotated ciphertext is m(X)*X^r.
    size_t level = ctx->params().maxLevel;
    size_t n = ctx->n();
    Rng rng(1013);
    // Message coefficients must dominate the pk-encryption noise
    // (~sqrt(2N)*sigma ~ a few hundred at N=1024).
    std::vector<i64> m_coeffs(n);
    for (auto &c : m_coeffs) {
        c = static_cast<i64>(rng.uniform(1000000)) - 500000;
    }
    CkksPlaintext pt;
    pt.poly = RnsPoly::fromSigned(m_coeffs, n, ctx->qTo(level));
    pt.level = level;
    pt.scale = 1.0;
    auto ct = encryptor->encrypt(pt);
    u64 r = 5;
    auto rot = evaluator->rotatePoly(ct, r);
    auto dec = encryptor->decrypt(rot, keygen->secretKey());
    // Expected: coefficients shifted negacyclically by r. Check a few
    // positions (decryption noise is small absolute error).
    u64 q0 = ctx->qChain()[0];
    for (size_t i = 0; i < 20; ++i) {
        size_t src = (i + n - r) % n;
        i64 sign = (i < r) ? -1 : 1;
        i64 expect = sign * m_coeffs[src];
        i64 got = centeredRep(dec.poly.limb(0)[i], q0);
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(expect), 2000.0)
            << "coeff " << i;
    }
}

TEST_F(CkksFixture, DropToLevelPreservesMessage)
{
    size_t level = ctx->params().maxLevel;
    auto z = randomSlots(8, 1014);
    auto ct = encryptor->encrypt(encoder->encode(z, level));
    evaluator->dropToLevel(ct, 1);
    EXPECT_EQ(ct.level, 1u);
    EXPECT_EQ(ct.numLimbs(), 2u);
    auto back =
        encoder->decode(encryptor->decrypt(ct, keygen->secretKey()));
    for (size_t i = 0; i < 8; ++i) {
        EXPECT_NEAR(back[i].real(), z[i].real(), 1e-5);
    }
}

TEST_F(CkksFixture, AddRejectsMismatchedLevels)
{
    size_t level = ctx->params().maxLevel;
    auto z = randomSlots(4, 1015);
    auto ct1 = encryptor->encrypt(encoder->encode(z, level));
    auto ct2 = encryptor->encrypt(encoder->encode(z, level));
    evaluator->dropToLevel(ct2, level - 1);
    EXPECT_DEATH(evaluator->add(ct1, ct2), "");
}

TEST_F(CkksFixture, RescaleTracksScaleExactly)
{
    size_t level = ctx->params().maxLevel;
    auto z = randomSlots(4, 1016);
    auto ct = encryptor->encrypt(encoder->encode(z, level));
    double before = ct.scale;
    auto prod = evaluator->multiply(ct, ct, keygen->makeRelinKey());
    EXPECT_DOUBLE_EQ(prod.scale, before * before);
    evaluator->rescaleInPlace(prod);
    u64 ql = ctx->qChain()[level];
    EXPECT_DOUBLE_EQ(prod.scale,
                     before * before / static_cast<double>(ql));
}

TEST(CkksMedium, DeeperChainWithDnum3)
{
    // Medium parameters exercise beta > 1 digits in the keyswitch.
    auto ctx = std::make_shared<CkksContext>(CkksParams::testMedium());
    CkksKeyGenerator keygen(ctx, 999);
    CkksEncoder encoder(ctx);
    CkksEncryptor enc(ctx, keygen.makePublicKey(), 1000);
    CkksEvaluator eval(ctx);
    auto relin = keygen.makeRelinKey();

    size_t level = ctx->params().maxLevel;
    std::vector<cd> z = {cd(0.9, 0.1), cd(-0.4, 0.2), cd(0.25, -0.6)};
    auto ct = enc.encrypt(encoder.encode(z, level));
    auto sq = eval.multiply(ct, ct, relin);
    eval.rescaleInPlace(sq);
    auto cube = eval.multiply(sq, [&] {
        auto t = ct;
        eval.dropToLevel(t, sq.level);
        // align scales: mulPlain by 1 at matching scale is overkill;
        // instead verify scales are compatible by construction.
        return t;
    }(), relin);
    eval.rescaleInPlace(cube);
    auto back = encoder.decode(enc.decrypt(cube, keygen.secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        cd expect = z[i] * z[i] * z[i];
        EXPECT_NEAR(back[i].real(), expect.real(), 5e-2);
        EXPECT_NEAR(back[i].imag(), expect.imag(), 5e-2);
    }
}

} // namespace
} // namespace trinity
