/**
 * @file
 * Stage-level NTT and fused-epilogue tests: the KernelSet's stage-range
 * entry points must be bit-identical to the monolithic transforms for
 * ANY stage/butterfly chunking — including chunk boundaries that are
 * not lane multiples — at every SIMD level the host can run; the
 * coefficient-tiled thread-pool executor that is built on them must be
 * bit-identical to serial (down to a 1-worker pool); the fused
 * NTT+MAC / iNTT+add entry points must equal their unfused pairs on
 * every engine; and the pooled scratch arena must make the keyswitch
 * and PBS hot loops allocation-free after warmup.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "backend/registry.h"
#include "backend/scratch_arena.h"
#include "backend/simd_backend.h"
#include "backend/simd_kernels.h"
#include "backend/thread_pool_backend.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "common/primes.h"
#include "poly/ntt.h"
#include "poly/rns.h"
#include "runtime/batched_pbs.h"

namespace trinity {
namespace {

std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> out = {simd::Level::Scalar};
    for (simd::Level level : {simd::Level::Avx2, simd::Level::Avx512}) {
        if (simd::levelAvailable(level)) {
            out.push_back(level);
        }
    }
    return out;
}

std::vector<u64>
randomSpan(size_t n, u64 q, u64 seed)
{
    Rng rng(seed);
    return rng.uniformVec(n, q);
}

/** Uneven butterfly split points for one stage: boundaries that are
 *  neither lane multiples nor block multiples. */
std::vector<size_t>
unevenSplits(size_t half)
{
    std::vector<size_t> cuts = {0};
    for (size_t c : {size_t(1), size_t(3), size_t(7), half / 2 - 1,
                     half / 2 + 5, half - 3}) {
        if (c > cuts.back() && c < half) {
            cuts.push_back(c);
        }
    }
    cuts.push_back(half);
    return cuts;
}

/** Stage-by-stage over the full butterfly range == monolithic. */
TEST(NttStages, FullRangePerStageMatchesMonolithic)
{
    for (simd::Level level : availableLevels()) {
        const auto &ks = simd::kernelsForLevel(level);
        for (size_t n : {size_t(16), size_t(1024), size_t(4096)}) {
            for (u32 bits : {30u, 50u, 59u}) {
                u64 q = findNttPrimes(bits, 2 * n, 1)[0];
                auto table = NttTableCache::get(n, q);
                size_t logn = table->logn();
                auto ref = randomSpan(n, q, n + bits);
                auto fwd = ref;
                table->forward(fwd.data());

                auto got = ref;
                for (size_t s = 0; s < logn; ++s) {
                    ks.nttForwardStages(*table, got.data(), s, s + 1, 0,
                                        n / 2);
                }
                EXPECT_EQ(got, fwd)
                    << simd::levelName(level) << " fwd n=" << n
                    << " bits=" << bits;

                auto inv = fwd;
                table->inverse(inv.data());
                EXPECT_EQ(inv, ref) << "inverse round-trip n=" << n;

                got = fwd;
                for (size_t s = 0; s < logn; ++s) {
                    ks.nttInverseStages(*table, got.data(), s, s + 1, 0,
                                        n / 2, /*scaleN=*/true);
                }
                EXPECT_EQ(got, ref)
                    << simd::levelName(level) << " inv n=" << n
                    << " bits=" << bits;
            }
        }
    }
}

/** Butterfly chunk boundaries that are NOT lane multiples (and not
 *  block multiples) must still reproduce the monolithic transform. */
TEST(NttStages, UnevenChunkBoundariesMatchMonolithic)
{
    for (simd::Level level : availableLevels()) {
        const auto &ks = simd::kernelsForLevel(level);
        for (size_t n : {size_t(16), size_t(1024), size_t(4096)}) {
            u64 q = findNttPrimes(50, 2 * n, 1)[0];
            auto table = NttTableCache::get(n, q);
            size_t logn = table->logn();
            auto cuts = unevenSplits(n / 2);
            auto ref = randomSpan(n, q, 3 * n + 1);
            auto fwd = ref;
            table->forward(fwd.data());

            auto got = ref;
            for (size_t s = 0; s < logn; ++s) {
                for (size_t c = 0; c + 1 < cuts.size(); ++c) {
                    ks.nttForwardStages(*table, got.data(), s, s + 1,
                                        cuts[c], cuts[c + 1]);
                }
            }
            EXPECT_EQ(got, fwd)
                << simd::levelName(level) << " fwd n=" << n;

            got = fwd;
            for (size_t s = 0; s < logn; ++s) {
                for (size_t c = 0; c + 1 < cuts.size(); ++c) {
                    ks.nttInverseStages(*table, got.data(), s, s + 1,
                                        cuts[c], cuts[c + 1],
                                        /*scaleN=*/true);
                }
            }
            EXPECT_EQ(got, ref)
                << simd::levelName(level) << " inv n=" << n;
        }
    }
}

/** The tiled executor's exact phase decomposition — per-stage chunks
 *  for the global stages, one multi-stage region call per tile —
 *  replayed at the kernel level for several tile counts. */
TEST(NttStages, TileRegionDecompositionMatchesMonolithic)
{
    for (simd::Level level : availableLevels()) {
        const auto &ks = simd::kernelsForLevel(level);
        size_t n = 4096;
        u64 q = findNttPrimes(55, 2 * n, 1)[0];
        auto table = NttTableCache::get(n, q);
        size_t logn = table->logn();
        auto ref = randomSpan(n, q, 77);
        auto fwd = ref;
        table->forward(fwd.data());
        for (size_t tiles : {size_t(2), size_t(4), size_t(8)}) {
            size_t log_tiles = 0;
            while ((size_t{1} << log_tiles) < tiles) {
                ++log_tiles;
            }
            size_t bchunk = (n / 2) / tiles;

            auto got = ref;
            for (size_t s = 0; s < log_tiles; ++s) {
                for (size_t c = 0; c < tiles; ++c) {
                    ks.nttForwardStages(*table, got.data(), s, s + 1,
                                        c * bchunk, (c + 1) * bchunk);
                }
            }
            for (size_t c = 0; c < tiles; ++c) {
                ks.nttForwardStages(*table, got.data(), log_tiles, logn,
                                    c * bchunk, (c + 1) * bchunk);
            }
            EXPECT_EQ(got, fwd)
                << simd::levelName(level) << " tiles=" << tiles;

            got = fwd;
            for (size_t c = 0; c < tiles; ++c) {
                ks.nttInverseStages(*table, got.data(), 0,
                                    logn - log_tiles, c * bchunk,
                                    (c + 1) * bchunk, /*scaleN=*/false);
            }
            for (size_t s = logn - log_tiles; s < logn; ++s) {
                for (size_t c = 0; c < tiles; ++c) {
                    ks.nttInverseStages(*table, got.data(), s, s + 1,
                                        c * bchunk, (c + 1) * bchunk,
                                        /*scaleN=*/true);
                }
            }
            EXPECT_EQ(got, ref)
                << simd::levelName(level) << " tiles=" << tiles;
        }
    }
}

/** The thread-pool tiled path (now running SIMD stage kernels inside
 *  each tile) stays bit-identical to serial, including a 1-worker
 *  pool and lengths below the tiling threshold. */
TEST(NttStages, TiledThreadPoolBitIdentical)
{
    for (size_t n : {size_t(16), size_t(1024), size_t(4096)}) {
        auto qs = findNttPrimes(40, 2 * n, 2);
        Rng rng(n);
        RnsPoly ref = RnsPoly::uniform(n, qs, rng);
        RnsPoly expect = ref;
        BackendRegistry::instance().select("serial");
        expect.toEval();
        for (size_t threads : {1, 4, 8}) {
            RnsPoly got = ref;
            BackendRegistry::instance().use(
                std::make_unique<ThreadPoolBackend>(threads));
            got.toEval();
            EXPECT_EQ(got.flat(), expect.flat())
                << threads << " threads fwd n=" << n;
            got.toCoeff();
            EXPECT_EQ(got.flat(), ref.flat())
                << threads << " threads inv n=" << n;
        }
        BackendRegistry::instance().select("serial");
    }
}

/** Fused forward NTT + one/two-accumulator MAC == the unfused pair,
 *  at the kernel level per SIMD level. */
TEST(NttFused, ForwardMulAddMatchesUnfused)
{
    for (simd::Level level : availableLevels()) {
        const auto &ks = simd::kernelsForLevel(level);
        for (size_t n : {size_t(16), size_t(1024)}) {
            u64 q = findNttPrimes(50, 2 * n, 1)[0];
            Modulus mod(q);
            auto table = NttTableCache::get(n, q);
            auto a = randomSpan(n, q, 21);
            auto b0 = randomSpan(n, q, 22);
            auto b1 = randomSpan(n, q, 23);
            auto acc0 = randomSpan(n, q, 24);
            auto acc1 = randomSpan(n, q, 25);

            auto ea = a;
            auto e0 = acc0;
            auto e1 = acc1;
            table->forward(ea.data());
            const auto &ref = simd::scalarKernels();
            ref.mulAdd(e0.data(), ea.data(), b0.data(), mod, n);
            ref.mulAdd(e1.data(), ea.data(), b1.data(), mod, n);

            auto ga = a;
            auto g0 = acc0;
            auto g1 = acc1;
            ks.nttForwardMulAdd(*table, ga.data(), b0.data(), g0.data(),
                                b1.data(), g1.data());
            EXPECT_EQ(ga, ea) << simd::levelName(level) << " n=" << n;
            EXPECT_EQ(g0, e0) << simd::levelName(level) << " n=" << n;
            EXPECT_EQ(g1, e1) << simd::levelName(level) << " n=" << n;

            // Single-accumulator form (acc1 == nullptr).
            ga = a;
            g0 = acc0;
            ks.nttForwardMulAdd(*table, ga.data(), b0.data(), g0.data(),
                                nullptr, nullptr);
            EXPECT_EQ(g0, e0)
                << simd::levelName(level) << " single-acc n=" << n;
        }
    }
}

/** Fused inverse NTT + accumulate == the unfused pair per level. */
TEST(NttFused, InverseAddMatchesUnfused)
{
    for (simd::Level level : availableLevels()) {
        const auto &ks = simd::kernelsForLevel(level);
        for (size_t n : {size_t(16), size_t(1024)}) {
            u64 q = findNttPrimes(50, 2 * n, 1)[0];
            Modulus mod(q);
            auto table = NttTableCache::get(n, q);
            auto a = randomSpan(n, q, 31);
            auto acc = randomSpan(n, q, 32);

            auto ea = a;
            auto eacc = acc;
            table->inverse(ea.data());
            simd::scalarKernels().add(eacc.data(), eacc.data(),
                                      ea.data(), mod, n);

            auto ga = a;
            auto gacc = acc;
            ks.nttInverseAdd(*table, ga.data(), gacc.data());
            EXPECT_EQ(ga, ea) << simd::levelName(level) << " n=" << n;
            EXPECT_EQ(gacc, eacc)
                << simd::levelName(level) << " n=" << n;
        }
    }
}

/** The fused batch entry points are bit-identical to the unfused
 *  recording on every engine (serial, threads, simd, sim). */
TEST(NttFused, BatchMatchesUnfusedAcrossEngines)
{
    size_t n = 1024;
    size_t limbs = 4;
    auto qs = findNttPrimes(45, 2 * n, limbs);

    // Unfused reference, computed once with the serial tables.
    std::vector<std::vector<u64>> a(limbs), b(limbs), acc(limbs),
        inv_a(limbs), inv_acc(limbs);
    for (size_t i = 0; i < limbs; ++i) {
        a[i] = randomSpan(n, qs[i], 41 + i);
        b[i] = randomSpan(n, qs[i], 51 + i);
        acc[i] = randomSpan(n, qs[i], 61 + i);
        inv_a[i] = randomSpan(n, qs[i], 71 + i);
        inv_acc[i] = randomSpan(n, qs[i], 81 + i);
    }
    std::vector<std::vector<u64>> efwd_a = a, efwd_acc = acc,
                                  einv_a = inv_a, einv_acc = inv_acc;
    for (size_t i = 0; i < limbs; ++i) {
        Modulus mod(qs[i]);
        auto table = NttTableCache::get(n, qs[i]);
        table->forward(efwd_a[i].data());
        simd::scalarKernels().mulAdd(efwd_acc[i].data(),
                                     efwd_a[i].data(), b[i].data(), mod,
                                     n);
        table->inverse(einv_a[i].data());
        simd::scalarKernels().add(einv_acc[i].data(),
                                  einv_acc[i].data(), einv_a[i].data(),
                                  mod, n);
    }

    auto &reg = BackendRegistry::instance();
    std::vector<std::unique_ptr<PolyBackend>> engines;
    engines.push_back(reg.create("serial"));
    engines.push_back(std::make_unique<ThreadPoolBackend>(4));
    engines.push_back(reg.create("simd"));
    engines.push_back(reg.create("sim"));
    for (auto &engine : engines) {
        std::vector<std::vector<u64>> ga = a, gacc = acc,
                                      gia = inv_a, giacc = inv_acc;
        std::vector<NttMulAddJob> fwd(limbs);
        std::vector<NttInvAddJob> inv(limbs);
        std::vector<std::shared_ptr<const NttTable>> tables(limbs);
        for (size_t i = 0; i < limbs; ++i) {
            tables[i] = NttTableCache::get(n, qs[i]);
            fwd[i] = {ga[i].data(),   tables[i].get(), b[i].data(),
                      gacc[i].data(), nullptr,         nullptr};
            inv[i] = {gia[i].data(), tables[i].get(), giacc[i].data()};
        }
        engine->nttForwardMulAddBatch(fwd.data(), limbs);
        engine->nttInverseAddBatch(inv.data(), limbs);
        for (size_t i = 0; i < limbs; ++i) {
            EXPECT_EQ(ga[i], efwd_a[i])
                << engine->name() << " fwd limb " << i;
            EXPECT_EQ(gacc[i], efwd_acc[i])
                << engine->name() << " fwd acc limb " << i;
            EXPECT_EQ(gia[i], einv_a[i])
                << engine->name() << " inv limb " << i;
            EXPECT_EQ(giacc[i], einv_acc[i])
                << engine->name() << " inv acc limb " << i;
        }
    }
}

/** The scratch arena recycles slabs: after one warmup call at a given
 *  shape, the CKKS keyswitch hot loop acquires every scratch buffer
 *  from the pool — zero heap allocations per call. */
TEST(ScratchArenaReuse, KeySwitchZeroMissAfterWarmup)
{
    for (const char *engine : {"serial", "threads"}) {
        BackendRegistry::instance().select(engine);
        auto ctx =
            std::make_shared<CkksContext>(CkksParams::testSmall());
        CkksKeyGenerator keygen(ctx, 7);
        CkksEncoder encoder(ctx);
        CkksEncryptor enc(ctx, keygen.makePublicKey(), 8);
        CkksEvaluator eval(ctx);
        auto relin = keygen.makeRelinKey();
        std::vector<double> vals(ctx->params().slots(), 0.25);
        auto pt = encoder.encodeReal(vals, ctx->params().maxLevel, 0);
        auto ct = enc.encrypt(pt);

        eval.multiply(ct, ct, relin); // warmup fills the arena
        ScratchArena::resetStats();
        for (int rep = 0; rep < 3; ++rep) {
            eval.multiply(ct, ct, relin);
        }
        auto stats = ScratchArena::stats();
        EXPECT_EQ(stats.misses, 0u)
            << engine << ": keyswitch allocated after warmup";
        EXPECT_GT(stats.hits, 0u)
            << engine << ": keyswitch never touched the arena";
    }
    BackendRegistry::instance().select("serial");
}

/** Same contract for the batched PBS path: warmed up, the blind-
 *  rotation loop never allocates from the arena's slab classes. */
TEST(ScratchArenaReuse, PbsZeroMissAfterWarmup)
{
    BackendRegistry::instance().select("serial");
    TfheGateBootstrapper gb(TfheParams::testTiny(), 515);
    runtime::BatchedBootstrapper bb(gb);
    std::vector<LweCiphertext> cts;
    for (bool b : {true, false, true}) {
        cts.push_back(gb.encryptBit(b));
    }
    bb.bootstrapSignBatch(cts); // warmup
    ScratchArena::resetStats();
    bb.bootstrapSignBatch(cts);
    EXPECT_EQ(ScratchArena::stats().misses, 0u);
}

/** Arena mechanics: exact-size reuse, cross-size isolation, stats. */
TEST(ScratchArenaReuse, BucketsReuseExactSizes)
{
    ScratchArena &arena = ScratchArena::local();
    arena.clear();
    ScratchArena::resetStats();
    u64 *p = nullptr;
    {
        ScratchBuffer b = arena.acquire(1024);
        p = b.data();
        EXPECT_EQ(b.size(), 1024u);
    }
    EXPECT_EQ(ScratchArena::stats().misses, 1u);
    {
        ScratchBuffer b = arena.acquire(1024);
        EXPECT_EQ(b.data(), p); // same slab back
        ScratchBuffer c = arena.acquire(1024);
        EXPECT_NE(c.data(), p); // pool empty -> fresh slab
        ScratchBuffer d = arena.acquire(512);
        EXPECT_NE(d.data(), nullptr);
    }
    auto stats = ScratchArena::stats();
    EXPECT_EQ(stats.hits, 1u);
    EXPECT_EQ(stats.misses, 3u);
    arena.clear();
}

} // namespace
} // namespace trinity
