/**
 * @file
 * Tests for the reference negacyclic NTT: roundtrip, linearity, the
 * convolution theorem against a naive O(N^2) negacyclic product, and
 * cyclic transforms against a direct DFT.
 */

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/ntt.h"

namespace trinity {
namespace {

/** Naive negacyclic product c = a*b mod (X^n + 1, q). */
std::vector<u64>
naiveNegacyclic(const std::vector<u64> &a, const std::vector<u64> &b,
                const Modulus &m)
{
    size_t n = a.size();
    std::vector<u64> c(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            u64 prod = m.mul(a[i], b[j]);
            size_t k = i + j;
            if (k < n) {
                c[k] = m.add(c[k], prod);
            } else {
                c[k - n] = m.sub(c[k - n], prod);
            }
        }
    }
    return c;
}

/** Direct cyclic DFT X[k] = sum a_i w^{ik}, natural order. */
std::vector<u64>
directCyclicDft(const std::vector<u64> &a, const Modulus &m, u64 omega)
{
    size_t n = a.size();
    std::vector<u64> x(n, 0);
    for (size_t k = 0; k < n; ++k) {
        u64 acc = 0;
        for (size_t i = 0; i < n; ++i) {
            acc = m.add(acc, m.mul(a[i], m.pow(omega, (i * k) % n)));
        }
        x[k] = acc;
    }
    return x;
}

class NttParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, u32>>
{
};

TEST_P(NttParamTest, ForwardInverseRoundtrip)
{
    auto [n, bits] = GetParam();
    u64 q = findNttPrimes(bits, 2 * n, 1)[0];
    NttTable table(n, Modulus(q));
    Rng rng(11);
    auto a = rng.uniformVec(n, q);
    auto orig = a;
    table.forward(a);
    EXPECT_NE(a, orig); // transform must do something
    table.inverse(a);
    EXPECT_EQ(a, orig);
}

TEST_P(NttParamTest, Linearity)
{
    auto [n, bits] = GetParam();
    u64 q = findNttPrimes(bits, 2 * n, 1)[0];
    Modulus m(q);
    NttTable table(n, m);
    Rng rng(12);
    auto a = rng.uniformVec(n, q);
    auto b = rng.uniformVec(n, q);
    u64 c = rng.uniform(q);
    // NTT(c*a + b) == c*NTT(a) + NTT(b)
    std::vector<u64> lhs(n);
    for (size_t i = 0; i < n; ++i) {
        lhs[i] = m.add(m.mul(c, a[i]), b[i]);
    }
    table.forward(lhs);
    table.forward(a);
    table.forward(b);
    for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(lhs[i], m.add(m.mul(c, a[i]), b[i]));
    }
}

TEST_P(NttParamTest, ConvolutionTheorem)
{
    auto [n, bits] = GetParam();
    if (n > 512) {
        GTEST_SKIP() << "naive reference too slow";
    }
    u64 q = findNttPrimes(bits, 2 * n, 1)[0];
    Modulus m(q);
    NttTable table(n, m);
    Rng rng(13);
    auto a = rng.uniformVec(n, q);
    auto b = rng.uniformVec(n, q);
    auto expect = naiveNegacyclic(a, b, m);
    table.forward(a);
    table.forward(b);
    for (size_t i = 0; i < n; ++i) {
        a[i] = m.mul(a[i], b[i]);
    }
    table.inverse(a);
    EXPECT_EQ(a, expect);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NttParamTest,
    ::testing::Combine(::testing::Values<size_t>(8, 64, 256, 1024, 4096),
                       ::testing::Values<u32>(20, 36, 50, 59)));

TEST(Ntt, CyclicMatchesDirectDft)
{
    size_t n = 64;
    u64 q = findNttPrimes(30, 2 * n, 1)[0];
    Modulus m(q);
    NttTable table(n, m);
    u64 omega = m.mul(table.psi(), table.psi());
    Rng rng(14);
    auto a = rng.uniformVec(n, q);
    auto expect = directCyclicDft(a, m, omega);
    table.forwardCyclic(a.data());
    EXPECT_EQ(a, expect);
}

TEST(Ntt, CyclicRoundtrip)
{
    size_t n = 512;
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    NttTable table(n, Modulus(q));
    Rng rng(15);
    auto a = rng.uniformVec(n, q);
    auto orig = a;
    table.forwardCyclic(a.data());
    table.inverseCyclic(a.data());
    EXPECT_EQ(a, orig);
}

TEST(Ntt, MonomialShiftTheorem)
{
    // NTT(X * a) must equal NTT(a) scaled by the evaluation points:
    // eval at psi^(2k+1) multiplies slot k by psi^(2k+1). Verify using
    // natural-order outputs.
    size_t n = 128;
    u64 q = findNttPrimes(30, 2 * n, 1)[0];
    Modulus m(q);
    NttTable table(n, m);
    Rng rng(16);
    auto a = rng.uniformVec(n, q);
    // b = X * a (negacyclic shift by one)
    std::vector<u64> b(n);
    b[0] = m.neg(a[n - 1]);
    for (size_t i = 1; i < n; ++i) {
        b[i] = a[i - 1];
    }
    table.forward(a);
    table.forward(b);
    NttTable::bitrevPermute(a.data(), n);
    NttTable::bitrevPermute(b.data(), n);
    for (size_t k = 0; k < n; ++k) {
        u64 root = m.pow(table.psi(), 2 * k + 1);
        EXPECT_EQ(b[k], m.mul(a[k], root));
    }
}

TEST(Ntt, TableCacheReturnsSameInstance)
{
    auto t1 = NttTableCache::get(256, findNttPrimes(30, 512, 1)[0]);
    auto t2 = NttTableCache::get(256, t1->modulus().value());
    EXPECT_EQ(t1.get(), t2.get());
}

TEST(Ntt, RejectsNonNttFriendlyModulus)
{
    EXPECT_DEATH({ NttTable t(256, Modulus(65539)); (void)t; }, "");
}

} // namespace
} // namespace trinity
