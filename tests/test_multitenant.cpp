/**
 * @file
 * Multi-tenant serving tests: tenant-grouped batching on the
 * multi-tenant PbsServer (bit-exact against direct PBS), the
 * admission (maxQueue -> AdmissionRejected) and deadline
 * (deadlineUs -> DeadlineExceeded) policies with deterministic
 * counts, consistent key-affine shard routing, materialization
 * landing only on a tenant's home shard, and destructor drain of the
 * sharded fleet.
 */

#include <atomic>
#include <set>
#include <thread>

#include <gtest/gtest.h>

#include "common/modarith.h"
#include "runtime/sharded_server.h"

namespace trinity {
namespace {

using runtime::AdmissionRejected;
using runtime::DeadlineExceeded;
using runtime::KeyStore;
using runtime::PbsServer;
using runtime::ResidentKeys;
using runtime::ServerOptions;
using runtime::ShardedOptions;
using runtime::ShardedPbsServer;
using runtime::TenantId;
using runtime::TenantKeyMaterial;

struct MultiTenantFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx = std::make_shared<TfheContext>(TfheParams::testTiny(),
                                            777001);
        boot = std::make_unique<TfheBootstrapper>(ctx);
        for (size_t i = 0; i < 5; ++i) {
            tenants.push_back(TenantKeyMaterial::generate(*ctx, *boot));
        }
    }

    KeyStore::Provider
    provider()
    {
        return [this](TenantId t) -> const TenantKeyMaterial & {
            return tenants[static_cast<size_t>(t)];
        };
    }

    LweCiphertext
    encryptBit(TenantId t, bool bit)
    {
        u64 mu = ctx->params().q / 8;
        u64 m = bit ? mu : ctx->modulus().neg(mu);
        return ctx->lweEncrypt(m, tenants[t].lweKey);
    }

    bool
    decryptBit(TenantId t, const LweCiphertext &ct) const
    {
        u64 phase = ctx->lwePhase(ct, tenants[t].lweKey);
        return centeredRep(phase, ctx->q()) > 0;
    }

    ResidentKeys
    materializeDirect(TenantId t) const
    {
        ResidentKeys keys;
        keys.bsk.bsk = tenants[t].bskStored.bsk;
        for (GgswCiphertext &g : keys.bsk.bsk) {
            ctx->ggswToEval(g);
        }
        keys.ksk = tenants[t].ksk;
        keys.signTv = tenants[t].signTv;
        return keys;
    }

    std::shared_ptr<TfheContext> ctx;
    std::unique_ptr<TfheBootstrapper> boot;
    std::vector<TenantKeyMaterial> tenants;
};

TEST_F(MultiTenantFixture, ShardRoutingIsConsistentAndSpreads)
{
    ShardedOptions opts;
    opts.shards = 4;
    opts.server.maxWaitUs = 50;
    ShardedPbsServer server(ctx, provider(), opts);
    std::vector<size_t> counts(opts.shards, 0);
    for (TenantId t = 0; t < 1000; ++t) {
        size_t s = server.shardOf(t);
        ASSERT_LT(s, opts.shards);
        // Affinity: the mapping never changes for a tenant.
        EXPECT_EQ(server.shardOf(t), s);
        ++counts[s];
    }
    // splitmix64 spreads even sequential ids: no shard should be
    // starved or hoard the fleet.
    for (size_t s = 0; s < opts.shards; ++s) {
        EXPECT_GT(counts[s], 150u) << "shard " << s;
        EXPECT_LT(counts[s], 350u) << "shard " << s;
    }
}

TEST_F(MultiTenantFixture, MixedTenantTrafficIsBitExact)
{
    std::vector<ResidentKeys> ref;
    for (TenantId t = 0; t < tenants.size(); ++t) {
        ref.push_back(materializeDirect(t));
    }
    // Interleaved tenants in one submission burst: the server must
    // group each drained window by tenant (a fused batch shares one
    // key set) and still return bit-identical results per request.
    std::vector<TenantId> order = {0, 3, 1, 0, 4, 2, 3, 0, 1, 4};
    std::vector<bool> bits = {true,  false, true, false, true,
                              false, false, true, true,  false};
    std::vector<LweCiphertext> cts;
    for (size_t i = 0; i < order.size(); ++i) {
        cts.push_back(encryptBit(order[i], bits[i]));
    }

    ShardedOptions opts;
    opts.shards = 2;
    opts.server.maxBatch = 8;
    opts.server.maxWaitUs = 2000;
    ShardedPbsServer server(ctx, provider(), opts);
    std::vector<std::future<LweCiphertext>> futures;
    for (size_t i = 0; i < order.size(); ++i) {
        futures.push_back(server.submit(order[i], cts[i]));
    }
    for (size_t i = 0; i < order.size(); ++i) {
        LweCiphertext out = futures[i].get();
        LweCiphertext expect =
            boot->pbs(cts[i], ref[order[i]].signTv, ref[order[i]].bsk,
                      ref[order[i]].ksk);
        EXPECT_EQ(out.b, expect.b) << "request " << i;
        EXPECT_EQ(out.a, expect.a) << "request " << i;
        EXPECT_EQ(decryptBit(order[i], out), bits[i]) << "request " << i;
    }
    runtime::ShardedStats stats = server.stats();
    EXPECT_EQ(stats.serving.requests, order.size());
    // Each tenant materialized once, on one shard only.
    EXPECT_EQ(stats.keystore.materializations, tenants.size());
}

TEST_F(MultiTenantFixture, CallerLutOverridesTenantDefault)
{
    KeyStore store(*ctx, provider(), 0, "keystore.test.lut");
    ServerOptions opts;
    opts.maxWaitUs = 50;
    opts.label = "pbs_server.test.lut";
    PbsServer server(ctx, store, opts);
    const auto &p = ctx->params();
    Poly ramp = boot->makeTestVector([&](size_t i) { return i * 977; });
    LweCiphertext ct = encryptBit(1, true);
    LweCiphertext out = server.submit(1, ct, ramp).get();
    std::shared_ptr<const ResidentKeys> keys = store.acquire(1);
    LweCiphertext expect = boot->pbs(ct, ramp, keys->bsk, keys->ksk);
    EXPECT_EQ(out.b, expect.b);
    EXPECT_EQ(out.a, expect.a);
    (void)p;
}

TEST_F(MultiTenantFixture, AdmissionRejectsBeyondMaxQueue)
{
    KeyStore store(*ctx, provider(), 0, "keystore.test.admit");
    ServerOptions opts;
    opts.maxBatch = 64;     // never fills from 10 requests
    opts.maxWaitUs = 400000; // the batch stays open while we burst
    opts.maxQueue = 4;
    opts.label = "pbs_server.test.admit";
    std::vector<LweCiphertext> cts;
    for (size_t i = 0; i < 10; ++i) {
        cts.push_back(encryptBit(0, i % 2 == 0));
    }
    size_t accepted = 0;
    size_t rejected = 0;
    {
        PbsServer server(ctx, store, opts);
        std::vector<std::future<LweCiphertext>> futures;
        for (size_t i = 0; i < 10; ++i) {
            futures.push_back(server.submit(0, cts[i]));
        }
        for (size_t i = 0; i < futures.size(); ++i) {
            try {
                LweCiphertext out = futures[i].get();
                EXPECT_EQ(decryptBit(0, out), i % 2 == 0)
                    << "request " << i;
                ++accepted;
            } catch (const AdmissionRejected &) {
                ++rejected;
            }
        }
        EXPECT_EQ(server.stats().rejected, rejected);
    }
    // The queue admits exactly maxQueue requests; the rest bounce.
    EXPECT_EQ(accepted, opts.maxQueue);
    EXPECT_EQ(rejected, 10 - opts.maxQueue);
}

TEST_F(MultiTenantFixture, DeadlineShedsStaleRequests)
{
    KeyStore store(*ctx, provider(), 0, "keystore.test.shed");
    ServerOptions opts;
    opts.maxBatch = 64;
    opts.maxWaitUs = 30000; // every request waits ~30ms before drain
    opts.deadlineUs = 1;    // ...which exceeds a 1us budget
    opts.label = "pbs_server.test.shed";
    size_t shed = 0;
    {
        PbsServer server(ctx, store, opts);
        std::vector<std::future<LweCiphertext>> futures;
        for (size_t i = 0; i < 3; ++i) {
            futures.push_back(server.submit(0, encryptBit(0, true)));
        }
        for (auto &f : futures) {
            try {
                f.get();
            } catch (const DeadlineExceeded &) {
                ++shed;
            }
        }
        EXPECT_EQ(server.stats().shed, 3u);
    }
    EXPECT_EQ(shed, 3u);
}

TEST_F(MultiTenantFixture, MaterializationLandsOnHomeShardOnly)
{
    ShardedOptions opts;
    opts.shards = 2;
    opts.server.maxWaitUs = 50;
    ShardedPbsServer server(ctx, provider(), opts);
    // Pick one tenant per shard (the fixture's five give us both).
    TenantId onShard0 = tenants.size();
    TenantId onShard1 = tenants.size();
    for (TenantId t = 0; t < tenants.size(); ++t) {
        if (server.shardOf(t) == 0 && onShard0 == tenants.size()) {
            onShard0 = t;
        }
        if (server.shardOf(t) == 1 && onShard1 == tenants.size()) {
            onShard1 = t;
        }
    }
    ASSERT_LT(onShard0, tenants.size());
    ASSERT_LT(onShard1, tenants.size());

    server.submit(onShard0, encryptBit(onShard0, true)).get();
    EXPECT_EQ(server.store(0).stats().materializations, 1u);
    EXPECT_EQ(server.store(1).stats().materializations, 0u);

    server.submit(onShard1, encryptBit(onShard1, false)).get();
    EXPECT_EQ(server.store(0).stats().materializations, 1u);
    EXPECT_EQ(server.store(1).stats().materializations, 1u);

    // Repeat traffic hits the resident keys — no new faults anywhere.
    server.submit(onShard0, encryptBit(onShard0, false)).get();
    server.submit(onShard1, encryptBit(onShard1, true)).get();
    EXPECT_EQ(server.store(0).stats().materializations, 1u);
    EXPECT_EQ(server.store(1).stats().materializations, 1u);
    EXPECT_EQ(server.stats().keystore.hits, 2u);
}

TEST_F(MultiTenantFixture, ConcurrentTenantsAcrossShards)
{
    // Four client threads, five tenants, tiny per-shard budgets so
    // eviction runs during traffic; everything must still decode.
    ShardedOptions opts;
    opts.shards = 2;
    opts.keystoreBudgetBytes =
        3 * KeyStore::residentBytesFor(ctx->params());
    opts.server.maxBatch = 4;
    opts.server.maxWaitUs = 200;
    const size_t perThread = 8;
    std::vector<std::vector<LweCiphertext>> cts(4);
    std::vector<std::vector<TenantId>> who(4);
    std::vector<std::vector<bool>> bits(4);
    for (size_t w = 0; w < 4; ++w) {
        for (size_t i = 0; i < perThread; ++i) {
            TenantId t = (w * 3 + i) % tenants.size();
            bool b = ((w + i) % 3) != 0;
            who[w].push_back(t);
            bits[w].push_back(b);
            cts[w].push_back(encryptBit(t, b));
        }
    }
    std::atomic<size_t> correct{0};
    {
        ShardedPbsServer server(ctx, provider(), opts);
        std::vector<std::thread> clients;
        for (size_t w = 0; w < 4; ++w) {
            clients.emplace_back([&, w] {
                std::vector<std::future<LweCiphertext>> futures;
                for (size_t i = 0; i < perThread; ++i) {
                    futures.push_back(
                        server.submit(who[w][i], cts[w][i]));
                }
                for (size_t i = 0; i < perThread; ++i) {
                    if (decryptBit(who[w][i], futures[i].get()) ==
                        bits[w][i]) {
                        correct.fetch_add(1);
                    }
                }
            });
        }
        for (auto &c : clients) {
            c.join();
        }
        runtime::ShardedStats stats = server.stats();
        EXPECT_EQ(stats.serving.requests, 4 * perThread);
    }
    EXPECT_EQ(correct.load(), 4 * perThread);
}

TEST_F(MultiTenantFixture, ShardedDestructorDrainsQueuedRequests)
{
    std::vector<std::future<LweCiphertext>> futures;
    {
        ShardedOptions opts;
        opts.shards = 2;
        opts.server.maxBatch = 16;
        opts.server.maxWaitUs = 1000000;
        ShardedPbsServer server(ctx, provider(), opts);
        futures.push_back(server.submit(0, encryptBit(0, true)));
        futures.push_back(server.submit(1, encryptBit(1, false)));
        futures.push_back(server.submit(2, encryptBit(2, true)));
        // Shutdown must flush every shard's underfull batch.
    }
    EXPECT_TRUE(decryptBit(0, futures[0].get()));
    EXPECT_FALSE(decryptBit(1, futures[1].get()));
    EXPECT_TRUE(decryptBit(2, futures[2].get()));
}

} // namespace
} // namespace trinity
