/**
 * @file
 * SIMD-engine tests: the "simd" backend (and the thread pool that
 * composes its kernels) must be bit-identical to the serial reference
 * at every dispatch level the host can run — over every limb-modulus
 * width the repo supports, on spans that are not a multiple of the
 * lane width, through the full CKKS pipeline and the TFHE batched
 * PBS — and the TRINITY_SIMD_LEVEL knob must be strict: unknown or
 * unavailable levels are fatal, never a silent fallback.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "backend/registry.h"
#include "backend/serial_backend.h"
#include "backend/simd_backend.h"
#include "backend/thread_pool_backend.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "common/primes.h"
#include "poly/rns.h"
#include "runtime/batched_pbs.h"

namespace trinity {
namespace {

/** Every level the build compiled in AND this CPU can execute. */
std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> out = {simd::Level::Scalar};
    for (simd::Level level : {simd::Level::Avx2, simd::Level::Avx512}) {
        if (simd::levelAvailable(level)) {
            out.push_back(level);
        }
    }
    return out;
}

/** Run fn with a pinned-level SimdBackend active, then restore serial. */
template <typename Fn>
void
withSimd(simd::Level level, Fn &&fn)
{
    BackendRegistry::instance().use(
        std::make_unique<SimdBackend>(level));
    fn();
    BackendRegistry::instance().select("serial");
}

std::vector<u64>
randomSpan(size_t n, u64 q, u64 seed)
{
    Rng rng(seed);
    return rng.uniformVec(n, q);
}

TEST(SimdRegistry, SimdEngineIsRegisteredAndListed)
{
    auto &reg = BackendRegistry::instance();
    auto names = reg.names();
    EXPECT_NE(std::find(names.begin(), names.end(), "simd"),
              names.end());
    // The unknown-engine error and the explorer banner both print
    // listEngines(); the new engine must be advertised there.
    EXPECT_NE(reg.listEngines().find("simd"), std::string::npos);
    auto engine = reg.create("simd");
    EXPECT_STREQ(engine->name(), "simd");
    EXPECT_GE(engine->preferredBatch(), engine->threadCount());
}

TEST(SimdRegistry, DispatchPicksBestAvailableLevel)
{
    // CI exports TRINITY_SIMD_LEVEL to pin levels; drop it here so
    // this test sees the pure auto-dispatch path, then restore.
    const char *saved = std::getenv("TRINITY_SIMD_LEVEL");
    std::string saved_val = saved != nullptr ? saved : "";
    unsetenv("TRINITY_SIMD_LEVEL");
    SimdBackend engine;
    EXPECT_EQ(engine.level(), simd::bestAvailableLevel());
    EXPECT_EQ(engine.lanes(),
              simd::kernelsForLevel(engine.level()).lanes);
    if (saved != nullptr) {
        setenv("TRINITY_SIMD_LEVEL", saved_val.c_str(), 1);
    }
}

/** NTT fwd/inv bit-exact vs serial across every supported modulus
 *  width (the repo allows q < 2^62) and several transform lengths. */
TEST(SimdEquivalence, NttAllLimbModuli)
{
    for (simd::Level level : availableLevels()) {
        for (size_t n : {size_t(64), size_t(1024), size_t(4096)}) {
            for (u32 bits : {30u, 40u, 50u, 55u, 59u}) {
                auto qs = findNttPrimes(bits, 2 * n, 2);
                Rng rng(1000 + bits);
                RnsPoly a = RnsPoly::uniform(n, qs, rng);
                RnsPoly b = a;
                BackendRegistry::instance().select("serial");
                a.toEval();
                withSimd(level, [&] { b.toEval(); });
                EXPECT_EQ(a.flat(), b.flat())
                    << simd::levelName(level) << " fwd n=" << n
                    << " bits=" << bits;
                BackendRegistry::instance().select("serial");
                a.toCoeff();
                withSimd(level, [&] { b.toCoeff(); });
                EXPECT_EQ(a.flat(), b.flat())
                    << simd::levelName(level) << " inv n=" << n
                    << " bits=" << bits;
            }
        }
    }
}

/** Tiny transforms exercise the n < 8 scalar guard inside the wide
 *  kernels. */
TEST(SimdEquivalence, NttShorterThanVector)
{
    for (simd::Level level : availableLevels()) {
        for (size_t n : {size_t(4), size_t(8), size_t(16)}) {
            auto qs = findNttPrimes(30, 2 * n, 1);
            Rng rng(7 + n);
            RnsPoly a = RnsPoly::uniform(n, qs, rng);
            RnsPoly b = a;
            BackendRegistry::instance().select("serial");
            a.toEval();
            a.toCoeff();
            withSimd(level, [&] {
                b.toEval();
                b.toCoeff();
            });
            EXPECT_EQ(a.flat(), b.flat())
                << simd::levelName(level) << " n=" << n;
        }
    }
}

/** Element-wise kernels on span lengths that are NOT lane multiples:
 *  the vector body plus the scalar tail must both match serial. */
TEST(SimdEquivalence, EltwiseNonLaneMultipleTails)
{
    auto &reg = BackendRegistry::instance();
    for (simd::Level level : availableLevels()) {
        for (size_t n : {size_t(1), size_t(3), size_t(7), size_t(37),
                         size_t(64), size_t(129)}) {
            for (u32 bits : {30u, 50u, 59u}) {
                u64 q = findNttPrimes(bits, 128, 1)[0];
                Modulus mod(q);
                auto a = randomSpan(n, q, 11 * n + bits);
                auto b = randomSpan(n, q, 13 * n + bits);
                auto acc = randomSpan(n, q, 17 * n + bits);

                auto run = [&](PolyBackend &engine) {
                    std::vector<std::vector<u64>> out;
                    std::vector<u64> d(n);
                    EltwiseJob ej{d.data(), a.data(), b.data(), &mod,
                                  n};
                    engine.addBatch(&ej, 1);
                    out.push_back(d);
                    engine.subBatch(&ej, 1);
                    out.push_back(d);
                    engine.negBatch(&ej, 1);
                    out.push_back(d);
                    engine.pointwiseMulBatch(&ej, 1);
                    out.push_back(d);
                    std::vector<u64> m = acc;
                    MulAddJob mj{m.data(), a.data(), b.data(), &mod, n};
                    engine.mulAddBatch(&mj, 1);
                    out.push_back(m);
                    ScalarMulJob sj{d.data(), a.data(), q / 3, &mod, n};
                    engine.scalarMulBatch(&sj, 1);
                    out.push_back(d);
                    return out;
                };
                auto serial = reg.create("serial");
                SimdBackend simd_engine(level);
                auto expect = run(*serial);
                auto got = run(simd_engine);
                EXPECT_EQ(expect, got)
                    << simd::levelName(level) << " n=" << n
                    << " bits=" << bits;
            }
        }
    }
}

/** In-place aliasing (dst == a) is part of the job contract. */
TEST(SimdEquivalence, AliasedDstMatchesSerial)
{
    u64 q = findNttPrimes(45, 128, 1)[0];
    Modulus mod(q);
    for (simd::Level level : availableLevels()) {
        auto a = randomSpan(21, q, 5);
        auto b = randomSpan(21, q, 6);
        auto a2 = a;
        EltwiseJob js{a.data(), a.data(), b.data(), &mod, a.size()};
        BackendRegistry::instance().create("serial")->pointwiseMulBatch(
            &js, 1);
        SimdBackend engine(level);
        EltwiseJob jv{a2.data(), a2.data(), b.data(), &mod, a2.size()};
        engine.pointwiseMulBatch(&jv, 1);
        EXPECT_EQ(a, a2) << simd::levelName(level);
    }
}

/** Full CKKS encrypt -> multiply -> rescale, bit-for-bit per level. */
TEST(SimdEquivalence, CkksPipelineBitIdentical)
{
    auto run = [] {
        auto ctx =
            std::make_shared<CkksContext>(CkksParams::testSmall());
        CkksKeyGenerator keygen(ctx, 42);
        CkksEncoder encoder(ctx);
        CkksEncryptor enc(ctx, keygen.makePublicKey(), 43);
        CkksEvaluator eval(ctx);
        auto relin = keygen.makeRelinKey();
        std::vector<double> vals(ctx->params().slots(), 0.5);
        auto pt = encoder.encodeReal(vals, ctx->params().maxLevel, 0);
        auto ct = enc.encrypt(pt);
        auto prod = eval.multiply(ct, ct, relin);
        eval.rescaleInPlace(prod);
        std::vector<u64> out = prod.c0.flat();
        const auto &c1 = prod.c1.flat();
        out.insert(out.end(), c1.begin(), c1.end());
        return out;
    };
    BackendRegistry::instance().select("serial");
    auto expect = run();
    for (simd::Level level : availableLevels()) {
        std::vector<u64> got;
        withSimd(level, [&] { got = run(); });
        EXPECT_EQ(expect, got) << simd::levelName(level);
    }
}

/** TFHE fused batched PBS, bit-exact against serial per level. */
TEST(SimdEquivalence, TfhePbsBatchBitIdentical)
{
    TfheGateBootstrapper gb(TfheParams::testTiny(), 20240);
    runtime::BatchedBootstrapper bb(gb);
    std::vector<bool> bits = {true, false, false, true, true};
    std::vector<LweCiphertext> cts;
    for (bool b : bits) {
        cts.push_back(gb.encryptBit(b));
    }
    BackendRegistry::instance().select("serial");
    std::vector<LweCiphertext> expect = bb.bootstrapSignBatch(cts);
    for (simd::Level level : availableLevels()) {
        std::vector<LweCiphertext> got;
        withSimd(level, [&] { got = bb.bootstrapSignBatch(cts); });
        ASSERT_EQ(got.size(), expect.size());
        for (size_t i = 0; i < got.size(); ++i) {
            EXPECT_EQ(got[i].a, expect[i].a)
                << simd::levelName(level) << " request " << i;
            EXPECT_EQ(got[i].b, expect[i].b)
                << simd::levelName(level) << " request " << i;
            EXPECT_EQ(gb.decryptBit(got[i]), bits[i]);
        }
    }
}

/** The thread pool composes the same kernels: threads across limbs,
 *  SIMD within a limb, still bit-identical to serial. */
TEST(SimdEquivalence, ThreadPoolComposesSimdKernels)
{
    size_t n = 1024;
    auto qs = findNttPrimes(40, 2 * n, 6);
    Rng rng(99);
    RnsPoly ref = RnsPoly::uniform(n, qs, rng);
    RnsPoly expect = ref;
    BackendRegistry::instance().select("serial");
    expect.toEval();
    for (size_t threads : {2, 4}) {
        RnsPoly got = ref;
        BackendRegistry::instance().use(
            std::make_unique<ThreadPoolBackend>(threads));
        got.toEval();
        EXPECT_EQ(got.flat(), expect.flat()) << threads << " threads";
    }
    BackendRegistry::instance().select("serial");
}

TEST(SimdDispatch, WiderLanesWidenTheBatchHint)
{
    for (simd::Level level : availableLevels()) {
        SimdBackend engine(level);
        EXPECT_GE(engine.preferredBatch(), 8u);
        EXPECT_GE(engine.preferredBatch(), 4 * engine.lanes());
    }
}

TEST(SimdDispatch, LevelRoundTripsThroughEnv)
{
    const char *saved = std::getenv("TRINITY_SIMD_LEVEL");
    std::string saved_val = saved != nullptr ? saved : "";
    for (simd::Level level : availableLevels()) {
        setenv("TRINITY_SIMD_LEVEL", simd::levelName(level), 1);
        SimdBackend engine;
        EXPECT_EQ(engine.level(), level);
    }
    if (saved != nullptr) {
        setenv("TRINITY_SIMD_LEVEL", saved_val.c_str(), 1);
    } else {
        unsetenv("TRINITY_SIMD_LEVEL");
    }
}

#if !defined(__SANITIZE_THREAD__)
TEST(SimdDispatch, UnknownLevelIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("TRINITY_SIMD_LEVEL", "turbo", 1);
            BackendRegistry::instance().create("simd");
        },
        ::testing::ExitedWithCode(1), "TRINITY_SIMD_LEVEL");
}

TEST(SimdDispatch, EmptyLevelIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("TRINITY_SIMD_LEVEL", "", 1);
            BackendRegistry::instance().create("simd");
        },
        ::testing::ExitedWithCode(1), "expected one of");
}

TEST(SimdDispatch, UnavailableLevelIsFatalNotSilent)
{
    if (simd::levelAvailable(simd::Level::Avx512)) {
        GTEST_SKIP() << "host runs avx512; no unavailable level to force";
    }
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("TRINITY_SIMD_LEVEL", "avx512", 1);
            BackendRegistry::instance().create("simd");
        },
        ::testing::ExitedWithCode(1), "TRINITY_SIMD_LEVEL=avx512");
}

TEST(SimdDispatch, UnknownBackendErrorListsSimd)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(BackendRegistry::instance().create("warp-drive"),
                ::testing::ExitedWithCode(1), "simd");
}
#endif

} // namespace
} // namespace trinity
