/**
 * @file
 * Scheme conversion tests (Algorithms 3-5): sample extraction,
 * ring embedding, PackLWEs, field trace, and full roundtrips
 * CKKS -> TFHE -> CKKS.
 */

#include <memory>

#include <gtest/gtest.h>

#include "conv/conversion.h"

namespace trinity {
namespace {

struct ConvFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        CkksParams p;
        p.n = 1 << 10;
        p.maxLevel = 2;
        p.dnum = 1;
        ctx = std::make_shared<CkksContext>(p);
        keygen = std::make_unique<CkksKeyGenerator>(ctx, 2024);
        encryptor = std::make_unique<CkksEncryptor>(
            ctx, keygen->makePublicKey(), 2025);
        evaluator = std::make_unique<CkksEvaluator>(ctx);
        q0 = ctx->qChain()[0];
    }

    /** Encrypt an integer-coefficient message at level 0. */
    CkksCiphertext
    encryptCoeffs(const std::vector<i64> &coeffs)
    {
        CkksPlaintext pt;
        pt.poly = RnsPoly::fromSigned(coeffs, ctx->n(), ctx->qTo(0));
        pt.level = 0;
        pt.scale = 1.0;
        return encryptor->encrypt(pt);
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksKeyGenerator> keygen;
    std::unique_ptr<CkksEncryptor> encryptor;
    std::unique_ptr<CkksEvaluator> evaluator;
    u64 q0 = 0;
};

TEST_F(ConvFixture, ConvLweEncryptDecrypt)
{
    Rng rng(81);
    for (u64 m : {q0 / 16, q0 / 4, q0 - q0 / 8}) {
        auto ct = convLweEncrypt(m, keygen->secretKey(), q0, rng);
        i64 err = centeredRep(Modulus(q0).sub(
                                  convLwePhase(ct, keygen->secretKey()),
                                  m),
                              q0);
        EXPECT_LT(std::abs(err), 64);
    }
}

TEST_F(ConvFixture, SampleExtractPullsCoefficients)
{
    // Algorithm 3: each extracted LWE decrypts to message coefficient i.
    size_t n = ctx->n();
    std::vector<i64> m(n);
    Rng rng(82);
    for (auto &c : m) {
        c = static_cast<i64>(rng.uniform(1u << 24)) - (1 << 23);
    }
    auto ct = encryptCoeffs(m);
    size_t nslot = 8;
    auto lwes = ckksToTfhe(ct, nslot);
    ASSERT_EQ(lwes.size(), nslot);
    for (size_t i = 0; i < nslot; ++i) {
        u64 phase = convLwePhase(lwes[i], keygen->secretKey());
        i64 got = centeredRep(phase, q0);
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(m[i]), 4000.0)
            << "slot " << i;
    }
}

TEST_F(ConvFixture, RingEmbedPutsMessageInCoefficientZero)
{
    Rng rng(83);
    u64 mu = q0 / 8;
    LwePacker packer(ctx, *keygen);
    auto lwe = convLweEncrypt(mu, keygen->secretKey(), q0, rng);
    auto rlwe = packer.ringEmbed(lwe);
    auto dec = encryptor->decrypt(rlwe, keygen->secretKey());
    i64 got = centeredRep(dec.poly.limb(0)[0], q0);
    i64 expect = centeredRep(mu, q0);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(expect),
                1000.0);
}

TEST_F(ConvFixture, TfheToCkksPacksAtStridePositions)
{
    // Algorithm 5 end-to-end: coefficient j*N/nslot must hold N*mu_j.
    Rng rng(84);
    LwePacker packer(ctx, *keygen);
    size_t n = ctx->n();
    size_t nslot = 4;
    std::vector<i64> mus = {static_cast<i64>(q0 / 16),
                            -static_cast<i64>(q0 / 32),
                            static_cast<i64>(q0 / 64), 12345678};
    std::vector<ConvLwe> lwes;
    for (i64 mu : mus) {
        lwes.push_back(convLweEncrypt(toResidue(mu, q0),
                                      keygen->secretKey(), q0, rng));
    }
    auto packed = packer.tfheToCkks(lwes);
    auto dec = encryptor->decrypt(packed, keygen->secretKey());
    Modulus m(q0);
    for (size_t j = 0; j < nslot; ++j) {
        u64 got = dec.poly.limb(0)[j * (n / nslot)];
        // Expected: N * mu_j mod q.
        u64 expect = m.mul(toResidue(mus[j], q0),
                           m.reduce(static_cast<u64>(n)));
        i64 err = centeredRep(m.sub(got, expect), q0);
        // Noise amplified by ~N across the packing tree.
        EXPECT_LT(std::abs(err), static_cast<i64>(q0 / 256))
            << "slot " << j;
    }
}

TEST_F(ConvFixture, FieldTraceClearsNonStrideCoefficients)
{
    // Pack a single LWE with nslot=1: the field trace must clear all
    // coefficients except multiples of N (i.e. only coefficient 0).
    Rng rng(85);
    LwePacker packer(ctx, *keygen);
    u64 mu = q0 / 8;
    auto lwe = convLweEncrypt(mu, keygen->secretKey(), q0, rng);
    auto packed = packer.tfheToCkks({lwe});
    auto dec = encryptor->decrypt(packed, keygen->secretKey());
    Modulus m(q0);
    size_t n = ctx->n();
    u64 expect = m.mul(mu, m.reduce(static_cast<u64>(n)));
    i64 err0 = centeredRep(m.sub(dec.poly.limb(0)[0], expect), q0);
    EXPECT_LT(std::abs(err0), static_cast<i64>(q0 / 256));
    // Every other coefficient is (close to) zero.
    for (size_t i = 1; i < n; i += n / 16) {
        i64 leak = centeredRep(dec.poly.limb(0)[i], q0);
        EXPECT_LT(std::abs(leak), static_cast<i64>(q0 / 256))
            << "coeff " << i;
    }
}

TEST_F(ConvFixture, FullRoundtripCkksTfheCkks)
{
    // CKKS -> (SampleExtract) -> LWEs -> (PackLWEs) -> CKKS.
    Rng rng(86);
    LwePacker packer(ctx, *keygen);
    size_t n = ctx->n();
    size_t nslot = 8;
    std::vector<i64> msg(n, 0);
    for (size_t i = 0; i < nslot; ++i) {
        msg[i] = static_cast<i64>(q0 / 16 / (i + 1));
    }
    auto ct = encryptCoeffs(msg);
    auto lwes = ckksToTfhe(ct, nslot);
    auto packed = packer.tfheToCkks(lwes);
    auto dec = encryptor->decrypt(packed, keygen->secretKey());
    Modulus m(q0);
    for (size_t j = 0; j < nslot; ++j) {
        u64 got = dec.poly.limb(0)[j * (n / nslot)];
        u64 expect = m.mul(toResidue(msg[j], q0),
                           m.reduce(static_cast<u64>(n)));
        i64 err = centeredRep(m.sub(got, expect), q0);
        EXPECT_LT(std::abs(err), static_cast<i64>(q0 / 128))
            << "slot " << j;
    }
}

TEST_F(ConvFixture, HRotateCountFormula)
{
    // Table IX cost driver: nslot-1 packing rotations plus
    // log2(N/nslot) trace rotations.
    EXPECT_EQ(LwePacker::hRotateCount(1 << 14, 2), 1u + 13u);
    EXPECT_EQ(LwePacker::hRotateCount(1 << 14, 8), 7u + 11u);
    EXPECT_EQ(LwePacker::hRotateCount(1 << 14, 32), 31u + 9u);
    EXPECT_EQ(LwePacker::hRotateCount(1 << 10, 1), 10u);
}

} // namespace
} // namespace trinity
