/**
 * @file
 * Unit and property tests for the modular arithmetic layer.
 */

#include <gtest/gtest.h>

#include "common/modarith.h"
#include "common/rng.h"

namespace trinity {
namespace {

TEST(Modulus, BasicOps)
{
    Modulus m(17);
    EXPECT_EQ(m.add(9, 9), 1u);
    EXPECT_EQ(m.sub(3, 9), 11u);
    EXPECT_EQ(m.neg(5), 12u);
    EXPECT_EQ(m.neg(0), 0u);
    EXPECT_EQ(m.mul(5, 7), 1u);
    EXPECT_EQ(m.pow(3, 16), 1u); // Fermat
    EXPECT_EQ(m.mul(m.inv(5), 5), 1u);
}

TEST(Modulus, RejectsOutOfRange)
{
    EXPECT_DEATH({ Modulus m(1); (void)m; }, "");
    EXPECT_DEATH({ Modulus m(1ULL << 62); (void)m; }, "");
}

TEST(Modulus, Reduce128MatchesNaive)
{
    Rng rng(1);
    std::vector<u64> qs = {3, 17, 65537, (1ULL << 31) - 1,
                           0x3fffffffffffffffULL, // 2^62 - 1
                           1099511627689ULL};
    for (u64 q : qs) {
        Modulus m(q);
        for (int i = 0; i < 200; ++i) {
            u64 a = rng.next();
            u64 b = rng.next();
            u128 prod = static_cast<u128>(a) * b;
            EXPECT_EQ(m.reduce128(prod),
                      static_cast<u64>(prod % q))
                << "q=" << q;
        }
    }
}

TEST(Modulus, MulAgainstNaive)
{
    Rng rng(2);
    Modulus m(0x0FFFFFFFFFFFFFC5ULL); // large 60-bit prime-ish value
    for (int i = 0; i < 500; ++i) {
        u64 a = rng.uniform(m.value());
        u64 b = rng.uniform(m.value());
        u128 expect = static_cast<u128>(a) * b % m.value();
        EXPECT_EQ(m.mul(a, b), static_cast<u64>(expect));
    }
}

TEST(Modulus, ShoupMatchesBarrett)
{
    Rng rng(3);
    for (u64 q : {65537ULL, 1099511627689ULL, (1ULL << 45) + 59}) {
        Modulus m(q);
        for (int i = 0; i < 300; ++i) {
            u64 a = rng.uniform(q);
            u64 w = rng.uniform(q);
            u64 pre = m.shoupPrecompute(w);
            EXPECT_EQ(m.mulShoup(a, w, pre), m.mul(a, w));
        }
    }
}

TEST(Modulus, PowProperties)
{
    Modulus m(1000003);
    Rng rng(4);
    for (int i = 0; i < 50; ++i) {
        u64 a = rng.uniform(m.value() - 1) + 1;
        u64 e1 = rng.uniform(1000);
        u64 e2 = rng.uniform(1000);
        // a^(e1+e2) == a^e1 * a^e2
        EXPECT_EQ(m.pow(a, e1 + e2), m.mul(m.pow(a, e1), m.pow(a, e2)));
    }
}

TEST(Modulus, InverseRandomized)
{
    // 2^61 - 1 is a Mersenne prime, so Fermat inversion applies.
    Modulus mp((1ULL << 61) - 1);
    Rng rng(5);
    for (int i = 0; i < 100; ++i) {
        u64 a = rng.uniform(mp.value() - 1) + 1;
        EXPECT_EQ(mp.mul(a, mp.inv(a)), 1u);
    }
}

TEST(CenteredRep, RoundTrip)
{
    u64 q = 97;
    for (u64 a = 0; a < q; ++a) {
        i64 c = centeredRep(a, q);
        EXPECT_LE(c, static_cast<i64>(q / 2));
        EXPECT_GT(c, -static_cast<i64>(q) / 2 - 1);
        EXPECT_EQ(toResidue(c, q), a);
    }
}

} // namespace
} // namespace trinity
