/**
 * @file
 * RNS / BConv tests. The key property: fast base conversion of a value
 * x < Q yields x + u*Q in the target base with 0 <= u < #limbs — the
 * HPS approximation that hybrid keyswitch absorbs as noise.
 */

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/rns.h"

namespace trinity {
namespace {

TEST(RnsPoly, LimbwiseOpsMatchPerLimb)
{
    size_t n = 64;
    auto qs = findNttPrimes(30, 2 * n, 3);
    Rng rng(61);
    RnsPoly a(n, qs), b(n, qs);
    for (size_t j = 0; j < qs.size(); ++j) {
        a.limb(j) = Poly::uniform(n, qs[j], rng);
        b.limb(j) = Poly::uniform(n, qs[j], rng);
    }
    RnsPoly c = a + b;
    for (size_t j = 0; j < qs.size(); ++j) {
        Poly expect = a.limb(j) + b.limb(j);
        EXPECT_EQ(c.limb(j).coeffs(), expect.coeffs());
    }
}

TEST(RnsPoly, FromSignedConsistentAcrossLimbs)
{
    size_t n = 32;
    auto qs = findNttPrimes(30, 2 * n, 2);
    std::vector<i64> coeffs = {5, -3, 0, 7, -1};
    RnsPoly p = RnsPoly::fromSigned(coeffs, n, qs);
    for (size_t j = 0; j < qs.size(); ++j) {
        EXPECT_EQ(centeredRep(p.limb(j)[0], qs[j]), 5);
        EXPECT_EQ(centeredRep(p.limb(j)[1], qs[j]), -3);
        EXPECT_EQ(centeredRep(p.limb(j)[3], qs[j]), 7);
        EXPECT_EQ(centeredRep(p.limb(j)[4], qs[j]), -1);
    }
}

/** CRT-reconstruct a coefficient from <=4 30-bit limbs into u128. */
u128
crtReconstruct(const std::vector<u64> &residues,
               const std::vector<u64> &mods)
{
    // Garner's algorithm over u128 (valid while prod(mods) < 2^127).
    u128 x = residues[0];
    u128 prod = mods[0];
    for (size_t i = 1; i < mods.size(); ++i) {
        Modulus mi(mods[i]);
        u64 prod_mod = static_cast<u64>(prod % mods[i]);
        u64 diff =
            mi.sub(residues[i], static_cast<u64>(x % mods[i]));
        u64 t = mi.mul(diff, mi.inv(prod_mod));
        x += prod * t;
        prod *= mods[i];
    }
    return x;
}

TEST(BaseConverter, ApproximateLiftWithinBound)
{
    size_t n = 32;
    u64 two_n = 2 * n;
    auto from = findNttPrimes(30, two_n, 3);
    auto to = findNttPrimes(29, two_n, 2);
    BaseConverter bc(from, to);

    Rng rng(62);
    std::vector<Poly> in;
    for (u64 q : from) {
        in.push_back(Poly::uniform(n, q, rng));
    }
    // The limbs above are independent random residues — i.e. a random
    // x in [0, Q). Reconstruct x to check the lift.
    u128 big_q = 1;
    for (u64 q : from) {
        big_q *= q;
    }
    auto out = bc.convert(in);
    ASSERT_EQ(out.size(), to.size());
    for (size_t c = 0; c < n; ++c) {
        std::vector<u64> res;
        for (size_t i = 0; i < from.size(); ++i) {
            res.push_back(in[i][c]);
        }
        u128 x = crtReconstruct(res, from);
        // y must equal x + u*Q (mod p_j) for a single u < #from limbs,
        // consistent across all output limbs.
        bool found = false;
        for (u64 u = 0; u <= from.size() && !found; ++u) {
            bool all = true;
            for (size_t j = 0; j < to.size(); ++j) {
                u128 expect = (x + u * big_q) % to[j];
                if (out[j][c] != static_cast<u64>(expect)) {
                    all = false;
                    break;
                }
            }
            found = all;
        }
        EXPECT_TRUE(found) << "coefficient " << c;
    }
}

TEST(BaseConverter, SingleLimbConversionIsExact)
{
    // With a single source limb, qhat = 1 and the conversion is exact
    // for the unsigned representative x in [0, q0).
    size_t n = 16;
    u64 two_n = 2 * n;
    auto from = findNttPrimes(30, two_n, 1);
    auto to = findNttPrimes(36, two_n, 2);
    BaseConverter bc(from, to);
    Rng rng(63);
    std::vector<Poly> in = {Poly::uniform(n, from[0], rng)};
    auto out = bc.convert(in);
    for (size_t c = 0; c < n; ++c) {
        for (size_t j = 0; j < to.size(); ++j) {
            // to[j] > from[0], so x mod p_j == x.
            EXPECT_EQ(out[j][c], in[0][c]);
        }
    }
}

TEST(BaseConverter, MulCountMatchesKernelFormula)
{
    // BConv cost model used by the simulator: alpha*(1 + l) * N.
    size_t n = 128;
    auto from = findNttPrimes(30, 2 * n, 4);
    auto to = findNttPrimes(29, 2 * n, 6);
    BaseConverter bc(from, to);
    EXPECT_EQ(bc.mulCount(n), 128u * 4 * (1 + 6));
}

TEST(RnsPoly, DropLastLimbShortensChain)
{
    size_t n = 32;
    auto qs = findNttPrimes(30, 2 * n, 3);
    RnsPoly p(n, qs);
    EXPECT_EQ(p.numLimbs(), 3u);
    p.dropLastLimb();
    EXPECT_EQ(p.numLimbs(), 2u);
    auto mods = p.moduli();
    EXPECT_EQ(mods[0], qs[0]);
    EXPECT_EQ(mods[1], qs[1]);
}

TEST(RnsPoly, ScalarMulLimbwiseMatchesPerLimb)
{
    size_t n = 32;
    auto qs = findNttPrimes(30, 2 * n, 3);
    Rng rng(77);
    RnsPoly p = RnsPoly::uniform(n, qs, rng);
    std::vector<u64> scalars = {3, 1ULL << 20, 12345};
    RnsPoly q = p;
    q.scalarMulLimbwise(scalars);
    for (size_t j = 0; j < qs.size(); ++j) {
        const Modulus &m = p.modulusAt(j);
        u64 c = m.reduce(scalars[j]);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(q.limb(j)[i], m.mul(p.limb(j)[i], c));
        }
    }
}

TEST(RnsPoly, UniformSamplesLimbMajor)
{
    // RnsPoly::uniform must consume the RNG limb-by-limb, matching a
    // per-limb Poly::uniform loop bit for bit (keygen reproducibility
    // across the flat-storage refactor depends on this).
    size_t n = 32;
    auto qs = findNttPrimes(30, 2 * n, 2);
    Rng r1(5), r2(5);
    RnsPoly flat = RnsPoly::uniform(n, qs, r1, Domain::Eval);
    for (size_t j = 0; j < qs.size(); ++j) {
        Poly limb = Poly::uniform(n, qs[j], r2, Domain::Eval);
        EXPECT_EQ(flat.limb(j).coeffs(), limb.coeffs());
    }
}

} // namespace
} // namespace trinity
