/**
 * @file
 * Backend-equivalence and flat-RNS-layout tests.
 *
 * The ThreadPoolBackend must be bit-identical to the SerialBackend on
 * every batched kernel — the scheduling may differ, the limb kernels
 * may not. These tests run randomized batches through both engines and
 * compare flat buffers exactly, then check the limb-major RnsPoly
 * layout round-trips through every access path.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>

#include "backend/registry.h"
#include "backend/serial_backend.h"
#include "backend/thread_pool_backend.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "common/primes.h"
#include "poly/rns.h"

namespace trinity {
namespace {

/** Run fn under a named engine, restoring "serial" afterwards. */
template <typename Fn>
void
withBackend(const std::string &name, Fn &&fn)
{
    BackendRegistry::instance().select(name);
    fn();
    BackendRegistry::instance().select("serial");
}

std::vector<u64>
testModuli(size_t n, size_t count)
{
    return findNttPrimes(30, 2 * n, count);
}

RnsPoly
randomRns(size_t n, const std::vector<u64> &qs, u64 seed)
{
    Rng rng(seed);
    return RnsPoly::uniform(n, qs, rng);
}

TEST(BackendRegistry, BuiltinsRegistered)
{
    auto names = BackendRegistry::instance().names();
    ASSERT_GE(names.size(), 2u);
    EXPECT_NE(std::find(names.begin(), names.end(), "serial"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "threads"),
              names.end());
}

TEST(BackendRegistry, SelectSwitchesActive)
{
    withBackend("threads", [] {
        EXPECT_STREQ(activeBackend().name(), "threads");
    });
    EXPECT_STREQ(activeBackend().name(), "serial");
}

TEST(BackendEquivalence, NttBatch)
{
    size_t n = 64;
    auto qs = testModuli(n, 5);
    RnsPoly a = randomRns(n, qs, 101);
    RnsPoly b = a;

    withBackend("serial", [&] { a.toEval(); });
    withBackend("threads", [&] { b.toEval(); });
    EXPECT_EQ(a.flat(), b.flat());

    withBackend("serial", [&] { a.toCoeff(); });
    withBackend("threads", [&] { b.toCoeff(); });
    EXPECT_EQ(a.flat(), b.flat());
}

TEST(BackendEquivalence, PointwiseAndAddBatches)
{
    size_t n = 64;
    auto qs = testModuli(n, 4);
    RnsPoly x = randomRns(n, qs, 7);
    RnsPoly y = randomRns(n, qs, 8);
    x.setDomain(Domain::Eval);
    y.setDomain(Domain::Eval);

    RnsPoly xs = x, xt = x;
    withBackend("serial", [&] {
        xs.mulPointwiseInPlace(y);
        xs.addInPlace(y);
        xs.subInPlace(y);
        xs.negInPlace();
    });
    withBackend("threads", [&] {
        xt.mulPointwiseInPlace(y);
        xt.addInPlace(y);
        xt.subInPlace(y);
        xt.negInPlace();
    });
    EXPECT_EQ(xs.flat(), xt.flat());
}

TEST(BackendEquivalence, AutomorphismBatch)
{
    size_t n = 64;
    auto qs = testModuli(n, 3);
    RnsPoly x = randomRns(n, qs, 21);
    RnsPoly rs, rt;
    withBackend("serial", [&] { rs = x.automorphism(5); });
    withBackend("threads", [&] { rt = x.automorphism(5); });
    EXPECT_EQ(rs.flat(), rt.flat());
}

TEST(BackendEquivalence, BaseConvertBatch)
{
    size_t n = 32;
    auto from = findNttPrimes(30, 2 * n, 4);
    auto to = findNttPrimes(29, 2 * n, 3);
    BaseConverter bc(from, to);
    RnsPoly x = randomRns(n, from, 33);

    RnsPoly ys, yt;
    withBackend("serial", [&] { ys = bc.convert(x); });
    withBackend("threads", [&] { yt = bc.convert(x); });
    ASSERT_EQ(ys.numLimbs(), to.size());
    EXPECT_EQ(ys.flat(), yt.flat());
}

TEST(BackendEquivalence, ThreadCountSweepIsBitExact)
{
    size_t n = 128;
    auto qs = testModuli(n, 6);
    RnsPoly ref = randomRns(n, qs, 55);
    RnsPoly expect = ref;
    BackendRegistry::instance().use(
        std::make_unique<SerialBackend>());
    expect.toEval();
    for (size_t threads : {1, 2, 3, 8}) {
        RnsPoly got = ref;
        BackendRegistry::instance().use(
            std::make_unique<ThreadPoolBackend>(threads));
        got.toEval();
        EXPECT_EQ(got.flat(), expect.flat()) << threads << " threads";
    }
    BackendRegistry::instance().select("serial");
}

/** Full CKKS pipeline must produce bit-identical ciphertexts. */
TEST(BackendEquivalence, CkksPipelineBitIdentical)
{
    auto run = [](const std::string &backend) {
        BackendRegistry::instance().select(backend);
        auto ctx =
            std::make_shared<CkksContext>(CkksParams::testSmall());
        CkksKeyGenerator keygen(ctx, 42);
        CkksEncoder encoder(ctx);
        CkksEncryptor enc(ctx, keygen.makePublicKey(), 43);
        CkksEvaluator eval(ctx);
        auto relin = keygen.makeRelinKey();

        std::vector<double> vals(ctx->params().slots(), 0.5);
        auto pt = encoder.encodeReal(vals, ctx->params().maxLevel, 0);
        auto ct = enc.encrypt(pt);
        auto prod = eval.multiply(ct, ct, relin);
        eval.rescaleInPlace(prod);
        std::vector<u64> out = prod.c0.flat();
        const auto &c1 = prod.c1.flat();
        out.insert(out.end(), c1.begin(), c1.end());
        return out;
    };
    auto serial = run("serial");
    auto threads = run("threads");
    BackendRegistry::instance().select("serial");
    EXPECT_EQ(serial, threads);
}

TEST(FlatLayout, GatherRoundTrip)
{
    size_t n = 32;
    auto qs = testModuli(n, 3);
    Rng rng(9);
    std::vector<Poly> limbs;
    for (u64 q : qs) {
        limbs.push_back(Poly::uniform(n, q, rng));
    }
    RnsPoly p(limbs);
    ASSERT_EQ(p.numLimbs(), limbs.size());
    ASSERT_EQ(p.n(), n);
    // Limb-major layout: limb i occupies [i*n, (i+1)*n).
    for (size_t i = 0; i < limbs.size(); ++i) {
        EXPECT_EQ(p.limb(i).coeffs(), limbs[i].coeffs());
        for (size_t c = 0; c < n; ++c) {
            EXPECT_EQ(p.flat()[i * n + c], limbs[i][c]);
        }
        // Materialized Poly round-trips bit-exactly.
        Poly back = p.limbPoly(i);
        EXPECT_EQ(back.coeffs(), limbs[i].coeffs());
        EXPECT_EQ(back.q(), limbs[i].q());
    }
}

TEST(FlatLayout, PrefixAndDropLastLimb)
{
    size_t n = 32;
    auto qs = testModuli(n, 4);
    RnsPoly p = randomRns(n, qs, 11);
    RnsPoly pre = p.prefix(2);
    ASSERT_EQ(pre.numLimbs(), 2u);
    EXPECT_EQ(pre.limb(0).coeffs(), p.limb(0).coeffs());
    EXPECT_EQ(pre.limb(1).coeffs(), p.limb(1).coeffs());

    RnsPoly q = p;
    q.dropLastLimb();
    ASSERT_EQ(q.numLimbs(), 3u);
    EXPECT_EQ(q.flat().size(), 3 * n);
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(q.limb(i).coeffs(), p.limb(i).coeffs());
    }
}

TEST(FlatLayout, LimbViewWritesLandInFlatBuffer)
{
    size_t n = 32;
    auto qs = testModuli(n, 2);
    RnsPoly p(n, qs);
    LimbView v = p.limb(1);
    v[3] = 7;
    EXPECT_EQ(p.flat()[n + 3], 7u);

    Rng rng(4);
    Poly fresh = Poly::uniform(n, qs[0], rng);
    p.limb(0) = fresh;
    EXPECT_EQ(p.limb(0).coeffs(), fresh.coeffs());
}

TEST(ThreadPool, NestedRunDoesNotDeadlock)
{
    BackendRegistry::instance().use(
        std::make_unique<ThreadPoolBackend>(4));
    std::atomic<int> total{0};
    activeBackend().run(8, [&](size_t) {
        // A job that re-enters the backend — from a worker or from
        // the submitting thread — must run inline, not block.
        activeBackend().run(4, [&](size_t) { ++total; });
    });
    EXPECT_EQ(total.load(), 32);
    BackendRegistry::instance().select("serial");
}

} // namespace
} // namespace trinity
