/**
 * @file
 * FFT tests: roundtrip accuracy, negacyclic convolution vs exact
 * integer reference, FFT-vs-NTT error (the paper's motivation for the
 * NTT substitution in TFHE), and SpecialFft canonical-embedding
 * properties.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/fft.h"
#include "poly/ntt.h"

namespace trinity {
namespace {

TEST(Fft, Roundtrip)
{
    Rng rng(41);
    for (size_t n : {8ull, 256ull, 4096ull}) {
        std::vector<cd> a(n);
        for (auto &x : a) {
            x = cd(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
        }
        auto orig = a;
        fft(a, false);
        fft(a, true);
        for (size_t i = 0; i < n; ++i) {
            EXPECT_NEAR(a[i].real(), orig[i].real(), 1e-9);
            EXPECT_NEAR(a[i].imag(), orig[i].imag(), 1e-9);
        }
    }
}

TEST(Fft, ParsevalHolds)
{
    Rng rng(42);
    size_t n = 1024;
    std::vector<cd> a(n);
    double time_energy = 0;
    for (auto &x : a) {
        x = cd(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
        time_energy += std::norm(x);
    }
    fft(a, false);
    double freq_energy = 0;
    for (auto &x : a) {
        freq_energy += std::norm(x);
    }
    EXPECT_NEAR(freq_energy / static_cast<double>(n), time_energy,
                1e-6 * time_energy);
}

/** Naive signed negacyclic product. */
std::vector<i64>
naiveNegacyclicSigned(const std::vector<i64> &a, const std::vector<i64> &b)
{
    size_t n = a.size();
    std::vector<i64> c(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            i64 p = a[i] * b[j];
            size_t k = i + j;
            if (k < n) {
                c[k] += p;
            } else {
                c[k - n] -= p;
            }
        }
    }
    return c;
}

TEST(Fft, NegacyclicConvolutionExactForSmallInputs)
{
    Rng rng(43);
    size_t n = 64;
    std::vector<i64> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<i64>(rng.uniform(1 << 10)) - (1 << 9);
        b[i] = static_cast<i64>(rng.uniform(1 << 10)) - (1 << 9);
    }
    auto expect = naiveNegacyclicSigned(a, b);
    auto got = negacyclicConvolutionFft(a, b);
    EXPECT_EQ(got, expect);
}

TEST(Fft, ApproximationErrorGrowsWithMagnitude_NttStaysExact)
{
    // The core motivation for Trinity's FFT->NTT substitution
    // (Section II-B / VII): double-precision FFT accumulates rounding
    // error for TFHE-scale operand magnitudes, while NTT is exact.
    Rng rng(44);
    size_t n = 1024;
    // TFHE-scale: decomposed digits (~2^22) times bsk words (~2^32).
    std::vector<i64> a(n), b(n);
    for (size_t i = 0; i < n; ++i) {
        a[i] = static_cast<i64>(rng.uniform(1ULL << 22)) - (1LL << 21);
        b[i] = static_cast<i64>(rng.uniform(1ULL << 31)) - (1LL << 30);
    }
    auto got = negacyclicConvolutionFft(a, b);

    // Exact result via NTT over a large prime (all values well within
    // the centered range).
    u64 q = findNttPrimes(59, 2 * n, 1)[0];
    Modulus m(q);
    NttTable t(n, m);
    std::vector<u64> ra(n), rb(n);
    for (size_t i = 0; i < n; ++i) {
        ra[i] = toResidue(a[i], q);
        rb[i] = toResidue(b[i], q);
    }
    t.forward(ra);
    t.forward(rb);
    for (size_t i = 0; i < n; ++i) {
        ra[i] = m.mul(ra[i], rb[i]);
    }
    t.inverse(ra);

    i64 max_err = 0;
    for (size_t i = 0; i < n; ++i) {
        i64 exact = centeredRep(ra[i], q);
        max_err = std::max<i64>(max_err, std::llabs(exact - got[i]));
    }
    // The FFT result must show nonzero rounding error at this scale;
    // the NTT path is exact by construction.
    EXPECT_GT(max_err, 0) << "expected FFT rounding error at 2^53+ scale";
}

TEST(SpecialFft, Roundtrip)
{
    for (size_t slots : {4ull, 64ull, 1024ull}) {
        SpecialFft sf(slots);
        Rng rng(45);
        std::vector<cd> z(slots);
        for (auto &x : z) {
            x = cd(rng.uniformReal() * 2 - 1, rng.uniformReal() * 2 - 1);
        }
        auto orig = z;
        sf.inverse(z);
        sf.forward(z);
        for (size_t i = 0; i < slots; ++i) {
            EXPECT_NEAR(z[i].real(), orig[i].real(), 1e-9);
            EXPECT_NEAR(z[i].imag(), orig[i].imag(), 1e-9);
        }
    }
}

TEST(SpecialFft, EmbeddingIsMultiplicative)
{
    // The canonical embedding maps polynomial multiplication to
    // slot-wise multiplication: decode(a *_negacyclic b) ==
    // decode(a) .* decode(b). Verify on real coefficient vectors built
    // from the inverse embedding (this is what makes CKKS SIMD work).
    size_t slots = 64;
    size_t n = 2 * slots;
    SpecialFft sf(slots);
    Rng rng(46);
    std::vector<cd> z1(slots), z2(slots);
    for (size_t i = 0; i < slots; ++i) {
        z1[i] = cd(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
        z2[i] = cd(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
    }
    // Encode both to coefficient vectors (real polynomials of deg < n).
    auto encode = [&](const std::vector<cd> &z) {
        auto v = z;
        sf.inverse(v);
        std::vector<double> poly(n);
        for (size_t j = 0; j < slots; ++j) {
            poly[j] = v[j].real();
            poly[j + slots] = v[j].imag();
        }
        return poly;
    };
    auto p1 = encode(z1);
    auto p2 = encode(z2);
    // Negacyclic product in double precision.
    std::vector<double> prod(n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            double v = p1[i] * p2[j];
            size_t k = i + j;
            if (k < n) {
                prod[k] += v;
            } else {
                prod[k - n] -= v;
            }
        }
    }
    // Decode the product.
    std::vector<cd> w(slots);
    for (size_t j = 0; j < slots; ++j) {
        w[j] = cd(prod[j], prod[j + slots]);
    }
    sf.forward(w);
    for (size_t j = 0; j < slots; ++j) {
        cd expect = z1[j] * z2[j];
        EXPECT_NEAR(w[j].real(), expect.real(), 1e-6);
        EXPECT_NEAR(w[j].imag(), expect.imag(), 1e-6);
    }
}

} // namespace
} // namespace trinity
