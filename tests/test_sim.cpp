/**
 * @file
 * Simulator-core tests: kernel graph accounting, scheduler dependency
 * and resource-serialization invariants, utilization bounds.
 */

#include <gtest/gtest.h>

#include "sim/machine.h"

namespace trinity {
namespace sim {
namespace {

Machine
toyMachine()
{
    Machine m;
    m.name = "toy";
    m.freqGhz = 1.0;
    m.pools["A"] = Pool{"A", 100.0, 1.0, 0};
    m.pools["B"] = Pool{"B", 50.0, 1.0, 0};
    m.routes[KernelType::Ntt] = Route{"A", 1.0};
    m.routes[KernelType::Ip] = Route{"B", 1.0};
    m.routes[KernelType::ModAdd] = Route{"B", 2.0};
    return m;
}

TEST(KernelGraph, TotalElements)
{
    KernelGraph g;
    g.addAfter(KernelType::Ntt, 1000, 256, {});
    g.addAfter(KernelType::Ntt, 500, 256, {});
    g.addAfter(KernelType::Ip, 300, 256, {});
    EXPECT_EQ(g.totalElements(KernelType::Ntt), 1500u);
    EXPECT_EQ(g.totalElements(KernelType::Ip), 300u);
    EXPECT_EQ(g.totalElements(KernelType::Bconv), 0u);
}

TEST(Scheduler, IndependentKernelsOnDifferentPoolsOverlap)
{
    KernelGraph g;
    g.addAfter(KernelType::Ntt, 1000, 256, {}); // 10 cycles on A
    g.addAfter(KernelType::Ip, 500, 256, {});   // 10 cycles on B
    auto r = schedule(g, toyMachine());
    EXPECT_DOUBLE_EQ(r.makespanCycles, 10.0);
}

TEST(Scheduler, SamePoolSerializes)
{
    KernelGraph g;
    g.addAfter(KernelType::Ntt, 1000, 256, {});
    g.addAfter(KernelType::Ntt, 1000, 256, {});
    auto r = schedule(g, toyMachine());
    EXPECT_DOUBLE_EQ(r.makespanCycles, 20.0);
}

TEST(Scheduler, DependenciesChain)
{
    KernelGraph g;
    size_t a = g.addAfter(KernelType::Ntt, 1000, 256, {});
    size_t b = g.addAfter(KernelType::Ip, 500, 256, {a});
    g.addAfter(KernelType::Ntt, 1000, 256, {b});
    auto r = schedule(g, toyMachine());
    EXPECT_DOUBLE_EQ(r.makespanCycles, 30.0);
}

TEST(Scheduler, CostFactorApplies)
{
    KernelGraph g;
    g.addAfter(KernelType::ModAdd, 500, 256, {}); // cf 2.0 -> 20 cyc
    auto r = schedule(g, toyMachine());
    EXPECT_DOUBLE_EQ(r.makespanCycles, 20.0);
}

TEST(Scheduler, PipelineLatencyChargedPerKernel)
{
    Machine m = toyMachine();
    m.pools["A"].latency = 5;
    KernelGraph g;
    size_t a = g.addAfter(KernelType::Ntt, 100, 256, {}); // 1 + 5
    g.addAfter(KernelType::Ntt, 100, 256, {a});           // 1 + 5
    auto r = schedule(g, m);
    EXPECT_DOUBLE_EQ(r.makespanCycles, 12.0);
}

TEST(Scheduler, EfficiencyStretchesTimeButNotUtilWork)
{
    Machine m = toyMachine();
    m.pools["A"].efficiency = 0.5;
    KernelGraph g;
    g.addAfter(KernelType::Ntt, 1000, 256, {}); // 20 cycles at eff 0.5
    auto r = schedule(g, m);
    EXPECT_DOUBLE_EQ(r.makespanCycles, 20.0);
    // Useful work is still 10 capacity-cycles -> utilization 0.5.
    EXPECT_DOUBLE_EQ(r.utilization("A"), 0.5);
}

TEST(Scheduler, UtilizationNeverExceedsOne)
{
    KernelGraph g;
    for (int i = 0; i < 20; ++i) {
        g.addAfter(KernelType::Ntt, 777, 256, {});
        g.addAfter(KernelType::Ip, 333, 256, {});
    }
    auto r = schedule(g, toyMachine());
    EXPECT_LE(r.utilization("A"), 1.0 + 1e-9);
    EXPECT_LE(r.utilization("B"), 1.0 + 1e-9);
}

TEST(Scheduler, BottleneckMatchesHandComputation)
{
    KernelGraph g;
    g.addAfter(KernelType::Ntt, 1000, 256, {}); // A: 10
    g.addAfter(KernelType::Ip, 1000, 256, {});  // B: 20
    EXPECT_DOUBLE_EQ(bottleneckCycles(g, toyMachine()), 20.0);
}

TEST(Machine, UnroutedKernelDies)
{
    KernelGraph g;
    g.addAfter(KernelType::Auto, 10, 256, {});
    EXPECT_DEATH(schedule(g, toyMachine()), "");
}

TEST(Machine, SecondsConversion)
{
    Machine m = toyMachine();
    m.freqGhz = 2.0;
    EXPECT_DOUBLE_EQ(m.seconds(2e9), 1.0);
}

} // namespace
} // namespace sim
} // namespace trinity
