/**
 * @file
 * Tests for NTT-friendly prime generation and primitive roots.
 */

#include <gtest/gtest.h>

#include "common/primes.h"

namespace trinity {
namespace {

TEST(IsPrime, SmallValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(65537));
    EXPECT_FALSE(isPrime(65536));
    EXPECT_TRUE(isPrime((1ULL << 61) - 1));  // Mersenne prime M61
    EXPECT_FALSE(isPrime((1ULL << 60) - 1));
    // Carmichael numbers must not fool the test.
    EXPECT_FALSE(isPrime(561));
    EXPECT_FALSE(isPrime(41041));
    EXPECT_FALSE(isPrime(825265));
}

TEST(FindNttPrimes, CongruenceAndPrimality)
{
    // Candidate density is 2^(bits-1)/2N, so keep bits comfortably
    // above log2(2N) for three primes to exist.
    for (u32 bits : {30u, 36u, 45u, 59u}) {
        for (u64 two_n : {1ULL << 11, 1ULL << 15, 1ULL << 17}) {
            auto primes = findNttPrimes(bits, two_n, 3);
            ASSERT_EQ(primes.size(), 3u);
            for (u64 p : primes) {
                EXPECT_TRUE(isPrime(p));
                EXPECT_EQ(p % two_n, 1u);
                EXPECT_EQ(Modulus(p).bits(), bits);
            }
            // Distinct.
            EXPECT_NE(primes[0], primes[1]);
            EXPECT_NE(primes[1], primes[2]);
        }
    }
}

TEST(FindNttPrimes, SkipList)
{
    u64 two_n = 1ULL << 12;
    auto first = findNttPrimes(30, two_n, 1);
    auto second = findNttPrimes(30, two_n, 1, first);
    EXPECT_NE(first[0], second[0]);
}

TEST(NearestNttPrime, TfheSubstitutionRule)
{
    // The paper's FFT->NTT substitution: prime closest to the
    // power-of-two torus modulus with p = 1 mod 2N.
    for (u64 two_n : {1ULL << 11, 1ULL << 12}) {
        u64 target = 1ULL << 32;
        u64 p = nearestNttPrime(target, two_n);
        EXPECT_TRUE(isPrime(p));
        EXPECT_EQ(p % two_n, 1u);
        // Should be within a tiny relative distance of 2^32.
        double rel = std::abs(static_cast<double>(p) -
                              static_cast<double>(target)) /
                     static_cast<double>(target);
        EXPECT_LT(rel, 1e-4);
    }
}

TEST(PrimitiveRoot, OrderIsExactly2N)
{
    for (u64 two_n : {1ULL << 9, 1ULL << 13}) {
        u64 p = findNttPrimes(40, two_n, 1)[0];
        Modulus mod(p);
        u64 psi = findPrimitiveRoot(two_n, mod);
        EXPECT_EQ(mod.pow(psi, two_n), 1u);
        EXPECT_EQ(mod.pow(psi, two_n / 2), p - 1); // psi^N = -1
    }
}

} // namespace
} // namespace trinity
