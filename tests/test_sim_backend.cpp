/**
 * @file
 * Simulated-accelerator timing backend tests.
 *
 * The "sim" engine must be a perfect functional citizen — bit-exact
 * with the serial reference on full scheme pipelines — while its
 * TimingLedger must be deterministic across runs and consistent with
 * the static workload/ kernel graphs: executing Algorithm 1 live
 * produces exactly the element volumes keySwitchGraph() predicts
 * (inner-product lanes count executed MACs, i.e. the graph's
 * broadcast-input convention times the two evk accumulators).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "accel/configs.h"
#include "backend/observed_backend.h"
#include "backend/registry.h"
#include "backend/serial_backend.h"
#include "backend/sim_backend.h"
#include "backend/thread_pool_backend.h"
#include "ckks/encoder.h"
#include "ckks/encryptor.h"
#include "ckks/evaluator.h"
#include "ckks/keys.h"
#include "common/primes.h"
#include "tfhe/gates.h"
#include "workload/ckks_ops.h"
#include "workload/tfhe_ops.h"

namespace trinity {
namespace {

using sim::KernelType;

/** Run fn under a named engine, restoring "serial" afterwards. */
template <typename Fn>
void
withBackend(const std::string &name, Fn &&fn)
{
    BackendRegistry::instance().select(name);
    fn();
    BackendRegistry::instance().select("serial");
}

TEST(SimBackend, RegisteredAndSelectable)
{
    auto names = BackendRegistry::instance().names();
    EXPECT_NE(std::find(names.begin(), names.end(), "sim"),
              names.end());
    withBackend("sim", [] {
        EXPECT_STREQ(activeBackend().name(), "sim");
        ASSERT_NE(activeSimBackend(), nullptr);
        // The default machine routes every kernel class we emit.
        EXPECT_TRUE(activeSimBackend()->machine().canRun(
            KernelType::Ntt));
        EXPECT_TRUE(activeSimBackend()->machine().canRun(
            KernelType::Decomp));
    });
    EXPECT_EQ(activeSimBackend(), nullptr);
}

TEST(SimBackend, UnknownEngineErrorListsRegistered)
{
    EXPECT_EXIT(BackendRegistry::instance().select("warp-drive"),
                ::testing::ExitedWithCode(1),
                "registered engines: .*serial.*threads.*sim");
}

TEST(SimBackend, UnknownMachineErrorListsConfigs)
{
    EXPECT_EXIT(accel::machineByName("not-a-machine"),
                ::testing::ExitedWithCode(1),
                "known: .*trinity-ckks.*trinity-tfhe");
    EXPECT_FALSE(accel::machineNames().empty());
    for (const auto &name : accel::machineNames()) {
        EXPECT_FALSE(accel::machineByName(name).pools.empty()) << name;
    }
}

TEST(ThreadPoolEnv, RejectsNonNumericAndZeroThreadCounts)
{
    ::setenv("TRINITY_THREADS", "banana", 1);
    EXPECT_EXIT({ ThreadPoolBackend b; }, ::testing::ExitedWithCode(1),
                "invalid TRINITY_THREADS");
    ::setenv("TRINITY_THREADS", "0", 1);
    EXPECT_EXIT({ ThreadPoolBackend b; }, ::testing::ExitedWithCode(1),
                "invalid TRINITY_THREADS");
    ::setenv("TRINITY_THREADS", "12x", 1);
    EXPECT_EXIT({ ThreadPoolBackend b; }, ::testing::ExitedWithCode(1),
                "invalid TRINITY_THREADS");
    // strtoul would silently wrap a negative value into a huge one,
    // and skips leading whitespace before the sign.
    ::setenv("TRINITY_THREADS", "-2", 1);
    EXPECT_EXIT({ ThreadPoolBackend b; }, ::testing::ExitedWithCode(1),
                "invalid TRINITY_THREADS");
    ::setenv("TRINITY_THREADS", " -2", 1);
    EXPECT_EXIT({ ThreadPoolBackend b; }, ::testing::ExitedWithCode(1),
                "invalid TRINITY_THREADS");
    // A sane value still works, clamped to hardware concurrency.
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 1;
    }
    ::setenv("TRINITY_THREADS", "2", 1);
    {
        ThreadPoolBackend b;
        EXPECT_EQ(b.threadCount(), std::min<size_t>(2, hw));
    }
    ::unsetenv("TRINITY_THREADS");
}

/** Full CKKS pipeline bit-identical between sim and serial. */
TEST(SimBackend, CkksPipelineBitIdenticalToSerial)
{
    auto run = [](const std::string &backend) {
        BackendRegistry::instance().select(backend);
        auto ctx =
            std::make_shared<CkksContext>(CkksParams::testSmall());
        CkksKeyGenerator keygen(ctx, 42);
        CkksEncoder encoder(ctx);
        CkksEncryptor enc(ctx, keygen.makePublicKey(), 43);
        CkksEvaluator eval(ctx);
        auto relin = keygen.makeRelinKey();

        std::vector<double> vals(ctx->params().slots(), 0.25);
        auto pt = encoder.encodeReal(vals, ctx->params().maxLevel, 0);
        auto ct = enc.encrypt(pt);
        auto prod = eval.multiply(ct, ct, relin);
        eval.rescaleInPlace(prod);
        std::vector<u64> out = prod.c0.flat();
        const auto &c1 = prod.c1.flat();
        out.insert(out.end(), c1.begin(), c1.end());
        return out;
    };
    auto serial = run("serial");
    auto sim = run("sim");
    BackendRegistry::instance().select("serial");
    EXPECT_EQ(serial, sim);
}

/** TFHE gate bootstrap bit-identical between sim and serial. */
TEST(SimBackend, TfheGateBitIdenticalToSerial)
{
    auto run = [](const std::string &backend) {
        BackendRegistry::instance().select(backend);
        TfheGateBootstrapper gb(TfheParams::testTiny(), 44);
        auto out = gb.gateNand(gb.encryptBit(true), gb.encryptBit(false));
        std::vector<u64> flat = out.a;
        flat.push_back(out.b);
        return flat;
    };
    auto serial = run("serial");
    auto sim = run("sim");
    BackendRegistry::instance().select("serial");
    EXPECT_EQ(serial, sim);
}

TEST(SimBackend, CycleTotalsDeterministicAcrossRuns)
{
    BackendRegistry::instance().select("sim");
    auto ctx = std::make_shared<CkksContext>(CkksParams::testSmall());
    CkksKeyGenerator keygen(ctx, 7);
    CkksEvaluator eval(ctx);
    auto relin = keygen.makeRelinKey();
    size_t level = ctx->params().maxLevel;
    Rng rng(99);
    RnsPoly d = RnsPoly::uniform(ctx->n(), ctx->qChain(), rng,
                                 Domain::Eval);

    SimBackend *sb = activeSimBackend();
    ASSERT_NE(sb, nullptr);

    struct Snapshot
    {
        double compute;
        double transfer;
        std::map<KernelType, sim::LedgerCell> kernels;
    };
    auto measure = [&] {
        sb->ledger().reset();
        RnsPoly copy = d;
        eval.keySwitch(copy, relin, level);
        return Snapshot{sb->ledger().computeCycles(),
                        sb->ledger().transferCycles(),
                        sb->ledger().byKernel()};
    };
    Snapshot first = measure();
    Snapshot second = measure();
    EXPECT_GT(first.compute, 0.0);
    EXPECT_EQ(first.compute, second.compute);
    EXPECT_EQ(first.transfer, second.transfer);
    ASSERT_EQ(first.kernels.size(), second.kernels.size());
    for (const auto &[type, cell] : first.kernels) {
        const auto &other = second.kernels.at(type);
        EXPECT_EQ(cell.elements, other.elements)
            << kernelTypeName(type);
        EXPECT_EQ(cell.cycles, other.cycles) << kernelTypeName(type);
        EXPECT_EQ(cell.calls, other.calls) << kernelTypeName(type);
    }
    BackendRegistry::instance().select("serial");
}

/**
 * Executing Algorithm 1 under the timing backend must reproduce the
 * element volumes of the static keySwitchGraph() kernel DAG exactly:
 * same NTT/iNTT/BConv/ModAdd/ModMul volumes, and twice the graph's
 * Ip volume (the graph counts broadcast input elements; the ledger
 * counts executed MAC lanes — one per evk accumulator component).
 */
TEST(SimBackend, LedgerMatchesKeySwitchGraph)
{
    BackendRegistry::instance().select("sim");
    auto params = CkksParams::testSmall();
    auto ctx = std::make_shared<CkksContext>(params);
    CkksKeyGenerator keygen(ctx, 21);
    CkksEvaluator eval(ctx);
    auto relin = keygen.makeRelinKey();
    size_t level = params.maxLevel;
    Rng rng(5);
    RnsPoly d = RnsPoly::uniform(ctx->n(), ctx->qChain(), rng,
                                 Domain::Eval);

    SimBackend *sb = activeSimBackend();
    ASSERT_NE(sb, nullptr);
    sb->ledger().reset();
    eval.keySwitch(d, relin, level);

    workload::CkksShape shape{params.n, level, params.maxLevel,
                              params.dnum};
    auto graph = workload::keySwitchGraph(shape);
    const auto &ledger = sb->ledger();
    for (auto type : {KernelType::Ntt, KernelType::Intt,
                      KernelType::Bconv, KernelType::ModAdd,
                      KernelType::ModMul}) {
        EXPECT_EQ(ledger.elements(type), graph.totalElements(type))
            << kernelTypeName(type);
    }
    EXPECT_EQ(ledger.elements(KernelType::Ip),
              2 * graph.totalElements(KernelType::Ip));
    // Every charge landed in the KeySwitch scope.
    auto scoped = ledger.byScope();
    ASSERT_EQ(scoped.count("KeySwitch"), 1u);
    EXPECT_EQ(scoped.size(), 1u);
    BackendRegistry::instance().select("serial");
}

/** Live PBS kernel volumes against the static pbsGraph(). */
TEST(SimBackend, LedgerMatchesPbsGraph)
{
    ::setenv("TRINITY_SIM_MACHINE", "trinity-tfhe", 1);
    BackendRegistry::instance().select("sim");
    ::unsetenv("TRINITY_SIM_MACHINE");
    auto params = TfheParams::testTiny();
    TfheGateBootstrapper gb(params, 44);

    SimBackend *sb = activeSimBackend();
    ASSERT_NE(sb, nullptr);
    EXPECT_EQ(sb->machine().name, "Trinity");
    sb->ledger().reset();
    auto out = gb.gateNand(gb.encryptBit(true), gb.encryptBit(false));
    EXPECT_TRUE(gb.decryptBit(out));

    auto graph = workload::pbsGraph(params);
    const auto &ledger = sb->ledger();
    // Exact-volume kernels. Blind rotation skips an iteration whose
    // switched mask digit is zero (probability 1/2N per iteration);
    // allow that data-dependent slack.
    double slack = 1.0 / (2.0 * params.bigN) * params.nLwe;
    for (auto type :
         {KernelType::Ntt, KernelType::Intt, KernelType::Rotate,
          KernelType::Decomp, KernelType::ModSwitch,
          KernelType::SampleExtract}) {
        double want = static_cast<double>(graph.totalElements(type));
        double got = static_cast<double>(ledger.elements(type));
        EXPECT_LE(got, want) << kernelTypeName(type);
        EXPECT_GE(got, want * (1.0 - slack) - 1.0)
            << kernelTypeName(type);
    }
    // MAC lanes: graph counts broadcast inputs, live executes one
    // lane per output component (k+1).
    double want_ip =
        static_cast<double>(graph.totalElements(KernelType::Ip)) *
        (params.k + 1);
    double got_ip = static_cast<double>(ledger.elements(KernelType::Ip));
    EXPECT_LE(got_ip, want_ip);
    EXPECT_GE(got_ip, want_ip * (1.0 - slack));
    BackendRegistry::instance().select("serial");
}

/** The decorator seam profiles any engine, not just sim. */
TEST(ObservedBackend, CountsEventsAroundThreadPool)
{
    struct Counter final : BackendObserver
    {
        u64 nttElems = 0;
        u64 mulElems = 0;
        u64 events = 0;
        void
        onKernel(const KernelEvent &ev) override
        {
            ++events;
            if (ev.type == KernelType::Ntt) {
                nttElems += ev.elements;
            }
            if (ev.type == KernelType::ModMul) {
                mulElems += ev.elements;
            }
        }
    };
    Counter counter;
    installObserver(&counter);
    BackendRegistry::instance().use(std::make_unique<ObservedBackend>(
        std::make_unique<ThreadPoolBackend>(2)));

    size_t n = 64;
    auto qs = findNttPrimes(30, 2 * n, 3);
    Rng rng(3);
    RnsPoly x = RnsPoly::uniform(n, qs, rng);
    RnsPoly y = RnsPoly::uniform(n, qs, rng, Domain::Eval);
    x.toEval();
    x.mulPointwiseInPlace(y);

    removeObserver(&counter);
    BackendRegistry::instance().select("serial");
    EXPECT_EQ(counter.nttElems, 3 * n);
    EXPECT_EQ(counter.mulElems, 3 * n);
    EXPECT_GE(counter.events, 2u);
}

} // namespace
} // namespace trinity
