/**
 * @file
 * KeyStore tests: weight-accounted LRU eviction order, lazy
 * materialization exactly once under concurrent acquires
 * (counter-asserted through the provider), pinned keys surviving
 * eviction while a batch runs on them, bit-exact evict/refault
 * mid-workload, and the single-tenant-over-budget admission rule.
 * The concurrent cases double as the TSan surface for the store.
 */

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "common/modarith.h"
#include "runtime/key_store.h"
#include "runtime/pbs_server.h"

namespace trinity {
namespace {

using runtime::KeyStore;
using runtime::ResidentKeys;
using runtime::TenantId;
using runtime::TenantKeyMaterial;

struct KeyStoreFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx = std::make_shared<TfheContext>(TfheParams::testTiny(),
                                            31337);
        boot = std::make_unique<TfheBootstrapper>(ctx);
        // Serial generation: the context RNG is not thread-safe.
        for (size_t i = 0; i < 4; ++i) {
            tenants.push_back(TenantKeyMaterial::generate(*ctx, *boot));
        }
        providerCalls = 0;
        // Learn what one resident tenant actually weighs.
        KeyStore probe(*ctx, provider(), 0, "keystore.test.probe");
        perKey = probe.acquire(0)->bytes;
        ASSERT_GT(perKey, 0u);
        providerCalls = 0;
    }

    KeyStore::Provider
    provider()
    {
        return [this](TenantId t) -> const TenantKeyMaterial & {
            providerCalls.fetch_add(1);
            return tenants[static_cast<size_t>(t)];
        };
    }

    LweCiphertext
    encryptBit(TenantId t, bool bit)
    {
        u64 mu = ctx->params().q / 8;
        u64 m = bit ? mu : ctx->modulus().neg(mu);
        return ctx->lweEncrypt(m, tenants[t].lweKey);
    }

    bool
    decryptBit(TenantId t, const LweCiphertext &ct) const
    {
        u64 phase = ctx->lwePhase(ct, tenants[t].lweKey);
        return centeredRep(phase, ctx->q()) > 0;
    }

    /** Reference working set: materialize the stored key by hand. */
    ResidentKeys
    materializeDirect(TenantId t) const
    {
        ResidentKeys keys;
        keys.bsk.bsk = tenants[t].bskStored.bsk;
        for (GgswCiphertext &g : keys.bsk.bsk) {
            ctx->ggswToEval(g);
        }
        keys.ksk = tenants[t].ksk;
        keys.signTv = tenants[t].signTv;
        return keys;
    }

    std::shared_ptr<TfheContext> ctx;
    std::unique_ptr<TfheBootstrapper> boot;
    std::vector<TenantKeyMaterial> tenants;
    std::atomic<u64> providerCalls{0};
    size_t perKey = 0;
};

TEST_F(KeyStoreFixture, ResidentBytesForMatchesActualWeight)
{
    EXPECT_EQ(KeyStore::residentBytesFor(ctx->params()), perKey);
}

TEST_F(KeyStoreFixture, LruEvictionOrderUnderWeightAccounting)
{
    // Room for exactly two resident tenants.
    KeyStore store(*ctx, provider(), 2 * perKey + perKey / 2,
                   "keystore.test.lru");
    store.acquire(0);
    store.acquire(1);
    EXPECT_TRUE(store.resident(0));
    EXPECT_TRUE(store.resident(1));
    EXPECT_EQ(store.residentBytes(), 2 * perKey);

    // Touch 0 so 1 becomes the LRU tail, then fault in 2.
    store.acquire(0);
    store.acquire(2);
    EXPECT_TRUE(store.resident(0));
    EXPECT_FALSE(store.resident(1));
    EXPECT_TRUE(store.resident(2));
    EXPECT_EQ(store.residentBytes(), 2 * perKey);

    // Fault 3: now 0 is the tail (2 was used last).
    store.acquire(3);
    EXPECT_FALSE(store.resident(0));
    EXPECT_TRUE(store.resident(2));
    EXPECT_TRUE(store.resident(3));

    KeyStore::Stats stats = store.stats();
    EXPECT_EQ(stats.evictions, 2u);
    EXPECT_EQ(stats.materializations, 4u);
    EXPECT_EQ(stats.misses, 4u);
    EXPECT_EQ(stats.hits, 1u);
}

TEST_F(KeyStoreFixture, MaterializesExactlyOnceUnderConcurrentAcquire)
{
    KeyStore store(*ctx, provider(), 0, "keystore.test.once");
    const size_t threads = 8;
    std::vector<std::shared_ptr<const ResidentKeys>> got(threads);
    std::vector<std::thread> workers;
    for (size_t i = 0; i < threads; ++i) {
        workers.emplace_back([&, i] { got[i] = store.acquire(2); });
    }
    for (auto &w : workers) {
        w.join();
    }
    // One materialization, one provider lookup; everyone shares the
    // same resident object.
    EXPECT_EQ(providerCalls.load(), 1u);
    KeyStore::Stats stats = store.stats();
    EXPECT_EQ(stats.materializations, 1u);
    EXPECT_EQ(stats.misses, 1u);
    EXPECT_EQ(stats.hits, threads - 1);
    for (size_t i = 1; i < threads; ++i) {
        EXPECT_EQ(got[i].get(), got[0].get()) << "thread " << i;
    }
}

TEST_F(KeyStoreFixture, PinnedKeysSurviveEviction)
{
    // Budget for one tenant: faulting in tenant 1 must evict tenant 0
    // from the store, but the acquired pointer keeps the keys alive.
    KeyStore store(*ctx, provider(), perKey + perKey / 2,
                   "keystore.test.pin");
    std::shared_ptr<const ResidentKeys> pinned = store.acquire(0);
    store.acquire(1);
    EXPECT_FALSE(store.resident(0));
    EXPECT_TRUE(store.resident(1));
    EXPECT_EQ(store.stats().evictions, 1u);

    // The evicted-but-pinned keys still run a correct bootstrap.
    LweCiphertext ct = encryptBit(0, true);
    LweCiphertext out =
        boot->pbs(ct, pinned->signTv, pinned->bsk, pinned->ksk);
    EXPECT_TRUE(decryptBit(0, out));

    ResidentKeys ref = materializeDirect(0);
    LweCiphertext expect = boot->pbs(ct, ref.signTv, ref.bsk, ref.ksk);
    EXPECT_EQ(out.b, expect.b);
    EXPECT_EQ(out.a, expect.a);
}

TEST_F(KeyStoreFixture, ConcurrentAcquireUnderEvictionPressure)
{
    // Thrash: budget for one tenant, four threads acquiring all four
    // tenants; every handed-out pointer must stay usable regardless
    // of concurrent evictions (the TSan job runs this).
    KeyStore store(*ctx, provider(), perKey + perKey / 2,
                   "keystore.test.thrash");
    std::atomic<u64> bad{0};
    std::vector<std::thread> workers;
    for (size_t w = 0; w < 4; ++w) {
        workers.emplace_back([&, w] {
            for (size_t i = 0; i < 12; ++i) {
                TenantId t = (w + i) % 4;
                std::shared_ptr<const ResidentKeys> keys =
                    store.acquire(t);
                if (keys == nullptr || keys->bytes != perKey ||
                    keys->bsk.bsk.empty() ||
                    !keys->bsk.bsk.front().inEval) {
                    bad.fetch_add(1);
                }
            }
        });
    }
    for (auto &w : workers) {
        w.join();
    }
    EXPECT_EQ(bad.load(), 0u);
    KeyStore::Stats stats = store.stats();
    EXPECT_EQ(stats.hits + stats.misses, 48u);
    EXPECT_GE(stats.evictions, 3u);
    EXPECT_LE(store.residentBytes(), 2 * perKey);
}

TEST_F(KeyStoreFixture, SingleTenantWiderThanBudgetIsStillServed)
{
    KeyStore store(*ctx, provider(), perKey / 2, "keystore.test.wide");
    std::shared_ptr<const ResidentKeys> keys = store.acquire(0);
    ASSERT_NE(keys, nullptr);
    EXPECT_TRUE(store.resident(0));
    EXPECT_GT(store.residentBytes(), store.budgetBytes());
    // The over-budget tenant evicts as soon as anyone else faults in.
    store.acquire(1);
    EXPECT_FALSE(store.resident(0));
}

TEST_F(KeyStoreFixture, ExplicitEvictAndClear)
{
    KeyStore store(*ctx, provider(), 0, "keystore.test.evict");
    store.acquire(0);
    store.acquire(1);
    EXPECT_TRUE(store.evict(0));
    EXPECT_FALSE(store.evict(0));
    EXPECT_FALSE(store.resident(0));
    EXPECT_EQ(store.residentBytes(), perKey);
    store.clear();
    EXPECT_FALSE(store.resident(1));
    EXPECT_EQ(store.residentBytes(), 0u);
}

TEST_F(KeyStoreFixture, EvictRefaultMidWorkloadIsBitExact)
{
    // Budget for one tenant, alternating tenants through a
    // multi-tenant PbsServer: every request refaults its tenant's
    // keys (evicting the other), and every response must match the
    // direct single-shot PBS on freshly materialized keys.
    KeyStore store(*ctx, provider(), perKey + perKey / 2,
                   "keystore.test.refault");
    std::vector<ResidentKeys> ref;
    for (TenantId t = 0; t < 2; ++t) {
        ref.push_back(materializeDirect(t));
    }
    std::vector<TenantId> order = {0, 1, 0, 1, 0, 1};
    std::vector<bool> bits = {true, false, false, true, true, true};
    std::vector<LweCiphertext> cts;
    for (size_t i = 0; i < order.size(); ++i) {
        cts.push_back(encryptBit(order[i], bits[i]));
    }
    runtime::ServerOptions opts;
    opts.maxBatch = 1; // one batch per request: forced refault churn
    opts.maxWaitUs = 50;
    opts.label = "pbs_server.test.refault";
    {
        runtime::PbsServer server(ctx, store, opts);
        for (size_t i = 0; i < order.size(); ++i) {
            LweCiphertext out = server.submit(order[i], cts[i]).get();
            LweCiphertext expect =
                boot->pbs(cts[i], ref[order[i]].signTv,
                          ref[order[i]].bsk, ref[order[i]].ksk);
            EXPECT_EQ(out.b, expect.b) << "request " << i;
            EXPECT_EQ(out.a, expect.a) << "request " << i;
            EXPECT_EQ(decryptBit(order[i], out), bits[i])
                << "request " << i;
        }
    }
    KeyStore::Stats stats = store.stats();
    // Alternating under a one-tenant budget refaults every time.
    EXPECT_EQ(stats.materializations, order.size());
    EXPECT_GE(stats.evictions, order.size() - 2);
}

} // namespace
} // namespace trinity
