/**
 * @file
 * Command-stream executor tests: bit-exactness of recorded-stream vs
 * blocking execution on every engine (serial/threads/simd/sim),
 * out-of-order-completion stress over randomized dependency graphs,
 * protocol death tests, the coefficient-tiled NTT path of the thread
 * pool, and the sim ledger's overlapped-makespan bracketing for a
 * fused PBS batch.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "accel/configs.h"
#include "backend/command_stream.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "backend/thread_pool_backend.h"
#include "common/primes.h"
#include "common/rng.h"
#include "runtime/batched_pbs.h"
#include "sim/machine.h"
#include "workload/tfhe_ops.h"

namespace trinity {
namespace {

/** Temporarily force an env var, restoring the prior state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_) {
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (hadOld_) {
            ::setenv(name_, old_.c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }

  private:
    const char *name_;
    bool hadOld_ = false;
    std::string old_;
};

/**
 * A deterministic workload recorded against externally owned buffers:
 * a mix of NTT round-trips, element-wise chains, mulAdd accumulation,
 * automorphism, scalar multiply, and raw tasks, with genuine
 * dependencies (later commands read earlier results). Recording it on
 * any engine must produce the bytes the serial blocking path does.
 */
struct Workload
{
    size_t n = 1024;
    Modulus mod;
    std::shared_ptr<const NttTable> table;
    std::vector<std::vector<u64>> buf; ///< 6 buffers of length n

    explicit Workload(u64 seed)
        : mod(findNttPrimes(40, 2 * n, 1)[0]),
          table(NttTableCache::get(n, mod.value()))
    {
        Rng rng(seed);
        buf.resize(6);
        for (auto &b : buf) {
            b.resize(n);
            for (auto &x : b) {
                x = rng.uniform(mod.value());
            }
        }
    }

    void
    record(CommandStream &s)
    {
        u64 *b0 = buf[0].data();
        u64 *b1 = buf[1].data();
        u64 *b2 = buf[2].data();
        u64 *b3 = buf[3].data();
        u64 *b4 = buf[4].data();
        u64 *b5 = buf[5].data();
        // b0, b1 to the NTT domain.
        Job ntt = s.nttForward({{b0, table.get()}, {b1, table.get()}});
        // b2 = b0 * b1 (pointwise, NTT domain).
        Job mul =
            s.pointwiseMul({{b2, b0, b1, &mod, n}}, {ntt});
        // b3 += b2 * b0 twice, chained (RMW on b3).
        Job ma1 = s.mulAdd({{b3, b2, b0, &mod, n}}, {mul});
        Job ma2 = s.mulAdd({{b3, b2, b1, &mod, n}}, {ma1});
        // b2 back to coefficients; fence pins the whole prefix.
        Job intt = s.nttInverse({{b2, table.get()}}, {mul, ma2});
        Event fence = s.fence();
        // b4 = automorphism(b2), b5 = 3 * b4, then a raw task folds
        // b3 into b5 (disjoint chunks per index).
        Job aut = s.automorphism({{b4, b2, &mod, n, 5}}, {intt, fence});
        Job sc = s.scalarMul({{b5, b4, 3, &mod, n}}, {aut});
        s.task(
            4,
            [this, b5, b3](size_t i) {
                size_t chunk = n / 4;
                for (size_t c = i * chunk; c < (i + 1) * chunk; ++c) {
                    b5[c] = mod.add(b5[c], b3[c]);
                }
            },
            {sc, ma2});
        // b0/b1 stay in the NTT domain — also part of the output.
    }

    std::vector<u64>
    flat() const
    {
        std::vector<u64> out;
        for (const auto &b : buf) {
            out.insert(out.end(), b.begin(), b.end());
        }
        return out;
    }
};

/** Activate an engine; "threads" gets an explicit 4-worker pool so
 *  the pipelined executor is exercised even on single-core hosts
 *  (the default constructor sizes to hardware concurrency). */
void
activateEngine(const std::string &engine)
{
    auto &reg = BackendRegistry::instance();
    if (engine == "threads") {
        reg.use(std::make_unique<ThreadPoolBackend>(4));
    } else {
        reg.select(engine);
    }
}

std::vector<u64>
runWorkloadOn(const std::string &engine, u64 seed)
{
    activateEngine(engine);
    Workload w(seed);
    auto stream = activeBackend().newStream();
    w.record(*stream);
    stream->submit();
    stream->wait();
    BackendRegistry::instance().select("serial");
    return w.flat();
}

TEST(CommandStream, RecordedStreamBitExactAcrossEngines)
{
    // Blocking reference: the same ops issued eagerly on serial (an
    // EagerStream is by construction the blocking path).
    std::vector<u64> ref = runWorkloadOn("serial", 99);
    for (const char *engine : {"threads", "simd", "sim"}) {
        EXPECT_EQ(runWorkloadOn(engine, 99), ref) << engine;
    }
}

/**
 * Randomized-DAG stress: many commands with random dependency edges,
 * where each command's declared deps are exactly the hazards it has
 * (last writer of its sources, last toucher of its destination). Any
 * dependency-respecting execution order — including the thread pool's
 * out-of-order completion — must reproduce the serial record-order
 * result bit for bit.
 */
TEST(CommandStream, RandomDagStressMatchesSerial)
{
    constexpr size_t kBufs = 8;
    constexpr size_t kCmds = 120;
    constexpr size_t kLen = 512;
    Modulus mod(findNttPrimes(30, 2 * kLen, 1)[0]);

    auto run = [&](const std::string &engine, u64 seed) {
        activateEngine(engine);
        Rng rng(seed);
        std::vector<std::vector<u64>> buf(kBufs);
        for (auto &b : buf) {
            b.resize(kLen);
            for (auto &x : b) {
                x = rng.uniform(mod.value());
            }
        }
        std::vector<Job> lastWriter(kBufs);
        std::vector<std::vector<Job>> readersSince(kBufs);
        auto stream = activeBackend().newStream();
        for (size_t c = 0; c < kCmds; ++c) {
            size_t a = rng.uniform(kBufs);
            size_t b = rng.uniform(kBufs);
            size_t d = rng.uniform(kBufs);
            // Hazard deps: RAW on sources, WAW+WAR on the dest.
            std::vector<Job> deps = {lastWriter[a], lastWriter[b],
                                     lastWriter[d]};
            for (Job r : readersSince[d]) {
                deps.push_back(r);
            }
            u64 *pa = buf[a].data();
            u64 *pb = buf[b].data();
            u64 *pd = buf[d].data();
            Job j;
            switch (rng.uniform(4)) {
            case 0:
                j = stream->add({{pd, pa, pb, &mod, kLen}}, deps);
                break;
            case 1:
                j = stream->sub({{pd, pa, pb, &mod, kLen}}, deps);
                break;
            case 2:
                j = stream->pointwiseMul({{pd, pa, pb, &mod, kLen}},
                                         deps);
                break;
            default:
                j = stream->task(
                    2,
                    [pd, pa, pb, &mod, kLen](size_t half) {
                        size_t lo = half * (kLen / 2);
                        size_t hi = lo + kLen / 2;
                        for (size_t i = lo; i < hi; ++i) {
                            pd[i] = mod.mulAdd(pa[i], pb[i], pd[i]);
                        }
                    },
                    deps);
                break;
            }
            lastWriter[d] = j;
            readersSince[d].clear();
            readersSince[a].push_back(j);
            readersSince[b].push_back(j);
        }
        stream->submit();
        stream->wait();
        BackendRegistry::instance().select("serial");
        std::vector<u64> out;
        for (const auto &bb : buf) {
            out.insert(out.end(), bb.begin(), bb.end());
        }
        return out;
    };

    for (u64 seed : {7u, 1234u, 80211u}) {
        auto ref = run("serial", seed);
        EXPECT_EQ(run("threads", seed), ref) << "seed " << seed;
        EXPECT_EQ(run("sim", seed), ref) << "seed " << seed;
    }
}

/** End-to-end: the fully recorded blind rotation (one stream over
 *  all lockstep steps) executed by the pipelined pool must reproduce
 *  the serial bytes — per-request chains reuse scratch regions across
 *  steps, so this exercises the WAR/WAW ordering for real. */
TEST(CommandStream, PipelinedPbsBatchMatchesSerialBitExact)
{
    TfheGateBootstrapper gb(TfheParams::testTiny(), 777);
    std::vector<bool> bits = {true, false, true, true, false};
    std::vector<LweCiphertext> cts;
    for (bool b : bits) {
        cts.push_back(gb.encryptBit(b));
    }
    runtime::BatchedBootstrapper bb(gb);
    BackendRegistry::instance().select("serial");
    std::vector<LweCiphertext> ref = bb.bootstrapSignBatch(cts);
    activateEngine("threads");
    std::vector<LweCiphertext> piped = bb.bootstrapSignBatch(cts);
    BackendRegistry::instance().select("serial");
    ASSERT_EQ(piped.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
        EXPECT_EQ(piped[i].a, ref[i].a) << i;
        EXPECT_EQ(piped[i].b, ref[i].b) << i;
        EXPECT_EQ(gb.decryptBit(piped[i]), bits[i]) << i;
    }
}

/** The blocking record-and-wait wrapper, called repeatedly with one
 *  shared scratch: every call opens a fresh stream, so the scratch's
 *  cached per-request job chains must rebind (stream ids, not
 *  recycled addresses) and results must match the sequential CMux. */
TEST(CommandStream, BlockingCmuxWrapperReusesScratchAcrossStreams)
{
    TfheGateBootstrapper gb(TfheParams::testTiny(), 4242);
    TfheContext &ctx = gb.context();
    const auto &p = gb.params();
    const GgswCiphertext &g0 = gb.bootstrapKey().bsk[0];
    const GgswCiphertext &g1 = gb.bootstrapKey().bsk[1];

    auto run = [&](const std::string &engine) {
        activateEngine(engine);
        const TfheBootstrapper &boot = gb.bootstrapper();
        std::vector<GlweCiphertext> accs;
        for (size_t j = 0; j < 3; ++j) {
            accs.push_back(ctx.glweTrivial(boot.makeTestVector(
                [j](size_t i) { return (i * 31 + j * 7) & 0xffff; })));
        }
        std::vector<u64> rot1 = {1, 0, 5};    // slot 1 inactive
        std::vector<u64> rot2 = {3, 2, 0};    // slot 2 inactive
        CmuxBatchScratch sc;
        ctx.cmuxRotateBatch(g0, accs.data(), rot1.data(), accs.size(),
                            sc);
        ctx.cmuxRotateBatch(g1, accs.data(), rot2.data(), accs.size(),
                            sc);
        BackendRegistry::instance().select("serial");
        std::vector<u64> flat;
        for (const auto &acc : accs) {
            for (size_t c = 0; c <= p.k; ++c) {
                const Poly &comp = c < p.k ? acc.a[c] : acc.b;
                flat.insert(flat.end(), comp.coeffs().begin(),
                            comp.coeffs().end());
            }
        }
        return flat;
    };
    // Sequential reference: CMux per active slot, step by step.
    auto ref = [&] {
        BackendRegistry::instance().select("serial");
        const TfheBootstrapper &boot = gb.bootstrapper();
        std::vector<GlweCiphertext> accs;
        for (size_t j = 0; j < 3; ++j) {
            accs.push_back(ctx.glweTrivial(boot.makeTestVector(
                [j](size_t i) { return (i * 31 + j * 7) & 0xffff; })));
        }
        auto step = [&](const GgswCiphertext &g,
                        const std::vector<u64> &rots) {
            for (size_t j = 0; j < accs.size(); ++j) {
                if (rots[j] % (2 * p.bigN) == 0) {
                    continue;
                }
                GlweCiphertext rotated =
                    ctx.glweMulMonomial(accs[j], rots[j]);
                accs[j] = ctx.cmux(g, accs[j], rotated);
            }
        };
        step(g0, {1, 0, 5});
        step(g1, {3, 2, 0});
        std::vector<u64> flat;
        for (const auto &acc : accs) {
            for (size_t c = 0; c <= p.k; ++c) {
                const Poly &comp = c < p.k ? acc.a[c] : acc.b;
                flat.insert(flat.end(), comp.coeffs().begin(),
                            comp.coeffs().end());
            }
        }
        return flat;
    }();
    for (const char *engine : {"serial", "threads", "sim"}) {
        EXPECT_EQ(run(engine), ref) << engine;
    }
}

TEST(CommandStreamDeath, WaitOnUnsubmittedStreamIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            BackendRegistry::instance().select("serial");
            Workload w(1);
            auto stream = activeBackend().newStream();
            w.record(*stream);
            stream->wait();
        },
        ::testing::ExitedWithCode(1), "unsubmitted CommandStream");
}

TEST(CommandStreamDeath, RecordingAfterSubmitIsFatal)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            BackendRegistry::instance().select("serial");
            Workload w(1);
            auto stream = activeBackend().newStream();
            stream->submit();
            w.record(*stream);
        },
        ::testing::ExitedWithCode(1), "recording after submit");
}

/** The coefficient-tiled path engages exactly when limb fan-out
 *  cannot feed the pool (scalar kernels, few large jobs) and must be
 *  bit-identical to the monolithic transform. */
TEST(TiledNtt, UnderfullBatchesMatchSerialBitExact)
{
    ScopedEnv scalar("TRINITY_SIMD_LEVEL", "scalar");
    ThreadPoolBackend tp(8); // count*2 <= 8 engages tiling for <=4 jobs
    for (size_t n : {1024u, 4096u}) {
        u64 q = findNttPrimes(50, 2 * n, 1)[0];
        auto table = NttTableCache::get(n, q);
        for (size_t count : {1u, 3u}) {
            Rng rng(n + count);
            std::vector<std::vector<u64>> tiled(count), ref(count);
            std::vector<NttJob> jobs;
            for (size_t j = 0; j < count; ++j) {
                tiled[j].resize(n);
                for (auto &x : tiled[j]) {
                    x = rng.uniform(q);
                }
                ref[j] = tiled[j];
                jobs.push_back({tiled[j].data(), table.get()});
            }
            tp.nttForwardBatch(jobs.data(), jobs.size());
            for (size_t j = 0; j < count; ++j) {
                table->forward(ref[j].data());
                EXPECT_EQ(tiled[j], ref[j])
                    << "forward n=" << n << " count=" << count
                    << " job=" << j;
            }
            tp.nttInverseBatch(jobs.data(), jobs.size());
            for (size_t j = 0; j < count; ++j) {
                table->inverse(ref[j].data());
                EXPECT_EQ(tiled[j], ref[j])
                    << "inverse n=" << n << " count=" << count
                    << " job=" << j;
            }
        }
    }
}

/**
 * The acceptance bracket for live overlap pricing: on a fused PBS
 * batch, the ledger's overlapped makespan must improve on sequential
 * charging (streams expose cross-pool overlap) while staying above
 * the static scheduler's idealized makespan for the same pipelined
 * graph (the live path charges extra difference adds and eagerly
 * serialized prologue/epilogue kernels).
 */
TEST(SimStream, OverlappedMakespanBracketsOnFusedPbsBatch)
{
    if (!streamsEnabled()) {
        GTEST_SKIP() << "TRINITY_STREAMS=off";
    }
    {
        ScopedEnv machine("TRINITY_SIM_MACHINE", "trinity-tfhe");
        BackendRegistry::instance().select("sim");
    }
    auto params = TfheParams::testTiny();
    TfheGateBootstrapper gb(params, 31337);
    runtime::BatchedBootstrapper bb(gb);
    const size_t B = 8;
    std::vector<LweCiphertext> cts;
    for (size_t i = 0; i < B; ++i) {
        cts.push_back(gb.encryptBit(i % 3 != 0));
    }
    SimBackend *sb = activeSimBackend();
    ASSERT_NE(sb, nullptr);
    sb->ledger().reset();
    std::vector<LweCiphertext> out = bb.runChunked(
        {{&cts[0], &cts[1], &cts[2], &cts[3], &cts[4], &cts[5], &cts[6],
          &cts[7]},
         std::vector<const Poly *>(B, &gb.signVector())},
        B);
    for (size_t i = 0; i < B; ++i) {
        EXPECT_EQ(gb.decryptBit(out[i]), i % 3 != 0);
    }
    double sequential = sb->ledger().computeCycles();
    double overlapped = sb->ledger().overlappedCycles();
    double static_span =
        sim::schedule(workload::pbsBatchGraph(params, B), sb->machine())
            .makespanCycles;
    EXPECT_LT(overlapped, sequential);
    EXPECT_GT(overlapped, static_span);
    BackendRegistry::instance().select("serial");
}

} // namespace
} // namespace trinity
