/**
 * @file
 * PIR subsystem tests: gadget exactness, keyswitched automorphisms,
 * oblivious query expansion (exact one-hot for random indices),
 * RLWE->GSW conversion, CMux-tree-vs-direct-index equivalence, the
 * end-to-end answer/decode path on every engine (bit-identical
 * serial vs threads vs simd vs sim), and the weight-accounted
 * database residency cache.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "backend/registry.h"
#include "backend/thread_pool_backend.h"
#include "pir/database.h"
#include "pir/gadget.h"
#include "pir/pir.h"
#include "runtime/pir_server.h"

namespace trinity {
namespace pir {
namespace {

/** Engines every test host can run ("simd" resolves to the best
 *  compiled-in level, scalar at worst). */
std::vector<std::string>
engines()
{
    return {"serial", "threads", "simd", "sim"};
}

/** Activate an engine; "threads" gets an explicit 4-worker pool so
 *  the pipelined executor is exercised even on single-core hosts. */
void
activateEngine(const std::string &engine)
{
    auto &reg = BackendRegistry::instance();
    if (engine == "threads") {
        reg.use(std::make_unique<ThreadPoolBackend>(4));
    } else {
        reg.select(engine);
    }
}

struct SerialGuard
{
    ~SerialGuard() { BackendRegistry::instance().select("serial"); }
};

u64
centeredAbs(const Modulus &mod, u64 x)
{
    i64 c = centeredRep(x, mod.value());
    return static_cast<u64>(c < 0 ? -c : c);
}

// ----------------------------------------------------------------- gadget

void
checkGadgetReconstruction(u64 q, u32 logB, u32 levels)
{
    Gadget g(q, logB, levels);
    Modulus mod(q);
    Rng rng(7);
    std::vector<i64> digits(levels);
    // Truncation term q / B^levels (zero once the gadget covers all
    // of q) plus the per-level rounding of g_l = round(q / B^(l+1)).
    u32 width = logB * levels;
    u64 bound = (width >= 63 ? 0 : (q >> width)) +
                u64(levels) * (1ULL << logB);
    for (int trial = 0; trial < 200; ++trial) {
        u64 x = rng.uniform(q);
        g.decompose(x, digits.data());
        u64 recon = 0;
        for (u32 l = 0; l < levels; ++l) {
            EXPECT_LT(std::abs(digits[l]),
                      i64(1) << (logB - 1) | 1);
            u64 d = toResidue(digits[l], mod.value());
            recon = mod.add(recon, mod.mul(d, g.element(l)));
        }
        EXPECT_LE(centeredAbs(mod, mod.sub(recon, x)), bound)
            << "x=" << x << " logB=" << logB << " levels=" << levels;
    }
}

TEST(PirGadget, ReconstructsWithinBound)
{
    PirParams pp = PirParams::testTiny();
    const u64 q = pp.tfhe.q;
    // Fold/CMux gadget: top-32 truncated decomposition.
    checkGadgetReconstruction(q, pp.tfhe.logBg, pp.tfhe.lb);
    // Expansion keyswitch gadget: full-width, near-exact.
    checkGadgetReconstruction(q, pp.tfhe.logBks, pp.tfhe.lk);
}

// --------------------------------------------------- keyswitched automorphism

TEST(PirGalois, KeyswitchTracksAutomorphism)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 11);
    TfheContext &ctx = client.ctx();
    const TfheParams &p = ctx.params();
    const Modulus &mod = ctx.modulus();

    Rng rng(12);
    Poly msg(p.bigN, p.q);
    for (size_t i = 0; i < p.bigN; ++i) {
        msg[i] = mod.mul(rng.uniform(1ULL << pp.logP),
                         pp.delta());
    }
    GlweCiphertext ct = ctx.glweEncrypt(msg, client.secretKey());

    for (u32 j = 0; j < pp.expansionLevels(); ++j) {
        u64 g = expansionGaloisElement(p.bigN, j);
        GaloisKey key = makeGaloisKey(ctx, client.secretKey(), g);
        GlweCiphertext out = applyGalois(ctx, key, ct);
        Poly want = msg.automorphism(g);
        Poly got = ctx.glwePhase(out, client.secretKey());
        for (size_t i = 0; i < p.bigN; ++i) {
            EXPECT_LT(centeredAbs(mod, mod.sub(got[i], want[i])),
                      pp.delta() / 2)
                << "g=" << g << " coeff " << i;
        }
    }
}

// ------------------------------------------------------------- expansion

TEST(PirExpand, DecryptsToExactOneHot)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 21);
    TfheContext &ctx = client.ctx();
    const Modulus &mod = ctx.modulus();
    PirQueryKeys keys = client.makeQueryKeys();
    PirEngine engine(client.sharedCtx(), pp);
    Gadget gadget(pp.tfhe.q, pp.tfhe.logBg, pp.tfhe.lb);

    Rng rng(22);
    for (int trial = 0; trial < 3; ++trial) {
        size_t index = rng.uniform(pp.records());
        size_t row = index % pp.dim1;
        size_t col = index / pp.dim1;
        PirQuery query = client.makeQuery(index);
        std::vector<GlweCiphertext> expanded =
            engine.expand(keys, query);
        ASSERT_EQ(expanded.size(),
                  size_t(1) << pp.expansionLevels());

        // Selection slots: Delta at exactly the queried row.
        for (size_t i = 0; i < pp.dim1; ++i) {
            Poly ph = ctx.glwePhase(expanded[i], client.secretKey());
            u64 want = (i == row) ? pp.delta() : 0;
            for (size_t c = 0; c < pp.tfhe.bigN; ++c) {
                u64 expect = (c == 0) ? want : 0;
                EXPECT_LT(centeredAbs(mod, mod.sub(ph[c], expect)),
                          pp.delta() / 2)
                    << "entry " << i << " coeff " << c;
            }
        }
        // GSW slots: g_l * bit_t(col), exact up to expansion noise.
        for (u32 t = 0; t < pp.gswDims; ++t) {
            u64 bit = (col >> t) & 1;
            for (u32 l = 0; l < pp.tfhe.lb; ++l) {
                const GlweCiphertext &e =
                    expanded[pp.dim1 + t * pp.tfhe.lb + l];
                Poly ph = ctx.glwePhase(e, client.secretKey());
                u64 want = bit ? gadget.element(l) : 0;
                EXPECT_LT(centeredAbs(mod, mod.sub(ph[0], want)),
                          pp.delta() / 2)
                    << "t=" << t << " l=" << l;
            }
        }
    }
}

// ------------------------------------------------------- RLWE->GSW + CMux

TEST(PirGsw, ConvertedGswDrivesCmux)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 31);
    TfheContext &ctx = client.ctx();
    const Modulus &mod = ctx.modulus();
    PirQueryKeys keys = client.makeQueryKeys();
    PirEngine engine(client.sharedCtx(), pp);

    size_t col = 0b10 % (size_t(1) << pp.gswDims);
    size_t index = col * pp.dim1 + 3;
    PirQuery query = client.makeQuery(index);
    std::vector<GlweCiphertext> expanded = engine.expand(keys, query);

    Poly m0(pp.tfhe.bigN, pp.tfhe.q), m1(pp.tfhe.bigN, pp.tfhe.q);
    m0[0] = mod.mul(1, pp.delta());
    m1[0] = mod.mul(2, pp.delta());
    GlweCiphertext c0 = ctx.glweTrivial(m0);
    GlweCiphertext c1 = ctx.glweTrivial(m1);

    for (u32 t = 0; t < pp.gswDims; ++t) {
        u64 bit = (col >> t) & 1;
        GgswCiphertext gsw = engine.queryGsw(keys, expanded, t);
        GlweCiphertext sel = ctx.cmux(gsw, c0, c1);
        Poly ph = ctx.glwePhase(sel, client.secretKey());
        u64 want = mod.mul(bit ? 2 : 1, pp.delta());
        EXPECT_LT(centeredAbs(mod, mod.sub(ph[0], want)),
                  pp.delta() / 2)
            << "t=" << t << " bit=" << bit;
    }
}

// --------------------------------------------------------------- end to end

TEST(PirE2e, AnswerMatchesDirectIndex)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 41);
    PirQueryKeys keys = client.makeQueryKeys();
    PirEngine engine(client.sharedCtx(), pp);
    PirDatabase db = PirDatabase::random(pp, 42);
    ResidentPirDb resident = materializePirDb(client.ctx(), db);

    Rng rng(43);
    std::set<size_t> indices = {0, pp.records() - 1};
    while (indices.size() < 5) {
        indices.insert(rng.uniform(pp.records()));
    }
    for (size_t index : indices) {
        PirQuery query = client.makeQuery(index);
        PirResponse resp = engine.answer(resident, keys, query);
        EXPECT_EQ(client.decode(resp), db.record(index))
            << "index " << index;
    }
}

TEST(PirE2e, BitIdenticalAcrossEngines)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 51);
    PirQueryKeys keys = client.makeQueryKeys();
    PirEngine engine(client.sharedCtx(), pp);
    PirDatabase db = PirDatabase::random(pp, 52);
    size_t index = pp.records() / 2 + 1;
    PirQuery query = client.makeQuery(index);

    PirResponse reference;
    bool haveReference = false;
    for (const std::string &name : engines()) {
        activateEngine(name);
        // Materialize per engine too: the serving form must also be
        // engine-independent.
        ResidentPirDb resident = materializePirDb(client.ctx(), db);
        PirResponse resp = engine.answer(resident, keys, query);
        BackendRegistry::instance().select("serial");
        EXPECT_EQ(client.decode(resp), db.record(index))
            << "engine " << name;
        if (!haveReference) {
            reference = resp;
            haveReference = true;
        } else {
            EXPECT_TRUE(resp == reference)
                << "engine " << name
                << " response differs from serial";
        }
    }
}

// ---------------------------------------------------------------- residency

TEST(PirDbStoreTest, LruEvictionAndPinning)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 61);
    std::vector<PirDatabase> dbs;
    for (u64 t = 0; t < 3; ++t) {
        dbs.push_back(PirDatabase::random(pp, 100 + t));
    }
    size_t perDb = pp.residentBytes();
    // Budget fits exactly two resident databases.
    PirDbStore store(
        client.ctx(), [&](PirTenantId t) -> const PirDatabase & {
            return dbs[t];
        },
        2 * perDb, "pir_dbstore_test");

    auto a = store.acquire(0);
    auto b = store.acquire(1);
    EXPECT_EQ(store.stats().misses, 2u);
    EXPECT_EQ(store.residentBytes(), 2 * perDb);

    // Touch 0, then fault 2: LRU should evict 1.
    store.acquire(0);
    EXPECT_EQ(store.stats().hits, 1u);
    auto c = store.acquire(2);
    EXPECT_TRUE(store.resident(0));
    EXPECT_FALSE(store.resident(1));
    EXPECT_TRUE(store.resident(2));
    EXPECT_EQ(store.stats().evictions, 1u);

    // The pinned pointer outlives eviction.
    EXPECT_EQ(b->polys.size(),
              pp.records() * pp.tfhe.lb);
    // Re-acquire of the evicted tenant is a fresh materialization.
    auto b2 = store.acquire(1);
    EXPECT_EQ(store.stats().materializations, 4u);
    EXPECT_NE(b.get(), b2.get());

    EXPECT_TRUE(store.evict(2));
    EXPECT_FALSE(store.resident(2));
    EXPECT_FALSE(store.evict(2));
}

// ------------------------------------------------------------------ server

TEST(PirServerTest, ConcurrentQueriesDecodeCorrectly)
{
    SerialGuard guard;
    PirParams pp = PirParams::testTiny();
    PirClient client(pp, 71);
    PirQueryKeys keys = client.makeQueryKeys();
    PirDatabase db = PirDatabase::random(pp, 72);
    PirDbStore store(
        client.ctx(),
        [&](PirTenantId) -> const PirDatabase & { return db; }, 0,
        "pir_server_test_store");

    runtime::ServerOptions opts;
    opts.label = "pir_server_test";
    opts.maxBatch = 4;
    opts.maxQueue = 64;
    runtime::PirServer server(
        client.sharedCtx(), pp, store,
        [&](PirTenantId) -> const PirQueryKeys & { return keys; },
        opts);

    std::vector<size_t> indices;
    std::vector<std::future<PirResponse>> futs;
    Rng rng(73);
    for (int i = 0; i < 8; ++i) {
        size_t index = rng.uniform(pp.records());
        indices.push_back(index);
        futs.push_back(
            server.submit(i % 2, client.makeQuery(index)));
    }
    for (size_t i = 0; i < futs.size(); ++i) {
        PirResponse resp = futs[i].get();
        EXPECT_EQ(client.decode(resp), db.record(indices[i]))
            << "query " << i;
    }
    runtime::ServerStats st = server.stats();
    EXPECT_EQ(st.requests, 8u);
    EXPECT_EQ(st.rejected, 0u);
    EXPECT_GE(st.batches, 1u);
}

} // namespace
} // namespace pir
} // namespace trinity
