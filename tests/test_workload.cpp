/**
 * @file
 * Workload-model tests: kernel-count identities against the scheme
 * algebra, Fig. 2 breakdown shares, PBS graph structure, and the
 * end-to-end reproduction bands for the headline results (paper value
 * vs model value within a stated tolerance).
 */

#include <gtest/gtest.h>

#include "accel/configs.h"
#include "workload/apps.h"
#include "workload/tfhe_ops.h"

namespace trinity {
namespace workload {
namespace {

TEST(CkksOps, KeySwitchNttVolumeMatchesAlgebra)
{
    // Algorithm 1 at (N, l, L, dnum): forward NTTs = beta * (l+1+alpha)
    // polys, inverse = (l+1) input + 2(l+1+alpha) output polys.
    CkksShape s{1ULL << 16, 23, 23, 3};
    auto g = keySwitchGraph(s);
    u64 n = s.n;
    u64 ext = 24 + 8; // l+1 + alpha
    EXPECT_EQ(g.totalElements(sim::KernelType::Ntt), 3 * ext * n);
    EXPECT_EQ(g.totalElements(sim::KernelType::Intt),
              24 * n + 2 * ext * n);
}

TEST(CkksOps, Fig2KeySwitchBreakdown)
{
    // Fig. 2: CKKS KeySwitch (L=23, dnum=3) splits ~59% NTT / ~41%
    // MAC. Our algebra gives the same imbalance within a few points.
    CkksShape s{1ULL << 16, 23, 23, 3};
    auto b = keySwitchBreakdown(s);
    EXPECT_NEAR(b.nttShare(), 0.592, 0.08);
    EXPECT_GT(b.nttShare(), 0.5); // NTT must dominate
}

TEST(TfheOps, Fig2PbsBreakdown)
{
    // Fig. 2: PBS is ~75% NTT across the three parameter sets.
    for (const auto &p : {TfheParams::setI(), TfheParams::setII(),
                          TfheParams::setIII()}) {
        auto b = pbsBreakdown(p);
        EXPECT_NEAR(b.nttShare(), 0.755, 0.06) << p.name;
    }
}

TEST(TfheOps, PbsGraphIterationCount)
{
    auto p = TfheParams::setI();
    auto g = pbsGraph(p);
    // NTT volume: n_lwe iterations x (k+1)lb polys of length N.
    EXPECT_EQ(g.totalElements(sim::KernelType::Ntt),
              u64(500) * 4 * 1024);
    EXPECT_EQ(g.totalElements(sim::KernelType::Intt),
              u64(500) * 2 * 1024);
}

TEST(TfheOps, BatchGraphScalesElementVolumes)
{
    auto p = TfheParams::setI();
    auto g1 = pbsBatchGraph(p, 1);
    auto g8 = pbsBatchGraph(p, 8);
    // B=1 is exactly the sequential graph; B=8 gives every request
    // its own per-step dependency chain (the structure the live
    // command-stream recorder emits), so the node count scales with B
    // while the total element volume scales exactly 8x.
    auto ref = pbsGraph(p);
    EXPECT_EQ(g1.size(), ref.size());
    EXPECT_EQ(g8.size(), 1 + 8 * (1 + 6 * p.nLwe) + 2);
    for (auto t : {sim::KernelType::Ntt, sim::KernelType::Intt,
                   sim::KernelType::Ip, sim::KernelType::Decomp,
                   sim::KernelType::Rotate, sim::KernelType::ModAdd,
                   sim::KernelType::SampleExtract}) {
        EXPECT_EQ(g1.totalElements(t), ref.totalElements(t));
        EXPECT_EQ(g8.totalElements(t), 8 * ref.totalElements(t));
    }
    // The per-request chains expose cross-request overlap: 8 fused
    // requests schedule in far less than 8 sequential makespans.
    auto m = accel::trinityTfhe(4);
    double span1 = sim::schedule(g1, m).makespanCycles;
    double span8 = sim::schedule(g8, m).makespanCycles;
    EXPECT_LT(span8, 8 * span1);
    EXPECT_GT(span8, span1);
}

TEST(TfheOps, BatchedThroughputAmortizesPipelineFills)
{
    // Fusing a batch pays each node's pipeline fill once instead of
    // B times, so per-request throughput must improve monotonically.
    auto p = TfheParams::setI();
    auto m = accel::trinityTfhe(4);
    double b1 = pbsBatchThroughputOps(m, p, 1);
    double b8 = pbsBatchThroughputOps(m, p, 8);
    double b32 = pbsBatchThroughputOps(m, p, 32);
    EXPECT_NEAR(b1, m.freqGhz * 1e9 / pbsLatencyCycles(m, p), 1e-9);
    EXPECT_GT(b8, b1);
    EXPECT_GT(b32, b8);
    // ... and stays below the perfect steady-state bound.
    EXPECT_LT(b32, pbsThroughputOps(m, p));
}

TEST(TfheOps, ThroughputScalesWithClusters)
{
    auto p = TfheParams::setI();
    double t1 = pbsThroughputOps(accel::trinityTfhe(1), p);
    double t4 = pbsThroughputOps(accel::trinityTfhe(4), p);
    double t8 = pbsThroughputOps(accel::trinityTfhe(8), p);
    EXPECT_NEAR(t4 / t1, 4.0, 0.01);
    EXPECT_NEAR(t8 / t4, 2.0, 0.01);
}

TEST(TfheOps, LatencyDominatedByDependencyChain)
{
    // Blind rotation is serial: latency must far exceed the
    // throughput-bound busy time.
    auto p = TfheParams::setI();
    auto m = accel::trinityTfhe(4);
    double lat = pbsLatencyCycles(m, p);
    double busy = 1e9 * m.freqGhz / pbsThroughputOps(m, p);
    EXPECT_GT(lat, 2.0 * busy);
}

// --- Reproduction bands: paper value vs model value -------------------

struct Band
{
    double paper;
    double tolerance; // relative
};

void
expectInBand(double value, Band band, const std::string &what)
{
    EXPECT_NEAR(value, band.paper, band.paper * band.tolerance)
        << what << ": model=" << value << " paper=" << band.paper;
}

TEST(Repro, Table7PbsThroughput)
{
    auto trinity = accel::trinityTfhe(4);
    expectInBand(pbsThroughputOps(trinity, TfheParams::setI()),
                 {600060, 0.10}, "Trinity Set-I");
    expectInBand(pbsThroughputOps(trinity, TfheParams::setII()),
                 {340136, 0.10}, "Trinity Set-II");
    expectInBand(pbsThroughputOps(trinity, TfheParams::setIII()),
                 {180987, 0.10}, "Trinity Set-III");
    auto wo = accel::trinityTfheWithoutCu();
    expectInBand(pbsThroughputOps(wo, TfheParams::setI()),
                 {83333, 0.02}, "w/o CU Set-I");
    expectInBand(pbsThroughputOps(wo, TfheParams::setII()),
                 {49603, 0.02}, "w/o CU Set-II");
    auto w = accel::trinityTfheWithCu();
    expectInBand(pbsThroughputOps(w, TfheParams::setI()),
                 {150015, 0.05}, "w/ CU Set-I");
    auto morph = accel::morphling();
    expectInBand(pbsThroughputOps(morph, TfheParams::setI()),
                 {147615, 0.10}, "Morphling Set-I");
    expectInBand(pbsThroughputOps(morph, TfheParams::setIII()),
                 {41850, 0.15}, "Morphling Set-III");
}

TEST(Repro, Table7AblationOrdering)
{
    // The qualitative claim: w/o CU < Morphling@1GHz < w/ CU < full.
    for (const auto &p : {TfheParams::setI(), TfheParams::setII(),
                          TfheParams::setIII()}) {
        double wo = pbsThroughputOps(accel::trinityTfheWithoutCu(), p);
        double m1 = pbsThroughputOps(accel::morphling1GHz(), p);
        double w = pbsThroughputOps(accel::trinityTfheWithCu(), p);
        double full = pbsThroughputOps(accel::trinityTfhe(4), p);
        EXPECT_LT(wo, m1) << p.name;
        EXPECT_LT(m1, w) << p.name;
        EXPECT_LT(w, full) << p.name;
    }
}

TEST(Repro, Table6CkksLatency)
{
    auto trinity = accel::trinityCkks(4);
    auto shrp = accel::sharp();
    expectInBand(ckksAppMs(trinity, packedBootstrap()), {1.92, 0.15},
                 "Trinity Bootstrap");
    expectInBand(ckksAppMs(shrp, packedBootstrap()), {3.12, 0.15},
                 "SHARP Bootstrap");
    expectInBand(ckksAppMs(trinity, helr()), {1.37, 0.15},
                 "Trinity HELR");
    expectInBand(ckksAppMs(shrp, helr()), {2.53, 0.15}, "SHARP HELR");
    expectInBand(ckksAppMs(trinity, resnet20()), {89, 0.20},
                 "Trinity ResNet-20");
    expectInBand(ckksAppMs(shrp, resnet20()), {99, 0.25},
                 "SHARP ResNet-20");
}

TEST(Repro, Table6TrinityBeatsSharpOnEveryWorkload)
{
    auto trinity = accel::trinityCkks(4);
    auto shrp = accel::sharp();
    double speedups = 0;
    int cnt = 0;
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        double t = ckksAppMs(trinity, app);
        double s = ckksAppMs(shrp, app);
        EXPECT_LT(t, s) << app.name;
        speedups += s / t;
        ++cnt;
    }
    // Paper: 1.49x average speedup over SHARP.
    EXPECT_NEAR(speedups / cnt, 1.49, 0.35);
}

TEST(Repro, Table8NnLatency)
{
    auto m = accel::trinityTfhe(4);
    expectInBand(nnLatencyMs(m, TfheParams::setIII(), 20),
                 {69.86, 0.20}, "NN-20");
    expectInBand(nnLatencyMs(m, TfheParams::setIII(), 50),
                 {146.26, 0.25}, "NN-50");
    // NN-100 in the paper scales sub-linearly; allow a wider band.
    expectInBand(nnLatencyMs(m, TfheParams::setIII(), 100),
                 {277.13, 0.45}, "NN-100");
}

TEST(Repro, Table9ConversionLatency)
{
    auto m = accel::trinityConversion(4);
    // Paper: 0.049 / 0.063 / 0.142 ms. The model tracks the growth
    // with nslot; absolute values land within ~2x (documented).
    double c2 = conversionMs(m, 1ULL << 14, 8, 2);
    double c8 = conversionMs(m, 1ULL << 14, 8, 8);
    double c32 = conversionMs(m, 1ULL << 14, 8, 32);
    EXPECT_NEAR(c2, 0.049, 0.049 * 0.6);
    EXPECT_NEAR(c8, 0.063, 0.063 * 0.6);
    EXPECT_NEAR(c32, 0.142, 0.142 * 0.6);
    EXPECT_LT(c2, c8);
    EXPECT_LT(c8, c32);
    // Growth from 2 to 32 slots is sub-16x (trace term amortizes).
    EXPECT_LT(c32 / c2, 6.0);
}

TEST(Repro, Table10He3db)
{
    expectInBand(he3dbTrinitySeconds(4096), {0.42, 0.15},
                 "Trinity HE3DB-4096");
    expectInBand(he3dbTrinitySeconds(16384), {1.68, 0.15},
                 "Trinity HE3DB-16384");
    expectInBand(he3dbSharpMorphlingSeconds(4096), {5.64, 0.25},
                 "S+M HE3DB-4096");
    expectInBand(he3dbSharpMorphlingSeconds(16384), {22.55, 0.25},
                 "S+M HE3DB-16384");
    // The architectural claim: one unified device crushes the split
    // system on hybrid workloads.
    EXPECT_GT(he3dbSharpMorphlingSeconds(4096) /
                  he3dbTrinitySeconds(4096),
              3.0);
}

TEST(Repro, Fig11IpOnCuImprovesCkksLatency)
{
    auto trinity = accel::trinityCkks(4);
    auto ewe = accel::trinityCkksIpUseEwe(4);
    double gains = 0;
    int cnt = 0;
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        double t = ckksAppMs(trinity, app);
        double e = ckksAppMs(ewe, app);
        EXPECT_LE(t, e) << app.name;
        gains += e / t;
        ++cnt;
    }
    // Paper: 1.12x average, up to 1.13x.
    EXPECT_NEAR(gains / cnt, 1.12, 0.15);
}

TEST(Repro, Fig15ClusterScaling)
{
    // Paper: 4 -> 8 clusters gives ~2.04x average speedup.
    double total_gain = 0;
    int cnt = 0;
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        double t4 = ckksAppMs(accel::trinityCkks(4), app);
        double t8 = ckksAppMs(accel::trinityCkks(8), app);
        total_gain += t4 / t8;
        ++cnt;
    }
    EXPECT_NEAR(total_gain / cnt, 2.04, 0.25);
}

} // namespace
} // namespace workload
} // namespace trinity
