/**
 * @file
 * Tests for the extended CKKS evaluator operations: square, scalar
 * add/multiply, and conjugation.
 */

#include <gtest/gtest.h>

#include "ckks/evaluator.h"

namespace trinity {
namespace {

struct CkksExtraFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx = std::make_shared<CkksContext>(CkksParams::testSmall());
        keygen = std::make_unique<CkksKeyGenerator>(ctx, 888);
        encoder = std::make_unique<CkksEncoder>(ctx);
        enc = std::make_unique<CkksEncryptor>(
            ctx, keygen->makePublicKey(), 889);
        eval = std::make_unique<CkksEvaluator>(ctx);
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksKeyGenerator> keygen;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<CkksEncryptor> enc;
    std::unique_ptr<CkksEvaluator> eval;
};

TEST_F(CkksExtraFixture, SquareMatchesMultiply)
{
    auto relin = keygen->makeRelinKey();
    std::vector<cd> z = {cd(0.8, 0.3), cd(-1.2, 0.1), cd(0.5, -0.9)};
    size_t level = ctx->params().maxLevel;
    auto ct = enc->encrypt(encoder->encode(z, level));
    auto sq = eval->square(ct, relin);
    eval->rescaleInPlace(sq);
    auto mul = eval->multiply(ct, ct, relin);
    eval->rescaleInPlace(mul);
    auto zs = encoder->decode(enc->decrypt(sq, keygen->secretKey()));
    auto zm = encoder->decode(enc->decrypt(mul, keygen->secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        cd expect = z[i] * z[i];
        EXPECT_NEAR(zs[i].real(), expect.real(), 2e-3);
        EXPECT_NEAR(zs[i].imag(), expect.imag(), 2e-3);
        EXPECT_NEAR(zs[i].real(), zm[i].real(), 2e-3);
    }
}

TEST_F(CkksExtraFixture, AddScalarShiftsEverySlot)
{
    std::vector<cd> z = {cd(0.25, 0), cd(-1.5, 0), cd(3.0, 0)};
    size_t level = ctx->params().maxLevel;
    auto ct = enc->encrypt(encoder->encode(z, level));
    auto shifted = eval->addScalar(ct, 2.5);
    auto out =
        encoder->decode(enc->decrypt(shifted, keygen->secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(out[i].real(), z[i].real() + 2.5, 1e-4);
        EXPECT_NEAR(out[i].imag(), 0.0, 1e-4);
    }
    // Untouched slots also gain the constant.
    EXPECT_NEAR(out[10].real(), 2.5, 1e-4);
}

TEST_F(CkksExtraFixture, MulScalarInt)
{
    std::vector<cd> z = {cd(0.5, -0.25), cd(1.25, 0.75)};
    size_t level = ctx->params().maxLevel;
    auto ct = enc->encrypt(encoder->encode(z, level));
    auto tripled = eval->mulScalarInt(ct, -3);
    auto out =
        encoder->decode(enc->decrypt(tripled, keygen->secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(out[i].real(), -3 * z[i].real(), 1e-4);
        EXPECT_NEAR(out[i].imag(), -3 * z[i].imag(), 1e-4);
    }
}

TEST_F(CkksExtraFixture, ConjugateFlipsImaginaryParts)
{
    auto conj_key = keygen->makeGaloisKey(2 * ctx->n() - 1);
    std::vector<cd> z = {cd(0.4, 0.9), cd(-0.7, -0.2), cd(0.1, 0.6)};
    size_t level = ctx->params().maxLevel;
    auto ct = enc->encrypt(encoder->encode(z, level));
    auto cj = eval->conjugate(ct, conj_key);
    auto out = encoder->decode(enc->decrypt(cj, keygen->secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(out[i].real(), z[i].real(), 1e-4);
        EXPECT_NEAR(out[i].imag(), -z[i].imag(), 1e-4);
    }
}

TEST_F(CkksExtraFixture, SquareChainUsesWholeLadder)
{
    // z^(2^3) via repeated squaring down the modulus chain.
    auto relin = keygen->makeRelinKey();
    std::vector<cd> z = {cd(0.9, 0), cd(-0.8, 0)};
    size_t level = ctx->params().maxLevel;
    auto ct = enc->encrypt(encoder->encode(z, level));
    std::vector<cd> expect = z;
    for (int i = 0; i < 3; ++i) {
        ct = eval->square(ct, relin);
        eval->rescaleInPlace(ct);
        for (auto &x : expect) {
            x *= x;
        }
    }
    auto out = encoder->decode(enc->decrypt(ct, keygen->secretKey()));
    for (size_t i = 0; i < z.size(); ++i) {
        EXPECT_NEAR(out[i].real(), expect[i].real(), 5e-2);
    }
}

} // namespace
} // namespace trinity
