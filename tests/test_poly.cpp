/**
 * @file
 * Poly kernel tests: ring axioms, automorphism group behaviour, and
 * monomial rotation — the Auto and Rotate kernels of Table I.
 */

#include <gtest/gtest.h>

#include "common/primes.h"
#include "poly/poly.h"

namespace trinity {
namespace {

struct PolyFixture : public ::testing::Test
{
    size_t n = 256;
    u64 q = findNttPrimes(36, 512, 1)[0];
    Rng rng{51};
};

TEST_F(PolyFixture, AddSubRoundtrip)
{
    Poly a = Poly::uniform(n, q, rng);
    Poly b = Poly::uniform(n, q, rng);
    Poly c = a + b;
    c.subInPlace(b);
    EXPECT_EQ(c.coeffs(), a.coeffs());
}

TEST_F(PolyFixture, MulIsCommutativeAndDistributive)
{
    Poly a = Poly::uniform(n, q, rng);
    Poly b = Poly::uniform(n, q, rng);
    Poly c = Poly::uniform(n, q, rng);
    EXPECT_EQ((a * b).coeffs(), (b * a).coeffs());
    Poly lhs = a * (b + c);
    Poly rhs = (a * b) + (a * c);
    EXPECT_EQ(lhs.coeffs(), rhs.coeffs());
}

TEST_F(PolyFixture, MulByOneIsIdentity)
{
    Poly a = Poly::uniform(n, q, rng);
    Poly one(n, q);
    one[0] = 1;
    EXPECT_EQ((a * one).coeffs(), a.coeffs());
}

TEST_F(PolyFixture, XToTheNIsMinusOne)
{
    // X^(n/2) * X^(n/2) = X^n = -1 in the negacyclic ring.
    Poly xh(n, q);
    xh[n / 2] = 1;
    Poly sq = xh * xh;
    Poly minus_one(n, q);
    minus_one[0] = Modulus(q).neg(1);
    EXPECT_EQ(sq.coeffs(), minus_one.coeffs());
}

TEST_F(PolyFixture, AutomorphismIsRingHomomorphism)
{
    Poly a = Poly::uniform(n, q, rng);
    Poly b = Poly::uniform(n, q, rng);
    u64 g = 5;
    // sigma(a*b) == sigma(a)*sigma(b)
    Poly lhs = (a * b).automorphism(g);
    Poly rhs = a.automorphism(g) * b.automorphism(g);
    EXPECT_EQ(lhs.coeffs(), rhs.coeffs());
    // sigma(a+b) == sigma(a)+sigma(b)
    Poly l2 = (a + b).automorphism(g);
    Poly r2 = a.automorphism(g) + b.automorphism(g);
    EXPECT_EQ(l2.coeffs(), r2.coeffs());
}

TEST_F(PolyFixture, AutomorphismComposition)
{
    Poly a = Poly::uniform(n, q, rng);
    // sigma_5(sigma_5(a)) == sigma_25(a)
    Poly lhs = a.automorphism(5).automorphism(5);
    Poly rhs = a.automorphism(25 % (2 * n));
    EXPECT_EQ(lhs.coeffs(), rhs.coeffs());
}

TEST_F(PolyFixture, AutomorphismInverse)
{
    Poly a = Poly::uniform(n, q, rng);
    // g * g_inv = 1 mod 2n -> sigma_g then sigma_{g_inv} is identity.
    u64 two_n = 2 * n;
    u64 g = 5;
    u64 g_inv = 1;
    // brute force the inverse of 5 mod 2n
    for (u64 cand = 1; cand < two_n; cand += 2) {
        if ((g * cand) % two_n == 1) {
            g_inv = cand;
            break;
        }
    }
    Poly back = a.automorphism(g).automorphism(g_inv);
    EXPECT_EQ(back.coeffs(), a.coeffs());
}

TEST_F(PolyFixture, MonomialMulMatchesPolyMul)
{
    Poly a = Poly::uniform(n, q, rng);
    for (u64 t : {u64(1), u64(7), u64(n - 1), u64(n + 3),
                  u64(2 * n - 1)}) {
        Poly mono(n, q);
        Poly expect;
        if (t < n) {
            mono[t] = 1;
            expect = a * mono;
        } else {
            mono[t - n] = Modulus(q).neg(1); // X^(n+k) = -X^k
            expect = a * mono;
        }
        Poly got = a.mulMonomial(t);
        EXPECT_EQ(got.coeffs(), expect.coeffs()) << "t=" << t;
    }
}

TEST_F(PolyFixture, MonomialFullCircle)
{
    Poly a = Poly::uniform(n, q, rng);
    // X^(2n) == 1.
    Poly r = a.mulMonomial(n).mulMonomial(n);
    EXPECT_EQ(r.coeffs(), a.coeffs());
}

TEST_F(PolyFixture, InfNorm)
{
    Poly a(n, q);
    a[3] = 5;
    a[7] = q - 2; // centered: -2
    EXPECT_EQ(a.infNorm(), 5u);
}

TEST_F(PolyFixture, DomainMismatchDies)
{
    Poly a = Poly::uniform(n, q, rng);
    Poly b = Poly::uniform(n, q, rng);
    a.toEval();
    EXPECT_DEATH(a.addInPlace(b), "");
}

} // namespace
} // namespace trinity
