/**
 * @file
 * Non-NTT hot-kernel tests: the SIMD automorphism and two-phase BConv
 * kernels must be bit-identical to an independent naive reference at
 * every dispatch level, over every limb-modulus width, on spans that
 * are not a multiple of the lane width; phase-chunked BConv recording
 * must reproduce the monolithic kernel bit for bit on every engine
 * (including through the work-stealing pipelined executor under
 * chained-round stress, a TSan target); and on the sim engine the
 * phased recording must strictly reduce the overlapped makespan of a
 * BConv -> NTT chain versus monolithic recording.
 */

#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/auto_table.h"
#include "backend/command_stream.h"
#include "backend/registry.h"
#include "backend/sim_backend.h"
#include "backend/simd_backend.h"
#include "backend/thread_pool_backend.h"
#include "common/primes.h"
#include "common/rng.h"
#include "poly/poly.h"
#include "poly/rns.h"

namespace trinity {
namespace {

/** Every level the build compiled in AND this CPU can execute. */
std::vector<simd::Level>
availableLevels()
{
    std::vector<simd::Level> out = {simd::Level::Scalar};
    for (simd::Level level : {simd::Level::Avx2, simd::Level::Avx512}) {
        if (simd::levelAvailable(level)) {
            out.push_back(level);
        }
    }
    return out;
}

/** Temporarily force an env var, restoring the prior state. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        const char *old = std::getenv(name);
        hadOld_ = old != nullptr;
        if (hadOld_) {
            old_ = old;
        }
        ::setenv(name, value, 1);
    }
    ~ScopedEnv()
    {
        if (hadOld_) {
            ::setenv(name_, old_.c_str(), 1);
        } else {
            ::unsetenv(name_);
        }
    }

  private:
    const char *name_;
    bool hadOld_ = false;
    std::string old_;
};

/** Activate an engine; "threads" gets an explicit 4-worker pool so
 *  the work-stealing pipelined executor is exercised even on
 *  single-core hosts. */
void
activateEngine(const std::string &engine)
{
    auto &reg = BackendRegistry::instance();
    if (engine == "threads") {
        reg.use(std::make_unique<ThreadPoolBackend>(4));
    } else {
        reg.select(engine);
    }
}

/** Naive input-walk automorphism: coefficient c of X^c maps to
 *  X^{cg} with X^n = -1, written without any table machinery. */
std::vector<u64>
naiveAutomorphism(const std::vector<u64> &src, u64 g, const Modulus &mod)
{
    size_t n = src.size();
    u64 two_n = 2 * static_cast<u64>(n);
    std::vector<u64> dst(n);
    for (size_t c = 0; c < n; ++c) {
        u64 e = (static_cast<u64>(c) * g) % two_n;
        u64 x = src[c];
        if (e < n) {
            dst[e] = x;
        } else {
            dst[e - n] = mod.neg(x);
        }
    }
    return dst;
}

/** Automorphism at every SIMD level == the naive map, including odd
 *  (non-power-of-two, non-lane-multiple) lengths, odd generators up
 *  to 2n-1, and the full 30..59-bit modulus range. */
TEST(NonNttKernels, AutomorphismMatchesNaiveMapAllLevels)
{
    for (simd::Level level : availableLevels()) {
        SimdBackend engine(level);
        for (size_t n :
             {size_t(4), size_t(8), size_t(37), size_t(129),
              size_t(1024)}) {
            u64 two_n = 2 * static_cast<u64>(n);
            for (u32 bits : {30u, 45u, 59u}) {
                Modulus mod(findNttPrimes(bits, 2048, 1)[0]);
                Rng rng(n * bits);
                std::vector<u64> src = rng.uniformVec(n, mod.value());
                for (u64 g : {u64(3), u64(5), two_n - 1}) {
                    if (std::gcd(g, two_n) != 1) {
                        continue;
                    }
                    std::vector<u64> dst(n, u64(0xdead));
                    AutoJob job{dst.data(), src.data(), &mod, n, g};
                    engine.automorphismBatch(&job, 1);
                    EXPECT_EQ(dst, naiveAutomorphism(src, g, mod))
                        << "level=" << static_cast<int>(level)
                        << " n=" << n << " bits=" << bits << " g=" << g;
                }
            }
        }
    }
}

/** The cached tables themselves: a bijective permutation whose sign
 *  mask is all-ones exactly on outputs that crossed X^n = -1, shared
 *  by reference across lookups. */
TEST(NonNttKernels, AutoTableCacheBuildsBijectionAndShares)
{
    size_t n = 64;
    auto t1 = AutoTableCache::get(n, 5);
    auto t2 = AutoTableCache::get(n, 5);
    EXPECT_EQ(t1.get(), t2.get()); // cache hit shares the table
    std::vector<bool> seen(n, false);
    for (size_t c = 0; c < n; ++c) {
        u64 p = t1->perm()[c];
        ASSERT_LT(p, n);
        EXPECT_FALSE(seen[p]) << "perm not a bijection at " << c;
        seen[p] = true;
        u64 m = t1->signMask()[c];
        EXPECT_TRUE(m == 0 || m == ~u64(0));
    }
}

/** A synthetic-but-consistent conversion fixture: real BaseConverter
 *  constants over mixed-width prime bases. */
struct BConvFixture
{
    std::vector<u64> from, to;
    BaseConverter conv;
    BConvPlan plan;

    BConvFixture(u32 fromBits, size_t k, size_t l)
        : from(findNttPrimes(fromBits, 2048, k)),
          to(findNttPrimes(fromBits == 59 ? 31 : 50, 2048, l)),
          conv(from, to), plan(conv.plan())
    {
    }
};

/** Independent u128 reference for the whole conversion: pass 1 as a
 *  plain widening mul-mod, pass 2 as an exact 128-bit dot product. */
std::vector<std::vector<u64>>
naiveBaseConvert(const BConvPlan &plan,
                 const std::vector<std::vector<u64>> &x, size_t n)
{
    size_t k = plan.numFrom;
    size_t l = plan.numTo;
    std::vector<std::vector<u64>> v(k, std::vector<u64>(n));
    for (size_t i = 0; i < k; ++i) {
        u64 q = plan.fromMods[i].value();
        for (size_t c = 0; c < n; ++c) {
            v[i][c] = static_cast<u64>(
                static_cast<u128>(x[i][c]) * plan.qhatInv[i] % q);
        }
    }
    std::vector<std::vector<u64>> y(l, std::vector<u64>(n));
    for (size_t j = 0; j < l; ++j) {
        u64 p = plan.toMods[j].value();
        for (size_t c = 0; c < n; ++c) {
            u128 acc = 0;
            for (size_t i = 0; i < k; ++i) {
                acc += static_cast<u128>(v[i][c] % p) *
                       plan.qhatModP[i * l + j];
            }
            y[j][c] = static_cast<u64>(acc % p);
        }
    }
    return y;
}

/** Full two-phase BConv at every SIMD level (and through the thread
 *  pool) == the naive u128 reference, on lengths with every possible
 *  lane tail and with 30..59-bit source moduli. */
TEST(NonNttKernels, BaseConvertMatchesNaiveU128AllLevels)
{
    for (u32 fromBits : {30u, 45u, 59u}) {
        BConvFixture fx(fromBits, 3, 2);
        for (size_t n :
             {size_t(1), size_t(7), size_t(37), size_t(129),
              size_t(515)}) {
            Rng rng(fromBits + n);
            std::vector<std::vector<u64>> x(fx.from.size());
            std::vector<const u64 *> in;
            for (size_t i = 0; i < fx.from.size(); ++i) {
                x[i] = rng.uniformVec(n, fx.from[i]);
                in.push_back(x[i].data());
            }
            auto ref = naiveBaseConvert(fx.plan, x, n);
            auto check = [&](PolyBackend &engine, const char *tag) {
                std::vector<std::vector<u64>> y(
                    fx.to.size(), std::vector<u64>(n, u64(0xbeef)));
                std::vector<u64 *> out;
                for (auto &row : y) {
                    out.push_back(row.data());
                }
                engine.baseConvert(fx.plan, in.data(), out.data(), n);
                for (size_t j = 0; j < fx.to.size(); ++j) {
                    EXPECT_EQ(y[j], ref[j])
                        << tag << " fromBits=" << fromBits << " n=" << n
                        << " limb=" << j;
                }
            };
            for (simd::Level level : availableLevels()) {
                SimdBackend engine(level);
                check(engine, "simd");
            }
            ThreadPoolBackend pool(4);
            check(pool, "threads");
        }
    }
}

/** Pass 1 is documented as alias-safe (v may be x, the in-place
 *  scaling the evaluator's flat buffers want): in-place == out-of-
 *  place at every level. */
TEST(NonNttKernels, BConvPass1InPlaceAliasingAllLevels)
{
    Modulus mod(findNttPrimes(59, 2048, 1)[0]);
    u64 w = mod.value() / 3;
    u64 wp = mod.shoupPrecompute(w);
    for (simd::Level level : availableLevels()) {
        const simd::KernelSet &ks = simd::kernelsForLevel(level);
        for (size_t n : {size_t(5), size_t(129), size_t(1024)}) {
            Rng rng(n);
            std::vector<u64> x = rng.uniformVec(n, mod.value());
            std::vector<u64> outOfPlace(n);
            ks.bconvPass1(outOfPlace.data(), x.data(), w, wp, mod, n);
            std::vector<u64> inPlace = x;
            ks.bconvPass1(inPlace.data(), inPlace.data(), w, wp, mod,
                          n);
            EXPECT_EQ(inPlace, outOfPlace)
                << "level=" << static_cast<int>(level) << " n=" << n;
        }
    }
}

/** Phase-chunked recording == monolithic recording == the blocking
 *  kernel, on every engine, with downstream commands hung off the
 *  per-limb handles. */
TEST(NonNttKernels, PhasedStreamMatchesMonolithicAcrossEngines)
{
    BConvFixture fx(45, 4, 3);
    size_t n = 515; // odd tail on every lane width
    Rng rng(77);
    std::vector<std::vector<u64>> x(fx.from.size());
    std::vector<const u64 *> in;
    for (size_t i = 0; i < fx.from.size(); ++i) {
        x[i] = rng.uniformVec(n, fx.from[i]);
        in.push_back(x[i].data());
    }
    // Blocking serial reference, scaled by the same follow-up the
    // streams hang off the conversion handles.
    std::vector<std::vector<u64>> ref(fx.to.size(),
                                      std::vector<u64>(n));
    {
        BackendRegistry::instance().select("serial");
        std::vector<u64 *> out;
        for (auto &row : ref) {
            out.push_back(row.data());
        }
        activeBackend().baseConvert(fx.plan, in.data(), out.data(), n);
        for (size_t j = 0; j < fx.to.size(); ++j) {
            ScalarMulJob job{ref[j].data(), ref[j].data(), 3,
                             &fx.plan.toMods[j], n};
            activeBackend().scalarMulBatch(&job, 1);
        }
    }
    for (const char *engine : {"serial", "threads", "simd", "sim"}) {
        for (bool phased : {false, true}) {
            activateEngine(engine);
            std::vector<std::vector<u64>> y(
                fx.to.size(), std::vector<u64>(n, u64(0xabcd)));
            std::vector<u64 *> out;
            for (auto &row : y) {
                out.push_back(row.data());
            }
            auto stream = activeBackend().newStream();
            if (phased) {
                std::vector<Job> convs = stream->baseConvertPhased(
                    fx.plan, in, out, n);
                ASSERT_EQ(convs.size(), fx.to.size());
                for (size_t j = 0; j < fx.to.size(); ++j) {
                    stream->scalarMul(
                        {{out[j], out[j], 3, &fx.plan.toMods[j], n}},
                        {convs[j]});
                }
            } else {
                Job conv = stream->baseConvert(fx.plan, in, out, n);
                for (size_t j = 0; j < fx.to.size(); ++j) {
                    stream->scalarMul(
                        {{out[j], out[j], 3, &fx.plan.toMods[j], n}},
                        {conv});
                }
            }
            stream->submit();
            stream->wait();
            BackendRegistry::instance().select("serial");
            for (size_t j = 0; j < fx.to.size(); ++j) {
                EXPECT_EQ(y[j], ref[j])
                    << engine << (phased ? " phased" : " monolithic")
                    << " limb=" << j;
            }
        }
    }
}

/**
 * Chained-round stress through the work-stealing executor: each round
 * records a phased conversion, per-limb scalar multiplies hung off the
 * per-limb handles, and an input-mutating scalar multiply that the
 * next round depends on — a deep DAG whose single/multi-job commands
 * land on different worker deques and get stolen. Bit-exact vs serial
 * for several seeds. (This test is part of the TSan CI job.)
 */
TEST(NonNttKernels, StealingExecutorPhasedRoundsMatchSerial)
{
    BConvFixture fx(50, 3, 3);
    constexpr size_t kN = 256;
    constexpr size_t kRounds = 12;

    auto run = [&](const std::string &engine, u64 seed) {
        activateEngine(engine);
        Rng rng(seed);
        std::vector<std::vector<u64>> x(fx.from.size());
        std::vector<const u64 *> in;
        std::vector<u64 *> inMut;
        for (size_t i = 0; i < fx.from.size(); ++i) {
            x[i] = rng.uniformVec(kN, fx.from[i]);
            in.push_back(x[i].data());
            inMut.push_back(x[i].data());
        }
        std::vector<std::vector<std::vector<u64>>> y(
            kRounds,
            std::vector<std::vector<u64>>(fx.to.size(),
                                          std::vector<u64>(kN)));
        auto stream = activeBackend().newStream();
        std::vector<Job> prev; // previous round's input mutations
        for (size_t r = 0; r < kRounds; ++r) {
            std::vector<u64 *> out;
            for (auto &row : y[r]) {
                out.push_back(row.data());
            }
            std::vector<Job> convs = stream->baseConvertPhased(
                fx.plan, in, out, kN, prev);
            std::vector<Job> scaled;
            for (size_t j = 0; j < fx.to.size(); ++j) {
                scaled.push_back(stream->scalarMul(
                    {{out[j], out[j], 5 + r, &fx.plan.toMods[j], kN}},
                    {convs[j]}));
            }
            // Mutate the shared inputs for the next round; the writes
            // must wait for this round's pass 1 (transitively covered
            // by the pass-2 handles) to read them.
            prev.clear();
            for (size_t i = 0; i < fx.from.size(); ++i) {
                std::vector<Job> deps = convs;
                deps.insert(deps.end(), scaled.begin(), scaled.end());
                prev.push_back(stream->scalarMul(
                    {{inMut[i], inMut[i], 3, &fx.plan.fromMods[i],
                      kN}},
                    std::move(deps)));
            }
        }
        stream->submit();
        stream->wait();
        BackendRegistry::instance().select("serial");
        std::vector<u64> flat;
        for (const auto &round : y) {
            for (const auto &row : round) {
                flat.insert(flat.end(), row.begin(), row.end());
            }
        }
        for (const auto &row : x) {
            flat.insert(flat.end(), row.begin(), row.end());
        }
        return flat;
    };

    for (u64 seed : {u64(1), u64(42), u64(1234)}) {
        std::vector<u64> ref = run("serial", seed);
        EXPECT_EQ(run("threads", seed), ref) << "seed=" << seed;
    }
}

/** On the sim engine, phase-chunked BConv + per-limb NTTs must price
 *  strictly below the monolithic BConv + one wide NTT for the same
 *  work: the per-limb handles let the NTTU pool start on finished
 *  limbs while the CU pool is still converting the rest. Results stay
 *  bit-identical either way. */
TEST(NonNttKernels, PhasedBConvReducesSimMakespan)
{
    if (!streamsEnabled()) {
        GTEST_SKIP() << "TRINITY_STREAMS=off";
    }
    constexpr size_t kN = 4096;
    std::vector<u64> from = findNttPrimes(45, 2 * kN, 6);
    std::vector<u64> to = findNttPrimes(50, 2 * kN, 6);
    BaseConverter conv(from, to);
    BConvPlan plan = conv.plan();
    std::vector<std::shared_ptr<const NttTable>> tables;
    for (u64 p : to) {
        tables.push_back(NttTableCache::get(kN, p));
    }
    Rng rng(2024);
    std::vector<std::vector<u64>> x(from.size());
    std::vector<const u64 *> in;
    for (size_t i = 0; i < from.size(); ++i) {
        x[i] = rng.uniformVec(kN, from[i]);
        in.push_back(x[i].data());
    }

    auto span = [&](bool phased, std::vector<std::vector<u64>> &y) {
        {
            ScopedEnv machine("TRINITY_SIM_MACHINE", "trinity-ckks");
            BackendRegistry::instance().select("sim");
        }
        SimBackend *sb = activeSimBackend();
        EXPECT_NE(sb, nullptr);
        sb->ledger().reset();
        y.assign(to.size(), std::vector<u64>(kN));
        std::vector<u64 *> out;
        for (auto &row : y) {
            out.push_back(row.data());
        }
        auto stream = activeBackend().newStream();
        if (phased) {
            std::vector<Job> convs =
                stream->baseConvertPhased(plan, in, out, kN);
            for (size_t j = 0; j < to.size(); ++j) {
                stream->nttForward({{out[j], tables[j].get()}},
                                   {convs[j]});
            }
        } else {
            Job c = stream->baseConvert(plan, in, out, kN);
            std::vector<NttJob> ntts;
            for (size_t j = 0; j < to.size(); ++j) {
                ntts.push_back({out[j], tables[j].get()});
            }
            stream->nttForward(std::move(ntts), {c});
        }
        stream->submit();
        stream->wait();
        double cycles = sb->ledger().overlappedCycles();
        BackendRegistry::instance().select("serial");
        return cycles;
    };

    std::vector<std::vector<u64>> yMono, yPhased;
    double mono = span(false, yMono);
    double phased = span(true, yPhased);
    EXPECT_EQ(yPhased, yMono);
    EXPECT_GT(mono, 0.0);
    EXPECT_LT(phased, mono)
        << "phased=" << phased << " mono=" << mono;
}

/** The block-rotation mulMonomial (one memcpy block + one negated
 *  block) == the naive per-coefficient negacyclic shift, for every
 *  rotation class including the identity, the X^n = -1 crossing, and
 *  full wraps — on Poly and RnsPoly. */
TEST(NonNttKernels, MulMonomialBlockRotationMatchesNaive)
{
    constexpr size_t kN = 64;
    std::vector<u64> mods = findNttPrimes(40, 2 * kN, 2);
    Rng rng(9);
    RnsPoly a = RnsPoly::uniform(kN, mods, rng);
    for (u64 t : {u64(0), u64(1), u64(5), u64(kN - 1), u64(kN),
                  u64(kN + 3), u64(2 * kN - 1), u64(2 * kN),
                  u64(2 * kN + 7)}) {
        RnsPoly r = a.mulMonomial(t);
        for (size_t i = 0; i < a.numLimbs(); ++i) {
            const Modulus &mod = a.limb(i).modulus();
            std::vector<u64> expect(kN, 0);
            for (size_t c = 0; c < kN; ++c) {
                u64 e = (c + t) % (2 * kN);
                u64 v = a.limbData(i)[c];
                if (e < kN) {
                    expect[e] = v;
                } else {
                    expect[e - kN] = mod.neg(v);
                }
            }
            for (size_t c = 0; c < kN; ++c) {
                ASSERT_EQ(r.limbData(i)[c], expect[c])
                    << "t=" << t << " limb=" << i << " c=" << c;
            }
        }
    }
    // Single-modulus Poly path shares the decomposition.
    Poly p = Poly::uniform(kN, mods[0], rng);
    for (u64 t : {u64(1), u64(kN), u64(2 * kN - 1)}) {
        Poly r = p.mulMonomial(t);
        Modulus mod(mods[0]);
        for (size_t c = 0; c < kN; ++c) {
            u64 e = (c + t) % (2 * kN);
            u64 v = p.coeffs()[c];
            u64 want = e < kN ? v : mod.neg(v);
            size_t at = e < kN ? e : e - kN;
            ASSERT_EQ(r.coeffs()[at], want) << "t=" << t << " c=" << c;
        }
    }
}

} // namespace
} // namespace trinity
