/**
 * @file
 * The constant-geometry NTT must agree bit-for-bit with the reference
 * network — this validates the NTTU/CU dataflow model.
 */

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/cg_ntt.h"

namespace trinity {
namespace {

class CgNttTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CgNttTest, MatchesReferenceForward)
{
    size_t n = GetParam();
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    Modulus m(q);
    CgNtt cg(n, m);
    NttTable ref(n, m);
    Rng rng(21);
    auto a = rng.uniformVec(n, q);
    auto b = a;
    cg.forward(a);
    // Reference forward emits bit-reversed order; permute to natural.
    ref.forward(b);
    NttTable::bitrevPermute(b.data(), n);
    EXPECT_EQ(a, b);
}

TEST_P(CgNttTest, Roundtrip)
{
    size_t n = GetParam();
    u64 q = findNttPrimes(45, 2 * n, 1)[0];
    CgNtt cg(n, Modulus(q));
    Rng rng(22);
    auto a = rng.uniformVec(n, q);
    auto orig = a;
    cg.forward(a);
    cg.inverse(a);
    EXPECT_EQ(a, orig);
}

TEST_P(CgNttTest, StageCountIsLogN)
{
    size_t n = GetParam();
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    CgNtt cg(n, Modulus(q));
    EXPECT_EQ(1u << cg.stages(), n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, CgNttTest,
                         ::testing::Values<size_t>(4, 16, 64, 256, 1024,
                                                   4096));

TEST(CgNtt, ConvolutionViaCg)
{
    // Pointwise product in CG-transform domain implements negacyclic
    // convolution (natural-order outputs align).
    size_t n = 256;
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    Modulus m(q);
    CgNtt cg(n, m);
    NttTable ref(n, m);
    Rng rng(23);
    auto a = rng.uniformVec(n, q);
    auto b = rng.uniformVec(n, q);
    // Reference product via standard NTT.
    auto ra = a, rb = b;
    ref.forward(ra);
    ref.forward(rb);
    for (size_t i = 0; i < n; ++i) {
        ra[i] = m.mul(ra[i], rb[i]);
    }
    ref.inverse(ra);
    // CG product.
    cg.forward(a);
    cg.forward(b);
    for (size_t i = 0; i < n; ++i) {
        a[i] = m.mul(a[i], b[i]);
    }
    cg.inverse(a);
    EXPECT_EQ(a, ra);
}

} // namespace
} // namespace trinity
