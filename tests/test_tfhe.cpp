/**
 * @file
 * TFHE tests: LWE/GLWE/GGSW encryption, gadget decomposition,
 * external product, CMux, blind rotation, sample extract, keyswitch,
 * full PBS (Algorithm 2), and the boolean gate layer.
 */

#include <cmath>
#include <memory>

#include <gtest/gtest.h>

#include "tfhe/gates.h"

namespace trinity {
namespace {

struct TfheFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx = std::make_shared<TfheContext>(TfheParams::testTiny(), 4242);
        lwe_sk = ctx->makeLweKey();
        glwe_sk = ctx->makeGlweKey();
    }

    i64
    centeredPhase(const LweCiphertext &ct)
    {
        return centeredRep(ctx->lwePhase(ct, lwe_sk), ctx->q());
    }

    std::shared_ptr<TfheContext> ctx;
    LweSecretKey lwe_sk;
    GlweSecretKey glwe_sk;
};

TEST_F(TfheFixture, ParamsUseNttFriendlyPrimeNearTwoPow32)
{
    for (const auto &p :
         {TfheParams::setI(), TfheParams::setII(), TfheParams::setIII()}) {
        EXPECT_EQ(p.q % (2 * p.bigN), 1u) << p.name;
        double rel = std::abs(static_cast<double>(p.q) - std::pow(2, 32)) /
                     std::pow(2, 32);
        EXPECT_LT(rel, 1e-4) << p.name;
    }
}

TEST_F(TfheFixture, LweEncryptDecrypt)
{
    u64 q = ctx->q();
    for (u64 m : {q / 8, q / 4, q - q / 8, u64(0)}) {
        auto ct = ctx->lweEncrypt(m, lwe_sk);
        i64 err = centeredRep(ctx->modulus().sub(
                                  ctx->lwePhase(ct, lwe_sk), m),
                              q);
        EXPECT_LT(std::abs(err), 64) << "m=" << m;
    }
}

TEST_F(TfheFixture, GlweEncryptDecrypt)
{
    const auto &p = ctx->params();
    Rng rng(71);
    Poly m(p.bigN, p.q);
    for (size_t i = 0; i < p.bigN; ++i) {
        m[i] = (rng.next() & 1) ? p.q / 8 : 0;
    }
    auto ct = ctx->glweEncrypt(m, glwe_sk);
    Poly phase = ctx->glwePhase(ct, glwe_sk);
    phase.subInPlace(m);
    EXPECT_LT(phase.infNorm(), 64u);
}

TEST_F(TfheFixture, TrivialGlweIsNoiseFree)
{
    Poly m(ctx->params().bigN, ctx->q());
    m[0] = 12345;
    m[7] = 999;
    auto ct = ctx->glweTrivial(m);
    Poly phase = ctx->glwePhase(ct, glwe_sk);
    phase.subInPlace(m);
    EXPECT_EQ(phase.infNorm(), 0u);
}

TEST_F(TfheFixture, GadgetDecompositionReconstructs)
{
    const auto &p = ctx->params();
    const Modulus &m = ctx->modulus();
    Rng rng(72);
    std::vector<i64> digits(p.lb);
    u64 bg_half = 1ULL << (p.logBg - 1);
    for (int trial = 0; trial < 200; ++trial) {
        u64 x = rng.uniform(p.q);
        ctx->decomposeScalar(x, digits.data());
        u64 approx = 0;
        for (u32 l = 0; l < p.lb; ++l) {
            EXPECT_LT(std::abs(digits[l]),
                      static_cast<i64>(bg_half) + 1);
            approx = m.add(approx,
                           m.mul(toResidue(digits[l], p.q),
                                 ctx->gadget(l)));
        }
        // |x - approx| <= ~q / Bg^lb (plus gadget rounding).
        i64 err = centeredRep(m.sub(x, approx), p.q);
        double bound =
            static_cast<double>(p.q) /
                std::pow(2.0, static_cast<double>(p.logBg) * p.lb) +
            p.lb;
        EXPECT_LE(std::abs(err), 2 * bound + 2) << "x=" << x;
    }
}

TEST_F(TfheFixture, ExternalProductByOnePreservesMessage)
{
    const auto &p = ctx->params();
    // GGSW(1) (x) GLWE(m) must decrypt to ~m.
    Poly m(p.bigN, p.q);
    m[0] = p.q / 4;
    m[3] = p.q / 8;
    auto glwe = ctx->glweEncrypt(m, glwe_sk);
    auto ggsw = ctx->ggswEncrypt(1, glwe_sk);
    ctx->ggswToEval(ggsw);
    auto prod = ctx->externalProduct(ggsw, glwe);
    Poly phase = ctx->glwePhase(prod, glwe_sk);
    phase.subInPlace(m);
    EXPECT_LT(phase.infNorm(), 1u << 18); // well below q/16 margin
}

TEST_F(TfheFixture, ExternalProductByZeroKillsMessage)
{
    const auto &p = ctx->params();
    Poly m(p.bigN, p.q);
    m[0] = p.q / 4;
    auto glwe = ctx->glweEncrypt(m, glwe_sk);
    auto ggsw = ctx->ggswEncrypt(0, glwe_sk);
    ctx->ggswToEval(ggsw);
    auto prod = ctx->externalProduct(ggsw, glwe);
    Poly phase = ctx->glwePhase(prod, glwe_sk);
    EXPECT_LT(phase.infNorm(), 1u << 18);
}

TEST_F(TfheFixture, CmuxSelects)
{
    const auto &p = ctx->params();
    Poly m0(p.bigN, p.q), m1(p.bigN, p.q);
    m0[0] = p.q / 4;
    m1[0] = ctx->modulus().neg(p.q / 4);
    auto ct0 = ctx->glweEncrypt(m0, glwe_sk);
    auto ct1 = ctx->glweEncrypt(m1, glwe_sk);
    for (i64 bit : {0, 1}) {
        auto sel = ctx->ggswEncrypt(bit, glwe_sk);
        ctx->ggswToEval(sel);
        auto out = ctx->cmux(sel, ct0, ct1);
        Poly phase = ctx->glwePhase(out, glwe_sk);
        i64 got = centeredRep(phase[0], p.q);
        i64 expect = bit ? -static_cast<i64>(p.q / 4)
                         : static_cast<i64>(p.q / 4);
        EXPECT_NEAR(static_cast<double>(got),
                    static_cast<double>(expect), 1 << 18)
            << "bit=" << bit;
    }
}

struct PbsFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        ctx = std::make_shared<TfheContext>(TfheParams::testTiny(), 888);
        boot = std::make_unique<TfheBootstrapper>(ctx);
        lwe_sk = ctx->makeLweKey();
        glwe_sk = ctx->makeGlweKey();
        bsk = boot->makeBootstrapKey(lwe_sk, glwe_sk);
        ksk = boot->makeKeySwitchKey(glwe_sk, lwe_sk);
    }

    std::shared_ptr<TfheContext> ctx;
    std::unique_ptr<TfheBootstrapper> boot;
    LweSecretKey lwe_sk;
    GlweSecretKey glwe_sk;
    TfheBootstrapKey bsk;
    TfheKeySwitchKey ksk;
};

TEST_F(PbsFixture, SampleExtractMatchesCoefficient)
{
    const auto &p = ctx->params();
    Rng rng(73);
    Poly m(p.bigN, p.q);
    for (size_t i = 0; i < p.bigN; ++i) {
        m[i] = rng.uniform(p.q);
    }
    auto glwe = ctx->glweEncrypt(m, glwe_sk);
    LweSecretKey wide = glwe_sk.extractLweKey();
    for (size_t idx : {size_t(0), size_t(1), p.bigN / 2, p.bigN - 1}) {
        auto lwe = boot->sampleExtract(glwe, idx);
        u64 phase = ctx->lwePhase(lwe, wide);
        i64 err = centeredRep(ctx->modulus().sub(phase, m[idx]), p.q);
        EXPECT_LT(std::abs(err), 64) << "idx=" << idx;
    }
}

TEST_F(PbsFixture, KeySwitchPreservesPhase)
{
    const auto &p = ctx->params();
    LweSecretKey wide = glwe_sk.extractLweKey();
    u64 msg = p.q / 4;
    // Encrypt under the wide key by extracting from a GLWE.
    Poly m(p.bigN, p.q);
    m[0] = msg;
    auto glwe = ctx->glweEncrypt(m, glwe_sk);
    auto wide_ct = boot->sampleExtract(glwe, 0);
    auto small = boot->keySwitch(wide_ct, ksk);
    EXPECT_EQ(small.a.size(), p.nLwe);
    i64 err = centeredRep(
        ctx->modulus().sub(ctx->lwePhase(small, lwe_sk), msg), p.q);
    EXPECT_LT(std::abs(err), 1 << 20); // decomposition noise bound
}

TEST_F(PbsFixture, BlindRotateProducesRotatedTestVector)
{
    const auto &p = ctx->params();
    // Noise-free input encodes phase exactly: use s=0 ciphertext
    // (a = 0, b = phase) so we can predict the rotation amount.
    u64 phase = p.q / 3;
    LweCiphertext ct;
    ct.a.assign(p.nLwe, 0);
    ct.b = phase;
    // Identity-ish test vector tv[i] = i (arbitrary marker values).
    Poly tv(p.bigN, p.q);
    for (size_t i = 0; i < p.bigN; ++i) {
        tv[i] = i * 1000;
    }
    auto acc = boot->blindRotate(ct, tv, bsk);
    Poly got = ctx->glwePhase(acc, glwe_sk);
    // Expected: tv * X^{-b~}.
    u64 b_tilde = boot->modSwitch(phase);
    Poly expect = tv.mulMonomial(2 * p.bigN - b_tilde);
    got.subInPlace(expect);
    EXPECT_LT(got.infNorm(), 1u << 18);
}

TEST_F(PbsFixture, PbsSignExtraction)
{
    const auto &p = ctx->params();
    u64 mu = p.q / 8;
    Poly tv = boot->signTestVector(mu);
    for (bool bit : {false, true}) {
        u64 m = bit ? mu : ctx->modulus().neg(mu);
        auto ct = ctx->lweEncrypt(m, lwe_sk);
        auto fresh = boot->pbs(ct, tv, bsk, ksk);
        i64 phase = centeredRep(ctx->lwePhase(fresh, lwe_sk), p.q);
        if (bit) {
            EXPECT_GT(phase, static_cast<i64>(mu / 2));
        } else {
            EXPECT_LT(phase, -static_cast<i64>(mu / 2));
        }
    }
}

TEST_F(PbsFixture, PbsProgrammableLut)
{
    // Program tv so the output distinguishes 4 phase quadrants... the
    // negacyclic constraint allows an arbitrary function on [0, N)
    // (phases in the "positive" half).
    const auto &p = ctx->params();
    u64 marker1 = p.q / 16, marker2 = p.q / 5;
    Poly tv(p.bigN, p.q);
    for (size_t i = 0; i < p.bigN; ++i) {
        tv[i] = (i < p.bigN / 2) ? marker1 : marker2;
    }
    // Input phase q/8 -> index ~N/4 -> marker1.
    auto ct1 = ctx->lweEncrypt(p.q / 8, lwe_sk);
    auto out1 = boot->pbs(ct1, tv, bsk, ksk);
    i64 ph1 = centeredRep(ctx->lwePhase(out1, lwe_sk), p.q);
    EXPECT_NEAR(static_cast<double>(ph1),
                static_cast<double>(marker1), 1 << 21);
    // Input phase 3q/8 -> index ~3N/4 -> marker2.
    auto ct2 = ctx->lweEncrypt(3 * (p.q / 8), lwe_sk);
    auto out2 = boot->pbs(ct2, tv, bsk, ksk);
    i64 ph2 = centeredRep(ctx->lwePhase(out2, lwe_sk), p.q);
    EXPECT_NEAR(static_cast<double>(ph2),
                static_cast<double>(marker2), 1 << 21);
}

struct GateFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        gb = std::make_unique<TfheGateBootstrapper>(
            TfheParams::testTiny(), 31337);
    }

    std::unique_ptr<TfheGateBootstrapper> gb;
};

TEST_F(GateFixture, TruthTables)
{
    for (int x = 0; x <= 1; ++x) {
        for (int y = 0; y <= 1; ++y) {
            auto cx = gb->encryptBit(x);
            auto cy = gb->encryptBit(y);
            EXPECT_EQ(gb->decryptBit(gb->gateNand(cx, cy)), !(x && y))
                << "NAND " << x << "," << y;
            EXPECT_EQ(gb->decryptBit(gb->gateAnd(cx, cy)),
                      static_cast<bool>(x && y))
                << "AND " << x << "," << y;
            EXPECT_EQ(gb->decryptBit(gb->gateOr(cx, cy)),
                      static_cast<bool>(x || y))
                << "OR " << x << "," << y;
            EXPECT_EQ(gb->decryptBit(gb->gateXor(cx, cy)),
                      static_cast<bool>(x ^ y))
                << "XOR " << x << "," << y;
        }
    }
}

TEST_F(GateFixture, NotAndMux)
{
    auto c0 = gb->encryptBit(false);
    auto c1 = gb->encryptBit(true);
    EXPECT_TRUE(gb->decryptBit(gb->gateNot(c0)));
    EXPECT_FALSE(gb->decryptBit(gb->gateNot(c1)));
    EXPECT_TRUE(gb->decryptBit(gb->gateMux(c1, c1, c0)));
    EXPECT_FALSE(gb->decryptBit(gb->gateMux(c0, c1, c0)));
    EXPECT_FALSE(gb->decryptBit(gb->gateMux(c1, c0, c1)));
}

TEST_F(GateFixture, DeepGateChainStaysCorrect)
{
    // Chain 16 NANDs; bootstrap must refresh noise at every step.
    auto acc = gb->encryptBit(true);
    bool expect = true;
    for (int i = 0; i < 16; ++i) {
        bool bit = (i % 3) != 0;
        auto c = gb->encryptBit(bit);
        acc = gb->gateNand(acc, c);
        expect = !(expect && bit);
    }
    EXPECT_EQ(gb->decryptBit(acc), expect);
}

TEST(TfheSetI, PbsAtPaperParameters)
{
    // One full-parameter PBS (Table IV Set-I) as an integration check.
    TfheGateBootstrapper gb(TfheParams::setI(), 515151);
    auto c1 = gb.encryptBit(true);
    auto c0 = gb.encryptBit(false);
    EXPECT_FALSE(gb.decryptBit(gb.gateNand(c1, c1)));
    EXPECT_TRUE(gb.decryptBit(gb.gateNand(c1, c0)));
}

} // namespace
} // namespace trinity
