/**
 * @file
 * Serving-runtime tests: bit-exactness of the batched PBS pipeline
 * against sequential bootstrapping (on whatever engine TRINITY_BACKEND
 * selects — CI sweeps serial/threads/simd/sim), mixed test vectors in
 * one batch, queue aggregation under concurrent submitters, the
 * batch-size/deadline policy, and the backend batch-sizing hints.
 */

#include <atomic>
#include <thread>

#include <gtest/gtest.h>

#include "backend/registry.h"
#include "runtime/batched_pbs.h"
#include "runtime/pbs_server.h"

namespace trinity {
namespace {

using runtime::BatchedBootstrapper;
using runtime::PbsBatch;
using runtime::PbsServer;
using runtime::ServerOptions;
using runtime::ServerStats;

bool
sameCiphertext(const LweCiphertext &x, const LweCiphertext &y)
{
    return x.b == y.b && x.a == y.a;
}

struct RuntimeFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        gb = std::make_unique<TfheGateBootstrapper>(
            TfheParams::testTiny(), 20240);
    }

    std::unique_ptr<TfheGateBootstrapper> gb;
};

TEST_F(RuntimeFixture, BatchedSignMatchesSequentialBitExact)
{
    BatchedBootstrapper bb(*gb);
    std::vector<LweCiphertext> cts;
    std::vector<bool> bits = {true, false, true, true, false, false,
                              true};
    for (bool b : bits) {
        cts.push_back(gb->encryptBit(b));
    }
    std::vector<LweCiphertext> batched = bb.bootstrapSignBatch(cts);
    ASSERT_EQ(batched.size(), cts.size());
    for (size_t i = 0; i < cts.size(); ++i) {
        LweCiphertext seq = gb->bootstrapSign(cts[i]);
        EXPECT_TRUE(sameCiphertext(batched[i], seq)) << "request " << i;
        EXPECT_EQ(gb->decryptBit(batched[i]), bits[i]) << "request " << i;
    }
}

TEST_F(RuntimeFixture, MixedTestVectorsInOneBatch)
{
    const auto &p = gb->params();
    const TfheBootstrapper &boot = gb->bootstrapper();
    // Three different LUTs: sign, a two-marker step, and a ramp.
    Poly sign = boot.signTestVector(p.q / 8);
    Poly step = boot.makeTestVector([&](size_t i) {
        return i < p.bigN / 2 ? p.q / 16 : p.q / 5;
    });
    Poly ramp = boot.makeTestVector([&](size_t i) { return i * 977; });
    const Poly *tvs[] = {&sign, &step, &ramp, &step, &sign};

    TfheContext &ctx = gb->context();
    std::vector<LweCiphertext> cts;
    cts.push_back(gb->encryptBit(true));
    cts.push_back(ctx.lweEncrypt(p.q / 8, gb->lweKey()));
    cts.push_back(ctx.lweEncrypt(p.q / 4, gb->lweKey()));
    cts.push_back(ctx.lweEncrypt(3 * (p.q / 8), gb->lweKey()));
    cts.push_back(gb->encryptBit(false));

    PbsBatch batch;
    for (size_t i = 0; i < cts.size(); ++i) {
        batch.add(cts[i], *tvs[i]);
    }
    BatchedBootstrapper bb(*gb);
    std::vector<LweCiphertext> out = bb.run(batch);
    ASSERT_EQ(out.size(), cts.size());
    for (size_t i = 0; i < cts.size(); ++i) {
        LweCiphertext seq = boot.pbs(cts[i], *tvs[i], gb->bootstrapKey(),
                                     gb->keySwitchKey());
        EXPECT_TRUE(sameCiphertext(out[i], seq)) << "request " << i;
    }
}

TEST_F(RuntimeFixture, OversizedBatchesSplitPerChunkBitExact)
{
    // An aggregation wider than the engine's appetite executes as
    // consecutive lockstep chunks; chunking regroups independent
    // requests only, so any chunk width gives identical bytes.
    BatchedBootstrapper bb(*gb);
    std::vector<LweCiphertext> cts;
    std::vector<bool> bits;
    for (size_t i = 0; i < 11; ++i) {
        bits.push_back((i % 4) != 2);
        cts.push_back(gb->encryptBit(bits.back()));
    }
    PbsBatch batch;
    for (const auto &ct : cts) {
        batch.add(ct, gb->signVector());
    }
    std::vector<LweCiphertext> whole = bb.runChunked(batch, 0);
    for (size_t chunk : {1u, 3u, 4u, 16u}) {
        std::vector<LweCiphertext> split = bb.runChunked(batch, chunk);
        ASSERT_EQ(split.size(), whole.size()) << "chunk " << chunk;
        for (size_t i = 0; i < whole.size(); ++i) {
            EXPECT_TRUE(sameCiphertext(split[i], whole[i]))
                << "chunk " << chunk << " request " << i;
        }
    }
    // The default path caps lockstep width at preferredBatch().
    std::vector<LweCiphertext> deflt = bb.run(batch);
    for (size_t i = 0; i < whole.size(); ++i) {
        EXPECT_TRUE(sameCiphertext(deflt[i], whole[i])) << i;
        EXPECT_EQ(gb->decryptBit(deflt[i]), bits[i]) << i;
    }
}

TEST_F(RuntimeFixture, EmptyAndSingletonBatches)
{
    BatchedBootstrapper bb(*gb);
    EXPECT_TRUE(bb.bootstrapSignBatch({}).empty());

    LweCiphertext ct = gb->encryptBit(true);
    std::vector<LweCiphertext> one = bb.bootstrapSignBatch({ct});
    ASSERT_EQ(one.size(), 1u);
    EXPECT_TRUE(sameCiphertext(one[0], gb->bootstrapSign(ct)));
}

TEST_F(RuntimeFixture, ServerAggregatesUpToMaxBatch)
{
    ServerOptions opts;
    opts.maxBatch = 4;
    opts.maxWaitUs = 2000000; // hold the batch open; size triggers
    PbsServer server(*gb, opts);
    std::vector<bool> bits = {true, false, false, true};
    std::vector<std::future<LweCiphertext>> futures;
    for (bool b : bits) {
        futures.push_back(server.submit(gb->encryptBit(b)));
    }
    for (size_t i = 0; i < futures.size(); ++i) {
        EXPECT_EQ(gb->decryptBit(futures[i].get()), bits[i]);
    }
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, bits.size());
    EXPECT_EQ(stats.batches, 1u);
    EXPECT_EQ(stats.largestBatch, bits.size());
}

TEST_F(RuntimeFixture, ServerFlushesUnderfullBatchOnDeadline)
{
    ServerOptions opts;
    opts.maxBatch = 64;
    opts.maxWaitUs = 500;
    PbsServer server(*gb, opts);
    auto f0 = server.submit(gb->encryptBit(true));
    auto f1 = server.submit(gb->encryptBit(false));
    auto f2 = server.submit(gb->encryptBit(true));
    EXPECT_TRUE(gb->decryptBit(f0.get()));
    EXPECT_FALSE(gb->decryptBit(f1.get()));
    EXPECT_TRUE(gb->decryptBit(f2.get()));
    ServerStats stats = server.stats();
    EXPECT_EQ(stats.requests, 3u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_LE(stats.largestBatch, 3u);
}

TEST_F(RuntimeFixture, ServerHandlesConcurrentSubmitters)
{
    ServerOptions opts;
    opts.maxBatch = 8;
    opts.maxWaitUs = 300;
    const size_t submitters = 4;
    const size_t per_thread = 6;
    std::vector<std::vector<LweCiphertext>> inputs(submitters);
    std::vector<std::vector<bool>> bits(submitters);
    // Encrypt up front: the context RNG is not thread-safe.
    for (size_t t = 0; t < submitters; ++t) {
        for (size_t i = 0; i < per_thread; ++i) {
            bool b = ((t + i) % 3) != 1;
            bits[t].push_back(b);
            inputs[t].push_back(gb->encryptBit(b));
        }
    }
    std::atomic<size_t> correct{0};
    {
        PbsServer server(*gb, opts);
        std::vector<std::thread> clients;
        for (size_t t = 0; t < submitters; ++t) {
            clients.emplace_back([&, t] {
                std::vector<std::future<LweCiphertext>> futures;
                for (auto &ct : inputs[t]) {
                    futures.push_back(server.submit(ct));
                }
                for (size_t i = 0; i < futures.size(); ++i) {
                    if (gb->decryptBit(futures[i].get()) == bits[t][i]) {
                        correct.fetch_add(1);
                    }
                }
            });
        }
        for (auto &c : clients) {
            c.join();
        }
        ServerStats stats = server.stats();
        EXPECT_EQ(stats.requests, submitters * per_thread);
        EXPECT_LE(stats.largestBatch, opts.maxBatch);
        EXPECT_GE(stats.batches,
                  submitters * per_thread / opts.maxBatch);
    }
    EXPECT_EQ(correct.load(), submitters * per_thread);
}

TEST_F(RuntimeFixture, DestructorDrainsQueuedRequests)
{
    ServerOptions opts;
    opts.maxBatch = 16;
    opts.maxWaitUs = 1000000; // deadline alone would stall for 1s
    std::vector<std::future<LweCiphertext>> futures;
    {
        PbsServer server(*gb, opts);
        futures.push_back(server.submit(gb->encryptBit(true)));
        futures.push_back(server.submit(gb->encryptBit(false)));
        // Shutdown must flush the underfull batch immediately.
    }
    EXPECT_TRUE(gb->decryptBit(futures[0].get()));
    EXPECT_FALSE(gb->decryptBit(futures[1].get()));
}

TEST(RuntimeOptions, EnginesReportPositiveBatchHints)
{
    auto &reg = BackendRegistry::instance();
    for (const char *name : {"serial", "threads", "simd"}) {
        auto engine = reg.create(name);
        EXPECT_GE(engine->preferredBatch(), engine->threadCount())
            << name;
        EXPECT_GE(engine->preferredBatch(), 1u) << name;
    }
}

#if !defined(__SANITIZE_THREAD__)
TEST(RuntimeOptions, RecursiveSimInnerIsRejected)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("TRINITY_SIM_INNER", "sim", 1);
            BackendRegistry::instance().create("sim");
        },
        ::testing::ExitedWithCode(1), "recursive self-wrapping");
}

TEST(RuntimeOptions, UnknownSimInnerListsValidEngines)
{
    ::testing::GTEST_FLAG(death_test_style) = "threadsafe";
    EXPECT_EXIT(
        {
            setenv("TRINITY_SIM_INNER", "warp-drive", 1);
            BackendRegistry::instance().create("sim");
        },
        ::testing::ExitedWithCode(1), "valid inner engines");
}
#endif

} // namespace
} // namespace trinity
