/**
 * @file
 * Parameterized CKKS property sweep: homomorphic correctness of the
 * core ring operations across ring degrees and dnum choices
 * (TEST_P / INSTANTIATE_TEST_SUITE_P property-style coverage).
 */

#include <gtest/gtest.h>

#include "ckks/evaluator.h"

namespace trinity {
namespace {

struct SweepParam
{
    size_t logn;
    size_t max_level;
    size_t dnum;
};

class CkksSweep : public ::testing::TestWithParam<SweepParam>
{
  protected:
    void
    SetUp() override
    {
        auto p = GetParam();
        CkksParams cp;
        cp.n = 1ULL << p.logn;
        cp.maxLevel = p.max_level;
        cp.dnum = p.dnum;
        ctx = std::make_shared<CkksContext>(cp);
        keygen = std::make_unique<CkksKeyGenerator>(ctx, 4040);
        encoder = std::make_unique<CkksEncoder>(ctx);
        enc = std::make_unique<CkksEncryptor>(
            ctx, keygen->makePublicKey(), 4041);
        eval = std::make_unique<CkksEvaluator>(ctx);
    }

    std::shared_ptr<CkksContext> ctx;
    std::unique_ptr<CkksKeyGenerator> keygen;
    std::unique_ptr<CkksEncoder> encoder;
    std::unique_ptr<CkksEncryptor> enc;
    std::unique_ptr<CkksEvaluator> eval;
};

TEST_P(CkksSweep, HomomorphicMultiplyAddRotate)
{
    auto relin = keygen->makeRelinKey();
    auto rot = keygen->makeRotationKey(1);
    size_t level = ctx->params().maxLevel;
    size_t n_check = 6;
    Rng rng(GetParam().logn);
    std::vector<cd> x(encoder->slots()), y(encoder->slots());
    for (size_t i = 0; i < x.size(); ++i) {
        x[i] = cd(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
        y[i] = cd(rng.uniformReal() - 0.5, rng.uniformReal() - 0.5);
    }
    auto ct_x = enc->encrypt(encoder->encode(x, level));
    auto ct_y = enc->encrypt(encoder->encode(y, level));

    // (x * y) + x, then rotate left by 1.
    auto prod = eval->multiply(ct_x, ct_y, relin);
    eval->rescaleInPlace(prod);
    auto ct_x_low = ct_x;
    eval->dropToLevel(ct_x_low, prod.level);
    auto sum = eval->add(prod, ct_x_low);
    auto rotated = eval->rotate(sum, 1, rot);
    auto out =
        encoder->decode(enc->decrypt(rotated, keygen->secretKey()));
    for (size_t i = 0; i < n_check; ++i) {
        size_t src = (i + 1) % encoder->slots();
        cd expect = x[src] * y[src] + x[src];
        EXPECT_NEAR(out[i].real(), expect.real(), 5e-3)
            << "slot " << i;
        EXPECT_NEAR(out[i].imag(), expect.imag(), 5e-3);
    }
}

TEST_P(CkksSweep, KeySwitchNoiseStaysBounded)
{
    auto relin = keygen->makeRelinKey();
    size_t level = ctx->params().maxLevel;
    size_t n = ctx->n();
    Rng rng(99);
    std::vector<i64> d_coeffs(n);
    for (auto &c : d_coeffs) {
        c = static_cast<i64>(rng.uniform(1 << 16)) - (1 << 15);
    }
    RnsPoly d = RnsPoly::fromSigned(d_coeffs, n, ctx->qTo(level));
    auto [c0, c1] = eval->keySwitch(d, relin, level);
    auto moduli = ctx->qTo(level);
    RnsPoly s = keygen->secretKey().embed(moduli);
    s.toEval();
    RnsPoly lhs = c1;
    lhs.toEval();
    lhs.mulPointwiseInPlace(s);
    RnsPoly c0e = c0;
    c0e.toEval();
    lhs.addInPlace(c0e);
    RnsPoly rhs = d;
    rhs.toEval();
    rhs.mulPointwiseInPlace(s);
    rhs.mulPointwiseInPlace(s);
    lhs.subInPlace(rhs);
    lhs.toCoeff();
    double rel = static_cast<double>(lhs.limb(0).infNorm()) /
                 static_cast<double>(ctx->qChain()[0]);
    EXPECT_LT(rel, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CkksSweep,
    ::testing::Values(SweepParam{10, 2, 1}, SweepParam{10, 3, 3},
                      SweepParam{11, 4, 2}, SweepParam{12, 5, 3},
                      SweepParam{13, 6, 2}),
    [](const ::testing::TestParamInfo<SweepParam> &info) {
        return "n2e" + std::to_string(info.param.logn) + "_L" +
               std::to_string(info.param.max_level) + "_dnum" +
               std::to_string(info.param.dnum);
    });

} // namespace
} // namespace trinity
