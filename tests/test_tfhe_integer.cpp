/**
 * @file
 * Encrypted-integer ALU tests (the HE3DB filter substrate):
 * comparison, equality, ripple-carry addition, selection, and the
 * range predicate — exhaustively on small widths, randomized on 4-bit.
 */

#include <gtest/gtest.h>

#include "tfhe/integer.h"

namespace trinity {
namespace {

struct IntFixture : public ::testing::Test
{
    void
    SetUp() override
    {
        gb = std::make_unique<TfheGateBootstrapper>(
            TfheParams::testTiny(), 616);
        alu = std::make_unique<TfheIntEvaluator>(*gb);
    }

    std::unique_ptr<TfheGateBootstrapper> gb;
    std::unique_ptr<TfheIntEvaluator> alu;
};

TEST_F(IntFixture, EncryptDecryptRoundtrip)
{
    for (u64 v : {0ull, 1ull, 9ull, 15ull}) {
        auto x = alu->encrypt(v, 4);
        EXPECT_EQ(alu->decrypt(x), v);
    }
}

TEST_F(IntFixture, LessThanExhaustive2Bit)
{
    for (u64 a = 0; a < 4; ++a) {
        for (u64 b = 0; b < 4; ++b) {
            auto ca = alu->encrypt(a, 2);
            auto cb = alu->encrypt(b, 2);
            EXPECT_EQ(gb->decryptBit(alu->lessThan(ca, cb)), a < b)
                << a << " < " << b;
        }
    }
}

TEST_F(IntFixture, EqualExhaustive2Bit)
{
    for (u64 a = 0; a < 4; ++a) {
        for (u64 b = 0; b < 4; ++b) {
            auto ca = alu->encrypt(a, 2);
            auto cb = alu->encrypt(b, 2);
            EXPECT_EQ(gb->decryptBit(alu->equal(ca, cb)), a == b);
        }
    }
}

TEST_F(IntFixture, RippleCarryAdd4Bit)
{
    Rng rng(91);
    for (int trial = 0; trial < 6; ++trial) {
        u64 a = rng.uniform(16);
        u64 b = rng.uniform(16);
        auto sum = alu->add(alu->encrypt(a, 4), alu->encrypt(b, 4));
        EXPECT_EQ(alu->decrypt(sum), (a + b) % 16)
            << a << " + " << b;
    }
}

TEST_F(IntFixture, SelectPicksBranch)
{
    auto a = alu->encrypt(11, 4);
    auto b = alu->encrypt(4, 4);
    EXPECT_EQ(alu->decrypt(
                  alu->select(gb->encryptBit(true), a, b)),
              11u);
    EXPECT_EQ(alu->decrypt(
                  alu->select(gb->encryptBit(false), a, b)),
              4u);
}

TEST_F(IntFixture, RangePredicateLikeHe3db)
{
    // TPC-H Q6 style: lo <= x < hi on encrypted values.
    auto lo = alu->encrypt(3, 4);
    auto hi = alu->encrypt(9, 4);
    for (u64 x : {0ull, 3ull, 5ull, 8ull, 9ull, 15ull}) {
        auto cx = alu->encrypt(x, 4);
        bool expect = x >= 3 && x < 9;
        EXPECT_EQ(gb->decryptBit(alu->inRange(cx, lo, hi)), expect)
            << "x=" << x;
    }
}

} // namespace
} // namespace trinity
