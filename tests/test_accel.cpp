/**
 * @file
 * Accelerator-model tests: configuration sanity, the area/power model
 * against Table XI, NTT-utilization model shapes (Fig. 1 / Fig. 9),
 * and cluster-scaling behaviour (Fig. 15 / 16).
 */

#include <gtest/gtest.h>

#include "accel/area.h"
#include "accel/configs.h"
#include "accel/ntt_util.h"

namespace trinity {
namespace accel {
namespace {

TEST(Configs, TrinityHasAllCkksKernelRoutes)
{
    auto m = trinityCkks();
    for (auto t : {sim::KernelType::Ntt, sim::KernelType::Intt,
                   sim::KernelType::Bconv, sim::KernelType::Ip,
                   sim::KernelType::ModMul, sim::KernelType::ModAdd,
                   sim::KernelType::Auto, sim::KernelType::Rotate,
                   sim::KernelType::SampleExtract}) {
        EXPECT_NO_FATAL_FAILURE(m.route(t));
    }
}

TEST(Configs, MorphlingCannotRunCkksAutomorphism)
{
    // Morphling is TFHE-only: no AutoU -> CKKS HRotate cannot map.
    auto m = morphling();
    EXPECT_DEATH(m.route(sim::KernelType::Auto), "");
}

TEST(Configs, TrinityNttCapacityScalesWithClusters)
{
    auto m2 = trinityCkks(2);
    auto m4 = trinityCkks(4);
    auto m8 = trinityCkks(8);
    EXPECT_DOUBLE_EQ(m4.pool("NTTU").elemsPerCycle,
                     2 * m2.pool("NTTU").elemsPerCycle);
    EXPECT_DOUBLE_EQ(m8.pool("NTTU").elemsPerCycle,
                     2 * m4.pool("NTTU").elemsPerCycle);
}

TEST(Configs, WithoutCuPaysTwoNttPasses)
{
    auto wo = trinityTfheWithoutCu();
    auto w = trinityTfheWithCu();
    EXPECT_DOUBLE_EQ(wo.route(sim::KernelType::Ntt).costFactor, 2.0);
    EXPECT_DOUBLE_EQ(w.route(sim::KernelType::Ntt).costFactor, 1.0);
}

TEST(AreaModel, MatchesTableXiClusterTotal)
{
    AreaModel m(4);
    EXPECT_NEAR(m.clusterArea(), 16.28, 0.01);
    EXPECT_NEAR(m.clusterPower(), 35.94, 0.01);
}

TEST(AreaModel, MatchesTableXiChipTotal)
{
    AreaModel m(4);
    EXPECT_NEAR(m.totalArea(), 157.26, 0.01);
    EXPECT_NEAR(m.totalPower(), 229.36, 0.01);
}

TEST(AreaModel, SmallerThanSharpPlusMorphling)
{
    // The headline area claim: Trinity is ~15% smaller than the sum
    // of SHARP and Morphling.
    AreaModel m(4);
    double combined = AreaModel::sharpAreaMm2() +
                      AreaModel::morphlingAreaMm2();
    double reduction = 1.0 - m.totalArea() / combined;
    EXPECT_GT(reduction, 0.10);
    EXPECT_LT(reduction, 0.20);
}

TEST(AreaModel, ClusterScalingMatchesFig16Trend)
{
    AreaModel a2(2), a4(4), a8(8);
    // 2 clusters: ~28% area reduction vs the default (Section VI-E).
    double red = 1.0 - a2.totalArea() / a4.totalArea();
    EXPECT_NEAR(red, 0.28, 0.06);
    // 8 clusters: ~2x area of the default.
    double inc = a8.totalArea() / a4.totalArea();
    EXPECT_NEAR(inc, 2.0, 0.25);
    // Monotone in cluster count.
    EXPECT_LT(a2.totalArea(), a4.totalArea());
    EXPECT_LT(a4.totalArea(), a8.totalArea());
    EXPECT_LT(a2.totalPower(), a4.totalPower());
    EXPECT_LT(a4.totalPower(), a8.totalPower());
}

TEST(NttUtil, F1LikeIncreasesWithLength)
{
    // Fig. 1: F1-like peaks at N = 2^16 and decays as N shrinks.
    double prev = 0;
    for (size_t lg = 8; lg <= 16; ++lg) {
        double u = f1LikeNttUtil(1ULL << lg);
        EXPECT_GE(u, prev) << "N=2^" << lg;
        EXPECT_LE(u, 1.0);
        prev = u;
    }
    EXPECT_LT(f1LikeNttUtil(1 << 8), 0.35);
    EXPECT_GT(f1LikeNttUtil(1 << 16), 0.9);
}

TEST(NttUtil, FabLikeDecreasesWithLength)
{
    // Fig. 1: FAB-like peaks at short lengths and decays upward.
    double prev = 1.0;
    for (size_t lg = 8; lg <= 16; ++lg) {
        double u = fabLikeNttUtil(1ULL << lg);
        EXPECT_LE(u, prev) << "N=2^" << lg;
        prev = u;
    }
    EXPECT_GT(fabLikeNttUtil(1 << 8), 0.85);
    EXPECT_LT(fabLikeNttUtil(1 << 16), 0.4);
}

TEST(NttUtil, TrinityStaysHighAcrossAllLengths)
{
    // Fig. 9: the configurable mapping keeps utilization >= ~0.8
    // everywhere and beats F1-like on average by ~1.2x.
    double trinity_sum = 0, f1_sum = 0;
    for (size_t lg = 8; lg <= 16; ++lg) {
        double u = trinityNttUtil(1ULL << lg);
        EXPECT_GT(u, 0.75) << "N=2^" << lg;
        EXPECT_LE(u, 1.0);
        trinity_sum += u;
        f1_sum += f1LikeNttUtil(1ULL << lg);
    }
    double gain = trinity_sum / f1_sum;
    EXPECT_GT(gain, 1.1);
    EXPECT_LT(gain, 1.6);
}

} // namespace
} // namespace accel
} // namespace trinity
