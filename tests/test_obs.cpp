/**
 * @file
 * Observability tests: the Chrome trace file is well-formed JSON with
 * valid ph/ts/dur events on every engine (including per-worker job
 * spans from the pipelined executor and virtual-time spans from the
 * sim schedule), histogram percentiles against a sorted-vector
 * reference, the metrics kill switch, PbsServer latency accounting,
 * and the ScratchArena stats passthrough.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "backend/command_stream.h"
#include "backend/registry.h"
#include "backend/scratch_arena.h"
#include "backend/thread_pool_backend.h"
#include "common/primes.h"
#include "common/rng.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/pbs_server.h"

namespace trinity {
namespace {

// --- minimal JSON parser (validation only) ---------------------------------

struct Json
{
    enum Kind
    {
        Null,
        Bool,
        Num,
        Str,
        Arr,
        Obj
    };
    Kind kind = Null;
    bool b = false;
    double num = 0;
    std::string str;
    std::vector<Json> arr;
    std::map<std::string, Json> obj;

    const Json *
    find(const std::string &key) const
    {
        auto it = obj.find(key);
        return it == obj.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &s) : s_(s) {}

    bool
    parse(Json &out)
    {
        skip();
        if (!value(out)) {
            return false;
        }
        skip();
        return pos_ == s_.size();
    }

  private:
    void
    skip()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_]))) {
            ++pos_;
        }
    }

    bool
    lit(const char *t)
    {
        size_t len = std::string(t).size();
        if (s_.compare(pos_, len, t) != 0) {
            return false;
        }
        pos_ += len;
        return true;
    }

    bool
    string(std::string &out)
    {
        if (pos_ >= s_.size() || s_[pos_] != '"') {
            return false;
        }
        ++pos_;
        out.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= s_.size()) {
                return false;
            }
            char e = s_[pos_++];
            switch (e) {
            case '"':
            case '\\':
            case '/':
                out += e;
                break;
            case 'b':
            case 'f':
            case 'n':
            case 'r':
            case 't':
                out += ' ';
                break;
            case 'u':
                if (pos_ + 4 > s_.size()) {
                    return false;
                }
                pos_ += 4;
                out += '?';
                break;
            default:
                return false;
            }
        }
        if (pos_ >= s_.size()) {
            return false;
        }
        ++pos_; // closing quote
        return true;
    }

    bool
    number(double &out)
    {
        const char *start = s_.c_str() + pos_;
        char *end = nullptr;
        out = std::strtod(start, &end);
        if (end == start) {
            return false;
        }
        pos_ += static_cast<size_t>(end - start);
        return true;
    }

    bool
    value(Json &out)
    {
        skip();
        if (pos_ >= s_.size()) {
            return false;
        }
        char c = s_[pos_];
        if (c == '{') {
            ++pos_;
            out.kind = Json::Obj;
            skip();
            if (pos_ < s_.size() && s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            while (true) {
                std::string key;
                skip();
                if (!string(key)) {
                    return false;
                }
                skip();
                if (pos_ >= s_.size() || s_[pos_++] != ':') {
                    return false;
                }
                Json v;
                if (!value(v)) {
                    return false;
                }
                out.obj.emplace(std::move(key), std::move(v));
                skip();
                if (pos_ >= s_.size()) {
                    return false;
                }
                char d = s_[pos_++];
                if (d == '}') {
                    return true;
                }
                if (d != ',') {
                    return false;
                }
            }
        }
        if (c == '[') {
            ++pos_;
            out.kind = Json::Arr;
            skip();
            if (pos_ < s_.size() && s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            while (true) {
                Json v;
                if (!value(v)) {
                    return false;
                }
                out.arr.push_back(std::move(v));
                skip();
                if (pos_ >= s_.size()) {
                    return false;
                }
                char d = s_[pos_++];
                if (d == ']') {
                    return true;
                }
                if (d != ',') {
                    return false;
                }
            }
        }
        if (c == '"') {
            out.kind = Json::Str;
            return string(out.str);
        }
        if (c == 't') {
            out.kind = Json::Bool;
            out.b = true;
            return lit("true");
        }
        if (c == 'f') {
            out.kind = Json::Bool;
            out.b = false;
            return lit("false");
        }
        if (c == 'n') {
            out.kind = Json::Null;
            return lit("null");
        }
        out.kind = Json::Num;
        return number(out.num);
    }

    const std::string &s_;
    size_t pos_ = 0;
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::string
tempTracePath(const std::string &tag)
{
    return testing::TempDir() + "trinity_trace_" + tag + ".json";
}

// --- workload driven through each engine -----------------------------------

/** Record a small dependent workload on @p backend's stream: enough
 *  command/job structure that the pipelined executor schedules,
 *  steals, and idles, and the sim executor prices a DAG. */
void
runStreamWorkload(PolyBackend &backend)
{
    const size_t n = 1024;
    Modulus mod(findNttPrimes(40, 2 * n, 1)[0]);
    auto table = NttTableCache::get(n, mod.value());
    Rng rng(7);
    std::vector<std::vector<u64>> buf(4, std::vector<u64>(n));
    for (auto &b : buf) {
        for (auto &x : b) {
            x = rng.uniform(mod.value());
        }
    }
    auto stream = backend.newStream();
    Job ntt = stream->nttForward(
        {{buf[0].data(), table.get()}, {buf[1].data(), table.get()}});
    Job mul = stream->pointwiseMul(
        {{buf[2].data(), buf[0].data(), buf[1].data(), &mod, n}}, {ntt});
    Job ma = stream->mulAdd(
        {{buf[3].data(), buf[2].data(), buf[0].data(), &mod, n}}, {mul});
    stream->nttInverse({{buf[2].data(), table.get()}}, {mul, ma});
    stream->fence();
    stream->submit();
    stream->wait();

    // A blocking batch too, so the engine-pid "op" spans appear even
    // when the stream coalesced or priced everything.
    std::vector<NttJob> jobs = {{buf[0].data(), table.get()},
                                {buf[1].data(), table.get()}};
    backend.nttForwardBatch(jobs.data(), jobs.size());
}

/** Parse @p path and validate trace-event shape; fills @p cats with
 *  the categories seen on complete events (void so ASSERT_* works). */
void
validateTrace(const std::string &path, std::map<std::string, size_t> &cats)
{
    std::string text = readFile(path);
    EXPECT_FALSE(text.empty()) << path;
    Json root;
    EXPECT_TRUE(JsonParser(text).parse(root)) << "invalid JSON: " << path;
    EXPECT_EQ(root.kind, Json::Obj);
    const Json *events = root.find("traceEvents");
    if (events == nullptr) {
        ADD_FAILURE() << "no traceEvents in " << path;
        return;
    }
    EXPECT_EQ(events->kind, Json::Arr);
    EXPECT_FALSE(events->arr.empty());
    for (const Json &ev : events->arr) {
        EXPECT_EQ(ev.kind, Json::Obj);
        const Json *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_EQ(ph->kind, Json::Str);
        const Json *name = ev.find("name");
        ASSERT_NE(name, nullptr);
        if (ph->str == "M") {
            continue; // metadata carries no timestamps
        }
        const Json *ts = ev.find("ts");
        ASSERT_NE(ts, nullptr) << "event missing ts";
        EXPECT_EQ(ts->kind, Json::Num);
        EXPECT_GE(ts->num, 0.0);
        if (ph->str == "X") {
            const Json *dur = ev.find("dur");
            ASSERT_NE(dur, nullptr) << "complete event missing dur";
            EXPECT_EQ(dur->kind, Json::Num);
            EXPECT_GE(dur->num, 0.0);
            const Json *cat = ev.find("cat");
            if (cat != nullptr && cat->kind == Json::Str) {
                cats[cat->str] += 1;
            }
        } else {
            EXPECT_EQ(ph->str, "i") << "unexpected phase " << ph->str;
        }
    }
}

TEST(ObsTrace, ValidJsonOnEveryEngine)
{
    for (const std::string &engine :
         {std::string("serial"), std::string("threads"),
          std::string("simd"), std::string("sim")}) {
        std::string path = tempTracePath(engine);
        obs::enableTrace(path);
        auto backend = BackendRegistry::instance().create(engine);
        runStreamWorkload(*backend);
        ASSERT_TRUE(obs::writeTrace());
        obs::disableTrace();
        std::map<std::string, size_t> cats;
        validateTrace(path, cats);
        EXPECT_GT(cats["op"], 0u) << engine;
        if (engine == "sim") {
            EXPECT_GT(cats["sim"], 0u)
                << "sim engine produced no virtual-time spans";
        }
        std::remove(path.c_str());
    }
}

TEST(ObsTrace, PipelinedWorkersEmitJobSpans)
{
    // A directly constructed pool guarantees workers (the registry
    // engine collapses to the coalescing fallback on 1-core hosts)
    // and overrideStreams pins the pipelined executor even when the
    // suite runs under TRINITY_STREAMS=off.
    overrideStreams(1);
    std::string path = tempTracePath("pipelined");
    obs::enableTrace(path);
    {
        ThreadPoolBackend pool(4);
        runStreamWorkload(pool);
    }
    ASSERT_TRUE(obs::writeTrace());
    obs::disableTrace();
    overrideStreams(-1);
    std::map<std::string, size_t> cats;
    validateTrace(path, cats);
    EXPECT_GT(cats["job"], 0u) << "no per-worker job spans";
    std::remove(path.c_str());
}

TEST(ObsTrace, DisableDropsBufferedEvents)
{
    std::string path = tempTracePath("drop");
    obs::enableTrace(path);
    obs::traceInstant("marker", "test", "test-track");
    obs::disableTrace();
    obs::enableTrace(path);
    ASSERT_TRUE(obs::writeTrace());
    obs::disableTrace();
    std::string text = readFile(path);
    EXPECT_EQ(text.find("marker"), std::string::npos);
    std::remove(path.c_str());
}

// --- histogram math ---------------------------------------------------------

TEST(ObsMetrics, HistogramExactBelowLinearRange)
{
    obs::Histogram h;
    for (u64 v = 0; v < obs::Histogram::kLinear; ++v) {
        EXPECT_EQ(obs::Histogram::bucketMid(obs::Histogram::bucketOf(v)),
                  v);
    }
}

TEST(ObsMetrics, HistogramBucketErrorBounded)
{
    Rng rng(11);
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform over the full interesting range.
        u64 v = rng.uniform(u64{1} << rng.uniform(52));
        u64 mid = obs::Histogram::bucketMid(obs::Histogram::bucketOf(v));
        double rel = v == 0 ? 0.0
                            : std::abs(static_cast<double>(mid) -
                                       static_cast<double>(v)) /
                                  static_cast<double>(v);
        EXPECT_LE(rel, 0.125) << "value " << v << " mid " << mid;
    }
}

TEST(ObsMetrics, HistogramPercentilesMatchSortedReference)
{
    obs::overrideMetrics(1);
    obs::Histogram h;
    std::vector<u64> ref;
    Rng rng(23);
    for (int i = 0; i < 50000; ++i) {
        // Latency-shaped distribution: a dense body with a long tail.
        u64 v = 1000 + rng.uniform(u64{1} << (10 + rng.uniform(16)));
        h.observe(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {0.50, 0.90, 0.99, 0.999}) {
        size_t rank = static_cast<size_t>(
            std::ceil(p * static_cast<double>(ref.size())));
        u64 expect = ref[rank - 1];
        u64 got = h.percentile(p);
        // Bucket midpoints bound the relative error at 12.5%.
        EXPECT_GE(static_cast<double>(got),
                  0.875 * static_cast<double>(expect))
            << "p" << p;
        EXPECT_LE(static_cast<double>(got),
                  1.125 * static_cast<double>(expect))
            << "p" << p;
    }
    EXPECT_EQ(h.count(), ref.size());
    obs::overrideMetrics(-1);
}

TEST(ObsMetrics, DisabledMeansZeroMutations)
{
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    obs::Counter &c = reg.counter("test.disabled.counter");
    obs::Gauge &g = reg.gauge("test.disabled.gauge");
    obs::Histogram &h = reg.histogram("test.disabled.hist");
    c.reset();
    g.reset();
    h.reset();
    obs::overrideMetrics(0);
    EXPECT_FALSE(obs::metricsEnabled());
    c.add(5);
    g.set(42);
    h.observe(1234);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.percentile(0.99), 0u);
    obs::overrideMetrics(1);
    c.add(5);
    g.set(42);
    h.observe(1234);
    EXPECT_EQ(c.value(), 5u);
    EXPECT_EQ(g.value(), 42);
    EXPECT_EQ(h.count(), 1u);
    obs::overrideMetrics(-1);
}

TEST(ObsMetrics, RegistrySnapshotAndJson)
{
    obs::overrideMetrics(1);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    reg.counter("test.snap.counter").reset();
    reg.counter("test.snap.counter").add(3);
    reg.histogram("test.snap.hist").reset();
    reg.histogram("test.snap.hist").observe(100);
    std::string json = reg.json();
    Json root;
    ASSERT_TRUE(JsonParser(json).parse(root)) << json;
    const Json *c = root.find("test.snap.counter");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->num, 3.0);
    const Json *h = root.find("test.snap.hist");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->kind, Json::Obj);
    const Json *count = h->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_EQ(count->num, 1.0);
    obs::overrideMetrics(-1);
}

// --- wiring -----------------------------------------------------------------

TEST(ObsWiring, ScratchArenaStatsAreRegistryCounters)
{
    obs::overrideMetrics(1);
    // Drop slabs pooled by earlier tests so the hit/miss sequence
    // below is deterministic.
    ScratchArena::local().clear();
    ScratchArena::resetStats();
    {
        ScratchBuffer a = ScratchArena::local().acquire(512); // miss
        ScratchBuffer b = ScratchArena::local().acquire(512); // miss
    }
    ScratchBuffer c = ScratchArena::local().acquire(512); // hit
    ScratchArena::Stats s = ScratchArena::stats();
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.hits, 1u);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    EXPECT_EQ(reg.counter("scratch_arena.hits").value(), s.hits);
    EXPECT_EQ(reg.counter("scratch_arena.misses").value(), s.misses);
    obs::overrideMetrics(-1);
}

TEST(ObsWiring, PbsServerLatencyHistogramCountsRequests)
{
    obs::overrideMetrics(1);
    TfheGateBootstrapper gb(TfheParams::testTiny(), 20240);
    obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
    obs::Histogram &lat = reg.histogram("pbs_server.request_latency_ns");
    obs::Histogram &qw = reg.histogram("pbs_server.queue_wait_ns");
    u64 lat0 = lat.count();
    u64 qw0 = qw.count();
    const size_t kRequests = 10;
    {
        runtime::PbsServer server(gb);
        std::vector<std::future<LweCiphertext>> futures;
        for (size_t i = 0; i < kRequests; ++i) {
            futures.push_back(server.submit(gb.encryptBit(i % 2 == 0)));
        }
        for (auto &f : futures) {
            f.get();
        }
    } // join the worker: every observation happened-before this point
    EXPECT_EQ(lat.count() - lat0, kRequests);
    EXPECT_EQ(qw.count() - qw0, kRequests);
    obs::overrideMetrics(-1);
}

} // namespace
} // namespace trinity
