/**
 * @file
 * The four-step decomposition (NTTU phase-1 + CU phase-2 + OF-Twist +
 * transpose) must match the monolithic transform for every factor
 * split, including the asymmetric splits Trinity uses for
 * N in (2M, 2M^2).
 */

#include <gtest/gtest.h>

#include "common/primes.h"
#include "common/rng.h"
#include "poly/four_step.h"

namespace trinity {
namespace {

class FourStepTest
    : public ::testing::TestWithParam<std::pair<size_t, size_t>>
{
};

TEST_P(FourStepTest, CyclicMatchesMonolithic)
{
    auto [n1, n2] = GetParam();
    size_t n = n1 * n2;
    u64 q = findNttPrimes(40, 2 * n, 1)[0];
    Modulus m(q);
    FourStepNtt fs(n1, n2, m);
    NttTable ref(n, m);
    Rng rng(31);
    auto a = rng.uniformVec(n, q);
    auto b = a;
    fs.forwardCyclic(a);
    ref.forwardCyclic(b.data());
    EXPECT_EQ(a, b) << "n1=" << n1 << " n2=" << n2;
}

TEST_P(FourStepTest, NegacyclicMatchesMonolithic)
{
    auto [n1, n2] = GetParam();
    size_t n = n1 * n2;
    u64 q = findNttPrimes(40, 2 * n, 1)[0];
    Modulus m(q);
    FourStepNtt fs(n1, n2, m);
    NttTable ref(n, m);
    Rng rng(32);
    auto a = rng.uniformVec(n, q);
    auto b = a;
    fs.forward(a);
    ref.forward(b.data());
    NttTable::bitrevPermute(b.data(), n);
    EXPECT_EQ(a, b);
}

TEST_P(FourStepTest, Roundtrip)
{
    auto [n1, n2] = GetParam();
    size_t n = n1 * n2;
    u64 q = findNttPrimes(40, 2 * n, 1)[0];
    FourStepNtt fs(n1, n2, Modulus(q));
    Rng rng(33);
    auto a = rng.uniformVec(n, q);
    auto orig = a;
    fs.forward(a);
    fs.inverse(a);
    EXPECT_EQ(a, orig);
    fs.forwardCyclic(a);
    fs.inverseCyclic(a);
    EXPECT_EQ(a, orig);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FourStepTest,
    ::testing::Values(std::make_pair<size_t, size_t>(4, 4),
                      std::make_pair<size_t, size_t>(16, 16),
                      std::make_pair<size_t, size_t>(256, 4),
                      std::make_pair<size_t, size_t>(4, 256),
                      std::make_pair<size_t, size_t>(256, 16),
                      std::make_pair<size_t, size_t>(64, 64),
                      std::make_pair<size_t, size_t>(256, 256)));

TEST(FourStep, TrinityNttuPlusCuSplit)
{
    // The Trinity configuration: 256-point NTTU phase-1 with the
    // phase-2 residue handled by CU butterfly columns. N = 4096 is the
    // TFHE Set-III polynomial length (phase-2 length 16).
    size_t n1 = 256, n2 = 16;
    size_t n = n1 * n2;
    u64 q = findNttPrimes(36, 2 * n, 1)[0];
    Modulus m(q);
    FourStepNtt fs(n1, n2, m);
    NttTable ref(n, m);
    Rng rng(34);
    auto a = rng.uniformVec(n, q);
    auto b = a;
    fs.forward(a);
    ref.forward(b.data());
    NttTable::bitrevPermute(b.data(), n);
    EXPECT_EQ(a, b);
}

} // namespace
} // namespace trinity
