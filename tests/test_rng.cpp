/**
 * @file
 * Sanity tests for the deterministic RNG and samplers.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace trinity {
namespace {

TEST(Rng, Deterministic)
{
    Rng a(42), b(42), c(43);
    bool diverged = false;
    for (int i = 0; i < 100; ++i) {
        u64 va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next()) {
            diverged = true;
        }
    }
    EXPECT_TRUE(diverged);
}

TEST(Rng, UniformInRange)
{
    Rng rng(7);
    for (u64 q : {2ULL, 3ULL, 1000ULL, (1ULL << 50) + 1}) {
        for (int i = 0; i < 200; ++i) {
            EXPECT_LT(rng.uniform(q), q);
        }
    }
}

TEST(Rng, UniformMeanConcentrates)
{
    Rng rng(8);
    u64 q = 1000;
    double sum = 0;
    int iters = 20000;
    for (int i = 0; i < iters; ++i) {
        sum += static_cast<double>(rng.uniform(q));
    }
    double mean = sum / iters;
    EXPECT_NEAR(mean, (q - 1) / 2.0, 10.0);
}

TEST(Rng, TernaryBalanced)
{
    Rng rng(9);
    int counts[3] = {0, 0, 0};
    int iters = 30000;
    for (int i = 0; i < iters; ++i) {
        i64 t = rng.ternary();
        ASSERT_GE(t, -1);
        ASSERT_LE(t, 1);
        counts[t + 1]++;
    }
    for (int c : counts) {
        EXPECT_NEAR(c, iters / 3.0, iters * 0.02);
    }
}

TEST(Rng, GaussianMoments)
{
    Rng rng(10);
    double sigma = 3.2;
    double sum = 0, sq = 0;
    int iters = 50000;
    for (int i = 0; i < iters; ++i) {
        double g = static_cast<double>(rng.gaussian(sigma));
        sum += g;
        sq += g * g;
    }
    double mean = sum / iters;
    double var = sq / iters - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(std::sqrt(var), sigma, 0.2);
}

} // namespace
} // namespace trinity
