#include "ckks/keys.h"

#include <algorithm>

#include "backend/registry.h"
#include "common/logging.h"
#include "common/primes.h"

namespace trinity {

RnsPoly
CkksSecretKey::embed(const std::vector<u64> &moduli) const
{
    return RnsPoly::fromSigned(s, s.size(), moduli);
}

CkksSecretKey
CkksSecretKey::automorphism(u64 g) const
{
    size_t n = s.size();
    size_t two_n = 2 * n;
    CkksSecretKey out;
    out.s.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        u64 e = (static_cast<u64>(i) * g) % two_n;
        if (e < n) {
            out.s[e] = s[i];
        } else {
            out.s[e - n] = -s[i];
        }
    }
    return out;
}

CkksKeyGenerator::CkksKeyGenerator(std::shared_ptr<const CkksContext> ctx,
                                   u64 seed)
    : ctx_(std::move(ctx)), rng_(seed)
{
    size_t n = ctx_->n();
    sk_.s.resize(n);
    for (size_t i = 0; i < n; ++i) {
        sk_.s[i] = rng_.ternary();
    }
}

CkksPublicKey
CkksKeyGenerator::makePublicKey()
{
    size_t n = ctx_->n();
    auto moduli = ctx_->qTo(ctx_->params().maxLevel);
    RnsPoly s = sk_.embed(moduli);
    s.toEval();

    CkksPublicKey pk;
    pk.a = RnsPoly::uniform(n, moduli, rng_, Domain::Eval);
    // e sampled once as an integer polynomial, embedded per limb.
    std::vector<i64> e(n);
    for (size_t i = 0; i < n; ++i) {
        e[i] = rng_.gaussian(ctx_->params().sigma);
    }
    RnsPoly ep = RnsPoly::fromSigned(e, n, moduli);
    ep.toEval();
    // b = -(a s) + e
    pk.b = pk.a;
    pk.b.mulPointwiseInPlace(s);
    pk.b.negInPlace();
    pk.b.addInPlace(ep);
    return pk;
}

CkksEvalKey
CkksKeyGenerator::makeEvalKey(const std::vector<i64> &target)
{
    size_t n = ctx_->n();
    size_t big_l = ctx_->params().maxLevel;
    auto basis = ctx_->extendedBasis(big_l);
    size_t nq = big_l + 1;

    RnsPoly s = sk_.embed(basis);
    s.toEval();
    RnsPoly sp = RnsPoly::fromSigned(target, n, basis);
    sp.toEval();

    CkksEvalKey evk;
    // Effective digit count: when dnum does not divide L+1 the last
    // digit(s) would be empty — ceil((L+1)/alpha) digits exist.
    size_t dnum = ctx_->params().beta(big_l);
    evk.digits.reserve(dnum);
    for (size_t j = 0; j < dnum; ++j) {
        auto [begin, end] = ctx_->digitRange(big_l, j);
        EvalKeyDigit d;
        d.a = RnsPoly::uniform(n, basis, rng_, Domain::Eval);
        std::vector<i64> e(n);
        for (size_t i = 0; i < n; ++i) {
            e[i] = rng_.gaussian(ctx_->params().sigma);
        }
        RnsPoly ep = RnsPoly::fromSigned(e, n, basis);
        ep.toEval();
        // b = -(a s) + e + P*Dtilde_j*s' ; Dtilde_j is 1 on digit-j
        // q-limbs and 0 elsewhere (incl. all special-prime limbs).
        d.b = d.a;
        d.b.mulPointwiseInPlace(s);
        d.b.negInPlace();
        d.b.addInPlace(ep);
        size_t digit_end = std::min(end, nq);
        activeBackend().run(digit_end - begin, [&](size_t u) {
            size_t t = begin + u;
            const Modulus &m = d.b.modulusAt(t);
            u64 pmod = ctx_->pModQ(t);
            u64 *bl = d.b.limbData(t);
            const u64 *sl = sp.limbData(t);
            for (size_t c = 0; c < n; ++c) {
                bl[c] = m.add(bl[c], m.mul(pmod, sl[c]));
            }
        });
        evk.digits.push_back(std::move(d));
    }
    return evk;
}

CkksEvalKey
CkksKeyGenerator::makeRelinKey()
{
    // Target secret: s^2 mod (X^N + 1), computed exactly via an NTT
    // over a 59-bit prime (|s^2|_inf <= N, far below q/2).
    size_t n = ctx_->n();
    u64 wide = findNttPrimes(59, 2 * n, 1)[0];
    Poly sp(n, wide);
    for (size_t i = 0; i < n; ++i) {
        sp[i] = toResidue(sk_.s[i], wide);
    }
    Poly sq = sp * sp;
    std::vector<i64> s2(n);
    for (size_t i = 0; i < n; ++i) {
        s2[i] = centeredRep(sq[i], wide);
    }
    return makeEvalKey(s2);
}

CkksEvalKey
CkksKeyGenerator::makeGaloisKey(u64 g)
{
    return makeEvalKey(sk_.automorphism(g).s);
}

u64
CkksKeyGenerator::rotationToGalois(i64 steps) const
{
    size_t two_n = 2 * ctx_->n();
    size_t order = ctx_->n() / 2; // slot count
    u64 r = static_cast<u64>(((steps % static_cast<i64>(order)) +
                              static_cast<i64>(order)) %
                             static_cast<i64>(order));
    u64 g = 1;
    for (u64 i = 0; i < r; ++i) {
        g = (g * 5) % two_n;
    }
    return g;
}

CkksEvalKey
CkksKeyGenerator::makeRotationKey(i64 steps)
{
    return makeGaloisKey(rotationToGalois(steps));
}

} // namespace trinity
