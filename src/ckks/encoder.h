/**
 * @file
 * CKKS encoder: canonical embedding between C^(N/2) slot vectors and
 * plaintext polynomials (SIMD packing, Table I's m -> P_m).
 */

#ifndef TRINITY_CKKS_ENCODER_H
#define TRINITY_CKKS_ENCODER_H

#include <complex>
#include <vector>

#include "ckks/params.h"
#include "poly/fft.h"

namespace trinity {

/** CKKS plaintext: an RNS polynomial plus scale/level bookkeeping. */
struct CkksPlaintext
{
    RnsPoly poly;   ///< coefficient domain
    size_t level;   ///< chain level the plaintext was encoded at
    double scale;   ///< encoding scale
};

/** Canonical-embedding encoder/decoder. */
class CkksEncoder
{
  public:
    explicit CkksEncoder(std::shared_ptr<const CkksContext> ctx);

    /** Number of complex slots (N/2). */
    size_t slots() const { return ctx_->params().slots(); }

    /**
     * Encode complex slot values at the given level and scale.
     * @param values up to slots() entries (zero padded)
     * @param level target chain level
     * @param scale encoding scale; 0 means the context default
     */
    CkksPlaintext encode(const std::vector<cd> &values, size_t level,
                         double scale = 0) const;

    /** Encode real slot values. */
    CkksPlaintext encodeReal(const std::vector<double> &values,
                             size_t level, double scale = 0) const;

    /** Decode back to complex slot values. */
    std::vector<cd> decode(const CkksPlaintext &pt) const;

  private:
    std::shared_ptr<const CkksContext> ctx_;
    SpecialFft fft_;
};

} // namespace trinity

#endif // TRINITY_CKKS_ENCODER_H
