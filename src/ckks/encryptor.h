/**
 * @file
 * CKKS encryption and decryption ([[m]] = (c0, c1) with
 * Dec = c0 + c1*s).
 */

#ifndef TRINITY_CKKS_ENCRYPTOR_H
#define TRINITY_CKKS_ENCRYPTOR_H

#include "ckks/encoder.h"
#include "ckks/keys.h"

namespace trinity {

/** RLWE ciphertext [[m]] = (c0, c1); Dec(ct) = c0 + c1 * s. */
struct CkksCiphertext
{
    RnsPoly c0;
    RnsPoly c1;
    size_t level = 0;
    double scale = 1.0;

    size_t numLimbs() const { return c0.numLimbs(); }
};

/** Encrypts plaintexts under a public key, decrypts with the secret. */
class CkksEncryptor
{
  public:
    CkksEncryptor(std::shared_ptr<const CkksContext> ctx,
                  CkksPublicKey pk, u64 seed);

    /** Public-key encryption. */
    CkksCiphertext encrypt(const CkksPlaintext &pt);

    /** Decrypt with the secret key (testing / the data owner's side). */
    CkksPlaintext decrypt(const CkksCiphertext &ct,
                          const CkksSecretKey &sk) const;

  private:
    std::shared_ptr<const CkksContext> ctx_;
    CkksPublicKey pk_;
    Rng rng_;
};

} // namespace trinity

#endif // TRINITY_CKKS_ENCRYPTOR_H
