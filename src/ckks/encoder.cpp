#include "ckks/encoder.h"

#include <cmath>

#include "common/logging.h"

namespace trinity {

CkksEncoder::CkksEncoder(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx)), fft_(ctx_->params().slots())
{
}

CkksPlaintext
CkksEncoder::encode(const std::vector<cd> &values, size_t level,
                    double scale) const
{
    size_t n = ctx_->n();
    size_t n_slots = slots();
    trinity_assert(values.size() <= n_slots,
                   "too many values (%zu) for %zu slots", values.size(),
                   n_slots);
    if (scale == 0) {
        scale = ctx_->defaultScale();
    }
    std::vector<cd> v(n_slots, cd(0, 0));
    std::copy(values.begin(), values.end(), v.begin());
    fft_.inverse(v);
    std::vector<i64> coeffs(n);
    for (size_t j = 0; j < n_slots; ++j) {
        double re = v[j].real() * scale;
        double im = v[j].imag() * scale;
        trinity_assert(std::abs(re) < 9.0e18 && std::abs(im) < 9.0e18,
                       "encoded coefficient overflows 63 bits");
        coeffs[j] = static_cast<i64>(std::llround(re));
        coeffs[j + n_slots] = static_cast<i64>(std::llround(im));
    }
    CkksPlaintext pt;
    pt.poly = RnsPoly::fromSigned(coeffs, n, ctx_->qTo(level));
    pt.level = level;
    pt.scale = scale;
    return pt;
}

CkksPlaintext
CkksEncoder::encodeReal(const std::vector<double> &values, size_t level,
                        double scale) const
{
    std::vector<cd> v(values.size());
    for (size_t i = 0; i < values.size(); ++i) {
        v[i] = cd(values[i], 0);
    }
    return encode(v, level, scale);
}

std::vector<cd>
CkksEncoder::decode(const CkksPlaintext &pt) const
{
    size_t n = ctx_->n();
    size_t n_slots = slots();
    const RnsPoly &poly = pt.poly;
    trinity_assert(poly.domain() == Domain::Coeff,
                   "decode expects coefficient domain");
    size_t limbs = std::min<size_t>(2, poly.numLimbs());
    // CRT-reconstruct each coefficient from up to two limbs (covers
    // scales up to ~q0*q1/4, i.e. Delta^2 products before rescale).
    std::vector<double> centered(n);
    if (limbs == 1) {
        ConstLimbView l0 = poly.limb(0);
        u64 q0 = l0.q();
        for (size_t i = 0; i < n; ++i) {
            centered[i] =
                static_cast<double>(centeredRep(l0[i], q0));
        }
    } else {
        ConstLimbView l0 = poly.limb(0);
        ConstLimbView l1 = poly.limb(1);
        u64 q0 = l0.q();
        u64 q1 = l1.q();
        Modulus m1(q1);
        u64 q0_inv = m1.inv(q0 % q1);
        i128 big_q = static_cast<i128>(q0) * q1;
        for (size_t i = 0; i < n; ++i) {
            u64 r0 = l0[i];
            u64 r1 = l1[i];
            // Garner: x = r0 + q0 * t, t = (r1 - r0)*q0^{-1} mod q1.
            u64 t = m1.mul(m1.sub(r1, m1.reduce(r0)), q0_inv);
            i128 x = static_cast<i128>(r0) + static_cast<i128>(q0) * t;
            if (x > big_q / 2) {
                x -= big_q;
            }
            centered[i] = static_cast<double>(x);
        }
    }
    std::vector<cd> v(n_slots);
    for (size_t j = 0; j < n_slots; ++j) {
        v[j] = cd(centered[j] / pt.scale,
                  centered[j + n_slots] / pt.scale);
    }
    fft_.forward(v);
    return v;
}

} // namespace trinity
