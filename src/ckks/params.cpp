#include "ckks/params.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/primes.h"

namespace trinity {

CkksParams
CkksParams::paperDefault()
{
    CkksParams p;
    p.n = 1 << 16;
    p.maxLevel = 35;
    p.dnum = 3;
    p.scaleBits = 36;
    p.firstModBits = 45;
    p.specialModBits = 45;
    return p;
}

CkksParams
CkksParams::testSmall()
{
    CkksParams p;
    p.n = 1 << 10;
    p.maxLevel = 3;
    p.dnum = 2;
    p.scaleBits = 36;
    p.firstModBits = 45;
    p.specialModBits = 45;
    return p;
}

CkksParams
CkksParams::testMedium()
{
    CkksParams p;
    p.n = 1 << 12;
    p.maxLevel = 5;
    p.dnum = 3;
    p.scaleBits = 36;
    p.firstModBits = 45;
    p.specialModBits = 45;
    return p;
}

CkksContext::CkksContext(const CkksParams &params)
    : params_(params)
{
    trinity_assert(isPowerOfTwo(params.n), "N must be a power of two");
    trinity_assert(params.dnum >= 1 && params.dnum <= params.maxLevel + 1,
                   "invalid dnum");
    u64 two_n = 2 * params.n;

    // q_0: wide prime for decryption headroom; q_1..q_L: scale primes;
    // p_0..p_{alpha-1}: special primes (distinct from all q's).
    q_ = findNttPrimes(params.firstModBits, two_n, 1);
    auto scale_primes =
        findNttPrimes(params.scaleBits, two_n, params.maxLevel, q_);
    q_.insert(q_.end(), scale_primes.begin(), scale_primes.end());
    p_ = findNttPrimes(params.specialModBits, two_n, params.alpha(), q_);

    // P mod q_i and P^{-1} mod q_i for the ModDown rescale by P.
    pModQ_.resize(q_.size());
    pInvModQ_.resize(q_.size());
    for (size_t i = 0; i < q_.size(); ++i) {
        Modulus qi(q_[i]);
        u64 pm = 1;
        for (u64 pj : p_) {
            pm = qi.mul(pm, qi.reduce(pj));
        }
        pModQ_[i] = pm;
        pInvModQ_[i] = qi.inv(pm);
    }
}

std::vector<u64>
CkksContext::qTo(size_t level) const
{
    trinity_assert(level <= params_.maxLevel, "level out of range");
    return std::vector<u64>(q_.begin(), q_.begin() + level + 1);
}

std::vector<u64>
CkksContext::extendedBasis(size_t level) const
{
    auto basis = qTo(level);
    basis.insert(basis.end(), p_.begin(), p_.end());
    return basis;
}

std::pair<size_t, size_t>
CkksContext::digitRange(size_t level, size_t digit) const
{
    size_t a = params_.alpha();
    size_t begin = digit * a;
    size_t end = std::min(begin + a, level + 1);
    trinity_assert(begin < end, "digit %zu empty at level %zu", digit,
                   level);
    return {begin, end};
}

const BaseConverter &
CkksContext::modUpConverter(size_t level, size_t digit) const
{
    auto key = std::make_pair(level, digit);
    auto it = modUpCache_.find(key);
    if (it != modUpCache_.end()) {
        return *it->second;
    }
    auto [begin, end] = digitRange(level, digit);
    std::vector<u64> from(q_.begin() + begin, q_.begin() + end);
    std::vector<u64> to;
    for (size_t i = 0; i <= level; ++i) {
        if (i < begin || i >= end) {
            to.push_back(q_[i]);
        }
    }
    to.insert(to.end(), p_.begin(), p_.end());
    auto conv = std::make_unique<BaseConverter>(from, to);
    const BaseConverter &ref = *conv;
    modUpCache_.emplace(key, std::move(conv));
    return ref;
}

const BaseConverter &
CkksContext::modDownConverter(size_t level) const
{
    auto it = modDownCache_.find(level);
    if (it != modDownCache_.end()) {
        return *it->second;
    }
    auto conv = std::make_unique<BaseConverter>(p_, qTo(level));
    const BaseConverter &ref = *conv;
    modDownCache_.emplace(level, std::move(conv));
    return ref;
}

} // namespace trinity
