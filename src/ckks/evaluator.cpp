#include "ckks/evaluator.h"

#include <cmath>
#include <cstring>

#include "backend/command_stream.h"
#include "backend/observer.h"
#include "backend/registry.h"
#include "backend/scratch_arena.h"
#include "common/logging.h"

namespace trinity {

CkksEvaluator::CkksEvaluator(std::shared_ptr<const CkksContext> ctx)
    : ctx_(std::move(ctx))
{
}

void
CkksEvaluator::checkAligned(const CkksCiphertext &a,
                            const CkksCiphertext &b) const
{
    trinity_assert(a.level == b.level,
                   "ciphertext levels differ (%zu vs %zu)", a.level,
                   b.level);
    double ratio = a.scale / b.scale;
    trinity_assert(ratio > 0.999 && ratio < 1.001,
                   "ciphertext scales differ (%g vs %g)", a.scale,
                   b.scale);
}

CkksCiphertext
CkksEvaluator::add(const CkksCiphertext &a, const CkksCiphertext &b) const
{
    OpScope scope("HAdd");
    checkAligned(a, b);
    CkksCiphertext r = a;
    r.c0.addInPlace(b.c0);
    r.c1.addInPlace(b.c1);
    return r;
}

CkksCiphertext
CkksEvaluator::sub(const CkksCiphertext &a, const CkksCiphertext &b) const
{
    // Same kernel class and volume as add; attributed together.
    OpScope scope("HAdd");
    checkAligned(a, b);
    CkksCiphertext r = a;
    r.c0.subInPlace(b.c0);
    r.c1.subInPlace(b.c1);
    return r;
}

CkksCiphertext
CkksEvaluator::negate(const CkksCiphertext &a) const
{
    CkksCiphertext r = a;
    r.c0.negInPlace();
    r.c1.negInPlace();
    return r;
}

CkksCiphertext
CkksEvaluator::addPlain(const CkksCiphertext &a,
                        const CkksPlaintext &pt) const
{
    OpScope scope("PAdd");
    trinity_assert(a.level == pt.level, "plaintext level mismatch");
    CkksCiphertext r = a;
    r.c0.toCoeff();
    RnsPoly p = pt.poly;
    p.toCoeff();
    r.c0.addInPlace(p);
    return r;
}

CkksCiphertext
CkksEvaluator::mulPlain(const CkksCiphertext &a,
                        const CkksPlaintext &pt) const
{
    OpScope scope("PMult");
    trinity_assert(a.level == pt.level, "plaintext level mismatch");
    CkksCiphertext r = a;
    RnsPoly p = pt.poly;
    p.toEval();
    r.c0.toEval();
    r.c1.toEval();
    r.c0.mulPointwiseInPlace(p);
    r.c1.mulPointwiseInPlace(p);
    r.c0.toCoeff();
    r.c1.toCoeff();
    r.scale = a.scale * pt.scale;
    return r;
}

std::pair<RnsPoly, RnsPoly>
CkksEvaluator::keySwitch(const RnsPoly &d, const CkksEvalKey &evk,
                         size_t level) const
{
    OpScope scope("KeySwitch");
    size_t n = ctx_->n();
    const auto &params = ctx_->params();
    size_t alpha = params.alpha();
    size_t beta = params.beta(level);
    size_t nq = level + 1;
    auto ext_basis = ctx_->extendedBasis(level);
    size_t next = ext_basis.size(); // nq + alpha
    size_t big_l = params.maxLevel;

    trinity_assert(d.numLimbs() == nq, "keyswitch level mismatch");
    trinity_assert(evk.digits.size() >= beta, "evk has too few digits");

    RnsPoly d_coeff = d;
    d_coeff.toCoeff();

    // Accumulators over the extended basis, evaluation domain (fresh
    // zeros are valid in either domain, so just tag them).
    RnsPoly acc0(n, ext_basis);
    RnsPoly acc1(n, ext_basis);
    acc0.setDomain(Domain::Eval);
    acc1.setDomain(Domain::Eval);

    // The beta digit pipelines are recorded as one command stream:
    // each digit's copy/BConv -> fused NTT+MAC chain only depends on
    // the previous digit through the shared accumulators, so a
    // pipelined engine runs digit j+1's BConv under digit j's MACs
    // instead of synchronizing per batch. The digit slabs come from
    // the thread's ScratchArena (zero heap allocation after the first
    // call at a given shape) and live in `fulls` until wait() returns
    // on deferred engines; engines that execute at record time consume
    // each digit before the next records, so one slab serves them all.
    auto stream = activeBackend().newStream();
    size_t nbuf = stream->deferredExecution() ? beta : 1;
    std::vector<ScratchBuffer> fulls;
    fulls.reserve(nbuf);
    // One read-modify-write chain PER accumulator limb: limb t of
    // digit j+1 waits only on limb t of digit j, not on the whole
    // digit's inner product.
    std::vector<Job> prev(next);
    for (size_t j = 0; j < beta; ++j) {
        auto [begin, end] = ctx_->digitRange(level, j);
        // Assemble the extended-basis polynomial in one flat limb-major
        // slab: digit limbs are copied straight in (line 1 of
        // Algorithm 1), the rest is produced by BConv (line 4) writing
        // directly into the target rows — conv outputs are ordered
        // (q limbs excluding digit, then special primes).
        if (fulls.size() < nbuf) {
            fulls.push_back(ScratchArena::local().acquire(next * n));
        }
        u64 *full = fulls[j < nbuf ? j : 0].data();
        Job copy = stream->task(
            end - begin,
            [full, &d_coeff, begin, n](size_t i) {
                std::memcpy(full + (begin + i) * n,
                            d_coeff.limbData(begin + i),
                            n * sizeof(u64));
            });
        std::vector<const u64 *> ins;
        ins.reserve(end - begin);
        for (size_t i = begin; i < end; ++i) {
            ins.push_back(d_coeff.limbData(i));
        }
        std::vector<u64 *> outs;
        outs.reserve(next - (end - begin));
        for (size_t i = 0; i < nq; ++i) {
            if (i < begin || i >= end) {
                outs.push_back(full + i * n);
            }
        }
        for (size_t t = 0; t < alpha; ++t) {
            outs.push_back(full + (nq + t) * n);
        }
        std::vector<Job> conv = stream->baseConvertPhased(
            ctx_->modUpConverter(level, j).plan(), std::move(ins),
            std::move(outs), n);
        // Fused per-limb NTT + inner product (lines 5 and 9 in one
        // command): each limb transforms the moment its producer (the
        // copy, or the pass-2 command that converts it) finishes, and
        // the freshly transformed limb feeds both evk components while
        // it is hot in cache. Eager engines coalesce the per-limb
        // commands of a digit back into one wide batch.
        size_t m = 0; // conv outputs are ordered like the t loop
        for (size_t t = 0; t < next; ++t) {
            bool is_digit = t >= begin && t < end;
            Job producer = is_digit ? copy : conv[m];
            if (!is_digit) {
                ++m;
            }
            // evk limbs are ordered q_0..q_L, p_0..p_{alpha-1}.
            size_t evk_limb = t < nq ? t : (big_l + 1) + (t - nq);
            prev[t] = stream->nttForwardMulAdd(
                {{full + t * n, &acc0.nttTableAt(t),
                  evk.digits[j].b.limbData(evk_limb), acc0.limbData(t),
                  evk.digits[j].a.limbData(evk_limb),
                  acc1.limbData(t)}},
                {producer, prev[t]});
        }
    }
    stream->submit();
    stream->wait();

    // iNTT (line 11) and ModDown (line 12): subtract the base-converted
    // special part and multiply by P^{-1}.
    acc0.toCoeff();
    acc1.toCoeff();
    const BaseConverter &down = ctx_->modDownConverter(level);
    std::vector<u64> p_inv(nq);
    for (size_t i = 0; i < nq; ++i) {
        p_inv[i] = ctx_->pInvModQ(i);
    }
    auto mod_down = [&](RnsPoly &acc) {
        std::vector<const u64 *> p_part(alpha);
        for (size_t t = 0; t < alpha; ++t) {
            p_part[t] = acc.limbData(nq + t);
        }
        RnsPoly conv(n, ctx_->qTo(level));
        std::vector<u64 *> conv_out(nq);
        for (size_t i = 0; i < nq; ++i) {
            conv_out[i] = conv.limbData(i);
        }
        down.convertPointers(p_part.data(), conv_out.data(), n);
        RnsPoly out = acc.prefix(nq);
        out.subInPlace(conv);
        out.scalarMulLimbwise(p_inv);
        return out;
    };
    return {mod_down(acc0), mod_down(acc1)};
}

CkksCiphertext
CkksEvaluator::multiply(const CkksCiphertext &a, const CkksCiphertext &b,
                        const CkksEvalKey &relin_key) const
{
    OpScope scope("HMult");
    checkAligned(a, b);
    // Tensor product (all in the evaluation domain).
    RnsPoly a0 = a.c0, a1 = a.c1, b0 = b.c0, b1 = b.c1;
    a0.toEval();
    a1.toEval();
    b0.toEval();
    b1.toEval();

    RnsPoly d0 = a0;
    d0.mulPointwiseInPlace(b0);
    RnsPoly d1 = a0;
    d1.mulPointwiseInPlace(b1);
    RnsPoly d1b = a1;
    d1b.mulPointwiseInPlace(b0);
    d1.addInPlace(d1b);
    RnsPoly d2 = a1;
    d2.mulPointwiseInPlace(b1);

    // Relinearize d2 via keyswitch with target secret s^2.
    d2.toCoeff();
    auto [e0, e1] = keySwitch(d2, relin_key, a.level);

    CkksCiphertext r;
    r.level = a.level;
    r.scale = a.scale * b.scale;
    d0.toCoeff();
    d1.toCoeff();
    d0.addInPlace(e0);
    d1.addInPlace(e1);
    r.c0 = std::move(d0);
    r.c1 = std::move(d1);
    return r;
}

CkksCiphertext
CkksEvaluator::square(const CkksCiphertext &a,
                      const CkksEvalKey &relin_key) const
{
    OpScope scope("HSquare");
    // d0 = c0^2, d1 = 2 c0 c1, d2 = c1^2, then relinearize d2.
    RnsPoly a0 = a.c0, a1 = a.c1;
    a0.toEval();
    a1.toEval();
    RnsPoly d0 = a0;
    d0.mulPointwiseInPlace(a0);
    RnsPoly d1 = a0;
    d1.mulPointwiseInPlace(a1);
    RnsPoly d1b = d1;
    d1.addInPlace(d1b);
    RnsPoly d2 = a1;
    d2.mulPointwiseInPlace(a1);
    d2.toCoeff();
    auto [e0, e1] = keySwitch(d2, relin_key, a.level);
    CkksCiphertext r;
    r.level = a.level;
    r.scale = a.scale * a.scale;
    d0.toCoeff();
    d1.toCoeff();
    d0.addInPlace(e0);
    d1.addInPlace(e1);
    r.c0 = std::move(d0);
    r.c1 = std::move(d1);
    return r;
}

CkksCiphertext
CkksEvaluator::addScalar(const CkksCiphertext &a, double v) const
{
    // Adding v to every slot adds round(v * scale) to coefficient 0
    // of the plaintext polynomial (the canonical embedding maps
    // constants to constants).
    CkksCiphertext r = a;
    r.c0.toCoeff();
    i64 raw = static_cast<i64>(std::llround(v * a.scale));
    for (size_t j = 0; j < r.c0.numLimbs(); ++j) {
        LimbView limb = r.c0.limb(j);
        limb[0] = limb.modulus().add(limb[0],
                                     toResidue(raw, limb.q()));
    }
    return r;
}

CkksCiphertext
CkksEvaluator::mulScalarInt(const CkksCiphertext &a, i64 v) const
{
    CkksCiphertext r = a;
    for (RnsPoly *comp : {&r.c0, &r.c1}) {
        std::vector<u64> scalars(comp->numLimbs());
        for (size_t j = 0; j < comp->numLimbs(); ++j) {
            scalars[j] = toResidue(v, comp->modulusAt(j).value());
        }
        comp->scalarMulLimbwise(scalars);
    }
    return r;
}

CkksCiphertext
CkksEvaluator::conjugate(const CkksCiphertext &ct,
                         const CkksEvalKey &conj_key) const
{
    return applyGalois(ct, 2 * ctx_->n() - 1, conj_key);
}

void
CkksEvaluator::rescaleInPlace(CkksCiphertext &ct) const
{
    OpScope scope("Rescale");
    trinity_assert(ct.level >= 1, "cannot rescale at level 0");
    size_t l = ct.level;
    u64 ql = ctx_->qChain()[l];
    ct.c0.toCoeff();
    ct.c1.toCoeff();
    for (RnsPoly *comp : {&ct.c0, &ct.c1}) {
        const u64 *last = comp->limbData(l);
        size_t n = comp->n();
        // The fused divide runs through the untyped escape hatch, so
        // announce its kernels (one subtract + one scalar multiply
        // per coefficient of the l surviving limbs) to the profiler.
        emitKernel(sim::KernelType::ModAdd, l * n, n);
        emitKernel(sim::KernelType::ModMul, l * n, n);
        activeBackend().run(l, [&](size_t i) {
            const Modulus &qi = comp->modulusAt(i);
            u64 ql_inv = qi.inv(qi.reduce(ql));
            u64 *limb = comp->limbData(i);
            for (size_t c = 0; c < n; ++c) {
                u64 v = qi.sub(limb[c], qi.reduce(last[c]));
                limb[c] = qi.mul(v, ql_inv);
            }
        });
        comp->dropLastLimb();
    }
    ct.level -= 1;
    ct.scale /= static_cast<double>(ql);
}

CkksCiphertext
CkksEvaluator::applyGalois(const CkksCiphertext &ct, u64 g,
                           const CkksEvalKey &galois_key) const
{
    OpScope scope("HRotate");
    CkksCiphertext in = ct;
    in.c0.toCoeff();
    in.c1.toCoeff();
    RnsPoly sc0 = in.c0.automorphism(g);
    RnsPoly sc1 = in.c1.automorphism(g);
    auto [e0, e1] = keySwitch(sc1, galois_key, ct.level);
    CkksCiphertext r;
    r.level = ct.level;
    r.scale = ct.scale;
    sc0.addInPlace(e0);
    r.c0 = std::move(sc0);
    r.c1 = std::move(e1);
    return r;
}

CkksCiphertext
CkksEvaluator::rotate(const CkksCiphertext &ct, i64 steps,
                      const CkksEvalKey &rot_key) const
{
    size_t two_n = 2 * ctx_->n();
    size_t order = ctx_->n() / 2;
    u64 r = static_cast<u64>(((steps % static_cast<i64>(order)) +
                              static_cast<i64>(order)) %
                             static_cast<i64>(order));
    u64 g = 1;
    for (u64 i = 0; i < r; ++i) {
        g = (g * 5) % two_n;
    }
    return applyGalois(ct, g, rot_key);
}

CkksCiphertext
CkksEvaluator::rotatePoly(const CkksCiphertext &ct, u64 t) const
{
    OpScope scope("Rotate");
    CkksCiphertext r = ct;
    r.c0.toCoeff();
    r.c1.toCoeff();
    r.c0 = r.c0.mulMonomial(t);
    r.c1 = r.c1.mulMonomial(t);
    return r;
}

void
CkksEvaluator::dropToLevel(CkksCiphertext &ct, size_t level) const
{
    trinity_assert(level <= ct.level, "cannot raise level");
    ct.c0.toCoeff();
    ct.c1.toCoeff();
    while (ct.level > level) {
        ct.c0.dropLastLimb();
        ct.c1.dropLastLimb();
        ct.level -= 1;
    }
}

} // namespace trinity
