#include "ckks/encryptor.h"

#include "common/logging.h"

namespace trinity {

CkksEncryptor::CkksEncryptor(std::shared_ptr<const CkksContext> ctx,
                             CkksPublicKey pk, u64 seed)
    : ctx_(std::move(ctx)), pk_(std::move(pk)), rng_(seed)
{
}

CkksCiphertext
CkksEncryptor::encrypt(const CkksPlaintext &pt)
{
    size_t n = ctx_->n();
    size_t level = pt.level;
    auto moduli = ctx_->qTo(level);

    // v: ternary; e0, e1: gaussian — all sampled as integers so the
    // RNS limbs stay consistent.
    std::vector<i64> v(n), e0(n), e1(n);
    for (size_t i = 0; i < n; ++i) {
        v[i] = rng_.ternary();
        e0[i] = rng_.gaussian(ctx_->params().sigma);
        e1[i] = rng_.gaussian(ctx_->params().sigma);
    }
    RnsPoly vp = RnsPoly::fromSigned(v, n, moduli);
    vp.toEval();

    // Slice the public key down to the ciphertext level.
    CkksCiphertext ct;
    ct.level = level;
    ct.scale = pt.scale;
    ct.c0 = pk_.b.prefix(level + 1);
    ct.c1 = pk_.a.prefix(level + 1);
    ct.c0.mulPointwiseInPlace(vp);
    ct.c1.mulPointwiseInPlace(vp);
    ct.c0.toCoeff();
    ct.c1.toCoeff();

    RnsPoly e0p = RnsPoly::fromSigned(e0, n, moduli);
    RnsPoly e1p = RnsPoly::fromSigned(e1, n, moduli);
    ct.c0.addInPlace(e0p);
    ct.c1.addInPlace(e1p);
    ct.c0.addInPlace(pt.poly);
    return ct;
}

CkksPlaintext
CkksEncryptor::decrypt(const CkksCiphertext &ct,
                       const CkksSecretKey &sk) const
{
    auto moduli = ct.c0.moduli();
    RnsPoly s = sk.embed(moduli);
    s.toEval();
    RnsPoly c1 = ct.c1;
    c1.toEval();
    c1.mulPointwiseInPlace(s);
    c1.toCoeff();
    CkksPlaintext pt;
    pt.poly = ct.c0;
    pt.poly.toCoeff();
    pt.poly.addInPlace(c1);
    pt.level = ct.level;
    pt.scale = ct.scale;
    return pt;
}

} // namespace trinity
