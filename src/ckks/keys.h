/**
 * @file
 * CKKS key material: secret, public, and the hybrid-keyswitch
 * evaluation keys (Algorithm 1's evk).
 *
 * An evaluation key for target secret s' is a set of dnum digit pairs
 * evk_j = (b_j, a_j) over the extended basis Q_L * P with
 *   b_j = -(a_j s + e_j) + P * Dtilde_j * s'
 * where Dtilde_j is 1 on the digit-j limbs and 0 elsewhere (the CRT
 * reconstruction factor reduced per limb).
 */

#ifndef TRINITY_CKKS_KEYS_H
#define TRINITY_CKKS_KEYS_H

#include <vector>

#include "ckks/params.h"
#include "common/rng.h"

namespace trinity {

/** Secret key: ternary s, kept in signed form for automorphisms. */
struct CkksSecretKey
{
    std::vector<i64> s;

    /** Embed s (or an automorphism of it) over the given moduli. */
    RnsPoly embed(const std::vector<u64> &moduli) const;

    /** sigma_g(s): the secret key under automorphism X -> X^g. */
    CkksSecretKey automorphism(u64 g) const;
};

/** Public encryption key (b, a) over the full Q chain. */
struct CkksPublicKey
{
    RnsPoly b; ///< -(a s) + e, eval domain
    RnsPoly a; ///< uniform, eval domain
};

/** One hybrid-keyswitch digit pair over the extended basis. */
struct EvalKeyDigit
{
    RnsPoly b; ///< eval domain, limbs over [q_0..q_L, p_0..p_alpha-1]
    RnsPoly a;
};

/** Evaluation key: dnum digit pairs (relinearization or Galois). */
struct CkksEvalKey
{
    std::vector<EvalKeyDigit> digits;
};

/** Generates all key material for a context. */
class CkksKeyGenerator
{
  public:
    CkksKeyGenerator(std::shared_ptr<const CkksContext> ctx, u64 seed);

    const CkksSecretKey &secretKey() const { return sk_; }

    /** Public encryption key. */
    CkksPublicKey makePublicKey();

    /** Relinearization key (target secret s^2). */
    CkksEvalKey makeRelinKey();

    /**
     * Galois key for automorphism index @p g (target secret
     * sigma_g(s)). Slot rotation by r uses g = 5^r mod 2N.
     */
    CkksEvalKey makeGaloisKey(u64 g);

    /** Galois key for slot rotation by @p steps. */
    CkksEvalKey makeRotationKey(i64 steps);

    /** Automorphism index for a slot rotation: 5^steps mod 2N. */
    u64 rotationToGalois(i64 steps) const;

  private:
    std::shared_ptr<const CkksContext> ctx_;
    Rng rng_;
    CkksSecretKey sk_;

    /** Core evk generator for an arbitrary signed target secret. */
    CkksEvalKey makeEvalKey(const std::vector<i64> &target);
};

} // namespace trinity

#endif // TRINITY_CKKS_KEYS_H
