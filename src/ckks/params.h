/**
 * @file
 * RNS-CKKS parameter sets and the shared context (modulus chains,
 * cached base converters, hybrid-keyswitch constants).
 *
 * The paper's default CKKS configuration (Table IV) is N = 65536,
 * L = 35, dnum = 3 at 128-bit security with a 36-bit word; tests use
 * the same construction scaled down.
 */

#ifndef TRINITY_CKKS_PARAMS_H
#define TRINITY_CKKS_PARAMS_H

#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "poly/rns.h"

namespace trinity {

/** Static CKKS scheme parameters. */
struct CkksParams
{
    size_t n = 0;          ///< ring degree N
    size_t maxLevel = 0;   ///< L; modulus chain has L+1 primes
    size_t dnum = 1;       ///< hybrid keyswitch digit count
    u32 scaleBits = 36;    ///< log2 of the default scale Delta
    u32 firstModBits = 45; ///< size of q_0 (decryption headroom)
    u32 specialModBits = 45; ///< size of the special primes p_i
    double sigma = 3.2;    ///< noise standard deviation

    /** Limbs per digit: alpha = ceil((L+1)/dnum). */
    size_t alpha() const { return (maxLevel + 1 + dnum - 1) / dnum; }

    /** Digits active at level l: beta = ceil((l+1)/alpha). */
    size_t
    beta(size_t level) const
    {
        return (level + 1 + alpha() - 1) / alpha();
    }

    /** Number of slots n_slots = N/2. */
    size_t slots() const { return n / 2; }

    /** The paper's default parameter set (Table IV). */
    static CkksParams paperDefault();

    /** A small, fast set for unit tests. */
    static CkksParams testSmall();

    /** A mid-size set for integration tests. */
    static CkksParams testMedium();
};

/**
 * Shared immutable CKKS context: the generated modulus chains plus all
 * precomputation the evaluator needs. Create once, share everywhere.
 */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams &params);

    const CkksParams &params() const { return params_; }
    size_t n() const { return params_.n; }

    /** Ciphertext modulus chain q_0 .. q_L. */
    const std::vector<u64> &qChain() const { return q_; }
    /** Special primes p_0 .. p_{alpha-1}. */
    const std::vector<u64> &pChain() const { return p_; }

    /** Moduli q_0..q_l. */
    std::vector<u64> qTo(size_t level) const;
    /** Extended basis q_0..q_l followed by all special primes. */
    std::vector<u64> extendedBasis(size_t level) const;

    /** P mod q_i. */
    u64 pModQ(size_t i) const { return pModQ_[i]; }
    /** P^{-1} mod q_i. */
    u64 pInvModQ(size_t i) const { return pInvModQ_[i]; }

    /**
     * ModUp converter for digit @p digit at level @p level: from the
     * digit's limb moduli to the rest of the extended basis.
     */
    const BaseConverter &modUpConverter(size_t level, size_t digit) const;

    /** ModDown converter: special primes -> q_0..q_l. */
    const BaseConverter &modDownConverter(size_t level) const;

    /** Limb indices [begin, end) of digit @p digit at level @p level. */
    std::pair<size_t, size_t> digitRange(size_t level,
                                         size_t digit) const;

    double defaultScale() const
    {
        return std::pow(2.0, params_.scaleBits);
    }

  private:
    CkksParams params_;
    std::vector<u64> q_;
    std::vector<u64> p_;
    std::vector<u64> pModQ_;
    std::vector<u64> pInvModQ_;
    mutable std::map<std::pair<size_t, size_t>,
                     std::unique_ptr<BaseConverter>> modUpCache_;
    mutable std::map<size_t, std::unique_ptr<BaseConverter>>
        modDownCache_;
};

} // namespace trinity

#endif // TRINITY_CKKS_PARAMS_H
