/**
 * @file
 * CKKS homomorphic evaluator — the operations of Table II (HAdd, PAdd,
 * HMult, PMult, HRotate, Rescale) built from the kernels of Table I
 * (NTT, BConv, IP, ModMul, ModAdd, Auto), with Algorithm 1's hybrid
 * keyswitch at the center.
 */

#ifndef TRINITY_CKKS_EVALUATOR_H
#define TRINITY_CKKS_EVALUATOR_H

#include "ckks/encryptor.h"
#include "ckks/keys.h"

namespace trinity {

/** Homomorphic operation engine for CKKS ciphertexts. */
class CkksEvaluator
{
  public:
    explicit CkksEvaluator(std::shared_ptr<const CkksContext> ctx);

    /** HAdd: ciphertext + ciphertext (same level; scales must match). */
    CkksCiphertext add(const CkksCiphertext &a,
                       const CkksCiphertext &b) const;

    /** Ciphertext - ciphertext. */
    CkksCiphertext sub(const CkksCiphertext &a,
                       const CkksCiphertext &b) const;

    /** Negation. */
    CkksCiphertext negate(const CkksCiphertext &a) const;

    /** PAdd: ciphertext + plaintext. */
    CkksCiphertext addPlain(const CkksCiphertext &a,
                            const CkksPlaintext &pt) const;

    /** PMult: ciphertext * plaintext (scale multiplies). */
    CkksCiphertext mulPlain(const CkksCiphertext &a,
                            const CkksPlaintext &pt) const;

    /**
     * HMult: ciphertext * ciphertext with relinearization through the
     * hybrid keyswitch. Resulting scale is the product; call
     * rescaleInPlace afterwards.
     */
    CkksCiphertext multiply(const CkksCiphertext &a,
                            const CkksCiphertext &b,
                            const CkksEvalKey &relin_key) const;

    /** Homomorphic squaring (saves one tensor multiply vs multiply). */
    CkksCiphertext square(const CkksCiphertext &a,
                          const CkksEvalKey &relin_key) const;

    /** Add a real scalar to every slot. */
    CkksCiphertext addScalar(const CkksCiphertext &a, double v) const;

    /** Multiply every slot by an integer scalar (scale unchanged). */
    CkksCiphertext mulScalarInt(const CkksCiphertext &a, i64 v) const;

    /** Complex conjugation of all slots (Galois index 2N - 1). */
    CkksCiphertext conjugate(const CkksCiphertext &ct,
                             const CkksEvalKey &conj_key) const;

    /** Rescale: divide by q_l, dropping one level. */
    void rescaleInPlace(CkksCiphertext &ct) const;

    /**
     * HRotate: rotate slot vector left by @p steps using the matching
     * rotation key.
     */
    CkksCiphertext rotate(const CkksCiphertext &ct, i64 steps,
                          const CkksEvalKey &rot_key) const;

    /** Apply automorphism X -> X^g with its Galois key. */
    CkksCiphertext applyGalois(const CkksCiphertext &ct, u64 g,
                               const CkksEvalKey &galois_key) const;

    /**
     * The paper's plain Rotate (Table I): multiply both components by
     * X^t. No key material needed; used by scheme conversion.
     */
    CkksCiphertext rotatePoly(const CkksCiphertext &ct, u64 t) const;

    /** Drop limbs until the ciphertext sits at @p level. */
    void dropToLevel(CkksCiphertext &ct, size_t level) const;

    /**
     * Algorithm 1 (Hybrid KeySwitch): given d over q_0..q_l in the
     * coefficient domain, produce (ct0, ct1) with
     * ct0 + ct1*s ~ d*s' where s' is the evk's target secret.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly &d,
                                          const CkksEvalKey &evk,
                                          size_t level) const;

    const CkksContext &context() const { return *ctx_; }

  private:
    std::shared_ptr<const CkksContext> ctx_;

    void checkAligned(const CkksCiphertext &a,
                      const CkksCiphertext &b) const;
};

} // namespace trinity

#endif // TRINITY_CKKS_EVALUATOR_H
