/**
 * @file
 * PIR database forms and per-tenant residency.
 *
 * A database lives in two forms:
 *
 *  - PirDatabase: the at-rest form — records() plaintext records of N
 *    coefficients, each logP bits. This is what a tenant registers
 *    and what the response decodes back to.
 *  - ResidentPirDb: the serving working set the first-dimension fold
 *    streams — per record, the lb gadget-scaled NTT-domain copies
 *    NTT(g_l * pt), so the fold's MACs pair gadget digits of the
 *    selection ciphertexts directly against transform-domain rows
 *    (OnionPIR's preprocessed database). The blow-up vs the packed
 *    plaintext is lb * 64 / logP — resident bytes, not raw bytes, are
 *    what bounds how many tenant databases fit in serving memory.
 *
 * PirDbStore is the weight-accounted LRU over materialized tenant
 * databases (the KeyStore pattern): materialization happens exactly
 * once per residency even under concurrent acquires, acquire() pins
 * via shared_ptr so eviction never invalidates an in-flight fold, and
 * the budget comes from TRINITY_PIR_DB_BYTES.
 */

#ifndef TRINITY_PIR_DATABASE_H
#define TRINITY_PIR_DATABASE_H

#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "pir/params.h"
#include "tfhe/core.h"

namespace trinity {
namespace pir {

/** Tenant identity (shared with the serving runtime). */
using PirTenantId = u64;

/** At-rest database: packed plaintext records. */
class PirDatabase
{
  public:
    /** Zeroed database of params.records() records. */
    explicit PirDatabase(const PirParams &params);

    /** Uniform random records (bench/test data). */
    static PirDatabase random(const PirParams &params, u64 seed);

    const PirParams &params() const { return params_; }
    size_t records() const { return params_.records(); }

    /** Coefficient @p i of record @p rec, in [0, 2^logP). */
    u64 coeff(size_t rec, size_t i) const
    {
        return store_[rec * params_.tfhe.bigN + i];
    }
    void setCoeff(size_t rec, size_t i, u64 v);

    /** All N coefficients of one record. */
    std::vector<u64> record(size_t rec) const;

    /** Logical packed size (records * N * logP / 8). */
    size_t rawBytes() const { return params_.rawBytes(); }

  private:
    PirParams params_;
    std::vector<u8> store_; ///< one byte per coefficient (logP <= 8)
};

/** Serving form: gadget-scaled NTT rows, ready for the fold's MACs. */
struct ResidentPirDb
{
    /** polys[rec * lb + l] = NTT(g_l * pt_rec); record rec on the
     *  grid is column (rec / dim1), first-dimension row (rec % dim1). */
    std::vector<Poly> polys;
    size_t bytes = 0;

    const Poly &
    poly(size_t rec, u32 l) const
    {
        return polys[rec * lb + l];
    }
    u32 lb = 0;
};

/**
 * Build the serving form: one forward NTT per record plus lb scalar
 * multiplies in the transform domain (the NTT is linear, so scaling
 * after the transform saves (lb-1) NTTs per record), all issued as
 * wide backend batches.
 */
ResidentPirDb materializePirDb(const TfheContext &ctx,
                               const PirDatabase &db);

/** Weight-accounted LRU cache of materialized tenant databases. */
class PirDbStore
{
  public:
    /** At-rest database lookup; the returned reference must stay
     *  valid until the store is destroyed. Called outside the store
     *  lock, possibly concurrently for distinct tenants. */
    using Provider = std::function<const PirDatabase &(PirTenantId)>;

    PirDbStore(const TfheContext &ctx, Provider provider, size_t budget,
               std::string label = "pir_dbstore");

    PirDbStore(const PirDbStore &) = delete;
    PirDbStore &operator=(const PirDbStore &) = delete;

    /** The tenant's resident database, faulting it in (and evicting
     *  LRU entries past the budget) on a miss. The returned pointer
     *  pins the database for as long as the caller holds it. */
    std::shared_ptr<const ResidentPirDb> acquire(PirTenantId tenant);

    bool resident(PirTenantId tenant) const;
    bool evict(PirTenantId tenant);

    size_t budgetBytes() const { return budget_; }
    size_t residentBytes() const;
    const std::string &label() const { return label_; }

    struct Stats
    {
        u64 hits = 0;
        u64 misses = 0;
        u64 evictions = 0;
        u64 materializations = 0;
        size_t residentBytes = 0;
    };
    Stats stats() const;

    /** TRINITY_PIR_DB_BYTES when set, else @p fallback. */
    static size_t budgetFromEnv(size_t fallback);

  private:
    struct Entry
    {
        std::shared_future<std::shared_ptr<const ResidentPirDb>> db;
        size_t bytes = 0; ///< 0 while materialization is in flight
        std::list<PirTenantId>::iterator lruIt;
    };

    std::shared_ptr<const ResidentPirDb> materialize(PirTenantId tenant);
    void evictToBudget(PirTenantId keep);
    void dropEntryLocked(std::map<PirTenantId, Entry>::iterator it);

    const TfheContext &ctx_;
    Provider provider_;
    size_t budget_; ///< 0 = unbounded
    std::string label_;

    mutable std::mutex mtx_;
    std::map<PirTenantId, Entry> entries_;
    std::list<PirTenantId> lru_; ///< front = most recently used
    size_t residentBytes_ = 0;
    Stats stats_;

    struct Metrics;
    Metrics &metrics_;
};

} // namespace pir
} // namespace trinity

#endif // TRINITY_PIR_DATABASE_H
