#include "pir/pir.h"

#include "backend/registry.h"
#include "common/env.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace trinity {
namespace pir {

namespace {

Poly &
glweComp(GlweCiphertext &ct, size_t c)
{
    return c < ct.a.size() ? ct.a[c] : ct.b;
}

const Poly &
glweComp(const GlweCiphertext &ct, size_t c)
{
    return c < ct.a.size() ? ct.a[c] : ct.b;
}

size_t
foldChunkFromEnv()
{
    u64 v = 0;
    if (envU64("TRINITY_PIR_FOLD_CHUNK", v)) {
        if (v == 0) {
            trinity_fatal("invalid TRINITY_PIR_FOLD_CHUNK value '0': "
                          "chunks need at least one row");
        }
        return static_cast<size_t>(v);
    }
    return 16;
}

} // namespace

// -------------------------------------------------------------- PirClient

PirClient::PirClient(const PirParams &params, u64 seed)
    : params_(params),
      ctx_(std::make_shared<TfheContext>(params.tfhe, seed))
{
    params_.validate();
    sk_ = ctx_->makeGlweKey();
}

PirQueryKeys
PirClient::makeQueryKeys()
{
    PirQueryKeys keys;
    u32 m = params_.expansionLevels();
    keys.galois.reserve(m);
    for (u32 j = 0; j < m; ++j) {
        keys.galois.push_back(makeGaloisKey(
            *ctx_, sk_, expansionGaloisElement(params_.tfhe.bigN, j)));
    }
    const Modulus &mod = ctx_->modulus();
    size_t n = params_.tfhe.bigN;
    keys.conv.reserve(params_.tfhe.k);
    for (size_t j = 0; j < params_.tfhe.k; ++j) {
        Poly neg_sj(n, params_.tfhe.q);
        for (size_t i = 0; i < n; ++i) {
            neg_sj[i] =
                mod.neg(toResidue(sk_.s[j][i], params_.tfhe.q));
        }
        GgswCiphertext z = ctx_->ggswEncryptPoly(neg_sj, sk_);
        ctx_->ggswToEval(z);
        keys.conv.push_back(std::move(z));
    }
    return keys;
}

PirQuery
PirClient::makeQuery(size_t index)
{
    trinity_assert(index < params_.records(),
                   "query index %zu out of range (records=%zu)", index,
                   params_.records());
    const Modulus &mod = ctx_->modulus();
    size_t row = index % params_.dim1;
    size_t col = index / params_.dim1;
    u32 m = params_.expansionLevels();
    // Expansion multiplies every slot by 2^m; the inverse (q prime)
    // pre-compensates so the expanded entries carry exact messages.
    u64 inv2m = mod.inv(mod.reduce(1ULL << m));
    Poly f(params_.tfhe.bigN, params_.tfhe.q);
    f[row] = mod.mul(inv2m, params_.delta());
    for (u32 t = 0; t < params_.gswDims; ++t) {
        if (((col >> t) & 1) == 0) {
            continue;
        }
        for (u32 l = 0; l < params_.tfhe.lb; ++l) {
            f[params_.dim1 + t * params_.tfhe.lb + l] =
                mod.mul(inv2m, ctx_->gadget(l));
        }
    }
    PirQuery q;
    q.ct = ctx_->glweEncrypt(f, sk_);
    return q;
}

std::vector<u64>
PirClient::decode(const PirResponse &resp) const
{
    size_t n = params_.tfhe.bigN;
    size_t k = params_.tfhe.k;
    trinity_assert(resp.logQs == params_.logQs &&
                       resp.comps.size() == k + 1,
                   "response shape mismatch");
    u64 qs_mask = (resp.logQs == 64) ? ~0ULL
                                     : (1ULL << resp.logQs) - 1;
    // phase = b' - sum_j a'_j * s_j in R_{2^logQs} (negacyclic
    // convolution against the binary key; u64 wraparound is exact mod
    // a power of two, so only the final mask is needed).
    std::vector<u64> phase = resp.comps[k];
    for (size_t j = 0; j < k; ++j) {
        const std::vector<u64> &aj = resp.comps[j];
        for (size_t v = 0; v < n; ++v) {
            if (sk_.s[j][v] == 0) {
                continue;
            }
            for (size_t u = 0; u < n; ++u) {
                size_t x = u + v;
                if (x < n) {
                    phase[x] -= aj[u];
                } else {
                    phase[x - n] += aj[u];
                }
            }
        }
    }
    u64 p = 1ULL << params_.logP;
    u64 half_qs = 1ULL << (resp.logQs - 1);
    std::vector<u64> out(n);
    for (size_t i = 0; i < n; ++i) {
        u64 ph = phase[i] & qs_mask;
        // m = round(ph * p / qs) mod p
        out[i] = ((ph * p + half_qs) >> resp.logQs) & (p - 1);
    }
    return out;
}

// -------------------------------------------------------------- PirEngine

PirEngine::PirEngine(std::shared_ptr<TfheContext> ctx,
                     const PirParams &params)
    : ctx_(std::move(ctx)), params_(params),
      foldChunk_(foldChunkFromEnv())
{
    params_.validate();
    trinity_assert(ctx_->params().q == params_.tfhe.q &&
                       ctx_->params().bigN == params_.tfhe.bigN &&
                       ctx_->params().lb == params_.tfhe.lb &&
                       ctx_->params().lk == params_.tfhe.lk,
                   "engine context/parameter mismatch");
}

std::vector<GlweCiphertext>
PirEngine::expand(const PirQueryKeys &keys, const PirQuery &query) const
{
    return expandQuery(*ctx_, keys.galois, query.ct,
                       params_.expansionLevels());
}

GgswCiphertext
PirEngine::queryGsw(const PirQueryKeys &keys,
                    const std::vector<GlweCiphertext> &expanded,
                    u32 t) const
{
    const TfheParams &p = params_.tfhe;
    trinity_assert(keys.conv.size() == p.k,
                   "conversion keys missing (%zu of %zu)",
                   keys.conv.size(), p.k);
    GgswCiphertext gsw;
    gsw.rows.resize(p.extRows());
    for (u32 l = 0; l < p.lb; ++l) {
        const GlweCiphertext &cl =
            expanded[params_.dim1 + size_t(t) * p.lb + l];
        // Body row (k, l): the expanded slot already encrypts
        // bit * g_l. Mask rows (j, l) need bit * g_l * (-s_j) — one
        // external product against the conversion key GGSW(-s_j).
        for (size_t j = 0; j < p.k; ++j) {
            gsw.rows[j * p.lb + l] =
                ctx_->externalProduct(keys.conv[j], cl);
        }
        gsw.rows[p.k * p.lb + l] = cl;
    }
    ctx_->ggswToEval(gsw);
    return gsw;
}

std::vector<GlweCiphertext>
PirEngine::fold(const ResidentPirDb &db,
                const std::vector<GlweCiphertext> &expanded) const
{
    const TfheParams &p = params_.tfhe;
    const Modulus &mod = ctx_->modulus();
    size_t n = p.bigN;
    size_t comps = p.k + 1;
    u32 lb = p.lb;
    size_t dim1 = params_.dim1;
    size_t cols = params_.columns();
    trinity_assert(db.polys.size() == params_.records() * lb &&
                       db.lb == lb,
                   "resident database shape mismatch");
    trinity_assert(expanded.size() >= dim1,
                   "fold needs %zu selection entries, got %zu", dim1,
                   expanded.size());
    size_t chunk = foldChunk_ < dim1 ? foldChunk_ : dim1;
    size_t num_chunks = (dim1 + chunk - 1) / chunk;
    obs::TraceSpan span("pirFold", "pir", "fold", "rows", dim1);

    // Stream-owned-by-caller scratch: everything recorded below must
    // stay alive (and not reallocate) until wait().
    auto stream = activeBackend().newStream();
    size_t rows = comps * lb; // digit limbs per selection entry
    std::vector<Poly> dig;
    dig.reserve(dim1 * rows);
    for (size_t i = 0; i < dim1 * rows; ++i) {
        dig.emplace_back(n, p.q);
    }
    std::vector<GlweCiphertext> accs(cols);
    for (size_t c = 0; c < cols; ++c) {
        accs[c] = ctx_->glweTrivial(Poly(n, p.q));
        for (size_t j = 0; j < comps; ++j) {
            glweComp(accs[c], j).setDomain(Domain::Eval);
        }
    }
    std::vector<Poly> partial;
    if (num_chunks > 1) {
        partial.reserve(num_chunks * cols * comps);
        for (size_t i = 0; i < num_chunks * cols * comps; ++i) {
            partial.emplace_back(n, p.q);
        }
    }

    // (1) Per selection entry: gadget decomposition, then the forward
    // NTTs of its digit limbs — an independent two-command chain per
    // row, so chunk MACs start as soon as *their* rows are ready.
    std::vector<Job> row_ready(dim1);
    for (size_t r = 0; r < dim1; ++r) {
        const GlweCiphertext *sel = &expanded[r];
        Job dec = stream->task(
            comps,
            [this, sel, r, &dig, n, lb, rows](size_t c) {
                const Poly &src = glweComp(*sel, c);
                trinity_assert(src.domain() == Domain::Coeff,
                               "fold input must be in coefficient "
                               "domain");
                i64 digits[16]; // lb <= 16 via extRows() <= 16
                for (size_t i = 0; i < n; ++i) {
                    ctx_->decomposeScalar(src[i], digits);
                    for (u32 l = 0; l < lb; ++l) {
                        dig[r * rows + c * lb + l][i] =
                            toResidue(digits[l], ctx_->q());
                    }
                }
            },
            {},
            {{sim::KernelType::Decomp, comps * n, n,
              16 * comps * n}});
        std::vector<NttJob> fwd;
        fwd.reserve(rows);
        for (size_t t = 0; t < rows; ++t) {
            Poly &poly = dig[r * rows + t];
            poly.setDomain(Domain::Eval);
            fwd.push_back({poly.coeffs().data(), &poly.nttTable()});
        }
        row_ready[r] = stream->nttForward(std::move(fwd), {dec});
    }

    // (2) Per chunk of first-dimension rows: one MAC command covering
    // every (column, component) output, accumulating digit limbs
    // against the gadget-scaled database rows with lazy u128
    // reduction (chunk * lb terms of < 2^64 each — far below the 128-
    // bit capacity). Writes per-chunk partials when there are several
    // chunks, the accumulators directly when there is one.
    std::vector<Job> macs;
    macs.reserve(num_chunks);
    for (size_t ch = 0; ch < num_chunks; ++ch) {
        size_t r0 = ch * chunk;
        size_t r1 = r0 + chunk < dim1 ? r0 + chunk : dim1;
        std::vector<Job> deps(row_ready.begin() + r0,
                              row_ready.begin() + r1);
        Poly *out_base = num_chunks > 1
                             ? partial.data() + ch * cols * comps
                             : nullptr;
        Job mac = stream->task(
            cols * comps,
            [this, &db, &dig, &accs, &mod, out_base, r0, r1, comps,
             lb, n, rows, dim1](size_t idx) {
                size_t c = idx / comps;
                size_t j = idx % comps;
                Poly &dst = out_base != nullptr
                                ? out_base[idx]
                                : glweComp(accs[c], j);
                u64 *out = dst.coeffs().data();
                for (size_t r = r0; r < r1; ++r) {
                    bool first = (r == r0);
                    for (u32 l = 0; l < lb; ++l) {
                        const u64 *d =
                            dig[r * rows + j * lb + l].coeffs().data();
                        const u64 *rec =
                            db.poly(c * dim1 + r, l).coeffs().data();
                        if (first && l == 0) {
                            for (size_t i = 0; i < n; ++i) {
                                out[i] = mod.mul(d[i], rec[i]);
                            }
                        } else {
                            for (size_t i = 0; i < n; ++i) {
                                out[i] =
                                    mod.mulAdd(d[i], rec[i], out[i]);
                            }
                        }
                    }
                }
            },
            std::move(deps),
            {{sim::KernelType::Ip,
              static_cast<u64>(cols) * comps * (r1 - r0) * lb * n, n,
              16 * static_cast<u64>(cols) * comps * (r1 - r0) * lb *
                  n}});
        macs.push_back(mac);
    }

    // (3) Chunk reduction (only when chunked), then the inverse NTTs
    // of every accumulator component, one wide command.
    Job ready;
    if (num_chunks > 1) {
        ready = stream->task(
            cols * comps,
            [&accs, &partial, &mod, num_chunks, cols, comps,
             n](size_t idx) {
                size_t c = idx / comps;
                size_t j = idx % comps;
                u64 *out = glweComp(accs[c], j).coeffs().data();
                for (size_t i = 0; i < n; ++i) {
                    u64 s = partial[idx][i];
                    for (size_t ch = 1; ch < num_chunks; ++ch) {
                        s = mod.add(
                            s, partial[ch * cols * comps + idx][i]);
                    }
                    out[i] = s;
                }
            },
            macs,
            {{sim::KernelType::ModAdd,
              static_cast<u64>(cols) * comps * num_chunks * n, n,
              16 * static_cast<u64>(cols) * comps * num_chunks * n}});
    }
    std::vector<NttJob> inv;
    inv.reserve(cols * comps);
    for (size_t c = 0; c < cols; ++c) {
        for (size_t j = 0; j < comps; ++j) {
            Poly &poly = glweComp(accs[c], j);
            inv.push_back({poly.coeffs().data(), &poly.nttTable()});
            poly.setDomain(Domain::Coeff);
        }
    }
    stream->nttInverse(std::move(inv),
                       num_chunks > 1 ? std::vector<Job>{ready} : macs);
    stream->submit();
    stream->wait();
    return accs;
}

PirResponse
PirEngine::modSwitch(const GlweCiphertext &ct) const
{
    const TfheParams &p = params_.tfhe;
    size_t n = p.bigN;
    size_t comps = p.k + 1;
    u64 qs = 1ULL << params_.logQs;
    PirResponse resp;
    resp.logQs = params_.logQs;
    resp.comps.resize(comps);
    emitKernel(sim::KernelType::ModSwitch, comps * n, n);
    for (size_t j = 0; j < comps; ++j) {
        const Poly &src = glweComp(ct, j);
        trinity_assert(src.domain() == Domain::Coeff,
                       "modSwitch needs coefficient domain");
        resp.comps[j].resize(n);
        for (size_t i = 0; i < n; ++i) {
            // round(x * qs / q), wrapped into [0, qs)
            u64 v = static_cast<u64>(
                (u128(src[i]) * qs + p.q / 2) / p.q);
            resp.comps[j][i] = v & (qs - 1);
        }
    }
    return resp;
}

PirResponse
PirEngine::answer(const ResidentPirDb &db, const PirQueryKeys &keys,
                  const PirQuery &query) const
{
    obs::TraceSpan span("pirAnswer", "pir", "answer", "records",
                        params_.records());
    std::vector<GlweCiphertext> expanded = expand(keys, query);
    std::vector<GgswCiphertext> gsw;
    gsw.reserve(params_.gswDims);
    for (u32 t = 0; t < params_.gswDims; ++t) {
        gsw.push_back(queryGsw(keys, expanded, t));
    }
    std::vector<GlweCiphertext> accs = fold(db, expanded);
    // CMux tree: level t keys on bit t of the column index, so pair
    // (2i, 2i+1) collapses to 2i+bit — after gswDims levels accs[0]
    // holds the selected column's fold output.
    for (u32 t = 0; t < params_.gswDims; ++t) {
        size_t half = accs.size() / 2;
        std::vector<GlweCiphertext> next(half);
        for (size_t i = 0; i < half; ++i) {
            next[i] = ctx_->cmux(gsw[t], accs[2 * i], accs[2 * i + 1]);
        }
        accs = std::move(next);
    }
    return modSwitch(accs[0]);
}

} // namespace pir
} // namespace trinity
