#include "pir/expand.h"

#include "common/logging.h"
#include "obs/trace.h"

namespace trinity {
namespace pir {

std::vector<GlweCiphertext>
expandQuery(const TfheContext &ctx, const std::vector<GaloisKey> &keys,
            const GlweCiphertext &query, u32 m)
{
    const TfheParams &p = ctx.params();
    trinity_assert((size_t(1) << m) <= p.bigN,
                   "expansion deeper than the ring (m=%u, N=%zu)", m,
                   p.bigN);
    trinity_assert(keys.size() >= m,
                   "expansion needs %u Galois keys, got %zu", m,
                   keys.size());
    obs::TraceSpan span("pirExpand", "pir", "expandQuery", "m", m);

    std::vector<GlweCiphertext> cur;
    cur.push_back(query);
    std::vector<GlweCiphertext> sigma;
    u64 two_n = 2 * p.bigN;
    for (u32 j = 0; j < m; ++j) {
        size_t half = size_t(1) << j;
        u64 g = expansionGaloisElement(p.bigN, j);
        trinity_assert(keys[j].g == g,
                       "Galois key order mismatch at level %u "
                       "(key for %llu, need %llu)",
                       j, (unsigned long long)keys[j].g,
                       (unsigned long long)g);
        sigma.resize(half);
        applyGaloisBatch(ctx, keys[j], cur.data(), sigma.data(), half);
        std::vector<GlweCiphertext> next(2 * half);
        for (size_t b = 0; b < half; ++b) {
            next[b] = ctx.glweAdd(cur[b], sigma[b]);
            next[b + half] = ctx.glweMulMonomial(
                ctx.glweSub(cur[b], sigma[b]), two_n - half);
        }
        cur = std::move(next);
    }
    return cur;
}

} // namespace pir
} // namespace trinity
