/**
 * @file
 * Keyswitched GLWE automorphisms — the expansion primitive.
 *
 * Applying X -> X^g to a GLWE ciphertext permutes the key to
 * sigma_g(s); a GaloisKey (gadget GLWE encryptions of g_l *
 * sigma_g(s_j) under s, held in the NTT domain) switches back:
 *
 *   out.a_j = -sum_{j,l} dec_l(sigma(a_j)) (*) ksk_{j,l}.a_j
 *   out.b   = sigma(b) - sum_{j,l} dec_l(sigma(a_j)) (*) ksk_{j,l}.b
 *
 * so phase(out) = sigma_g(phase(in)) up to keyswitch noise. The
 * decomposition uses the fine expansion gadget (params.lk/logBks),
 * not the external-product gadget — the oblivious expansion applies
 * ~2^m of these in a doubling walk, so its per-step noise has to be
 * much smaller than a CMux level's.
 *
 * applyGaloisBatch() runs many independent ciphertexts through one
 * automorphism as wide backend batches (one AutoJob batch, one
 * decompose task, one NTT batch, one MAC task, one inverse-NTT batch)
 * — the same batch shapes the conv packer's hybrid keyswitch issues,
 * sharing AutoTableCache entries per (N, g).
 */

#ifndef TRINITY_PIR_GALOIS_H
#define TRINITY_PIR_GALOIS_H

#include "pir/gadget.h"
#include "tfhe/core.h"

namespace trinity {
namespace pir {

/** Keyswitch material for one automorphism element g. */
struct GaloisKey
{
    u64 g = 0;
    u32 logB = 0;
    u32 levels = 0;
    /** rows[j*levels + l]: GLWE encryption of g_l * sigma_g(s_j),
     *  NTT domain. */
    std::vector<GlweCiphertext> rows;
};

/** Generate the keyswitch key for X -> X^g under @p sk, using the
 *  expansion gadget (ctx.params().lk / logBks). Client-side. */
GaloisKey makeGaloisKey(TfheContext &ctx, const GlweSecretKey &sk,
                        u64 g);

/**
 * out[i] = keyswitched sigma_g(in[i]) for @p count independent
 * ciphertexts (coefficient domain), issued as wide backend batches.
 * out must not alias in.
 */
void applyGaloisBatch(const TfheContext &ctx, const GaloisKey &key,
                      const GlweCiphertext *in, GlweCiphertext *out,
                      size_t count);

/** Single-ciphertext convenience wrapper. */
GlweCiphertext applyGalois(const TfheContext &ctx, const GaloisKey &key,
                           const GlweCiphertext &ct);

} // namespace pir
} // namespace trinity

#endif // TRINITY_PIR_GALOIS_H
