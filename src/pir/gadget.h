/**
 * @file
 * Standalone signed gadget decomposition over a prime modulus.
 *
 * TfheContext carries one gadget (the external-product base Bg); the
 * PIR expansion needs a second, finer one for its Galois keyswitch.
 * This is the same balanced base-B decomposition the context uses —
 * y = round(x * B^levels / q), balanced digits with a carry wrap — as
 * a reusable component parameterized on (q, logB, levels).
 */

#ifndef TRINITY_PIR_GADGET_H
#define TRINITY_PIR_GADGET_H

#include <vector>

#include "common/modarith.h"
#include "common/types.h"

namespace trinity {
namespace pir {

/** Gadget vector g_l = round(q / B^(l+1)) with its decomposition. */
class Gadget
{
  public:
    Gadget(u64 q, u32 log_b, u32 levels);

    u32 levels() const { return levels_; }
    u32 logBase() const { return log_b_; }
    u64 element(u32 l) const { return g_[l]; }

    /**
     * Signed decomposition of a residue x into digits d_l in
     * [-B/2, B/2) so that sum d_l * g_l ~ x. Full-width gadgets
     * (logB * levels covering all of q) leave only the per-level
     * rounding of the prime; truncated gadgets additionally carry a
     * q / B^levels approximation term.
     */
    void decompose(u64 x, i64 *digits) const;

  private:
    u64 q_;
    u32 log_b_;
    u32 levels_;
    std::vector<u64> g_;
};

} // namespace pir
} // namespace trinity

#endif // TRINITY_PIR_GADGET_H
