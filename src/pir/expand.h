/**
 * @file
 * Oblivious query expansion (SealPIR/OnionPIR Algorithm 3) — the
 * inverse of the conv packer's Algorithm-4 packing walk.
 *
 * One uploaded RLWE ciphertext of f(X) = sum f_u X^u expands into 2^m
 * ciphertexts, out[u] encrypting the constant 2^m * f_u. Level j
 * doubles the working set with the automorphism g_j = N/2^j + 1:
 *
 *   c0 = c + sigma_{g_j}(c)                    (keeps even strides)
 *   c1 = (c - sigma_{g_j}(c)) * X^{-2^j}       (keeps odd strides)
 *
 * The client pre-multiplies query coefficients by inv(2^m) mod q (q
 * prime), so the expanded entries carry exactly the intended message.
 * Each level runs its whole generation through one applyGaloisBatch()
 * call — 2^j independent ciphertexts as wide backend batches.
 */

#ifndef TRINITY_PIR_EXPAND_H
#define TRINITY_PIR_EXPAND_H

#include "pir/galois.h"

namespace trinity {
namespace pir {

/** The automorphism element expansion level @p j applies. */
inline u64
expansionGaloisElement(size_t big_n, u32 j)
{
    return (big_n >> j) + 1;
}

/**
 * Expand @p query into 2^m ciphertexts; keys[j] must be the Galois
 * key for expansionGaloisElement(N, j), j in [0, m).
 */
std::vector<GlweCiphertext>
expandQuery(const TfheContext &ctx, const std::vector<GaloisKey> &keys,
            const GlweCiphertext &query, u32 m);

} // namespace pir
} // namespace trinity

#endif // TRINITY_PIR_EXPAND_H
