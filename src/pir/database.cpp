#include "pir/database.h"

#include "backend/registry.h"
#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {
namespace pir {

// ------------------------------------------------------------ PirDatabase

PirDatabase::PirDatabase(const PirParams &params) : params_(params)
{
    params_.validate();
    store_.assign(params_.records() * params_.tfhe.bigN, 0);
}

PirDatabase
PirDatabase::random(const PirParams &params, u64 seed)
{
    PirDatabase db(params);
    Rng rng(seed);
    u64 p = 1ULL << params.logP;
    for (auto &c : db.store_) {
        c = static_cast<u8>(rng.uniform(p));
    }
    return db;
}

void
PirDatabase::setCoeff(size_t rec, size_t i, u64 v)
{
    trinity_assert(v < (1ULL << params_.logP),
                   "record coefficient out of range");
    store_[rec * params_.tfhe.bigN + i] = static_cast<u8>(v);
}

std::vector<u64>
PirDatabase::record(size_t rec) const
{
    size_t n = params_.tfhe.bigN;
    std::vector<u64> out(n);
    for (size_t i = 0; i < n; ++i) {
        out[i] = store_[rec * n + i];
    }
    return out;
}

// --------------------------------------------------------- materialization

ResidentPirDb
materializePirDb(const TfheContext &ctx, const PirDatabase &db)
{
    const PirParams &pp = db.params();
    const TfheParams &p = ctx.params();
    trinity_assert(p.q == pp.tfhe.q && p.bigN == pp.tfhe.bigN &&
                       p.lb == pp.tfhe.lb,
                   "context/database parameter mismatch");
    size_t n = p.bigN;
    size_t records = db.records();
    u32 lb = p.lb;
    obs::TraceSpan span("pirMaterialize", "pir", "materializePirDb",
                        "records", records);

    ResidentPirDb out;
    out.lb = lb;
    out.polys.reserve(records * lb);
    for (size_t rec = 0; rec < records; ++rec) {
        for (u32 l = 0; l < lb; ++l) {
            if (l == 0) {
                Poly pt(n, p.q);
                for (size_t i = 0; i < n; ++i) {
                    pt[i] = db.coeff(rec, i);
                }
                out.polys.push_back(std::move(pt));
            } else {
                out.polys.emplace_back(n, p.q);
            }
        }
    }
    // One forward NTT per record (slot l=0 holds the plaintext) ...
    std::vector<NttJob> ntts;
    ntts.reserve(records);
    for (size_t rec = 0; rec < records; ++rec) {
        Poly &base = out.polys[rec * lb];
        ntts.push_back({base.coeffs().data(), &base.nttTable()});
    }
    activeBackend().nttForwardBatch(ntts.data(), ntts.size());
    // ... then the gadget scaling in the transform domain: slots
    // 1..lb-1 read slot 0, which is rescaled in place last.
    const Modulus &mod = ctx.modulus();
    std::vector<ScalarMulJob> scale;
    scale.reserve(records * (lb - 1));
    for (size_t rec = 0; rec < records; ++rec) {
        const u64 *base = out.polys[rec * lb].coeffs().data();
        for (u32 l = 1; l < lb; ++l) {
            scale.push_back({out.polys[rec * lb + l].coeffs().data(),
                             base, ctx.gadget(l), &mod, n});
        }
    }
    activeBackend().scalarMulBatch(scale.data(), scale.size());
    std::vector<ScalarMulJob> scale0;
    scale0.reserve(records);
    for (size_t rec = 0; rec < records; ++rec) {
        u64 *base = out.polys[rec * lb].coeffs().data();
        scale0.push_back({base, base, ctx.gadget(0), &mod, n});
    }
    activeBackend().scalarMulBatch(scale0.data(), scale0.size());
    for (auto &poly : out.polys) {
        poly.setDomain(Domain::Eval);
    }
    out.bytes = out.polys.size() * n * sizeof(u64);
    return out;
}

// ------------------------------------------------------------- PirDbStore

struct PirDbStore::Metrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Counter &materializations;
    obs::Gauge &resident_bytes;
    obs::Histogram &materialize_ns;

    static Metrics &
    forLabel(const std::string &label)
    {
        static std::mutex mtx;
        static std::map<std::string, std::unique_ptr<Metrics>> all;
        std::lock_guard<std::mutex> lk(mtx);
        auto it = all.find(label);
        if (it == all.end()) {
            obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
            it = all.emplace(label,
                             std::unique_ptr<Metrics>(new Metrics{
                                 reg.counter(label + ".hits"),
                                 reg.counter(label + ".misses"),
                                 reg.counter(label + ".evictions"),
                                 reg.counter(label + ".materializations"),
                                 reg.gauge(label + ".resident_bytes"),
                                 reg.histogram(label + ".materialize_ns"),
                             }))
                     .first;
        }
        return *it->second;
    }
};

size_t
PirDbStore::budgetFromEnv(size_t fallback)
{
    u64 v = 0;
    if (envU64("TRINITY_PIR_DB_BYTES", v)) {
        return static_cast<size_t>(v);
    }
    return fallback;
}

PirDbStore::PirDbStore(const TfheContext &ctx, Provider provider,
                       size_t budget, std::string label)
    : ctx_(ctx), provider_(std::move(provider)), budget_(budget),
      label_(std::move(label)), metrics_(Metrics::forLabel(label_))
{
    trinity_assert(provider_ != nullptr,
                   "PirDbStore needs a database provider");
}

std::shared_ptr<const ResidentPirDb>
PirDbStore::acquire(PirTenantId tenant)
{
    std::promise<std::shared_ptr<const ResidentPirDb>> prom;
    std::shared_future<std::shared_ptr<const ResidentPirDb>> fut;
    bool thisThreadMaterializes = false;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        auto it = entries_.find(tenant);
        if (it != entries_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            ++stats_.hits;
            metrics_.hits.add();
            fut = it->second.db;
        } else {
            ++stats_.misses;
            metrics_.misses.add();
            thisThreadMaterializes = true;
            Entry e;
            fut = e.db = prom.get_future().share();
            lru_.push_front(tenant);
            e.lruIt = lru_.begin();
            entries_.emplace(tenant, std::move(e));
        }
    }
    // Only the thread that inserted the entry materializes — exactly
    // once per residency; concurrent acquires wait on the shared
    // future.
    if (!thisThreadMaterializes) {
        return fut.get();
    }
    std::shared_ptr<const ResidentPirDb> db;
    try {
        db = materialize(tenant);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lk(mtx_);
            auto it = entries_.find(tenant);
            if (it != entries_.end() && it->second.bytes == 0) {
                dropEntryLocked(it);
            }
        }
        prom.set_exception(std::current_exception());
        throw;
    }
    {
        std::lock_guard<std::mutex> lk(mtx_);
        auto it = entries_.find(tenant);
        trinity_assert(it != entries_.end(),
                       "in-flight dbstore entry vanished");
        it->second.bytes = db->bytes;
        residentBytes_ += db->bytes;
        stats_.residentBytes = residentBytes_;
        ++stats_.materializations;
        evictToBudget(tenant);
        metrics_.resident_bytes.set(static_cast<i64>(residentBytes_));
    }
    metrics_.materializations.add();
    prom.set_value(db);
    return db;
}

std::shared_ptr<const ResidentPirDb>
PirDbStore::materialize(PirTenantId tenant)
{
    u64 t0 = obs::detail::nowNs();
    const PirDatabase &raw = provider_(tenant);
    auto db = std::make_shared<ResidentPirDb>(
        materializePirDb(ctx_, raw));
    metrics_.materialize_ns.observe(obs::detail::nowNs() - t0);
    return db;
}

void
PirDbStore::evictToBudget(PirTenantId keep)
{
    if (budget_ == 0) {
        return;
    }
    while (residentBytes_ > budget_) {
        bool evicted = false;
        for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
            if (*rit == keep) {
                continue;
            }
            auto it = entries_.find(*rit);
            if (it->second.bytes == 0) {
                continue; // materialization in flight — not evictable
            }
            dropEntryLocked(it);
            evicted = true;
            break;
        }
        if (!evicted) {
            // Only @p keep and in-flight entries remain: one tenant
            // may legitimately exceed the whole budget.
            break;
        }
    }
}

void
PirDbStore::dropEntryLocked(std::map<PirTenantId, Entry>::iterator it)
{
    residentBytes_ -= it->second.bytes;
    stats_.residentBytes = residentBytes_;
    if (it->second.bytes != 0) {
        ++stats_.evictions;
        metrics_.evictions.add();
    }
    metrics_.resident_bytes.set(static_cast<i64>(residentBytes_));
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
}

bool
PirDbStore::resident(PirTenantId tenant) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return entries_.find(tenant) != entries_.end();
}

bool
PirDbStore::evict(PirTenantId tenant)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = entries_.find(tenant);
    if (it == entries_.end() || it->second.bytes == 0) {
        return false;
    }
    dropEntryLocked(it);
    return true;
}

size_t
PirDbStore::residentBytes() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return residentBytes_;
}

PirDbStore::Stats
PirDbStore::stats() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return stats_;
}

} // namespace pir
} // namespace trinity
