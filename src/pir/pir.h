/**
 * @file
 * OnionPIR-style single-server PIR on the TFHE layer.
 *
 * Query lifecycle (docs/PIR.md walks a full example):
 *
 *  client                         server
 *  ------                         ------
 *  makeQueryKeys() ------------>  (uploaded once per client)
 *  makeQuery(index) ----------->  PirEngine::answer():
 *                                   1. expandQuery: 1 ciphertext ->
 *                                      2^m entries (selection vector
 *                                      + GSW gadget slots)
 *                                   2. queryGsw: RLWE->GSW conversion
 *                                      of the per-dimension bits
 *                                   3. fold: gadget-decomposed
 *                                      external-product accumulation
 *                                      over the first dimension,
 *                                      recorded into a CommandStream
 *                                   4. CMux tree over the remaining
 *                                      dimensions
 *  decode(response) <-----------    5. modulus-switched response
 *
 * The query packs everything into ONE ring element: coefficient i <
 * dim1 carries Delta * inv(2^m) at the selected first-dimension row,
 * and coefficient dim1 + t*lb + l carries g_l * inv(2^m) * bit_t(col)
 * — after expansion (which multiplies by 2^m) entry i encrypts
 * exactly Delta * [i == row] and the gadget slots encrypt g_l * bit,
 * ready for GSW assembly.
 */

#ifndef TRINITY_PIR_PIR_H
#define TRINITY_PIR_PIR_H

#include "pir/database.h"
#include "pir/expand.h"

namespace trinity {
namespace pir {

/** One uploaded query: a single RLWE ciphertext. */
struct PirQuery
{
    GlweCiphertext ct;
};

/** Per-client key material the server holds (never the secret key):
 *  expansion Galois keys and the RLWE->GSW conversion keys. */
struct PirQueryKeys
{
    std::vector<GaloisKey> galois;     ///< galois[j]: level-j element
    std::vector<GgswCiphertext> conv;  ///< conv[j]: GGSW(-s_j), NTT
};

/** Modulus-switched response: k+1 components mod 2^logQs. */
struct PirResponse
{
    u32 logQs = 0;
    std::vector<std::vector<u64>> comps; ///< comps[k] is the body

    bool
    operator==(const PirResponse &o) const
    {
        return logQs == o.logQs && comps == o.comps;
    }
};

/** Client state: secret key, query encoding, response decoding. */
class PirClient
{
  public:
    PirClient(const PirParams &params, u64 seed);

    const PirParams &params() const { return params_; }

    /** Expansion + conversion keys for upload (one-time). */
    PirQueryKeys makeQueryKeys();

    /** Encrypt a query for record @p index in [0, records()). */
    PirQuery makeQuery(size_t index);

    /** Recover the record's N coefficients (values in [0, 2^logP)). */
    std::vector<u64> decode(const PirResponse &resp) const;

    // --- test/bench access ----------------------------------------------
    TfheContext &ctx() { return *ctx_; }
    std::shared_ptr<TfheContext> sharedCtx() const { return ctx_; }
    const GlweSecretKey &secretKey() const { return sk_; }

  private:
    PirParams params_;
    std::shared_ptr<TfheContext> ctx_;
    GlweSecretKey sk_;
};

/** Server-side query executor over one parameter set. */
class PirEngine
{
  public:
    PirEngine(std::shared_ptr<TfheContext> ctx, const PirParams &params);

    const PirParams &params() const { return params_; }

    /** Full pipeline: expansion, GSW assembly, fold, CMux tree,
     *  modulus switch. */
    PirResponse answer(const ResidentPirDb &db, const PirQueryKeys &keys,
                       const PirQuery &query) const;

    // --- pipeline stages (exposed for tests) -----------------------------

    /** Oblivious expansion into all 2^m entries. */
    std::vector<GlweCiphertext> expand(const PirQueryKeys &keys,
                                       const PirQuery &query) const;

    /** Assemble the GGSW for dimension bit @p t from the expanded
     *  gadget slots (RLWE->GSW conversion), NTT domain. */
    GgswCiphertext queryGsw(const PirQueryKeys &keys,
                            const std::vector<GlweCiphertext> &expanded,
                            u32 t) const;

    /**
     * First-dimension fold: gadget-decompose each selection entry and
     * external-product-accumulate it against every database row, one
     * output accumulator per column. Recorded into a CommandStream —
     * per-row decompose -> NTT chains feed per-chunk MAC commands, so
     * pipelined engines overlap row r+1's NTTs with row r's MACs and
     * the sim prices the DAG's makespan. Chunk width comes from
     * TRINITY_PIR_FOLD_CHUNK (first-dimension rows per partial
     * accumulator).
     */
    std::vector<GlweCiphertext>
    fold(const ResidentPirDb &db,
         const std::vector<GlweCiphertext> &expanded) const;

    /** Round every component from q down to 2^logQs. */
    PirResponse modSwitch(const GlweCiphertext &ct) const;

  private:
    std::shared_ptr<TfheContext> ctx_;
    PirParams params_;
    size_t foldChunk_;
};

} // namespace pir
} // namespace trinity

#endif // TRINITY_PIR_PIR_H
