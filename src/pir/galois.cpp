#include "pir/galois.h"

#include "backend/observer.h"
#include "backend/registry.h"
#include "common/logging.h"

namespace trinity {
namespace pir {

namespace {

Poly &
glweComp(GlweCiphertext &ct, size_t c)
{
    return c < ct.a.size() ? ct.a[c] : ct.b;
}

const Poly &
glweComp(const GlweCiphertext &ct, size_t c)
{
    return c < ct.a.size() ? ct.a[c] : ct.b;
}

} // namespace

GaloisKey
makeGaloisKey(TfheContext &ctx, const GlweSecretKey &sk, u64 g)
{
    const TfheParams &p = ctx.params();
    trinity_assert(g % 2 == 1 && g < 2 * p.bigN,
                   "automorphism element must be odd and < 2N");
    GaloisKey key;
    key.g = g;
    key.logB = p.logBks;
    key.levels = p.lk;
    Gadget gadget(p.q, p.logBks, p.lk);
    key.rows.reserve(p.k * p.lk);
    for (size_t j = 0; j < p.k; ++j) {
        Poly sj(p.bigN, p.q);
        for (size_t i = 0; i < p.bigN; ++i) {
            sj[i] = toResidue(sk.s[j][i], p.q);
        }
        Poly sigma_sj = sj.automorphism(g);
        for (u32 l = 0; l < p.lk; ++l) {
            Poly msg = sigma_sj;
            msg.scalarMulInPlace(gadget.element(l));
            key.rows.push_back(ctx.glweEncrypt(msg, sk));
        }
    }
    // Keyswitch rows are MAC operands — hold them in the NTT domain.
    std::vector<NttJob> jobs;
    jobs.reserve(key.rows.size() * (p.k + 1));
    for (auto &row : key.rows) {
        for (size_t c = 0; c <= p.k; ++c) {
            Poly &poly = glweComp(row, c);
            jobs.push_back({poly.coeffs().data(), &poly.nttTable()});
            poly.setDomain(Domain::Eval);
        }
    }
    activeBackend().nttForwardBatch(jobs.data(), jobs.size());
    return key;
}

void
applyGaloisBatch(const TfheContext &ctx, const GaloisKey &key,
                 const GlweCiphertext *in, GlweCiphertext *out,
                 size_t count)
{
    if (count == 0) {
        return;
    }
    const TfheParams &p = ctx.params();
    const Modulus &mod = ctx.modulus();
    size_t n = p.bigN;
    size_t k = p.k;
    size_t comps = k + 1;
    u32 levels = key.levels;
    size_t rows = k * levels;
    trinity_assert(rows <= 16 && p.q < (1ULL << 61),
                   "applyGaloisBatch: unsupported keyswitch shape");
    trinity_assert(key.rows.size() == rows, "GaloisKey shape mismatch");
    PolyBackend &backend = activeBackend();
    Gadget gadget(p.q, key.logB, levels);

    // (1) sigma_g of every component of every ciphertext, one batch.
    std::vector<GlweCiphertext> sigma(count);
    std::vector<AutoJob> autos;
    autos.reserve(count * comps);
    for (size_t c = 0; c < count; ++c) {
        sigma[c] = ctx.glweTrivial(Poly(n, p.q));
        for (size_t j = 0; j < comps; ++j) {
            const Poly &src = glweComp(in[c], j);
            trinity_assert(src.domain() == Domain::Coeff,
                           "applyGaloisBatch needs coefficient domain");
            autos.push_back({glweComp(sigma[c], j).coeffs().data(),
                             src.coeffs().data(), &mod, n, key.g});
        }
    }
    backend.automorphismBatch(autos.data(), autos.size());

    // (2) Gadget-decompose every sigma(a_j) with the expansion base.
    std::vector<Poly> dig;
    dig.reserve(count * rows);
    for (size_t i = 0; i < count * rows; ++i) {
        dig.emplace_back(n, p.q);
    }
    emitKernel(sim::KernelType::Decomp, count * k * n, n);
    backend.run(count * k, [&](size_t idx) {
        size_t c = idx / k;
        size_t j = idx % k;
        const Poly &src = sigma[c].a[j];
        i64 digits[16]; // levels <= rows <= 16, asserted above
        for (size_t i = 0; i < n; ++i) {
            gadget.decompose(src[i], digits);
            for (u32 l = 0; l < levels; ++l) {
                dig[c * rows + j * levels + l][i] =
                    toResidue(digits[l], p.q);
            }
        }
    });

    // (3) Forward NTT of every digit limb, one batch.
    std::vector<NttJob> fwd;
    fwd.reserve(count * rows);
    for (auto &poly : dig) {
        fwd.push_back({poly.coeffs().data(), &poly.nttTable()});
        poly.setDomain(Domain::Eval);
    }
    backend.nttForwardBatch(fwd.data(), fwd.size());

    // (4) Keyswitch MACs with lazy u128 accumulation (rows <= 16 and
    // q < 2^61, so the unreduced sum cannot overflow): T_c = sum_{j,l}
    // dec_{j,l} (*) ksk_{j,l}.comp_c, written into out's components.
    for (size_t c = 0; c < count; ++c) {
        out[c] = ctx.glweTrivial(Poly(n, p.q));
        for (size_t j = 0; j < comps; ++j) {
            glweComp(out[c], j).setDomain(Domain::Eval);
        }
    }
    emitKernel(sim::KernelType::Ip, count * comps * rows * n, n);
    backend.run(count * comps, [&](size_t idx) {
        size_t c = idx / comps;
        size_t j = idx % comps;
        const u64 *dec_ptr[16];
        const u64 *key_ptr[16];
        for (size_t r = 0; r < rows; ++r) {
            dec_ptr[r] = dig[c * rows + r].coeffs().data();
            key_ptr[r] = glweComp(key.rows[r], j).coeffs().data();
        }
        u64 *dst = glweComp(out[c], j).coeffs().data();
        for (size_t i = 0; i < n; ++i) {
            u128 acc = 0;
            for (size_t r = 0; r < rows; ++r) {
                acc += static_cast<u128>(dec_ptr[r][i]) * key_ptr[r][i];
            }
            dst[i] = mod.reduce128(acc);
        }
    });

    // (5) Inverse NTT of the accumulated T components, one batch.
    std::vector<NttJob> inv;
    inv.reserve(count * comps);
    for (size_t c = 0; c < count; ++c) {
        for (size_t j = 0; j < comps; ++j) {
            Poly &poly = glweComp(out[c], j);
            inv.push_back({poly.coeffs().data(), &poly.nttTable()});
            poly.setDomain(Domain::Coeff);
        }
    }
    backend.nttInverseBatch(inv.data(), inv.size());

    // (6) Combine: out.a_j = -T_a_j; out.b = sigma(b) - T_b.
    std::vector<EltwiseJob> negs;
    negs.reserve(count * comps);
    for (size_t c = 0; c < count; ++c) {
        for (size_t j = 0; j < comps; ++j) {
            u64 *dst = glweComp(out[c], j).coeffs().data();
            negs.push_back({dst, dst, nullptr, &mod, n});
        }
    }
    backend.negBatch(negs.data(), negs.size());
    std::vector<EltwiseJob> adds;
    adds.reserve(count);
    for (size_t c = 0; c < count; ++c) {
        u64 *dst = out[c].b.coeffs().data();
        adds.push_back(
            {dst, dst, sigma[c].b.coeffs().data(), &mod, n});
    }
    backend.addBatch(adds.data(), adds.size());
}

GlweCiphertext
applyGalois(const TfheContext &ctx, const GaloisKey &key,
            const GlweCiphertext &ct)
{
    GlweCiphertext out;
    applyGaloisBatch(ctx, key, &ct, &out, 1);
    return out;
}

} // namespace pir
} // namespace trinity
