#include "pir/params.h"

#include "common/logging.h"
#include "common/primes.h"

namespace trinity {
namespace pir {

namespace {

TfheParams
pirRing(const char *name, size_t big_n)
{
    TfheParams p;
    p.name = name;
    p.bigN = big_n;
    p.k = 1;
    p.nLwe = 1; // PIR never touches the LWE layer
    // The CMux tree multiplies the converted GSW rows' noise by
    // ~sqrt(N * extRows) * Bg/2, and those rows already carry the
    // expansion + conversion noise — a ~2^60 modulus buys the ~20 bits
    // of headroom that chain needs at N = 2048 (a 32-bit ring fails
    // empirically: the tree lands a few bits above Delta/2).
    p.q = nearestNttPrime(1ULL << 60, 2 * big_n);
    // External-product gadget: 40 digit bits against the top of q.
    // The q/Bg^lb ~ 2^20 truncation rides the fold as eps (*) s (*)
    // pt — a double convolution whose tail needs ~9 bits of slack
    // under Delta/2 at N = 2048 (32 covered bits fail empirically);
    // keeping lb at 8 keeps the resident database and the fold's MAC
    // work at 8 rows per record rather than a full-width 12-15.
    p.lb = 8;
    p.logBg = 5;
    // Galois-keyswitch gadget: full-width (15 * 4 = 60 bits, exact).
    // The expansion applies ~2^m keyswitches whose noise compounds
    // through the doubling walk and then feeds the GSW conversion, so
    // a truncated KS gadget's rounding term (amplified by sigma(s))
    // is the one approximation this pipeline cannot afford.
    p.lk = 15;
    p.logBks = 4;
    return p;
}

} // namespace

u32
PirParams::expansionLevels() const
{
    size_t need = queryCoeffs();
    u32 m = 0;
    while ((size_t(1) << m) < need) {
        ++m;
    }
    return m;
}

u64
PirParams::delta() const
{
    u64 p = 1ULL << logP;
    return (tfhe.q + p / 2) / p;
}

PirParams
PirParams::standard()
{
    PirParams p;
    p.tfhe = pirRing("pir-std", 2048);
    p.dim1 = 64;
    p.gswDims = 3;
    p.logP = 8;
    p.logQs = 20;
    p.validate();
    return p;
}

PirParams
PirParams::withShape(size_t dim1, u32 gsw_dims)
{
    PirParams p = standard();
    p.dim1 = dim1;
    p.gswDims = gsw_dims;
    p.validate();
    return p;
}

PirParams
PirParams::testTiny()
{
    PirParams p;
    p.tfhe = pirRing("pir-tiny", 256);
    p.dim1 = 8;
    p.gswDims = 2;
    p.logP = 4;
    p.logQs = 20;
    p.validate();
    return p;
}

void
PirParams::validate() const
{
    trinity_assert(tfhe.q != 0, "PirParams ring not initialized");
    trinity_assert(tfhe.k == 1, "PIR assumes k = 1 (RLWE)");
    trinity_assert(dim1 >= 2 && (dim1 & (dim1 - 1)) == 0,
                   "dim1 must be a power of two >= 2 (got %zu)", dim1);
    trinity_assert(logP >= 1 && logP <= 8,
                   "logP must be in [1, 8] (records pack as bytes)");
    trinity_assert(logQs >= logP + 2 && logQs <= 32,
                   "logQs out of range");
    trinity_assert((size_t(1) << expansionLevels()) <= tfhe.bigN,
                   "query does not fit one ring element: dim1 + "
                   "gswDims*lb = %zu needs 2^m > N = %zu",
                   queryCoeffs(), tfhe.bigN);
    trinity_assert(tfhe.extRows() <= 16,
                   "fold/CMux lazy accumulation assumes <= 16 rows");
}

} // namespace pir
} // namespace trinity
