/**
 * @file
 * OnionPIR-style parameter sets.
 *
 * A PIR deployment wraps one TFHE ring (single NTT prime q ~ 2^60,
 * negacyclic R_q = Z_q[X]/(X^N + 1)) with a database shape: the
 * records live on a (dim1 x 2^gswDims) grid. The first dimension is
 * resolved by an expanded selection vector folded over the database
 * with gadget-decomposed external products; every remaining dimension
 * costs one GSW-CMux level.
 *
 * Gadget choices differ from the PBS sets because the noise path is
 * deeper: the Galois keyswitch gadget covers the full modulus
 * (logBks * lk = 60, exact — its rounding term would otherwise ride
 * the whole expansion walk into the GSW conversion), while the
 * external-product gadget decomposes only the top 32 bits
 * (logBg * lb = 32) and leaves a q/Bg^lb ~ 2^28 approximation term
 * that sits far below Delta/2. docs/PIR.md walks the budget.
 */

#ifndef TRINITY_PIR_PARAMS_H
#define TRINITY_PIR_PARAMS_H

#include <cstddef>

#include "tfhe/params.h"

namespace trinity {
namespace pir {

/** PIR scheme + database-shape parameters. */
struct PirParams
{
    /** Ring and gadget parameters (k = 1; lb/logBg drive the fold and
     *  CMux external products, lk/logBks the expansion keyswitch). */
    TfheParams tfhe;

    /** First-dimension width (power of two, <= N / 2). */
    size_t dim1 = 64;
    /** CMux-tree depth; the database has 2^gswDims columns. */
    u32 gswDims = 3;
    /** Plaintext bits per record coefficient (p = 2^logP). */
    u32 logP = 2;
    /** Response modulus bits after the final modulus switch. */
    u32 logQs = 20;

    // --- derived shape ---------------------------------------------------
    size_t columns() const { return size_t(1) << gswDims; }
    size_t records() const { return dim1 << gswDims; }
    /** Plaintext payload of one record, in (logical, packed) bytes. */
    size_t recordBytes() const { return tfhe.bigN * logP / 8; }
    /** Raw at-rest database bytes (packed plaintext). */
    size_t rawBytes() const { return records() * recordBytes(); }
    /** Serving working-set bytes per record: the lb gadget-scaled
     *  NTT-domain copies the fold streams (see database.h). */
    size_t residentBytesPerRecord() const
    {
        return size_t(tfhe.lb) * tfhe.bigN * sizeof(u64);
    }
    size_t residentBytes() const
    {
        return records() * residentBytesPerRecord();
    }

    /** Plaintext coefficients one query ciphertext carries: dim1
     *  selection slots plus lb gadget slots per GSW dimension. */
    size_t queryCoeffs() const { return dim1 + size_t(gswDims) * tfhe.lb; }
    /** Expansion depth m: the query expands into 2^m ciphertexts. */
    u32 expansionLevels() const;
    /** Message scale Delta = round(q / p). */
    u64 delta() const;
    /** Response size (k+1 components, N coefficients of logQs bits). */
    size_t responseBytes() const
    {
        return (tfhe.k + 1) * tfhe.bigN * logQs / 8;
    }

    /** Serving default: N=2048 ring, byte records (logP=8). */
    static PirParams standard();
    /** standard() ring with an explicit database shape. */
    static PirParams withShape(size_t dim1, u32 gswDims);
    /** Reduced set for fast unit tests (N=256). */
    static PirParams testTiny();

    /** Fatal unless the shape is expandable and decodable. */
    void validate() const;
};

} // namespace pir
} // namespace trinity

#endif // TRINITY_PIR_PARAMS_H
