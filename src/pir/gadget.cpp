#include "pir/gadget.h"

#include "common/logging.h"

namespace trinity {
namespace pir {

Gadget::Gadget(u64 q, u32 log_b, u32 levels)
    : q_(q), log_b_(log_b), levels_(levels)
{
    trinity_assert(log_b >= 1 && levels >= 1 &&
                       u64(log_b) * levels <= 64,
                   "unsupported gadget shape logB=%u levels=%u", log_b,
                   levels);
    g_.resize(levels);
    for (u32 l = 0; l < levels; ++l) {
        u128 denom = u128(1) << (log_b * (l + 1));
        g_[l] = static_cast<u64>((u128(q) + denom / 2) / denom);
    }
}

void
Gadget::decompose(u64 x, i64 *digits) const
{
    u64 b = 1ULL << log_b_;
    u64 half_b = b >> 1;
    // y = round(x * B^levels / q) in [0, B^levels]
    u128 scale = u128(1) << (log_b_ * levels_);
    u128 y = (u128(x) * scale + q_ / 2) / q_;
    // Balanced base-B digits, least significant last in storage
    // order; the final carry wraps modulo B^levels (equivalent to
    // subtracting q).
    u64 carry = 0;
    for (u32 l = levels_; l-- > 0;) {
        u64 r = static_cast<u64>(y & (b - 1)) + carry;
        y >>= log_b_;
        if (r >= half_b) {
            digits[l] = static_cast<i64>(r) - static_cast<i64>(b);
            carry = 1;
        } else {
            digits[l] = static_cast<i64>(r);
            carry = 0;
        }
    }
}

} // namespace pir
} // namespace trinity
