/**
 * @file
 * TFHE Programmable Bootstrapping — Algorithm 2 of the paper:
 * ModSwitch, Blind Rotation (n_lwe CMux/external-product iterations),
 * SampleExtract, and the TFHE KeySwitch back to the small LWE key.
 */

#ifndef TRINITY_TFHE_PBS_H
#define TRINITY_TFHE_PBS_H

#include <functional>

#include "tfhe/core.h"

namespace trinity {

/** Bootstrapping key: one GGSW per LWE key bit, NTT domain. */
struct TfheBootstrapKey
{
    std::vector<GgswCiphertext> bsk;
};

/** KeySwitch key: kN x lk LWE encryptions of s_glwe[i] * gks_j. */
struct TfheKeySwitchKey
{
    std::vector<std::vector<LweCiphertext>> rows;
    u32 logB = 0;
    u32 levels = 0;
};

/** Runs Algorithm 2 and generates its key material. */
class TfheBootstrapper
{
  public:
    explicit TfheBootstrapper(std::shared_ptr<TfheContext> ctx);

    /** bsk: GGSW encryptions of each LWE key bit under the GLWE key.
     *  With @p toEval (the default) every GGSW is moved to the NTT
     *  domain at keygen — the single-tenant fast path. Pass false to
     *  keep the key in coefficient ("at rest" / wire) form, the shape
     *  a multi-tenant keystore holds durably and materializes into
     *  NTT form lazily on first use (runtime::KeyStore). */
    TfheBootstrapKey makeBootstrapKey(const LweSecretKey &lwe_sk,
                                      const GlweSecretKey &glwe_sk,
                                      bool toEval = true);

    /** ksk: extracted-key to LWE-key switching material. */
    TfheKeySwitchKey makeKeySwitchKey(const GlweSecretKey &from,
                                      const LweSecretKey &to);

    /** ModSwitch: round x from Z_q to Z_{2N}. */
    u64 modSwitch(u64 x) const;

    /**
     * Blind Rotation: returns a GLWE holding tv * X^{-phase~} where
     * phase~ is the mod-switched phase of @p ct.
     */
    GlweCiphertext blindRotate(const LweCiphertext &ct, const Poly &tv,
                               const TfheBootstrapKey &bsk) const;

    /** SampleExtract: LWE of coefficient @p idx under the wide key. */
    LweCiphertext sampleExtract(const GlweCiphertext &acc,
                                size_t idx) const;

    /** TFHE KeySwitch (Algorithm 2 lines 16-17). */
    LweCiphertext keySwitch(const LweCiphertext &wide,
                            const TfheKeySwitchKey &ksk) const;

    /** Full PBS: blind rotate + extract + keyswitch. */
    LweCiphertext pbs(const LweCiphertext &in, const Poly &tv,
                      const TfheBootstrapKey &bsk,
                      const TfheKeySwitchKey &ksk) const;

    // --- batch-shaped entry points (the serving runtime's job stream)

    /**
     * Batched Blind Rotation: runs the n_lwe CMux steps of @p count
     * independent ciphertexts in lockstep against each bootstrap-key
     * GGSW, issuing every step's decompositions, NTTs, and MACs as
     * wide backend batches (count * (k+1) * lb limbs per call).
     * cts[j] / tvs[j] are request j's input and test vector.
     * Bit-identical per request to blindRotate() on every engine.
     */
    std::vector<GlweCiphertext>
    blindRotateBatch(const LweCiphertext *const *cts,
                     const Poly *const *tvs, size_t count,
                     const TfheBootstrapKey &bsk) const;

    /** Batched SampleExtract of coefficient @p idx. */
    std::vector<LweCiphertext>
    sampleExtractBatch(const GlweCiphertext *accs, size_t count,
                       size_t idx) const;

    /** Batched TFHE KeySwitch back to the small LWE key. */
    std::vector<LweCiphertext>
    keySwitchBatch(const LweCiphertext *wides, size_t count,
                   const TfheKeySwitchKey &ksk) const;

    /**
     * Batched PBS — Trinity's CU bootstrap batching (Table VII):
     * blind rotation in lockstep, then batched extract + keyswitch.
     * out[j] is bit-identical to pbs(*ins[j], *tvs[j], bsk, ksk).
     */
    std::vector<LweCiphertext>
    pbsBatch(const LweCiphertext *const *ins, const Poly *const *tvs,
             size_t count, const TfheBootstrapKey &bsk,
             const TfheKeySwitchKey &ksk) const;

    /** Test vector with tv[i] = f(i), i in [0, N). */
    Poly makeTestVector(const std::function<u64(size_t)> &f) const;

    /** Constant test vector (sign bootstrap): tv[i] = amplitude. */
    Poly signTestVector(u64 amplitude) const;

  private:
    std::shared_ptr<TfheContext> ctx_;

    /** sampleExtract math without the kernel emission. */
    void extractInto(const GlweCiphertext &acc, size_t idx,
                     LweCiphertext &out) const;
    /** keySwitch math without the kernel emission; returns MAC lanes. */
    u64 keySwitchInto(const LweCiphertext &wide,
                      const TfheKeySwitchKey &ksk,
                      LweCiphertext &out) const;
};

} // namespace trinity

#endif // TRINITY_TFHE_PBS_H
