/**
 * @file
 * Gate bootstrapping: homomorphic boolean gates on LWE-encrypted bits —
 * the API level at which TFHE applications (the NN-x benchmarks,
 * HE3DB's filter predicates) are written.
 *
 * Bits encode as mu = +-q/8; every binary gate is one linear
 * combination followed by a sign-extracting PBS.
 */

#ifndef TRINITY_TFHE_GATES_H
#define TRINITY_TFHE_GATES_H

#include "tfhe/pbs.h"

namespace trinity {

/** Owns the full key set and exposes encrypted boolean algebra. */
class TfheGateBootstrapper
{
  public:
    /** Generate all keys for the given parameter set. */
    TfheGateBootstrapper(const TfheParams &params, u64 seed);

    TfheContext &context() { return *ctx_; }
    const TfheParams &params() const { return ctx_->params(); }

    /** Encrypt one bit. */
    LweCiphertext encryptBit(bool bit);

    /** Noise-free trivial encryption of a constant bit (a = 0). */
    LweCiphertext encryptBitTrivial(bool bit) const;

    /** Decrypt one bit. */
    bool decryptBit(const LweCiphertext &ct) const;

    LweCiphertext gateNand(const LweCiphertext &x,
                           const LweCiphertext &y) const;
    LweCiphertext gateAnd(const LweCiphertext &x,
                          const LweCiphertext &y) const;
    LweCiphertext gateOr(const LweCiphertext &x,
                         const LweCiphertext &y) const;
    LweCiphertext gateXor(const LweCiphertext &x,
                          const LweCiphertext &y) const;
    /** NOT is linear — no bootstrap. */
    LweCiphertext gateNot(const LweCiphertext &x) const;
    /** MUX(sel, a, b) = sel ? a : b (three bootstraps). */
    LweCiphertext gateMux(const LweCiphertext &sel,
                          const LweCiphertext &a,
                          const LweCiphertext &b) const;

    /** Raw PBS access (for benchmarks and the NN workloads). */
    LweCiphertext bootstrapSign(const LweCiphertext &ct) const;

    const TfheBootstrapKey &bootstrapKey() const { return bsk_; }
    const TfheKeySwitchKey &keySwitchKey() const { return ksk_; }
    const LweSecretKey &lweKey() const { return lwe_sk_; }
    const TfheBootstrapper &bootstrapper() const { return *boot_; }
    /** The sign test vector bootstrapSign() evaluates. */
    const Poly &signVector() const { return tv_; }

  private:
    std::shared_ptr<TfheContext> ctx_;
    std::unique_ptr<TfheBootstrapper> boot_;
    LweSecretKey lwe_sk_;
    GlweSecretKey glwe_sk_;
    TfheBootstrapKey bsk_;
    TfheKeySwitchKey ksk_;
    u64 mu_;      ///< q/8 encoding amplitude
    Poly tv_;     ///< sign test vector

    LweCiphertext linear(const LweCiphertext &x, const LweCiphertext &y,
                         i64 cx, i64 cy, u64 bias) const;
};

} // namespace trinity

#endif // TRINITY_TFHE_GATES_H
