#include "tfhe/integer.h"

#include "common/logging.h"

namespace trinity {

TfheUint
TfheIntEvaluator::encrypt(u64 v, size_t width)
{
    TfheUint x;
    x.bits.reserve(width);
    for (size_t i = 0; i < width; ++i) {
        x.bits.push_back(gb_.encryptBit((v >> i) & 1));
    }
    return x;
}

u64
TfheIntEvaluator::decrypt(const TfheUint &x) const
{
    u64 v = 0;
    for (size_t i = 0; i < x.width(); ++i) {
        if (gb_.decryptBit(x.bits[i])) {
            v |= 1ULL << i;
        }
    }
    return v;
}

LweCiphertext
TfheIntEvaluator::lessThan(const TfheUint &a, const TfheUint &b) const
{
    trinity_assert(a.width() == b.width(), "width mismatch");
    // LSB-to-MSB ripple: lt = (~a_i & b_i) | (eq_i & lt_prev).
    LweCiphertext lt = gb_.gateAnd(gb_.gateNot(a.bits[0]), b.bits[0]);
    for (size_t i = 1; i < a.width(); ++i) {
        auto bigger = gb_.gateAnd(gb_.gateNot(a.bits[i]), b.bits[i]);
        auto eq = gb_.gateNot(gb_.gateXor(a.bits[i], b.bits[i]));
        lt = gb_.gateOr(bigger, gb_.gateAnd(eq, lt));
    }
    return lt;
}

LweCiphertext
TfheIntEvaluator::equal(const TfheUint &a, const TfheUint &b) const
{
    trinity_assert(a.width() == b.width(), "width mismatch");
    LweCiphertext eq = gb_.gateNot(gb_.gateXor(a.bits[0], b.bits[0]));
    for (size_t i = 1; i < a.width(); ++i) {
        eq = gb_.gateAnd(
            eq, gb_.gateNot(gb_.gateXor(a.bits[i], b.bits[i])));
    }
    return eq;
}

TfheUint
TfheIntEvaluator::add(const TfheUint &a, const TfheUint &b) const
{
    trinity_assert(a.width() == b.width(), "width mismatch");
    TfheUint out;
    out.bits.reserve(a.width());
    // Full adder: sum = a ^ b ^ c; carry = (a & b) | (c & (a ^ b)).
    LweCiphertext carry = gb_.encryptBitTrivial(false);
    for (size_t i = 0; i < a.width(); ++i) {
        auto axb = gb_.gateXor(a.bits[i], b.bits[i]);
        out.bits.push_back(gb_.gateXor(axb, carry));
        auto gen = gb_.gateAnd(a.bits[i], b.bits[i]);
        auto prop = gb_.gateAnd(carry, axb);
        carry = gb_.gateOr(gen, prop);
    }
    return out;
}

TfheUint
TfheIntEvaluator::select(const LweCiphertext &sel, const TfheUint &a,
                         const TfheUint &b) const
{
    trinity_assert(a.width() == b.width(), "width mismatch");
    TfheUint out;
    out.bits.reserve(a.width());
    for (size_t i = 0; i < a.width(); ++i) {
        out.bits.push_back(gb_.gateMux(sel, a.bits[i], b.bits[i]));
    }
    return out;
}

LweCiphertext
TfheIntEvaluator::inRange(const TfheUint &x, const TfheUint &lo,
                          const TfheUint &hi) const
{
    auto below_lo = lessThan(x, lo);
    auto below_hi = lessThan(x, hi);
    return gb_.gateAnd(gb_.gateNot(below_lo), below_hi);
}

} // namespace trinity
