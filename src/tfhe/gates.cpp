#include "tfhe/gates.h"

#include "common/logging.h"

namespace trinity {

TfheGateBootstrapper::TfheGateBootstrapper(const TfheParams &params,
                                           u64 seed)
    : ctx_(std::make_shared<TfheContext>(params, seed)),
      boot_(std::make_unique<TfheBootstrapper>(ctx_)),
      tv_(params.bigN, params.q)
{
    lwe_sk_ = ctx_->makeLweKey();
    glwe_sk_ = ctx_->makeGlweKey();
    bsk_ = boot_->makeBootstrapKey(lwe_sk_, glwe_sk_);
    ksk_ = boot_->makeKeySwitchKey(glwe_sk_, lwe_sk_);
    mu_ = params.q / 8;
    tv_ = boot_->signTestVector(mu_);
}

LweCiphertext
TfheGateBootstrapper::encryptBit(bool bit)
{
    u64 m = bit ? mu_ : ctx_->modulus().neg(mu_);
    return ctx_->lweEncrypt(m, lwe_sk_);
}

LweCiphertext
TfheGateBootstrapper::encryptBitTrivial(bool bit) const
{
    LweCiphertext ct;
    ct.a.assign(ctx_->params().nLwe, 0);
    ct.b = bit ? mu_ : ctx_->modulus().neg(mu_);
    return ct;
}

bool
TfheGateBootstrapper::decryptBit(const LweCiphertext &ct) const
{
    u64 phase = ctx_->lwePhase(ct, lwe_sk_);
    return centeredRep(phase, ctx_->q()) > 0;
}

LweCiphertext
TfheGateBootstrapper::linear(const LweCiphertext &x,
                             const LweCiphertext &y, i64 cx, i64 cy,
                             u64 bias) const
{
    const Modulus &m = ctx_->modulus();
    u64 rx = toResidue(cx, ctx_->q());
    u64 ry = toResidue(cy, ctx_->q());
    LweCiphertext out;
    out.a.resize(x.a.size());
    for (size_t i = 0; i < x.a.size(); ++i) {
        out.a[i] = m.add(m.mul(rx, x.a[i]), m.mul(ry, y.a[i]));
    }
    out.b = m.add(m.add(m.mul(rx, x.b), m.mul(ry, y.b)), bias);
    return out;
}

LweCiphertext
TfheGateBootstrapper::bootstrapSign(const LweCiphertext &ct) const
{
    LweCiphertext fresh = boot_->pbs(ct, tv_, bsk_, ksk_);
    // The sign bootstrap lands at +-q/8 exactly; nothing to adjust.
    return fresh;
}

LweCiphertext
TfheGateBootstrapper::gateNand(const LweCiphertext &x,
                               const LweCiphertext &y) const
{
    // phase = q/8 - x - y : positive unless both inputs are true.
    return bootstrapSign(linear(x, y, -1, -1, mu_));
}

LweCiphertext
TfheGateBootstrapper::gateAnd(const LweCiphertext &x,
                              const LweCiphertext &y) const
{
    // phase = x + y - q/8 : positive only when both are true.
    return bootstrapSign(linear(x, y, 1, 1, ctx_->modulus().neg(mu_)));
}

LweCiphertext
TfheGateBootstrapper::gateOr(const LweCiphertext &x,
                             const LweCiphertext &y) const
{
    // phase = x + y + q/8 : negative only when both are false.
    return bootstrapSign(linear(x, y, 1, 1, mu_));
}

LweCiphertext
TfheGateBootstrapper::gateXor(const LweCiphertext &x,
                              const LweCiphertext &y) const
{
    // phase = 2(x + y) + q/4 : the doubling folds (1,1) and (0,0)
    // onto -q/4 and the mixed cases onto +q/4.
    u64 quarter = ctx_->q() / 4;
    return bootstrapSign(linear(x, y, 2, 2, quarter));
}

LweCiphertext
TfheGateBootstrapper::gateNot(const LweCiphertext &x) const
{
    const Modulus &m = ctx_->modulus();
    LweCiphertext out;
    out.a.resize(x.a.size());
    for (size_t i = 0; i < x.a.size(); ++i) {
        out.a[i] = m.neg(x.a[i]);
    }
    out.b = m.neg(x.b);
    return out;
}

LweCiphertext
TfheGateBootstrapper::gateMux(const LweCiphertext &sel,
                              const LweCiphertext &a,
                              const LweCiphertext &b) const
{
    LweCiphertext t = gateAnd(sel, a);
    LweCiphertext f = gateAnd(gateNot(sel), b);
    return gateOr(t, f);
}

} // namespace trinity
