#include "tfhe/pbs.h"

#include <cstring>

#include "backend/observer.h"
#include "backend/registry.h"
#include "common/logging.h"

namespace trinity {

TfheBootstrapper::TfheBootstrapper(std::shared_ptr<TfheContext> ctx)
    : ctx_(std::move(ctx))
{
}

TfheBootstrapKey
TfheBootstrapper::makeBootstrapKey(const LweSecretKey &lwe_sk,
                                   const GlweSecretKey &glwe_sk,
                                   bool toEval)
{
    TfheBootstrapKey out;
    out.bsk.reserve(lwe_sk.s.size());
    for (i64 bit : lwe_sk.s) {
        GgswCiphertext g = ctx_->ggswEncrypt(bit, glwe_sk);
        if (toEval) {
            ctx_->ggswToEval(g);
        }
        out.bsk.push_back(std::move(g));
    }
    return out;
}

TfheKeySwitchKey
TfheBootstrapper::makeKeySwitchKey(const GlweSecretKey &from,
                                   const LweSecretKey &to)
{
    const auto &p = ctx_->params();
    LweSecretKey wide = from.extractLweKey();
    TfheKeySwitchKey ksk;
    ksk.logB = p.logBks;
    ksk.levels = p.lk;
    ksk.rows.resize(wide.s.size());
    const Modulus &m = ctx_->modulus();
    for (size_t i = 0; i < wide.s.size(); ++i) {
        ksk.rows[i].reserve(p.lk);
        for (u32 j = 0; j < p.lk; ++j) {
            u128 denom = u128(1) << (p.logBks * (j + 1));
            u64 g = static_cast<u64>((u128(p.q) + denom / 2) / denom);
            u64 msg = wide.s[i] ? g : 0;
            (void)m;
            ksk.rows[i].push_back(ctx_->lweEncrypt(msg, to));
        }
    }
    return ksk;
}

u64
TfheBootstrapper::modSwitch(u64 x) const
{
    const auto &p = ctx_->params();
    u64 two_n = 2 * p.bigN;
    // round(2N * x / q) mod 2N
    u128 num = u128(x) * two_n + p.q / 2;
    return static_cast<u64>(num / p.q) % two_n;
}

GlweCiphertext
TfheBootstrapper::blindRotate(const LweCiphertext &ct, const Poly &tv,
                              const TfheBootstrapKey &bsk) const
{
    const auto &p = ctx_->params();
    u64 two_n = 2 * p.bigN;
    trinity_assert(ct.a.size() == bsk.bsk.size(),
                   "bsk/ciphertext dimension mismatch");
    emitKernel(sim::KernelType::ModSwitch, ct.a.size() + 1, p.bigN);
    u64 b_tilde = modSwitch(ct.b);
    // ACC_0 = Rotate(tv, -b~)  (Algorithm 2 line 2).
    GlweCiphertext acc =
        ctx_->glweMulMonomial(ctx_->glweTrivial(tv), two_n - b_tilde);
    for (size_t i = 0; i < ct.a.size(); ++i) {
        u64 a_tilde = modSwitch(ct.a[i]);
        if (a_tilde == 0) {
            continue;
        }
        // ACC = CMux(bsk_i, ACC, X^{a~_i} * ACC): selects the rotated
        // accumulator when s_i = 1 (lines 5-11).
        GlweCiphertext rotated = ctx_->glweMulMonomial(acc, a_tilde);
        acc = ctx_->cmux(bsk.bsk[i], acc, rotated);
    }
    return acc;
}

void
TfheBootstrapper::extractInto(const GlweCiphertext &acc, size_t idx,
                              LweCiphertext &out) const
{
    const auto &p = ctx_->params();
    size_t n = p.bigN;
    const Modulus &m = ctx_->modulus();
    trinity_assert(idx < n, "extract index out of range");
    out.a.resize(p.k * n);
    for (size_t j = 0; j < p.k; ++j) {
        const Poly &aj = acc.a[j];
        trinity_assert(aj.domain() == Domain::Coeff,
                       "sample extract needs coefficient domain");
        for (size_t i = 0; i < n; ++i) {
            // a'_{jN+i} = A_j[idx-i], negacyclic wrap brings a sign.
            u64 v;
            if (i <= idx) {
                v = aj[idx - i];
            } else {
                v = m.neg(aj[n + idx - i]);
            }
            out.a[j * n + i] = v;
        }
    }
    out.b = acc.b[idx];
}

LweCiphertext
TfheBootstrapper::sampleExtract(const GlweCiphertext &acc,
                                size_t idx) const
{
    const auto &p = ctx_->params();
    emitKernel(sim::KernelType::SampleExtract, p.k * p.bigN, p.bigN);
    LweCiphertext out;
    extractInto(acc, idx, out);
    return out;
}

u64
TfheBootstrapper::keySwitchInto(const LweCiphertext &wide,
                                const TfheKeySwitchKey &ksk,
                                LweCiphertext &out) const
{
    const auto &p = ctx_->params();
    const Modulus &m = ctx_->modulus();
    trinity_assert(wide.a.size() == ksk.rows.size(),
                   "ksk dimension mismatch");
    out.a.assign(p.nLwe, 0);
    out.b = wide.b;
    // c'' = (0,...,0,b') - sum_i sum_j d_ij * ksk[i][j]
    u32 lk = ksk.levels;
    u32 log_b = ksk.logB;
    u64 base = 1ULL << log_b;
    u64 half = base >> 1;
    u64 mac_lanes = 0;
    std::vector<i64> digits(lk);
    for (size_t i = 0; i < wide.a.size(); ++i) {
        u64 x = wide.a[i];
        if (x == 0) {
            continue;
        }
        // Balanced base-B decomposition of x (lk levels).
        u128 scale = u128(1) << (log_b * lk);
        u128 y = (u128(x) * scale + p.q / 2) / p.q;
        u64 carry = 0;
        for (u32 l = lk; l-- > 0;) {
            u64 r = static_cast<u64>(y & (base - 1)) + carry;
            y >>= log_b;
            if (r >= half) {
                digits[l] = static_cast<i64>(r) - static_cast<i64>(base);
                carry = 1;
            } else {
                digits[l] = static_cast<i64>(r);
                carry = 0;
            }
        }
        for (u32 j = 0; j < lk; ++j) {
            if (digits[j] == 0) {
                continue;
            }
            u64 d = toResidue(digits[j], p.q);
            const LweCiphertext &row = ksk.rows[i][j];
            for (size_t t = 0; t < p.nLwe; ++t) {
                out.a[t] = m.sub(out.a[t], m.mul(d, row.a[t]));
            }
            out.b = m.sub(out.b, m.mul(d, row.b));
            mac_lanes += p.nLwe + 1;
        }
    }
    return mac_lanes;
}

LweCiphertext
TfheBootstrapper::keySwitch(const LweCiphertext &wide,
                            const TfheKeySwitchKey &ksk) const
{
    LweCiphertext out;
    u64 mac_lanes = keySwitchInto(wide, ksk, out);
    emitKernel(sim::KernelType::LweKs, mac_lanes,
               ctx_->params().nLwe);
    return out;
}

LweCiphertext
TfheBootstrapper::pbs(const LweCiphertext &in, const Poly &tv,
                      const TfheBootstrapKey &bsk,
                      const TfheKeySwitchKey &ksk) const
{
    OpScope scope("PBS");
    GlweCiphertext acc = blindRotate(in, tv, bsk);
    LweCiphertext wide = sampleExtract(acc, 0);
    return keySwitch(wide, ksk);
}

std::vector<GlweCiphertext>
TfheBootstrapper::blindRotateBatch(const LweCiphertext *const *cts,
                                   const Poly *const *tvs, size_t count,
                                   const TfheBootstrapKey &bsk) const
{
    const auto &p = ctx_->params();
    u64 two_n = 2 * p.bigN;
    std::vector<GlweCiphertext> accs;
    if (count == 0) {
        return accs;
    }
    accs.reserve(count);
    emitKernel(sim::KernelType::ModSwitch,
               count * (cts[0]->a.size() + 1), p.bigN);
    for (size_t j = 0; j < count; ++j) {
        trinity_assert(cts[j]->a.size() == bsk.bsk.size(),
                       "bsk/ciphertext dimension mismatch");
        u64 b_tilde = modSwitch(cts[j]->b);
        // ACC_0 = Rotate(tv, -b~) per request (Algorithm 2 line 2).
        accs.push_back(ctx_->glweMulMonomial(ctx_->glweTrivial(*tvs[j]),
                                             two_n - b_tilde));
    }
    // Lockstep over the LWE mask: step i applies bsk_i to every
    // request at once, so the GGSW rows are read once per step for
    // the whole batch instead of once per request. All n_lwe steps
    // are recorded into ONE command stream: each request carries its
    // own dependency chain through the steps, so a pipelined engine
    // runs the NTTs of step i+1 under the MACs of step i (and the
    // timing backend prices exactly that overlap). Rotation amounts
    // are captured at record time, so the rot buffer is reusable
    // per step. The scratch outlives the stream (declared first) and
    // is pooled per thread across calls — its decomposition/product
    // polynomials are sized once for a given GLWE shape, so the PBS
    // hot loop stops allocating after the first batch. A shape change
    // (different params or a wider batch) rebuilds it.
    static thread_local CmuxBatchScratch scratch;
    static thread_local u64 scratch_shape[4] = {0, 0, 0, 0};
    u64 shape[4] = {p.bigN, p.q, p.k, p.extRows()};
    if (std::memcmp(shape, scratch_shape, sizeof shape) != 0) {
        scratch = CmuxBatchScratch{};
        std::memcpy(scratch_shape, shape, sizeof shape);
    }
    auto stream = activeBackend().newStream();
    std::vector<u64> rot(count);
    for (size_t i = 0; i < bsk.bsk.size(); ++i) {
        for (size_t j = 0; j < count; ++j) {
            rot[j] = modSwitch(cts[j]->a[i]);
        }
        ctx_->recordCmuxRotateBatch(*stream, bsk.bsk[i], accs.data(),
                                    rot.data(), count, scratch);
    }
    stream->submit();
    stream->wait();
    return accs;
}

std::vector<LweCiphertext>
TfheBootstrapper::sampleExtractBatch(const GlweCiphertext *accs,
                                     size_t count, size_t idx) const
{
    const auto &p = ctx_->params();
    std::vector<LweCiphertext> out(count);
    emitKernel(sim::KernelType::SampleExtract, count * p.k * p.bigN,
               p.bigN);
    activeBackend().run(count, [&](size_t j) {
        extractInto(accs[j], idx, out[j]);
    });
    return out;
}

std::vector<LweCiphertext>
TfheBootstrapper::keySwitchBatch(const LweCiphertext *wides, size_t count,
                                 const TfheKeySwitchKey &ksk) const
{
    const auto &p = ctx_->params();
    std::vector<LweCiphertext> out(count);
    std::vector<u64> lanes(count, 0);
    activeBackend().run(count, [&](size_t j) {
        lanes[j] = keySwitchInto(wides[j], ksk, out[j]);
    });
    u64 mac_lanes = 0;
    for (u64 l : lanes) {
        mac_lanes += l;
    }
    emitKernel(sim::KernelType::LweKs, mac_lanes, p.nLwe);
    return out;
}

std::vector<LweCiphertext>
TfheBootstrapper::pbsBatch(const LweCiphertext *const *ins,
                           const Poly *const *tvs, size_t count,
                           const TfheBootstrapKey &bsk,
                           const TfheKeySwitchKey &ksk) const
{
    OpScope scope("PBS");
    std::vector<GlweCiphertext> accs =
        blindRotateBatch(ins, tvs, count, bsk);
    std::vector<LweCiphertext> wides =
        sampleExtractBatch(accs.data(), count, 0);
    return keySwitchBatch(wides.data(), count, ksk);
}

Poly
TfheBootstrapper::makeTestVector(
    const std::function<u64(size_t)> &f) const
{
    const auto &p = ctx_->params();
    Poly tv(p.bigN, p.q);
    for (size_t i = 0; i < p.bigN; ++i) {
        tv[i] = f(i);
    }
    return tv;
}

Poly
TfheBootstrapper::signTestVector(u64 amplitude) const
{
    return makeTestVector([amplitude](size_t) { return amplitude; });
}

} // namespace trinity
