/**
 * @file
 * TFHE parameter sets.
 *
 * Table IV of the paper:
 *   Set-I   : N=1024, n_lwe=500, k=1, lb=2, 80-bit security
 *   Set-II  : N=1024, n_lwe=630, k=1, lb=3, 110-bit
 *   Set-III : N=2048, n_lwe=592, k=1, lb=3, 128-bit
 *
 * Following the paper's FFT->NTT substitution (Section II-B), the
 * coefficient modulus is the NTT-friendly prime closest to the 2^32
 * torus modulus: q = nearestNttPrime(2^32, 2N). All arithmetic is then
 * exact — the advantage Trinity gets over FFT-based designs.
 */

#ifndef TRINITY_TFHE_PARAMS_H
#define TRINITY_TFHE_PARAMS_H

#include <cstddef>
#include <string>

#include "common/types.h"

namespace trinity {

/** TFHE scheme parameters (Table I notation). */
struct TfheParams
{
    std::string name;   ///< label used in benchmark output
    size_t bigN = 1024; ///< GLWE polynomial size N
    size_t k = 1;       ///< GLWE dimension
    size_t nLwe = 500;  ///< LWE dimension n_lwe
    u32 lb = 2;         ///< decomposition levels of bsk
    u32 logBg = 11;     ///< log2 of the bsk decomposition base
    u32 lk = 5;         ///< decomposition levels of ksk
    u32 logBks = 4;     ///< log2 of the ksk decomposition base
    u64 q = 0;          ///< prime modulus (filled by make())
    double sigmaLwe = 3.2;  ///< LWE noise stddev (absolute)
    double sigmaGlwe = 3.2; ///< GLWE noise stddev (absolute)

    /** Decomposed rows per external product: (k+1) * lb. */
    size_t extRows() const { return (k + 1) * lb; }

    /** Table IV Set-I (80-bit). */
    static TfheParams setI();
    /** Table IV Set-II (110-bit). */
    static TfheParams setII();
    /** Table IV Set-III (128-bit). */
    static TfheParams setIII();
    /** Reduced set for fast unit tests. */
    static TfheParams testTiny();

  private:
    /** Fill q from the substitution rule and return. */
    static TfheParams make(TfheParams p);
};

} // namespace trinity

#endif // TRINITY_TFHE_PARAMS_H
