/**
 * @file
 * TFHE ciphertext types and core operations: LWE, GLWE, GGSW, gadget
 * decomposition, and the NTT-based External Product (Section II-B).
 */

#ifndef TRINITY_TFHE_CORE_H
#define TRINITY_TFHE_CORE_H

#include <memory>
#include <vector>

#include "backend/command_stream.h"
#include "backend/poly_backend.h"
#include "common/rng.h"
#include "poly/poly.h"
#include "tfhe/params.h"

namespace trinity {

/** LWE ciphertext [[m]] = (a, b), b = <a, s> + m + e. */
struct LweCiphertext
{
    std::vector<u64> a;
    u64 b = 0;
};

/** GLWE ciphertext (A_1..A_k, B), B = sum A_j S_j + M + E. */
struct GlweCiphertext
{
    std::vector<Poly> a; ///< k mask polynomials
    Poly b;              ///< body
};

/** GGSW ciphertext: (k+1)*lb GLWE rows holding mu * gadget. */
struct GgswCiphertext
{
    /** rows[j*lb + l]: mu*g_l added to component j (j = k is the body). */
    std::vector<GlweCiphertext> rows;
    /** Rows pre-transformed to the NTT domain (transform-domain reuse). */
    bool inEval = false;
};

/** Binary LWE secret key. */
struct LweSecretKey
{
    std::vector<i64> s; ///< entries in {0,1}
};

/** GLWE secret key: k binary polynomials. */
struct GlweSecretKey
{
    std::vector<std::vector<i64>> s;

    /** Flatten to the extracted LWE key of dimension k*N. */
    LweSecretKey extractLweKey() const;
};

/**
 * Reusable workspace for the batched CMux steps: the per-request
 * decomposition and product polynomials, indexed by request slot. A
 * serving batch allocates this once (sized on the first recorded
 * step) and reuses it across all n_lwe blind-rotation steps; the
 * per-slot `lastJob` chain orders each slot's reuse of its scratch
 * region across steps when the steps are recorded into one stream.
 * The buffers must stay alive — and must not reallocate — until the
 * stream that recorded them completes, which the fixed per-request
 * sizing guarantees for a constant batch width.
 */
struct CmuxBatchScratch
{
    std::vector<GlweCiphertext> prod; ///< external product per request
    std::vector<Poly> dec;            ///< extRows() polys per request
    std::vector<size_t> active;       ///< requests with rotation != 0
    std::vector<Job> lastJob;         ///< per-request recorded chain tail
    /** CommandStream::id() the lastJob handles belong to (0 = none);
     *  recording into a different stream resets the chains — job ids
     *  are per-stream, and ids (unlike addresses, which the allocator
     *  recycles) never alias across stream instances. */
    u64 boundStream = 0;
};

/** TFHE context: parameters + samplers + gadget precomputation. */
class TfheContext
{
  public:
    TfheContext(const TfheParams &params, u64 seed);

    const TfheParams &params() const { return params_; }
    u64 q() const { return params_.q; }
    const Modulus &modulus() const { return mod_; }

    // --- key generation -------------------------------------------------
    LweSecretKey makeLweKey();
    GlweSecretKey makeGlweKey();

    // --- LWE -------------------------------------------------------------
    /** Encrypt a raw value m (already scaled into [0,q)). */
    LweCiphertext lweEncrypt(u64 m, const LweSecretKey &sk,
                             double sigma = -1);
    /** Noise-free phase b - <a,s>. */
    u64 lwePhase(const LweCiphertext &ct, const LweSecretKey &sk) const;

    // --- GLWE ------------------------------------------------------------
    GlweCiphertext glweEncrypt(const Poly &m, const GlweSecretKey &sk,
                               double sigma = -1);
    /** Trivial (noise-free, zero-mask) GLWE of a plaintext. */
    GlweCiphertext glweTrivial(const Poly &m) const;
    Poly glwePhase(const GlweCiphertext &ct,
                   const GlweSecretKey &sk) const;

    // --- GGSW and external product ----------------------------------
    /** GGSW encryption of small signed mu (typically a key bit). */
    GgswCiphertext ggswEncrypt(i64 mu, const GlweSecretKey &sk,
                               double sigma = -1);

    /** Move all GGSW rows to the NTT domain (done once at keygen). */
    void ggswToEval(GgswCiphertext &ggsw) const;

    /**
     * Signed gadget decomposition of a residue x into lb digits
     * d_l in [-Bg/2, Bg/2), so x ~ sum d_l * g_l.
     */
    void decomposeScalar(u64 x, i64 *digits) const;

    /** Decompose every coefficient of a GLWE into (k+1)*lb polys. */
    std::vector<Poly> decompose(const GlweCiphertext &ct) const;

    /** Gadget element g_l = round(q / Bg^(l+1)). */
    u64 gadget(u32 level) const { return gadget_[level]; }

    /**
     * External Product: GGSW (x) GLWE via (k+1)*lb forward NTTs, MAC
     * against the transform-domain GGSW rows, and (k+1) inverse NTTs
     * (the inner loop of Algorithm 2).
     */
    GlweCiphertext externalProduct(const GgswCiphertext &ggsw,
                                   const GlweCiphertext &ct) const;

    /** CMux(c, ct0, ct1) = ct0 + c (x) (ct1 - ct0). */
    GlweCiphertext cmux(const GgswCiphertext &c, const GlweCiphertext &ct0,
                        const GlweCiphertext &ct1) const;

    /**
     * One lockstep step of batched blind rotation: for every request
     * j with rotations[j] != 0 (mod 2N),
     *     accs[j] = CMux(ggsw, accs[j], accs[j] * X^{rotations[j]}),
     * recording each request's rotate/decompose -> NTT -> MAC -> iNTT
     * -> accumulate chain into its own dependency pipeline and then
     * executing the stream (record-and-wait wrapper around
     * recordCmuxRotateBatch). Bit-identical to calling cmux() per
     * request; the GGSW is shared across the batch, so its rows stay
     * cache-resident for all count accumulations (Trinity's CU
     * bootstrap batching).
     */
    void cmuxRotateBatch(const GgswCiphertext &ggsw, GlweCiphertext *accs,
                         const u64 *rotations, size_t count,
                         CmuxBatchScratch &scratch) const;

    /**
     * Record one lockstep CMux step into @p stream without executing
     * it (on eager engines recording *is* execution). Each request
     * slot j gets its own dependency chain, linked to the slot's
     * chain tail from the previous step (scratch.lastJob[j]) — so
     * when a whole blind rotation is recorded into one stream, a
     * pipelined engine runs the NTTs of step i+1 under the MACs of
     * step i across slots. Rotation amounts are captured by value at
     * record time; accs, ggsw, and scratch must outlive the stream's
     * wait(). The scratch must not be shared with a wider batch while
     * a stream recorded against it is pending.
     */
    void recordCmuxRotateBatch(CommandStream &stream,
                               const GgswCiphertext &ggsw,
                               GlweCiphertext *accs,
                               const u64 *rotations, size_t count,
                               CmuxBatchScratch &scratch) const;

    /**
     * GGSW encryption of a polynomial message (e.g. -s_j for the
     * RLWE->GSW conversion keys of the PIR query pipeline). The
     * scalar ggswEncrypt() is the mu * X^0 special case.
     */
    GgswCiphertext ggswEncryptPoly(const Poly &mu,
                                   const GlweSecretKey &sk,
                                   double sigma = -1);

    /**
     * Apply the Galois automorphism X -> X^g to every component, as
     * one backend batch (coefficient domain). The result decrypts to
     * sigma_g(m) under the permuted key sigma_g(s) — follow with a
     * keyswitch (pir::GaloisKey) to return to s.
     */
    GlweCiphertext glweAutomorphism(const GlweCiphertext &ct,
                                    u64 g) const;

    /** Multiply every GLWE component by X^t (negacyclic rotate). */
    GlweCiphertext glweMulMonomial(const GlweCiphertext &ct,
                                   u64 t) const;

    /** GLWE addition / subtraction. */
    GlweCiphertext glweAdd(const GlweCiphertext &x,
                           const GlweCiphertext &y) const;
    GlweCiphertext glweSub(const GlweCiphertext &x,
                           const GlweCiphertext &y) const;

    Rng &rng() { return rng_; }

  private:
    TfheParams params_;
    Modulus mod_;
    Rng rng_;
    std::vector<u64> gadget_; ///< g_0..g_{lb-1}
    std::shared_ptr<const NttTable> table_;

    Poly noisePoly(double sigma);
};

} // namespace trinity

#endif // TRINITY_TFHE_CORE_H
