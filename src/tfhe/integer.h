/**
 * @file
 * Encrypted integers on top of gate bootstrapping — the substrate the
 * HE3DB filter (Table X) is built from: radix-encoded values with
 * homomorphic comparison, equality, addition, and selection. Every
 * non-linear step is one PBS, which is exactly the workload shape the
 * he3db model charges (kPbsPerRow).
 */

#ifndef TRINITY_TFHE_INTEGER_H
#define TRINITY_TFHE_INTEGER_H

#include "tfhe/gates.h"

namespace trinity {

/** Bitwise-encrypted unsigned integer (LSB first). */
struct TfheUint
{
    std::vector<LweCiphertext> bits;

    size_t width() const { return bits.size(); }
};

/** Homomorphic integer ALU over a gate bootstrapper. */
class TfheIntEvaluator
{
  public:
    explicit TfheIntEvaluator(TfheGateBootstrapper &gb) : gb_(gb) {}

    /** Encrypt @p v as @p width bits. */
    TfheUint encrypt(u64 v, size_t width);

    /** Decrypt back to an integer. */
    u64 decrypt(const TfheUint &x) const;

    /** [[a < b]] (unsigned ripple comparator, 4 PBS per bit). */
    LweCiphertext lessThan(const TfheUint &a, const TfheUint &b) const;

    /** [[a == b]]. */
    LweCiphertext equal(const TfheUint &a, const TfheUint &b) const;

    /** a + b (mod 2^width), ripple-carry: 5 PBS per bit. */
    TfheUint add(const TfheUint &a, const TfheUint &b) const;

    /** sel ? a : b, bitwise MUX. */
    TfheUint select(const LweCiphertext &sel, const TfheUint &a,
                    const TfheUint &b) const;

    /**
     * The HE3DB-style range predicate lo <= x < hi.
     * Cost: two comparators — the Table X filter primitive.
     */
    LweCiphertext inRange(const TfheUint &x, const TfheUint &lo,
                          const TfheUint &hi) const;

  private:
    TfheGateBootstrapper &gb_;
};

} // namespace trinity

#endif // TRINITY_TFHE_INTEGER_H
