#include "tfhe/params.h"

#include "common/primes.h"

namespace trinity {

TfheParams
TfheParams::make(TfheParams p)
{
    p.q = nearestNttPrime(1ULL << 32, 2 * p.bigN);
    return p;
}

TfheParams
TfheParams::setI()
{
    TfheParams p;
    p.name = "Set-I";
    p.bigN = 1024;
    p.k = 1;
    p.nLwe = 500;
    p.lb = 2;
    p.logBg = 11;
    p.lk = 5;
    p.logBks = 4;
    return make(p);
}

TfheParams
TfheParams::setII()
{
    TfheParams p;
    p.name = "Set-II";
    p.bigN = 1024;
    p.k = 1;
    p.nLwe = 630;
    p.lb = 3;
    p.logBg = 8;
    p.lk = 5;
    p.logBks = 4;
    return make(p);
}

TfheParams
TfheParams::setIII()
{
    TfheParams p;
    p.name = "Set-III";
    p.bigN = 2048;
    p.k = 1;
    p.nLwe = 592;
    p.lb = 3;
    p.logBg = 8;
    p.lk = 5;
    p.logBks = 4;
    return make(p);
}

TfheParams
TfheParams::testTiny()
{
    TfheParams p;
    p.name = "test-tiny";
    p.bigN = 256;
    p.k = 1;
    p.nLwe = 64;
    p.lb = 3;
    p.logBg = 8;
    p.lk = 5;
    p.logBks = 4;
    return make(p);
}

} // namespace trinity
