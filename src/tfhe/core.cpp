#include "tfhe/core.h"

#include "backend/observer.h"
#include "backend/registry.h"
#include "common/logging.h"

namespace trinity {

LweSecretKey
GlweSecretKey::extractLweKey() const
{
    LweSecretKey out;
    for (const auto &poly : s) {
        out.s.insert(out.s.end(), poly.begin(), poly.end());
    }
    return out;
}

TfheContext::TfheContext(const TfheParams &params, u64 seed)
    : params_(params), mod_(params.q), rng_(seed)
{
    trinity_assert(params.q != 0, "TfheParams.q not initialized");
    table_ = NttTableCache::get(params.bigN, params.q);
    gadget_.resize(params.lb);
    // g_l = round(q / Bg^(l+1)); q is prime so these are approximate
    // gadget elements — the rounding is absorbed as decomposition
    // noise (Joye-Walter "Liberating TFHE").
    for (u32 l = 0; l < params.lb; ++l) {
        u128 denom = u128(1) << (params.logBg * (l + 1));
        gadget_[l] = static_cast<u64>((u128(params.q) + denom / 2) /
                                      denom);
    }
}

LweSecretKey
TfheContext::makeLweKey()
{
    LweSecretKey k;
    k.s.resize(params_.nLwe);
    for (auto &b : k.s) {
        b = static_cast<i64>(rng_.next() & 1);
    }
    return k;
}

GlweSecretKey
TfheContext::makeGlweKey()
{
    GlweSecretKey k;
    k.s.resize(params_.k);
    for (auto &poly : k.s) {
        poly.resize(params_.bigN);
        for (auto &b : poly) {
            b = static_cast<i64>(rng_.next() & 1);
        }
    }
    return k;
}

LweCiphertext
TfheContext::lweEncrypt(u64 m, const LweSecretKey &sk, double sigma)
{
    if (sigma < 0) {
        sigma = params_.sigmaLwe;
    }
    size_t n = sk.s.size();
    LweCiphertext ct;
    ct.a.resize(n);
    u64 acc = 0;
    for (size_t i = 0; i < n; ++i) {
        ct.a[i] = rng_.uniform(params_.q);
        if (sk.s[i]) {
            acc = mod_.add(acc, ct.a[i]);
        }
    }
    u64 e = toResidue(rng_.gaussian(sigma), params_.q);
    ct.b = mod_.add(mod_.add(acc, mod_.reduce(m)), e);
    return ct;
}

u64
TfheContext::lwePhase(const LweCiphertext &ct, const LweSecretKey &sk) const
{
    trinity_assert(ct.a.size() == sk.s.size(),
                   "LWE dimension mismatch (%zu vs %zu)", ct.a.size(),
                   sk.s.size());
    u64 acc = 0;
    for (size_t i = 0; i < ct.a.size(); ++i) {
        if (sk.s[i]) {
            acc = mod_.add(acc, ct.a[i]);
        }
    }
    return mod_.sub(ct.b, acc);
}

Poly
TfheContext::noisePoly(double sigma)
{
    Poly e(params_.bigN, params_.q);
    for (size_t i = 0; i < params_.bigN; ++i) {
        e[i] = toResidue(rng_.gaussian(sigma), params_.q);
    }
    return e;
}

GlweCiphertext
TfheContext::glweEncrypt(const Poly &m, const GlweSecretKey &sk,
                         double sigma)
{
    if (sigma < 0) {
        sigma = params_.sigmaGlwe;
    }
    trinity_assert(m.n() == params_.bigN && m.q() == params_.q,
                   "plaintext ring mismatch");
    GlweCiphertext ct;
    ct.a.reserve(params_.k);
    Poly body = noisePoly(sigma);
    body.addInPlace(m);
    for (size_t j = 0; j < params_.k; ++j) {
        Poly aj = Poly::uniform(params_.bigN, params_.q, rng_);
        // body += a_j * s_j
        Poly sj(params_.bigN, params_.q);
        for (size_t i = 0; i < params_.bigN; ++i) {
            sj[i] = toResidue(sk.s[j][i], params_.q);
        }
        Poly prod = aj * sj;
        body.addInPlace(prod);
        ct.a.push_back(std::move(aj));
    }
    ct.b = std::move(body);
    return ct;
}

GlweCiphertext
TfheContext::glweTrivial(const Poly &m) const
{
    GlweCiphertext ct;
    for (size_t j = 0; j < params_.k; ++j) {
        ct.a.emplace_back(params_.bigN, params_.q);
    }
    ct.b = m;
    return ct;
}

Poly
TfheContext::glwePhase(const GlweCiphertext &ct,
                       const GlweSecretKey &sk) const
{
    Poly phase = ct.b;
    phase.toCoeff();
    for (size_t j = 0; j < params_.k; ++j) {
        Poly sj(params_.bigN, params_.q);
        for (size_t i = 0; i < params_.bigN; ++i) {
            sj[i] = toResidue(sk.s[j][i], params_.q);
        }
        Poly aj = ct.a[j];
        aj.toCoeff();
        Poly prod = aj * sj;
        phase.subInPlace(prod);
    }
    return phase;
}

GgswCiphertext
TfheContext::ggswEncrypt(i64 mu, const GlweSecretKey &sk, double sigma)
{
    GgswCiphertext out;
    size_t rows = params_.extRows();
    out.rows.reserve(rows);
    Poly zero(params_.bigN, params_.q);
    for (size_t j = 0; j <= params_.k; ++j) {
        for (u32 l = 0; l < params_.lb; ++l) {
            GlweCiphertext row = glweEncrypt(zero, sk, sigma);
            u64 term = mod_.mul(toResidue(mu, params_.q), gadget_[l]);
            if (j < params_.k) {
                row.a[j][0] = mod_.add(row.a[j][0], term);
            } else {
                row.b[0] = mod_.add(row.b[0], term);
            }
            out.rows.push_back(std::move(row));
        }
    }
    return out;
}

GgswCiphertext
TfheContext::ggswEncryptPoly(const Poly &mu, const GlweSecretKey &sk,
                             double sigma)
{
    trinity_assert(mu.n() == params_.bigN && mu.q() == params_.q &&
                       mu.domain() == Domain::Coeff,
                   "ggswEncryptPoly: message ring mismatch");
    GgswCiphertext out;
    out.rows.reserve(params_.extRows());
    Poly zero(params_.bigN, params_.q);
    for (size_t j = 0; j <= params_.k; ++j) {
        for (u32 l = 0; l < params_.lb; ++l) {
            GlweCiphertext row = glweEncrypt(zero, sk, sigma);
            Poly term = mu;
            term.scalarMulInPlace(gadget_[l]);
            if (j < params_.k) {
                row.a[j].addInPlace(term);
            } else {
                row.b.addInPlace(term);
            }
            out.rows.push_back(std::move(row));
        }
    }
    return out;
}

GlweCiphertext
TfheContext::glweAutomorphism(const GlweCiphertext &ct, u64 g) const
{
    GlweCiphertext out;
    out.a.reserve(params_.k);
    for (size_t j = 0; j < params_.k; ++j) {
        out.a.emplace_back(params_.bigN, params_.q);
    }
    out.b = Poly(params_.bigN, params_.q);
    std::vector<AutoJob> jobs;
    jobs.reserve(params_.k + 1);
    for (size_t j = 0; j <= params_.k; ++j) {
        const Poly &src = j < params_.k ? ct.a[j] : ct.b;
        Poly &dst = j < params_.k ? out.a[j] : out.b;
        trinity_assert(src.domain() == Domain::Coeff,
                       "glweAutomorphism needs coefficient domain");
        jobs.push_back({dst.coeffs().data(), src.coeffs().data(),
                        &mod_, params_.bigN, g});
    }
    activeBackend().automorphismBatch(jobs.data(), jobs.size());
    return out;
}

void
TfheContext::ggswToEval(GgswCiphertext &ggsw) const
{
    if (ggsw.inEval) {
        return;
    }
    // One NTT batch over every polynomial of every row.
    std::vector<NttJob> jobs;
    jobs.reserve(ggsw.rows.size() * (params_.k + 1));
    for (auto &row : ggsw.rows) {
        for (auto &aj : row.a) {
            if (aj.domain() == Domain::Coeff) {
                jobs.push_back({aj.coeffs().data(), &aj.nttTable()});
                aj.setDomain(Domain::Eval);
            }
        }
        if (row.b.domain() == Domain::Coeff) {
            jobs.push_back({row.b.coeffs().data(), &row.b.nttTable()});
            row.b.setDomain(Domain::Eval);
        }
    }
    activeBackend().nttForwardBatch(jobs.data(), jobs.size());
    ggsw.inEval = true;
}

void
TfheContext::decomposeScalar(u64 x, i64 *digits) const
{
    u32 lb = params_.lb;
    u32 log_bg = params_.logBg;
    u64 bg = 1ULL << log_bg;
    u64 half_bg = bg >> 1;
    // y = round(x * Bg^lb / q) in [0, Bg^lb]
    u128 scale = u128(1) << (log_bg * lb);
    u128 y = (u128(x) * scale + params_.q / 2) / params_.q;
    // Balanced base-Bg digits, least significant first; final carry
    // wraps modulo Bg^lb (equivalent to subtracting q).
    u64 carry = 0;
    for (u32 l = lb; l-- > 0;) {
        u64 r = static_cast<u64>(y & (bg - 1)) + carry;
        y >>= log_bg;
        if (r >= half_bg) {
            digits[l] = static_cast<i64>(r) - static_cast<i64>(bg);
            carry = 1;
        } else {
            digits[l] = static_cast<i64>(r);
            carry = 0;
        }
    }
}

std::vector<Poly>
TfheContext::decompose(const GlweCiphertext &ct) const
{
    size_t n = params_.bigN;
    u32 lb = params_.lb;
    std::vector<Poly> out;
    out.reserve(params_.extRows());
    for (size_t j = 0; j <= params_.k; ++j) {
        for (u32 l = 0; l < lb; ++l) {
            out.emplace_back(n, params_.q);
        }
    }
    emitKernel(sim::KernelType::Decomp, (params_.k + 1) * n, n);
    activeBackend().run(params_.k + 1, [&](size_t j) {
        const Poly &src = j < params_.k ? ct.a[j] : ct.b;
        trinity_assert(src.domain() == Domain::Coeff,
                       "decompose needs coefficient domain");
        std::vector<i64> digits(lb);
        for (size_t i = 0; i < n; ++i) {
            decomposeScalar(src[i], digits.data());
            for (u32 l = 0; l < lb; ++l) {
                out[j * lb + l][i] = toResidue(digits[l], params_.q);
            }
        }
    });
    return out;
}

GlweCiphertext
TfheContext::externalProduct(const GgswCiphertext &ggsw,
                             const GlweCiphertext &ct) const
{
    trinity_assert(ggsw.inEval,
                   "GGSW must be in the NTT domain (call ggswToEval)");
    auto dec = decompose(ct);
    // Forward NTT of every decomposed polynomial as one batch (the
    // NTT kernels of Algorithm 2 line 9).
    Poly::batchToEval(dec);
    // MAC accumulation against the transform-domain rows; each output
    // polynomial accumulates independently, so fan out across them.
    GlweCiphertext acc;
    for (size_t j = 0; j < params_.k; ++j) {
        acc.a.emplace_back(params_.bigN, params_.q);
        acc.a[j].setDomain(Domain::Eval);
    }
    acc.b = Poly(params_.bigN, params_.q);
    acc.b.setDomain(Domain::Eval);
    size_t n = params_.bigN;
    emitKernel(sim::KernelType::Ip,
               static_cast<u64>(dec.size()) * (params_.k + 1) * n, n);
    activeBackend().run(params_.k + 1, [&](size_t j) {
        Poly &dst = j < params_.k ? acc.a[j] : acc.b;
        for (size_t t = 0; t < dec.size(); ++t) {
            const GlweCiphertext &row = ggsw.rows[t];
            const Poly &rhs = j < params_.k ? row.a[j] : row.b;
            for (size_t c = 0; c < n; ++c) {
                dst[c] = mod_.mulAdd(dec[t][c], rhs[c], dst[c]);
            }
        }
    });
    // Inverse NTTs (Algorithm 2 line 11).
    std::vector<NttJob> jobs;
    jobs.reserve(params_.k + 1);
    for (auto &aj : acc.a) {
        jobs.push_back({aj.coeffs().data(), &aj.nttTable()});
        aj.setDomain(Domain::Coeff);
    }
    jobs.push_back({acc.b.coeffs().data(), &acc.b.nttTable()});
    acc.b.setDomain(Domain::Coeff);
    activeBackend().nttInverseBatch(jobs.data(), jobs.size());
    return acc;
}

GlweCiphertext
TfheContext::cmux(const GgswCiphertext &c, const GlweCiphertext &ct0,
                  const GlweCiphertext &ct1) const
{
    GlweCiphertext diff = glweSub(ct1, ct0);
    GlweCiphertext prod = externalProduct(c, diff);
    return glweAdd(ct0, prod);
}

namespace {

/** Component c of a GLWE, counting the body as component k. */
Poly &
glweComp(GlweCiphertext &ct, size_t c)
{
    return c < ct.a.size() ? ct.a[c] : ct.b;
}

const Poly &
glweComp(const GlweCiphertext &ct, size_t c)
{
    return c < ct.a.size() ? ct.a[c] : ct.b;
}

} // namespace

void
TfheContext::cmuxRotateBatch(const GgswCiphertext &ggsw,
                             GlweCiphertext *accs, const u64 *rotations,
                             size_t count, CmuxBatchScratch &sc) const
{
    // Thin record-and-wait wrapper: one step recorded into a fresh
    // stream. Serving paths that run many steps record them all into
    // one stream instead (see TfheBootstrapper::blindRotateBatch) so
    // consecutive steps pipeline.
    auto stream = activeBackend().newStream();
    recordCmuxRotateBatch(*stream, ggsw, accs, rotations, count, sc);
    stream->submit();
    stream->wait();
}

void
TfheContext::recordCmuxRotateBatch(CommandStream &stream,
                                   const GgswCiphertext &ggsw,
                                   GlweCiphertext *accs,
                                   const u64 *rotations, size_t count,
                                   CmuxBatchScratch &sc) const
{
    trinity_assert(ggsw.inEval,
                   "GGSW must be in the NTT domain (call ggswToEval)");
    size_t n = params_.bigN;
    size_t comps = params_.k + 1;
    size_t rows = params_.extRows();
    u64 two_n = 2 * n;
    u32 lb = params_.lb;
    // Bounds the fixed-size digit/pointer arrays below and guarantees
    // the lazy MAC accumulation cannot overflow 128 bits.
    trinity_assert(rows <= 16 && params_.q < (1ULL << 61),
                   "cmuxRotateBatch: unsupported gadget shape");

    // A zero rotation is a no-op CMux (the sequential path skips it);
    // record the step over the active requests only.
    sc.active.clear();
    for (size_t j = 0; j < count; ++j) {
        if (rotations[j] % two_n != 0) {
            sc.active.push_back(j);
        }
    }
    if (sc.active.empty()) {
        return;
    }
    // Size the workspace per request slot on first use. Later steps
    // of the same batch reuse the same regions — the per-slot job
    // chain orders that reuse — and never grow them, so every pointer
    // recorded into the stream stays stable.
    while (sc.prod.size() < count) {
        sc.prod.push_back(glweTrivial(Poly(n, params_.q)));
    }
    while (sc.dec.size() < count * rows) {
        sc.dec.emplace_back(n, params_.q);
    }
    if (sc.lastJob.size() < count) {
        sc.lastJob.resize(count);
    }
    if (sc.boundStream != stream.id()) {
        // Job handles are indices into one stream's command list; a
        // fresh stream starts fresh chains.
        sc.lastJob.assign(sc.lastJob.size(), Job{});
        sc.boundStream = stream.id();
    }

    // Per active request j, one five-command chain. Distinct requests
    // share no buffers (scratch is slot-indexed), so a pipelined
    // engine overlaps them freely — request A can be in its MACs
    // while request B is still decomposing, and across recorded
    // steps the NTTs of step i+1 run under the MACs of step i.
    for (size_t j : sc.active) {
        u64 t = rotations[j] % two_n;

        // (1+2) Rotator, CMux difference, and gadget decomposition
        // fused into one gather pass per limb: the difference
        //     diff_j[x] = (acc_j * X^{t_j})[x] - acc_j[x]
        // is decomposed the moment it is produced, so it is never
        // materialized — the working set is just the decomposition
        // limbs, the products, and the accumulators. Depends on the
        // slot's previous accumulate (RAW on accs[j], WAW on the
        // slot's scratch region).
        Job dec = stream.task(
            comps,
            [this, accs, j, t, &sc, n, two_n, rows, lb](size_t c) {
                const Poly &src = glweComp(accs[j], c);
                trinity_assert(src.domain() == Domain::Coeff,
                               "blind-rotation accumulator must be in "
                               "coefficient domain");
                const u64 *s = src.coeffs().data();
                i64 digits[16]; // lb <= rows <= 16, asserted above
                for (size_t x = 0; x < n; ++x) {
                    // Negacyclic gather of (acc * X^t)[x].
                    size_t i0 = (x + two_n - t) % two_n;
                    u64 rot = i0 < n ? s[i0] : mod_.neg(s[i0 - n]);
                    decomposeScalar(mod_.sub(rot, s[x]), digits);
                    for (u32 l = 0; l < lb; ++l) {
                        sc.dec[j * rows + c * lb + l][x] =
                            toResidue(digits[l], params_.q);
                    }
                }
            },
            {sc.lastJob[j]},
            {{sim::KernelType::Rotate, comps * n, n, 16 * comps * n},
             {sim::KernelType::ModAdd, comps * n, n, 16 * comps * n},
             {sim::KernelType::Decomp, comps * n, n, 16 * comps * n}});

        // (3) Forward NTTs of the slot's `rows` decomposed limbs.
        std::vector<NttJob> fwd;
        fwd.reserve(rows);
        for (size_t r = 0; r < rows; ++r) {
            Poly &p = sc.dec[j * rows + r];
            p.setDomain(Domain::Eval);
            fwd.push_back({p.coeffs().data(), &p.nttTable()});
        }
        Job ntt = stream.nttForward(std::move(fwd), {dec});

        // (4) External-product MACs against the shared GGSW rows,
        // with lazy reduction: each output coefficient accumulates
        // its rows' products in 128 bits and reduces once, replacing
        // `rows` Barrett reductions per coefficient with one. Exact —
        // rows * (q-1)^2 never overflows (asserted above) and
        // reduce128 handles any 128-bit input — so the reduced sum is
        // bit-identical to the sequential mulAdd chain of
        // externalProduct().
        for (size_t c = 0; c < comps; ++c) {
            glweComp(sc.prod[j], c).setDomain(Domain::Eval);
        }
        Job mac = stream.task(
            comps,
            [this, &ggsw, j, &sc, n, rows](size_t c) {
                Poly &dst = glweComp(sc.prod[j], c);
                const u64 *dec_ptr[16];
                const u64 *rhs_ptr[16];
                for (size_t r = 0; r < rows; ++r) {
                    dec_ptr[r] = sc.dec[j * rows + r].coeffs().data();
                    rhs_ptr[r] =
                        glweComp(ggsw.rows[r], c).coeffs().data();
                }
                u64 *out = dst.coeffs().data();
                for (size_t i = 0; i < n; ++i) {
                    u128 acc = 0;
                    for (size_t r = 0; r < rows; ++r) {
                        acc += static_cast<u128>(dec_ptr[r][i]) *
                               rhs_ptr[r][i];
                    }
                    out[i] = mod_.reduce128(acc);
                }
            },
            {ntt},
            {{sim::KernelType::Ip,
              static_cast<u64>(rows) * comps * n, n,
              16 * static_cast<u64>(rows) * comps * n}});

        // (5+6) Fused inverse NTT + CMux accumulate: each product limb
        // leaves its final GS stage (with the N^{-1} scaling folded
        // in) and is added onto the accumulator while still hot in
        // cache — one command instead of an iNTT batch plus an
        // accumulate task.
        std::vector<NttInvAddJob> inv;
        inv.reserve(comps);
        for (size_t c = 0; c < comps; ++c) {
            Poly &p = glweComp(sc.prod[j], c);
            p.setDomain(Domain::Coeff);
            inv.push_back({p.coeffs().data(), &p.nttTable(),
                           glweComp(accs[j], c).coeffs().data()});
        }
        sc.lastJob[j] = stream.nttInverseAdd(std::move(inv), {mac});
    }
}

GlweCiphertext
TfheContext::glweMulMonomial(const GlweCiphertext &ct, u64 t) const
{
    GlweCiphertext out;
    for (const auto &aj : ct.a) {
        out.a.push_back(aj.mulMonomial(t));
    }
    out.b = ct.b.mulMonomial(t);
    return out;
}

GlweCiphertext
TfheContext::glweAdd(const GlweCiphertext &x,
                     const GlweCiphertext &y) const
{
    GlweCiphertext out = x;
    for (size_t j = 0; j < params_.k; ++j) {
        out.a[j].addInPlace(y.a[j]);
    }
    out.b.addInPlace(y.b);
    return out;
}

GlweCiphertext
TfheContext::glweSub(const GlweCiphertext &x,
                     const GlweCiphertext &y) const
{
    GlweCiphertext out = x;
    for (size_t j = 0; j < params_.k; ++j) {
        out.a[j].subInPlace(y.a[j]);
    }
    out.b.subInPlace(y.b);
    return out;
}

} // namespace trinity
