#include "poly/fft.h"

#include <cmath>

#include "common/bitops.h"
#include "common/logging.h"

namespace trinity {

void
fft(std::vector<cd> &a, bool invert)
{
    size_t n = a.size();
    trinity_assert(isPowerOfTwo(n), "FFT length must be a power of two");
    // Bit-reversal permutation.
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(a[i], a[j]);
        }
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        double ang = 2 * M_PI / static_cast<double>(len) *
                     (invert ? -1 : 1);
        cd wlen(std::cos(ang), std::sin(ang));
        for (size_t i = 0; i < n; i += len) {
            cd w(1);
            for (size_t j = 0; j < len / 2; ++j) {
                cd u = a[i + j];
                cd v = a[i + j + len / 2] * w;
                a[i + j] = u + v;
                a[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (invert) {
        for (cd &x : a) {
            x /= static_cast<double>(n);
        }
    }
}

std::vector<i64>
negacyclicConvolutionFft(const std::vector<i64> &a,
                         const std::vector<i64> &b)
{
    size_t n = a.size();
    trinity_assert(b.size() == n, "operand size mismatch");
    // Twist by the primitive 2N-th root to turn negacyclic into cyclic.
    std::vector<cd> fa(n), fb(n);
    for (size_t i = 0; i < n; ++i) {
        double ang = M_PI * static_cast<double>(i) /
                     static_cast<double>(n);
        cd tw(std::cos(ang), std::sin(ang));
        fa[i] = tw * static_cast<double>(a[i]);
        fb[i] = tw * static_cast<double>(b[i]);
    }
    fft(fa, false);
    fft(fb, false);
    for (size_t i = 0; i < n; ++i) {
        fa[i] *= fb[i];
    }
    fft(fa, true);
    std::vector<i64> out(n);
    for (size_t i = 0; i < n; ++i) {
        double ang = -M_PI * static_cast<double>(i) /
                     static_cast<double>(n);
        cd tw(std::cos(ang), std::sin(ang));
        out[i] = std::llround((fa[i] * tw).real());
    }
    return out;
}

SpecialFft::SpecialFft(size_t slots)
    : slots_(slots), m_(4 * slots)
{
    trinity_assert(isPowerOfTwo(slots), "slot count must be power of 2");
    ksiPows_.resize(m_ + 1);
    for (size_t k = 0; k <= m_; ++k) {
        double ang = 2.0 * M_PI * static_cast<double>(k) /
                     static_cast<double>(m_);
        ksiPows_[k] = cd(std::cos(ang), std::sin(ang));
    }
    rotGroup_.resize(slots);
    u32 five = 1;
    for (size_t j = 0; j < slots; ++j) {
        rotGroup_[j] = five;
        five = static_cast<u32>((static_cast<u64>(five) * 5) % m_);
    }
}

void
SpecialFft::bitReverseVec(std::vector<cd> &vals) const
{
    size_t n = vals.size();
    for (size_t i = 1, j = 0; i < n; ++i) {
        size_t bit = n >> 1;
        for (; j & bit; bit >>= 1) {
            j ^= bit;
        }
        j ^= bit;
        if (i < j) {
            std::swap(vals[i], vals[j]);
        }
    }
}

void
SpecialFft::forward(std::vector<cd> &vals) const
{
    size_t n = vals.size();
    trinity_assert(n == slots_, "special FFT size mismatch");
    bitReverseVec(vals);
    for (size_t len = 2; len <= n; len <<= 1) {
        size_t lenh = len >> 1;
        size_t lenq = len << 2;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx = (rotGroup_[j] % lenq) * (m_ / lenq);
                cd u = vals[i + j];
                cd v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
SpecialFft::inverse(std::vector<cd> &vals) const
{
    size_t n = vals.size();
    trinity_assert(n == slots_, "special FFT size mismatch");
    for (size_t len = n; len >= 2; len >>= 1) {
        size_t lenh = len >> 1;
        size_t lenq = len << 2;
        for (size_t i = 0; i < n; i += len) {
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx =
                    (lenq - (rotGroup_[j] % lenq)) * (m_ / lenq);
                cd u = vals[i + j] + vals[i + j + lenh];
                cd v = (vals[i + j] - vals[i + j + lenh]) *
                       ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    bitReverseVec(vals);
    for (cd &x : vals) {
        x /= static_cast<double>(n);
    }
}

} // namespace trinity
