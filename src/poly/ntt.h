/**
 * @file
 * Negacyclic Number Theoretic Transform.
 *
 * The software reference for every NTT datapath in Trinity. Forward is
 * the merged-psi Cooley-Tukey network (natural order in, bit-reversed
 * out); inverse is the Gentleman-Sande network (bit-reversed in, natural
 * out) — matching the classic Longa-Naehrig formulation used by RNS-FHE
 * libraries. Twiddles are applied with Shoup lazy multiplication, the
 * same trick hardware BUs use to avoid a full Barrett per butterfly.
 */

#ifndef TRINITY_POLY_NTT_H
#define TRINITY_POLY_NTT_H

#include <memory>
#include <vector>

#include "common/modarith.h"
#include "common/types.h"

namespace trinity {

/**
 * Precomputed twiddle tables for the negacyclic NTT of length N over a
 * prime modulus q ≡ 1 (mod 2N).
 */
class NttTable
{
  public:
    /**
     * Build tables.
     * @param n transform length (power of two)
     * @param mod prime modulus with q ≡ 1 mod 2n
     */
    NttTable(size_t n, const Modulus &mod);

    size_t n() const { return n_; }
    u32 logn() const { return logn_; }
    const Modulus &modulus() const { return mod_; }
    /** The primitive 2N-th root of unity psi used by this table. */
    u64 psi() const { return psi_; }

    /** Bit-reversed forward twiddles psi^{bitrev(i)} and their Shoup
     *  preconditioners — the exact tables forwardCore() walks, exposed
     *  so SIMD engines can run the same butterfly network over wider
     *  lanes without rebuilding (or re-deriving) any constants. */
    const std::vector<u64> &psiBr() const { return psiBr_; }
    const std::vector<u64> &psiBrPrecon() const { return psiBrPrecon_; }
    /** Bit-reversed inverse twiddles psi^{-bitrev(i)} + preconditioners. */
    const std::vector<u64> &ipsiBr() const { return ipsiBr_; }
    const std::vector<u64> &ipsiBrPrecon() const { return ipsiBrPrecon_; }
    /** N^{-1} mod q and its Shoup preconditioner (inverse scaling). */
    u64 nInv() const { return nInv_; }
    u64 nInvPrecon() const { return nInvPrecon_; }
    /** The last GS stage's twiddle pre-folded with N^{-1}:
     *  psi^{-bitrev(1)} * nInv mod q. mulShoup is exact (canonical
     *  residue in, canonical out), so applying this in the final
     *  butterfly instead of twiddle-then-scale is bit-identical to the
     *  separate scaling pass it replaces. */
    u64 ipsiLastScaled() const { return ipsiLastScaled_; }
    u64 ipsiLastScaledPrecon() const { return ipsiLastScaledPrecon_; }

    /** In-place forward negacyclic NTT: natural -> bit-reversed order. */
    void forward(u64 *a) const;
    void forward(std::vector<u64> &a) const { forward(a.data()); }

    /** In-place inverse negacyclic NTT: bit-reversed -> natural order. */
    void inverse(u64 *a) const;
    void inverse(std::vector<u64> &a) const { inverse(a.data()); }

    /**
     * Run forward stages [stageLo, stageHi) over the butterfly range
     * [bLo, bHi) only. Stage s has m = 1<<s blocks of t = n>>(s+1)
     * butterflies; butterfly b lives at block i = b/t, offset j = b%t,
     * touching a[2*i*t + j] and a[2*i*t + j + t]. Running every stage
     * over [0, n/2) reproduces forward() exactly; tiled executors
     * split [0, n/2) into chunks and synchronize between stages (or
     * stage groups whose data stays chunk-local).
     */
    void forwardStages(u64 *a, size_t stageLo, size_t stageHi,
                       size_t bLo, size_t bHi) const;

    /**
     * Inverse (GS) stage-range analog. Stage s has h = n>>(s+1) blocks
     * of t = 1<<s butterflies. With scaleN set, the final stage
     * (s == logn-1) folds the N^{-1} scaling into its butterfly via
     * ipsiLastScaled(); running stages [0, logn) with scaleN
     * reproduces inverse() exactly, with no separate scaling pass.
     */
    void inverseStages(u64 *a, size_t stageLo, size_t stageHi,
                       size_t bLo, size_t bHi, bool scaleN) const;

    /**
     * Forward cyclic (non-negacyclic) NTT, natural -> natural order.
     * Used by the four-step decomposition, whose sub-transforms are
     * cyclic DFTs.
     */
    void forwardCyclic(u64 *a) const;

    /** Inverse cyclic NTT, natural -> natural order. */
    void inverseCyclic(u64 *a) const;

    /** Permute a length-N vector by bit reversal, in place. */
    static void bitrevPermute(u64 *a, size_t n);

  private:
    size_t n_;
    u32 logn_;
    Modulus mod_;
    u64 psi_;
    u64 psiInv_;
    u64 nInv_;
    u64 nInvPrecon_;
    u64 ipsiLastScaled_;
    u64 ipsiLastScaledPrecon_;
    /** psi^{bitrev(i)} table + Shoup preconditioners. */
    std::vector<u64> psiBr_;
    std::vector<u64> psiBrPrecon_;
    /** psi^{-bitrev(i)} table + Shoup preconditioners. */
    std::vector<u64> ipsiBr_;
    std::vector<u64> ipsiBrPrecon_;
    /**
     * Natural-order psi^i / psi^{-i} tables. Cyclic transforms are the
     * negacyclic network with the implicit twist removed:
     * cyclic(a)[k] = negacyclic(a ⊙ psi^{-i})[bitrev(k)].
     */
    std::vector<u64> psiPow_;
    std::vector<u64> psiPowPrecon_;
    std::vector<u64> ipsiPow_;
    std::vector<u64> ipsiPowPrecon_;

    void forwardCore(u64 *a, const std::vector<u64> &tw,
                     const std::vector<u64> &tw_pre) const;
    void inverseCore(u64 *a, const std::vector<u64> &tw,
                     const std::vector<u64> &tw_pre) const;
};

/**
 * Global cache of NTT tables keyed by (n, q); table construction costs
 * O(n log n) modular exponentiations, so contexts share them.
 */
class NttTableCache
{
  public:
    static std::shared_ptr<const NttTable> get(size_t n, u64 q);
};

} // namespace trinity

#endif // TRINITY_POLY_NTT_H
