#include "poly/poly.h"

#include <cstring>

#include "backend/observer.h"
#include "backend/registry.h"
#include "backend/simd_kernels.h"
#include "common/bitops.h"
#include "common/logging.h"

namespace trinity {

Poly::Poly(size_t n, u64 q)
    : n_(n), mod_(q), table_(NttTableCache::get(n, q)),
      domain_(Domain::Coeff), coeffs_(n, 0)
{
}

Poly::Poly(std::vector<u64> coeffs, u64 q, Domain d)
    : n_(coeffs.size()), mod_(q),
      table_(NttTableCache::get(coeffs.size(), q)), domain_(d),
      coeffs_(std::move(coeffs))
{
    for (u64 &c : coeffs_) {
        if (c >= q) {
            c = mod_.reduce(c);
        }
    }
}

void
Poly::toEval()
{
    if (domain_ == Domain::Eval) {
        return;
    }
    NttJob job{coeffs_.data(), table_.get()};
    activeBackend().nttForwardBatch(&job, 1);
    domain_ = Domain::Eval;
}

void
Poly::toCoeff()
{
    if (domain_ == Domain::Coeff) {
        return;
    }
    NttJob job{coeffs_.data(), table_.get()};
    activeBackend().nttInverseBatch(&job, 1);
    domain_ = Domain::Coeff;
}

void
Poly::batchToEval(std::vector<Poly> &polys)
{
    std::vector<NttJob> jobs;
    jobs.reserve(polys.size());
    for (auto &p : polys) {
        if (p.domain_ == Domain::Eval) {
            continue;
        }
        jobs.push_back({p.coeffs_.data(), p.table_.get()});
        p.domain_ = Domain::Eval;
    }
    activeBackend().nttForwardBatch(jobs.data(), jobs.size());
}

void
Poly::batchToCoeff(std::vector<Poly> &polys)
{
    std::vector<NttJob> jobs;
    jobs.reserve(polys.size());
    for (auto &p : polys) {
        if (p.domain_ == Domain::Coeff) {
            continue;
        }
        jobs.push_back({p.coeffs_.data(), p.table_.get()});
        p.domain_ = Domain::Coeff;
    }
    activeBackend().nttInverseBatch(jobs.data(), jobs.size());
}

void
Poly::checkCompatible(const Poly &other) const
{
    trinity_assert(n_ == other.n_ && mod_ == other.mod_,
                   "incompatible polynomial operands");
    trinity_assert(domain_ == other.domain_,
                   "operands in different domains");
}

void
Poly::addInPlace(const Poly &other)
{
    checkCompatible(other);
    EltwiseJob job{coeffs_.data(), coeffs_.data(),
                   other.coeffs_.data(), &mod_, n_};
    activeBackend().addBatch(&job, 1);
}

void
Poly::subInPlace(const Poly &other)
{
    checkCompatible(other);
    EltwiseJob job{coeffs_.data(), coeffs_.data(),
                   other.coeffs_.data(), &mod_, n_};
    activeBackend().subBatch(&job, 1);
}

void
Poly::negInPlace()
{
    EltwiseJob job{coeffs_.data(), coeffs_.data(), nullptr, &mod_, n_};
    activeBackend().negBatch(&job, 1);
}

void
Poly::mulPointwiseInPlace(const Poly &other)
{
    checkCompatible(other);
    trinity_assert(domain_ == Domain::Eval,
                   "pointwise multiply requires Eval domain");
    EltwiseJob job{coeffs_.data(), coeffs_.data(),
                   other.coeffs_.data(), &mod_, n_};
    activeBackend().pointwiseMulBatch(&job, 1);
}

void
Poly::scalarMulInPlace(u64 c)
{
    ScalarMulJob job{coeffs_.data(), coeffs_.data(), mod_.reduce(c),
                     &mod_, n_};
    activeBackend().scalarMulBatch(&job, 1);
}

Poly
Poly::operator+(const Poly &o) const
{
    Poly r = *this;
    r.addInPlace(o);
    return r;
}

Poly
Poly::operator-(const Poly &o) const
{
    Poly r = *this;
    r.subInPlace(o);
    return r;
}

Poly
Poly::operator*(const Poly &o) const
{
    Poly a = *this;
    Poly b = o;
    a.toEval();
    b.toEval();
    a.mulPointwiseInPlace(b);
    a.toCoeff();
    return a;
}

Poly
Poly::automorphism(u64 g) const
{
    trinity_assert(domain_ == Domain::Coeff,
                   "automorphism operates in coefficient domain");
    trinity_assert(g % 2 == 1, "automorphism index must be odd");
    Poly r(n_, mod_.value());
    AutoJob job{r.coeffs_.data(), coeffs_.data(), &mod_, n_, g};
    activeBackend().automorphismBatch(&job, 1);
    return r;
}

Poly
Poly::mulMonomial(u64 t) const
{
    trinity_assert(domain_ == Domain::Coeff,
                   "monomial multiply operates in coefficient domain");
    // The Rotator kernel runs outside the batched entry points;
    // announce it to the profiler explicitly.
    emitKernel(sim::KernelType::Rotate, n_, n_);
    size_t two_n = 2 * n_;
    t %= two_n;
    size_t tr = t % n_;
    bool neg_first = t >= n_;
    Poly r(n_, mod_.value());
    // Same block decomposition as RnsPoly::mulMonomial: one memcpy'd
    // block, one negated block through the dispatched neg kernel
    // (wide lanes), the sign flipping when the rotation crosses
    // X^n = -1. The neg runs direct, not via negBatch: the whole
    // rotation is priced as the Rotate kernel emitted above, and a
    // priced negBatch would double-count it as ModAdd.
    size_t len1 = n_ - tr; // src[0..len1) -> dst[tr..n)
    size_t len2 = tr;      // src[len1..n) -> dst[0..tr)
    const u64 *src = coeffs_.data();
    u64 *dst = r.coeffs_.data();
    const simd::KernelSet &ks =
        simd::kernelsForLevel(simd::resolveLevel());
    if (neg_first) {
        std::memcpy(dst, src + len1, len2 * sizeof(u64));
        ks.neg(dst + tr, src, mod_, len1);
    } else {
        std::memcpy(dst + tr, src, len1 * sizeof(u64));
        ks.neg(dst, src + len1, mod_, len2);
    }
    return r;
}

Poly
Poly::uniform(size_t n, u64 q, Rng &rng, Domain d)
{
    Poly r(n, q);
    for (size_t i = 0; i < n; ++i) {
        r.coeffs_[i] = rng.uniform(q);
    }
    r.domain_ = d;
    return r;
}

Poly
Poly::ternary(size_t n, u64 q, Rng &rng)
{
    Poly r(n, q);
    for (size_t i = 0; i < n; ++i) {
        r.coeffs_[i] = toResidue(rng.ternary(), q);
    }
    return r;
}

Poly
Poly::gaussian(size_t n, u64 q, double sigma, Rng &rng)
{
    Poly r(n, q);
    for (size_t i = 0; i < n; ++i) {
        r.coeffs_[i] = toResidue(rng.gaussian(sigma), q);
    }
    return r;
}

u64
Poly::infNorm() const
{
    u64 q = mod_.value();
    u64 m = 0;
    for (u64 c : coeffs_) {
        i64 centered = centeredRep(c, q);
        u64 mag = centered < 0 ? static_cast<u64>(-centered)
                               : static_cast<u64>(centered);
        m = std::max(m, mag);
    }
    return m;
}

} // namespace trinity
