#include "poly/rns.h"

#include "common/logging.h"

namespace trinity {

RnsPoly::RnsPoly(size_t n, const std::vector<u64> &moduli)
{
    limbs_.reserve(moduli.size());
    for (u64 q : moduli) {
        limbs_.emplace_back(n, q);
    }
}

RnsPoly::RnsPoly(std::vector<Poly> limbs)
    : limbs_(std::move(limbs))
{
}

std::vector<u64>
RnsPoly::moduli() const
{
    std::vector<u64> m;
    m.reserve(limbs_.size());
    for (const auto &l : limbs_) {
        m.push_back(l.q());
    }
    return m;
}

void
RnsPoly::toEval()
{
    for (auto &l : limbs_) {
        l.toEval();
    }
}

void
RnsPoly::toCoeff()
{
    for (auto &l : limbs_) {
        l.toCoeff();
    }
}

Domain
RnsPoly::domain() const
{
    trinity_assert(!limbs_.empty(), "empty RNS polynomial");
    return limbs_[0].domain();
}

void
RnsPoly::addInPlace(const RnsPoly &o)
{
    trinity_assert(limbs_.size() == o.limbs_.size(),
                   "RNS limb count mismatch (%zu vs %zu)",
                   limbs_.size(), o.limbs_.size());
    for (size_t i = 0; i < limbs_.size(); ++i) {
        limbs_[i].addInPlace(o.limbs_[i]);
    }
}

void
RnsPoly::subInPlace(const RnsPoly &o)
{
    trinity_assert(limbs_.size() == o.limbs_.size(),
                   "RNS limb count mismatch");
    for (size_t i = 0; i < limbs_.size(); ++i) {
        limbs_[i].subInPlace(o.limbs_[i]);
    }
}

void
RnsPoly::negInPlace()
{
    for (auto &l : limbs_) {
        l.negInPlace();
    }
}

void
RnsPoly::mulPointwiseInPlace(const RnsPoly &o)
{
    trinity_assert(limbs_.size() == o.limbs_.size(),
                   "RNS limb count mismatch");
    for (size_t i = 0; i < limbs_.size(); ++i) {
        limbs_[i].mulPointwiseInPlace(o.limbs_[i]);
    }
}

RnsPoly
RnsPoly::operator+(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r.addInPlace(o);
    return r;
}

RnsPoly
RnsPoly::operator-(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r.subInPlace(o);
    return r;
}

void
RnsPoly::dropLastLimb()
{
    trinity_assert(!limbs_.empty(), "no limb to drop");
    limbs_.pop_back();
}

RnsPoly
RnsPoly::automorphism(u64 g) const
{
    std::vector<Poly> out;
    out.reserve(limbs_.size());
    for (const auto &l : limbs_) {
        out.push_back(l.automorphism(g));
    }
    return RnsPoly(std::move(out));
}

RnsPoly
RnsPoly::mulMonomial(u64 t) const
{
    std::vector<Poly> out;
    out.reserve(limbs_.size());
    for (const auto &l : limbs_) {
        out.push_back(l.mulMonomial(t));
    }
    return RnsPoly(std::move(out));
}

RnsPoly
RnsPoly::fromSigned(const std::vector<i64> &coeffs, size_t n,
                    const std::vector<u64> &moduli)
{
    trinity_assert(coeffs.size() <= n, "coefficient vector too long");
    RnsPoly r(n, moduli);
    for (size_t i = 0; i < coeffs.size(); ++i) {
        for (size_t j = 0; j < moduli.size(); ++j) {
            r.limb(j)[i] = toResidue(coeffs[i], moduli[j]);
        }
    }
    return r;
}

BaseConverter::BaseConverter(const std::vector<u64> &from,
                             const std::vector<u64> &to)
    : from_(from), to_(to)
{
    trinity_assert(!from.empty() && !to.empty(), "empty RNS basis");
    for (u64 q : from) {
        fromMods_.emplace_back(q);
    }
    for (u64 p : to) {
        toMods_.emplace_back(p);
    }
    size_t k = from.size();
    qhatInv_.resize(k);
    qhatModP_.assign(k, std::vector<u64>(to.size()));
    for (size_t i = 0; i < k; ++i) {
        const Modulus &qi = fromMods_[i];
        // (Q/q_i) mod q_i
        u64 qhat_mod_qi = 1;
        for (size_t t = 0; t < k; ++t) {
            if (t != i) {
                qhat_mod_qi = qi.mul(qhat_mod_qi, qi.reduce(from[t]));
            }
        }
        qhatInv_[i] = qi.inv(qhat_mod_qi);
        for (size_t j = 0; j < to.size(); ++j) {
            const Modulus &pj = toMods_[j];
            u64 qhat_mod_pj = 1;
            for (size_t t = 0; t < k; ++t) {
                if (t != i) {
                    qhat_mod_pj =
                        pj.mul(qhat_mod_pj, pj.reduce(from[t]));
                }
            }
            qhatModP_[i][j] = qhat_mod_pj;
        }
    }
}

std::vector<Poly>
BaseConverter::convert(const std::vector<Poly> &in) const
{
    trinity_assert(in.size() == from_.size(),
                   "BConv input limb count mismatch");
    size_t n = in[0].n();
    for (size_t i = 0; i < in.size(); ++i) {
        trinity_assert(in[i].q() == from_[i], "BConv limb modulus");
        trinity_assert(in[i].domain() == Domain::Coeff,
                       "BConv operates in coefficient domain");
    }
    // v_i = [x_i * qhatInv_i]_{q_i}
    std::vector<std::vector<u64>> v(from_.size());
    for (size_t i = 0; i < from_.size(); ++i) {
        v[i].resize(n);
        const Modulus &qi = fromMods_[i];
        u64 pre = qi.shoupPrecompute(qhatInv_[i]);
        for (size_t c = 0; c < n; ++c) {
            v[i][c] = qi.mulShoup(in[i][c], qhatInv_[i], pre);
        }
    }
    std::vector<Poly> out;
    out.reserve(to_.size());
    for (size_t j = 0; j < to_.size(); ++j) {
        const Modulus &pj = toMods_[j];
        Poly limb(n, to_[j]);
        for (size_t c = 0; c < n; ++c) {
            u128 acc = 0;
            for (size_t i = 0; i < from_.size(); ++i) {
                acc += static_cast<u128>(pj.reduce(v[i][c])) *
                       qhatModP_[i][j];
            }
            limb[c] = pj.reduce128(acc);
        }
        out.push_back(std::move(limb));
    }
    return out;
}

} // namespace trinity
