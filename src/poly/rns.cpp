#include "poly/rns.h"

#include <algorithm>
#include <cstring>

#include "backend/observer.h"
#include "backend/registry.h"
#include "backend/simd_kernels.h"
#include "common/logging.h"

namespace trinity {

// ---------------------------------------------------------------- views

Poly
ConstLimbView::toPoly() const
{
    return Poly(coeffs(), q(), domain_);
}

u64
ConstLimbView::infNorm() const
{
    u64 qv = q();
    u64 m = 0;
    for (size_t i = 0; i < n_; ++i) {
        i64 centered = centeredRep(data_[i], qv);
        u64 mag = centered < 0 ? static_cast<u64>(-centered)
                               : static_cast<u64>(centered);
        m = std::max(m, mag);
    }
    return m;
}

Poly
LimbView::toPoly() const
{
    return Poly(coeffs(), q(), domain_);
}

u64
LimbView::infNorm() const
{
    return ConstLimbView(*this).infNorm();
}

LimbView &
LimbView::operator=(const Poly &p)
{
    trinity_assert(p.n() == n_ && p.q() == q(),
                   "limb assignment shape mismatch");
    trinity_assert(p.domain() == domain_,
                   "limb assignment domain mismatch");
    std::copy(p.coeffs().begin(), p.coeffs().end(), data_);
    return *this;
}

Poly
operator+(const ConstLimbView &a, const ConstLimbView &b)
{
    Poly r = a.toPoly();
    r.addInPlace(b.toPoly());
    return r;
}

// -------------------------------------------------------------- RnsPoly

RnsPoly::RnsPoly(size_t n, const std::vector<u64> &moduli)
    : n_(n), data_(n * moduli.size(), 0)
{
    mods_.reserve(moduli.size());
    tables_.reserve(moduli.size());
    for (u64 q : moduli) {
        mods_.emplace_back(q);
        tables_.push_back(NttTableCache::get(n, q));
    }
}

RnsPoly::RnsPoly(std::vector<Poly> limbs)
{
    trinity_assert(!limbs.empty(), "empty limb set");
    n_ = limbs[0].n();
    domain_ = limbs[0].domain();
    data_.resize(n_ * limbs.size());
    mods_.reserve(limbs.size());
    tables_.reserve(limbs.size());
    for (size_t i = 0; i < limbs.size(); ++i) {
        trinity_assert(limbs[i].n() == n_, "limb length mismatch");
        trinity_assert(limbs[i].domain() == domain_,
                       "limbs in different domains");
        mods_.push_back(limbs[i].modulus());
        tables_.push_back(NttTableCache::get(n_, limbs[i].q()));
        std::copy(limbs[i].coeffs().begin(), limbs[i].coeffs().end(),
                  data_.begin() + static_cast<ptrdiff_t>(i * n_));
    }
}

Poly
RnsPoly::limbPoly(size_t i) const
{
    return limb(i).toPoly();
}

void
RnsPoly::setLimb(size_t i, const Poly &p)
{
    limb(i) = p;
}

std::vector<u64>
RnsPoly::moduli() const
{
    std::vector<u64> m;
    m.reserve(mods_.size());
    for (const auto &mod : mods_) {
        m.push_back(mod.value());
    }
    return m;
}

void
RnsPoly::toEval()
{
    if (domain_ == Domain::Eval) {
        return;
    }
    std::vector<NttJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i] = {limbData(i), tables_[i].get()};
    }
    activeBackend().nttForwardBatch(jobs.data(), jobs.size());
    domain_ = Domain::Eval;
}

void
RnsPoly::toCoeff()
{
    if (domain_ == Domain::Coeff) {
        return;
    }
    std::vector<NttJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i] = {limbData(i), tables_[i].get()};
    }
    activeBackend().nttInverseBatch(jobs.data(), jobs.size());
    domain_ = Domain::Coeff;
}

void
RnsPoly::checkCompatible(const RnsPoly &o) const
{
    trinity_assert(numLimbs() == o.numLimbs(),
                   "RNS limb count mismatch (%zu vs %zu)", numLimbs(),
                   o.numLimbs());
    trinity_assert(n_ == o.n_, "RNS length mismatch");
    trinity_assert(domain_ == o.domain_, "operands in different domains");
}

void
RnsPoly::addInPlace(const RnsPoly &o)
{
    checkCompatible(o);
    std::vector<EltwiseJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        trinity_assert(mods_[i] == o.mods_[i], "RNS modulus mismatch");
        jobs[i] = {limbData(i), limbData(i), o.limbData(i), &mods_[i],
                   n_};
    }
    activeBackend().addBatch(jobs.data(), jobs.size());
}

void
RnsPoly::subInPlace(const RnsPoly &o)
{
    checkCompatible(o);
    std::vector<EltwiseJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        trinity_assert(mods_[i] == o.mods_[i], "RNS modulus mismatch");
        jobs[i] = {limbData(i), limbData(i), o.limbData(i), &mods_[i],
                   n_};
    }
    activeBackend().subBatch(jobs.data(), jobs.size());
}

void
RnsPoly::negInPlace()
{
    std::vector<EltwiseJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i] = {limbData(i), limbData(i), nullptr, &mods_[i], n_};
    }
    activeBackend().negBatch(jobs.data(), jobs.size());
}

void
RnsPoly::mulPointwiseInPlace(const RnsPoly &o)
{
    checkCompatible(o);
    trinity_assert(domain_ == Domain::Eval,
                   "pointwise multiply requires Eval domain");
    std::vector<EltwiseJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        trinity_assert(mods_[i] == o.mods_[i], "RNS modulus mismatch");
        jobs[i] = {limbData(i), limbData(i), o.limbData(i), &mods_[i],
                   n_};
    }
    activeBackend().pointwiseMulBatch(jobs.data(), jobs.size());
}

void
RnsPoly::scalarMulLimbwise(const std::vector<u64> &scalars)
{
    trinity_assert(scalars.size() == numLimbs(),
                   "one scalar per limb required");
    std::vector<ScalarMulJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i] = {limbData(i), limbData(i),
                   mods_[i].reduce(scalars[i]), &mods_[i], n_};
    }
    activeBackend().scalarMulBatch(jobs.data(), jobs.size());
}

RnsPoly
RnsPoly::operator+(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r.addInPlace(o);
    return r;
}

RnsPoly
RnsPoly::operator-(const RnsPoly &o) const
{
    RnsPoly r = *this;
    r.subInPlace(o);
    return r;
}

void
RnsPoly::dropLastLimb()
{
    trinity_assert(!mods_.empty(), "no limb to drop");
    mods_.pop_back();
    tables_.pop_back();
    data_.resize(mods_.size() * n_);
}

RnsPoly
RnsPoly::prefix(size_t count) const
{
    trinity_assert(count > 0 && count <= numLimbs(),
                   "prefix limb count out of range");
    RnsPoly r;
    r.n_ = n_;
    r.domain_ = domain_;
    r.mods_.assign(mods_.begin(),
                   mods_.begin() + static_cast<ptrdiff_t>(count));
    r.tables_.assign(tables_.begin(),
                     tables_.begin() + static_cast<ptrdiff_t>(count));
    r.data_.assign(data_.begin(),
                   data_.begin() + static_cast<ptrdiff_t>(count * n_));
    return r;
}

RnsPoly
RnsPoly::automorphism(u64 g) const
{
    trinity_assert(domain_ == Domain::Coeff,
                   "automorphism operates in coefficient domain");
    trinity_assert(g % 2 == 1, "automorphism index must be odd");
    RnsPoly r(n_, moduli());
    std::vector<AutoJob> jobs(numLimbs());
    for (size_t i = 0; i < jobs.size(); ++i) {
        jobs[i] = {r.limbData(i), limbData(i), &mods_[i], n_, g};
    }
    activeBackend().automorphismBatch(jobs.data(), jobs.size());
    return r;
}

RnsPoly
RnsPoly::mulMonomial(u64 t) const
{
    trinity_assert(domain_ == Domain::Coeff,
                   "monomial multiply operates in coefficient domain");
    emitKernel(sim::KernelType::Rotate, numLimbs() * n_, n_);
    size_t two_n = 2 * n_;
    t %= two_n;
    size_t tr = t % n_;
    bool neg_first = t >= n_;
    RnsPoly r(n_, moduli());
    // X^t rotation splits into two contiguous blocks: src[0..n-tr)
    // lands at dst[tr..n) and src[n-tr..n) wraps to dst[0..tr), one
    // of the two negated (which one flips when the rotation crosses
    // X^n = -1). The sign-preserving block is a straight memcpy; the
    // negated block runs through the neg kernel so wide lanes apply.
    // No per-coefficient index arithmetic survives.
    // Both blocks run inside the run() escape hatch: the rotation is
    // priced as the one Rotate kernel emitted above (an accelerator
    // rotates and sign-flips in a single unit), so the negated block
    // calls the dispatched neg kernel directly instead of negBatch —
    // wide lanes without a second, double-counted ModAdd event.
    size_t len1 = n_ - tr; // src[0..len1) -> dst[tr..n)
    size_t len2 = tr;      // src[len1..n) -> dst[0..tr)
    const simd::KernelSet &ks =
        simd::kernelsForLevel(simd::resolveLevel());
    activeBackend().run(numLimbs(), [&](size_t j) {
        const u64 *src = limbData(j);
        u64 *dst = r.limbData(j);
        if (neg_first) {
            std::memcpy(dst, src + len1, len2 * sizeof(u64));
            ks.neg(dst + tr, src, mods_[j], len1);
        } else {
            std::memcpy(dst + tr, src, len1 * sizeof(u64));
            ks.neg(dst, src + len1, mods_[j], len2);
        }
    });
    return r;
}

RnsPoly
RnsPoly::fromSigned(const std::vector<i64> &coeffs, size_t n,
                    const std::vector<u64> &moduli)
{
    trinity_assert(coeffs.size() <= n, "coefficient vector too long");
    RnsPoly r(n, moduli);
    for (size_t j = 0; j < moduli.size(); ++j) {
        u64 *dst = r.limbData(j);
        for (size_t i = 0; i < coeffs.size(); ++i) {
            dst[i] = toResidue(coeffs[i], moduli[j]);
        }
    }
    return r;
}

RnsPoly
RnsPoly::uniform(size_t n, const std::vector<u64> &moduli, Rng &rng,
                 Domain d)
{
    // Sampling stays serial: the Rng stream must be deterministic and
    // identical across backends.
    RnsPoly r(n, moduli);
    for (size_t j = 0; j < moduli.size(); ++j) {
        u64 *dst = r.limbData(j);
        for (size_t i = 0; i < n; ++i) {
            dst[i] = rng.uniform(moduli[j]);
        }
    }
    r.domain_ = d;
    return r;
}

// -------------------------------------------------------- BaseConverter

BaseConverter::BaseConverter(const std::vector<u64> &from,
                             const std::vector<u64> &to)
    : from_(from), to_(to)
{
    trinity_assert(!from.empty() && !to.empty(), "empty RNS basis");
    for (u64 q : from) {
        fromMods_.emplace_back(q);
    }
    for (u64 p : to) {
        toMods_.emplace_back(p);
    }
    size_t k = from.size();
    qhatInv_.resize(k);
    qhatInvPrecon_.resize(k);
    qhatModP_.assign(k * to.size(), 0);
    for (size_t i = 0; i < k; ++i) {
        const Modulus &qi = fromMods_[i];
        // (Q/q_i) mod q_i
        u64 qhat_mod_qi = 1;
        for (size_t t = 0; t < k; ++t) {
            if (t != i) {
                qhat_mod_qi = qi.mul(qhat_mod_qi, qi.reduce(from[t]));
            }
        }
        qhatInv_[i] = qi.inv(qhat_mod_qi);
        qhatInvPrecon_[i] = qi.shoupPrecompute(qhatInv_[i]);
        for (size_t j = 0; j < to.size(); ++j) {
            const Modulus &pj = toMods_[j];
            u64 qhat_mod_pj = 1;
            for (size_t t = 0; t < k; ++t) {
                if (t != i) {
                    qhat_mod_pj =
                        pj.mul(qhat_mod_pj, pj.reduce(from[t]));
                }
            }
            qhatModP_[i * to.size() + j] = qhat_mod_pj;
        }
    }
}

BConvPlan
BaseConverter::plan() const
{
    BConvPlan p;
    p.fromMods = fromMods_.data();
    p.numFrom = fromMods_.size();
    p.toMods = toMods_.data();
    p.numTo = toMods_.size();
    p.qhatInv = qhatInv_.data();
    p.qhatInvPrecon = qhatInvPrecon_.data();
    p.qhatModP = qhatModP_.data();
    return p;
}

void
BaseConverter::convertPointers(const u64 *const *in, u64 *const *out,
                               size_t n) const
{
    activeBackend().baseConvert(plan(), in, out, n);
}

RnsPoly
BaseConverter::convert(const RnsPoly &in) const
{
    trinity_assert(in.numLimbs() == from_.size(),
                   "BConv input limb count mismatch");
    trinity_assert(in.domain() == Domain::Coeff,
                   "BConv operates in coefficient domain");
    for (size_t i = 0; i < from_.size(); ++i) {
        trinity_assert(in.modulusAt(i).value() == from_[i],
                       "BConv limb modulus");
    }
    RnsPoly r(in.n(), to_);
    std::vector<const u64 *> ins(from_.size());
    std::vector<u64 *> outs(to_.size());
    for (size_t i = 0; i < from_.size(); ++i) {
        ins[i] = in.limbData(i);
    }
    for (size_t j = 0; j < to_.size(); ++j) {
        outs[j] = r.limbData(j);
    }
    convertPointers(ins.data(), outs.data(), in.n());
    return r;
}

std::vector<Poly>
BaseConverter::convert(const std::vector<Poly> &in) const
{
    trinity_assert(in.size() == from_.size(),
                   "BConv input limb count mismatch");
    size_t n = in[0].n();
    std::vector<const u64 *> ins(in.size());
    for (size_t i = 0; i < in.size(); ++i) {
        trinity_assert(in[i].q() == from_[i], "BConv limb modulus");
        trinity_assert(in[i].domain() == Domain::Coeff,
                       "BConv operates in coefficient domain");
        ins[i] = in[i].coeffs().data();
    }
    std::vector<Poly> out;
    std::vector<u64 *> outs(to_.size());
    out.reserve(to_.size());
    for (size_t j = 0; j < to_.size(); ++j) {
        out.emplace_back(n, to_[j]);
        outs[j] = out[j].coeffs().data();
    }
    convertPointers(ins.data(), outs.data(), n);
    return out;
}

} // namespace trinity
