/**
 * @file
 * Constant-geometry (Pease) NTT.
 *
 * Trinity's NTTU and the CU butterfly columns implement the
 * constant-geometry dataflow (Section IV-B): every stage reads operand
 * pairs at the fixed physical distance N/2 and writes them interleaved,
 * so the wiring between consecutive butterfly stages is identical — the
 * property that makes the CU's butterfly NoC cheap (0.2% of CU area).
 *
 * This class is the bit-exact software model of that network. The
 * per-stage twiddle schedule is derived at construction time by
 * simulating the perfect-shuffle permutation against the standard
 * decimation-in-frequency NTT, asserting at every stage that the Pease
 * invariant holds (each physical pair (i, i+N/2) is a valid DIF slot
 * pair). Outputs are verified against NttTable in the unit tests.
 */

#ifndef TRINITY_POLY_CG_NTT_H
#define TRINITY_POLY_CG_NTT_H

#include <memory>
#include <vector>

#include "poly/ntt.h"

namespace trinity {

/** Constant-geometry negacyclic NTT engine. */
class CgNtt
{
  public:
    /**
     * Build the constant-geometry schedule for length @p n over
     * modulus @p mod (prime, q ≡ 1 mod 2n).
     */
    CgNtt(size_t n, const Modulus &mod);

    size_t n() const { return n_; }

    /**
     * Forward negacyclic NTT, natural order in, natural order out
     * (evaluations at psi^(2k+1) in index order k).
     */
    void forward(std::vector<u64> &a) const;

    /** Inverse of forward(). */
    void inverse(std::vector<u64> &a) const;

    /** Number of butterfly stages (log2 n). */
    u32 stages() const { return logn_; }

  private:
    size_t n_;
    u32 logn_;
    Modulus mod_;
    std::shared_ptr<const NttTable> table_;
    /** twiddle_[s][i]: twiddle of physical butterfly i at stage s. */
    std::vector<std::vector<u64>> twiddle_;
    std::vector<std::vector<u64>> twiddlePre_;
    /** Inverse twiddles for the reversed (Gentleman-Sande) traversal. */
    std::vector<std::vector<u64>> itwiddle_;
    std::vector<std::vector<u64>> itwiddlePre_;
    /** outPerm_[k]: physical position holding natural output k. */
    std::vector<size_t> outPerm_;
    /** psi^i twist tables (negacyclic pre/post twist). */
    std::vector<u64> psiPow_, psiPowPre_, ipsiPow_, ipsiPowPre_;
    u64 halfInv_; // (1/2) mod q, for inverse butterflies
    u64 halfInvPre_;
};

} // namespace trinity

#endif // TRINITY_POLY_CG_NTT_H
