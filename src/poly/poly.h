/**
 * @file
 * Single-modulus polynomial in R_q = Z_q[X]/(X^N + 1).
 *
 * A Poly carries its representation (coefficient vs evaluation/NTT
 * domain) and its NTT table. All the FHE kernels the paper enumerates
 * (Table I/II) bottom out here: NTT, ModMul, ModAdd, Auto
 * (automorphism), Rotate (monomial multiplication), SampleExtract
 * support, and gadget decomposition helpers.
 *
 * Execution routes through the active PolyBackend engine; the static
 * batchToEval/batchToCoeff helpers let consumers holding many Polys
 * (e.g. TFHE gadget decompositions) submit them as one batch.
 */

#ifndef TRINITY_POLY_POLY_H
#define TRINITY_POLY_POLY_H

#include <memory>
#include <vector>

#include "common/modarith.h"
#include "common/rng.h"
#include "poly/ntt.h"

namespace trinity {

/** Representation domain of a Poly. */
enum class Domain { Coeff, Eval };

/** Element of Z_q[X]/(X^N + 1). */
class Poly
{
  public:
    Poly() : n_(0), domain_(Domain::Coeff) {}

    /** Zero polynomial of length @p n mod @p q, coefficient domain. */
    Poly(size_t n, u64 q);

    /** Wrap existing coefficients. */
    Poly(std::vector<u64> coeffs, u64 q, Domain d = Domain::Coeff);

    size_t n() const { return n_; }
    u64 q() const { return mod_.value(); }
    const Modulus &modulus() const { return mod_; }
    const NttTable &nttTable() const { return *table_; }
    Domain domain() const { return domain_; }
    const std::vector<u64> &coeffs() const { return coeffs_; }
    std::vector<u64> &coeffs() { return coeffs_; }
    u64 operator[](size_t i) const { return coeffs_[i]; }
    u64 &operator[](size_t i) { return coeffs_[i]; }

    /** Convert to evaluation (NTT) domain; no-op if already there. */
    void toEval();
    /** Convert to coefficient domain; no-op if already there. */
    void toCoeff();

    /** Transform many Polys to Eval as one backend batch. */
    static void batchToEval(std::vector<Poly> &polys);
    /** Transform many Polys to Coeff as one backend batch. */
    static void batchToCoeff(std::vector<Poly> &polys);
    /** Override the domain tag without transforming (expert use). */
    void setDomain(Domain d) { domain_ = d; }

    /** this += other (element-wise; both operands in the same domain) */
    void addInPlace(const Poly &other);
    /** this -= other */
    void subInPlace(const Poly &other);
    /** this = -this */
    void negInPlace();
    /** this = this ⊙ other; both must be in Eval domain. */
    void mulPointwiseInPlace(const Poly &other);
    /** this *= c (scalar) */
    void scalarMulInPlace(u64 c);

    Poly operator+(const Poly &o) const;
    Poly operator-(const Poly &o) const;
    Poly operator*(const Poly &o) const; ///< full negacyclic product

    /**
     * Apply the Galois automorphism X -> X^g (g odd), in the
     * coefficient domain (the AutoU kernel).
     */
    Poly automorphism(u64 g) const;

    /**
     * Multiply by the monomial X^t, t in [0, 2N) — the negacyclic
     * rotation performed by Trinity's Rotator unit.
     */
    Poly mulMonomial(u64 t) const;

    /** Uniform random polynomial. */
    static Poly uniform(size_t n, u64 q, Rng &rng,
                        Domain d = Domain::Coeff);
    /** Ternary {-1,0,1} polynomial (secrets). */
    static Poly ternary(size_t n, u64 q, Rng &rng);
    /** Rounded-Gaussian noise polynomial. */
    static Poly gaussian(size_t n, u64 q, double sigma, Rng &rng);

    /** Infinity norm of the centered representation. */
    u64 infNorm() const;

  private:
    size_t n_;
    Modulus mod_;
    std::shared_ptr<const NttTable> table_;
    Domain domain_;
    std::vector<u64> coeffs_;

    void checkCompatible(const Poly &other) const;
};

} // namespace trinity

#endif // TRINITY_POLY_POLY_H
