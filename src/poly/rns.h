/**
 * @file
 * Residue Number System polynomials and fast base conversion.
 *
 * RNS-CKKS decomposes a wide-modulus polynomial into limbs over small
 * NTT-friendly primes (Table I: Q = prod q_i). An RnsPoly stores all
 * limbs in ONE contiguous limb-major buffer (limbs x N) so the batched
 * kernels an accelerator executes in bulk — NTT, ModMul, BConv, Auto —
 * operate on a single allocation; per-limb access goes through the
 * lightweight LimbView. All bulk operations route through the active
 * PolyBackend execution engine.
 *
 * The BConv kernel (Section II-A) — a matrix product between an
 * alpha x N limb matrix and an alpha x l base-change matrix — is what
 * Trinity maps onto CU systolic arrays. BaseConverter is its bit-exact
 * software model, also routed through the backend so a future
 * CU-systolic or GPU engine can own it.
 */

#ifndef TRINITY_POLY_RNS_H
#define TRINITY_POLY_RNS_H

#include <vector>

#include "backend/poly_backend.h"
#include "poly/poly.h"

namespace trinity {

/** Read-only view of one limb inside an RnsPoly's flat buffer. */
class ConstLimbView
{
  public:
    ConstLimbView(const u64 *data, size_t n, const Modulus *mod,
                  Domain domain)
        : data_(data), n_(n), mod_(mod), domain_(domain)
    {
    }

    size_t n() const { return n_; }
    u64 q() const { return mod_->value(); }
    const Modulus &modulus() const { return *mod_; }
    Domain domain() const { return domain_; }
    const u64 *data() const { return data_; }
    u64 operator[](size_t i) const { return data_[i]; }

    /** Copy of the limb coefficients. */
    std::vector<u64>
    coeffs() const
    {
        return std::vector<u64>(data_, data_ + n_);
    }

    /** Materialize the limb as a standalone Poly (copies). */
    Poly toPoly() const;

    /** Infinity norm of the centered representation. */
    u64 infNorm() const;

  private:
    const u64 *data_;
    size_t n_;
    const Modulus *mod_;
    Domain domain_;
};

/** Mutable view of one limb inside an RnsPoly's flat buffer. */
class LimbView
{
  public:
    LimbView(u64 *data, size_t n, const Modulus *mod, Domain domain)
        : data_(data), n_(n), mod_(mod), domain_(domain)
    {
    }

    operator ConstLimbView() const
    {
        return ConstLimbView(data_, n_, mod_, domain_);
    }

    size_t n() const { return n_; }
    u64 q() const { return mod_->value(); }
    const Modulus &modulus() const { return *mod_; }
    Domain domain() const { return domain_; }
    u64 *data() { return data_; }
    const u64 *data() const { return data_; }
    u64 &operator[](size_t i) { return data_[i]; }
    u64 operator[](size_t i) const { return data_[i]; }

    std::vector<u64>
    coeffs() const
    {
        return std::vector<u64>(data_, data_ + n_);
    }

    Poly toPoly() const;
    u64 infNorm() const;

    /** Copy a Poly's coefficients into the slot (n/q/domain must match). */
    LimbView &operator=(const Poly &p);

  private:
    u64 *data_;
    size_t n_;
    const Modulus *mod_;
    Domain domain_;
};

/** Element-wise sum of two limbs as a standalone Poly. */
Poly operator+(const ConstLimbView &a, const ConstLimbView &b);

/**
 * Polynomial in RNS representation over a flat limb-major buffer.
 * All limbs share one Domain tag (they are transformed together).
 */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /** Zero polynomial over the given prime set (coefficient domain). */
    RnsPoly(size_t n, const std::vector<u64> &moduli);

    /** Gather existing limbs (all same length and domain) into flat form. */
    explicit RnsPoly(std::vector<Poly> limbs);

    size_t n() const { return n_; }
    size_t numLimbs() const { return mods_.size(); }

    LimbView
    limb(size_t i)
    {
        return LimbView(limbData(i), n_, &mods_[i], domain_);
    }
    ConstLimbView
    limb(size_t i) const
    {
        return ConstLimbView(limbData(i), n_, &mods_[i], domain_);
    }

    /** Raw pointer to limb @p i inside the flat buffer. */
    u64 *limbData(size_t i) { return data_.data() + i * n_; }
    const u64 *limbData(size_t i) const { return data_.data() + i * n_; }

    /** The whole limbs x N buffer, limb-major. */
    const std::vector<u64> &flat() const { return data_; }
    std::vector<u64> &flat() { return data_; }

    const Modulus &modulusAt(size_t i) const { return mods_[i]; }
    const NttTable &nttTableAt(size_t i) const { return *tables_[i]; }

    /** Materialize limb @p i as a standalone Poly (copies). */
    Poly limbPoly(size_t i) const;

    /** Overwrite limb @p i from a Poly (n/q/domain must match). */
    void setLimb(size_t i, const Poly &p);

    /** Current modulus chain. */
    std::vector<u64> moduli() const;

    void toEval();
    void toCoeff();
    Domain domain() const { return domain_; }
    /** Override the domain tag without transforming (expert use). */
    void setDomain(Domain d) { domain_ = d; }

    void addInPlace(const RnsPoly &o);
    void subInPlace(const RnsPoly &o);
    void negInPlace();
    void mulPointwiseInPlace(const RnsPoly &o);
    /** limb i *= scalars[i] (one reduced scalar per limb). */
    void scalarMulLimbwise(const std::vector<u64> &scalars);

    RnsPoly operator+(const RnsPoly &o) const;
    RnsPoly operator-(const RnsPoly &o) const;

    /** Drop the last limb (modulus-chain shortening; used by Rescale). */
    void dropLastLimb();

    /** First @p count limbs as a new RnsPoly (modulus-chain slicing). */
    RnsPoly prefix(size_t count) const;

    /** Apply automorphism X -> X^g to every limb (coeff domain). */
    RnsPoly automorphism(u64 g) const;

    /** Multiply every limb by X^t (coeff domain). */
    RnsPoly mulMonomial(u64 t) const;

    /**
     * Encode a small signed integer polynomial into all limbs
     * (each coefficient reduced per limb modulus).
     */
    static RnsPoly fromSigned(const std::vector<i64> &coeffs, size_t n,
                              const std::vector<u64> &moduli);

    /** Uniform random polynomial over every limb. */
    static RnsPoly uniform(size_t n, const std::vector<u64> &moduli,
                           Rng &rng, Domain d = Domain::Coeff);

  private:
    size_t n_ = 0;
    Domain domain_ = Domain::Coeff;
    std::vector<u64> data_; ///< limb-major, numLimbs * n
    std::vector<Modulus> mods_;
    std::vector<std::shared_ptr<const NttTable>> tables_;

    void checkCompatible(const RnsPoly &o) const;
};

/**
 * Fast (HPS-style) approximate base conversion between RNS bases —
 * the BConv kernel.
 *
 * For input x given by limbs x_i mod q_i, outputs
 *   y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i)  mod p_j,
 * which represents x + u*Q for some 0 <= u < #from limbs. The small
 * Q-overshoot is absorbed by keyswitch noise, exactly as in RNS-CKKS.
 * Execution is delegated to the active PolyBackend.
 */
class BaseConverter
{
  public:
    BaseConverter(const std::vector<u64> &from,
                  const std::vector<u64> &to);

    const std::vector<u64> &fromModuli() const { return from_; }
    const std::vector<u64> &toModuli() const { return to_; }

    /**
     * Convert coefficient-domain limbs given as raw pointers: in[i]
     * over from[i], out[j] over to[j], each of length @p n. This is
     * the zero-copy path the evaluator uses against flat buffers.
     */
    void convertPointers(const u64 *const *in, u64 *const *out,
                         size_t n) const;

    /** Convert a coefficient-domain RnsPoly over the `from` basis. */
    RnsPoly convert(const RnsPoly &in) const;

    /**
     * Convert coefficient-domain limbs. Input polys must be over the
     * `from` moduli in order; output polys are over the `to` moduli.
     */
    std::vector<Poly> convert(const std::vector<Poly> &in) const;

    /** The precomputed constants, for backends that own BConv. */
    BConvPlan plan() const;

    /** Number of modular multiplications one conversion performs. */
    u64 mulCount(size_t n) const
    {
        return static_cast<u64>(n) * from_.size() * (1 + to_.size());
    }

  private:
    std::vector<u64> from_;
    std::vector<u64> to_;
    std::vector<Modulus> fromMods_;
    std::vector<Modulus> toMods_;
    /** (Q/q_i)^{-1} mod q_i, plus Shoup preconditioners. */
    std::vector<u64> qhatInv_;
    std::vector<u64> qhatInvPrecon_;
    /** (Q/q_i) mod p_j, row-major [i * to.size() + j]. */
    std::vector<u64> qhatModP_;
};

} // namespace trinity

#endif // TRINITY_POLY_RNS_H
