/**
 * @file
 * Residue Number System polynomials and fast base conversion.
 *
 * RNS-CKKS decomposes a wide-modulus polynomial into limbs over small
 * NTT-friendly primes (Table I: Q = prod q_i). The BConv kernel
 * (Section II-A) — a matrix product between an alpha x N limb matrix
 * and an alpha x l base-change matrix — is what Trinity maps onto CU
 * systolic arrays. BaseConverter is its bit-exact software model.
 */

#ifndef TRINITY_POLY_RNS_H
#define TRINITY_POLY_RNS_H

#include <vector>

#include "poly/poly.h"

namespace trinity {

/** Polynomial in RNS representation: one Poly limb per prime. */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /** Zero polynomial over the given prime set. */
    RnsPoly(size_t n, const std::vector<u64> &moduli);

    /** Assemble from existing limbs. */
    explicit RnsPoly(std::vector<Poly> limbs);

    size_t n() const { return limbs_.empty() ? 0 : limbs_[0].n(); }
    size_t numLimbs() const { return limbs_.size(); }
    const Poly &limb(size_t i) const { return limbs_[i]; }
    Poly &limb(size_t i) { return limbs_[i]; }
    const std::vector<Poly> &limbs() const { return limbs_; }
    std::vector<Poly> &limbs() { return limbs_; }

    /** Current modulus chain. */
    std::vector<u64> moduli() const;

    void toEval();
    void toCoeff();
    Domain domain() const;

    void addInPlace(const RnsPoly &o);
    void subInPlace(const RnsPoly &o);
    void negInPlace();
    void mulPointwiseInPlace(const RnsPoly &o);

    RnsPoly operator+(const RnsPoly &o) const;
    RnsPoly operator-(const RnsPoly &o) const;

    /** Drop the last limb (modulus-chain shortening; used by Rescale). */
    void dropLastLimb();

    /** Apply automorphism X -> X^g to every limb (coeff domain). */
    RnsPoly automorphism(u64 g) const;

    /** Multiply every limb by X^t (coeff domain). */
    RnsPoly mulMonomial(u64 t) const;

    /**
     * Encode a small signed integer polynomial into all limbs
     * (each coefficient reduced per limb modulus).
     */
    static RnsPoly fromSigned(const std::vector<i64> &coeffs, size_t n,
                              const std::vector<u64> &moduli);

  private:
    std::vector<Poly> limbs_;
};

/**
 * Fast (HPS-style) approximate base conversion between RNS bases —
 * the BConv kernel.
 *
 * For input x given by limbs x_i mod q_i, outputs
 *   y_j = sum_i [x_i * (Q/q_i)^{-1}]_{q_i} * (Q/q_i)  mod p_j,
 * which represents x + u*Q for some 0 <= u < #from limbs. The small
 * Q-overshoot is absorbed by keyswitch noise, exactly as in RNS-CKKS.
 */
class BaseConverter
{
  public:
    BaseConverter(const std::vector<u64> &from,
                  const std::vector<u64> &to);

    const std::vector<u64> &fromModuli() const { return from_; }
    const std::vector<u64> &toModuli() const { return to_; }

    /**
     * Convert coefficient-domain limbs. Input polys must be over the
     * `from` moduli in order; output polys are over the `to` moduli.
     */
    std::vector<Poly> convert(const std::vector<Poly> &in) const;

    /** Number of modular multiplications one conversion performs. */
    u64 mulCount(size_t n) const
    {
        return static_cast<u64>(n) * from_.size() * (1 + to_.size());
    }

  private:
    std::vector<u64> from_;
    std::vector<u64> to_;
    std::vector<Modulus> fromMods_;
    std::vector<Modulus> toMods_;
    /** (Q/q_i)^{-1} mod q_i */
    std::vector<u64> qhatInv_;
    /** (Q/q_i) mod p_j, indexed [i][j] */
    std::vector<std::vector<u64>> qhatModP_;
};

} // namespace trinity

#endif // TRINITY_POLY_RNS_H
