/**
 * @file
 * Complex FFTs.
 *
 * Two users:
 *  1. The CKKS encoder's canonical embedding ("special" FFT evaluated
 *     at the 5^j-indexed primitive 2N-th roots, HEAAN-style).
 *  2. The FFT-based external product used by prior TFHE accelerators
 *     (Matcha/Strix/Morphling). Trinity's motivation is that FFT
 *     introduces approximation error while NTT does not; the
 *     fft_vs_ntt bench and tests quantify exactly that using this
 *     implementation.
 */

#ifndef TRINITY_POLY_FFT_H
#define TRINITY_POLY_FFT_H

#include <complex>
#include <vector>

#include "common/types.h"

namespace trinity {

using cd = std::complex<double>;

/**
 * In-place iterative radix-2 cyclic FFT (natural order in/out).
 * @param a data, length a power of two
 * @param invert true for the inverse transform (includes 1/n scaling)
 */
void fft(std::vector<cd> &a, bool invert);

/**
 * Negacyclic convolution of two integer polynomials via the twisted
 * FFT, rounding the result to nearest integers — the arithmetic prior
 * TFHE accelerators perform in hardware. Exposes FFT rounding error.
 *
 * @param a first polynomial, coefficients as signed integers
 * @param b second polynomial
 * @return round(a * b mod X^N + 1) computed in double precision
 */
std::vector<i64> negacyclicConvolutionFft(const std::vector<i64> &a,
                                          const std::vector<i64> &b);

/**
 * Canonical-embedding transform pair used by the CKKS encoder.
 *
 * Operates on n = N/2 slots; the evaluation points are
 * zeta^(5^j mod 2N) with zeta = exp(i*pi/N).
 */
class SpecialFft
{
  public:
    /** @param slots number of CKKS slots n = N/2 (power of two) */
    explicit SpecialFft(size_t slots);

    /** Decode direction: coefficients-packed vector -> slot values. */
    void forward(std::vector<cd> &vals) const;

    /** Encode direction: slot values -> coefficients-packed vector. */
    void inverse(std::vector<cd> &vals) const;

    size_t slots() const { return slots_; }

  private:
    size_t slots_;
    size_t m_; // 2N = 4 * slots
    std::vector<cd> ksiPows_;     // exp(2*pi*i*k / m), k in [0, m]
    std::vector<u32> rotGroup_;   // 5^j mod m

    void bitReverseVec(std::vector<cd> &vals) const;
};

} // namespace trinity

#endif // TRINITY_POLY_FFT_H
