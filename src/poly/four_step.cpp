#include "poly/four_step.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace trinity {

FourStepNtt::FourStepNtt(size_t n1, size_t n2, const Modulus &mod)
    : n1_(n1), n2_(n2), mod_(mod)
{
    trinity_assert(isPowerOfTwo(n1) && isPowerOfTwo(n2),
                   "four-step factors must be powers of two");
    size_t n = n1 * n2;
    t1_ = NttTableCache::get(n1, mod.value());
    t2_ = NttTableCache::get(n2, mod.value());
    tn_ = NttTableCache::get(n, mod.value());

    u64 psi = tn_->psi();
    u64 w_n = mod_.mul(psi, psi); // principal n-th root
    u64 iw_n = mod_.inv(w_n);

    twist_.resize(n);
    itwist_.resize(n);
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        // Row k1 is the geometric sequence (W_N^k1)^i2 — exactly what
        // the hardware's OF-Twist unit generates from (first item,
        // common ratio).
        u64 ratio = mod_.pow(w_n, k1);
        u64 iratio = mod_.pow(iw_n, k1);
        u64 v = 1, iv = 1;
        for (size_t i2 = 0; i2 < n2_; ++i2) {
            twist_[k1 * n2_ + i2] = v;
            itwist_[k1 * n2_ + i2] = iv;
            v = mod_.mul(v, ratio);
            iv = mod_.mul(iv, iratio);
        }
    }

    psiPow_.resize(n);
    ipsiPow_.resize(n);
    u64 ipsi = mod_.inv(psi);
    u64 p = 1, ip = 1;
    for (size_t i = 0; i < n; ++i) {
        psiPow_[i] = p;
        ipsiPow_[i] = ip;
        p = mod_.mul(p, psi);
        ip = mod_.mul(ip, ipsi);
    }
}

void
FourStepNtt::forwardCyclic(std::vector<u64> &a) const
{
    size_t n = n1_ * n2_;
    trinity_assert(a.size() == n, "four-step size mismatch");
    // A[i1][i2] = a[i2 + n2*i1].
    // Step 1: length-n1 DFT down each column i2.
    std::vector<u64> col(n1_);
    for (size_t i2 = 0; i2 < n2_; ++i2) {
        for (size_t i1 = 0; i1 < n1_; ++i1) {
            col[i1] = a[i2 + n2_ * i1];
        }
        t1_->forwardCyclic(col.data());
        for (size_t k1 = 0; k1 < n1_; ++k1) {
            a[i2 + n2_ * k1] = col[k1];
        }
    }
    // Step 2: twist B[k1][i2] *= W_N^(i2*k1).
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        for (size_t i2 = 0; i2 < n2_; ++i2) {
            a[i2 + n2_ * k1] =
                mod_.mul(a[i2 + n2_ * k1], twist_[k1 * n2_ + i2]);
        }
    }
    // Step 3: length-n2 DFT along each row k1 (contiguous).
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        t2_->forwardCyclic(a.data() + n2_ * k1);
    }
    // Step 4: transpose; X[k1 + n1*k2] = C[k1][k2].
    std::vector<u64> out(n);
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        for (size_t k2 = 0; k2 < n2_; ++k2) {
            out[k1 + n1_ * k2] = a[k2 + n2_ * k1];
        }
    }
    a.swap(out);
}

void
FourStepNtt::inverseCyclic(std::vector<u64> &a) const
{
    size_t n = n1_ * n2_;
    trinity_assert(a.size() == n, "four-step size mismatch");
    // Reverse of forwardCyclic.
    std::vector<u64> c(n);
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        for (size_t k2 = 0; k2 < n2_; ++k2) {
            c[k2 + n2_ * k1] = a[k1 + n1_ * k2];
        }
    }
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        t2_->inverseCyclic(c.data() + n2_ * k1);
    }
    for (size_t k1 = 0; k1 < n1_; ++k1) {
        for (size_t i2 = 0; i2 < n2_; ++i2) {
            c[i2 + n2_ * k1] =
                mod_.mul(c[i2 + n2_ * k1], itwist_[k1 * n2_ + i2]);
        }
    }
    std::vector<u64> col(n1_);
    for (size_t i2 = 0; i2 < n2_; ++i2) {
        for (size_t k1 = 0; k1 < n1_; ++k1) {
            col[k1] = c[i2 + n2_ * k1];
        }
        t1_->inverseCyclic(col.data());
        for (size_t i1 = 0; i1 < n1_; ++i1) {
            c[i2 + n2_ * i1] = col[i1];
        }
    }
    a.swap(c);
}

void
FourStepNtt::forward(std::vector<u64> &a) const
{
    size_t n = n1_ * n2_;
    for (size_t i = 0; i < n; ++i) {
        a[i] = mod_.mul(a[i], psiPow_[i]);
    }
    forwardCyclic(a);
}

void
FourStepNtt::inverse(std::vector<u64> &a) const
{
    size_t n = n1_ * n2_;
    inverseCyclic(a);
    for (size_t i = 0; i < n; ++i) {
        a[i] = mod_.mul(a[i], ipsiPow_[i]);
    }
}

} // namespace trinity
