/**
 * @file
 * Four-step (Bailey) NTT decomposition.
 *
 * Trinity computes NTTs longer than its 2M-point NTTU by splitting
 * N = N1·N2 into phase-1 column transforms, an on-the-fly twisting-
 * factor multiplication (OF-Twist), phase-2 row transforms, and a
 * transpose (Sections IV-B/IV-E). For 4M..2M^2 the phase-2 transform
 * runs on CU butterfly columns. This class is the bit-exact software
 * model of that decomposition, validated against the monolithic NTT.
 */

#ifndef TRINITY_POLY_FOUR_STEP_H
#define TRINITY_POLY_FOUR_STEP_H

#include <memory>
#include <vector>

#include "poly/ntt.h"

namespace trinity {

/** Four-step cyclic/negacyclic NTT of length n1*n2. */
class FourStepNtt
{
  public:
    /**
     * @param n1 phase-1 (column) transform length
     * @param n2 phase-2 (row) transform length
     * @param mod prime modulus, q ≡ 1 mod 2*n1*n2
     */
    FourStepNtt(size_t n1, size_t n2, const Modulus &mod);

    size_t n() const { return n1_ * n2_; }

    /** Forward cyclic DFT, natural order in and out. */
    void forwardCyclic(std::vector<u64> &a) const;

    /** Inverse cyclic DFT, natural order in and out. */
    void inverseCyclic(std::vector<u64> &a) const;

    /** Forward negacyclic NTT (same semantics as CgNtt::forward). */
    void forward(std::vector<u64> &a) const;

    /** Inverse negacyclic NTT. */
    void inverse(std::vector<u64> &a) const;

  private:
    size_t n1_, n2_;
    Modulus mod_;
    std::shared_ptr<const NttTable> t1_;  // length n1 sub-transform
    std::shared_ptr<const NttTable> t2_;  // length n2 sub-transform
    std::shared_ptr<const NttTable> tn_;  // full-length table (psi source)
    /** twist_[k1*n2 + i2] = W_N^(i2*k1); OF-Twist generates these from
     *  a first item and common ratio per row — we precompute. */
    std::vector<u64> twist_;
    std::vector<u64> itwist_;
    /** psi^i twist for the negacyclic wrapper. */
    std::vector<u64> psiPow_, ipsiPow_;
};

} // namespace trinity

#endif // TRINITY_POLY_FOUR_STEP_H
