#include "poly/ntt.h"

#include <map>
#include <mutex>
#include <shared_mutex>

#include "common/bitops.h"
#include "common/logging.h"
#include "common/primes.h"

namespace trinity {

NttTable::NttTable(size_t n, const Modulus &mod)
    : n_(n), logn_(log2Exact(n)), mod_(mod)
{
    trinity_assert(isPowerOfTwo(n), "NTT length must be a power of two");
    u64 q = mod.value();
    if ((q - 1) % (2 * n) != 0) {
        trinity_fatal("modulus %llu is not NTT-friendly for N=%zu",
                      static_cast<unsigned long long>(q), n);
    }
    psi_ = findPrimitiveRoot(2 * n, mod_);
    psiInv_ = mod_.inv(psi_);
    nInv_ = mod_.inv(n);
    nInvPrecon_ = mod_.shoupPrecompute(nInv_);

    psiBr_.resize(n);
    psiBrPrecon_.resize(n);
    ipsiBr_.resize(n);
    ipsiBrPrecon_.resize(n);
    psiPow_.resize(n);
    psiPowPrecon_.resize(n);
    ipsiPow_.resize(n);
    ipsiPowPrecon_.resize(n);

    u64 p = 1, pi = 1;
    for (size_t i = 0; i < n; ++i) {
        psiPow_[i] = p;
        ipsiPow_[i] = pi;
        psiPowPrecon_[i] = mod_.shoupPrecompute(p);
        ipsiPowPrecon_[i] = mod_.shoupPrecompute(pi);
        p = mod_.mul(p, psi_);
        pi = mod_.mul(pi, psiInv_);
    }
    for (size_t i = 0; i < n; ++i) {
        size_t r = bitReverse(i, logn_);
        psiBr_[i] = psiPow_[r];
        ipsiBr_[i] = ipsiPow_[r];
        psiBrPrecon_[i] = mod_.shoupPrecompute(psiBr_[i]);
        ipsiBrPrecon_[i] = mod_.shoupPrecompute(ipsiBr_[i]);
    }
    // n == 1 has no stages; the degenerate "last stage twiddle" is
    // just N^{-1} = 1 so the fused path stays an identity there.
    ipsiLastScaled_ = n >= 2 ? mod_.mul(ipsiBr_[1], nInv_) : nInv_;
    ipsiLastScaledPrecon_ = mod_.shoupPrecompute(ipsiLastScaled_);
}

void
NttTable::forwardCore(u64 *a, const std::vector<u64> &tw,
                      const std::vector<u64> &tw_pre) const
{
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            u64 s = tw[m + i];
            u64 sp = tw_pre[m + i];
            size_t j0 = 2 * i * t;
            for (size_t j = j0; j < j0 + t; ++j) {
                u64 u = a[j];
                u64 v = mod_.mulShoup(a[j + t], s, sp);
                a[j] = mod_.add(u, v);
                a[j + t] = mod_.sub(u, v);
            }
        }
    }
}

void
NttTable::inverseCore(u64 *a, const std::vector<u64> &tw,
                      const std::vector<u64> &tw_pre) const
{
    // All stages but the last, then the final stage with N^{-1}
    // folded into both butterfly outputs (see ipsiLastScaled()):
    // mulShoup is exact, so mulShoup(mulShoup(x, s), nInv) ==
    // mulShoup(x, s * nInv mod q) and the separate scaling pass the
    // textbook network ends with is unnecessary.
    size_t t = 1;
    for (size_t m = n_; m > 2; m >>= 1) {
        size_t h = m >> 1;
        for (size_t i = 0; i < h; ++i) {
            u64 s = tw[h + i];
            u64 sp = tw_pre[h + i];
            size_t j0 = 2 * i * t;
            for (size_t j = j0; j < j0 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = mod_.add(u, v);
                a[j + t] = mod_.mulShoup(mod_.sub(u, v), s, sp);
            }
        }
        t <<= 1;
    }
    if (n_ >= 2) {
        size_t half = n_ / 2;
        for (size_t j = 0; j < half; ++j) {
            u64 u = a[j];
            u64 v = a[j + half];
            a[j] = mod_.mulShoup(mod_.add(u, v), nInv_, nInvPrecon_);
            a[j + half] = mod_.mulShoup(mod_.sub(u, v), ipsiLastScaled_,
                                        ipsiLastScaledPrecon_);
        }
    }
}

void
NttTable::forwardStages(u64 *a, size_t stageLo, size_t stageHi,
                        size_t bLo, size_t bHi) const
{
    for (size_t s = stageLo; s < stageHi; ++s) {
        size_t m = size_t{1} << s;
        size_t t = n_ >> (s + 1);
        size_t iLo = bLo / t;
        size_t iHi = (bHi + t - 1) / t;
        for (size_t i = iLo; i < iHi; ++i) {
            u64 tw = psiBr_[m + i];
            u64 twp = psiBrPrecon_[m + i];
            size_t lo = bLo > i * t ? bLo - i * t : 0;
            size_t hi = bHi < (i + 1) * t ? bHi - i * t : t;
            u64 *p = a + 2 * i * t;
            for (size_t j = lo; j < hi; ++j) {
                u64 u = p[j];
                u64 v = mod_.mulShoup(p[j + t], tw, twp);
                p[j] = mod_.add(u, v);
                p[j + t] = mod_.sub(u, v);
            }
        }
    }
}

void
NttTable::inverseStages(u64 *a, size_t stageLo, size_t stageHi,
                        size_t bLo, size_t bHi, bool scaleN) const
{
    for (size_t s = stageLo; s < stageHi; ++s) {
        size_t h = n_ >> (s + 1);
        size_t t = size_t{1} << s;
        bool fused = scaleN && s + 1 == logn_;
        size_t iLo = bLo / t;
        size_t iHi = (bHi + t - 1) / t;
        for (size_t i = iLo; i < iHi; ++i) {
            u64 tw = fused ? ipsiLastScaled_ : ipsiBr_[h + i];
            u64 twp =
                fused ? ipsiLastScaledPrecon_ : ipsiBrPrecon_[h + i];
            size_t lo = bLo > i * t ? bLo - i * t : 0;
            size_t hi = bHi < (i + 1) * t ? bHi - i * t : t;
            u64 *p = a + 2 * i * t;
            for (size_t j = lo; j < hi; ++j) {
                u64 u = p[j];
                u64 v = p[j + t];
                p[j] = fused ? mod_.mulShoup(mod_.add(u, v), nInv_,
                                             nInvPrecon_)
                             : mod_.add(u, v);
                p[j + t] = mod_.mulShoup(mod_.sub(u, v), tw, twp);
            }
        }
    }
}

void
NttTable::forward(u64 *a) const
{
    forwardCore(a, psiBr_, psiBrPrecon_);
}

void
NttTable::inverse(u64 *a) const
{
    inverseCore(a, ipsiBr_, ipsiBrPrecon_);
}

void
NttTable::forwardCyclic(u64 *a) const
{
    // cyclic(a)[k] = negacyclic(a ⊙ psi^{-i})[bitrev(k)]
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mod_.mulShoup(a[i], ipsiPow_[i], ipsiPowPrecon_[i]);
    }
    forward(a);
    bitrevPermute(a, n_);
}

void
NttTable::inverseCyclic(u64 *a) const
{
    bitrevPermute(a, n_);
    inverse(a);
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mod_.mulShoup(a[i], psiPow_[i], psiPowPrecon_[i]);
    }
}

void
NttTable::bitrevPermute(u64 *a, size_t n)
{
    u32 logn = log2Exact(n);
    for (size_t i = 0; i < n; ++i) {
        size_t r = bitReverse(i, logn);
        if (r > i) {
            std::swap(a[i], a[r]);
        }
    }
}

std::shared_ptr<const NttTable>
NttTableCache::get(size_t n, u64 q)
{
    // Thread-safe for concurrent backend workers: lookups take a
    // shared (reader) lock so the steady-state hit path never
    // serializes the pool, and the O(n log n) table construction
    // happens outside any lock so a cold lookup does not stall every
    // other thread. Two threads racing on the same cold key build the
    // table twice; the first emplace wins and the loser's copy is
    // dropped — correctness is unaffected since tables are immutable.
    static std::map<std::pair<size_t, u64>,
                    std::shared_ptr<const NttTable>> cache;
    static std::shared_mutex mtx;
    auto key = std::make_pair(n, q);
    {
        std::shared_lock<std::shared_mutex> lock(mtx);
        auto it = cache.find(key);
        if (it != cache.end()) {
            return it->second;
        }
    }
    auto table = std::make_shared<const NttTable>(n, Modulus(q));
    std::unique_lock<std::shared_mutex> lock(mtx);
    auto [it, inserted] = cache.emplace(key, table);
    return it->second;
}

} // namespace trinity
