#include "poly/cg_ntt.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace trinity {

CgNtt::CgNtt(size_t n, const Modulus &mod)
    : n_(n), logn_(log2Exact(n)), mod_(mod)
{
    trinity_assert(isPowerOfTwo(n) && n >= 2, "CG-NTT length");
    table_ = NttTableCache::get(n, mod.value());
    u64 psi = table_->psi();
    u64 ipsi = mod_.inv(psi);
    u64 omega = mod_.mul(psi, psi); // principal n-th root

    psiPow_.resize(n);
    psiPowPre_.resize(n);
    ipsiPow_.resize(n);
    ipsiPowPre_.resize(n);
    u64 p = 1, ip = 1;
    for (size_t i = 0; i < n; ++i) {
        psiPow_[i] = p;
        ipsiPow_[i] = ip;
        psiPowPre_[i] = mod_.shoupPrecompute(p);
        ipsiPowPre_[i] = mod_.shoupPrecompute(ip);
        p = mod_.mul(p, psi);
        ip = mod_.mul(ip, ipsi);
    }
    halfInv_ = mod_.inv(2);
    halfInvPre_ = mod_.shoupPrecompute(halfInv_);

    // Simulate the perfect-shuffle dataflow against the standard DIF
    // schedule to derive per-stage twiddles.
    std::vector<u64> omega_pow(n);
    u64 w = 1;
    for (size_t i = 0; i < n; ++i) {
        omega_pow[i] = w;
        w = mod_.mul(w, omega);
    }

    twiddle_.assign(logn_, std::vector<u64>(n / 2));
    twiddlePre_.assign(logn_, std::vector<u64>(n / 2));
    itwiddle_.assign(logn_, std::vector<u64>(n / 2));
    itwiddlePre_.assign(logn_, std::vector<u64>(n / 2));

    std::vector<size_t> cur(n), nxt(n);
    for (size_t i = 0; i < n; ++i) {
        cur[i] = i;
    }
    for (u32 s = 0; s < logn_; ++s) {
        size_t m = n >> s;     // DIF block size at this stage
        size_t half = m >> 1;
        for (size_t i = 0; i < n / 2; ++i) {
            size_t su = cur[i];
            size_t sv = cur[i + n / 2];
            // Pease invariant: the shuffle keeps DIF pairs adjacent in
            // the physical layout at distance n/2.
            trinity_assert(sv == su + half,
                           "CG invariant broken at stage %u bfly %zu",
                           s, i);
            size_t j = su % m; // position within the DIF block
            trinity_assert(j < half, "CG twiddle index out of range");
            u64 tw = omega_pow[(j << s) % n]; // omega_m^j = omega_n^(j*2^s)
            twiddle_[s][i] = tw;
            twiddlePre_[s][i] = mod_.shoupPrecompute(tw);
            u64 itw = mod_.inv(tw);
            itwiddle_[s][i] = itw;
            itwiddlePre_[s][i] = mod_.shoupPrecompute(itw);
            nxt[2 * i] = su;
            nxt[2 * i + 1] = sv;
        }
        cur.swap(nxt);
    }
    // Standard DIF leaves X[bitrev(j)] in slot j; cur[p] names the slot
    // at physical position p after all shuffles.
    std::vector<size_t> pos_of_slot(n);
    for (size_t pth = 0; pth < n; ++pth) {
        pos_of_slot[cur[pth]] = pth;
    }
    outPerm_.resize(n);
    for (size_t k = 0; k < n; ++k) {
        outPerm_[k] = pos_of_slot[bitReverse(k, logn_)];
    }
}

void
CgNtt::forward(std::vector<u64> &a) const
{
    trinity_assert(a.size() == n_, "CG-NTT size mismatch");
    // Negacyclic pre-twist, then cyclic constant-geometry stages.
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mod_.mulShoup(a[i], psiPow_[i], psiPowPre_[i]);
    }
    std::vector<u64> buf(n_);
    u64 *src = a.data();
    u64 *dst = buf.data();
    for (u32 s = 0; s < logn_; ++s) {
        const auto &tw = twiddle_[s];
        const auto &twp = twiddlePre_[s];
        for (size_t i = 0; i < n_ / 2; ++i) {
            u64 u = src[i];
            u64 v = src[i + n_ / 2];
            dst[2 * i] = mod_.add(u, v);
            dst[2 * i + 1] =
                mod_.mulShoup(mod_.sub(u, v), tw[i], twp[i]);
        }
        std::swap(src, dst);
    }
    // src now points at the stage output; emit in natural order.
    std::vector<u64> out(n_);
    for (size_t k = 0; k < n_; ++k) {
        out[k] = src[outPerm_[k]];
    }
    a.swap(out);
}

void
CgNtt::inverse(std::vector<u64> &a) const
{
    trinity_assert(a.size() == n_, "CG-iNTT size mismatch");
    // Undo the output permutation.
    std::vector<u64> buf(n_);
    std::vector<u64> cur(n_);
    for (size_t k = 0; k < n_; ++k) {
        cur[outPerm_[k]] = a[k];
    }
    u64 *src = cur.data();
    u64 *dst = buf.data();
    // Reverse the stages with inverse butterflies:
    //   u = (y0 + y1*w^-1)/2 ; v = (y0 - y1*w^-1)/2
    for (u32 s = logn_; s-- > 0;) {
        const auto &itw = itwiddle_[s];
        const auto &itwp = itwiddlePre_[s];
        for (size_t i = 0; i < n_ / 2; ++i) {
            u64 y0 = src[2 * i];
            u64 y1 = mod_.mulShoup(src[2 * i + 1], itw[i], itwp[i]);
            u64 u = mod_.mulShoup(mod_.add(y0, y1), halfInv_,
                                  halfInvPre_);
            u64 v = mod_.mulShoup(mod_.sub(y0, y1), halfInv_,
                                  halfInvPre_);
            dst[i] = u;
            dst[i + n_ / 2] = v;
        }
        std::swap(src, dst);
    }
    for (size_t i = 0; i < n_; ++i) {
        a[i] = mod_.mulShoup(src[i], ipsiPow_[i], ipsiPowPre_[i]);
    }
}

} // namespace trinity
