#include "accel/reported.h"

namespace trinity {
namespace accel {

std::vector<ReportedRow>
table6Reported()
{
    return {
        {"Baseline-CKKS", "Bootstrap", 17200, "ms"},
        {"Baseline-CKKS", "HELR", 356000, "ms"},
        {"Baseline-CKKS", "ResNet-20", 1380000, "ms"},
        {"TensorFHE", "Bootstrap", 421.8, "ms"},
        {"TensorFHE", "HELR", 220, "ms"},
        {"TensorFHE", "ResNet-20", 4939, "ms"},
        {"F1", "HELR", 639, "ms"},
        {"F1", "ResNet-20", 2693, "ms"},
        {"CraterLake", "Bootstrap", 3.91, "ms"},
        {"CraterLake", "HELR", 119.52, "ms"},
        {"CraterLake", "ResNet-20", 249.45, "ms"},
        {"BTS", "Bootstrap", 22.88, "ms"},
        {"BTS", "HELR", 28.4, "ms"},
        {"BTS", "ResNet-20", 1910, "ms"},
        {"ARK", "Bootstrap", 3.52, "ms"},
        {"ARK", "HELR", 7.42, "ms"},
        {"ARK", "ResNet-20", 125, "ms"},
        {"SHARP", "Bootstrap", 3.12, "ms"},
        {"SHARP", "HELR", 2.53, "ms"},
        {"SHARP", "ResNet-20", 99, "ms"},
    };
}

std::vector<ReportedRow>
table7Reported()
{
    return {
        {"Baseline-TFHE", "Set-I", 63, "OPS"},
        {"Baseline-TFHE", "Set-II", 36, "OPS"},
        {"Baseline-TFHE", "Set-III", 12, "OPS"},
        {"GPU", "Set-I", 2500, "OPS"},
        {"GPU", "Set-II", 550, "OPS"},
        {"Matcha", "Set-I", 10000, "OPS"},
        {"Strix", "Set-I", 74696, "OPS"},
        {"Strix", "Set-II", 39600, "OPS"},
        {"Strix", "Set-III", 21104, "OPS"},
        {"Morphling", "Set-I", 147615, "OPS"},
        {"Morphling", "Set-II", 78692, "OPS"},
        {"Morphling", "Set-III", 41850, "OPS"},
        {"Morphling_1GHz", "Set-I", 123012, "OPS"},
        {"Morphling_1GHz", "Set-II", 65576, "OPS"},
        {"Morphling_1GHz", "Set-III", 34875, "OPS"},
    };
}

std::vector<ReportedRow>
table8Reported()
{
    return {
        {"Baseline-TFHE", "NN-20", 64600, "ms"},
        {"Baseline-TFHE", "NN-50", 129250, "ms"},
        {"Baseline-TFHE", "NN-100", 263540, "ms"},
        {"Strix_128bit", "NN-20", 434.44, "ms"},
        {"Strix_128bit", "NN-50", 1193.77, "ms"},
        {"Strix_128bit", "NN-100", 1511.77, "ms"},
        {"Strix_best(80bit)", "NN-20", 78.96, "ms"},
        {"Strix_best(80bit)", "NN-50", 148.73, "ms"},
        {"Strix_best(80bit)", "NN-100", 551.28, "ms"},
    };
}

std::vector<ReportedRow>
table9Reported()
{
    return {
        {"Baseline-SC", "nslot=2", 364, "ms"},
        {"Baseline-SC", "nslot=8", 492, "ms"},
        {"Baseline-SC", "nslot=32", 1168, "ms"},
    };
}

std::vector<ReportedRow>
table10Reported()
{
    return {
        {"Baseline-Hybrid", "HE3DB-4096", 3012, "s"},
        {"Baseline-Hybrid", "HE3DB-16384", 11835, "s"},
        {"SHARP+Morphling", "HE3DB-4096", 5.64, "s"},
        {"SHARP+Morphling", "HE3DB-16384", 22.55, "s"},
    };
}

std::vector<ReportedRow>
trinityPaperResults()
{
    return {
        {"Trinity", "Bootstrap", 1.92, "ms"},
        {"Trinity", "HELR", 1.37, "ms"},
        {"Trinity", "ResNet-20", 89, "ms"},
        {"Trinity", "PBS Set-I", 600060, "OPS"},
        {"Trinity", "PBS Set-II", 340136, "OPS"},
        {"Trinity", "PBS Set-III", 180987, "OPS"},
        {"Trinity-TFHE_w/o_CU", "PBS Set-I", 83333, "OPS"},
        {"Trinity-TFHE_w/o_CU", "PBS Set-II", 49603, "OPS"},
        {"Trinity-TFHE_w/o_CU", "PBS Set-III", 26393, "OPS"},
        {"Trinity-TFHE_w/_CU", "PBS Set-I", 150015, "OPS"},
        {"Trinity-TFHE_w/_CU", "PBS Set-II", 85034, "OPS"},
        {"Trinity-TFHE_w/_CU", "PBS Set-III", 45246, "OPS"},
        {"Trinity", "NN-20", 69.86, "ms"},
        {"Trinity", "NN-50", 146.26, "ms"},
        {"Trinity", "NN-100", 277.13, "ms"},
        {"Trinity", "Conversion nslot=2", 0.049, "ms"},
        {"Trinity", "Conversion nslot=8", 0.063, "ms"},
        {"Trinity", "Conversion nslot=32", 0.142, "ms"},
        {"Trinity", "HE3DB-4096", 0.42, "s"},
        {"Trinity", "HE3DB-16384", 1.68, "s"},
        {"Trinity", "Area", 157.26, "mm2"},
        {"Trinity", "Power", 229.36, "W"},
    };
}

} // namespace accel
} // namespace trinity
