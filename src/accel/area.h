/**
 * @file
 * Area and power model (Table XI / Table XII / Fig. 16).
 *
 * Per-component area and power constants are calibrated to the paper's
 * TSMC 7nm synthesis results (Table XI) — the only substitution made
 * for the unavailable PDK. Everything derived (cluster totals, chip
 * totals, cluster-count scaling, the SHARP+Morphling comparison) is
 * computed by this model:
 *   - per-cluster logic scales linearly with cluster count,
 *   - the all-to-all inter-cluster NoC scales quadratically,
 *   - scratchpad capacity (and HBM PHY) is a chip-level resource and
 *     stays fixed.
 */

#ifndef TRINITY_ACCEL_AREA_H
#define TRINITY_ACCEL_AREA_H

#include <string>
#include <vector>

namespace trinity {
namespace accel {

/** One Table XI row. */
struct ComponentArea
{
    std::string name;
    double areaMm2 = 0;
    double powerW = 0;
};

/** Area/power model for a Trinity configuration. */
class AreaModel
{
  public:
    explicit AreaModel(size_t clusters = 4);

    /** Per-component rows (counts folded in), cluster scope. */
    const std::vector<ComponentArea> &clusterComponents() const
    {
        return components_;
    }

    double clusterArea() const;
    double clusterPower() const;

    /** Chip-level rows: clusters, NoC, scratchpad, HBM PHY. */
    std::vector<ComponentArea> chipComponents() const;

    double totalArea() const;
    double totalPower() const;

    size_t clusters() const { return clusters_; }

    /** Published totals for the comparison table (Table XII). */
    static double sharpAreaMm2() { return 178.8; }      // 7nm
    static double morphlingAreaMm2() { return 4.0; }    // scaled to 7nm
    static double craterlakePowerW() { return 320.0; }

  private:
    size_t clusters_;
    std::vector<ComponentArea> components_;
};

} // namespace accel
} // namespace trinity

#endif // TRINITY_ACCEL_AREA_H
