#include "accel/area.h"

namespace trinity {
namespace accel {

namespace {

// Table XI per-cluster rows (counts folded into the row, as printed
// in the paper).
const ComponentArea kClusterRows[] = {
    {"2x NTTU", 3.20, 4.24},
    {"1x CU-1", 0.18, 0.31},
    {"4x CU-2", 1.44, 2.48},
    {"1x CU-3", 0.55, 0.93},
    {"AutoU", 0.04, 0.22},
    {"Rotator", 2.40, 8.57},
    {"EWE", 1.87, 4.47},
    {"VPU", 0.05, 0.07},
    {"NoC (intra)", 0.10, 13.24},
    {"local buffer", 6.45, 1.41},
};

const double kInterClusterNocArea = 20.60;
const double kInterClusterNocPower = 27.00;
const double kScratchpadArea = 41.94;
const double kScratchpadPower = 26.80;
const double kHbmPhyArea = 29.60;
const double kHbmPhyPower = 31.80;

} // namespace

AreaModel::AreaModel(size_t clusters)
    : clusters_(clusters)
{
    for (const auto &row : kClusterRows) {
        components_.push_back(row);
    }
}

double
AreaModel::clusterArea() const
{
    double a = 0;
    for (const auto &c : components_) {
        a += c.areaMm2;
    }
    return a;
}

double
AreaModel::clusterPower() const
{
    double p = 0;
    for (const auto &c : components_) {
        p += c.powerW;
    }
    return p;
}

std::vector<ComponentArea>
AreaModel::chipComponents() const
{
    double n = static_cast<double>(clusters_);
    double noc_scale = (n / 4.0) * (n / 4.0); // all-to-all topology
    std::vector<ComponentArea> rows;
    rows.push_back({std::to_string(clusters_) + "x cluster",
                    clusterArea() * n, clusterPower() * n});
    rows.push_back({"inter-cluster NoC", kInterClusterNocArea * noc_scale,
                    kInterClusterNocPower * noc_scale});
    rows.push_back({"scratchpad", kScratchpadArea, kScratchpadPower});
    rows.push_back({"HBM PHY", kHbmPhyArea, kHbmPhyPower});
    return rows;
}

double
AreaModel::totalArea() const
{
    double a = 0;
    for (const auto &c : chipComponents()) {
        a += c.areaMm2;
    }
    return a;
}

double
AreaModel::totalPower() const
{
    double p = 0;
    for (const auto &c : chipComponents()) {
        p += c.powerW;
    }
    return p;
}

} // namespace accel
} // namespace trinity
