#include "accel/ntt_util.h"

#include <algorithm>
#include <cmath>

#include "common/bitops.h"

namespace trinity {
namespace accel {

double
f1LikeNttUtil(size_t n)
{
    // 8 stages x 128 butterflies, 256 elements/cycle, fill depth 8.
    const double stages = 8.0;
    const double lanes = 256.0;
    // Fill/drain bubble per pass, amortized over a small back-to-back
    // transform batch (FHE workloads rarely issue one NTT alone).
    const double fill = 2.0;
    double logn = static_cast<double>(log2Exact(n));
    double passes = std::ceil(logn / stages);
    double stream = std::max(1.0, static_cast<double>(n) / lanes);
    // Busy stage-cycles: each pass uses min(8, remaining) stages for
    // `stream` cycles; idle stages and the per-transform fill bubble
    // count against.
    double busy = logn * stream;
    double elapsed = passes * stream + fill;
    return busy / (stages * elapsed);
}

double
fabLikeNttUtil(size_t n)
{
    // One stage of 1024 butterflies (2048 elements/cycle). Up to the
    // native span (N <= 2^11) small transforms batch to fill the
    // lanes; beyond it, each doubling adds four-step transpose passes
    // and strided buffer traffic on the single-stage loop.
    const double native_span = 2048.0;
    const double base = 0.92; // residual inter-pass turnaround
    double nn = static_cast<double>(n);
    if (nn <= native_span) {
        return base;
    }
    double extra = std::log2(nn / native_span);
    return base / (1.0 + 0.35 * extra);
}

double
trinityNttUtil(size_t n)
{
    // Section IV-E mapping, measured in steady state (FHE workloads
    // stream thousands of transforms back-to-back, amortizing fill):
    //  - N <= 2M: batched straight through the NTTU; all 8 stages busy.
    //  - 2M < N <= 2M^2: NTTU phase-1 + CU-column phase-2 in one
    //    streamed pass; every allocated butterfly stage is busy, minus
    //    the NTTU->CU handoff bubble.
    //  - N = 4M^2: two full NTTU passes; only inter-pass turnaround.
    double nn = static_cast<double>(n);
    if (n <= 256) {
        return 0.90;
    }
    if (n <= 32768) {
        return 0.88;
    }
    double stream = nn / 256.0;
    return 0.97 * stream / (stream + 8.0);
}

} // namespace accel
} // namespace trinity
