#include "accel/configs.h"

#include <functional>
#include <utility>

#include "common/logging.h"

namespace trinity {
namespace accel {

using sim::Kernel;
using sim::KernelType;
using sim::Machine;
using sim::Pool;

namespace {

void
addPool(Machine &m, const std::string &name, double elems_per_cycle,
        double efficiency = 1.0, double latency = 0)
{
    m.pools[name] = Pool{name, elems_per_cycle, efficiency, latency};
}

void
route(Machine &m, KernelType t, const std::string &pool,
      double cost = 1.0)
{
    m.routes[t] = sim::Route{pool, cost};
}

/** Shared CKKS-side plumbing for Trinity-style machines. */
void
trinityCommonPools(Machine &m, size_t c)
{
    double cd = static_cast<double>(c);
    addPool(m, "EWE", 512 * cd);
    addPool(m, "AUTOU", 256 * cd);
    addPool(m, "ROTATOR", 256 * cd);
    addPool(m, "VPU", 256 * cd); // vector modswitch/keyswitch engine
    addPool(m, "TP", 512 * cd);
    addPool(m, "HBM", 1000.0);    // 1 TB/s at 1 GHz
    addPool(m, "NOC", 4096.0);
    route(m, KernelType::ModMul, "EWE");
    route(m, KernelType::ModAdd, "EWE");
    route(m, KernelType::Auto, "AUTOU");
    route(m, KernelType::Rotate, "ROTATOR");
    route(m, KernelType::SampleExtract, "ROTATOR");
    route(m, KernelType::Decomp, "VPU");
    route(m, KernelType::ModSwitch, "VPU");
    route(m, KernelType::LweKs, "VPU");
    route(m, KernelType::Transpose, "TP");
    route(m, KernelType::HbmXfer, "HBM");
    route(m, KernelType::NocXfer, "NOC");
}

} // namespace

Machine
trinityCkks(size_t clusters)
{
    Machine m;
    m.name = "Trinity";
    m.freqGhz = 1.0;
    m.clusters = clusters;
    double c = static_cast<double>(clusters);
    // Fig. 7(a): two NTTUs per cluster run both four-step phases for
    // N = 4M^2 = 2^16 -> every element passes the pipeline twice.
    addPool(m, "NTTU", 2 * 256 * c, 0.95, 24);
    route(m, KernelType::Ntt, "NTTU", 2.0);
    route(m, KernelType::Intt, "NTTU", 2.0);
    // Dynamic CU allocation (Section IV-F): all 12 CU columns per
    // cluster (CU-1 + 4x CU-2 + CU-3) serve BConv and IP as one
    // shared MAC pool; the scheduler fills whatever NTT leaves idle.
    addPool(m, "CU", 12 * 128 * c);
    route(m, KernelType::Bconv, "CU");
    route(m, KernelType::Ip, "CU");
    trinityCommonPools(m, clusters);
    return m;
}

Machine
trinityCkksIpUseEwe(size_t clusters)
{
    Machine m = trinityCkks(clusters);
    m.name = "Trinity-CKKS_IP-use-EWE";
    // IP falls back to the EWE. Element-wise engines have no
    // broadcast accumulator, so both evk-component multiplies are
    // separate element operations (cost factor 2).
    m.routes[KernelType::Ip] = sim::Route{"EWE", 2.0};
    return m;
}

Machine
trinityTfhe(size_t clusters)
{
    Machine m;
    m.name = "Trinity";
    m.freqGhz = 1.0;
    m.clusters = clusters;
    double c = static_cast<double>(clusters);
    // Fig. 7(c): NTTU + CU-1 + CU-3 + two CU-2 form two full NTT
    // pipelines per cluster; phase-2 streams through CU butterfly
    // columns in the same pass (cost 1.0). Efficiency 0.9 models the
    // NTTU->CU handoff bubbles.
    addPool(m, "NTT", 2 * 256 * c, 0.9, 20);
    route(m, KernelType::Ntt, "NTT", 1.0);
    route(m, KernelType::Intt, "NTT", 1.0);
    // Fig. 7(e): external-product MACs on the remaining two CU-2.
    addPool(m, "MAC", (2 + 2) * 128 * c);
    route(m, KernelType::Ip, "MAC");
    route(m, KernelType::Bconv, "MAC");
    trinityCommonPools(m, clusters);
    return m;
}

Machine
trinityTfheWithoutCu()
{
    Machine m;
    m.name = "Trinity-TFHE_w/o_CU";
    m.freqGhz = 1.0;
    m.clusters = 1;
    // Fixed design: two NTTUs (Morphling-matched parallelism); NTTs
    // longer than 2M = 256 need two full passes (cost factor 2.0).
    addPool(m, "NTT", 2 * 256, 1.0, 24);
    route(m, KernelType::Ntt, "NTT", 2.0);
    route(m, KernelType::Intt, "NTT", 2.0);
    // Systolic array of depth 12 (total CU depth in Trinity).
    addPool(m, "MAC", 12 * 128);
    route(m, KernelType::Ip, "MAC");
    route(m, KernelType::Bconv, "MAC");
    trinityCommonPools(m, 1);
    return m;
}

Machine
trinityTfheWithCu()
{
    Machine m = trinityTfhe(1);
    m.name = "Trinity-TFHE_w/_CU";
    return m;
}

Machine
sharp()
{
    Machine m;
    m.name = "SHARP";
    m.freqGhz = 1.0;
    m.clusters = 4;
    double c = 4.0;
    // One NTTU per cluster; fixed 8-stage design -> two passes for
    // N = 2^16 (same strategy F1/SHARP use for long polynomials).
    addPool(m, "NTTU", 256 * c, 0.95, 24);
    route(m, KernelType::Ntt, "NTTU", 2.0);
    route(m, KernelType::Intt, "NTTU", 2.0);
    addPool(m, "BCONV", 1024 * c);
    route(m, KernelType::Bconv, "BCONV");
    addPool(m, "EWE", 512 * c);
    // No configurable units: IP shares the EWE (two element-wise
    // multiplies per input element, one per evk component).
    route(m, KernelType::Ip, "EWE", 2.0);
    route(m, KernelType::ModMul, "EWE");
    route(m, KernelType::ModAdd, "EWE");
    addPool(m, "AUTOU", 256 * c);
    route(m, KernelType::Auto, "AUTOU");
    // SHARP has no Rotator; permutation-style kernels (used only when
    // it hosts scheme conversion in the SHARP+Morphling system) run on
    // the AutoU shuffle network.
    route(m, KernelType::Rotate, "AUTOU");
    route(m, KernelType::SampleExtract, "AUTOU");
    addPool(m, "HBM", 1000.0);
    route(m, KernelType::HbmXfer, "HBM");
    addPool(m, "NOC", 4096.0);
    route(m, KernelType::NocXfer, "NOC");
    return m;
}

Machine
morphling()
{
    Machine m;
    m.name = "Morphling";
    m.freqGhz = 1.2;
    m.clusters = 1;
    // 8 FFT + 16 IFFT units, each a 16-lane pipeline; modeled as one
    // transform pool (Morphling time-shares them across PBS batches).
    addPool(m, "FFT", 24 * 16, 1.0, 24);
    m.routes[sim::KernelType::Ntt] = sim::Route{"FFT", 1.0};
    m.routes[sim::KernelType::Intt] = sim::Route{"FFT", 1.0};
    // 64 vector PEs handle the external-product MACs.
    addPool(m, "VPE", 64 * 8);
    m.routes[sim::KernelType::Ip] = sim::Route{"VPE", 1.0};
    m.routes[sim::KernelType::Bconv] = sim::Route{"VPE", 1.0};
    addPool(m, "VPU", 2048);
    m.routes[sim::KernelType::Decomp] = sim::Route{"VPU", 1.0};
    m.routes[sim::KernelType::ModSwitch] = sim::Route{"VPU", 1.0};
    m.routes[sim::KernelType::LweKs] = sim::Route{"VPU", 1.0};
    addPool(m, "ROTATOR", 256);
    m.routes[sim::KernelType::Rotate] = sim::Route{"ROTATOR", 1.0};
    m.routes[sim::KernelType::SampleExtract] = sim::Route{"ROTATOR", 1.0};
    addPool(m, "EWE", 512);
    m.routes[sim::KernelType::ModAdd] = sim::Route{"EWE", 1.0};
    m.routes[sim::KernelType::ModMul] = sim::Route{"EWE", 1.0};
    addPool(m, "HBM", 310.0 / 1.2); // 310 GB/s at 1.2 GHz
    m.routes[sim::KernelType::HbmXfer] = sim::Route{"HBM", 1.0};
    return m;
}

Machine
morphling1GHz()
{
    Machine m = morphling();
    m.name = "Morphling_1GHz";
    m.freqGhz = 1.0;
    return m;
}

Machine
trinityConversion(size_t clusters)
{
    // Conversion reuses the CKKS mapping (Section IV-G) with the
    // Rotator handling Rotate / SampleExtract; N = 2^14 polynomials
    // stream through NTTU phase-1 + CU phase-2 in a single pass.
    Machine m = trinityCkks(clusters);
    m.name = "Trinity";
    m.routes[KernelType::Ntt] = sim::Route{"NTTU", 1.0};
    m.routes[KernelType::Intt] = sim::Route{"NTTU", 1.0};
    return m;
}

namespace {

using NamedConfig =
    std::pair<const char *, std::function<Machine()>>;

const NamedConfig kNamedConfigs[] = {
    {"trinity-ckks", [] { return trinityCkks(4); }},
    {"trinity-ckks-ip-ewe", [] { return trinityCkksIpUseEwe(4); }},
    {"trinity-tfhe", [] { return trinityTfhe(4); }},
    {"trinity-tfhe-wo-cu", [] { return trinityTfheWithoutCu(); }},
    {"trinity-tfhe-w-cu", [] { return trinityTfheWithCu(); }},
    {"sharp", [] { return sharp(); }},
    {"morphling", [] { return morphling(); }},
    {"morphling-1ghz", [] { return morphling1GHz(); }},
    {"trinity-conv", [] { return trinityConversion(4); }},
};

} // namespace

Machine
machineByName(const std::string &name)
{
    for (const auto &[cfg_name, factory] : kNamedConfigs) {
        if (name == cfg_name) {
            return factory();
        }
    }
    std::string known;
    for (const auto &cfg_name : machineNames()) {
        if (!known.empty()) {
            known += ", ";
        }
        known += cfg_name;
    }
    trinity_fatal("unknown machine configuration '%s' "
                  "(TRINITY_SIM_MACHINE); known: %s",
                  name.c_str(), known.c_str());
}

std::vector<std::string>
machineNames()
{
    std::vector<std::string> out;
    for (const auto &[cfg_name, factory] : kNamedConfigs) {
        out.emplace_back(cfg_name);
    }
    return out;
}

} // namespace accel
} // namespace trinity
