/**
 * @file
 * NTT-unit utilization models (Fig. 1 and Fig. 9).
 *
 * Utilization is measured at single-butterfly-stage granularity, as in
 * the paper's Fig. 1 caption. The mechanisms:
 *
 *  - F1-like (deep: 8 cascaded stages, 256 elements/cycle): a length-N
 *    transform streams ceil(N/256) cycles per pass and needs
 *    ceil(log2 N / 8) passes; short transforms leave the pipeline
 *    mostly in fill/drain, so utilization falls as N shrinks.
 *  - FAB-like (wide: one stage, 2048 elements/cycle): short transforms
 *    batch to fill the lanes, but for N above the native 2^11 span the
 *    single-stage loop pays four-step transposes and strided buffer
 *    passes, degrading utilization as N grows.
 *  - Trinity (heterogeneous NTTU + CU columns): the mapping strategy
 *    of Section IV-E picks per length, keeping utilization high across
 *    the whole 2^8..2^16 range.
 */

#ifndef TRINITY_ACCEL_NTT_UTIL_H
#define TRINITY_ACCEL_NTT_UTIL_H

#include <cstddef>

namespace trinity {
namespace accel {

/** F1-like 8-stage pipelined NTT utilization at length N. */
double f1LikeNttUtil(size_t n);

/** FAB-like single-stage wide NTT utilization at length N. */
double fabLikeNttUtil(size_t n);

/** Trinity NTTU+CU utilization at length N (Fig. 9). */
double trinityNttUtil(size_t n);

} // namespace accel
} // namespace trinity

#endif // TRINITY_ACCEL_NTT_UTIL_H
