/**
 * @file
 * Registry of published baseline numbers used as reference rows in the
 * benchmark output (Tables VI, VII, VIII, IX, X, XII). These are the
 * rows this repository cannot recompute offline (CPU clusters we do
 * not have, GPUs, and third-party ASICs evaluated only in their own
 * papers); every value is labeled `reported` in bench output.
 */

#ifndef TRINITY_ACCEL_REPORTED_H
#define TRINITY_ACCEL_REPORTED_H

#include <string>
#include <vector>

namespace trinity {
namespace accel {

/** A published latency/throughput reference. */
struct ReportedRow
{
    std::string scheme;   ///< design name
    std::string metric;   ///< benchmark / column
    double value;         ///< in the unit stated by the table
    std::string unit;
};

/** Table VI reference rows (CKKS workloads, ms). */
std::vector<ReportedRow> table6Reported();

/** Table VII reference rows (PBS throughput, OPS). */
std::vector<ReportedRow> table7Reported();

/** Table VIII reference rows (NN latency, ms). */
std::vector<ReportedRow> table8Reported();

/** Table IX reference row (CPU scheme conversion, ms). */
std::vector<ReportedRow> table9Reported();

/** Table X reference rows (hybrid HE3DB, s). */
std::vector<ReportedRow> table10Reported();

/** The paper's own Trinity results, for paper-vs-measured deltas. */
std::vector<ReportedRow> trinityPaperResults();

} // namespace accel
} // namespace trinity

#endif // TRINITY_ACCEL_REPORTED_H
