/**
 * @file
 * Accelerator configurations for the simulator: Trinity (Table III /
 * Fig. 3) in its CKKS and TFHE mapping modes (Fig. 7), the paper's
 * ablation variants (Section V-C), and the first-principles baseline
 * models of SHARP and Morphling (Table V).
 *
 * Throughput figures per unit:
 *   NTTU      256 elements/cycle through 8 butterfly stages + twist
 *   CU-x      256 elements/cycle in NTT mode (x butterfly columns),
 *             128*x MACs/cycle in systolic (MAC) mode
 *   EWE       512 elements/cycle;  AutoU / Rotator / TP / VPU lanes 256
 *
 * Cost factors encode the four-step strategy (Section IV-E): on a
 * fixed 8-stage NTTU, polynomial lengths above 2M take two passes
 * (cost 2.0); with CU butterfly columns attached, phase-2 streams
 * through the extra stages in the same pass (cost 1.0).
 */

#ifndef TRINITY_ACCEL_CONFIGS_H
#define TRINITY_ACCEL_CONFIGS_H

#include "sim/machine.h"

namespace trinity {
namespace accel {

/** Trinity running CKKS workloads (Fig. 7 a/b/d mapping), N = 2^16. */
sim::Machine trinityCkks(size_t clusters = 4);

/**
 * Trinity CKKS ablation: Inner Product on the EWE instead of CUs
 * (the paper's Trinity-CKKS_IP-use-EWE compared scheme).
 */
sim::Machine trinityCkksIpUseEwe(size_t clusters = 4);

/** Trinity running TFHE workloads (Fig. 7 c/e mapping). */
sim::Machine trinityTfhe(size_t clusters = 4);

/**
 * Trinity-TFHE w/o CU: fixed NTTU + systolic array, Morphling-matched
 * parallelism (one cluster). NTTs longer than 2M take two NTTU passes.
 */
sim::Machine trinityTfheWithoutCu();

/** Trinity-TFHE w/ CU at Morphling-matched parallelism (one cluster). */
sim::Machine trinityTfheWithCu();

/** SHARP (4 clusters x {1 NTTU, BConvU, AutoU, EWE}; IP on the EWE). */
sim::Machine sharp();

/** Morphling (8 FFT + 16 IFFT + 64 VPE + VPU) at its native 1.2 GHz. */
sim::Machine morphling();

/** Morphling normalized to 1 GHz (paper's Morphling_1GHz row). */
sim::Machine morphling1GHz();

/** Trinity in scheme-conversion mode (CKKS kernels + Rotator). */
sim::Machine trinityConversion(size_t clusters = 4);

/**
 * Construct a configuration by name — the hook the simulated-
 * accelerator timing backend uses to resolve TRINITY_SIM_MACHINE.
 * Fatal on an unknown name, listing the valid ones (the list lives
 * in machineNames()).
 */
sim::Machine machineByName(const std::string &name);

/** The names machineByName accepts. */
std::vector<std::string> machineNames();

} // namespace accel
} // namespace trinity

#endif // TRINITY_ACCEL_CONFIGS_H
