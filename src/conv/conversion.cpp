#include "conv/conversion.h"

#include "backend/observer.h"
#include "common/bitops.h"
#include "common/logging.h"

namespace trinity {

ConvLwe
convLweEncrypt(u64 m, const CkksSecretKey &sk, u64 q, Rng &rng,
               double sigma)
{
    size_t n = sk.s.size();
    Modulus mod(q);
    ConvLwe ct;
    ct.q = q;
    ct.a.resize(n);
    u64 acc = 0;
    for (size_t i = 0; i < n; ++i) {
        ct.a[i] = rng.uniform(q);
        u64 si = toResidue(sk.s[i], q);
        acc = mod.add(acc, mod.mul(ct.a[i], si));
    }
    u64 e = toResidue(rng.gaussian(sigma), q);
    ct.b = mod.add(mod.add(acc, mod.reduce(m)), e);
    return ct;
}

u64
convLwePhase(const ConvLwe &ct, const CkksSecretKey &sk)
{
    Modulus mod(ct.q);
    u64 acc = 0;
    for (size_t i = 0; i < ct.a.size(); ++i) {
        u64 si = toResidue(sk.s[i], ct.q);
        acc = mod.add(acc, mod.mul(ct.a[i], si));
    }
    return mod.sub(ct.b, acc);
}

ConvLwe
sampleExtract(const CkksCiphertext &ct, size_t idx)
{
    // Dec = c0 + c1*s; coefficient idx of (c1*s) equals -<a, s> with
    //   a_i = -c1[idx-i]          for i <= idx
    //   a_i = +c1[N+idx-i]        for i > idx  (negacyclic wrap).
    ConstLimbView c0 = ct.c0.limb(0);
    ConstLimbView c1 = ct.c1.limb(0);
    trinity_assert(c0.domain() == Domain::Coeff,
                   "sampleExtract needs coefficient domain");
    size_t n = c0.n();
    trinity_assert(idx < n, "extract index out of range");
    const Modulus &m = c0.modulus();
    emitKernel(sim::KernelType::SampleExtract, n, n);
    ConvLwe out;
    out.q = c0.q();
    out.a.resize(n);
    for (size_t i = 0; i < n; ++i) {
        out.a[i] = i <= idx ? m.neg(c1[idx - i]) : c1[n + idx - i];
    }
    out.b = c0[idx];
    return out;
}

std::vector<ConvLwe>
ckksToTfhe(const CkksCiphertext &ct, size_t nslot)
{
    OpScope scope("Conversion");
    CkksCiphertext c = ct;
    c.c0.toCoeff();
    c.c1.toCoeff();
    std::vector<ConvLwe> out;
    out.reserve(nslot);
    for (size_t i = 0; i < nslot; ++i) {
        out.push_back(sampleExtract(c, i));
    }
    return out;
}

LwePacker::LwePacker(std::shared_ptr<const CkksContext> ctx,
                     CkksKeyGenerator &keygen)
    : ctx_(std::move(ctx)), eval_(ctx_)
{
    // All automorphisms used by PackLWEs and the Field Trace are of
    // the form 2^t + 1, t = 1 .. log2(N).
    size_t n = ctx_->n();
    for (u64 t = 1; (1ULL << t) <= n; ++t) {
        u64 g = (1ULL << t) + 1;
        galoisKeys_.emplace(g, keygen.makeGaloisKey(g));
    }
}

CkksCiphertext
LwePacker::ringEmbed(const ConvLwe &lwe) const
{
    size_t n = ctx_->n();
    trinity_assert(lwe.a.size() == n, "LWE dimension mismatch");
    trinity_assert(lwe.q == ctx_->qChain()[0],
                   "LWE modulus must be the level-0 prime");
    Poly c0(n, lwe.q);
    c0[0] = lwe.b;
    Poly c1(n, lwe.q);
    const Modulus m(lwe.q);
    c1[0] = m.neg(lwe.a[0]);
    for (size_t i = 1; i < n; ++i) {
        c1[i] = lwe.a[n - i];
    }
    CkksCiphertext ct;
    ct.c0 = RnsPoly(std::vector<Poly>{std::move(c0)});
    ct.c1 = RnsPoly(std::vector<Poly>{std::move(c1)});
    ct.level = 0;
    ct.scale = 1.0;
    return ct;
}

CkksCiphertext
LwePacker::packLwes(std::vector<CkksCiphertext> cts) const
{
    size_t h = cts.size();
    trinity_assert(isPowerOfTwo(h), "PackLWEs needs a power-of-two count");
    if (h == 1) {
        return cts[0];
    }
    size_t n = ctx_->n();
    std::vector<CkksCiphertext> even, odd;
    for (size_t j = 0; j < h; j += 2) {
        even.push_back(std::move(cts[j]));
        odd.push_back(std::move(cts[j + 1]));
    }
    CkksCiphertext ct_even = packLwes(std::move(even));
    CkksCiphertext ct_odd = packLwes(std::move(odd));
    // ct = (even + X^{N/h} odd) + sigma_{h+1}(even - X^{N/h} odd)
    CkksCiphertext shifted = eval_.rotatePoly(ct_odd, n / h);
    CkksCiphertext sum = eval_.add(ct_even, shifted);
    CkksCiphertext diff = eval_.sub(ct_even, shifted);
    u64 g = static_cast<u64>(h) + 1;
    auto it = galoisKeys_.find(g);
    trinity_assert(it != galoisKeys_.end(), "missing Galois key %llu",
                   static_cast<unsigned long long>(g));
    CkksCiphertext rotated = eval_.applyGalois(diff, g, it->second);
    return eval_.add(sum, rotated);
}

CkksCiphertext
LwePacker::fieldTrace(CkksCiphertext ct, size_t nslot) const
{
    size_t n = ctx_->n();
    u32 log_n = log2Exact(n);
    u32 log_slot = log2Exact(nslot);
    // for k = 1 .. log(N/nslot): ct += sigma_{2^{logN-k+1} + 1}(ct)
    for (u32 k = 1; k <= log_n - log_slot; ++k) {
        u64 g = (1ULL << (log_n - k + 1)) + 1;
        auto it = galoisKeys_.find(g);
        trinity_assert(it != galoisKeys_.end(), "missing Galois key");
        CkksCiphertext rot = eval_.applyGalois(ct, g, it->second);
        ct = eval_.add(ct, rot);
    }
    return ct;
}

CkksCiphertext
LwePacker::tfheToCkks(const std::vector<ConvLwe> &lwes) const
{
    OpScope scope("Conversion");
    trinity_assert(!lwes.empty(), "no LWEs to pack");
    std::vector<CkksCiphertext> cts;
    cts.reserve(lwes.size());
    for (const auto &lwe : lwes) {
        cts.push_back(ringEmbed(lwe)); // Ring Embedding
    }
    CkksCiphertext packed = packLwes(std::move(cts)); // Packing
    return fieldTrace(std::move(packed), lwes.size()); // Field Trace
}

size_t
LwePacker::hRotateCount(size_t n, size_t nslot)
{
    // PackLWEs performs nslot-1 keyswitched automorphisms (one per
    // internal combine); the field trace adds log2(N/nslot) more.
    return (nslot - 1) + (log2Exact(n) - log2Exact(nslot));
}

} // namespace trinity
