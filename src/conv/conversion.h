/**
 * @file
 * Scheme Conversion between CKKS and TFHE (Section II-C; Chen, Dai,
 * Kim, Song, ACNS'21):
 *
 *  - CKKS -> TFHE (Algorithm 3): SampleExtract pulls each message
 *    coefficient of an RLWE ciphertext out as an LWE ciphertext under
 *    the (flattened) CKKS secret. On Trinity this runs on the Rotator.
 *  - TFHE -> CKKS (Algorithms 4, 5): Ring Embedding turns each LWE
 *    back into a one-coefficient RLWE, PackLWEs merges them with
 *    Rotate (X^t monomial multiplies) and HRotate (automorphism +
 *    hybrid keyswitch), and the Field Trace clears the unused
 *    coefficients. The packed result carries each message scaled by N.
 *
 * All automorphisms used are of the form X -> X^(2^t + 1); the packer
 * generates exactly those log2(N) Galois keys.
 */

#ifndef TRINITY_CONV_CONVERSION_H
#define TRINITY_CONV_CONVERSION_H

#include <map>

#include "ckks/evaluator.h"

namespace trinity {

/**
 * LWE ciphertext in the conversion domain: phase = b - <a, s> with s
 * the CKKS ternary secret and modulus q_0 (level-0 prime).
 */
struct ConvLwe
{
    std::vector<u64> a;
    u64 b = 0;
    u64 q = 0;
};

/** Fresh LWE encryption of raw message m under the CKKS secret. */
ConvLwe convLweEncrypt(u64 m, const CkksSecretKey &sk, u64 q, Rng &rng,
                       double sigma = 3.2);

/** Noise-free phase b - <a, s> (decryption for tests). */
u64 convLwePhase(const ConvLwe &ct, const CkksSecretKey &sk);

/**
 * Algorithm 3, one slot: extract coefficient @p idx of the RLWE
 * ciphertext as an LWE ciphertext (limb 0 modulus).
 */
ConvLwe sampleExtract(const CkksCiphertext &ct, size_t idx);

/** Algorithm 3: extract coefficients 0..nslot-1. */
std::vector<ConvLwe> ckksToTfhe(const CkksCiphertext &ct, size_t nslot);

/**
 * TFHE -> CKKS packer (Algorithms 4 and 5). Holds the Galois keys for
 * the 2^t + 1 automorphism family.
 */
class LwePacker
{
  public:
    /**
     * @param ctx CKKS context (packing happens at level 0)
     * @param keygen key generator holding the CKKS secret
     */
    LwePacker(std::shared_ptr<const CkksContext> ctx,
              CkksKeyGenerator &keygen);

    /** Ring Embedding: LWE -> RLWE with the message in coefficient 0. */
    CkksCiphertext ringEmbed(const ConvLwe &lwe) const;

    /**
     * Algorithm 4 (PackLWEs): merge 2^m one-coefficient RLWEs; message
     * j lands at coefficient j*N/nslot scaled by nslot.
     */
    CkksCiphertext packLwes(std::vector<CkksCiphertext> cts) const;

    /**
     * Algorithm 5 lines 3-5 (Field Trace): clear coefficients that are
     * not multiples of N/nslot, scaling survivors by N/nslot.
     */
    CkksCiphertext fieldTrace(CkksCiphertext ct, size_t nslot) const;

    /**
     * Full Algorithm 5: Ring Embedding + Ciphertext Packing + Field
     * Trace. Output coefficient j*N/nslot holds N * mu_j.
     */
    CkksCiphertext tfheToCkks(const std::vector<ConvLwe> &lwes) const;

    /** Number of HRotate (keyswitched automorphism) ops per packing —
     *  the dominant cost the paper's Table IX measures. */
    static size_t hRotateCount(size_t n, size_t nslot);

  private:
    std::shared_ptr<const CkksContext> ctx_;
    CkksEvaluator eval_;
    std::map<u64, CkksEvalKey> galoisKeys_;
};

} // namespace trinity

#endif // TRINITY_CONV_CONVERSION_H
