/**
 * @file
 * Kernel-graph generator for TFHE PBS (Algorithm 2) plus the derived
 * throughput / latency metrics and the Fig. 2 breakdown.
 */

#ifndef TRINITY_WORKLOAD_TFHE_OPS_H
#define TRINITY_WORKLOAD_TFHE_OPS_H

#include "sim/machine.h"
#include "tfhe/params.h"
#include "workload/ckks_ops.h"

namespace trinity {
namespace workload {

/**
 * Full PBS kernel DAG: ModSwitch, n_lwe blind-rotation iterations
 * (Rotate, Decompose, (k+1)lb NTTs, MAC, (k+1) iNTTs, accumulate),
 * SampleExtract, and the TFHE KeySwitch.
 */
sim::KernelGraph pbsGraph(const TfheParams &p);

/**
 * Pipelined batched PBS DAG: @p batch independent bootstraps, each
 * carrying its own dependency chain through the n_lwe blind-rotation
 * steps — the command stream the serving runtime (src/runtime/)
 * records (see TfheContext::recordCmuxRotateBatch). Only a request's
 * own steps chain, so the scheduler overlaps stages of different
 * requests across pools (the NTT of one request's step under the MAC
 * of another's); ModSwitch and SampleExtract/KeySwitch remain fused
 * batch-wide at the ends. pbsBatchGraph(p, 1) equals pbsGraph(p).
 */
sim::KernelGraph pbsBatchGraph(const TfheParams &p, size_t batch);

/**
 * Throughput of the pipelined batched stream in operations per
 * second: batch requests per scheduled end-to-end makespan of
 * pbsBatchGraph. Unlike the steady-state bound of pbsThroughputOps,
 * this includes pipeline fills and dependency stalls, so it rises
 * with batch toward that bound as cross-request overlap fills the
 * pools.
 */
double pbsBatchThroughputOps(const sim::Machine &m, const TfheParams &p,
                             size_t batch);

/**
 * Steady-state PBS throughput in operations per second, assuming the
 * paper's batched execution (Table VII): the bottleneck pool's busy
 * cycles per PBS set the rate.
 */
double pbsThroughputOps(const sim::Machine &m, const TfheParams &p);

/** Single-PBS latency in cycles (dependency-chained schedule). */
double pbsLatencyCycles(const sim::Machine &m, const TfheParams &p);

/** Fig. 2 right bars: NTT vs MAC multiply share of one PBS. */
MulBreakdown pbsBreakdown(const TfheParams &p);

} // namespace workload
} // namespace trinity

#endif // TRINITY_WORKLOAD_TFHE_OPS_H
