#include "workload/apps.h"

#include <algorithm>

#include "accel/configs.h"
#include "common/bitops.h"
#include "common/logging.h"
#include "workload/tfhe_ops.h"

namespace trinity {
namespace workload {

using sim::KernelGraph;
using sim::KernelType;
using sim::Machine;

namespace {

void
pushOps(std::vector<AppOp> &ops, AppOp::Kind kind, size_t level,
        double count)
{
    ops.push_back(AppOp{kind, level, count});
}

} // namespace

CkksApp
packedBootstrap()
{
    CkksApp app;
    app.name = "Bootstrap";
    app.shape = CkksShape{1ULL << 16, 35, 35, 3};
    auto &ops = app.ops;
    // ModRaise: charged as rescale-class NTT work at the top level.
    pushOps(ops, AppOp::Kind::Rescale, 35, 2);
    // CoeffToSlot: 3 BSGS matmul stages (11 hoisted rotations + 44
    // diagonal PMults + adds each) at levels 35..33.
    for (size_t l : {35u, 34u, 33u}) {
        pushOps(ops, AppOp::Kind::HRotate, l, 11);
        pushOps(ops, AppOp::Kind::PMult, l, 44);
        pushOps(ops, AppOp::Kind::HAdd, l, 44);
        pushOps(ops, AppOp::Kind::Rescale, l, 2);
    }
    // EvalMod: degree-31 Chebyshev + double-angle steps, consuming
    // levels 32..26.
    for (size_t l = 32; l >= 26; --l) {
        pushOps(ops, AppOp::Kind::HMult, l, 2);
        pushOps(ops, AppOp::Kind::PMult, l, 2);
        pushOps(ops, AppOp::Kind::HAdd, l, 3);
        pushOps(ops, AppOp::Kind::Rescale, l, 2);
    }
    // SlotToCoeff: 3 BSGS stages at levels 25..23.
    for (size_t l : {25u, 24u, 23u}) {
        pushOps(ops, AppOp::Kind::HRotate, l, 11);
        pushOps(ops, AppOp::Kind::PMult, l, 44);
        pushOps(ops, AppOp::Kind::HAdd, l, 44);
        pushOps(ops, AppOp::Kind::Rescale, l, 2);
    }
    return app;
}

CkksApp
helr()
{
    // One amortized training iteration (the Table VI convention):
    // sigmoid polynomial (3 HMult), gradient rotate-and-sum
    // (2 x log2(256) + extra = 30 HRotate), weight update, and a
    // quarter of a bootstrap amortized across iterations.
    CkksApp app;
    app.name = "HELR";
    app.shape = CkksShape{1ULL << 16, 35, 35, 3};
    auto &ops = app.ops;
    pushOps(ops, AppOp::Kind::HMult, 25, 8);
    pushOps(ops, AppOp::Kind::HRotate, 25, 36);
    pushOps(ops, AppOp::Kind::PMult, 25, 24);
    pushOps(ops, AppOp::Kind::HAdd, 25, 48);
    pushOps(ops, AppOp::Kind::Rescale, 25, 10);
    // Amortized bootstrap share.
    CkksApp boot = packedBootstrap();
    for (auto op : boot.ops) {
        op.count *= 0.25;
        ops.push_back(op);
    }
    return app;
}

CkksApp
resnet20()
{
    // Multiplexed-parallel-convolution ResNet-20 [25]: the conv layers
    // are rotation-heavy BSGS matmuls; ~25 bootstrap invocations
    // dominate the runtime.
    CkksApp app;
    app.name = "ResNet-20";
    app.shape = CkksShape{1ULL << 16, 35, 35, 3};
    auto &ops = app.ops;
    // Convolutions run at low levels between bootstraps; the
    // multiplexed packing makes them PMult/HAdd heavy (per-channel
    // diagonal masks), which is why the paper's Trinity advantage on
    // ResNet-20 is smaller than on Bootstrap/HELR.
    pushOps(ops, AppOp::Kind::HRotate, 12, 2600);
    pushOps(ops, AppOp::Kind::HMult, 12, 600);
    pushOps(ops, AppOp::Kind::PMult, 12, 24000);
    pushOps(ops, AppOp::Kind::HAdd, 12, 24000);
    pushOps(ops, AppOp::Kind::Rescale, 12, 800);
    CkksApp boot = packedBootstrap();
    for (auto op : boot.ops) {
        op.count *= 18;
        ops.push_back(op);
    }
    return app;
}

AppResult
runCkksApp(const Machine &m, const CkksApp &app)
{
    AppResult result;
    double chain_cycles = 0; // dependency-limited lower bound
    for (const auto &op : app.ops) {
        CkksShape s = app.shape;
        s.level = op.level;
        KernelGraph g;
        switch (op.kind) {
          case AppOp::Kind::HMult:
            g = hmultGraph(s);
            break;
          case AppOp::Kind::HRotate:
            g = hrotateGraph(s);
            break;
          case AppOp::Kind::PMult:
            g = pmultGraph(s);
            break;
          case AppOp::Kind::HAdd:
            g = haddGraph(s);
            break;
          case AppOp::Kind::Rescale:
            g = rescaleGraph(s);
            break;
        }
        for (const auto &[pool, busy] : sim::poolBusy(g, m)) {
            result.poolBusy[pool] += busy * op.count;
        }
        // A modest fraction of each op's scheduled makespan cannot be
        // hidden by cross-op overlap (keyswitch dependency spine).
        chain_cycles += sim::schedule(g, m).makespanCycles * op.count *
                        0.25;
    }
    double bottleneck = 0;
    for (const auto &[pool, busy] : result.poolBusy) {
        bottleneck = std::max(bottleneck, busy);
    }
    result.cycles = std::max(bottleneck * 1.10, chain_cycles);
    return result;
}

double
ckksAppMs(const Machine &m, const CkksApp &app)
{
    AppResult r = runCkksApp(m, app);
    return m.seconds(r.cycles) * 1e3;
}

double
nnLatencyMs(const Machine &m, const TfheParams &p, size_t depth)
{
    // depth hidden layers of 92 neurons; single-inference latency:
    // PBS run back-to-back (the blind-rotation chain leaves no room
    // for intra-query batching), plus the linear layers on the VPU.
    double pbs_latency = pbsLatencyCycles(m, p);
    double pbs_count = 92.0 * static_cast<double>(depth);
    double linear_macs = 784.0 * 92 + (depth - 1) * 92.0 * 92 + 92 * 10;
    double vpu_rate = m.pools.count("VPU")
                          ? m.pool("VPU").elemsPerCycle
                          : 2048;
    double cycles = pbs_count * pbs_latency + linear_macs / vpu_rate;
    return m.seconds(cycles) * 1e3;
}

KernelGraph
conversionGraph(size_t n, size_t level, size_t dnum, size_t nslot)
{
    trinity_assert(isPowerOfTwo(nslot), "nslot must be a power of two");
    CkksShape s;
    s.n = n;
    s.level = level;
    s.maxLevel = level;
    s.dnum = dnum;
    size_t nq = level + 1;

    KernelGraph g;
    // Helper: splice a keyswitched automorphism (HRotate) after dep.
    auto add_hrotate = [&](std::vector<size_t> deps) {
        size_t aut = g.addAfter(KernelType::Auto,
                                static_cast<u64>(2) * nq * n, n,
                                std::move(deps), "conv.auto");
        KernelGraph ks = keySwitchGraph(s);
        size_t base = g.size();
        for (auto k : ks.kernels()) {
            for (auto &d : k.deps) {
                d += base;
            }
            if (k.deps.empty()) {
                k.deps.push_back(aut);
            }
            g.add(std::move(k));
        }
        return g.addAfter(KernelType::ModAdd,
                          static_cast<u64>(2) * nq * n, n,
                          {g.size() - 1}, "conv.acc");
    };

    // PackLWEs tree: nslot leaves -> log2(nslot) combine levels.
    // Combines within a level are data-independent, but the measured
    // implementation executes the repacking loop one combine at a
    // time (each HRotate walks the whole keyswitch pipeline before
    // the next starts), so the combines chain — leaving the
    // scheduler to overlap only the stages *inside* each combine
    // across pools. Without this serialization the earliest-start
    // scheduler would fuse whole tree levels and land ~3x below the
    // paper's Table IX latencies.
    std::vector<size_t> layer(nslot, SIZE_MAX); // SIZE_MAX = no dep
    size_t width = nslot;
    size_t prev_combine = SIZE_MAX;
    while (width > 1) {
        std::vector<size_t> next;
        for (size_t i = 0; i < width; i += 2) {
            std::vector<size_t> deps;
            if (layer[i] != SIZE_MAX) {
                deps.push_back(layer[i]);
            }
            if (layer[i + 1] != SIZE_MAX) {
                deps.push_back(layer[i + 1]);
            }
            if (prev_combine != SIZE_MAX) {
                deps.push_back(prev_combine);
            }
            // Rotate(ct_odd, N/h) on the Rotator + two adds + HRotate.
            size_t rot = g.addAfter(KernelType::Rotate,
                                    static_cast<u64>(2) * nq * n, n,
                                    deps, "conv.rotate");
            size_t add = g.addAfter(KernelType::ModAdd,
                                    static_cast<u64>(4) * nq * n, n,
                                    {rot}, "conv.addsub");
            prev_combine = add_hrotate({add});
            next.push_back(prev_combine);
        }
        layer = std::move(next);
        width /= 2;
    }
    // Field trace: log2(N/nslot) sequential keyswitched automorphisms.
    size_t prev = layer[0];
    size_t steps = log2Exact(n) - log2Exact(nslot);
    for (size_t kk = 0; kk < steps; ++kk) {
        prev = add_hrotate({prev});
    }
    return g;
}

double
conversionMs(const Machine &m, size_t n, size_t level, size_t nslot)
{
    KernelGraph g = conversionGraph(n, level, 3, nslot);
    return m.seconds(sim::schedule(g, m).makespanCycles) * 1e3;
}

namespace {

/** PBS invocations per HE3DB row: three Q6 predicates evaluated as
 *  radix comparisons (~6 PBS each) on encrypted 64-bit columns. */
constexpr double kPbsPerRow = 18.0;

double
he3dbAggregationCycles(const Machine &m, size_t rows)
{
    // CKKS aggregation: multiply filter mask with the revenue column
    // and rotate-and-sum (log2 rows rotations) at N = 2^16, level 8.
    CkksShape s{1ULL << 16, 8, 35, 3};
    double cycles = 0;
    KernelGraph rot = hrotateGraph(s);
    cycles += sim::schedule(rot, m).makespanCycles *
              static_cast<double>(log2Ceil(rows));
    KernelGraph mul = hmultGraph(s);
    cycles += sim::schedule(mul, m).makespanCycles * 2;
    return cycles;
}

} // namespace

double
he3dbTrinitySeconds(size_t rows)
{
    // Filter (TFHE, batched across rows) + conversion + aggregation,
    // all on one device with overlap within each phase.
    Machine tfhe_m = accel::trinityTfhe(4);
    Machine ckks_m = accel::trinityConversion(4);
    double pbs_ops = pbsThroughputOps(tfhe_m, TfheParams::setIII());
    double filter_s = kPbsPerRow * static_cast<double>(rows) / pbs_ops;
    KernelGraph conv = conversionGraph(1ULL << 16, 8, 3, rows);
    double conv_s =
        ckks_m.seconds(sim::schedule(conv, ckks_m).makespanCycles);
    double agg_s = ckks_m.seconds(he3dbAggregationCycles(ckks_m, rows));
    return filter_s + conv_s + agg_s;
}

double
he3dbSharpMorphlingSeconds(size_t rows)
{
    // Split system (Table V): filter PBS on Morphling, conversion and
    // aggregation on SHARP, ciphertexts crossing a 128 GB/s PCIe 5
    // link; phases cannot overlap across devices.
    Machine morph = accel::morphling();
    Machine shrp = accel::sharp();
    // The split system ships predicate batches across PCIe and waits
    // for them synchronously, so the filter PBS run latency-bound
    // (no deep cross-row batching, unlike single-device Trinity).
    double pbs_lat = pbsLatencyCycles(morph, TfheParams::setIII());
    double filter_s =
        morph.seconds(pbs_lat) * kPbsPerRow * static_cast<double>(rows);
    KernelGraph conv = conversionGraph(1ULL << 16, 8, 3, rows);
    double conv_s = shrp.seconds(sim::schedule(conv, shrp).makespanCycles);
    double agg_s = shrp.seconds(he3dbAggregationCycles(shrp, rows));
    // PCIe: every row's LWE ciphertext (n_lwe+1 words) crosses twice
    // (CKKS->TFHE inputs, TFHE->CKKS results), plus per-batch DMA
    // round-trip latency.
    double bytes = 2.0 * static_cast<double>(rows) * (592 + 1) * 4;
    double pcie_s = bytes / 128e9 + 50e-6;
    return filter_s + conv_s + agg_s + pcie_s;
}

} // namespace workload
} // namespace trinity
