/**
 * @file
 * Application-level workload models for the full benchmark suite
 * (Section V-B): CKKS packed bootstrapping / HELR / ResNet-20, the
 * TFHE NN-x networks, the scheme-conversion repacking benchmark, and
 * the HE3DB hybrid query.
 *
 * CKKS applications are expressed as operation traces (op kind, level,
 * count). Exact per-phase constants are reconstructions from the cited
 * workloads' published structure:
 *  - Packed bootstrap [27]: ModRaise, 3-stage BSGS CoeffToSlot,
 *    degree-31 Chebyshev EvalMod with double-angle, 3-stage
 *    SlotToCoeff; 15 levels consumed.
 *  - HELR [17]: batch 1024; per iteration a sigmoid-polynomial
 *    evaluation, gradient inner products via rotate-and-sum, and an
 *    amortized quarter bootstrap.
 *  - ResNet-20 [25]: multiplexed-convolution layers dominated by
 *    rotations plus ~25 bootstrap invocations.
 */

#ifndef TRINITY_WORKLOAD_APPS_H
#define TRINITY_WORKLOAD_APPS_H

#include <string>
#include <vector>

#include "sim/machine.h"
#include "tfhe/params.h"
#include "workload/ckks_ops.h"

namespace trinity {
namespace workload {

/** One entry of a CKKS operation trace. */
struct AppOp
{
    enum class Kind { HMult, HRotate, PMult, HAdd, Rescale };
    Kind kind;
    size_t level; ///< chain level the op executes at
    double count;
};

/** A CKKS application = a trace plus its parameter shape. */
struct CkksApp
{
    std::string name;
    CkksShape shape; ///< n / maxLevel / dnum (level varies per op)
    std::vector<AppOp> ops;
};

/** The three Table VI applications. */
CkksApp packedBootstrap();
CkksApp helr();      ///< 32 iterations, batch 1024
CkksApp resnet20();  ///< CIFAR-10 inference

/** Result of composing an application onto a machine. */
struct AppResult
{
    double cycles = 0;
    std::map<std::string, double> poolBusy;

    double
    utilization(const std::string &pool) const
    {
        auto it = poolBusy.find(pool);
        return it == poolBusy.end() || cycles <= 0
                   ? 0.0
                   : it->second / cycles;
    }
};

/**
 * Compose a CKKS application onto a machine: per-op kernel graphs are
 * replayed `count` times with cross-op overlap; the makespan is the
 * bottleneck pool's total busy time plus a fixed scheduling-slack
 * factor (list-scheduler gaps measured on the per-op graphs).
 */
AppResult runCkksApp(const sim::Machine &m, const CkksApp &app);

/** Latency in milliseconds. */
double ckksAppMs(const sim::Machine &m, const CkksApp &app);

/** NN-x (Table VIII): depth layers of 92 neurons, one PBS each,
 *  executed latency-bound (single inference, no batching). */
double nnLatencyMs(const sim::Machine &m, const TfheParams &p,
                   size_t depth);

/**
 * Scheme-conversion repacking benchmark (Table IX): the full
 * PackLWEs tree + field trace as one dependency-aware kernel graph.
 * @param n ring degree (paper: 2^14)
 * @param level chain level (paper: L = 8)
 * @param nslot number of LWEs to repack
 */
sim::KernelGraph conversionGraph(size_t n, size_t level, size_t dnum,
                                 size_t nslot);

/** Conversion latency in milliseconds on a machine. */
double conversionMs(const sim::Machine &m, size_t n, size_t level,
                    size_t nslot);

/** HE3DB TPC-H Q6 (Table X) on Trinity, seconds. */
double he3dbTrinitySeconds(size_t rows);

/** HE3DB on the split SHARP+Morphling system, seconds. */
double he3dbSharpMorphlingSeconds(size_t rows);

} // namespace workload
} // namespace trinity

#endif // TRINITY_WORKLOAD_APPS_H
