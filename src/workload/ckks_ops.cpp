#include "workload/ckks_ops.h"

#include "common/bitops.h"

namespace trinity {
namespace workload {

using sim::KernelGraph;
using sim::KernelType;

KernelGraph
keySwitchGraph(const CkksShape &s)
{
    KernelGraph g;
    size_t n = s.n;
    size_t nq = s.level + 1;
    size_t alpha = s.alpha();
    size_t beta = s.beta();
    size_t next = s.extLimbs();

    // Input iNTT: the switched polynomial enters in the evaluation
    // domain (HMult tensor output) and must be decomposed in coeffs.
    size_t intt_in = g.addAfter(KernelType::Intt,
                                static_cast<u64>(nq) * n, n, {}, "ks");
    std::vector<size_t> ip_ids;
    for (size_t j = 0; j < beta; ++j) {
        // ModUp BConv: alpha source limbs lifted to the rest of the
        // extended basis: N * alpha * (next - alpha) MACs.
        size_t bconv = g.addAfter(
            KernelType::Bconv,
            static_cast<u64>(n) * alpha * (next - alpha), n, {intt_in},
            "ks.modup");
        // Forward NTT of every extended-basis limb of this digit.
        size_t ntt = g.addAfter(KernelType::Ntt,
                                static_cast<u64>(next) * n, n, {bconv},
                                "ks.ntt");
        // Inner product against both evk components; work counts
        // *input* elements (each broadcast into two accumulators in a
        // systolic pass; element-wise engines pay cost factor 2).
        size_t ip = g.addAfter(KernelType::Ip,
                               static_cast<u64>(next) * n, n, {ntt},
                               "ks.ip");
        ip_ids.push_back(ip);
    }
    // Accumulate + iNTT of both accumulators.
    size_t intt_out = g.addAfter(KernelType::Intt,
                                 static_cast<u64>(2) * next * n, n,
                                 ip_ids, "ks");
    // ModDown: BConv of the special part, then subtract it and scale
    // by P^-1 — one element-wise add and one multiply per coefficient
    // of both accumulators (same EWE volume as the former fused node,
    // split so live-execution ledgers can be checked type by type).
    size_t down = g.addAfter(KernelType::Bconv,
                             static_cast<u64>(2) * n * alpha * nq, n,
                             {intt_out}, "ks.moddown");
    size_t sub = g.addAfter(KernelType::ModAdd,
                            static_cast<u64>(2) * nq * n, n, {down},
                            "ks.moddown");
    g.addAfter(KernelType::ModMul, static_cast<u64>(2) * nq * n, n,
               {sub}, "ks.moddown");
    return g;
}

KernelGraph
hmultGraph(const CkksShape &s)
{
    KernelGraph g;
    size_t n = s.n;
    size_t nq = s.level + 1;
    // Tensor product: d0, d1 (two partials), d2 -> 4 limb-wise mults.
    size_t tensor = g.addAfter(KernelType::ModMul,
                               static_cast<u64>(4) * nq * n, n, {},
                               "hmult.tensor");
    g.addAfter(KernelType::ModAdd, static_cast<u64>(nq) * n, n, {tensor},
               "hmult");
    // Relinearize d2 through the keyswitch.
    KernelGraph ks = keySwitchGraph(s);
    size_t base = g.size();
    for (auto k : ks.kernels()) {
        for (auto &d : k.deps) {
            d += base;
        }
        if (k.deps.empty()) {
            k.deps.push_back(tensor);
        }
        g.add(std::move(k));
    }
    g.addAfter(KernelType::ModAdd, static_cast<u64>(2) * nq * n, n,
               {g.size() - 1}, "hmult.acc");
    return g;
}

KernelGraph
hrotateGraph(const CkksShape &s)
{
    KernelGraph g;
    size_t n = s.n;
    size_t nq = s.level + 1;
    size_t aut = g.addAfter(KernelType::Auto,
                            static_cast<u64>(2) * nq * n, n, {},
                            "hrot.auto");
    KernelGraph ks = keySwitchGraph(s);
    size_t base = g.size();
    for (auto k : ks.kernels()) {
        for (auto &d : k.deps) {
            d += base;
        }
        if (k.deps.empty()) {
            k.deps.push_back(aut);
        }
        g.add(std::move(k));
    }
    g.addAfter(KernelType::ModAdd, static_cast<u64>(nq) * n, n,
               {g.size() - 1}, "hrot.acc");
    return g;
}

KernelGraph
pmultGraph(const CkksShape &s)
{
    KernelGraph g;
    g.addAfter(KernelType::ModMul,
               static_cast<u64>(2) * (s.level + 1) * s.n, s.n, {},
               "pmult");
    return g;
}

KernelGraph
haddGraph(const CkksShape &s)
{
    KernelGraph g;
    g.addAfter(KernelType::ModAdd,
               static_cast<u64>(2) * (s.level + 1) * s.n, s.n, {},
               "hadd");
    return g;
}

KernelGraph
rescaleGraph(const CkksShape &s)
{
    KernelGraph g;
    size_t n = s.n;
    size_t nq = s.level + 1;
    size_t intt = g.addAfter(KernelType::Intt,
                             static_cast<u64>(2) * nq * n, n, {},
                             "rescale");
    size_t mul = g.addAfter(KernelType::ModMul,
                            static_cast<u64>(2) * (nq - 1) * n * 2, n,
                            {intt}, "rescale");
    g.addAfter(KernelType::Ntt, static_cast<u64>(2) * (nq - 1) * n, n,
               {mul}, "rescale");
    return g;
}

MulBreakdown
keySwitchBreakdown(const CkksShape &s)
{
    KernelGraph g = keySwitchGraph(s);
    double logn = static_cast<double>(log2Exact(s.n));
    MulBreakdown b;
    // One NTT of length N costs (N/2) log2 N butterfly multiplies.
    double ntt_elems =
        static_cast<double>(g.totalElements(KernelType::Ntt) +
                            g.totalElements(KernelType::Intt));
    b.nttMuls = ntt_elems / 2.0 * logn;
    // IP input elements each feed two evk-component multiplies.
    b.macMuls =
        static_cast<double>(g.totalElements(KernelType::Bconv)) +
        2.0 * static_cast<double>(g.totalElements(KernelType::Ip));
    return b;
}

} // namespace workload
} // namespace trinity
