/**
 * @file
 * Kernel-graph generators for CKKS operations (Table II), with element
 * counts derived from the same algebra the functional library
 * implements — Algorithm 1 for the hybrid keyswitch in particular.
 *
 * Each KernelType node models one batched PolyBackend entry point of
 * the functional library: Ntt/Intt <-> nttForwardBatch/nttInverseBatch,
 * ModMul <-> pointwiseMulBatch, Ip <-> mulAddBatch, Bconv <->
 * baseConvert, Auto <-> automorphismBatch. A simulated-accelerator
 * timing backend replays these graphs against the hardware model
 * instead of executing the limb kernels.
 */

#ifndef TRINITY_WORKLOAD_CKKS_OPS_H
#define TRINITY_WORKLOAD_CKKS_OPS_H

#include "sim/kernel.h"

namespace trinity {
namespace workload {

/** Static shape of a CKKS operation instance. */
struct CkksShape
{
    size_t n = 1ULL << 16; ///< ring degree
    size_t level = 35;     ///< current level l
    size_t maxLevel = 35;  ///< L
    size_t dnum = 3;

    size_t alpha() const { return (maxLevel + 1 + dnum - 1) / dnum; }
    size_t beta() const { return (level + 1 + alpha() - 1) / alpha(); }
    /** Limbs in the extended basis q_0..q_l, p_0..p_{alpha-1}. */
    size_t extLimbs() const { return level + 1 + alpha(); }
};

/** Algorithm 1 (hybrid keyswitch) as a kernel DAG. */
sim::KernelGraph keySwitchGraph(const CkksShape &s);

/** HMult = tensor product + keyswitch + accumulate. */
sim::KernelGraph hmultGraph(const CkksShape &s);

/** HRotate = automorphism + keyswitch + accumulate. */
sim::KernelGraph hrotateGraph(const CkksShape &s);

/** PMult = 2(l+1) limb-wise modular multiplies. */
sim::KernelGraph pmultGraph(const CkksShape &s);

/** HAdd. */
sim::KernelGraph haddGraph(const CkksShape &s);

/** Rescale: iNTT, exact divide, NTT back. */
sim::KernelGraph rescaleGraph(const CkksShape &s);

/** Modular-multiplication counts split into NTT vs MAC work (Fig. 2). */
struct MulBreakdown
{
    double nttMuls = 0;
    double macMuls = 0;

    double
    nttShare() const
    {
        return nttMuls / (nttMuls + macMuls);
    }
};

/** Fig. 2 left bar: CKKS KeySwitch breakdown. */
MulBreakdown keySwitchBreakdown(const CkksShape &s);

} // namespace workload
} // namespace trinity

#endif // TRINITY_WORKLOAD_CKKS_OPS_H
