#include "workload/tfhe_ops.h"

#include "common/bitops.h"

namespace trinity {
namespace workload {

using sim::KernelGraph;
using sim::KernelType;

KernelGraph
pbsBatchGraph(const TfheParams &p, size_t batch)
{
    KernelGraph g;
    u64 B = batch;
    u64 n = p.bigN;
    u64 rows = p.extRows();       // (k+1) * lb
    u64 comps = p.k + 1;

    // ModSwitch of every input ciphertext.
    size_t ms = g.addAfter(KernelType::ModSwitch, B * (p.nLwe + 1), n,
                           {}, "pbs.modswitch");
    // Each request carries its own dependency chain through the
    // n_lwe blind-rotation steps — the structure the live runtime
    // records as a command stream (one pipeline per request slot, see
    // TfheContext::recordCmuxRotateBatch). Only a request's own steps
    // chain; across requests the scheduler overlaps stages on
    // different pools, so the NTT of request A's step i+1 runs under
    // the MAC of request B's step i. pbsBatchGraph(p, 1) stays the
    // strict sequential chain of pbsGraph().
    std::vector<size_t> prev(B);
    for (size_t b = 0; b < B; ++b) {
        // Initial rotation of the test vector.
        prev[b] = g.addAfter(KernelType::Rotate, comps * n, n, {ms},
                             "pbs.rotate");
    }
    for (size_t i = 0; i < p.nLwe; ++i) {
        for (size_t b = 0; b < B; ++b) {
            size_t rot = g.addAfter(KernelType::Rotate, comps * n, n,
                                    {prev[b]}, "pbs.rotate");
            size_t dec = g.addAfter(KernelType::Decomp, comps * n, n,
                                    {rot}, "pbs.decomp");
            size_t ntt = g.addAfter(KernelType::Ntt, rows * n, n,
                                    {dec}, "pbs.ntt");
            // MAC work counts *input* elements: the systolic pass
            // broadcasts each decomposed element into the (k+1)
            // output accumulators in the same cycle.
            size_t mac = g.addAfter(KernelType::Ip, rows * n, n, {ntt},
                                    "pbs.mac");
            size_t intt = g.addAfter(KernelType::Intt, comps * n, n,
                                     {mac}, "pbs.intt");
            // CMux accumulate. Live execution also performs the
            // ACC1-ACC0 difference (another comps*n element adds);
            // the graph models the accumulate only, so ledgers see 2x
            // this ModAdd volume.
            prev[b] = g.addAfter(KernelType::ModAdd, comps * n, n,
                                 {intt}, "pbs.acc");
        }
    }
    // SampleExtract + TFHE KeySwitch (Algorithm 2 lines 14-17) fuse
    // the whole batch again after every chain completes.
    sim::Kernel ext;
    ext.type = KernelType::SampleExtract;
    ext.elements = B * p.k * n;
    ext.polyLen = n;
    ext.deps = prev;
    ext.tag = "pbs.extract";
    size_t ext_id = g.add(std::move(ext));
    g.addAfter(KernelType::LweKs,
               B * static_cast<u64>(p.k) * n * p.lk * (p.nLwe + 1) / 8,
               n, {ext_id}, "pbs.keyswitch");
    return g;
}

KernelGraph
pbsGraph(const TfheParams &p)
{
    return pbsBatchGraph(p, 1);
}

double
pbsBatchThroughputOps(const sim::Machine &m, const TfheParams &p,
                      size_t batch)
{
    KernelGraph g = pbsBatchGraph(p, batch);
    double makespan = sim::schedule(g, m).makespanCycles;
    return static_cast<double>(batch) * m.freqGhz * 1e9 / makespan;
}

double
pbsThroughputOps(const sim::Machine &m, const TfheParams &p)
{
    KernelGraph g = pbsGraph(p);
    double cycles = sim::bottleneckCycles(g, m);
    return m.freqGhz * 1e9 / cycles;
}

double
pbsLatencyCycles(const sim::Machine &m, const TfheParams &p)
{
    KernelGraph g = pbsGraph(p);
    return sim::schedule(g, m).makespanCycles;
}

MulBreakdown
pbsBreakdown(const TfheParams &p)
{
    KernelGraph g = pbsGraph(p);
    double logn = static_cast<double>(log2Exact(p.bigN));
    MulBreakdown b;
    double ntt_elems =
        static_cast<double>(g.totalElements(KernelType::Ntt) +
                            g.totalElements(KernelType::Intt));
    b.nttMuls = ntt_elems / 2.0 * logn;
    // True multiply count: each MAC input element feeds k+1
    // accumulating multiplies.
    b.macMuls =
        static_cast<double>(g.totalElements(KernelType::Ip)) * (p.k + 1) +
        static_cast<double>(g.totalElements(KernelType::LweKs));
    return b;
}

} // namespace workload
} // namespace trinity
