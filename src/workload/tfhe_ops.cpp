#include "workload/tfhe_ops.h"

#include "common/bitops.h"

namespace trinity {
namespace workload {

using sim::KernelGraph;
using sim::KernelType;

KernelGraph
pbsGraph(const TfheParams &p)
{
    KernelGraph g;
    u64 n = p.bigN;
    u64 rows = p.extRows();       // (k+1) * lb
    u64 comps = p.k + 1;

    // ModSwitch of the whole input ciphertext.
    size_t prev = g.addAfter(KernelType::ModSwitch, p.nLwe + 1, n, {},
                             "pbs.modswitch");
    // Initial rotation of the test vector.
    prev = g.addAfter(KernelType::Rotate, comps * n, n, {prev},
                      "pbs.rotate");
    // Blind rotation: n_lwe dependency-chained external products.
    for (size_t i = 0; i < p.nLwe; ++i) {
        size_t rot = g.addAfter(KernelType::Rotate, comps * n, n,
                                {prev}, "pbs.rotate");
        size_t dec = g.addAfter(KernelType::Decomp, comps * n, n, {rot},
                                "pbs.decomp");
        size_t ntt = g.addAfter(KernelType::Ntt, rows * n, n, {dec},
                                "pbs.ntt");
        // MAC work counts *input* elements: the systolic pass
        // broadcasts each decomposed element into the (k+1) output
        // accumulators in the same cycle.
        size_t mac = g.addAfter(KernelType::Ip, rows * n, n, {ntt},
                                "pbs.mac");
        size_t intt = g.addAfter(KernelType::Intt, comps * n, n, {mac},
                                 "pbs.intt");
        // CMux accumulate. Live execution also performs the ACC1-ACC0
        // difference (another comps*n element adds); the graph models
        // the accumulate only, so ledgers see 2x this ModAdd volume.
        prev = g.addAfter(KernelType::ModAdd, comps * n, n, {intt},
                          "pbs.acc");
    }
    // SampleExtract + TFHE KeySwitch (Algorithm 2 lines 14-17).
    size_t ext = g.addAfter(KernelType::SampleExtract, p.k * n, n,
                            {prev}, "pbs.extract");
    g.addAfter(KernelType::LweKs,
               static_cast<u64>(p.k) * n * p.lk * (p.nLwe + 1) / 8, n,
               {ext}, "pbs.keyswitch");
    return g;
}

double
pbsThroughputOps(const sim::Machine &m, const TfheParams &p)
{
    KernelGraph g = pbsGraph(p);
    double cycles = sim::bottleneckCycles(g, m);
    return m.freqGhz * 1e9 / cycles;
}

double
pbsLatencyCycles(const sim::Machine &m, const TfheParams &p)
{
    KernelGraph g = pbsGraph(p);
    return sim::schedule(g, m).makespanCycles;
}

MulBreakdown
pbsBreakdown(const TfheParams &p)
{
    KernelGraph g = pbsGraph(p);
    double logn = static_cast<double>(log2Exact(p.bigN));
    MulBreakdown b;
    double ntt_elems =
        static_cast<double>(g.totalElements(KernelType::Ntt) +
                            g.totalElements(KernelType::Intt));
    b.nttMuls = ntt_elems / 2.0 * logn;
    // True multiply count: each MAC input element feeds k+1
    // accumulating multiplies.
    b.macMuls =
        static_cast<double>(g.totalElements(KernelType::Ip)) * (p.k + 1) +
        static_cast<double>(g.totalElements(KernelType::LweKs));
    return b;
}

} // namespace workload
} // namespace trinity
