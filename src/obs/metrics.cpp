#include "obs/metrics.h"

#include <cinttypes>
#include <cmath>
#include <map>
#include <memory>
#include <mutex>

#include "common/env.h"

namespace trinity {
namespace obs {

namespace detail {

std::atomic<int> g_metricsMode{-1};

bool
metricsEnabledSlow()
{
    // Resolve TRINITY_METRICS once; default on. The cached value is
    // published through g_metricsMode so subsequent calls take the
    // single-relaxed-load path in metricsEnabled().
    static const bool env_on = [] {
        static const char *const kChoices[] = {"on", "off"};
        size_t idx = 0;
        if (envChoice("TRINITY_METRICS", kChoices, 2, idx)) {
            return idx == 0;
        }
        return true; // default on
    }();
    int expected = -1;
    g_metricsMode.compare_exchange_strong(expected, env_on ? 1 : 0,
                                          std::memory_order_relaxed);
    return env_on;
}

} // namespace detail

void
overrideMetrics(int mode)
{
    detail::g_metricsMode.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                                std::memory_order_relaxed);
}

u64
Histogram::percentile(double p) const
{
    u64 total = count();
    if (total == 0) {
        return 0;
    }
    u64 rank = static_cast<u64>(std::ceil(p * static_cast<double>(total)));
    if (rank < 1) {
        rank = 1;
    }
    if (rank > total) {
        rank = total;
    }
    u64 seen = 0;
    for (u32 i = 0; i < kBuckets; ++i) {
        seen += buckets_[i].load(std::memory_order_relaxed);
        if (seen >= rank) {
            return bucketMid(i);
        }
    }
    return bucketMid(kBuckets - 1);
}

void
Histogram::reset()
{
    for (auto &b : buckets_) {
        b.store(0, std::memory_order_relaxed);
    }
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
}

struct MetricsRegistry::Impl
{
    mutable std::mutex mtx;
    // node-based maps: pointers stay stable across later insertions,
    // which is what lets call sites cache `static Counter &`.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

MetricsRegistry &
MetricsRegistry::instance()
{
    static MetricsRegistry reg;
    return reg;
}

MetricsRegistry::Impl &
MetricsRegistry::impl() const
{
    static Impl impl;
    return impl;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mtx);
    auto &slot = im.counters[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mtx);
    auto &slot = im.gauges[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mtx);
    auto &slot = im.histograms[name];
    if (!slot) {
        slot = std::make_unique<Histogram>();
    }
    return *slot;
}

void
MetricsRegistry::reset()
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mtx);
    for (auto &[name, c] : im.counters) {
        (void)name;
        c->reset();
    }
    for (auto &[name, g] : im.gauges) {
        (void)name;
        g->reset();
    }
    for (auto &[name, h] : im.histograms) {
        (void)name;
        h->reset();
    }
}

std::vector<MetricRow>
MetricsRegistry::snapshot() const
{
    Impl &im = impl();
    std::lock_guard<std::mutex> lock(im.mtx);
    std::vector<MetricRow> rows;
    rows.reserve(im.counters.size() + im.gauges.size() +
                 im.histograms.size());
    for (auto &[name, c] : im.counters) {
        MetricRow r;
        r.name = name;
        r.kind = "counter";
        r.count = c->value();
        rows.push_back(std::move(r));
    }
    for (auto &[name, g] : im.gauges) {
        MetricRow r;
        r.name = name;
        r.kind = "gauge";
        r.gauge = g->value();
        rows.push_back(std::move(r));
    }
    for (auto &[name, h] : im.histograms) {
        MetricRow r;
        r.name = name;
        r.kind = "histogram";
        r.count = h->count();
        r.sum = h->sum();
        r.p50 = h->percentile(0.50);
        r.p99 = h->percentile(0.99);
        r.p999 = h->percentile(0.999);
        rows.push_back(std::move(r));
    }
    return rows;
}

void
MetricsRegistry::dump(std::FILE *out) const
{
    std::vector<MetricRow> rows = snapshot();
    if (rows.empty()) {
        fprintf(out, "metrics: (none registered)\n");
        return;
    }
    fprintf(out, "%-44s %-10s %s\n", "metric", "kind", "value");
    for (const MetricRow &r : rows) {
        if (r.kind == "counter") {
            fprintf(out, "%-44s %-10s %" PRIu64 "\n", r.name.c_str(),
                    "counter", r.count);
        } else if (r.kind == "gauge") {
            fprintf(out, "%-44s %-10s %" PRId64 "\n", r.name.c_str(),
                    "gauge", r.gauge);
        } else {
            fprintf(out,
                    "%-44s %-10s count=%" PRIu64 " sum=%" PRIu64
                    " p50=%" PRIu64 " p99=%" PRIu64 " p999=%" PRIu64 "\n",
                    r.name.c_str(), "histogram", r.count, r.sum, r.p50,
                    r.p99, r.p999);
        }
    }
}

std::string
MetricsRegistry::json() const
{
    std::vector<MetricRow> rows = snapshot();
    std::string out = "{";
    bool first = true;
    for (const MetricRow &r : rows) {
        if (!first) {
            out += ",";
        }
        first = false;
        out += "\"" + r.name + "\":";
        char buf[192];
        if (r.kind == "counter") {
            snprintf(buf, sizeof buf, "%" PRIu64, r.count);
        } else if (r.kind == "gauge") {
            snprintf(buf, sizeof buf, "%" PRId64, r.gauge);
        } else {
            snprintf(buf, sizeof buf,
                     "{\"count\":%" PRIu64 ",\"sum\":%" PRIu64
                     ",\"p50\":%" PRIu64 ",\"p99\":%" PRIu64
                     ",\"p999\":%" PRIu64 "}",
                     r.count, r.sum, r.p50, r.p99, r.p999);
        }
        out += buf;
    }
    out += "}";
    return out;
}

} // namespace obs
} // namespace trinity
