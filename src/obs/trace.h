/**
 * @file
 * Wall-clock tracing in Chrome trace-event format.
 *
 * The sim backend prices every kernel in virtual cycles; this layer is
 * its wall-clock counterpart for the CPU engines — who ran what, when,
 * on which worker. Spans are captured into per-thread buffers (one
 * uncontended mutex acquisition per event on the hot path, a single
 * relaxed atomic load when tracing is off) and serialized on demand —
 * or at process exit when TRINITY_TRACE=<path> is set — as Chrome
 * trace-event JSON that chrome://tracing and Perfetto open directly.
 *
 * Track layout:
 *  - one pid per *executing engine* (the `track` string, normally the
 *    engine's name(): "serial", "threads", "simd"). The sim backend's
 *    functional work shows under its inner engine's pid, since that is
 *    the engine that actually ran it.
 *  - one tid per OS thread (dense ids in first-use order), so the
 *    thread-pool's per-worker job/steal/idle spans land on separate
 *    rows of the timeline.
 *  - the sim backend additionally renders each submitted command
 *    stream's priced SchedNode schedule in *virtual time* under its
 *    own pid ("sim:<machine> (virtual)") with one tid per unit pool —
 *    a real pipelined execution and its sim-priced counterpart open
 *    side by side.
 *
 * Strings passed as `name`/`cat`/`track` must be literals (or
 * otherwise outlive the trace write); dynamic strings go through
 * internTraceStr().
 */

#ifndef TRINITY_OBS_TRACE_H
#define TRINITY_OBS_TRACE_H

#include <atomic>
#include <string>

#include "common/types.h"

namespace trinity {
namespace obs {

namespace detail {

/** Single flag the disabled fast path reads (relaxed). */
extern std::atomic<bool> g_traceActive;

/** Monotonic nanoseconds since the trace was enabled. */
u64 nowNs();

} // namespace detail

/** True while a trace is being collected. One relaxed atomic load —
 *  this is the whole cost of an un-traced TraceSpan. */
inline bool
traceActive()
{
    return detail::g_traceActive.load(std::memory_order_relaxed);
}

/**
 * Start collecting into @p path (overwrites any previous collection).
 * Resolved automatically from TRINITY_TRACE at startup; tests and
 * tools call it programmatically. The file is written by writeTrace()
 * or, if still active, at process exit.
 */
void enableTrace(const std::string &path);

/** Serialize everything collected so far to the enabled path.
 *  @return false when no trace was ever enabled. Collection continues
 *  (a later write overwrites with the longer trace). */
bool writeTrace();

/** Stop collecting and drop buffered events (tests). */
void disableTrace();

/** Intern a dynamic string for use as an event name/track/tid name. */
const char *internTraceStr(const std::string &s);

/** Append one complete ('X') wall-clock span. @p startNs from
 *  detail::nowNs(); @p argName (optional) attaches one integer arg. */
void traceComplete(const char *name, const char *cat, const char *track,
                   u64 startNs, u64 durNs,
                   const char *argName = nullptr, u64 arg = 0);

/** Append one instant ('i') event at the current time. */
void traceInstant(const char *name, const char *cat, const char *track);

/**
 * Append one complete span in *virtual* time (the sim schedule):
 * explicit pid row (@p track), explicit @p tid (unit-pool id) with a
 * display name, timestamps in virtual microseconds.
 */
void traceVirtualSpan(const char *name, const char *cat,
                      const char *track, u32 tid, const char *tidName,
                      double tsUs, double durUs);

/**
 * RAII wall-clock span: stamps the start on construction and appends
 * a complete event on destruction. When tracing is off the
 * constructor is one relaxed load and the destructor one branch.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *name, const char *cat, const char *track,
              const char *argName = nullptr, u64 arg = 0)
    {
        if (traceActive()) {
            name_ = name;
            cat_ = cat;
            track_ = track;
            argName_ = argName;
            arg_ = arg;
            start_ = detail::nowNs();
        }
    }

    ~TraceSpan()
    {
        if (name_ != nullptr) {
            traceComplete(name_, cat_, track_, start_,
                          detail::nowNs() - start_, argName_, arg_);
        }
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    const char *name_ = nullptr;
    const char *cat_ = "";
    const char *track_ = "";
    const char *argName_ = nullptr;
    u64 arg_ = 0;
    u64 start_ = 0;
};

} // namespace obs
} // namespace trinity

#endif // TRINITY_OBS_TRACE_H
