#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "common/logging.h"

namespace trinity {
namespace obs {

namespace detail {

std::atomic<bool> g_traceActive{false};

u64
nowNs()
{
    return static_cast<u64>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

} // namespace detail

namespace {

/** One buffered event. `virt` events carry pre-computed µs stamps and
 *  an explicit tid; wall events use the owning buffer's thread id. */
struct TraceEvent
{
    const char *name;
    const char *cat;
    const char *track;
    char ph;         // 'X' or 'i'
    bool virt;       // virtual-time: tsUs/durUs + tid/tidName are set
    u32 tid;         // virtual only
    const char *tidName; // virtual only
    u64 tsNs;
    u64 durNs;
    double tsUs;     // virtual only
    double durUs;    // virtual only
    const char *argName;
    u64 arg;
};

/** Per-thread event buffer. The owning thread appends under the
 *  buffer's own mutex (uncontended except during a concurrent write),
 *  and the writer walks all registered buffers. Held by shared_ptr so
 *  a buffer outlives its thread — worker-pool threads may die before
 *  the atexit write. */
struct ThreadBuf
{
    std::mutex mtx;
    std::vector<TraceEvent> events;
    u32 tid = 0;
};

struct Collector
{
    std::mutex mtx; // guards bufs/path/next_tid/interned
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    std::string path;
    bool enabled = false; // a path was ever set (survives disable)
    u32 next_tid = 1;
    std::set<std::string> interned;
};

Collector &
collector()
{
    static Collector c;
    return c;
}

ThreadBuf &
localBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf = [] {
        auto b = std::make_shared<ThreadBuf>();
        Collector &c = collector();
        std::lock_guard<std::mutex> lock(c.mtx);
        b->tid = c.next_tid++;
        c.bufs.push_back(b);
        return b;
    }();
    return *buf;
}

void
append(TraceEvent ev)
{
    ThreadBuf &b = localBuf();
    std::lock_guard<std::mutex> lock(b.mtx);
    b.events.push_back(ev);
}

/** Minimal JSON string escaping — names here are ASCII identifiers,
 *  but a user-supplied machine name could contain anything. */
void
writeJsonStr(FILE *f, const char *s)
{
    fputc('"', f);
    for (const char *p = s; *p != '\0'; ++p) {
        unsigned char ch = static_cast<unsigned char>(*p);
        if (ch == '"' || ch == '\\') {
            fprintf(f, "\\%c", ch);
        } else if (ch < 0x20) {
            fprintf(f, "\\u%04x", ch);
        } else {
            fputc(ch, f);
        }
    }
    fputc('"', f);
}

} // namespace

void
enableTrace(const std::string &path)
{
    Collector &c = collector();
    {
        std::lock_guard<std::mutex> lock(c.mtx);
        c.path = path;
        c.enabled = true;
        for (auto &b : c.bufs) {
            std::lock_guard<std::mutex> bl(b->mtx);
            b->events.clear();
        }
    }
    detail::g_traceActive.store(true, std::memory_order_release);
}

void
disableTrace()
{
    detail::g_traceActive.store(false, std::memory_order_release);
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mtx);
    for (auto &b : c.bufs) {
        std::lock_guard<std::mutex> bl(b->mtx);
        b->events.clear();
    }
}

const char *
internTraceStr(const std::string &s)
{
    Collector &c = collector();
    std::lock_guard<std::mutex> lock(c.mtx);
    return c.interned.insert(s).first->c_str();
}

void
traceComplete(const char *name, const char *cat, const char *track,
              u64 startNs, u64 durNs, const char *argName, u64 arg)
{
    if (!traceActive()) {
        return;
    }
    append(TraceEvent{name, cat, track, 'X', false, 0, nullptr, startNs,
                      durNs, 0.0, 0.0, argName, arg});
}

void
traceInstant(const char *name, const char *cat, const char *track)
{
    if (!traceActive()) {
        return;
    }
    append(TraceEvent{name, cat, track, 'i', false, 0, nullptr,
                      detail::nowNs(), 0, 0.0, 0.0, nullptr, 0});
}

void
traceVirtualSpan(const char *name, const char *cat, const char *track,
                 u32 tid, const char *tidName, double tsUs, double durUs)
{
    if (!traceActive()) {
        return;
    }
    append(TraceEvent{name, cat, track, 'X', true, tid, tidName, 0, 0,
                      tsUs, durUs, nullptr, 0});
}

bool
writeTrace()
{
    Collector &c = collector();

    // Snapshot under the collector lock; copy each buffer out so the
    // serialization below runs without holding any hot-path mutex.
    std::string path;
    std::vector<std::pair<u32, std::vector<TraceEvent>>> snap;
    {
        std::lock_guard<std::mutex> lock(c.mtx);
        if (!c.enabled) {
            return false;
        }
        path = c.path;
        for (auto &b : c.bufs) {
            std::lock_guard<std::mutex> bl(b->mtx);
            if (!b->events.empty()) {
                snap.emplace_back(b->tid, b->events);
            }
        }
    }

    FILE *f = fopen(path.c_str(), "w");
    if (f == nullptr) {
        trinity_warn("TRINITY_TRACE: cannot open '%s' for writing",
                     path.c_str());
        return false;
    }

    // Dense pids per track string; earliest wall timestamp becomes the
    // trace origin so timelines start near zero.
    std::unordered_map<const char *, u32> pid_of;
    auto pidOf = [&](const char *track) -> u32 {
        auto it = pid_of.find(track);
        if (it != pid_of.end()) {
            return it->second;
        }
        u32 pid = static_cast<u32>(pid_of.size()) + 1;
        pid_of.emplace(track, pid);
        return pid;
    };
    u64 origin = ~u64{0};
    for (auto &[tid, events] : snap) {
        (void)tid;
        for (const TraceEvent &ev : events) {
            pidOf(ev.track);
            if (!ev.virt && ev.tsNs < origin) {
                origin = ev.tsNs;
            }
        }
    }
    if (origin == ~u64{0}) {
        origin = 0;
    }

    fputs("{\"traceEvents\":[", f);
    bool first = true;
    auto sep = [&] {
        if (!first) {
            fputs(",\n", f);
        }
        first = false;
    };

    // Metadata: process_name per track, thread_name for wall threads
    // (worker-N style from dense ids) and for virtual pool rows.
    std::set<std::pair<u32, u32>> named_tids;
    for (auto &[pid, track] : [&] {
             std::vector<std::pair<u32, const char *>> v;
             for (auto &[t, p] : pid_of) {
                 v.emplace_back(p, t);
             }
             return v;
         }()) {
        sep();
        fprintf(f, "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                   "\"tid\":0,\"args\":{\"name\":",
                pid);
        writeJsonStr(f, track);
        fputs("}}", f);
    }
    for (auto &[tid, events] : snap) {
        for (const TraceEvent &ev : events) {
            u32 pid = pidOf(ev.track);
            u32 etid = ev.virt ? ev.tid : tid;
            if (!named_tids.insert({pid, etid}).second) {
                continue;
            }
            char namebuf[32];
            const char *tname = ev.tidName;
            if (tname == nullptr) {
                snprintf(namebuf, sizeof namebuf, "thread-%u", etid);
                tname = namebuf;
            }
            sep();
            fprintf(f,
                    "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,"
                    "\"tid\":%u,\"args\":{\"name\":",
                    pid, etid);
            writeJsonStr(f, tname);
            fputs("}}", f);
        }
    }

    for (auto &[tid, events] : snap) {
        for (const TraceEvent &ev : events) {
            u32 pid = pidOf(ev.track);
            sep();
            fputs("{\"name\":", f);
            writeJsonStr(f, ev.name);
            fputs(",\"cat\":", f);
            writeJsonStr(f, ev.cat);
            if (ev.virt) {
                fprintf(f,
                        ",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,"
                        "\"ts\":%.3f,\"dur\":%.3f}",
                        pid, ev.tid, ev.tsUs, ev.durUs);
                continue;
            }
            double ts_us = static_cast<double>(ev.tsNs - origin) / 1000.0;
            if (ev.ph == 'i') {
                fprintf(f,
                        ",\"ph\":\"i\",\"s\":\"t\",\"pid\":%u,"
                        "\"tid\":%u,\"ts\":%.3f}",
                        pid, tid, ts_us);
                continue;
            }
            fprintf(f, ",\"ph\":\"X\",\"pid\":%u,\"tid\":%u,\"ts\":%.3f,"
                       "\"dur\":%.3f",
                    pid, tid, ts_us,
                    static_cast<double>(ev.durNs) / 1000.0);
            if (ev.argName != nullptr) {
                fprintf(f, ",\"args\":{\"%s\":%llu}", ev.argName,
                        static_cast<unsigned long long>(ev.arg));
            }
            fputc('}', f);
        }
    }
    fputs("]}\n", f);
    fclose(f);
    return true;
}

namespace {

/** TRINITY_TRACE=<path> arms collection for the whole process and
 *  writes at exit. Registered from a static initializer so the atexit
 *  handler runs *before* static destructors tear the collector down —
 *  and after main() has joined worker pools. */
const bool g_env_trace = [] {
    const char *path = std::getenv("TRINITY_TRACE");
    if (path == nullptr || *path == '\0') {
        return false;
    }
    enableTrace(path);
    std::atexit([] {
        if (writeTrace()) {
            trinity_inform("TRINITY_TRACE: wrote %s",
                           collector().path.c_str());
        }
    });
    return true;
}();

} // namespace

} // namespace obs
} // namespace trinity
