/**
 * @file
 * Process-wide metrics: counters, gauges, and log-scale histograms
 * with percentile extraction, behind one registry.
 *
 * Design targets, in order:
 *  1. Near-zero cost when disabled — every mutation starts with one
 *     relaxed atomic load of the enabled flag and bails.
 *  2. Lock-free fast path when enabled — counters and histograms
 *     mutate relaxed atomics only; the registry mutex is touched just
 *     on first lookup of a name (call sites cache the pointer in a
 *     static) and during dump/reset.
 *  3. Bounded memory — histograms are fixed 252-bucket arrays, not
 *     sample reservoirs, so a million-request serving run costs the
 *     same 2 KiB per histogram as a ten-request smoke test.
 *
 * The histogram is HdrHistogram-shaped: values 0..7 get exact unit
 * buckets, and every power-of-two octave above that is split into 4
 * sub-buckets, bounding relative error at the bucket midpoint to
 * 12.5% across the full u64 range. Percentiles come from a cumulative
 * walk (rank = ceil(p * count)) and return the bucket midpoint.
 *
 * TRINITY_METRICS=on|off (default on) gates collection;
 * overrideMetrics() is the programmatic A/B hook, mirroring
 * overrideStreams().
 */

#ifndef TRINITY_OBS_METRICS_H
#define TRINITY_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdio>
#include <string>
#include <vector>

#include "common/bitops.h"
#include "common/types.h"

namespace trinity {
namespace obs {

namespace detail {

/** -1 = follow TRINITY_METRICS (resolved once, cached), 0/1 = forced. */
extern std::atomic<int> g_metricsMode;

bool metricsEnabledSlow();

} // namespace detail

/** True when metric mutations are being recorded. */
inline bool
metricsEnabled()
{
    int mode = detail::g_metricsMode.load(std::memory_order_relaxed);
    if (mode >= 0) {
        return mode != 0;
    }
    return detail::metricsEnabledSlow();
}

/** Force metrics on (1), off (0), or back to the environment (-1). */
void overrideMetrics(int mode);

/** Monotonic event count. */
class Counter
{
  public:
    void add(u64 n = 1)
    {
        if (metricsEnabled()) {
            value_.fetch_add(n, std::memory_order_relaxed);
        }
    }

    u64 value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<u64> value_{0};
};

/** Last-write-wins instantaneous level (queue depth, pool size). */
class Gauge
{
  public:
    void set(i64 v)
    {
        if (metricsEnabled()) {
            value_.store(v, std::memory_order_relaxed);
        }
    }

    i64 value() const { return value_.load(std::memory_order_relaxed); }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<i64> value_{0};
};

/** Fixed-bucket log-scale histogram; see file comment for the shape. */
class Histogram
{
  public:
    static constexpr u32 kLinear = 8;     // exact buckets for v < 8
    static constexpr u32 kSubBuckets = 4; // per octave above that
    // Octaves for exponents 1..61 cover the rest of the u64 range
    // (values >= 2^63 clamp into the last bucket).
    static constexpr u32 kBuckets = kLinear + 61 * kSubBuckets;

    /** Bucket index for @p v: exact below kLinear, then the octave of
     *  the top bit split kSubBuckets ways. */
    static u32 bucketOf(u64 v)
    {
        if (v < kLinear) {
            return static_cast<u32>(v);
        }
        u32 exp = log2Floor(v) - 2; // v in [4<<exp, 8<<exp)
        u32 sub = static_cast<u32>(v >> exp) - kSubBuckets; // 0..3
        u32 idx = kLinear + (exp - 1) * kSubBuckets + sub;
        return idx < kBuckets ? idx : kBuckets - 1;
    }

    /** Representative (midpoint) value of bucket @p idx. */
    static u64 bucketMid(u32 idx)
    {
        if (idx < kLinear) {
            return idx;
        }
        u32 exp = (idx - kLinear) / kSubBuckets + 1;
        u64 sub = kSubBuckets + (idx - kLinear) % kSubBuckets;
        u64 lo = sub << exp;
        u64 width = u64{1} << exp;
        return lo + (width - 1) / 2;
    }

    void observe(u64 v)
    {
        if (!metricsEnabled()) {
            return;
        }
        buckets_[bucketOf(v)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(v, std::memory_order_relaxed);
    }

    u64 count() const { return count_.load(std::memory_order_relaxed); }

    u64 sum() const { return sum_.load(std::memory_order_relaxed); }

    /** Value at quantile @p p in (0, 1]; 0 when empty. Reads are
     *  relaxed — concurrent observers shift the answer by at most the
     *  in-flight updates, which is the right trade for a stats dump. */
    u64 percentile(double p) const;

    void reset();

  private:
    std::array<std::atomic<u64>, kBuckets> buckets_{};
    std::atomic<u64> count_{0};
    std::atomic<u64> sum_{0};
};

/** Point-in-time snapshot rows for dump/json. */
struct MetricRow
{
    std::string name;
    std::string kind; // "counter" | "gauge" | "histogram"
    u64 count = 0;    // counter value / histogram count
    i64 gauge = 0;
    u64 sum = 0;
    u64 p50 = 0, p99 = 0, p999 = 0;
};

/**
 * Name → metric registry. Lookups allocate on first use and return a
 * stable pointer; idiomatic call sites do
 *
 *     static obs::Counter &c =
 *         obs::MetricsRegistry::instance().counter("stream.steals");
 *     c.add();
 *
 * so the map lookup happens once per call site, not per event.
 */
class MetricsRegistry
{
  public:
    static MetricsRegistry &instance();

    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /** Zero every registered metric (tests, bench phase boundaries). */
    void reset();

    /** Sorted-by-name snapshot of everything registered. */
    std::vector<MetricRow> snapshot() const;

    /** Human-readable table (histograms as count/p50/p99/p999). */
    void dump(std::FILE *out) const;

    /** Flat JSON object: counters/gauges as numbers, histograms as
     *  {count,sum,p50,p99,p999} objects. */
    std::string json() const;

  private:
    MetricsRegistry() = default;

    struct Impl;
    Impl &impl() const;
};

} // namespace obs
} // namespace trinity

#endif // TRINITY_OBS_METRICS_H
