/**
 * @file
 * NTT-friendly prime generation and primitive-root search.
 *
 * Trinity substitutes TFHE's FFT with NTT by picking a prime modulus
 * p ≡ 1 (mod 2N) nearest to the power-of-two torus modulus q
 * (Section II-B, "Substituting FFT with NTT"). The helpers here provide
 * exactly that: deterministic Miller-Rabin for 64-bit integers, searches
 * for primes congruent to 1 mod 2N at a given bit size or nearest a
 * target, and 2N-th primitive roots of unity.
 */

#ifndef TRINITY_COMMON_PRIMES_H
#define TRINITY_COMMON_PRIMES_H

#include <vector>

#include "common/modarith.h"
#include "common/types.h"

namespace trinity {

/** Deterministic Miller-Rabin primality test for 64-bit inputs. */
bool isPrime(u64 n);

/**
 * Find @p count distinct primes of exactly @p bits bits with
 * p ≡ 1 (mod 2N), scanning downward from 2^bits - 1.
 *
 * @param bits prime size in bits (3..61)
 * @param two_n the congruence modulus 2N (power of two)
 * @param count number of primes requested
 * @param skip primes to exclude (e.g. already allocated to the chain)
 */
std::vector<u64> findNttPrimes(u32 bits, u64 two_n, size_t count,
                               const std::vector<u64> &skip = {});

/**
 * Find the NTT-friendly prime closest to @p target with
 * p ≡ 1 (mod 2N) — the paper's FFT→NTT substitution rule.
 */
u64 nearestNttPrime(u64 target, u64 two_n);

/**
 * Find a primitive 2N-th root of unity mod prime p (p ≡ 1 mod 2N).
 * The returned psi satisfies psi^N = -1 mod p.
 */
u64 findPrimitiveRoot(u64 two_n, const Modulus &mod);

} // namespace trinity

#endif // TRINITY_COMMON_PRIMES_H
