/**
 * @file
 * 64-bit modular arithmetic: a Modulus object carrying Barrett
 * precomputation, plus Shoup-style lazy multiplication used by the NTT
 * butterflies (the software analogue of the modular multipliers inside
 * Trinity's BU / PE datapaths).
 *
 * All moduli are required to be < 2^62 so that lazy additions of two
 * residues never overflow 64 bits.
 */

#ifndef TRINITY_COMMON_MODARITH_H
#define TRINITY_COMMON_MODARITH_H

#include "common/logging.h"
#include "common/types.h"

namespace trinity {

/**
 * An odd modulus q < 2^62 with Barrett reduction precomputation.
 *
 * The Barrett constant is floor(2^128 / q) stored as a 128-bit value,
 * which yields an exact reduction for any 128-bit product input.
 */
class Modulus
{
  public:
    Modulus() : value_(0), barrettHi_(0), barrettLo_(0) {}

    /** Construct from a modulus value. @param q the modulus, 2 < q < 2^62 */
    explicit Modulus(u64 q);

    /** The raw modulus value. */
    u64 value() const { return value_; }

    /** High/low words of floor(2^128 / q) — the Barrett constant.
     *  Exposed so vectorized engines can run the exact reduce128()
     *  recurrence lane-parallel and stay bit-identical to it. */
    u64 barrettHi() const { return barrettHi_; }
    u64 barrettLo() const { return barrettLo_; }

    /** Number of significant bits in the modulus. */
    u32 bits() const;

    /** @return a + b mod q; inputs must already be reduced. */
    u64
    add(u64 a, u64 b) const
    {
        u64 s = a + b;
        return s >= value_ ? s - value_ : s;
    }

    /** @return a - b mod q; inputs must already be reduced. */
    u64
    sub(u64 a, u64 b) const
    {
        return a >= b ? a - b : a + value_ - b;
    }

    /** @return -a mod q. */
    u64
    neg(u64 a) const
    {
        return a == 0 ? 0 : value_ - a;
    }

    /** Reduce an arbitrary 64-bit value mod q. */
    u64
    reduce(u64 a) const
    {
        return a % value_;
    }

    /** Reduce a 128-bit value mod q via Barrett reduction. */
    u64 reduce128(u128 a) const;

    /** @return a * b mod q for reduced inputs. */
    u64
    mul(u64 a, u64 b) const
    {
        return reduce128(static_cast<u128>(a) * b);
    }

    /** @return a * b + c mod q for reduced inputs. */
    u64
    mulAdd(u64 a, u64 b, u64 c) const
    {
        return reduce128(static_cast<u128>(a) * b + c);
    }

    /** @return a^e mod q. */
    u64 pow(u64 a, u64 e) const;

    /**
     * @return the multiplicative inverse of a mod q.
     * The modulus must be prime (Fermat inversion).
     */
    u64 inv(u64 a) const;

    /**
     * Precompute the Shoup constant for multiplying by fixed operand
     * @p w: floor(w * 2^64 / q). Feed to mulShoup().
     */
    u64
    shoupPrecompute(u64 w) const
    {
        return static_cast<u64>((static_cast<u128>(w) << 64) / value_);
    }

    /**
     * Shoup modular multiplication by a constant with precomputation.
     * @param a reduced multiplicand
     * @param w reduced constant operand
     * @param w_precon shoupPrecompute(w)
     * @return a * w mod q
     */
    u64
    mulShoup(u64 a, u64 w, u64 w_precon) const
    {
        u64 quot = static_cast<u64>(
            (static_cast<u128>(a) * w_precon) >> 64);
        u64 r = a * w - quot * value_;
        return r >= value_ ? r - value_ : r;
    }

    bool operator==(const Modulus &o) const { return value_ == o.value_; }
    bool operator!=(const Modulus &o) const { return value_ != o.value_; }

  private:
    u64 value_;
    /** floor(2^128 / q), split across two 64-bit words (hi, lo). */
    u64 barrettHi_;
    u64 barrettLo_;
};

/** Centered (balanced) representative of a residue in (-q/2, q/2]. */
inline i64
centeredRep(u64 a, u64 q)
{
    return a > q / 2 ? static_cast<i64>(a) - static_cast<i64>(q)
                     : static_cast<i64>(a);
}

/** Map a signed value into [0, q). */
inline u64
toResidue(i64 a, u64 q)
{
    i64 r = a % static_cast<i64>(q);
    if (r < 0) {
        r += static_cast<i64>(q);
    }
    return static_cast<u64>(r);
}

} // namespace trinity

#endif // TRINITY_COMMON_MODARITH_H
