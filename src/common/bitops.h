/**
 * @file
 * Small bit-manipulation helpers shared by the NTT engines and the
 * hardware models.
 */

#ifndef TRINITY_COMMON_BITOPS_H
#define TRINITY_COMMON_BITOPS_H

#include <bit>

#include "common/types.h"

namespace trinity {

/** @return true iff @p x is a power of two (and non-zero). */
constexpr bool
isPowerOfTwo(u64 x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

/** @return floor(log2(x)); x must be non-zero. */
constexpr u32
log2Floor(u64 x)
{
    return 63 - static_cast<u32>(std::countl_zero(x));
}

/** @return log2(x) for a power of two x. */
constexpr u32
log2Exact(u64 x)
{
    return log2Floor(x);
}

/** @return ceil(log2(x)); x must be non-zero. */
constexpr u32
log2Ceil(u64 x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

/** @return @p v with its lowest @p bits bits reversed. */
constexpr u64
bitReverse(u64 v, u32 bits)
{
    u64 r = 0;
    for (u32 i = 0; i < bits; ++i) {
        r = (r << 1) | ((v >> i) & 1);
    }
    return r;
}

/** @return ceil(a / b) for positive integers. */
constexpr u64
ceilDiv(u64 a, u64 b)
{
    return (a + b - 1) / b;
}

} // namespace trinity

#endif // TRINITY_COMMON_BITOPS_H
