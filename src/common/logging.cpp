#include "common/logging.h"

#include <atomic>
#include <cstdarg>
#include <mutex>
#include <vector>

namespace trinity {

namespace {

/** One writer mutex for every log line: worker-pool spans report from
 *  many threads, and interleaved fprintf halves are worse than the
 *  microseconds of serialization (each message is formatted before the
 *  lock, so the critical section is one write). */
std::mutex &
writerMutex()
{
    static std::mutex m;
    return m;
}

std::atomic<int> g_logLevel{static_cast<int>(LogLevel::Info)};

} // namespace

void
setLogLevel(LogLevel level)
{
    g_logLevel.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return static_cast<LogLevel>(
        g_logLevel.load(std::memory_order_relaxed));
}

namespace detail {

std::string
formatStr(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (needed < 0) {
        va_end(args_copy);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(needed) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data());
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    // Never filtered: fatal/panic terminate the process, so the level
    // gate and the writer lock protect only the message ordering.
    {
        std::lock_guard<std::mutex> lock(writerMutex());
        std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::exit(1);
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    {
        std::lock_guard<std::mutex> lock(writerMutex());
        std::fprintf(stderr, "panic: %s (%s:%d)\n", msg.c_str(), file,
                     line);
    }
    std::abort();
}

void
warnImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Warn) {
        return;
    }
    std::lock_guard<std::mutex> lock(writerMutex());
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (logLevel() < LogLevel::Info) {
        return;
    }
    std::lock_guard<std::mutex> lock(writerMutex());
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace trinity
