#include "common/rng.h"

#include <cmath>

namespace trinity {

Rng::Rng(u64 seed)
{
    // SplitMix64 expansion of the seed into the xoshiro state.
    u64 x = seed;
    for (int i = 0; i < 4; ++i) {
        x += 0x9e3779b97f4a7c15ULL;
        u64 z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        s_[i] = z ^ (z >> 31);
    }
}

u64
Rng::next()
{
    u64 result = rotl(s_[1] * 5, 7) * 9;
    u64 t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

u64
Rng::uniform(u64 q)
{
    // Rejection sampling to avoid modulo bias.
    u64 limit = ~0ULL - (~0ULL % q);
    u64 v = next();
    while (v >= limit) {
        v = next();
    }
    return v % q;
}

double
Rng::uniformReal()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

i64
Rng::ternary()
{
    return static_cast<i64>(next() % 3) - 1;
}

i64
Rng::gaussian(double sigma)
{
    double u1 = uniformReal();
    double u2 = uniformReal();
    while (u1 <= 1e-300) {
        u1 = uniformReal();
    }
    double g = std::sqrt(-2.0 * std::log(u1)) *
               std::cos(2.0 * M_PI * u2);
    return static_cast<i64>(std::llround(g * sigma));
}

std::vector<u64>
Rng::uniformVec(size_t n, u64 q)
{
    std::vector<u64> v(n);
    for (auto &x : v) {
        x = uniform(q);
    }
    return v;
}

} // namespace trinity
