#include "common/primes.h"

#include "common/bitops.h"
#include "common/logging.h"

namespace trinity {

namespace {

/** Modular exponentiation without a precomputed Modulus. */
u64
powMod(u64 base, u64 exp, u64 mod)
{
    u128 result = 1;
    u128 b = base % mod;
    while (exp) {
        if (exp & 1) {
            result = result * b % mod;
        }
        b = b * b % mod;
        exp >>= 1;
    }
    return static_cast<u64>(result);
}

bool
millerRabinWitness(u64 n, u64 a, u64 d, u32 r)
{
    u64 x = powMod(a, d, n);
    if (x == 1 || x == n - 1) {
        return false;
    }
    for (u32 i = 1; i < r; ++i) {
        x = static_cast<u64>(static_cast<u128>(x) * x % n);
        if (x == n - 1) {
            return false;
        }
    }
    return true; // composite witness
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2) {
        return false;
    }
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n == p) {
            return true;
        }
        if (n % p == 0) {
            return false;
        }
    }
    u64 d = n - 1;
    u32 r = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++r;
    }
    // Deterministic base set for all n < 2^64 (Sinclair 2011).
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL, 19ULL,
                  23ULL, 29ULL, 31ULL, 37ULL}) {
        if (millerRabinWitness(n, a, d, r)) {
            return false;
        }
    }
    return true;
}

std::vector<u64>
findNttPrimes(u32 bits, u64 two_n, size_t count, const std::vector<u64> &skip)
{
    trinity_assert(isPowerOfTwo(two_n), "2N must be a power of two");
    if (bits < log2Exact(two_n) + 2 || bits > 61) {
        trinity_fatal("prime size %u bits incompatible with 2N=%llu",
                      bits, static_cast<unsigned long long>(two_n));
    }
    std::vector<u64> primes;
    // Largest candidate of the requested size congruent to 1 mod 2N.
    u64 hi = (bits == 63) ? ~0ULL : (1ULL << bits) - 1;
    u64 lo = 1ULL << (bits - 1);
    u64 cand = (hi / two_n) * two_n + 1;
    while (cand > hi) {
        cand -= two_n;
    }
    for (; cand >= lo && primes.size() < count; cand -= two_n) {
        if (!isPrime(cand)) {
            continue;
        }
        bool skipped = false;
        for (u64 s : skip) {
            if (s == cand) {
                skipped = true;
                break;
            }
        }
        if (!skipped) {
            primes.push_back(cand);
        }
    }
    if (primes.size() < count) {
        trinity_fatal("not enough %u-bit primes congruent 1 mod %llu",
                      bits, static_cast<unsigned long long>(two_n));
    }
    return primes;
}

u64
nearestNttPrime(u64 target, u64 two_n)
{
    trinity_assert(isPowerOfTwo(two_n), "2N must be a power of two");
    // Walk outward from the nearest multiple-of-2N + 1.
    u64 base = (target / two_n) * two_n + 1;
    for (u64 k = 0; k < (1ULL << 24); ++k) {
        u64 up = base + k * two_n;
        if (up >= target && isPrime(up)) {
            // Check the symmetric candidate below before deciding.
            u64 down_k = (up - target) / two_n + 1;
            u64 down = base >= down_k * two_n ? base - down_k * two_n : 0;
            while (down > target) {
                down -= two_n;
            }
            if (down > 2 && isPrime(down) &&
                target - down < up - target) {
                return down;
            }
            return up;
        }
        if (base >= k * two_n) {
            u64 down = base - k * two_n;
            if (down <= target && down > 2 && isPrime(down)) {
                return down;
            }
        }
    }
    trinity_fatal("no NTT prime near %llu for 2N=%llu",
                  static_cast<unsigned long long>(target),
                  static_cast<unsigned long long>(two_n));
}

u64
findPrimitiveRoot(u64 two_n, const Modulus &mod)
{
    u64 p = mod.value();
    trinity_assert((p - 1) % two_n == 0, "p != 1 mod 2N");
    u64 group_order = p - 1;
    u64 quotient = group_order / two_n;
    // Try small candidates as generators of the 2N-torsion subgroup.
    for (u64 g = 2; g < 1000; ++g) {
        u64 root = mod.pow(g, quotient);
        // root has order dividing 2N; it is primitive iff
        // root^(2N/2) = root^N != 1.
        if (mod.pow(root, two_n / 2) == p - 1) {
            return root;
        }
    }
    trinity_fatal("no primitive 2N-th root found for p=%llu",
                  static_cast<unsigned long long>(p));
}

} // namespace trinity
