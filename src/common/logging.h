/**
 * @file
 * gem5-style status and error reporting helpers.
 *
 * fatal()  — the situation is the *user's* fault (bad parameters,
 *            unsupported configuration); exits with status 1.
 * panic()  — an internal invariant was violated (a library bug); aborts.
 * warn()   — something works but not as well as it should.
 * inform() — plain status output.
 */

#ifndef TRINITY_COMMON_LOGGING_H
#define TRINITY_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace trinity {

/**
 * Runtime verbosity for warn()/inform(). fatal() and panic() are
 * never filtered — they terminate the process. The level is an atomic
 * and every emitted line goes through one writer mutex, so logging
 * from worker-pool threads neither tears lines nor races the filter.
 */
enum class LogLevel : int
{
    Silent = 0, ///< drop warn() and inform()
    Warn = 1,   ///< warn() only
    Info = 2,   ///< warn() and inform() (the default)
};

void setLogLevel(LogLevel level);
LogLevel logLevel();

namespace detail {

[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** Minimal printf-style formatter returning std::string. */
std::string formatStr(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

#define trinity_fatal(...) \
    ::trinity::detail::fatalImpl(__FILE__, __LINE__, \
        ::trinity::detail::formatStr(__VA_ARGS__))

#define trinity_panic(...) \
    ::trinity::detail::panicImpl(__FILE__, __LINE__, \
        ::trinity::detail::formatStr(__VA_ARGS__))

#define trinity_warn(...) \
    ::trinity::detail::warnImpl(::trinity::detail::formatStr(__VA_ARGS__))

#define trinity_inform(...) \
    ::trinity::detail::informImpl(::trinity::detail::formatStr(__VA_ARGS__))

/** panic() unless the given invariant holds. */
#define trinity_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            ::trinity::detail::panicImpl(__FILE__, __LINE__, \
                ::trinity::detail::formatStr(__VA_ARGS__)); \
        } \
    } while (0)

} // namespace trinity

#endif // TRINITY_COMMON_LOGGING_H
