/**
 * @file
 * Strict environment-variable parsing shared by the engine and
 * runtime knobs (TRINITY_THREADS, TRINITY_RUNTIME_BATCH, ...).
 */

#ifndef TRINITY_COMMON_ENV_H
#define TRINITY_COMMON_ENV_H

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "common/types.h"

namespace trinity {

/**
 * Read env var @p name as a non-negative integer. Returns false when
 * the variable is unset; fatal on anything but a plain digit string
 * (strtoull would silently skip whitespace and negate a leading '-').
 * Callers reject 0 themselves where "none" makes no sense.
 */
inline bool
envU64(const char *name, u64 &out)
{
    const char *env = std::getenv(name);
    if (env == nullptr) {
        return false;
    }
    char *end = nullptr;
    errno = 0;
    unsigned long long parsed = std::strtoull(env, &end, 10);
    if (!std::isdigit(static_cast<unsigned char>(env[0])) || end == env ||
        *end != '\0' || errno == ERANGE) {
        trinity_fatal("invalid %s value '%s': expected a non-negative "
                      "integer",
                      name, env);
    }
    out = static_cast<u64>(parsed);
    return true;
}

/**
 * Read env var @p name as one of @p count fixed choices. Returns false
 * when the variable is unset; on a match sets @p outIndex to the
 * matching choice's index. Anything else is fatal with a message
 * listing every valid value — engine knobs must never silently fall
 * back on a typo (TRINITY_SIMD_LEVEL=axv2 running scalar would
 * invalidate a benchmark run without anyone noticing).
 */
inline bool
envChoice(const char *name, const char *const *choices, size_t count,
          size_t &outIndex)
{
    const char *env = std::getenv(name);
    if (env == nullptr) {
        return false;
    }
    for (size_t i = 0; i < count; ++i) {
        if (std::strcmp(env, choices[i]) == 0) {
            outIndex = i;
            return true;
        }
    }
    std::string valid;
    for (size_t i = 0; i < count; ++i) {
        if (!valid.empty()) {
            valid += ", ";
        }
        valid += choices[i];
    }
    trinity_fatal("invalid %s value '%s': expected one of %s", name, env,
                  valid.c_str());
}

} // namespace trinity

#endif // TRINITY_COMMON_ENV_H
