/**
 * @file
 * Deterministic randomness for key generation and encryption.
 *
 * The schemes need three samplers: uniform residues, ternary secrets,
 * and a (rounded) discrete Gaussian for noise. A fixed-seed xoshiro256**
 * generator keeps tests reproducible.
 */

#ifndef TRINITY_COMMON_RNG_H
#define TRINITY_COMMON_RNG_H

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace trinity {

/** xoshiro256** PRNG; fast, seedable, good statistical quality. */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed5eed5eedULL);

    /** Uniform 64-bit word. */
    u64 next();

    /** Uniform residue in [0, q). */
    u64 uniform(u64 q);

    /** Uniform double in [0, 1). */
    double uniformReal();

    /** Ternary sample in {-1, 0, 1} (uniform). */
    i64 ternary();

    /**
     * Rounded Gaussian sample with standard deviation @p sigma
     * (Box-Muller, rounded to nearest integer).
     */
    i64 gaussian(double sigma);

    /** Fill a vector with uniform residues mod q. */
    std::vector<u64> uniformVec(size_t n, u64 q);

  private:
    u64 rotl(u64 x, int k) const { return (x << k) | (x >> (64 - k)); }

    u64 s_[4];
};

} // namespace trinity

#endif // TRINITY_COMMON_RNG_H
