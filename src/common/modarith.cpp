#include "common/modarith.h"

namespace trinity {

Modulus::Modulus(u64 q)
    : value_(q)
{
    if (q < 2 || q >= (1ULL << 62)) {
        trinity_fatal("modulus %llu out of supported range [2, 2^62)",
                      static_cast<unsigned long long>(q));
    }
    // Compute floor(2^128 / q) by long division of 2^128 by q.
    // 2^128 / q = (2^64 / q) * 2^64 + ((2^64 mod q) * 2^64) / q.
    u64 hi = ~0ULL / q;            // floor((2^64 - 1) / q)
    u128 rem = (static_cast<u128>(~0ULL) % q) + 1;  // 2^64 mod q (if q | 2^64 handled below)
    if (rem == q) {
        hi += 1;
        rem = 0;
    }
    u128 lo128 = (rem << 64) / q;
    barrettHi_ = hi;
    barrettLo_ = static_cast<u64>(lo128);
}

u32
Modulus::bits() const
{
    u32 b = 0;
    u64 v = value_;
    while (v) {
        ++b;
        v >>= 1;
    }
    return b;
}

u64
Modulus::reduce128(u128 a) const
{
    // Barrett: q_est = floor(a * floor(2^128/q) / 2^128), computed with
    // 128x128 -> top 128 bits multiplication pieces.
    u64 a_lo = static_cast<u64>(a);
    u64 a_hi = static_cast<u64>(a >> 64);

    // t = a * (barrettHi_ * 2^64 + barrettLo_) >> 128
    // Expand into four partial products; we only need the top 128 bits.
    u128 p_ll = static_cast<u128>(a_lo) * barrettLo_;
    u128 p_lh = static_cast<u128>(a_lo) * barrettHi_;
    u128 p_hl = static_cast<u128>(a_hi) * barrettLo_;
    u128 p_hh = static_cast<u128>(a_hi) * barrettHi_;

    u128 mid = (p_ll >> 64) + static_cast<u64>(p_lh)
             + static_cast<u64>(p_hl);
    u128 top = p_hh + (p_lh >> 64) + (p_hl >> 64) + (mid >> 64);

    u128 q_est = top; // floor(a * B / 2^128)
    u128 r = a - q_est * value_;
    while (r >= value_) {
        r -= value_;
    }
    return static_cast<u64>(r);
}

u64
Modulus::pow(u64 a, u64 e) const
{
    u64 base = reduce(a);
    u64 result = 1;
    while (e) {
        if (e & 1) {
            result = mul(result, base);
        }
        base = mul(base, base);
        e >>= 1;
    }
    return result;
}

u64
Modulus::inv(u64 a) const
{
    trinity_assert(a % value_ != 0, "inverse of zero mod %llu",
                   static_cast<unsigned long long>(value_));
    return pow(a, value_ - 2);
}

} // namespace trinity
