/**
 * @file
 * Fundamental integer type aliases used across the Trinity library.
 */

#ifndef TRINITY_COMMON_TYPES_H
#define TRINITY_COMMON_TYPES_H

#include <cstdint>

namespace trinity {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using u128 = unsigned __int128;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using i128 = __int128;

} // namespace trinity

#endif // TRINITY_COMMON_TYPES_H
