#include "runtime/pir_server.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {
namespace runtime {

// Same metric family as PbsServer, under the PIR server's label, so
// serving dashboards and benches read both front ends uniformly.
struct PirServer::Metrics
{
    obs::Gauge &queue_depth;
    obs::Histogram &batch_size;
    obs::Histogram &queue_wait_ns;
    obs::Histogram &request_latency_ns;
    obs::Counter &requests;
    obs::Counter &batches;
    obs::Counter &rejected;
    obs::Counter &shed;

    static Metrics &
    forLabel(const std::string &label)
    {
        static std::mutex mtx;
        static std::map<std::string, std::unique_ptr<Metrics>> all;
        std::lock_guard<std::mutex> lk(mtx);
        auto it = all.find(label);
        if (it == all.end()) {
            obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
            it = all.emplace(
                         label,
                         std::unique_ptr<Metrics>(new Metrics{
                             reg.gauge(label + ".queue_depth"),
                             reg.histogram(label + ".batch_size"),
                             reg.histogram(label + ".queue_wait_ns"),
                             reg.histogram(label + ".request_latency_ns"),
                             reg.counter(label + ".requests"),
                             reg.counter(label + ".batches"),
                             reg.counter(label + ".rejected"),
                             reg.counter(label + ".shed"),
                         }))
                     .first;
        }
        return *it->second;
    }
};

ServerOptions
PirServer::defaultOptions()
{
    ServerOptions opts = ServerOptions::fromEnv();
    opts.label = "pir_server";
    return opts;
}

PirServer::PirServer(std::shared_ptr<TfheContext> ctx,
                     const pir::PirParams &params,
                     pir::PirDbStore &store, KeysProvider keys,
                     ServerOptions opts)
    : store_(store), keys_(std::move(keys)),
      engine_(std::move(ctx), params), opts_(std::move(opts)),
      max_batch_(opts_.resolvedMaxBatch()),
      metrics_(Metrics::forLabel(opts_.label)),
      worker_([this] { workerLoop(); })
{
    trinity_assert(keys_ != nullptr, "PirServer needs a keys provider");
}

PirServer::~PirServer()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    arrived_.notify_all();
    worker_.join();
}

std::future<pir::PirResponse>
PirServer::submit(pir::PirTenantId t, pir::PirQuery query)
{
    Pending p;
    p.tenant = t;
    p.query = std::move(query);
    p.enqueuedNs = obs::detail::nowNs();
    std::future<pir::PirResponse> result = p.result.get_future();
    bool rejected = false;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        trinity_assert(!stop_, "submit() on a stopped PirServer");
        if (opts_.maxQueue > 0 && queue_.size() >= opts_.maxQueue) {
            rejected = true;
            ++stats_.rejected;
        } else {
            queue_.push_back(std::move(p));
            metrics_.queue_depth.set(static_cast<i64>(queue_.size()));
        }
    }
    if (rejected) {
        metrics_.rejected.add();
        p.result.set_exception(std::make_exception_ptr(AdmissionRejected(
            "query rejected: serving queue at maxQueue=" +
            std::to_string(opts_.maxQueue))));
        return result;
    }
    arrived_.notify_all();
    return result;
}

ServerStats
PirServer::stats() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return stats_;
}

void
PirServer::executeGroup(std::vector<Pending> &work, size_t begin,
                        size_t end)
{
    size_t count = end - begin;
    Metrics &m = metrics_;
    m.requests.add(count);
    m.batches.add();
    m.batch_size.observe(count);
    u64 batch_start = obs::detail::nowNs();
    for (size_t i = begin; i < end; ++i) {
        m.queue_wait_ns.observe(batch_start - work[i].enqueuedNs);
    }

    // Fault in the tenant's serving-form database and resolve its
    // uploaded keys. The shared_ptr pins the resident form for the
    // whole group, so evictions triggered by other tenants' faults
    // can't invalidate the fold's rows mid-flight.
    std::shared_ptr<const pir::ResidentPirDb> db;
    const pir::PirQueryKeys *keys = nullptr;
    try {
        db = store_.acquire(work[begin].tenant);
        keys = &keys_(work[begin].tenant);
    } catch (...) {
        std::exception_ptr err = std::current_exception();
        for (size_t i = begin; i < end; ++i) {
            work[i].result.set_exception(err);
        }
        return;
    }

    std::vector<pir::PirResponse> out;
    out.reserve(count);
    {
        obs::TraceSpan span("pirBatch", "runtime", opts_.label.c_str(),
                            "requests", count);
        for (size_t i = begin; i < end; ++i) {
            out.push_back(engine_.answer(*db, *keys, work[i].query));
        }
    }
    // Account before resolving: a client that has seen its future
    // resolve must also see these requests in stats().
    {
        std::lock_guard<std::mutex> slk(mtx_);
        stats_.requests += count;
        stats_.batches += 1;
        if (count > stats_.largestBatch) {
            stats_.largestBatch = count;
        }
    }
    for (size_t i = begin; i < end; ++i) {
        m.request_latency_ns.observe(obs::detail::nowNs() -
                                     work[i].enqueuedNs);
        work[i].result.set_value(std::move(out[i - begin]));
    }
}

void
PirServer::workerLoop()
{
    std::unique_lock<std::mutex> lk(mtx_);
    while (true) {
        arrived_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            return; // stopped and fully drained
        }
        // Hold the window open until it fills or the deadline passes;
        // shutdown flushes immediately.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.maxWaitUs);
        arrived_.wait_until(lk, deadline, [&] {
            return stop_ || queue_.size() >= max_batch_;
        });
        size_t take = queue_.size() < max_batch_ ? queue_.size()
                                                 : max_batch_;
        std::vector<Pending> work;
        work.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            work.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        metrics_.queue_depth.set(static_cast<i64>(queue_.size()));
        lk.unlock();

        // Deadline policy: shed anything that already waited past the
        // budget instead of answering it late.
        if (opts_.deadlineUs > 0) {
            u64 now = obs::detail::nowNs();
            u64 budgetNs = opts_.deadlineUs * 1000;
            std::vector<Pending> kept;
            kept.reserve(work.size());
            for (Pending &p : work) {
                if (now - p.enqueuedNs > budgetNs) {
                    metrics_.shed.add();
                    {
                        std::lock_guard<std::mutex> slk(mtx_);
                        ++stats_.shed;
                    }
                    p.result.set_exception(
                        std::make_exception_ptr(DeadlineExceeded(
                            "query shed: queue wait exceeded "
                            "deadlineUs=" +
                            std::to_string(opts_.deadlineUs))));
                } else {
                    kept.push_back(std::move(p));
                }
            }
            work = std::move(kept);
        }

        // One group per tenant: grouping keeps each window's database
        // faults to one acquire per tenant (stable, so a tenant's
        // queries keep arrival order).
        if (!work.empty()) {
            std::stable_sort(work.begin(), work.end(),
                             [](const Pending &a, const Pending &b) {
                                 return a.tenant < b.tenant;
                             });
            size_t begin = 0;
            for (size_t i = 1; i <= work.size(); ++i) {
                if (i == work.size() ||
                    work[i].tenant != work[begin].tenant) {
                    executeGroup(work, begin, i);
                    begin = i;
                }
            }
        }

        lk.lock();
    }
}

} // namespace runtime
} // namespace trinity
