/**
 * @file
 * Sharded multi-tenant PBS serving.
 *
 * One PbsServer saturates one engine's lockstep pipeline but owns a
 * single request queue and keystore; at production tenant counts the
 * key working set — not compute — is the bottleneck (tens of MB per
 * tenant). ShardedPbsServer splits the fleet:
 *
 *  - N shards, each a multi-tenant PbsServer with its own KeyStore
 *    (the total key budget divides evenly across shards) and its own
 *    worker thread.
 *  - Requests route by **key affinity**: tenant → shard through a
 *    fixed hash (splitmix64 of the TenantId mod N), so every request
 *    of a tenant lands on the same shard and the tenant's materialized
 *    keys stay resident in exactly one shard's store instead of being
 *    faulted into all of them.
 *  - Each shard enforces the admission (maxQueue) and deadline
 *    (deadlineUs) policy independently — an overloaded shard sheds
 *    its own load without stalling the others.
 *
 * Shard metrics are labeled "pbs_server.shard<i>" / "keystore.shard<i>"
 * in the obs::MetricsRegistry, so tail latency and hit rates report
 * per shard (bench_table_multitenant turns them into BENCH_ci rows).
 */

#ifndef TRINITY_RUNTIME_SHARDED_SERVER_H
#define TRINITY_RUNTIME_SHARDED_SERVER_H

#include <vector>

#include "runtime/pbs_server.h"

namespace trinity {
namespace runtime {

/** Fleet shape and per-shard policy. */
struct ShardedOptions
{
    /** Shard count; each shard owns one worker + one keystore. */
    size_t shards = 2;
    /** TOTAL keystore budget in bytes, divided across shards; 0
     *  resolves TRINITY_KEYSTORE_BYTES, and if that is unset the
     *  stores are unbounded. */
    size_t keystoreBudgetBytes = 0;
    /** Per-shard queue/batch/deadline policy; the label is suffixed
     *  ".shard<i>" per shard automatically. */
    ServerOptions server = ServerOptions::fromEnv();

    /** Defaults with TRINITY_RUNTIME_SHARDS applied on top of
     *  ServerOptions::fromEnv(). */
    static ShardedOptions fromEnv();
};

/** Aggregated fleet counters. */
struct ShardedStats
{
    ServerStats serving;      ///< summed over shards
    KeyStore::Stats keystore; ///< summed over shards
};

/**
 * N PbsServer shards behind consistent tenant→shard routing. All
 * shards share one TfheContext (same parameter set) and one durable
 * key-material provider; resident working sets are per shard.
 */
class ShardedPbsServer
{
  public:
    ShardedPbsServer(std::shared_ptr<TfheContext> ctx,
                     KeyStore::Provider provider,
                     ShardedOptions opts = ShardedOptions::fromEnv());

    ShardedPbsServer(const ShardedPbsServer &) = delete;
    ShardedPbsServer &operator=(const ShardedPbsServer &) = delete;

    /** The shard tenant @p t always routes to. */
    size_t shardOf(TenantId t) const;

    /** Tenant @p t's sign bootstrap on its home shard. */
    std::future<LweCiphertext> submit(TenantId t, LweCiphertext ct);

    /** Tenant @p t's programmable bootstrap with caller-owned LUT. */
    std::future<LweCiphertext> submit(TenantId t, LweCiphertext ct,
                                      const Poly &tv);

    size_t shards() const { return servers_.size(); }
    const PbsServer &shard(size_t i) const { return *servers_[i]; }
    const KeyStore &store(size_t i) const { return *stores_[i]; }

    /** Fleet-wide sums of the per-shard serving/keystore counters. */
    ShardedStats stats() const;

  private:
    std::shared_ptr<TfheContext> ctx_;
    std::vector<std::unique_ptr<KeyStore>> stores_;
    std::vector<std::unique_ptr<PbsServer>> servers_;
};

} // namespace runtime
} // namespace trinity

#endif // TRINITY_RUNTIME_SHARDED_SERVER_H
