#include "runtime/batched_pbs.h"

#include <algorithm>

#include "backend/registry.h"
#include "common/logging.h"

namespace trinity {
namespace runtime {

std::vector<LweCiphertext>
BatchedBootstrapper::run(const PbsBatch &batch) const
{
    // Lockstep width follows the engine's appetite: wider adds
    // working-set pressure without adding parallelism once every
    // worker/lane is fed, so an oversized aggregation executes as
    // consecutive preferred-width chunks. Each chunk's blind rotation
    // is recorded as one command stream (TfheBootstrapper::pbsBatch),
    // so the engine still sees deep fused job streams per chunk.
    return runChunked(batch, activeBackend().preferredBatch());
}

std::vector<LweCiphertext>
runPbsBatchChunked(const TfheBootstrapper &boot, const PbsBatch &batch,
                   const TfheBootstrapKey &bsk,
                   const TfheKeySwitchKey &ksk, size_t maxChunk)
{
    trinity_assert(batch.inputs.size() == batch.testVectors.size(),
                   "PbsBatch inputs/testVectors size mismatch (%zu vs "
                   "%zu)",
                   batch.inputs.size(), batch.testVectors.size());
    size_t total = batch.size();
    if (maxChunk == 0 || total <= maxChunk) {
        return boot.pbsBatch(batch.inputs.data(),
                             batch.testVectors.data(), total, bsk, ksk);
    }
    std::vector<LweCiphertext> out;
    out.reserve(total);
    for (size_t off = 0; off < total; off += maxChunk) {
        size_t width = std::min(maxChunk, total - off);
        std::vector<LweCiphertext> part = boot.pbsBatch(
            batch.inputs.data() + off, batch.testVectors.data() + off,
            width, bsk, ksk);
        for (auto &ct : part) {
            out.push_back(std::move(ct));
        }
    }
    return out;
}

std::vector<LweCiphertext>
BatchedBootstrapper::runChunked(const PbsBatch &batch,
                                size_t maxChunk) const
{
    return runPbsBatchChunked(gb_.bootstrapper(), batch,
                              gb_.bootstrapKey(), gb_.keySwitchKey(),
                              maxChunk);
}

std::vector<LweCiphertext>
BatchedBootstrapper::bootstrapSignBatch(
    const std::vector<LweCiphertext> &cts) const
{
    PbsBatch batch;
    batch.inputs.reserve(cts.size());
    batch.testVectors.reserve(cts.size());
    for (const auto &ct : cts) {
        batch.add(ct, gb_.signVector());
    }
    return run(batch);
}

} // namespace runtime
} // namespace trinity
