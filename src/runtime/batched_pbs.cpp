#include "runtime/batched_pbs.h"

#include "common/logging.h"

namespace trinity {
namespace runtime {

std::vector<LweCiphertext>
BatchedBootstrapper::run(const PbsBatch &batch) const
{
    trinity_assert(batch.inputs.size() == batch.testVectors.size(),
                   "PbsBatch inputs/testVectors size mismatch (%zu vs "
                   "%zu)",
                   batch.inputs.size(), batch.testVectors.size());
    return gb_.bootstrapper().pbsBatch(
        batch.inputs.data(), batch.testVectors.data(), batch.size(),
        gb_.bootstrapKey(), gb_.keySwitchKey());
}

std::vector<LweCiphertext>
BatchedBootstrapper::bootstrapSignBatch(
    const std::vector<LweCiphertext> &cts) const
{
    PbsBatch batch;
    batch.inputs.reserve(cts.size());
    batch.testVectors.reserve(cts.size());
    for (const auto &ct : cts) {
        batch.add(ct, gb_.signVector());
    }
    return run(batch);
}

} // namespace runtime
} // namespace trinity
