#include "runtime/sharded_server.h"

#include <algorithm>

#include "common/env.h"
#include "common/logging.h"

namespace trinity {
namespace runtime {

ShardedOptions
ShardedOptions::fromEnv()
{
    ShardedOptions opts;
    u64 v = 0;
    if (envU64("TRINITY_RUNTIME_SHARDS", v)) {
        if (v == 0) {
            trinity_fatal("invalid TRINITY_RUNTIME_SHARDS value '0': "
                          "the fleet needs at least one shard");
        }
        opts.shards = static_cast<size_t>(v);
    }
    return opts;
}

ShardedPbsServer::ShardedPbsServer(std::shared_ptr<TfheContext> ctx,
                                   KeyStore::Provider provider,
                                   ShardedOptions opts)
    : ctx_(std::move(ctx))
{
    trinity_assert(opts.shards > 0, "ShardedPbsServer needs >= 1 shard");
    size_t total = opts.keystoreBudgetBytes != 0
                       ? opts.keystoreBudgetBytes
                       : KeyStore::budgetFromEnv(0);
    size_t perShard = total == 0 ? 0 : std::max<size_t>(
                                           1, total / opts.shards);
    stores_.reserve(opts.shards);
    servers_.reserve(opts.shards);
    for (size_t i = 0; i < opts.shards; ++i) {
        std::string suffix = ".shard" + std::to_string(i);
        stores_.push_back(std::make_unique<KeyStore>(
            *ctx_, provider, perShard, "keystore" + suffix));
        ServerOptions so = opts.server;
        so.label += suffix;
        servers_.push_back(
            std::make_unique<PbsServer>(ctx_, *stores_[i], so));
    }
}

size_t
ShardedPbsServer::shardOf(TenantId t) const
{
    // splitmix64 finalizer: a fixed, well-mixing hash so the mapping
    // is consistent for a tenant's whole lifetime (key affinity) and
    // uniform across shards even for sequential tenant ids.
    u64 x = t + 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x % servers_.size());
}

std::future<LweCiphertext>
ShardedPbsServer::submit(TenantId t, LweCiphertext ct)
{
    return servers_[shardOf(t)]->submit(t, std::move(ct));
}

std::future<LweCiphertext>
ShardedPbsServer::submit(TenantId t, LweCiphertext ct, const Poly &tv)
{
    return servers_[shardOf(t)]->submit(t, std::move(ct), tv);
}

ShardedStats
ShardedPbsServer::stats() const
{
    ShardedStats out;
    for (size_t i = 0; i < servers_.size(); ++i) {
        ServerStats s = servers_[i]->stats();
        out.serving.requests += s.requests;
        out.serving.batches += s.batches;
        out.serving.rejected += s.rejected;
        out.serving.shed += s.shed;
        out.serving.largestBatch =
            std::max(out.serving.largestBatch, s.largestBatch);
        KeyStore::Stats k = stores_[i]->stats();
        out.keystore.hits += k.hits;
        out.keystore.misses += k.misses;
        out.keystore.evictions += k.evictions;
        out.keystore.materializations += k.materializations;
        out.keystore.residentBytes += k.residentBytes;
    }
    return out;
}

} // namespace runtime
} // namespace trinity
