/**
 * @file
 * Multi-client PBS serving front end.
 *
 * Clients submit() independent bootstrap requests and receive a
 * std::future<LweCiphertext>; a worker thread drains the request
 * queue into PbsBatches under a batch-size/deadline policy and
 * executes them as fused job streams through the batched-PBS
 * pipeline. This models the traffic shape Trinity is built for: many
 * mutually independent gate bootstraps from many clients, coalesced
 * so the accelerator (or CPU engine) sees wide batches instead of a
 * trickle of single bootstraps.
 *
 * Two operating modes:
 *  - Single-tenant: constructed over one TfheGateBootstrapper, every
 *    request uses its keys (the PR-3 behavior).
 *  - Multi-tenant: constructed over a KeyStore; every request carries
 *    a TenantId, the worker groups each drained window by tenant
 *    (requests in one fused batch must share bootstrap keys — the
 *    lockstep blind rotation reads one GGSW per step for the whole
 *    batch), acquires the tenant's materialized keys from the store
 *    (pinning them for the batch's lifetime), and executes per-tenant
 *    fused batches.
 *
 * Policy knobs (env defaults, overridable per ServerOptions):
 *   TRINITY_RUNTIME_BATCH        max requests aggregated into one
 *                                batch (default: the active engine's
 *                                preferredBatch() hint, floor 8)
 *   TRINITY_RUNTIME_MAX_WAIT_US  how long the worker holds an
 *                                underfull batch open, microseconds
 *                                (default 200)
 *   TRINITY_RUNTIME_MAX_QUEUE    admission control: submissions that
 *                                would grow the queue past this are
 *                                rejected immediately with
 *                                AdmissionRejected (0 = unbounded)
 *   TRINITY_RUNTIME_DEADLINE_US  deadline budget: requests whose
 *                                queue wait exceeds this at batch
 *                                assembly are shed with
 *                                DeadlineExceeded instead of executed
 *                                late (0 = none)
 *
 * Rejected/shed requests resolve their future with the corresponding
 * exception — the client always gets an answer, never a hang, and an
 * overloaded server degrades by shedding load instead of queueing
 * unboundedly.
 *
 * TRINITY_RUNTIME_BATCH bounds *aggregation* (queueing latency and
 * result batching); lockstep *execution* width is the engine's
 * business — batches wider than preferredBatch() split into
 * consecutive lockstep chunks, so raising the knob above the hint
 * amortizes queueing overhead without widening the working set per
 * chunk. Call BatchedBootstrapper::runChunked() / runPbsBatchChunked()
 * directly to control lockstep width explicitly (benches do).
 */

#ifndef TRINITY_RUNTIME_PBS_SERVER_H
#define TRINITY_RUNTIME_PBS_SERVER_H

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "runtime/batched_pbs.h"
#include "runtime/key_store.h"

namespace trinity {
namespace runtime {

/** Base of every policy-driven request failure. */
class RequestRejected : public std::runtime_error
{
    using std::runtime_error::runtime_error;
};

/** Admission control: the queue was full at submit time. */
class AdmissionRejected : public RequestRejected
{
    using RequestRejected::RequestRejected;
};

/** The request waited past the deadline budget and was shed. */
class DeadlineExceeded : public RequestRejected
{
    using RequestRejected::RequestRejected;
};

/** Aggregation and overload policy for the serving loop. */
struct ServerOptions
{
    /** Max requests fused into one batch; 0 resolves to the active
     *  engine's preferredBatch() hint. */
    size_t maxBatch = 0;
    /** Deadline after which an underfull batch is flushed anyway,
     *  counted from when the worker starts assembling it. */
    u64 maxWaitUs = 200;
    /** Admission bound on queued requests; 0 = unbounded. */
    size_t maxQueue = 0;
    /** Per-request deadline budget (queue wait, microseconds); 0 =
     *  never shed. */
    u64 deadlineUs = 0;
    /** Metrics prefix ("pbs_server"; shards use "pbs_server.shard<i>"
     *  so tail latency reports per shard). */
    std::string label = "pbs_server";

    /** Defaults with the TRINITY_RUNTIME_* env knobs applied
     *  (strictly validated; fatal on garbage). */
    static ServerOptions fromEnv();

    /** maxBatch with the 0 default resolved against the engine hint. */
    size_t resolvedMaxBatch() const;
};

/** Serving counters, readable while the server runs. */
struct ServerStats
{
    u64 requests = 0;     ///< requests executed
    u64 batches = 0;      ///< fused batches executed
    u64 largestBatch = 0; ///< widest batch observed
    u64 rejected = 0;     ///< admission-rejected at submit
    u64 shed = 0;         ///< deadline-shed at batch assembly

    double
    avgBatch() const
    {
        return batches == 0
                   ? 0.0
                   : static_cast<double>(requests) /
                         static_cast<double>(batches);
    }
};

/**
 * The serving runtime: a request queue plus one worker thread that
 * aggregates submissions into PbsBatches. Thread-safe for any number
 * of concurrent submitters; the destructor completes every queued
 * request before joining.
 */
class PbsServer
{
  public:
    /** Single-tenant mode: borrows @p gb (keys + context); it must
     *  outlive the server. */
    explicit PbsServer(const TfheGateBootstrapper &gb,
                       ServerOptions opts = ServerOptions::fromEnv());

    /** Multi-tenant mode: requests carry TenantIds and execute with
     *  keys acquired from @p store (which must outlive the server). */
    PbsServer(std::shared_ptr<TfheContext> ctx, KeyStore &store,
              ServerOptions opts = ServerOptions::fromEnv());

    ~PbsServer();

    PbsServer(const PbsServer &) = delete;
    PbsServer &operator=(const PbsServer &) = delete;

    /** Enqueue a sign bootstrap (gate-style refresh) of @p ct.
     *  Single-tenant mode only. */
    std::future<LweCiphertext> submit(LweCiphertext ct);

    /** Enqueue a programmable bootstrap with caller-owned LUT @p tv;
     *  the test vector must stay alive until the future resolves.
     *  Single-tenant mode only. */
    std::future<LweCiphertext> submit(LweCiphertext ct, const Poly &tv);

    /** Enqueue tenant @p t's sign bootstrap (the tenant's stored sign
     *  test vector). Multi-tenant mode only. */
    std::future<LweCiphertext> submit(TenantId t, LweCiphertext ct);

    /** Enqueue tenant @p t's programmable bootstrap with caller-owned
     *  LUT @p tv. Multi-tenant mode only. */
    std::future<LweCiphertext> submit(TenantId t, LweCiphertext ct,
                                      const Poly &tv);

    ServerStats stats() const;
    const ServerOptions &options() const { return opts_; }
    size_t maxBatch() const { return max_batch_; }
    bool multiTenant() const { return store_ != nullptr; }
    /** The key store (multi-tenant mode only; nullptr otherwise). */
    KeyStore *keyStore() const { return store_; }

  private:
    struct Pending
    {
        TenantId tenant = 0;
        LweCiphertext ct;
        const Poly *tv = nullptr;
        std::promise<LweCiphertext> result;
        /** Submission timestamp (obs::detail::nowNs) feeding the
         *  queue-wait/latency histograms and the deadline policy. */
        u64 enqueuedNs = 0;
    };

    std::future<LweCiphertext> enqueue(Pending p);
    void workerLoop();
    /** Execute one same-key group of @p work; resolves every future. */
    void executeGroup(std::vector<Pending> &work, size_t begin,
                      size_t end);

    const TfheGateBootstrapper *gb_ = nullptr; ///< single-tenant keys
    KeyStore *store_ = nullptr;                ///< multi-tenant keys
    std::shared_ptr<TfheContext> ctx_;         ///< multi-tenant mode
    std::unique_ptr<TfheBootstrapper> boot_;   ///< multi-tenant mode
    ServerOptions opts_;
    size_t max_batch_;

    mutable std::mutex mtx_;
    std::condition_variable arrived_;
    std::deque<Pending> queue_;
    bool stop_ = false;
    ServerStats stats_;

    struct Metrics;
    Metrics &metrics_;

    std::thread worker_;
};

} // namespace runtime
} // namespace trinity

#endif // TRINITY_RUNTIME_PBS_SERVER_H
