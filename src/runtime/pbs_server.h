/**
 * @file
 * Multi-client PBS serving front end.
 *
 * Clients submit() independent bootstrap requests and receive a
 * std::future<LweCiphertext>; a worker thread drains the request
 * queue into PbsBatches under a batch-size/deadline policy and
 * executes them as fused job streams through BatchedBootstrapper.
 * This models the traffic shape Trinity is built for: many mutually
 * independent gate bootstraps from many clients, coalesced so the
 * accelerator (or CPU engine) sees wide batches instead of a trickle
 * of single bootstraps.
 *
 * Policy knobs (env defaults, overridable per ServerOptions):
 *   TRINITY_RUNTIME_BATCH        max requests aggregated into one
 *                                batch (default: the active engine's
 *                                preferredBatch() hint, floor 8)
 *   TRINITY_RUNTIME_MAX_WAIT_US  how long the worker holds an
 *                                underfull batch open, microseconds
 *                                (default 200)
 *
 * TRINITY_RUNTIME_BATCH bounds *aggregation* (queueing latency and
 * result batching); lockstep *execution* width is the engine's
 * business — BatchedBootstrapper::run() splits an aggregation wider
 * than preferredBatch() into consecutive lockstep chunks, so raising
 * the knob above the hint amortizes queueing overhead without
 * widening the working set per chunk. Call
 * BatchedBootstrapper::runChunked() directly to control lockstep
 * width explicitly (benches do).
 */

#ifndef TRINITY_RUNTIME_PBS_SERVER_H
#define TRINITY_RUNTIME_PBS_SERVER_H

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "runtime/batched_pbs.h"

namespace trinity {
namespace runtime {

/** Aggregation policy for the serving loop. */
struct ServerOptions
{
    /** Max requests fused into one batch; 0 resolves to the active
     *  engine's preferredBatch() hint. */
    size_t maxBatch = 0;
    /** Deadline after which an underfull batch is flushed anyway,
     *  counted from when the worker starts assembling it. */
    u64 maxWaitUs = 200;

    /** Defaults with TRINITY_RUNTIME_BATCH / TRINITY_RUNTIME_MAX_WAIT_US
     *  applied (strictly validated; fatal on garbage). */
    static ServerOptions fromEnv();

    /** maxBatch with the 0 default resolved against the engine hint. */
    size_t resolvedMaxBatch() const;
};

/** Serving counters, readable while the server runs. */
struct ServerStats
{
    u64 requests = 0;     ///< requests executed
    u64 batches = 0;      ///< fused batches executed
    u64 largestBatch = 0; ///< widest batch observed

    double
    avgBatch() const
    {
        return batches == 0
                   ? 0.0
                   : static_cast<double>(requests) /
                         static_cast<double>(batches);
    }
};

/**
 * The serving runtime: a request queue plus one worker thread that
 * aggregates submissions into PbsBatches. Thread-safe for any number
 * of concurrent submitters; the destructor completes every queued
 * request before joining.
 */
class PbsServer
{
  public:
    /** Borrows @p gb (keys + context); it must outlive the server. */
    explicit PbsServer(const TfheGateBootstrapper &gb,
                       ServerOptions opts = ServerOptions::fromEnv());
    ~PbsServer();

    PbsServer(const PbsServer &) = delete;
    PbsServer &operator=(const PbsServer &) = delete;

    /** Enqueue a sign bootstrap (gate-style refresh) of @p ct. */
    std::future<LweCiphertext> submit(LweCiphertext ct);

    /** Enqueue a programmable bootstrap with caller-owned LUT @p tv;
     *  the test vector must stay alive until the future resolves. */
    std::future<LweCiphertext> submit(LweCiphertext ct, const Poly &tv);

    ServerStats stats() const;
    const ServerOptions &options() const { return opts_; }
    size_t maxBatch() const { return max_batch_; }

  private:
    struct Pending
    {
        LweCiphertext ct;
        const Poly *tv = nullptr;
        std::promise<LweCiphertext> result;
        /** Submission timestamp (obs::detail::nowNs) feeding the
         *  queue-wait and end-to-end latency histograms. */
        u64 enqueuedNs = 0;
    };

    void workerLoop();

    BatchedBootstrapper boot_;
    ServerOptions opts_;
    size_t max_batch_;

    mutable std::mutex mtx_;
    std::condition_variable arrived_;
    std::deque<Pending> queue_;
    bool stop_ = false;
    ServerStats stats_;
    std::thread worker_;
};

} // namespace runtime
} // namespace trinity

#endif // TRINITY_RUNTIME_PBS_SERVER_H
