#include "runtime/key_store.h"

#include <algorithm>
#include <exception>
#include <map>

#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {
namespace runtime {

// ---------------------------------------------------------------- metrics

struct KeyStore::Metrics
{
    obs::Counter &hits;
    obs::Counter &misses;
    obs::Counter &evictions;
    obs::Counter &materializations;
    obs::Gauge &resident_bytes;
    obs::Histogram &materialize_ns;

    static Metrics &
    forLabel(const std::string &label)
    {
        static std::mutex mtx;
        static std::map<std::string, std::unique_ptr<Metrics>> all;
        std::lock_guard<std::mutex> lk(mtx);
        auto it = all.find(label);
        if (it == all.end()) {
            obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
            it = all.emplace(label,
                             std::unique_ptr<Metrics>(new Metrics{
                                 reg.counter(label + ".hits"),
                                 reg.counter(label + ".misses"),
                                 reg.counter(label + ".evictions"),
                                 reg.counter(label + ".materializations"),
                                 reg.gauge(label + ".resident_bytes"),
                                 reg.histogram(label + ".materialize_ns"),
                             }))
                     .first;
        }
        return *it->second;
    }
};

// ------------------------------------------------------- tenant material

TenantKeyMaterial
TenantKeyMaterial::generate(TfheContext &ctx, TfheBootstrapper &boot)
{
    TenantKeyMaterial m;
    m.lweKey = ctx.makeLweKey();
    GlweSecretKey glwe = ctx.makeGlweKey();
    // Stored form: coefficient domain. The NTT sweep is deferred to
    // the keystore's first-use materialization.
    m.bskStored = boot.makeBootstrapKey(m.lweKey, glwe, false);
    m.ksk = boot.makeKeySwitchKey(glwe, m.lweKey);
    m.signTv = boot.signTestVector(ctx.params().q / 8);
    return m;
}

// ----------------------------------------------------------- byte sizing

namespace {

size_t
bskBytesOf(const TfheBootstrapKey &bsk)
{
    size_t bytes = 0;
    for (const GgswCiphertext &g : bsk.bsk) {
        for (const GlweCiphertext &row : g.rows) {
            for (const Poly &aj : row.a) {
                bytes += aj.coeffs().size() * sizeof(u64);
            }
            bytes += row.b.coeffs().size() * sizeof(u64);
        }
    }
    return bytes;
}

size_t
kskBytesOf(const TfheKeySwitchKey &ksk)
{
    size_t bytes = 0;
    for (const auto &levels : ksk.rows) {
        for (const LweCiphertext &ct : levels) {
            bytes += (ct.a.size() + 1) * sizeof(u64);
        }
    }
    return bytes;
}

} // namespace

size_t
KeyStore::residentBytesFor(const TfheParams &p)
{
    size_t bsk = p.nLwe * p.extRows() * (p.k + 1) * p.bigN * sizeof(u64);
    size_t ksk =
        p.k * p.bigN * p.lk * (p.nLwe + 1) * sizeof(u64);
    size_t tv = p.bigN * sizeof(u64);
    return bsk + ksk + tv;
}

size_t
KeyStore::budgetFromEnv(size_t fallback)
{
    u64 v = 0;
    if (envU64("TRINITY_KEYSTORE_BYTES", v)) {
        return static_cast<size_t>(v);
    }
    return fallback;
}

// -------------------------------------------------------------- KeyStore

KeyStore::KeyStore(const TfheContext &ctx, Provider provider,
                   size_t budget, std::string label)
    : ctx_(ctx), provider_(std::move(provider)), budget_(budget),
      label_(std::move(label)), metrics_(Metrics::forLabel(label_))
{
    trinity_assert(provider_ != nullptr,
                   "KeyStore needs a tenant-material provider");
}

std::shared_ptr<const ResidentKeys>
KeyStore::acquire(TenantId tenant)
{
    std::promise<std::shared_ptr<const ResidentKeys>> prom;
    std::shared_future<std::shared_ptr<const ResidentKeys>> fut;
    bool thisThreadMaterializes = false;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        auto it = entries_.find(tenant);
        if (it != entries_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second.lruIt);
            ++stats_.hits;
            metrics_.hits.add();
            fut = it->second.keys;
        } else {
            ++stats_.misses;
            metrics_.misses.add();
            thisThreadMaterializes = true;
            Entry e;
            fut = e.keys = prom.get_future().share();
            lru_.push_front(tenant);
            e.lruIt = lru_.begin();
            entries_.emplace(tenant, std::move(e));
        }
    }
    // A hit (or a concurrent miss whose materialization is already in
    // flight) resolves through the shared future; only the thread
    // that inserted the entry materializes — exactly once per
    // residency.
    if (!thisThreadMaterializes) {
        return fut.get();
    }
    std::shared_ptr<const ResidentKeys> keys;
    try {
        keys = materialize(tenant);
    } catch (...) {
        {
            std::lock_guard<std::mutex> lk(mtx_);
            auto it = entries_.find(tenant);
            if (it != entries_.end() && it->second.bytes == 0) {
                dropEntryLocked(it);
            }
        }
        prom.set_exception(std::current_exception());
        throw;
    }
    {
        std::lock_guard<std::mutex> lk(mtx_);
        auto it = entries_.find(tenant);
        // In-flight entries cannot be evicted, so the entry is still
        // here; account its weight and rebalance.
        trinity_assert(it != entries_.end(),
                       "in-flight keystore entry vanished");
        it->second.bytes = keys->bytes;
        residentBytes_ += keys->bytes;
        stats_.residentBytes = residentBytes_;
        ++stats_.materializations;
        evictToBudget(tenant);
        metrics_.resident_bytes.set(static_cast<i64>(residentBytes_));
    }
    metrics_.materializations.add();
    prom.set_value(keys);
    return keys;
}

std::shared_ptr<const ResidentKeys>
KeyStore::materialize(TenantId tenant)
{
    u64 t0 = obs::detail::nowNs();
    const TenantKeyMaterial &m = provider_(tenant);
    auto keys = std::make_shared<ResidentKeys>();
    // Deep-copy the stored (coefficient-domain) bootstrap key and run
    // the forward-NTT sweep — the lazy materialization this store
    // exists to amortize. If a provider hands out keys already in the
    // NTT domain, ggswToEval is a no-op and only the copy is paid.
    keys->bsk.bsk = m.bskStored.bsk;
    for (GgswCiphertext &g : keys->bsk.bsk) {
        ctx_.ggswToEval(g);
    }
    keys->ksk = m.ksk;
    keys->signTv = m.signTv;
    keys->bytes = bskBytesOf(keys->bsk) + kskBytesOf(keys->ksk) +
                  keys->signTv.coeffs().size() * sizeof(u64);
    metrics_.materialize_ns.observe(obs::detail::nowNs() - t0);
    return keys;
}

void
KeyStore::evictToBudget(TenantId keep)
{
    if (budget_ == 0) {
        return;
    }
    while (residentBytes_ > budget_) {
        bool evicted = false;
        for (auto rit = lru_.rbegin(); rit != lru_.rend(); ++rit) {
            if (*rit == keep) {
                continue;
            }
            auto it = entries_.find(*rit);
            if (it->second.bytes == 0) {
                continue; // materialization in flight — not evictable
            }
            dropEntryLocked(it);
            evicted = true;
            break;
        }
        if (!evicted) {
            // Only @p keep and in-flight entries remain: a single
            // tenant may legitimately exceed the whole budget.
            break;
        }
    }
}

void
KeyStore::dropEntryLocked(std::map<TenantId, Entry>::iterator it)
{
    residentBytes_ -= it->second.bytes;
    stats_.residentBytes = residentBytes_;
    if (it->second.bytes != 0) {
        ++stats_.evictions;
        metrics_.evictions.add();
    }
    metrics_.resident_bytes.set(static_cast<i64>(residentBytes_));
    lru_.erase(it->second.lruIt);
    entries_.erase(it);
}

bool
KeyStore::resident(TenantId tenant) const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return entries_.find(tenant) != entries_.end();
}

bool
KeyStore::evict(TenantId tenant)
{
    std::lock_guard<std::mutex> lk(mtx_);
    auto it = entries_.find(tenant);
    if (it == entries_.end() || it->second.bytes == 0) {
        return false;
    }
    dropEntryLocked(it);
    return true;
}

void
KeyStore::clear()
{
    std::lock_guard<std::mutex> lk(mtx_);
    for (auto it = entries_.begin(); it != entries_.end();) {
        if (it->second.bytes == 0) {
            ++it;
            continue;
        }
        auto next = std::next(it);
        dropEntryLocked(it);
        it = next;
    }
}

size_t
KeyStore::residentBytes() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return residentBytes_;
}

KeyStore::Stats
KeyStore::stats() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return stats_;
}

} // namespace runtime
} // namespace trinity
