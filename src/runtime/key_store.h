/**
 * @file
 * Multi-tenant key management for the serving runtime.
 *
 * "Millions of users" means per-tenant bootstrap/keyswitch keys (tens
 * of MB each at Set-I: the bsk alone is n_lwe * (k+1)^2 * lb * N * 8
 * bytes ≈ 32 MB) dominate serving memory long before compute
 * saturates. The KeyStore is the cache that makes that workable:
 *
 *  - Tenants register durable key material in coefficient ("at rest")
 *    form via a Provider callback — the form keys arrive over the
 *    wire and the form a real deployment would persist.
 *  - acquire(tenant) returns the tenant's *working-set* form: the
 *    bootstrap key materialized into the NTT domain (one forward-NTT
 *    sweep over every GGSW row — real, counted work) plus the
 *    keyswitch key and sign test vector copied into serving memory.
 *    Materialization happens exactly once per residency, even under
 *    concurrent acquires (later callers wait on the first caller's
 *    in-flight materialization).
 *  - Resident entries are weight-accounted by their actual byte size
 *    and evicted in LRU order once the total exceeds the budget
 *    (TRINITY_KEYSTORE_BYTES, or the constructor argument). Eviction
 *    drops the store's reference only: acquire() hands out
 *    shared_ptrs, so a batch that is mid-flight on an evicted
 *    tenant's keys keeps them alive (pinned) until it completes —
 *    eviction can never invalidate running work. A tenant wider than
 *    the whole budget is still served (admitted over budget, with
 *    everything else evicted); the alternative is an unservable
 *    tenant, not a smaller key.
 *
 * Counters live both on the store (exact, for tests/benches via
 * stats()) and in the obs::MetricsRegistry under the store's label:
 * <label>.hits / .misses / .evictions / .materializations counters,
 * <label>.resident_bytes gauge, <label>.materialize_ns histogram.
 */

#ifndef TRINITY_RUNTIME_KEY_STORE_H
#define TRINITY_RUNTIME_KEY_STORE_H

#include <atomic>
#include <functional>
#include <future>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "tfhe/pbs.h"

namespace trinity {
namespace runtime {

/** Tenant/session identity attached to serving requests. */
using TenantId = u64;

/**
 * A tenant's durable key material, as registered with the serving
 * system: the bootstrap key in coefficient (at rest) form, the
 * keyswitch key, and the tenant's sign test vector. The LWE secret
 * key is carried only so load generators and tests can encrypt and
 * verify on the tenant's behalf — a real server never sees it.
 */
struct TenantKeyMaterial
{
    LweSecretKey lweKey;        ///< client-side only (encrypt/verify)
    TfheBootstrapKey bskStored; ///< coefficient domain, NOT usable in PBS
    TfheKeySwitchKey ksk;
    Poly signTv;                ///< the tenant's default (sign) LUT

    /** Generate a fresh tenant key set under @p ctx / @p boot. Not
     *  thread-safe (the context RNG is shared); generate tenants
     *  serially. */
    static TenantKeyMaterial generate(TfheContext &ctx,
                                      TfheBootstrapper &boot);
};

/** A tenant's materialized working set: what PBS actually consumes. */
struct ResidentKeys
{
    TfheBootstrapKey bsk; ///< NTT (eval) domain
    TfheKeySwitchKey ksk;
    Poly signTv;
    size_t bytes = 0; ///< weight charged against the store budget
};

/**
 * Weight-accounted LRU cache of materialized tenant keys. Thread-safe;
 * materialization of distinct tenants proceeds concurrently outside
 * the store lock.
 */
class KeyStore
{
  public:
    /** Durable-material lookup; the returned reference must stay
     *  valid until the store is destroyed. Called outside the store
     *  lock, possibly from several threads for distinct tenants. */
    using Provider = std::function<const TenantKeyMaterial &(TenantId)>;

    /**
     * @p ctx     owner of params/NTT tables; must outlive the store.
     * @p budget  resident-bytes ceiling; 0 means unbounded.
     * @p label   metrics prefix (default "keystore"; shards pass
     *            "keystore.shard<i>").
     */
    KeyStore(const TfheContext &ctx, Provider provider, size_t budget,
             std::string label = "keystore");

    KeyStore(const KeyStore &) = delete;
    KeyStore &operator=(const KeyStore &) = delete;

    /**
     * The tenant's materialized keys, faulting them in (and evicting
     * LRU entries past the budget) on a miss. The returned pointer
     * pins the keys for as long as the caller holds it — eviction
     * only drops the store's own reference.
     */
    std::shared_ptr<const ResidentKeys> acquire(TenantId tenant);

    /** Whether the tenant is currently resident (ready or in flight). */
    bool resident(TenantId tenant) const;

    /** Drop a resident tenant (false if absent or still
     *  materializing). Holders of acquire()d pointers are unaffected. */
    bool evict(TenantId tenant);

    /** Drop every fully materialized entry. */
    void clear();

    size_t budgetBytes() const { return budget_; }
    size_t residentBytes() const;
    const std::string &label() const { return label_; }

    /** Exact counters since construction. */
    struct Stats
    {
        u64 hits = 0;
        u64 misses = 0;
        u64 evictions = 0;
        u64 materializations = 0; ///< lazy NTT faults actually paid
        size_t residentBytes = 0;

        double
        hitRate() const
        {
            u64 total = hits + misses;
            return total == 0 ? 0.0
                              : static_cast<double>(hits) /
                                    static_cast<double>(total);
        }
    };
    Stats stats() const;

    /** TRINITY_KEYSTORE_BYTES when set, else @p fallback. */
    static size_t budgetFromEnv(size_t fallback);

    /** Working-set bytes one tenant costs when resident (NTT bsk +
     *  ksk + test vector) — for sizing budgets in benches/tests. */
    static size_t residentBytesFor(const TfheParams &p);

  private:
    struct Entry
    {
        std::shared_future<std::shared_ptr<const ResidentKeys>> keys;
        size_t bytes = 0; ///< 0 while materialization is in flight
        std::list<TenantId>::iterator lruIt;
    };

    std::shared_ptr<const ResidentKeys> materialize(TenantId tenant);
    /** Evict LRU-tail entries until the budget holds; never evicts
     *  @p keep or in-flight entries. Caller holds mtx_. */
    void evictToBudget(TenantId keep);
    void dropEntryLocked(std::map<TenantId, Entry>::iterator it);

    const TfheContext &ctx_;
    Provider provider_;
    size_t budget_; ///< 0 = unbounded
    std::string label_;

    mutable std::mutex mtx_;
    std::map<TenantId, Entry> entries_;
    std::list<TenantId> lru_; ///< front = most recently used
    size_t residentBytes_ = 0;
    Stats stats_;

    struct Metrics;
    Metrics &metrics_;
};

} // namespace runtime
} // namespace trinity

#endif // TRINITY_RUNTIME_KEY_STORE_H
