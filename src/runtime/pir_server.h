/**
 * @file
 * Multi-tenant PIR serving front end.
 *
 * Clients submit() encrypted queries and receive a
 * std::future<pir::PirResponse>; a worker thread drains the request
 * queue in windows under the same batch-size/deadline policy as
 * PbsServer (ServerOptions is shared), groups each window by tenant,
 * acquires the tenant's resident database from the PirDbStore (the
 * returned shared_ptr pins it for the group's lifetime, so a
 * concurrent eviction can never pull the serving form out from under
 * an in-flight fold), and answers each query through the PirEngine
 * pipeline. Per-tenant query keys come from a caller-supplied
 * provider — the server never sees a secret key.
 *
 * Policy knobs are the TRINITY_RUNTIME_* family (see pbs_server.h);
 * metrics land under the options' label ("pir_server" by default):
 * queue_depth, batch_size, queue_wait_ns, request_latency_ns,
 * requests, batches, rejected, shed. Rejected/shed requests resolve
 * their future with AdmissionRejected/DeadlineExceeded — the client
 * always gets an answer, never a hang.
 */

#ifndef TRINITY_RUNTIME_PIR_SERVER_H
#define TRINITY_RUNTIME_PIR_SERVER_H

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>

#include "pir/pir.h"
#include "runtime/pbs_server.h"

namespace trinity {
namespace runtime {

/**
 * The PIR serving runtime: a request queue plus one worker thread
 * that executes tenant-grouped windows of queries. Thread-safe for
 * any number of concurrent submitters; the destructor completes every
 * queued request before joining.
 */
class PirServer
{
  public:
    /** Per-tenant uploaded key material (expansion + conversion
     *  keys). Called on the worker thread, outside the server lock;
     *  the returned reference must stay valid for the batch. */
    using KeysProvider =
        std::function<const pir::PirQueryKeys &(pir::PirTenantId)>;

    /** ServerOptions::fromEnv() with the PIR metrics label. */
    static ServerOptions defaultOptions();

    /** @p store and the provider's key material must outlive the
     *  server. */
    PirServer(std::shared_ptr<TfheContext> ctx,
              const pir::PirParams &params, pir::PirDbStore &store,
              KeysProvider keys,
              ServerOptions opts = defaultOptions());

    ~PirServer();

    PirServer(const PirServer &) = delete;
    PirServer &operator=(const PirServer &) = delete;

    /** Enqueue tenant @p t's query against its registered database. */
    std::future<pir::PirResponse> submit(pir::PirTenantId t,
                                         pir::PirQuery query);

    ServerStats stats() const;
    const ServerOptions &options() const { return opts_; }
    size_t maxBatch() const { return max_batch_; }
    const pir::PirParams &params() const { return engine_.params(); }
    pir::PirDbStore &dbStore() const { return store_; }

  private:
    struct Pending
    {
        pir::PirTenantId tenant = 0;
        pir::PirQuery query;
        std::promise<pir::PirResponse> result;
        /** Submission timestamp (obs::detail::nowNs) feeding the
         *  queue-wait/latency histograms and the deadline policy. */
        u64 enqueuedNs = 0;
    };

    void workerLoop();
    /** Execute one same-tenant group of @p work; resolves every
     *  future. */
    void executeGroup(std::vector<Pending> &work, size_t begin,
                      size_t end);

    pir::PirDbStore &store_;
    KeysProvider keys_;
    pir::PirEngine engine_;
    ServerOptions opts_;
    size_t max_batch_;

    mutable std::mutex mtx_;
    std::condition_variable arrived_;
    std::deque<Pending> queue_;
    bool stop_ = false;
    ServerStats stats_;

    struct Metrics;
    Metrics &metrics_;

    std::thread worker_;
};

} // namespace runtime
} // namespace trinity

#endif // TRINITY_RUNTIME_PIR_SERVER_H
