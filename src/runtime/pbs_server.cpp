#include "runtime/pbs_server.h"

#include <algorithm>
#include <chrono>
#include <map>

#include "backend/registry.h"
#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {
namespace runtime {

// Serving metrics (registry names, prefixed by the server's label so
// shards report separately): the queue-depth gauge tracks the
// waiting-request count at every queue transition, batch sizes and
// the two latencies (queue wait to batch start, submit to result set)
// go to histograms, so serving benches report p50/p99/p999 without a
// per-request sample store. rejected/shed count the admission and
// deadline policies firing.
struct PbsServer::Metrics
{
    obs::Gauge &queue_depth;
    obs::Histogram &batch_size;
    obs::Histogram &queue_wait_ns;
    obs::Histogram &request_latency_ns;
    obs::Counter &requests;
    obs::Counter &batches;
    obs::Counter &rejected;
    obs::Counter &shed;

    static Metrics &
    forLabel(const std::string &label)
    {
        static std::mutex mtx;
        static std::map<std::string, std::unique_ptr<Metrics>> all;
        std::lock_guard<std::mutex> lk(mtx);
        auto it = all.find(label);
        if (it == all.end()) {
            obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
            it = all.emplace(
                         label,
                         std::unique_ptr<Metrics>(new Metrics{
                             reg.gauge(label + ".queue_depth"),
                             reg.histogram(label + ".batch_size"),
                             reg.histogram(label + ".queue_wait_ns"),
                             reg.histogram(label + ".request_latency_ns"),
                             reg.counter(label + ".requests"),
                             reg.counter(label + ".batches"),
                             reg.counter(label + ".rejected"),
                             reg.counter(label + ".shed"),
                         }))
                     .first;
        }
        return *it->second;
    }
};

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions opts;
    u64 v = 0;
    if (envU64("TRINITY_RUNTIME_BATCH", v)) {
        if (v == 0) {
            trinity_fatal("invalid TRINITY_RUNTIME_BATCH value '0': "
                          "batches need at least one request");
        }
        opts.maxBatch = static_cast<size_t>(v);
    }
    if (envU64("TRINITY_RUNTIME_MAX_WAIT_US", v)) {
        opts.maxWaitUs = v;
    }
    if (envU64("TRINITY_RUNTIME_MAX_QUEUE", v)) {
        opts.maxQueue = static_cast<size_t>(v);
    }
    if (envU64("TRINITY_RUNTIME_DEADLINE_US", v)) {
        opts.deadlineUs = v;
    }
    return opts;
}

size_t
ServerOptions::resolvedMaxBatch() const
{
    if (maxBatch != 0) {
        return maxBatch;
    }
    return activeBackend().preferredBatch();
}

PbsServer::PbsServer(const TfheGateBootstrapper &gb, ServerOptions opts)
    : gb_(&gb), opts_(std::move(opts)),
      max_batch_(opts_.resolvedMaxBatch()),
      metrics_(Metrics::forLabel(opts_.label)),
      worker_([this] { workerLoop(); })
{
}

PbsServer::PbsServer(std::shared_ptr<TfheContext> ctx, KeyStore &store,
                     ServerOptions opts)
    : store_(&store), ctx_(std::move(ctx)),
      boot_(std::make_unique<TfheBootstrapper>(ctx_)),
      opts_(std::move(opts)), max_batch_(opts_.resolvedMaxBatch()),
      metrics_(Metrics::forLabel(opts_.label)),
      worker_([this] { workerLoop(); })
{
}

PbsServer::~PbsServer()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    arrived_.notify_all();
    worker_.join();
}

std::future<LweCiphertext>
PbsServer::submit(LweCiphertext ct)
{
    trinity_assert(gb_ != nullptr,
                   "tenant-less submit() on a multi-tenant PbsServer");
    return submit(std::move(ct), gb_->signVector());
}

std::future<LweCiphertext>
PbsServer::submit(LweCiphertext ct, const Poly &tv)
{
    trinity_assert(gb_ != nullptr,
                   "tenant-less submit() on a multi-tenant PbsServer");
    Pending p;
    p.ct = std::move(ct);
    p.tv = &tv;
    return enqueue(std::move(p));
}

std::future<LweCiphertext>
PbsServer::submit(TenantId t, LweCiphertext ct)
{
    trinity_assert(store_ != nullptr,
                   "tenant submit() on a single-tenant PbsServer");
    Pending p;
    p.tenant = t;
    p.ct = std::move(ct);
    p.tv = nullptr; // resolved to the tenant's sign LUT at batch time
    return enqueue(std::move(p));
}

std::future<LweCiphertext>
PbsServer::submit(TenantId t, LweCiphertext ct, const Poly &tv)
{
    trinity_assert(store_ != nullptr,
                   "tenant submit() on a single-tenant PbsServer");
    Pending p;
    p.tenant = t;
    p.ct = std::move(ct);
    p.tv = &tv;
    return enqueue(std::move(p));
}

std::future<LweCiphertext>
PbsServer::enqueue(Pending p)
{
    p.enqueuedNs = obs::detail::nowNs();
    std::future<LweCiphertext> result = p.result.get_future();
    bool rejected = false;
    {
        std::lock_guard<std::mutex> lk(mtx_);
        trinity_assert(!stop_, "submit() on a stopped PbsServer");
        if (opts_.maxQueue > 0 && queue_.size() >= opts_.maxQueue) {
            rejected = true;
            ++stats_.rejected;
        } else {
            queue_.push_back(std::move(p));
            metrics_.queue_depth.set(static_cast<i64>(queue_.size()));
        }
    }
    if (rejected) {
        metrics_.rejected.add();
        p.result.set_exception(std::make_exception_ptr(AdmissionRejected(
            "request rejected: serving queue at maxQueue=" +
            std::to_string(opts_.maxQueue))));
        return result;
    }
    arrived_.notify_all();
    return result;
}

ServerStats
PbsServer::stats() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return stats_;
}

void
PbsServer::executeGroup(std::vector<Pending> &work, size_t begin,
                        size_t end)
{
    size_t count = end - begin;
    Metrics &m = metrics_;
    m.requests.add(count);
    m.batches.add();
    m.batch_size.observe(count);
    u64 batch_start = obs::detail::nowNs();
    for (size_t i = begin; i < end; ++i) {
        m.queue_wait_ns.observe(batch_start - work[i].enqueuedNs);
    }

    // Resolve the group's key material. In multi-tenant mode this is
    // the keystore fault-in path: the returned shared_ptr pins the
    // keys for the duration of the batch, so a concurrent eviction
    // (another tenant faulting in past the budget) can never pull
    // them out from under the lockstep blind rotation.
    const TfheBootstrapper *boot = nullptr;
    const TfheBootstrapKey *bsk = nullptr;
    const TfheKeySwitchKey *ksk = nullptr;
    const Poly *defaultTv = nullptr;
    std::shared_ptr<const ResidentKeys> pinned;
    if (store_ != nullptr) {
        try {
            pinned = store_->acquire(work[begin].tenant);
        } catch (...) {
            std::exception_ptr err = std::current_exception();
            for (size_t i = begin; i < end; ++i) {
                work[i].result.set_exception(err);
            }
            return;
        }
        boot = boot_.get();
        bsk = &pinned->bsk;
        ksk = &pinned->ksk;
        defaultTv = &pinned->signTv;
    } else {
        boot = &gb_->bootstrapper();
        bsk = &gb_->bootstrapKey();
        ksk = &gb_->keySwitchKey();
        defaultTv = &gb_->signVector();
    }

    PbsBatch batch;
    for (size_t i = begin; i < end; ++i) {
        batch.add(work[i].ct,
                  work[i].tv != nullptr ? *work[i].tv : *defaultTv);
    }
    std::vector<LweCiphertext> out;
    {
        obs::TraceSpan span("pbsBatch", "runtime", opts_.label.c_str(),
                            "requests", count);
        out = runPbsBatchChunked(*boot, batch, *bsk, *ksk,
                                 activeBackend().preferredBatch());
    }
    // Account before resolving: a client that has seen its future
    // resolve must also see these requests in stats().
    {
        std::lock_guard<std::mutex> slk(mtx_);
        stats_.requests += count;
        stats_.batches += 1;
        if (count > stats_.largestBatch) {
            stats_.largestBatch = count;
        }
    }
    for (size_t i = begin; i < end; ++i) {
        m.request_latency_ns.observe(obs::detail::nowNs() -
                                     work[i].enqueuedNs);
        work[i].result.set_value(std::move(out[i - begin]));
    }
}

void
PbsServer::workerLoop()
{
    std::unique_lock<std::mutex> lk(mtx_);
    while (true) {
        arrived_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            return; // stopped and fully drained
        }
        // Hold the batch open until it fills or the deadline passes;
        // shutdown flushes immediately.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.maxWaitUs);
        arrived_.wait_until(lk, deadline, [&] {
            return stop_ || queue_.size() >= max_batch_;
        });
        size_t take = queue_.size() < max_batch_ ? queue_.size()
                                                 : max_batch_;
        std::vector<Pending> work;
        work.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            work.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        metrics_.queue_depth.set(static_cast<i64>(queue_.size()));
        lk.unlock();

        // Deadline policy: shed anything that already waited past the
        // budget — executing it would only make the batch it joins
        // later too. The client gets DeadlineExceeded immediately.
        if (opts_.deadlineUs > 0) {
            u64 now = obs::detail::nowNs();
            u64 budgetNs = opts_.deadlineUs * 1000;
            std::vector<Pending> kept;
            kept.reserve(work.size());
            for (Pending &p : work) {
                if (now - p.enqueuedNs > budgetNs) {
                    metrics_.shed.add();
                    {
                        std::lock_guard<std::mutex> slk(mtx_);
                        ++stats_.shed;
                    }
                    p.result.set_exception(
                        std::make_exception_ptr(DeadlineExceeded(
                            "request shed: queue wait exceeded "
                            "deadlineUs=" +
                            std::to_string(opts_.deadlineUs))));
                } else {
                    kept.push_back(std::move(p));
                }
            }
            work = std::move(kept);
        }

        // One fused batch per key set: in multi-tenant mode the
        // drained window is grouped by tenant (stable, so each
        // tenant's requests keep arrival order); single-tenant mode
        // is one group. Key affinity lives a level up — the sharded
        // server routes a tenant to one shard, so a shard's window
        // is dominated by few tenants and groups stay wide.
        if (!work.empty()) {
            if (store_ != nullptr) {
                std::stable_sort(work.begin(), work.end(),
                                 [](const Pending &a, const Pending &b) {
                                     return a.tenant < b.tenant;
                                 });
            }
            size_t begin = 0;
            for (size_t i = 1; i <= work.size(); ++i) {
                if (i == work.size() ||
                    (store_ != nullptr &&
                     work[i].tenant != work[begin].tenant)) {
                    executeGroup(work, begin, i);
                    begin = i;
                }
            }
        }

        lk.lock();
    }
}

} // namespace runtime
} // namespace trinity
