#include "runtime/pbs_server.h"

#include <chrono>

#include "backend/registry.h"
#include "common/env.h"
#include "common/logging.h"

namespace trinity {
namespace runtime {

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions opts;
    u64 v = 0;
    if (envU64("TRINITY_RUNTIME_BATCH", v)) {
        if (v == 0) {
            trinity_fatal("invalid TRINITY_RUNTIME_BATCH value '0': "
                          "batches need at least one request");
        }
        opts.maxBatch = static_cast<size_t>(v);
    }
    if (envU64("TRINITY_RUNTIME_MAX_WAIT_US", v)) {
        opts.maxWaitUs = v;
    }
    return opts;
}

size_t
ServerOptions::resolvedMaxBatch() const
{
    if (maxBatch != 0) {
        return maxBatch;
    }
    return activeBackend().preferredBatch();
}

PbsServer::PbsServer(const TfheGateBootstrapper &gb, ServerOptions opts)
    : boot_(gb), opts_(opts), max_batch_(opts.resolvedMaxBatch()),
      worker_([this] { workerLoop(); })
{
}

PbsServer::~PbsServer()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    arrived_.notify_all();
    worker_.join();
}

std::future<LweCiphertext>
PbsServer::submit(LweCiphertext ct)
{
    return submit(std::move(ct), boot_.signTestVector());
}

std::future<LweCiphertext>
PbsServer::submit(LweCiphertext ct, const Poly &tv)
{
    Pending p;
    p.ct = std::move(ct);
    p.tv = &tv;
    std::future<LweCiphertext> result = p.result.get_future();
    {
        std::lock_guard<std::mutex> lk(mtx_);
        trinity_assert(!stop_, "submit() on a stopped PbsServer");
        queue_.push_back(std::move(p));
    }
    arrived_.notify_all();
    return result;
}

ServerStats
PbsServer::stats() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return stats_;
}

void
PbsServer::workerLoop()
{
    std::unique_lock<std::mutex> lk(mtx_);
    while (true) {
        arrived_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            return; // stopped and fully drained
        }
        // Hold the batch open until it fills or the deadline passes;
        // shutdown flushes immediately.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.maxWaitUs);
        arrived_.wait_until(lk, deadline, [&] {
            return stop_ || queue_.size() >= max_batch_;
        });
        size_t take = queue_.size() < max_batch_ ? queue_.size()
                                                 : max_batch_;
        std::vector<Pending> work;
        work.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            work.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        stats_.requests += take;
        stats_.batches += 1;
        if (take > stats_.largestBatch) {
            stats_.largestBatch = take;
        }
        lk.unlock();
        PbsBatch batch;
        for (const Pending &p : work) {
            batch.add(p.ct, *p.tv);
        }
        std::vector<LweCiphertext> out = boot_.run(batch);
        for (size_t i = 0; i < work.size(); ++i) {
            work[i].result.set_value(std::move(out[i]));
        }
        lk.lock();
    }
}

} // namespace runtime
} // namespace trinity
