#include "runtime/pbs_server.h"

#include <chrono>

#include "backend/registry.h"
#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {
namespace runtime {

// Serving metrics (registry names): the queue-depth gauge tracks the
// waiting-request count at every queue transition, batch sizes and
// the two latencies (queue wait to batch start, submit to result set)
// go to histograms, so serving benches report p50/p99/p999 without a
// per-request sample store.
namespace {

struct ServerMetrics
{
    obs::Gauge &queue_depth;
    obs::Histogram &batch_size;
    obs::Histogram &queue_wait_ns;
    obs::Histogram &request_latency_ns;
    obs::Counter &requests;
    obs::Counter &batches;

    static ServerMetrics &
    get()
    {
        static ServerMetrics m = [] {
            obs::MetricsRegistry &reg = obs::MetricsRegistry::instance();
            return ServerMetrics{
                reg.gauge("pbs_server.queue_depth"),
                reg.histogram("pbs_server.batch_size"),
                reg.histogram("pbs_server.queue_wait_ns"),
                reg.histogram("pbs_server.request_latency_ns"),
                reg.counter("pbs_server.requests"),
                reg.counter("pbs_server.batches"),
            };
        }();
        return m;
    }
};

} // namespace

ServerOptions
ServerOptions::fromEnv()
{
    ServerOptions opts;
    u64 v = 0;
    if (envU64("TRINITY_RUNTIME_BATCH", v)) {
        if (v == 0) {
            trinity_fatal("invalid TRINITY_RUNTIME_BATCH value '0': "
                          "batches need at least one request");
        }
        opts.maxBatch = static_cast<size_t>(v);
    }
    if (envU64("TRINITY_RUNTIME_MAX_WAIT_US", v)) {
        opts.maxWaitUs = v;
    }
    return opts;
}

size_t
ServerOptions::resolvedMaxBatch() const
{
    if (maxBatch != 0) {
        return maxBatch;
    }
    return activeBackend().preferredBatch();
}

PbsServer::PbsServer(const TfheGateBootstrapper &gb, ServerOptions opts)
    : boot_(gb), opts_(opts), max_batch_(opts.resolvedMaxBatch()),
      worker_([this] { workerLoop(); })
{
}

PbsServer::~PbsServer()
{
    {
        std::lock_guard<std::mutex> lk(mtx_);
        stop_ = true;
    }
    arrived_.notify_all();
    worker_.join();
}

std::future<LweCiphertext>
PbsServer::submit(LweCiphertext ct)
{
    return submit(std::move(ct), boot_.signTestVector());
}

std::future<LweCiphertext>
PbsServer::submit(LweCiphertext ct, const Poly &tv)
{
    Pending p;
    p.ct = std::move(ct);
    p.tv = &tv;
    p.enqueuedNs = obs::detail::nowNs();
    std::future<LweCiphertext> result = p.result.get_future();
    {
        std::lock_guard<std::mutex> lk(mtx_);
        trinity_assert(!stop_, "submit() on a stopped PbsServer");
        queue_.push_back(std::move(p));
        ServerMetrics::get().queue_depth.set(
            static_cast<i64>(queue_.size()));
    }
    arrived_.notify_all();
    return result;
}

ServerStats
PbsServer::stats() const
{
    std::lock_guard<std::mutex> lk(mtx_);
    return stats_;
}

void
PbsServer::workerLoop()
{
    std::unique_lock<std::mutex> lk(mtx_);
    while (true) {
        arrived_.wait(lk, [&] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            return; // stopped and fully drained
        }
        // Hold the batch open until it fills or the deadline passes;
        // shutdown flushes immediately.
        auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(opts_.maxWaitUs);
        arrived_.wait_until(lk, deadline, [&] {
            return stop_ || queue_.size() >= max_batch_;
        });
        size_t take = queue_.size() < max_batch_ ? queue_.size()
                                                 : max_batch_;
        std::vector<Pending> work;
        work.reserve(take);
        for (size_t i = 0; i < take; ++i) {
            work.push_back(std::move(queue_.front()));
            queue_.pop_front();
        }
        stats_.requests += take;
        stats_.batches += 1;
        if (take > stats_.largestBatch) {
            stats_.largestBatch = take;
        }
        ServerMetrics &m = ServerMetrics::get();
        m.queue_depth.set(static_cast<i64>(queue_.size()));
        lk.unlock();
        m.requests.add(take);
        m.batches.add();
        m.batch_size.observe(take);
        u64 batch_start = obs::detail::nowNs();
        for (const Pending &p : work) {
            m.queue_wait_ns.observe(batch_start - p.enqueuedNs);
        }
        PbsBatch batch;
        for (const Pending &p : work) {
            batch.add(p.ct, *p.tv);
        }
        std::vector<LweCiphertext> out;
        {
            obs::TraceSpan span("pbsBatch", "runtime", "pbs_server",
                                "requests", take);
            out = boot_.run(batch);
        }
        for (size_t i = 0; i < work.size(); ++i) {
            m.request_latency_ns.observe(obs::detail::nowNs() -
                                         work[i].enqueuedNs);
            work[i].result.set_value(std::move(out[i]));
        }
        lk.lock();
    }
}

} // namespace runtime
} // namespace trinity
