/**
 * @file
 * Batched-PBS execution for the serving runtime.
 *
 * Trinity's headline TFHE throughput (Table VII) comes from batching
 * many independent programmable bootstraps so the blind-rotation
 * external products saturate the NTT/MAC pipelines. PbsBatch is one
 * aggregated set of such requests; BatchedBootstrapper executes it as
 * a single fused job stream via TfheBootstrapper::pbsBatch — the
 * n_lwe blind-rotation steps run in lockstep across the batch, each
 * step issuing wide backend batches against the shared bootstrap-key
 * GGSW. Results are bit-identical to bootstrapping every request
 * sequentially, on every engine.
 */

#ifndef TRINITY_RUNTIME_BATCHED_PBS_H
#define TRINITY_RUNTIME_BATCHED_PBS_H

#include "tfhe/gates.h"

namespace trinity {
namespace runtime {

/**
 * One aggregated set of independent PBS requests. The ciphertext and
 * test-vector pointers borrow from the caller and must stay valid
 * until run() returns.
 */
struct PbsBatch
{
    std::vector<const LweCiphertext *> inputs;
    std::vector<const Poly *> testVectors; ///< one LUT per request

    void
    add(const LweCiphertext &ct, const Poly &tv)
    {
        inputs.push_back(&ct);
        testVectors.push_back(&tv);
    }

    size_t size() const { return inputs.size(); }
};

/**
 * Execute one aggregated batch against explicit key material,
 * splitting aggregations wider than @p maxChunk into consecutive
 * lockstep chunks (0 = unsplit). This is the execution primitive the
 * multi-tenant server uses with per-tenant keys from the KeyStore;
 * BatchedBootstrapper wraps it with a gate bootstrapper's own keys.
 * Chunking only re-groups independent requests — results are
 * bit-identical at any chunk width, on every engine.
 */
std::vector<LweCiphertext>
runPbsBatchChunked(const TfheBootstrapper &boot, const PbsBatch &batch,
                   const TfheBootstrapKey &bsk,
                   const TfheKeySwitchKey &ksk, size_t maxChunk);

/**
 * Runs PbsBatches over a gate bootstrapper's key material. The
 * bootstrapper is borrowed and must outlive this object.
 */
class BatchedBootstrapper
{
  public:
    explicit BatchedBootstrapper(const TfheGateBootstrapper &gb)
        : gb_(gb)
    {
    }

    /**
     * Execute one aggregated batch; out[j] answers request j.
     * Oversized aggregations (a deadline flush can hand over more
     * requests than the engine wants in flight) are split into
     * lockstep chunks of at most the active engine's
     * preferredBatch() hint rather than executed as one arbitrarily
     * wide lockstep batch — chunking only re-groups independent
     * requests, so results stay bit-identical.
     */
    std::vector<LweCiphertext> run(const PbsBatch &batch) const;

    /** run() with an explicit chunk width (0 = unsplit). */
    std::vector<LweCiphertext> runChunked(const PbsBatch &batch,
                                          size_t maxChunk) const;

    /** Sign bootstrap (the gate workhorse) of many ciphertexts —
     *  bit-identical to bootstrapSign() per ciphertext. */
    std::vector<LweCiphertext>
    bootstrapSignBatch(const std::vector<LweCiphertext> &cts) const;

    const TfheGateBootstrapper &gate() const { return gb_; }
    const Poly &signTestVector() const { return gb_.signVector(); }

  private:
    const TfheGateBootstrapper &gb_;
};

} // namespace runtime
} // namespace trinity

#endif // TRINITY_RUNTIME_BATCHED_PBS_H
