/**
 * @file
 * Cycle ledger for live workload execution on the machine model.
 *
 * Where sim::schedule() scores a hand-built KernelGraph, the
 * TimingLedger accumulates charges kernel by kernel as a *functional*
 * run proceeds: every executed batch contributes its element count and
 * its Machine::charge() cycles, attributed to the kernel class, the
 * unit pool, and the high-level operation scope (HMult, Rescale, PBS,
 * conversion) active at emission — the live counterpart of the
 * Fig. 13/14 component-utilization breakdowns.
 *
 * Compute kernels and transfer kernels (HbmXfer/NocXfer) are summed
 * separately: the end-to-end latency estimate assumes the paper's
 * double-buffered overlap, max(compute, transfer).
 */

#ifndef TRINITY_SIM_TIMING_LEDGER_H
#define TRINITY_SIM_TIMING_LEDGER_H

#include <cstdio>
#include <map>
#include <mutex>
#include <string>

#include "sim/kernel.h"

namespace trinity {
namespace sim {

/** Accumulated work of one kernel class (possibly within one scope). */
struct LedgerCell
{
    u64 calls = 0;    ///< batches charged
    u64 elements = 0; ///< executed elements (bytes for transfers)
    double cycles = 0;
};

class TimingLedger
{
  public:
    /** Add one charged batch. Thread-safe. */
    void record(const std::string &scope, KernelType type, u64 elems,
                double cycles, const std::string &pool);

    /**
     * Advance the overlapped live-makespan estimate by @p cycles.
     * Eagerly charged batches advance it by their full compute
     * charge (no overlap information exists for them); a recorded
     * command stream advances it once, by the list-scheduled makespan
     * of its whole DAG — so overlappedCycles() <= computeCycles(),
     * with the gap measuring the cross-pool overlap streams exposed.
     */
    void recordSpan(double cycles);

    /** Totals per kernel class (all scopes). */
    std::map<KernelType, LedgerCell> byKernel() const;

    /** Per-scope breakdown: scope -> kernel class -> cell. */
    std::map<std::string, std::map<KernelType, LedgerCell>>
    byScope() const;

    /** Busy cycles per unit pool. */
    std::map<std::string, double> poolBusy() const;

    /** Elements / cycles / calls of one kernel class (all scopes). */
    u64 elements(KernelType type) const;
    double cycles(KernelType type) const;
    u64 calls(KernelType type) const;

    /** Total cycles of all non-transfer kernel classes. */
    double computeCycles() const;

    /** Total cycles of HbmXfer + NocXfer charges. */
    double transferCycles() const;

    /** Overlapped live-makespan estimate (see recordSpan). Equals
     *  computeCycles() when nothing ran through command streams. */
    double overlappedCycles() const;

    /** Latency model: compute and transfer streams fully overlap. */
    double
    latencyCycles() const
    {
        double c = computeCycles();
        double t = transferCycles();
        return c > t ? c : t;
    }

    /** latencyCycles() with stream overlap applied to compute. */
    double
    overlappedLatencyCycles() const
    {
        double c = overlappedCycles();
        double t = transferCycles();
        return c > t ? c : t;
    }

    /** Forget everything (start of a measured region). */
    void reset();

    /** Human-readable breakdown: per scope, per kernel class, pools. */
    void report(std::FILE *out) const;

  private:
    static bool isTransfer(KernelType t);

    mutable std::mutex mtx_;
    /** scope -> kernel -> cell; "" holds unscoped charges. */
    std::map<std::string, std::map<KernelType, LedgerCell>> cells_;
    std::map<std::string, double> poolBusy_;
    double spanCycles_ = 0; ///< overlapped live-makespan accumulator
};

} // namespace sim
} // namespace trinity

#endif // TRINITY_SIM_TIMING_LEDGER_H
