/**
 * @file
 * Machine model: pools of functional-unit capacity plus the routing of
 * kernel classes onto pools.
 *
 * A Pool aggregates the units of one kind across all clusters (e.g.
 * "8 NTTU pipelines, 256 elements/cycle each"). Kernel routing carries
 * a cost multiplier: e.g. on a fixed NTTU-only design, a 1024-point
 * NTT costs two passes through the 8-stage pipeline (multiplier 2.0),
 * while the NTTU+CU collaboration streams it in one pass
 * (multiplier 1.0) — this is exactly the paper's Trinity-TFHE w/o CU
 * vs w/ CU distinction.
 */

#ifndef TRINITY_SIM_MACHINE_H
#define TRINITY_SIM_MACHINE_H

#include <map>
#include <string>
#include <vector>

#include "sim/kernel.h"

namespace trinity {
namespace sim {

/** Aggregated capacity of one unit class across the machine. */
struct Pool
{
    std::string name;
    /** Aggregate throughput, elements (or bytes) per cycle. */
    double elemsPerCycle = 0;
    /** Streaming efficiency in (0, 1]: fill/drain, handoff bubbles. */
    double efficiency = 1.0;
    /** Pipeline latency charged once per kernel (cycles). */
    double latency = 0;
};

/** Routing entry: pool plus a workload multiplier. */
struct Route
{
    std::string pool;
    /** Cost multiplier applied to the kernel's element count. */
    double costFactor = 1.0;
};

/** A complete accelerator configuration. */
struct Machine
{
    std::string name;
    double freqGhz = 1.0;
    size_t clusters = 4;
    std::map<std::string, Pool> pools;
    std::map<KernelType, Route> routes;

    /** Route for a kernel type; fatal if the machine cannot run it. */
    const Route &route(KernelType t) const;
    const Pool &pool(const std::string &name) const;

    /** True if a route exists for the kernel class. */
    bool canRun(KernelType t) const { return routes.count(t) != 0; }

    /** Busy cycles this kernel occupies on its pool. */
    double busyCycles(const Kernel &k) const;

    /**
     * Incremental cycle accounting for live execution: the cycles one
     * batch of @p elems elements of kernel class @p t occupies on its
     * pool, including one pipeline fill (pool latency) per batch —
     * the same cost model schedule() charges per graph node, so it
     * stays consistent if busyCycles() ever uses @p poly_len. Fatal
     * if the machine has no route for @p t (check canRun first).
     */
    double charge(KernelType t, u64 elems, u64 poly_len = 0) const;

    /** Convert cycles to seconds at the machine frequency. */
    double
    seconds(double cycles) const
    {
        return cycles / (freqGhz * 1e9);
    }
};

/** Scheduling result. */
struct SimResult
{
    double makespanCycles = 0;
    /** Busy cycles per pool (work / capacity, without efficiency). */
    std::map<std::string, double> busy;

    /** Utilization of a pool over the makespan. */
    double
    utilization(const std::string &pool) const
    {
        auto it = busy.find(pool);
        if (it == busy.end() || makespanCycles <= 0) {
            return 0;
        }
        return it->second / makespanCycles;
    }
};

/**
 * One schedulable unit for the event-driven list scheduler: busy
 * cycles on a pool (kNoPool for pure ordering nodes), a pipeline
 * latency that delays dependents without occupying the pool, and
 * dependency edges to earlier nodes.
 */
struct SchedNode
{
    static constexpr size_t kNoPool = static_cast<size_t>(-1);
    size_t pool = kNoPool;
    double busy = 0;
    double latency = 0;
    std::vector<size_t> deps;
};

/**
 * Event-driven earliest-start list schedule over @p nodes (deps must
 * reference earlier indices): among all ready nodes, the one that can
 * start earliest issues first (index order breaks ties), so a
 * late-ready kernel never blocks an earlier-ready one from an idle
 * pool. Nodes sharing a pool serialize on its busy time; the latency
 * delays dependents only. Returns the makespan. When @p startsOut is
 * non-null it receives each node's issue time (cycles) — the virtual
 * timeline the trace exporter renders.
 */
double scheduleNodes(const std::vector<SchedNode> &nodes,
                     size_t pool_count,
                     std::vector<double> *startsOut = nullptr);

/**
 * Event-driven list scheduler: serializes kernels that share a pool,
 * honors dependency edges, and issues ready kernels earliest-start
 * first. Kernels on different pools overlap freely — this is what
 * lets the NTT/MAC balance (Fig. 2) show up as idle time on fixed
 * designs and full overlap on Trinity.
 */
SimResult schedule(const KernelGraph &graph, const Machine &machine);

/**
 * Throughput bound: busy cycles per pool if the graph is replayed
 * back-to-back with perfect batching (dependency-free). The largest
 * entry is the steady-state cost per graph instance.
 */
std::map<std::string, double> poolBusy(const KernelGraph &graph,
                                       const Machine &machine);

/** Bottleneck busy cycles (max over pools). */
double bottleneckCycles(const KernelGraph &graph, const Machine &machine);

} // namespace sim
} // namespace trinity

#endif // TRINITY_SIM_MACHINE_H
