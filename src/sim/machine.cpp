#include "sim/machine.h"

#include <algorithm>

#include "common/logging.h"

namespace trinity {
namespace sim {

const Route &
Machine::route(KernelType t) const
{
    auto it = routes.find(t);
    if (it == routes.end()) {
        trinity_fatal("machine '%s' has no unit for kernel class %s",
                      name.c_str(), kernelTypeName(t));
    }
    return it->second;
}

const Pool &
Machine::pool(const std::string &pname) const
{
    auto it = pools.find(pname);
    if (it == pools.end()) {
        trinity_fatal("machine '%s' has no pool '%s'", name.c_str(),
                      pname.c_str());
    }
    return it->second;
}

double
Machine::busyCycles(const Kernel &k) const
{
    const Route &r = route(k.type);
    const Pool &p = pool(r.pool);
    double work = static_cast<double>(k.elements) * r.costFactor;
    return work / (p.elemsPerCycle * p.efficiency);
}

double
Machine::charge(KernelType t, u64 elems, u64 poly_len) const
{
    Kernel k;
    k.type = t;
    k.elements = elems;
    k.polyLen = poly_len;
    return busyCycles(k) + pool(route(t).pool).latency;
}

SimResult
schedule(const KernelGraph &graph, const Machine &machine)
{
    const auto &kernels = graph.kernels();
    size_t n = kernels.size();
    std::vector<double> finish(n, 0);
    std::map<std::string, double> pool_free;
    SimResult result;

    // Kernels are stored in topological order by construction (deps
    // always reference earlier indices); verify as we go.
    for (size_t i = 0; i < n; ++i) {
        const Kernel &k = kernels[i];
        double ready = 0;
        for (size_t d : k.deps) {
            trinity_assert(d < i, "kernel graph not topological");
            ready = std::max(ready, finish[d]);
        }
        const Route &r = machine.route(k.type);
        const Pool &p = machine.pool(r.pool);
        double dur = machine.busyCycles(k);
        double start = std::max(ready, pool_free[p.name]);
        finish[i] = start + dur + p.latency;
        pool_free[p.name] = start + dur;
        // Utilization accounting uses raw work / capacity (the fraction
        // of datapath slots doing useful work).
        result.busy[p.name] += static_cast<double>(k.elements) *
                               r.costFactor / p.elemsPerCycle;
        result.makespanCycles = std::max(result.makespanCycles,
                                         finish[i]);
    }
    return result;
}

std::map<std::string, double>
poolBusy(const KernelGraph &graph, const Machine &machine)
{
    std::map<std::string, double> busy;
    for (const auto &k : graph.kernels()) {
        const Route &r = machine.route(k.type);
        const Pool &p = machine.pool(r.pool);
        busy[p.name] += static_cast<double>(k.elements) * r.costFactor /
                        (p.elemsPerCycle * p.efficiency);
    }
    return busy;
}

double
bottleneckCycles(const KernelGraph &graph, const Machine &machine)
{
    double worst = 0;
    for (const auto &[name, cycles] : poolBusy(graph, machine)) {
        worst = std::max(worst, cycles);
    }
    return worst;
}

} // namespace sim
} // namespace trinity
