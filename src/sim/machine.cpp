#include "sim/machine.h"

#include <algorithm>
#include <queue>
#include <utility>

#include "common/logging.h"

namespace trinity {
namespace sim {

const Route &
Machine::route(KernelType t) const
{
    auto it = routes.find(t);
    if (it == routes.end()) {
        trinity_fatal("machine '%s' has no unit for kernel class %s",
                      name.c_str(), kernelTypeName(t));
    }
    return it->second;
}

const Pool &
Machine::pool(const std::string &pname) const
{
    auto it = pools.find(pname);
    if (it == pools.end()) {
        trinity_fatal("machine '%s' has no pool '%s'", name.c_str(),
                      pname.c_str());
    }
    return it->second;
}

double
Machine::busyCycles(const Kernel &k) const
{
    const Route &r = route(k.type);
    const Pool &p = pool(r.pool);
    double work = static_cast<double>(k.elements) * r.costFactor;
    return work / (p.elemsPerCycle * p.efficiency);
}

double
Machine::charge(KernelType t, u64 elems, u64 poly_len) const
{
    Kernel k;
    k.type = t;
    k.elements = elems;
    k.polyLen = poly_len;
    return busyCycles(k) + pool(route(t).pool).latency;
}

double
scheduleNodes(const std::vector<SchedNode> &nodes, size_t pool_count,
              std::vector<double> *startsOut)
{
    size_t n = nodes.size();
    if (startsOut != nullptr) {
        startsOut->assign(n, 0.0);
    }
    std::vector<double> finish(n, 0);
    std::vector<double> ready(n, 0);
    std::vector<size_t> deps_left(n, 0);
    std::vector<std::vector<size_t>> dependents(n);
    for (size_t i = 0; i < n; ++i) {
        for (size_t d : nodes[i].deps) {
            trinity_assert(d < i, "schedule graph not topological");
            deps_left[i] += 1;
            dependents[d].push_back(i);
        }
    }
    // One FIFO-ordered ready list per pool, kept sorted by ready time
    // lazily via a min-heap of (readyTime, index). Among the heads of
    // all pools, issue the node with the earliest feasible start
    // max(readyTime, pool watermark); index breaks ties, so equal
    // graphs schedule deterministically.
    using Cand = std::pair<double, size_t>; // (readyTime, node)
    std::vector<std::priority_queue<Cand, std::vector<Cand>,
                                    std::greater<Cand>>>
        queues(pool_count + 1); // last slot: pool-less ordering nodes
    std::vector<double> pool_free(pool_count, 0);
    auto slotOf = [&](size_t i) {
        return nodes[i].pool == SchedNode::kNoPool ? pool_count
                                                   : nodes[i].pool;
    };
    for (size_t i = 0; i < n; ++i) {
        if (deps_left[i] == 0) {
            queues[slotOf(i)].push({0.0, i});
        }
    }
    double makespan = 0;
    for (size_t issued = 0; issued < n; ++issued) {
        // Pick the pool whose head candidate can start earliest.
        double best_start = 0;
        size_t best_node = n;
        for (size_t q = 0; q < queues.size(); ++q) {
            if (queues[q].empty()) {
                continue;
            }
            auto [r, i] = queues[q].top();
            double start =
                q < pool_count ? std::max(r, pool_free[q]) : r;
            if (best_node == n || start < best_start ||
                (start == best_start && i < best_node)) {
                best_start = start;
                best_node = i;
            }
        }
        trinity_assert(best_node < n, "schedule graph has a cycle");
        size_t i = best_node;
        queues[slotOf(i)].pop();
        const SchedNode &node = nodes[i];
        if (startsOut != nullptr) {
            (*startsOut)[i] = best_start;
        }
        finish[i] = best_start + node.busy + node.latency;
        if (node.pool != SchedNode::kNoPool) {
            // The pipeline fill delays dependents but does not occupy
            // the pool.
            pool_free[node.pool] = best_start + node.busy;
        }
        makespan = std::max(makespan, finish[i]);
        for (size_t dep : dependents[i]) {
            ready[dep] = std::max(ready[dep], finish[i]);
            if (--deps_left[dep] == 0) {
                queues[slotOf(dep)].push({ready[dep], dep});
            }
        }
    }
    return makespan;
}

SimResult
schedule(const KernelGraph &graph, const Machine &machine)
{
    const auto &kernels = graph.kernels();
    size_t n = kernels.size();
    SimResult result;

    // Map pools to dense indices and kernels to SchedNodes, then run
    // the shared earliest-start scheduler.
    std::map<std::string, size_t> pool_ids;
    std::vector<SchedNode> nodes;
    nodes.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        const Kernel &k = kernels[i];
        const Route &r = machine.route(k.type);
        const Pool &p = machine.pool(r.pool);
        auto [it, inserted] =
            pool_ids.emplace(p.name, pool_ids.size());
        SchedNode node;
        node.pool = it->second;
        node.busy = machine.busyCycles(k);
        node.latency = p.latency;
        node.deps = k.deps;
        nodes.push_back(std::move(node));
        // Utilization accounting uses raw work / capacity (the fraction
        // of datapath slots doing useful work).
        result.busy[p.name] += static_cast<double>(k.elements) *
                               r.costFactor / p.elemsPerCycle;
    }
    result.makespanCycles = scheduleNodes(nodes, pool_ids.size());
    return result;
}

std::map<std::string, double>
poolBusy(const KernelGraph &graph, const Machine &machine)
{
    std::map<std::string, double> busy;
    for (const auto &k : graph.kernels()) {
        const Route &r = machine.route(k.type);
        const Pool &p = machine.pool(r.pool);
        busy[p.name] += static_cast<double>(k.elements) * r.costFactor /
                        (p.elemsPerCycle * p.efficiency);
    }
    return busy;
}

double
bottleneckCycles(const KernelGraph &graph, const Machine &machine)
{
    double worst = 0;
    for (const auto &[name, cycles] : poolBusy(graph, machine)) {
        worst = std::max(worst, cycles);
    }
    return worst;
}

} // namespace sim
} // namespace trinity
