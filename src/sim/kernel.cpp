#include "sim/kernel.h"

namespace trinity {
namespace sim {

const char *
kernelTypeName(KernelType t)
{
    switch (t) {
      case KernelType::Ntt: return "NTT";
      case KernelType::Intt: return "iNTT";
      case KernelType::Bconv: return "BConv";
      case KernelType::Ip: return "IP";
      case KernelType::ModMul: return "ModMul";
      case KernelType::ModAdd: return "ModAdd";
      case KernelType::Auto: return "Auto";
      case KernelType::Rotate: return "Rotate";
      case KernelType::SampleExtract: return "SampleExtract";
      case KernelType::Decomp: return "Decomp";
      case KernelType::ModSwitch: return "ModSwitch";
      case KernelType::LweKs: return "LweKS";
      case KernelType::Transpose: return "Transpose";
      case KernelType::HbmXfer: return "HBM";
      case KernelType::NocXfer: return "NoC";
    }
    return "?";
}

u64
KernelGraph::totalElements(KernelType t) const
{
    u64 sum = 0;
    for (const auto &k : kernels_) {
        if (k.type == t) {
            sum += k.elements;
        }
    }
    return sum;
}

} // namespace sim
} // namespace trinity
