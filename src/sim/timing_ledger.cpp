#include "sim/timing_ledger.h"

#include <vector>

namespace trinity {
namespace sim {

bool
TimingLedger::isTransfer(KernelType t)
{
    return t == KernelType::HbmXfer || t == KernelType::NocXfer;
}

void
TimingLedger::record(const std::string &scope, KernelType type,
                     u64 elems, double cycles, const std::string &pool)
{
    std::lock_guard<std::mutex> lock(mtx_);
    LedgerCell &cell = cells_[scope][type];
    cell.calls += 1;
    cell.elements += elems;
    cell.cycles += cycles;
    if (!pool.empty()) {
        poolBusy_[pool] += cycles;
    }
}

void
TimingLedger::recordSpan(double cycles)
{
    std::lock_guard<std::mutex> lock(mtx_);
    spanCycles_ += cycles;
}

double
TimingLedger::overlappedCycles() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return spanCycles_;
}

std::map<KernelType, LedgerCell>
TimingLedger::byKernel() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    std::map<KernelType, LedgerCell> out;
    for (const auto &[scope, kernels] : cells_) {
        for (const auto &[type, cell] : kernels) {
            LedgerCell &acc = out[type];
            acc.calls += cell.calls;
            acc.elements += cell.elements;
            acc.cycles += cell.cycles;
        }
    }
    return out;
}

std::map<std::string, std::map<KernelType, LedgerCell>>
TimingLedger::byScope() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return cells_;
}

std::map<std::string, double>
TimingLedger::poolBusy() const
{
    std::lock_guard<std::mutex> lock(mtx_);
    return poolBusy_;
}

u64
TimingLedger::elements(KernelType type) const
{
    auto all = byKernel();
    auto it = all.find(type);
    return it == all.end() ? 0 : it->second.elements;
}

double
TimingLedger::cycles(KernelType type) const
{
    auto all = byKernel();
    auto it = all.find(type);
    return it == all.end() ? 0 : it->second.cycles;
}

u64
TimingLedger::calls(KernelType type) const
{
    auto all = byKernel();
    auto it = all.find(type);
    return it == all.end() ? 0 : it->second.calls;
}

double
TimingLedger::computeCycles() const
{
    double sum = 0;
    for (const auto &[type, cell] : byKernel()) {
        if (!isTransfer(type)) {
            sum += cell.cycles;
        }
    }
    return sum;
}

double
TimingLedger::transferCycles() const
{
    double sum = 0;
    for (const auto &[type, cell] : byKernel()) {
        if (isTransfer(type)) {
            sum += cell.cycles;
        }
    }
    return sum;
}

void
TimingLedger::reset()
{
    std::lock_guard<std::mutex> lock(mtx_);
    cells_.clear();
    poolBusy_.clear();
    spanCycles_ = 0;
}

void
TimingLedger::report(std::FILE *out) const
{
    auto scopes = byScope();
    std::fprintf(out, "%-14s %-14s %10s %14s %14s\n", "op", "kernel",
                 "batches", "elements", "cycles");
    for (const auto &[scope, kernels] : scopes) {
        const char *label = scope.empty() ? "(unscoped)" : scope.c_str();
        for (const auto &[type, cell] : kernels) {
            std::fprintf(out, "%-14s %-14s %10llu %14llu %14.0f\n",
                         label, kernelTypeName(type),
                         static_cast<unsigned long long>(cell.calls),
                         static_cast<unsigned long long>(cell.elements),
                         cell.cycles);
        }
    }
    std::fprintf(out, "pool busy:");
    for (const auto &[pool, cycles] : poolBusy()) {
        std::fprintf(out, "  %s=%.0f", pool.c_str(), cycles);
    }
    std::fprintf(out,
                 "\ncompute=%.0f cycles (stream-overlapped makespan "
                 "%.0f), transfer=%.0f cycles, "
                 "latency (overlapped)=%.0f cycles\n",
                 computeCycles(), overlappedCycles(), transferCycles(),
                 overlappedLatencyCycles());
}

} // namespace sim
} // namespace trinity
