/**
 * @file
 * Kernel-granularity workload representation for the cycle-level
 * simulator.
 *
 * FHE operations decompose into a finite set of arithmetic kernels
 * (the paper's first key observation, Section I). A KernelGraph is a
 * DAG of such kernels; the scheduler maps it onto a Machine.
 */

#ifndef TRINITY_SIM_KERNEL_H
#define TRINITY_SIM_KERNEL_H

#include <string>
#include <vector>

#include "common/types.h"

namespace trinity {
namespace sim {

/** The kernel classes of Table I plus memory/system transfers. */
enum class KernelType
{
    Ntt,           ///< forward NTT
    Intt,          ///< inverse NTT
    Bconv,         ///< base conversion MACs
    Ip,            ///< inner product with evk MACs
    ModMul,        ///< element-wise modular multiply
    ModAdd,        ///< element-wise modular add
    Auto,          ///< automorphism permutation
    Rotate,        ///< monomial multiply / vector rotate
    SampleExtract, ///< LWE extraction
    Decomp,        ///< gadget decomposition
    ModSwitch,     ///< modulus switch (TFHE)
    LweKs,         ///< TFHE LWE keyswitch MACs
    Transpose,     ///< four-step NTT transpose
    HbmXfer,       ///< off-chip transfer (elements = bytes)
    NocXfer        ///< inter-cluster layout switch (elements = bytes)
};

/** Human-readable kernel class name. */
const char *kernelTypeName(KernelType t);

/** One node of the workload DAG. */
struct Kernel
{
    KernelType type = KernelType::Ntt;
    /** Total elements processed (e.g. #polys * N). For HbmXfer/NocXfer
     *  this is bytes. */
    u64 elements = 0;
    /** Polynomial length, where meaningful (NTT pass accounting). */
    u64 polyLen = 0;
    /** Indices of kernels that must complete first. */
    std::vector<size_t> deps;
    /** Stats grouping label (phase name). */
    std::string tag;
};

/** Workload DAG with convenience builders. */
class KernelGraph
{
  public:
    /** Append a kernel; returns its index. */
    size_t
    add(Kernel k)
    {
        kernels_.push_back(std::move(k));
        return kernels_.size() - 1;
    }

    /** Append a kernel depending on a single predecessor (or none). */
    size_t
    addAfter(KernelType type, u64 elements, u64 poly_len,
             std::vector<size_t> deps, std::string tag = "")
    {
        Kernel k;
        k.type = type;
        k.elements = elements;
        k.polyLen = poly_len;
        k.deps = std::move(deps);
        k.tag = std::move(tag);
        return add(std::move(k));
    }

    const std::vector<Kernel> &kernels() const { return kernels_; }
    size_t size() const { return kernels_.size(); }

    /** Total elements of a given kernel type (workload breakdown). */
    u64 totalElements(KernelType t) const;

  private:
    std::vector<Kernel> kernels_;
};

} // namespace sim
} // namespace trinity

#endif // TRINITY_SIM_KERNEL_H
