/**
 * @file
 * AVX2 KernelSet: 4-lane merged-psi NTT butterflies with Shoup
 * twiddles, and the Barrett/Shoup element-wise family. Compiled with
 * -mavx2 via a per-file CMake flag; when the compiler cannot target
 * AVX2 this TU degrades to a stub advertising "not compiled in".
 *
 * Bit-identical to the scalar reference by construction: every lane
 * runs the exact Modulus:: recurrences (see simd_avx_inl.h), and the
 * butterfly network is the same Cooley-Tukey / Gentleman-Sande
 * schedule NttTable walks — the t ∈ {1,2} stages are vectorized by
 * de-interleaving instead of being skipped, so no scalar cleanup
 * pass exists to diverge.
 */

#include "backend/simd_kernels.h"

#if defined(__AVX2__)

#include "backend/simd_avx_inl.h"
#include "poly/ntt.h"

namespace trinity {
namespace simd {

namespace {

void
nttForwardAvx2(const NttTable &table, u64 *a)
{
    const size_t n = table.n();
    if (n < 8) {
        table.forward(a); // too short for the shuffle stages
        return;
    }
    const u64 *tw = table.psiBr().data();
    const u64 *twp = table.psiBrPrecon().data();
    const __m256i q = bcast256(table.modulus().value());
    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            fwdStageVecYmm(a, m, t, tw, twp, q);
        } else if (t == 2) {
            fwdStageT2Ymm(a, m, tw, twp, q);
        } else {
            fwdStageT1Ymm(a, m, tw, twp, q);
        }
    }
}

void
nttInverseAvx2(const NttTable &table, u64 *a)
{
    const size_t n = table.n();
    if (n < 8) {
        table.inverse(a);
        return;
    }
    const u64 *tw = table.ipsiBr().data();
    const u64 *twp = table.ipsiBrPrecon().data();
    const __m256i q = bcast256(table.modulus().value());
    size_t t = 1;
    for (size_t m = n; m > 2; m >>= 1) {
        size_t h = m >> 1;
        if (t >= 4) {
            invStageVecYmm(a, h, t, tw, twp, q);
        } else if (t == 2) {
            invStageT2Ymm(a, h, tw, twp, q);
        } else {
            invStageT1Ymm(a, h, tw, twp, q);
        }
        t <<= 1;
    }
    // Final stage with N^{-1} folded into both outputs — replaces the
    // separate whole-vector scaling pass (exact, so bit-identical).
    invStageRangeFusedYmm(table.modulus(), a, n / 2, table.nInv(),
                          table.nInvPrecon(), table.ipsiLastScaled(),
                          table.ipsiLastScaledPrecon(), q, 0, n / 2);
}

void
nttForwardStagesAvx2(const NttTable &table, u64 *a, size_t stage_lo,
                     size_t stage_hi, size_t b_lo, size_t b_hi)
{
    const size_t n = table.n();
    if (n < 8) {
        table.forwardStages(a, stage_lo, stage_hi, b_lo, b_hi);
        return;
    }
    const Modulus &mod = table.modulus();
    const u64 *tw = table.psiBr().data();
    const u64 *twp = table.psiBrPrecon().data();
    const __m256i q = bcast256(mod.value());
    for (size_t s = stage_lo; s < stage_hi; ++s) {
        size_t m = size_t{1} << s;
        size_t t = n >> (s + 1);
        if (t >= 4) {
            fwdStageRangeVecYmm(mod, a, m, t, tw, twp, q, b_lo, b_hi);
        } else if (t == 2) {
            fwdStageRangeT2Ymm(mod, a, m, tw, twp, q, b_lo, b_hi);
        } else {
            fwdStageRangeT1Ymm(mod, a, m, tw, twp, q, b_lo, b_hi);
        }
    }
}

void
nttInverseStagesAvx2(const NttTable &table, u64 *a, size_t stage_lo,
                     size_t stage_hi, size_t b_lo, size_t b_hi,
                     bool scale_n)
{
    const size_t n = table.n();
    if (n < 8) {
        table.inverseStages(a, stage_lo, stage_hi, b_lo, b_hi, scale_n);
        return;
    }
    const Modulus &mod = table.modulus();
    const u64 *tw = table.ipsiBr().data();
    const u64 *twp = table.ipsiBrPrecon().data();
    const __m256i q = bcast256(mod.value());
    const size_t logn = table.logn();
    for (size_t s = stage_lo; s < stage_hi; ++s) {
        size_t h = n >> (s + 1);
        size_t t = size_t{1} << s;
        if (scale_n && s + 1 == logn) {
            // Final stage: one block (h == 1, t == n/2) with N^{-1}
            // folded into both butterfly outputs.
            invStageRangeFusedYmm(mod, a, t, table.nInv(),
                                  table.nInvPrecon(),
                                  table.ipsiLastScaled(),
                                  table.ipsiLastScaledPrecon(), q, b_lo,
                                  b_hi);
        } else if (t >= 4) {
            invStageRangeVecYmm(mod, a, h, t, tw, twp, q, b_lo, b_hi);
        } else if (t == 2) {
            invStageRangeT2Ymm(mod, a, h, tw, twp, q, b_lo, b_hi);
        } else {
            invStageRangeT1Ymm(mod, a, h, tw, twp, q, b_lo, b_hi);
        }
    }
}

void mulAddAvx2(u64 *dst, const u64 *a, const u64 *b,
                const Modulus &mod, size_t n);
void addAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
             size_t n);

void
nttForwardMulAddAvx2(const NttTable &table, u64 *a, const u64 *b0,
                     u64 *acc0, const u64 *b1, u64 *acc1)
{
    nttForwardAvx2(table, a);
    mulAddAvx2(acc0, a, b0, table.modulus(), table.n());
    if (acc1 != nullptr) {
        mulAddAvx2(acc1, a, b1, table.modulus(), table.n());
    }
}

void
nttInverseAddAvx2(const NttTable &table, u64 *a, u64 *acc)
{
    nttInverseAvx2(table, a);
    addAvx2(acc, acc, a, table.modulus(), table.n());
}

void
addAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
        size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c,
                  addmodx4(loadu256(a + c), loadu256(b + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.add(a[c], b[c]);
    }
}

void
subAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
        size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c,
                  submodx4(loadu256(a + c), loadu256(b + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.sub(a[c], b[c]);
    }
}

void
negAvx2(u64 *dst, const u64 *a, const Modulus &mod, size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c, negmodx4(loadu256(a + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.neg(a[c]);
    }
}

void
mulAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
        size_t n)
{
    const __m256i q = bcast256(mod.value());
    const __m256i b_lo = bcast256(mod.barrettLo());
    const __m256i b_hi = bcast256(mod.barrettHi());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        __m256i z_hi, z_lo;
        mul64widex4(loadu256(a + c), loadu256(b + c), z_hi, z_lo);
        storeu256(dst + c, barrett128x4(z_lo, z_hi, q, b_lo, b_hi));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mul(a[c], b[c]);
    }
}

void
mulAddAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
           size_t n)
{
    const __m256i q = bcast256(mod.value());
    const __m256i b_lo = bcast256(mod.barrettLo());
    const __m256i b_hi = bcast256(mod.barrettHi());
    const __m256i one = bcast256(1);
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        __m256i z_hi, z_lo;
        mul64widex4(loadu256(a + c), loadu256(b + c), z_hi, z_lo);
        // 128-bit accumulate of dst before the reduction
        __m256i d = loadu256(dst + c);
        __m256i s = _mm256_add_epi64(z_lo, d);
        __m256i carry = _mm256_and_si256(cmpgtu64x4(d, s), one);
        z_hi = _mm256_add_epi64(z_hi, carry);
        storeu256(dst + c, barrett128x4(s, z_hi, q, b_lo, b_hi));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mulAdd(a[c], b[c], dst[c]);
    }
}

void
scalarMulAvx2(u64 *dst, const u64 *src, u64 scalar, const Modulus &mod,
              size_t n)
{
    u64 pre = mod.shoupPrecompute(scalar);
    const __m256i q = bcast256(mod.value());
    const __m256i w = bcast256(scalar);
    const __m256i wp = bcast256(pre);
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c, mulshoupx4(loadu256(src + c), w, wp, q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mulShoup(src[c], scalar, pre);
    }
}

void
automorphismAvx2(u64 *dst, const u64 *src, const u64 *perm,
                 const u64 *sign, const Modulus &mod, size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        __m256i x = _mm256_i64gather_epi64(
            reinterpret_cast<const long long *>(src),
            loadu256(perm + c), 8);
        // signMask lanes are 0 or ~0, so a byte blend selects exactly
        // the lanes the table marked negated (0 stays 0 in negmodx4).
        __m256i m = loadu256(sign + c);
        storeu256(dst + c,
                  _mm256_blendv_epi8(x, negmodx4(x, q), m));
    }
    for (; c < n; ++c) {
        u64 x = src[perm[c]];
        dst[c] = sign[c] ? mod.neg(x) : x;
    }
}

void
bconvPass1Avx2(u64 *v, const u64 *x, u64 w, u64 w_pre,
               const Modulus &mod, size_t n)
{
    const __m256i q = bcast256(mod.value());
    const __m256i wv = bcast256(w);
    const __m256i wp = bcast256(w_pre);
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(v + c, mulshoupx4(loadu256(x + c), wv, wp, q));
    }
    for (; c < n; ++c) {
        v[c] = mod.mulShoup(x[c], w, w_pre);
    }
}

void
bconvPass2Avx2(u64 *y, const u64 *v, size_t v_stride, size_t k,
               const u64 *w, size_t w_stride, const Modulus &mod,
               size_t n)
{
    const __m256i q = bcast256(mod.value());
    const __m256i b_lo = bcast256(mod.barrettLo());
    const __m256i b_hi = bcast256(mod.barrettHi());
    const __m256i one = bcast256(1);
    const __m256i zero = _mm256_setzero_si256();
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        // Lazy accumulation: raw 128-bit products, one Barrett fold
        // per kBconvChunk terms (v, w < 2^62 keeps the sum in range).
        // The fold is an exact mod, so the running residue equals the
        // scalar kernel's value no matter how the sum is chunked.
        __m256i r = zero;
        size_t i = 0;
        while (i < k) {
            size_t end = i + kBconvChunk < k ? i + kBconvChunk : k;
            __m256i acc_lo = zero;
            __m256i acc_hi = zero;
            for (; i < end; ++i) {
                __m256i z_hi, z_lo;
                mul64widex4(loadu256(v + i * v_stride + c),
                            bcast256(w[i * w_stride]), z_hi, z_lo);
                __m256i s = _mm256_add_epi64(acc_lo, z_lo);
                __m256i carry =
                    _mm256_and_si256(cmpgtu64x4(acc_lo, s), one);
                acc_lo = s;
                acc_hi = _mm256_add_epi64(
                    acc_hi, _mm256_add_epi64(z_hi, carry));
            }
            r = addmodx4(
                r, barrett128x4(acc_lo, acc_hi, q, b_lo, b_hi), q);
        }
        storeu256(y + c, r);
    }
    for (; c < n; ++c) {
        u64 r = 0;
        size_t i = 0;
        while (i < k) {
            size_t end = i + kBconvChunk < k ? i + kBconvChunk : k;
            u128 acc = 0;
            for (; i < end; ++i) {
                acc += static_cast<u128>(v[i * v_stride + c]) *
                       w[i * w_stride];
            }
            r = mod.add(r, mod.reduce128(acc));
        }
        y[c] = r;
    }
}

} // namespace

const KernelSet *
avx2KernelsOrNull()
{
    static const KernelSet set = {
        Level::Avx2,          4,
        nttForwardAvx2,       nttInverseAvx2,
        nttForwardStagesAvx2, nttInverseStagesAvx2,
        nttForwardMulAddAvx2, nttInverseAddAvx2,
        addAvx2,              subAvx2,
        negAvx2,              mulAvx2,
        mulAddAvx2,           scalarMulAvx2,
        automorphismAvx2,     bconvPass1Avx2,
        bconvPass2Avx2,
    };
    return &set;
}

} // namespace simd
} // namespace trinity

#else // !__AVX2__

namespace trinity {
namespace simd {

const KernelSet *
avx2KernelsOrNull()
{
    return nullptr;
}

} // namespace simd
} // namespace trinity

#endif // __AVX2__
