/**
 * @file
 * AVX2 KernelSet: 4-lane merged-psi NTT butterflies with Shoup
 * twiddles, and the Barrett/Shoup element-wise family. Compiled with
 * -mavx2 via a per-file CMake flag; when the compiler cannot target
 * AVX2 this TU degrades to a stub advertising "not compiled in".
 *
 * Bit-identical to the scalar reference by construction: every lane
 * runs the exact Modulus:: recurrences (see simd_avx_inl.h), and the
 * butterfly network is the same Cooley-Tukey / Gentleman-Sande
 * schedule NttTable walks — the t ∈ {1,2} stages are vectorized by
 * de-interleaving instead of being skipped, so no scalar cleanup
 * pass exists to diverge.
 */

#include "backend/simd_kernels.h"

#if defined(__AVX2__)

#include "backend/simd_avx_inl.h"
#include "poly/ntt.h"

namespace trinity {
namespace simd {

namespace {

void
nttForwardAvx2(const NttTable &table, u64 *a)
{
    const size_t n = table.n();
    if (n < 8) {
        table.forward(a); // too short for the shuffle stages
        return;
    }
    const u64 *tw = table.psiBr().data();
    const u64 *twp = table.psiBrPrecon().data();
    const __m256i q = bcast256(table.modulus().value());
    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 4) {
            fwdStageVecYmm(a, m, t, tw, twp, q);
        } else if (t == 2) {
            fwdStageT2Ymm(a, m, tw, twp, q);
        } else {
            fwdStageT1Ymm(a, m, tw, twp, q);
        }
    }
}

void
nttInverseAvx2(const NttTable &table, u64 *a)
{
    const size_t n = table.n();
    if (n < 8) {
        table.inverse(a);
        return;
    }
    const u64 *tw = table.ipsiBr().data();
    const u64 *twp = table.ipsiBrPrecon().data();
    const __m256i q = bcast256(table.modulus().value());
    size_t t = 1;
    for (size_t m = n; m > 1; m >>= 1) {
        size_t h = m >> 1;
        if (t >= 4) {
            invStageVecYmm(a, h, t, tw, twp, q);
        } else if (t == 2) {
            invStageT2Ymm(a, h, tw, twp, q);
        } else {
            invStageT1Ymm(a, h, tw, twp, q);
        }
        t <<= 1;
    }
    const __m256i s = bcast256(table.nInv());
    const __m256i sp = bcast256(table.nInvPrecon());
    for (size_t j = 0; j < n; j += 4) {
        storeu256(a + j, mulshoupx4(loadu256(a + j), s, sp, q));
    }
}

void
addAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
        size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c,
                  addmodx4(loadu256(a + c), loadu256(b + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.add(a[c], b[c]);
    }
}

void
subAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
        size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c,
                  submodx4(loadu256(a + c), loadu256(b + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.sub(a[c], b[c]);
    }
}

void
negAvx2(u64 *dst, const u64 *a, const Modulus &mod, size_t n)
{
    const __m256i q = bcast256(mod.value());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c, negmodx4(loadu256(a + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.neg(a[c]);
    }
}

void
mulAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
        size_t n)
{
    const __m256i q = bcast256(mod.value());
    const __m256i b_lo = bcast256(mod.barrettLo());
    const __m256i b_hi = bcast256(mod.barrettHi());
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        __m256i z_hi, z_lo;
        mul64widex4(loadu256(a + c), loadu256(b + c), z_hi, z_lo);
        storeu256(dst + c, barrett128x4(z_lo, z_hi, q, b_lo, b_hi));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mul(a[c], b[c]);
    }
}

void
mulAddAvx2(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
           size_t n)
{
    const __m256i q = bcast256(mod.value());
    const __m256i b_lo = bcast256(mod.barrettLo());
    const __m256i b_hi = bcast256(mod.barrettHi());
    const __m256i one = bcast256(1);
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        __m256i z_hi, z_lo;
        mul64widex4(loadu256(a + c), loadu256(b + c), z_hi, z_lo);
        // 128-bit accumulate of dst before the reduction
        __m256i d = loadu256(dst + c);
        __m256i s = _mm256_add_epi64(z_lo, d);
        __m256i carry = _mm256_and_si256(cmpgtu64x4(d, s), one);
        z_hi = _mm256_add_epi64(z_hi, carry);
        storeu256(dst + c, barrett128x4(s, z_hi, q, b_lo, b_hi));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mulAdd(a[c], b[c], dst[c]);
    }
}

void
scalarMulAvx2(u64 *dst, const u64 *src, u64 scalar, const Modulus &mod,
              size_t n)
{
    u64 pre = mod.shoupPrecompute(scalar);
    const __m256i q = bcast256(mod.value());
    const __m256i w = bcast256(scalar);
    const __m256i wp = bcast256(pre);
    size_t c = 0;
    for (; c + 4 <= n; c += 4) {
        storeu256(dst + c, mulshoupx4(loadu256(src + c), w, wp, q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mulShoup(src[c], scalar, pre);
    }
}

} // namespace

const KernelSet *
avx2KernelsOrNull()
{
    static const KernelSet set = {
        Level::Avx2, 4,       nttForwardAvx2, nttInverseAvx2,
        addAvx2,     subAvx2, negAvx2,        mulAvx2,
        mulAddAvx2,  scalarMulAvx2,
    };
    return &set;
}

} // namespace simd
} // namespace trinity

#else // !__AVX2__

namespace trinity {
namespace simd {

const KernelSet *
avx2KernelsOrNull()
{
    return nullptr;
}

} // namespace simd
} // namespace trinity

#endif // __AVX2__
