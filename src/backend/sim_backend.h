/**
 * @file
 * Simulated-accelerator timing backend.
 *
 * SimBackend executes every batch *functionally* on an inner engine
 * (bit-identical to serial) while charging the batch's cycles to a
 * sim::Machine through the KernelType mapping of the batched entry
 * points, plus HBM/NoC transfer charges derived from batch byte
 * volumes. One code path therefore produces verified ciphertexts AND
 * paper-comparable cycle counts: run any workload under
 * TRINITY_BACKEND=sim and read the TimingLedger.
 *
 * Environment knobs (resolved when the registry builds the engine):
 *   TRINITY_SIM_INNER    functional engine to wrap ("serial" default,
 *                        "threads", or "simd")
 *   TRINITY_SIM_MACHINE  accel config, see accel::machineNames()
 *                        ("trinity-ckks" default — it routes every
 *                        kernel class, TFHE's included)
 */

#ifndef TRINITY_BACKEND_SIM_BACKEND_H
#define TRINITY_BACKEND_SIM_BACKEND_H

#include <map>
#include <mutex>

#include "backend/observed_backend.h"
#include "sim/machine.h"
#include "sim/timing_ledger.h"

namespace trinity {

/**
 * Observer that prices each kernel event on a Machine and books it
 * into a TimingLedger. Usable standalone around any engine (wrap it
 * in an ObservedBackend and installObserver); SimBackend bundles the
 * composition.
 */
class MachineTimingObserver final : public BackendObserver
{
  public:
    explicit MachineTimingObserver(sim::Machine machine);

    void onKernel(const KernelEvent &ev) override;

    sim::TimingLedger &ledger() { return ledger_; }
    const sim::TimingLedger &ledger() const { return ledger_; }
    const sim::Machine &machine() const { return machine_; }

  private:
    struct PoolRow
    {
        u32 tid = 0;
        const char *name = nullptr; ///< interned for the trace writer
    };

    /** Virtual-time trace row for one eagerly charged kernel. */
    void emitVirtualSpan(const KernelEvent &ev, const std::string &pool,
                         double cycles);

    sim::Machine machine_;
    sim::TimingLedger ledger_;

    std::mutex trace_mtx_; ///< guards the two members below
    const char *trace_track_ = nullptr;
    std::map<std::string, PoolRow> trace_pools_;
};

class SimBackend final : public ObservedBackend
{
  public:
    /** Wrap @p inner; charge cycles against @p machine. */
    SimBackend(std::unique_ptr<PolyBackend> inner, sim::Machine machine);
    ~SimBackend() override;

    const char *name() const override { return "sim"; }

    /**
     * Overlap-priced command stream: commands execute functionally on
     * the inner engine at record time (bit-identical to the blocking
     * path), and submit() charges the recorded DAG through
     * Machine::canRun/charge with a live list-schedule — kernels on
     * different pools overlap when their dependencies allow, exactly
     * as sim::schedule() treats a static graph. The stream's makespan
     * advances the ledger's overlapped estimate
     * (TimingLedger::overlappedCycles) while the per-kernel cells stay
     * identical to sequential charging. TRINITY_STREAMS=off falls
     * back to the eager decorator path. Note: stream-recorded kernels
     * are booked into this backend's ledger directly and are NOT
     * delivered to other globally installed BackendObservers (the
     * blocking path notifies every observer); run with streams off
     * when an extra observer must see the full event stream.
     */
    std::unique_ptr<CommandStream> newStream() override;

    sim::TimingLedger &ledger() { return observer_.ledger(); }
    const sim::TimingLedger &ledger() const { return observer_.ledger(); }
    const sim::Machine &machine() const { return observer_.machine(); }

    /** Convert ledger cycles to seconds at the machine frequency. */
    double
    seconds(double cycles) const
    {
        return machine().seconds(cycles);
    }

  private:
    MachineTimingObserver observer_;
};

/** The active engine as a SimBackend, or nullptr if it is not one. */
SimBackend *activeSimBackend();

} // namespace trinity

#endif // TRINITY_BACKEND_SIM_BACKEND_H
