#include "backend/observed_backend.h"

#include "common/logging.h"

namespace trinity {

using sim::KernelType;

namespace {

/** Sum of job lengths for an array of jobs with an `n` member. */
template <typename Job>
u64
totalElems(const Job *jobs, size_t count)
{
    u64 sum = 0;
    for (size_t i = 0; i < count; ++i) {
        sum += jobs[i].n;
    }
    return sum;
}

KernelEvent
makeEvent(KernelType type, u64 elements, u64 poly_len,
          u64 bytes_per_elem)
{
    KernelEvent ev;
    ev.type = type;
    ev.elements = elements;
    ev.polyLen = poly_len;
    ev.bytes = bytes_per_elem * elements;
    return ev;
}

} // namespace

ObservedBackend::ObservedBackend(std::unique_ptr<PolyBackend> inner)
    : inner_(std::move(inner))
{
    trinity_assert(inner_ != nullptr, "null inner backend");
}

void
ObservedBackend::nttForwardBatch(const NttJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 n = jobs[0].table->n();
        // In-place transform: one read + one write per element.
        emitKernel(makeEvent(KernelType::Ntt, count * n, n, 16));
    }
    inner_->nttForwardBatch(jobs, count);
}

void
ObservedBackend::nttInverseBatch(const NttJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 n = jobs[0].table->n();
        emitKernel(makeEvent(KernelType::Intt, count * n, n, 16));
    }
    inner_->nttInverseBatch(jobs, count);
}

void
ObservedBackend::pointwiseMulBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        // Two operand reads + one result write.
        emitKernel(makeEvent(KernelType::ModMul, e, jobs[0].n, 24));
    }
    inner_->pointwiseMulBatch(jobs, count);
}

void
ObservedBackend::addBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        emitKernel(makeEvent(KernelType::ModAdd, e, jobs[0].n, 24));
    }
    inner_->addBatch(jobs, count);
}

void
ObservedBackend::subBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        emitKernel(makeEvent(KernelType::ModAdd, e, jobs[0].n, 24));
    }
    inner_->subBatch(jobs, count);
}

void
ObservedBackend::negBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        emitKernel(makeEvent(KernelType::ModAdd, e, jobs[0].n, 16));
    }
    inner_->negBatch(jobs, count);
}

void
ObservedBackend::mulAddBatch(const MulAddJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        // Accumulator read + write plus both operand reads.
        emitKernel(makeEvent(KernelType::Ip, e, jobs[0].n, 32));
    }
    inner_->mulAddBatch(jobs, count);
}

void
ObservedBackend::scalarMulBatch(const ScalarMulJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        emitKernel(makeEvent(KernelType::ModMul, e, jobs[0].n, 16));
    }
    inner_->scalarMulBatch(jobs, count);
}

void
ObservedBackend::automorphismBatch(const AutoJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        u64 e = totalElems(jobs, count);
        emitKernel(makeEvent(KernelType::Auto, e, jobs[0].n, 16));
    }
    inner_->automorphismBatch(jobs, count);
}

void
ObservedBackend::baseConvert(const BConvPlan &plan, const u64 *const *in,
                             u64 *const *out, size_t n)
{
    if (profilingActive()) {
        KernelEvent ev;
        ev.type = KernelType::Bconv;
        // The BConv matrix product: k x l MACs per coefficient.
        ev.elements = static_cast<u64>(n) * plan.numFrom * plan.numTo;
        ev.polyLen = n;
        // Traffic is the limb matrix in and out, not the MAC volume.
        ev.bytes = 8 * static_cast<u64>(n) *
                   (plan.numFrom + plan.numTo);
        emitKernel(ev);
    }
    inner_->baseConvert(plan, in, out, n);
}

void
ObservedBackend::parallelFor(size_t count,
                             const std::function<void(size_t)> &fn)
{
    inner_->run(count, fn);
}

} // namespace trinity
