#include "backend/observed_backend.h"

#include "backend/kernel_events.h"
#include "common/logging.h"

namespace trinity {

using sim::KernelType;

// Event derivation lives in backend/kernel_events.h, shared with the
// CommandStream recorder so the blocking and async paths report
// identical volumes for the same work.

ObservedBackend::ObservedBackend(std::unique_ptr<PolyBackend> inner)
    : inner_(std::move(inner))
{
    trinity_assert(inner_ != nullptr, "null inner backend");
}

void
ObservedBackend::nttForwardBatch(const NttJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::ntt(jobs, count, true));
    }
    inner_->nttForwardBatch(jobs, count);
}

void
ObservedBackend::nttInverseBatch(const NttJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::ntt(jobs, count, false));
    }
    inner_->nttInverseBatch(jobs, count);
}

void
ObservedBackend::pointwiseMulBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(
            kernel_events::eltwise(KernelType::ModMul, jobs, count, 24));
    }
    inner_->pointwiseMulBatch(jobs, count);
}

void
ObservedBackend::addBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(
            kernel_events::eltwise(KernelType::ModAdd, jobs, count, 24));
    }
    inner_->addBatch(jobs, count);
}

void
ObservedBackend::subBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(
            kernel_events::eltwise(KernelType::ModAdd, jobs, count, 24));
    }
    inner_->subBatch(jobs, count);
}

void
ObservedBackend::negBatch(const EltwiseJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(
            kernel_events::eltwise(KernelType::ModAdd, jobs, count, 16));
    }
    inner_->negBatch(jobs, count);
}

void
ObservedBackend::mulAddBatch(const MulAddJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::mulAdd(jobs, count));
    }
    inner_->mulAddBatch(jobs, count);
}

void
ObservedBackend::nttForwardMulAddBatch(const NttMulAddJob *jobs,
                                       size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::nttOfNttMulAdd(jobs, count));
        emitKernel(kernel_events::ipOfNttMulAdd(jobs, count));
    }
    inner_->nttForwardMulAddBatch(jobs, count);
}

void
ObservedBackend::nttInverseAddBatch(const NttInvAddJob *jobs,
                                    size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::inttOfNttInvAdd(jobs, count));
        emitKernel(kernel_events::addOfNttInvAdd(jobs, count));
    }
    inner_->nttInverseAddBatch(jobs, count);
}

void
ObservedBackend::scalarMulBatch(const ScalarMulJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::scalarMul(jobs, count));
    }
    inner_->scalarMulBatch(jobs, count);
}

void
ObservedBackend::automorphismBatch(const AutoJob *jobs, size_t count)
{
    if (profilingActive() && count > 0) {
        emitKernel(kernel_events::automorphism(jobs, count));
    }
    inner_->automorphismBatch(jobs, count);
}

void
ObservedBackend::baseConvert(const BConvPlan &plan, const u64 *const *in,
                             u64 *const *out, size_t n)
{
    if (profilingActive()) {
        emitKernel(kernel_events::baseConvert(plan, n));
    }
    inner_->baseConvert(plan, in, out, n);
}

void
ObservedBackend::parallelFor(size_t count,
                             const std::function<void(size_t)> &fn)
{
    inner_->run(count, fn);
}

} // namespace trinity
