/**
 * @file
 * Thread-local pooled scratch arena for hot-path limb buffers.
 *
 * Keyswitch, BConv pass 1, and the batched bootstrapper all need
 * limb-major u64 staging buffers sized by (limbs x n) per call; before
 * the arena each call paid a heap allocation (and the stream layer
 * kept per-stream vectors alive just to own them). The arena reuses
 * size-bucketed slabs per thread: acquire() pops a slab of the exact
 * byte size if one is pooled (hit) or mallocs a fresh one (miss), and
 * the RAII ScratchBuffer returns it to the releasing thread's pool.
 * Slabs released on a different thread than they were acquired on
 * simply migrate — the pool is per-thread only to make the common
 * path lock-free, not for correctness.
 *
 * Global hit/miss counters live in the obs::MetricsRegistry
 * ("scratch_arena.hits"/"scratch_arena.misses"); they feed the bench
 * allocations-per-op rows and the zero-alloc-after-warmup test, with
 * stats()/resetStats() kept as thin views over the registry entries.
 */

#ifndef TRINITY_BACKEND_SCRATCH_ARENA_H
#define TRINITY_BACKEND_SCRATCH_ARENA_H

#include <cstddef>
#include <map>
#include <memory>
#include <vector>

#include "common/types.h"

namespace trinity {

class ScratchArena;

/**
 * RAII handle to one pooled slab of `size()` u64 elements. Move-only;
 * the destructor returns the slab to the current thread's arena.
 * Contents are uninitialized on acquire (callers overwrite).
 */
class ScratchBuffer
{
  public:
    ScratchBuffer() = default;
    ScratchBuffer(ScratchBuffer &&other) noexcept
        : data_(std::move(other.data_)), size_(other.size_)
    {
        other.size_ = 0;
    }
    ScratchBuffer &operator=(ScratchBuffer &&other) noexcept;
    ScratchBuffer(const ScratchBuffer &) = delete;
    ScratchBuffer &operator=(const ScratchBuffer &) = delete;
    ~ScratchBuffer();

    u64 *data() { return data_.get(); }
    const u64 *data() const { return data_.get(); }
    size_t size() const { return size_; }
    explicit operator bool() const { return data_ != nullptr; }

  private:
    friend class ScratchArena;
    ScratchBuffer(std::unique_ptr<u64[]> data, size_t size)
        : data_(std::move(data)), size_(size)
    {
    }

    std::unique_ptr<u64[]> data_;
    size_t size_ = 0;
};

/** Per-thread slab pool. Use ScratchArena::local(). */
class ScratchArena
{
  public:
    /** Cumulative acquire outcomes across all threads. */
    struct Stats
    {
        u64 hits = 0;   ///< acquire served from the pool
        u64 misses = 0; ///< acquire paid a heap allocation
    };

    /** The calling thread's arena (created on first use). */
    static ScratchArena &local();

    /** A slab of exactly @p elems u64s — pooled when available. */
    ScratchBuffer acquire(size_t elems);

    /** Snapshot of the global hit/miss counters. */
    static Stats stats();

    /** Reset the global counters (bench/test bookkeeping). */
    static void resetStats();

    /** Drop every pooled slab on this thread (tests; memory cap). */
    void clear() { pool_.clear(); }

  private:
    friend class ScratchBuffer;
    void release(std::unique_ptr<u64[]> data, size_t elems);

    /** Exact-size buckets: hot paths cycle a handful of distinct
     *  shapes, so exact matching never over-allocates and stays O(log
     *  buckets) without a size-class scheme. */
    std::map<size_t, std::vector<std::unique_ptr<u64[]>>> pool_;
};

} // namespace trinity

#endif // TRINITY_BACKEND_SCRATCH_ARENA_H
