/**
 * @file
 * Per-limb kernel implementations selectable by SIMD level, plus the
 * runtime CPU dispatch that picks one.
 *
 * Trinity's BUs and PEs get their throughput from wide vector lanes
 * doing modular butterflies and Barrett/Shoup multiplies in parallel;
 * the software counterpart is a KernelSet — one function pointer per
 * limb kernel (forward/inverse NTT, the Barrett-reduced element-wise
 * family, Shoup scalar multiply, the table-driven Galois automorphism
 * gather, and the two BConv passes) — with scalar, AVX2, and AVX-512
 * implementations. Every implementation computes the exact canonical
 * residues the scalar reference produces, so engines composed from any
 * set are bit-identical.
 *
 * Dispatch order is AVX-512 → AVX2 → scalar, constrained by what the
 * build compiled in (CMake probes -mavx2 / -mavx512f -mavx512dq per
 * kernel file) and what CPUID reports at run time. TRINITY_SIMD_LEVEL
 * ("scalar" | "avx2" | "avx512", strictly parsed) forces a level;
 * forcing one the build or CPU cannot run is fatal — a benchmark must
 * never silently measure a narrower lane than it claims.
 */

#ifndef TRINITY_BACKEND_SIMD_KERNELS_H
#define TRINITY_BACKEND_SIMD_KERNELS_H

#include <cstddef>
#include <string>

#include "common/modarith.h"
#include "common/types.h"

namespace trinity {

class NttTable;

namespace simd {

enum class Level
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Canonical knob spelling for a level ("scalar", "avx2", "avx512"). */
const char *levelName(Level level);

/**
 * One limb-kernel implementation per batched entry point. All
 * functions operate on a single job's span; batching across jobs
 * (threads, serial order) stays with the owning engine — threads
 * across limbs, SIMD within a limb.
 */
struct KernelSet
{
    Level level;
    size_t lanes; ///< u64 lanes per vector op (1 / 4 / 8)

    /** In-place negacyclic NTT over table.n() coefficients. */
    void (*nttForward)(const NttTable &table, u64 *a);
    void (*nttInverse)(const NttTable &table, u64 *a);

    /**
     * Stage-range NTT entry points (NttTable::forwardStages /
     * inverseStages semantics): run stages [stageLo, stageHi) over the
     * butterfly range [bLo, bHi) only, with vector butterflies inside
     * the range. These are what lets the coefficient-tiled thread-pool
     * executor keep wide lanes busy inside every tile — threads across
     * coefficient chunks, lanes within a chunk — while remaining
     * bit-identical to the monolithic kernels above.
     */
    void (*nttForwardStages)(const NttTable &table, u64 *a,
                             size_t stageLo, size_t stageHi, size_t bLo,
                             size_t bHi);
    /** Inverse stage range; scaleN folds N^{-1} into the final stage. */
    void (*nttInverseStages)(const NttTable &table, u64 *a,
                             size_t stageLo, size_t stageHi, size_t bLo,
                             size_t bHi, bool scaleN);

    /**
     * Fused epilogue: forward NTT of `a` in place, then immediately
     * acc0[i] += a[i]*b0[i] and (when acc1 != nullptr)
     * acc1[i] += a[i]*b1[i] (mod q) while the transformed limb is hot
     * in cache. Exactly nttForward followed by mulAdd — keyswitch and
     * lockstep PBS hit this pairing on every digit.
     */
    void (*nttForwardMulAdd)(const NttTable &table, u64 *a,
                             const u64 *b0, u64 *acc0, const u64 *b1,
                             u64 *acc1);

    /** Fused epilogue: inverse NTT of `a` (scaling folded into the
     *  final stage), then acc[i] = acc[i] + a[i] (mod q). */
    void (*nttInverseAdd)(const NttTable &table, u64 *a, u64 *acc);

    /** dst[i] = a[i] op b[i] (mod q); dst may alias a or b exactly. */
    void (*add)(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
                size_t n);
    void (*sub)(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
                size_t n);
    void (*neg)(u64 *dst, const u64 *a, const Modulus &mod, size_t n);
    void (*mul)(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
                size_t n);
    /** dst[i] = a[i] * b[i] + dst[i] (mod q). */
    void (*mulAdd)(u64 *dst, const u64 *a, const u64 *b,
                   const Modulus &mod, size_t n);
    /** dst[i] = src[i] * scalar (mod q), Shoup with one precompute. */
    void (*scalarMul)(u64 *dst, const u64 *src, u64 scalar,
                      const Modulus &mod, size_t n);

    /**
     * Table-driven Galois automorphism (tables from AutoTableCache,
     * see backend/auto_table.h): dst[c] = src[perm[c]], negated where
     * signMask[c] is all-ones. dst must not alias src.
     */
    void (*automorphism)(u64 *dst, const u64 *src, const u64 *perm,
                         const u64 *signMask, const Modulus &mod,
                         size_t n);

    /**
     * BConv pass 1: v[c] = x[c] * w mod q, Shoup with the plan's
     * precomputed preconditioner (qhatInv rows come preconditioned, so
     * no per-call division happens here).
     */
    void (*bconvPass1)(u64 *v, const u64 *x, u64 w, u64 wPrecon,
                       const Modulus &mod, size_t n);

    /**
     * BConv pass 2 for one target limb over an n-coefficient tile:
     * y[c] = (sum_i v[i*vStride + c] * w[i*wStride]) mod q. Products
     * accumulate raw (unreduced) in 128 bits for up to kBconvChunk
     * terms — safe because v, w < 2^62 — with one exact Barrett fold
     * per chunk. Every implementation computes the same fully reduced
     * value, so lane width and chunk boundaries never change outputs.
     */
    void (*bconvPass2)(u64 *y, const u64 *v, size_t vStride, size_t k,
                       const u64 *w, size_t wStride, const Modulus &mod,
                       size_t n);
};

/**
 * Max raw u128 products summed between pass-2 folds: 16 products of
 * two values < 2^62 total < 2^128, so the accumulator cannot wrap.
 */
constexpr size_t kBconvChunk = 16;

/** The bit-exact scalar set — the reference every wider set matches. */
const KernelSet &scalarKernels();

/** AVX2 set, or nullptr when the build lacks -mavx2 support. */
const KernelSet *avx2KernelsOrNull();

/** AVX-512 (F+DQ) set, or nullptr when not compiled in. */
const KernelSet *avx512KernelsOrNull();

/** Highest level this CPU can execute (CPUID probe). */
Level detectCpuLevel();

/** True when @p level is both compiled in and runnable on this CPU. */
bool levelAvailable(Level level);

/** Highest available level — the auto-dispatch choice. */
Level bestAvailableLevel();

/** Comma-separated available levels, for messages and banners. */
std::string availableLevels();

/**
 * Resolve the level to run: TRINITY_SIMD_LEVEL when set (strictly
 * parsed; fatal on an unknown value or an unavailable level), else
 * bestAvailableLevel().
 */
Level resolveLevel();

/** The KernelSet for @p level; fatal when the level is unavailable. */
const KernelSet &kernelsForLevel(Level level);

} // namespace simd
} // namespace trinity

#endif // TRINITY_BACKEND_SIMD_KERNELS_H
