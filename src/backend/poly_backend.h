/**
 * @file
 * Pluggable polynomial execution engine — the seam between the scheme
 * layers (CKKS, TFHE, conversion) and whatever actually runs the limb
 * kernels.
 *
 * Trinity's premise (Section III) is that every FHE workload bottoms
 * out in a small set of batchable polynomial kernels — NTT, ModMul,
 * ModAdd, Auto, BConv — that an accelerator executes in bulk. The
 * software stack mirrors that: scheme code emits *batches* of limb
 * jobs through the PolyBackend interface, and an interchangeable
 * engine (serial reference, thread pool, AVX2/AVX-512 SIMD lanes, a
 * simulated-accelerator timing model, and in the future GPU) owns the
 * execution. Two orthogonal axes compose: parallelFor() schedules
 * jobs across workers, and an installable simd::KernelSet executes
 * each job's span — the thread pool runs SIMD kernels inside every
 * limb job.
 *
 * A batch is a flat array of plain-old-data job descriptors over raw
 * limb pointers, so an engine can partition, reorder, or offload jobs
 * freely. Every job in a batch is independent (distinct destination
 * buffers); engines may run them in any order and must produce
 * bit-identical results to the serial reference.
 */

#ifndef TRINITY_BACKEND_POLY_BACKEND_H
#define TRINITY_BACKEND_POLY_BACKEND_H

#include <cstddef>
#include <functional>
#include <memory>

#include "backend/simd_kernels.h"
#include "common/modarith.h"
#include "common/types.h"
#include "poly/ntt.h"

namespace trinity {

class CommandStream;

/** One in-place NTT over a single limb. */
struct NttJob
{
    u64 *data;            ///< limb coefficients, length table->n()
    const NttTable *table;
};

/**
 * One element-wise limb kernel: dst[i] = a[i] op b[i] (mod *mod).
 * For unary kernels (negate) @c b is ignored; @c a may alias @c dst.
 */
struct EltwiseJob
{
    u64 *dst;
    const u64 *a;
    const u64 *b;
    const Modulus *mod;
    size_t n;
};

/** One fused multiply-accumulate: dst[i] += a[i] * b[i] (mod *mod). */
struct MulAddJob
{
    u64 *dst;
    const u64 *a;
    const u64 *b;
    const Modulus *mod;
    size_t n;
};

/**
 * One fused forward-NTT + multiply-accumulate: NTT(data) in place,
 * then acc0[i] += data[i]*b0[i] and — when acc1 is non-null —
 * acc1[i] += data[i]*b1[i]. The keyswitch inner loop in one job: the
 * freshly transformed limb feeds both evk components while it is hot
 * in cache instead of round-tripping through memory.
 */
struct NttMulAddJob
{
    u64 *data;             ///< limb to transform, length table->n()
    const NttTable *table;
    const u64 *b0;         ///< first multiplicand (eval domain)
    u64 *acc0;             ///< first accumulator
    const u64 *b1;         ///< second multiplicand, or nullptr
    u64 *acc1;             ///< second accumulator, or nullptr
};

/** One fused inverse-NTT + accumulate: iNTT(data) in place, then
 *  acc[i] = acc[i] + data[i] (mod table's modulus). The external-
 *  product epilogue (CMux accumulate) in one job. */
struct NttInvAddJob
{
    u64 *data;             ///< limb to inverse-transform
    const NttTable *table;
    u64 *acc;              ///< accumulator, length table->n()
};

/** One scalar multiply: dst[i] = src[i] * scalar (mod *mod). */
struct ScalarMulJob
{
    u64 *dst;
    const u64 *src;
    u64 scalar; ///< already reduced mod *mod
    const Modulus *mod;
    size_t n;
};

/**
 * One Galois automorphism X -> X^g over a limb (coefficient domain).
 * dst must not alias src.
 */
struct AutoJob
{
    u64 *dst;
    const u64 *src;
    const Modulus *mod;
    size_t n;
    u64 g; ///< odd automorphism index
};

/**
 * Precomputed constants for one HPS base conversion (the BConv matrix
 * product Trinity maps onto CU systolic arrays). All pointers borrow
 * from the owning BaseConverter and stay valid for the call only.
 */
struct BConvPlan
{
    const Modulus *fromMods; ///< k source moduli
    size_t numFrom;
    const Modulus *toMods;   ///< l target moduli
    size_t numTo;
    const u64 *qhatInv;        ///< (Q/q_i)^{-1} mod q_i, length k
    const u64 *qhatInvPrecon;  ///< Shoup preconditioners for qhatInv
    const u64 *qhatModP;       ///< (Q/q_i) mod p_j, row-major [i*numTo + j]
};

/**
 * BConv pass 1 for one source limb: v[c] = x[c] * w mod *mod, with w
 * Shoup-preconditioned by the plan. Independent per source limb.
 */
struct BConvPass1Job
{
    u64 *v;        ///< scratch row for this source limb
    const u64 *x;  ///< source limb coefficients
    u64 w;         ///< qhatInv[i]
    u64 wPrecon;   ///< Shoup preconditioner for w
    const Modulus *mod;
    size_t n;
};

/**
 * BConv pass 2 for one target limb over a coefficient tile:
 * y[c] = reduce128(sum_i reduce(v[i*vStride + c]) * w[i*wStride]).
 * Tiles of the same target limb write disjoint spans, so a batch may
 * mix tiles of many (limb, coefficient-range) pairs freely.
 */
struct BConvPass2Job
{
    u64 *y;          ///< target limb span (tile base)
    const u64 *v;    ///< pass-1 scratch (tile base)
    size_t vStride;  ///< row stride of v (full n, even for tiles)
    size_t k;        ///< number of source limbs summed
    const u64 *w;    ///< qhatModP column base for this target limb
    size_t wStride;  ///< row stride of w (numTo)
    const Modulus *mod;
    size_t n;        ///< tile length
};

/**
 * Abstract polynomial execution engine.
 *
 * The batched entry points have default implementations that express
 * each kernel through parallelFor(), so a concrete engine only has to
 * supply a scheduling strategy. Engines with their own kernel
 * implementations (GPU, simulated accelerator) override the batch
 * methods directly.
 */
class PolyBackend
{
  public:
    virtual ~PolyBackend() = default;

    /** Engine name as registered ("serial", "threads", ...). */
    virtual const char *name() const = 0;

    /** Number of concurrent workers the engine schedules across. */
    virtual size_t threadCount() const { return 1; }

    /**
     * Batch-sizing hint for serving layers: how many independent
     * same-shape work items (e.g. ciphertexts in a fused PBS batch)
     * the engine wants in flight before its throughput saturates.
     * Engines with real parallelism report at least their worker
     * count; even single-stream engines profit from key-reuse
     * locality across a batch, hence the floor of 8.
     */
    virtual size_t
    preferredBatch() const
    {
        size_t t = threadCount();
        return t < 8 ? 8 : t;
    }

    /**
     * Open an asynchronous command stream (see
     * backend/command_stream.h): callers record dependent batch jobs
     * and the engine executes them with whatever overlap its executor
     * supports. The default is the eager executor — every command
     * runs at record time through the blocking entry points, so
     * engines without their own executor behave exactly as before.
     * Engines with real concurrency (thread pool) or a timing model
     * (sim) override this with pipelined / overlap-priced executors.
     */
    virtual std::unique_ptr<CommandStream> newStream();

    /** Forward negacyclic NTT over a batch of limbs. */
    virtual void nttForwardBatch(const NttJob *jobs, size_t count);
    /** Inverse negacyclic NTT over a batch of limbs. */
    virtual void nttInverseBatch(const NttJob *jobs, size_t count);

    /** dst = a ⊙ b per job (the ModMul kernel). */
    virtual void pointwiseMulBatch(const EltwiseJob *jobs, size_t count);
    /** dst = a + b per job. */
    virtual void addBatch(const EltwiseJob *jobs, size_t count);
    /** dst = a - b per job. */
    virtual void subBatch(const EltwiseJob *jobs, size_t count);
    /** dst = -a per job (b ignored). */
    virtual void negBatch(const EltwiseJob *jobs, size_t count);
    /** dst += a ⊙ b per job (the keyswitch inner-product kernel). */
    virtual void mulAddBatch(const MulAddJob *jobs, size_t count);
    /** Fused forward NTT + accumulate per job (keyswitch digits). */
    virtual void nttForwardMulAddBatch(const NttMulAddJob *jobs,
                                       size_t count);
    /** Fused inverse NTT + accumulate per job (external products). */
    virtual void nttInverseAddBatch(const NttInvAddJob *jobs,
                                    size_t count);
    /** dst = src * scalar per job. */
    virtual void scalarMulBatch(const ScalarMulJob *jobs, size_t count);
    /** Galois automorphism per job (the AutoU kernel). */
    virtual void automorphismBatch(const AutoJob *jobs, size_t count);

    /**
     * HPS base conversion (BConv): k coefficient-domain source limbs
     * in[0..k) to l target limbs out[0..l), each of length n. Runs
     * both passes through the phased batch entry points below over
     * backend-owned thread-local scratch (no per-call allocation).
     */
    virtual void baseConvert(const BConvPlan &plan, const u64 *const *in,
                             u64 *const *out, size_t n);

    /** BConv pass 1 (Shoup scaling) over a batch of source limbs. */
    virtual void baseConvertPass1Batch(const BConvPass1Job *jobs,
                                       size_t count);
    /** BConv pass 2 (matrix product) over a batch of limb tiles. */
    virtual void baseConvertPass2Batch(const BConvPass2Job *jobs,
                                       size_t count);

    /**
     * Escape hatch for fused kernels the named entry points do not
     * cover (rescale, ModDown scaling, ...): runs fn(0..count) with
     * the engine's parallelism. fn must only touch disjoint state per
     * index.
     */
    void
    run(size_t count, const std::function<void(size_t)> &fn)
    {
        parallelFor(count, fn);
    }

  protected:
    /**
     * Scheduling primitive: execute fn(i) for every i in [0, count),
     * in any order, returning only when all calls finished.
     */
    virtual void parallelFor(size_t count,
                             const std::function<void(size_t)> &fn) = 0;

    /**
     * Limb-kernel implementation the default batch entry points run
     * per job — the second composition axis next to parallelFor():
     * parallelFor schedules jobs across workers (threads across
     * limbs), the KernelSet executes one job's span (SIMD within a
     * limb). Defaults to the bit-exact scalar set; engines with
     * vector lanes install a wider one. Every set computes identical
     * canonical residues, so the choice never changes results.
     */
    void useKernels(const simd::KernelSet &kernels)
    {
        kernels_ = &kernels;
    }

    const simd::KernelSet &kernels() const { return *kernels_; }

  private:
    const simd::KernelSet *kernels_ = &simd::scalarKernels();
};

} // namespace trinity

#endif // TRINITY_BACKEND_POLY_BACKEND_H
