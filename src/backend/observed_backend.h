/**
 * @file
 * Decorator engine that forwards every batch to an inner PolyBackend
 * while publishing one KernelEvent per batch through the observer
 * seam. Wrapping is purely additive: results are bit-identical to the
 * inner engine, so any engine — serial, threads, future SIMD/GPU —
 * can be profiled without touching its code.
 */

#ifndef TRINITY_BACKEND_OBSERVED_BACKEND_H
#define TRINITY_BACKEND_OBSERVED_BACKEND_H

#include <memory>

#include "backend/observer.h"
#include "backend/poly_backend.h"

namespace trinity {

class ObservedBackend : public PolyBackend
{
  public:
    /** Takes ownership of the engine that actually runs the kernels. */
    explicit ObservedBackend(std::unique_ptr<PolyBackend> inner);

    const char *name() const override { return "observed"; }
    size_t threadCount() const override { return inner_->threadCount(); }
    size_t preferredBatch() const override
    {
        return inner_->preferredBatch();
    }

    PolyBackend &inner() { return *inner_; }

    void nttForwardBatch(const NttJob *jobs, size_t count) override;
    void nttInverseBatch(const NttJob *jobs, size_t count) override;
    void pointwiseMulBatch(const EltwiseJob *jobs, size_t count) override;
    void addBatch(const EltwiseJob *jobs, size_t count) override;
    void subBatch(const EltwiseJob *jobs, size_t count) override;
    void negBatch(const EltwiseJob *jobs, size_t count) override;
    void mulAddBatch(const MulAddJob *jobs, size_t count) override;
    void nttForwardMulAddBatch(const NttMulAddJob *jobs,
                               size_t count) override;
    void nttInverseAddBatch(const NttInvAddJob *jobs,
                            size_t count) override;
    void scalarMulBatch(const ScalarMulJob *jobs, size_t count) override;
    void automorphismBatch(const AutoJob *jobs, size_t count) override;
    void baseConvert(const BConvPlan &plan, const u64 *const *in,
                     u64 *const *out, size_t n) override;

  protected:
    /** The untyped escape hatch carries no kernel class; it is only
     *  scheduled, not profiled — scheme layers emit those kernels
     *  explicitly (see backend/observer.h). */
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &fn) override;

  private:
    std::unique_ptr<PolyBackend> inner_;
};

} // namespace trinity

#endif // TRINITY_BACKEND_OBSERVED_BACKEND_H
