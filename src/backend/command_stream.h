/**
 * @file
 * Asynchronous command-stream execution API.
 *
 * Trinity keeps every pool busy by overlapping dependent kernel stages
 * (the paper's scheduler pipelines the NTT of blind-rotation step i+1
 * under the MAC of step i). The blocking PolyBackend batch calls cannot
 * express that: every call is a full barrier. A CommandStream is the
 * asynchronous counterpart — callers *record* the existing batch ops
 * (NTT, the element-wise family, mulAdd, automorphism, BConv, plus the
 * untyped task kernels the scheme layers emit explicitly) as jobs with
 * explicit event dependencies, then submit() the stream and wait() for
 * completion:
 *
 *     auto stream = activeBackend().newStream();
 *     Job ntt = stream->nttForward(jobs);           // no deps
 *     Job mac = stream->mulAdd(macJobs, {ntt});     // after the NTT
 *     stream->submit();
 *     stream->wait();
 *
 * Execution policy is the engine's choice:
 *  - the default EagerStream executes each command at record time in
 *    record order through the blocking entry points, so serial/simd
 *    engines behave exactly as before;
 *  - ThreadPoolBackend runs a dependency-counting pipelined executor
 *    over its worker pool, overlapping independent commands;
 *  - SimBackend executes functionally at record time and, at submit,
 *    charges the recorded DAG through Machine::canRun/charge with
 *    cross-pool overlap (a live list-schedule instead of sequential
 *    charging).
 *
 * Contract: every recorded resource (job buffers, task captures, the
 * BConvPlan's tables) must stay valid until wait() returns, and two
 * commands may touch the same memory only when ordered by a dependency
 * chain. Results are bit-identical to issuing the same ops through the
 * blocking entry points in record order, on every engine — modular
 * arithmetic is exact, so any dependency-respecting execution order
 * produces the same canonical residues.
 *
 * TRINITY_STREAMS=off forces every engine's newStream() to the eager
 * executor (the sync baseline for A/B runs); default is "on".
 */

#ifndef TRINITY_BACKEND_COMMAND_STREAM_H
#define TRINITY_BACKEND_COMMAND_STREAM_H

#include <functional>
#include <vector>

#include "backend/observer.h"
#include "backend/poly_backend.h"
#include "backend/scratch_arena.h"

namespace trinity {

/**
 * Handle to one recorded command; returned by the record calls and
 * passed as a dependency to later ones. Default-constructed handles
 * are invalid and are silently ignored in dependency lists (so a
 * "previous iteration" handle needs no special-casing on the first
 * iteration).
 */
struct Job
{
    static constexpr u32 kInvalid = 0xffffffffu;
    u32 id = kInvalid;

    bool valid() const { return id != kInvalid; }
};

/** An event fence is itself a recorded (empty) job — see fence(). */
using Event = Job;

/** True unless TRINITY_STREAMS=off forces eager execution. */
bool streamsEnabled();

/**
 * Programmatic override of streamsEnabled() for in-process A/B runs
 * (the sync-vs-stream bench rows): 0 forces eager, 1 forces the
 * engine executor, -1 restores the TRINITY_STREAMS default.
 */
void overrideStreams(int mode);

class CommandStream
{
  public:
    explicit CommandStream(PolyBackend &owner);
    virtual ~CommandStream() = default;

    CommandStream(const CommandStream &) = delete;
    CommandStream &operator=(const CommandStream &) = delete;

    // --- recording -------------------------------------------------------
    // Each call records one command made of independent jobs (the same
    // descriptors the blocking batch entry points take, owned by the
    // stream) and returns its handle. @p deps lists commands that must
    // complete before this one runs; invalid handles are skipped.

    Job nttForward(std::vector<NttJob> jobs, std::vector<Job> deps = {});
    Job nttInverse(std::vector<NttJob> jobs, std::vector<Job> deps = {});
    Job pointwiseMul(std::vector<EltwiseJob> jobs,
                     std::vector<Job> deps = {});
    Job add(std::vector<EltwiseJob> jobs, std::vector<Job> deps = {});
    Job sub(std::vector<EltwiseJob> jobs, std::vector<Job> deps = {});
    Job neg(std::vector<EltwiseJob> jobs, std::vector<Job> deps = {});
    Job mulAdd(std::vector<MulAddJob> jobs, std::vector<Job> deps = {});
    /** Fused forward NTT + multiply-accumulate (keyswitch digits):
     *  prices as an Ntt event chained into an Ip event, matching the
     *  unfused pair the fusion replaces. */
    Job nttForwardMulAdd(std::vector<NttMulAddJob> jobs,
                         std::vector<Job> deps = {});
    /** Fused inverse NTT + accumulate (external-product epilogue):
     *  prices as an Intt event chained into a ModAdd event. */
    Job nttInverseAdd(std::vector<NttInvAddJob> jobs,
                      std::vector<Job> deps = {});
    Job scalarMul(std::vector<ScalarMulJob> jobs,
                  std::vector<Job> deps = {});
    Job automorphism(std::vector<AutoJob> jobs,
                     std::vector<Job> deps = {});
    Job baseConvert(const BConvPlan &plan, std::vector<const u64 *> in,
                    std::vector<u64 *> out, size_t n,
                    std::vector<Job> deps = {});

    /**
     * Phase-chunked BConv recording: one pass-1 command (a job per
     * source limb, writing stream-owned scratch) followed by one
     * pass-2 command per *target limb*, each split into coefficient-
     * tile jobs and depending only on pass 1. Returns the per-target-
     * limb pass-2 handles, so a caller can hang each output limb's
     * follow-up (its NTT in hybrid keyswitch) off just the command
     * that produces it — the executor then spreads the k x l matrix
     * product across the pool and overlaps finished limbs' NTTs with
     * the tail of the conversion, instead of serializing behind one
     * monolithic BConv unit. Results are bit-identical to
     * baseConvert() on every engine.
     */
    std::vector<Job> baseConvertPhased(const BConvPlan &plan,
                                       std::vector<const u64 *> in,
                                       std::vector<u64 *> out, size_t n,
                                       std::vector<Job> deps = {});

    /**
     * Record an untyped parallel task (the streamed counterpart of the
     * run() escape hatch): fn(0..count) with the engine's parallelism,
     * disjoint state per index. @p events announces the kernels the
     * task performs to the profiling/timing seam, replacing the
     * explicit emitKernel() calls of the blocking path.
     */
    Job task(size_t count, std::function<void(size_t)> fn,
             std::vector<Job> deps = {},
             std::vector<KernelEvent> events = {});

    /** Record a fence: an empty job depending on every command
     *  recorded so far. Waiting on the returned event (by depending on
     *  it) orders later commands after the whole prefix. */
    Event fence();

    // --- execution -------------------------------------------------------

    /** Close recording and hand the stream to the engine's executor.
     *  Recording after submit, or submitting twice, is fatal. */
    void submit();

    /** Block until every recorded command has completed. Fatal on an
     *  unsubmitted stream — a wait() that could never finish. */
    void wait();

    /** Commands recorded so far. */
    size_t recorded() const { return cmds_.size(); }

    /**
     * True when execution is deferred to submit() — recorded buffers
     * are then live until wait(), so a recording site must keep every
     * command's buffers distinct. False when commands execute at
     * record time (eager, sim), where a site may reuse one scratch
     * buffer across commands it records back to back.
     */
    virtual bool deferredExecution() const { return false; }

    /** Process-unique serial of this stream instance. Job handles are
     *  only meaningful within the stream that issued them; callers
     *  caching handles across calls (CmuxBatchScratch) compare ids —
     *  never stream addresses, which the allocator recycles. */
    u64 id() const { return id_; }

    PolyBackend &backend() { return owner_; }

  protected:
    enum class Op
    {
        NttFwd,
        NttInv,
        Mul,
        Add,
        Sub,
        Neg,
        MulAdd,
        NttMulAdd, ///< fused forward NTT + multiply-accumulate
        NttInvAdd, ///< fused inverse NTT + accumulate
        ScalarMul,
        Auto,
        BConv,
        BConvP1, ///< phase-chunked pass 1: one job per source limb
        BConvP2, ///< phase-chunked pass 2: one target limb, tile jobs
        Task,
        Fence,
    };

    /** One recorded command: op + owned job descriptors + deps. */
    struct Command
    {
        Op op = Op::Fence;
        std::vector<NttJob> ntt;
        std::vector<EltwiseJob> elt;
        std::vector<MulAddJob> mad;
        std::vector<NttMulAddJob> nma;
        std::vector<NttInvAddJob> nia;
        std::vector<ScalarMulJob> smul;
        std::vector<AutoJob> aut;
        BConvPlan plan{};
        std::vector<const u64 *> bconvIn;
        std::vector<u64 *> bconvOut;
        size_t bconvN = 0;
        u64 *bconvV = nullptr;   ///< stream-owned pass-1 scratch
        size_t bconvLimb = 0;    ///< BConvP2: target limb index
        size_t bconvTile = 0;    ///< BConvP2: coefficients per tile job
        size_t bconvTiles = 0;   ///< BConvP2: number of tile jobs
        size_t taskCount = 0;
        std::function<void(size_t)> fn;
        /** Kernel metadata (scope stamped at record time) — what the
         *  blocking path would have announced to the observer seam. */
        std::vector<KernelEvent> events;
        std::vector<u32> deps; ///< earlier command indices

        /** Independently schedulable work items inside the command. */
        size_t jobCount() const;

        /** Drop the job descriptors and the task closure (and the
         *  events too unless @p keep_events) once an executor is done
         *  with them — eager executors call this from onRecord so a
         *  long recording does not hold every payload until wait(). */
        void clearPayload(bool keep_events);
    };

    /** Called once per record with the just-appended command; eager
     *  executors run it here (and may clearPayload), deferred
     *  executors do nothing. */
    virtual void onRecord(Command &c) = 0;

    /** Called by submit() after recording closes. */
    virtual void onSubmit() {}

    /** Called by wait(); deferred executors block here. */
    virtual void onWait() {}

    /** Stable display name of @p op ("nttFwd", "bconvP2", ...) for
     *  trace spans and diagnostics. */
    static const char *opName(Op op);

    /** Run a whole command through @p b's blocking entry points. Task
     *  commands run via b.run(); no kernel events are emitted — the
     *  caller owns emission policy. */
    static void executeBlocking(PolyBackend &b, const Command &c);

    /** Run job @p i of @p c on the calling thread (single-job batch
     *  through @p b, so the engine's KernelSet applies). */
    static void executeJob(PolyBackend &b, const Command &c, size_t i);

    std::vector<Command> cmds_;
    PolyBackend &owner_;
    bool submitted_ = false;
    /** Derive KernelEvents for the named batch ops at record time.
     *  Only the overlap-pricing executor reads them (the eager path
     *  emits through the engine's own decorator and the pipelined
     *  path never priced named ops), so the default skips the
     *  per-record O(jobs) derivation. Task events are caller-provided
     *  and always kept. */
    bool recordEvents_ = false;

  private:
    Job record(Command c, std::vector<Job> deps);

    u64 id_;
    /** Pass-1 scratch rows owned by the stream so phased BConv data
     *  stays valid until wait() on deferred executors. One entry per
     *  baseConvertPhased() call; the outer vector may grow (entries
     *  are separate slabs, so recorded pointers stay stable). Slabs
     *  come from the recording thread's ScratchArena and return to it
     *  when the stream dies — steady-state recording allocates
     *  nothing. */
    std::vector<ScratchBuffer> scratch_;
};

/**
 * Default executor: every command runs at record time, in record
 * order, through the owner's blocking batch entry points — submit()
 * and wait() only validate the protocol. Single-stream engines
 * (serial, simd) are therefore byte-for-byte unchanged by stream
 * migration, and TRINITY_STREAMS=off gives every engine this policy.
 */
class EagerStream final : public CommandStream
{
  public:
    using CommandStream::CommandStream;

  protected:
    void onRecord(Command &c) override;
};

/**
 * Width-restoring eager executor: commands still run in record order
 * on the recording thread, but adjacent commands of the same batchable
 * op whose dependencies do not cross are held in a window and executed
 * as ONE wide batch call when the window closes (different op, a
 * dependency into the window, fence/submit).
 *
 * Rationale: recording sites tuned for pipelined executors split work
 * into narrow per-limb commands so the dependency graph is fine-
 * grained (hybrid keyswitch records one NTT command per conversion
 * output limb). On an engine that executes eagerly that granularity
 * is pure overhead — l dispatches of 1 job instead of one dispatch of
 * l jobs, defeating the engine's cross-job scheduling. Coalescing
 * restores the wide batches without the recording site caring which
 * executor it talks to. Window members are mutually independent by
 * construction, so batch-call job order equals record order and
 * results stay bit-identical.
 *
 * Reports deferredExecution() = true: a buffered command's payload is
 * read at flush time, so recording sites must keep per-command buffers
 * distinct, exactly as for a pipelined executor.
 */
class CoalescingEagerStream final : public CommandStream
{
  public:
    using CommandStream::CommandStream;

    bool deferredExecution() const override { return true; }

  protected:
    void onRecord(Command &c) override;
    void onSubmit() override { flush(); }

  private:
    static bool coalescible(Op op);
    bool depInWindow(const Command &c) const;
    void flush();
    void executeNow(Command &c);

    std::vector<u32> window_; ///< buffered command indices, one op
    Op windowOp_ = Op::Fence;
};

} // namespace trinity

#endif // TRINITY_BACKEND_COMMAND_STREAM_H
