/**
 * @file
 * Reference implementations of the kernels the optimized engines
 * reimplement with tables, lazy folds, and vector lanes. These are
 * the seed recurrences, kept deliberately direct: correctness is
 * visible at a glance, and the equivalence tests pin every other
 * engine to these outputs bit for bit.
 */

#include "backend/serial_backend.h"

#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {

void
SerialBackend::automorphismBatch(const AutoJob *jobs, size_t count)
{
    static obs::Counter &njobs =
        obs::MetricsRegistry::instance().counter("kernel.auto.jobs");
    njobs.add(count);
    obs::TraceSpan span("automorphismBatch", "op", name(), "jobs",
                        count);
    for (size_t i = 0; i < count; ++i) {
        const AutoJob &j = jobs[i];
        size_t two_n = 2 * j.n;
        for (size_t c = 0; c < j.n; ++c) {
            u64 e = (static_cast<u64>(c) * j.g) % two_n;
            if (e < j.n) {
                j.dst[e] = j.src[c];
            } else {
                j.dst[e - j.n] = j.mod->neg(j.src[c]);
            }
        }
    }
}

void
SerialBackend::baseConvert(const BConvPlan &plan, const u64 *const *in,
                           u64 *const *out, size_t n)
{
    size_t k = plan.numFrom;
    size_t l = plan.numTo;
    static obs::Counter &calls =
        obs::MetricsRegistry::instance().counter("kernel.bconv.calls");
    static obs::Counter &njobs =
        obs::MetricsRegistry::instance().counter("kernel.bconv.jobs");
    calls.add();
    njobs.add(k + l);
    obs::TraceSpan span("baseConvert", "op", name(), "jobs", k + l);
    // Pass 1 (element-wise): v_i = [x_i * (Q/q_i)^{-1}]_{q_i}.
    std::vector<u64> v(k * n);
    for (size_t i = 0; i < k; ++i) {
        const Modulus &qi = plan.fromMods[i];
        u64 w = plan.qhatInv[i];
        u64 pre = plan.qhatInvPrecon[i];
        u64 *vi = v.data() + i * n;
        const u64 *xi = in[i];
        for (size_t c = 0; c < n; ++c) {
            vi[c] = qi.mulShoup(xi[c], w, pre);
        }
    }
    // Pass 2 (the matrix product): y_j = sum_i v_i * (Q/q_i) mod p_j.
    // Every term is reduced before it enters the 128-bit accumulator,
    // so the sum is trivially in range for any number of source limbs.
    for (size_t j = 0; j < l; ++j) {
        const Modulus &pj = plan.toMods[j];
        u64 *yj = out[j];
        for (size_t c = 0; c < n; ++c) {
            u128 acc = 0;
            for (size_t i = 0; i < k; ++i) {
                acc += static_cast<u128>(pj.reduce(v[i * n + c])) *
                       plan.qhatModP[i * l + j];
            }
            yj[c] = pj.reduce128(acc);
        }
    }
}

} // namespace trinity
