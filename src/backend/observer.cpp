#include "backend/observer.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <vector>

#include "common/logging.h"

namespace trinity {

namespace {

std::mutex g_observerMtx;
std::vector<BackendObserver *> g_observers;
std::atomic<int> g_observerCount{0};

/** Per-thread scope stack; events are attributed to the bottom. */
thread_local std::vector<const char *> tls_scopes;

} // namespace

void
installObserver(BackendObserver *obs)
{
    trinity_assert(obs != nullptr, "null observer");
    std::lock_guard<std::mutex> lock(g_observerMtx);
    g_observers.push_back(obs);
    g_observerCount.store(static_cast<int>(g_observers.size()),
                          std::memory_order_release);
}

void
removeObserver(BackendObserver *obs)
{
    std::lock_guard<std::mutex> lock(g_observerMtx);
    g_observers.erase(
        std::remove(g_observers.begin(), g_observers.end(), obs),
        g_observers.end());
    g_observerCount.store(static_cast<int>(g_observers.size()),
                          std::memory_order_release);
}

bool
profilingActive()
{
    return g_observerCount.load(std::memory_order_acquire) > 0;
}

void
emitKernel(KernelEvent ev)
{
    ev.scope = currentOpScope();
    emitKernelPrestamped(ev);
}

void
emitKernelPrestamped(const KernelEvent &ev)
{
    if (!profilingActive()) {
        return;
    }
    std::lock_guard<std::mutex> lock(g_observerMtx);
    for (BackendObserver *obs : g_observers) {
        obs->onKernel(ev);
    }
}

void
emitKernel(sim::KernelType type, u64 elements, u64 poly_len)
{
    KernelEvent ev;
    ev.type = type;
    ev.elements = elements;
    ev.polyLen = poly_len;
    ev.bytes = 16 * elements; // operand read + result write
    emitKernel(ev);
}

OpScope::OpScope(const char *label)
{
    tls_scopes.push_back(label);
}

OpScope::~OpScope()
{
    tls_scopes.pop_back();
}

const char *
currentOpScope()
{
    return tls_scopes.empty() ? "" : tls_scopes.front();
}

} // namespace trinity
