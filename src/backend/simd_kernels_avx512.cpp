/**
 * @file
 * AVX-512 (F+DQ) KernelSet: 8-lane butterflies and element-wise
 * lanes. Compiled with -mavx512f -mavx512dq via per-file CMake flags;
 * degrades to a "not compiled in" stub otherwise.
 *
 * DQ's native 64-bit mullo plus mask registers shrink the modular
 * primitives; the 64x64 high half is still composed from 32x32
 * partials (no general mulhi_epu64 exists — IFMA would cap moduli at
 * 52 bits, below this repo's 62-bit bound). Butterfly spans narrower
 * than 8 lanes (t ∈ {1,2,4}) run the shared 256-bit stage kernels
 * from simd_avx_inl.h, so the whole network stays vectorized.
 */

#include "backend/simd_kernels.h"

#if defined(__AVX512F__) && defined(__AVX512DQ__)

#include <immintrin.h>

// GCC's avx512 headers expand plain intrinsics (_mm512_mul_epu32,
// _mm512_srli_epi64, ...) through _mm512_undefined_epi32(), which
// trips -Wmaybe-uninitialized falsely on every use site.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

#include "backend/simd_avx_inl.h"
#include "poly/ntt.h"

namespace trinity {
namespace simd {

namespace {

inline __m512i
loadu512(const u64 *p)
{
    return _mm512_loadu_si512(p);
}

inline void
storeu512(u64 *p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

inline __m512i
bcast512(u64 x)
{
    return _mm512_set1_epi64(static_cast<long long>(x));
}

/** High 64 bits of the unsigned 64x64 product per lane. */
inline __m512i
mulhi64x8(__m512i a, __m512i b)
{
    const __m512i m32 = bcast512(0xffffffffULL);
    __m512i a_hi = _mm512_srli_epi64(a, 32);
    __m512i b_hi = _mm512_srli_epi64(b, 32);
    __m512i ll = _mm512_mul_epu32(a, b);
    __m512i lh = _mm512_mul_epu32(a, b_hi);
    __m512i hl = _mm512_mul_epu32(a_hi, b);
    __m512i hh = _mm512_mul_epu32(a_hi, b_hi);
    __m512i cross = _mm512_add_epi64(
        _mm512_add_epi64(_mm512_srli_epi64(ll, 32),
                         _mm512_and_si512(lh, m32)),
        _mm512_and_si512(hl, m32));
    return _mm512_add_epi64(
        _mm512_add_epi64(hh, _mm512_srli_epi64(cross, 32)),
        _mm512_add_epi64(_mm512_srli_epi64(lh, 32),
                         _mm512_srli_epi64(hl, 32)));
}

/** a + b mod q for reduced inputs (mask-subtract, unsigned compare). */
inline __m512i
addmodx8(__m512i a, __m512i b, __m512i q)
{
    __m512i s = _mm512_add_epi64(a, b);
    __mmask8 ge = _mm512_cmpge_epu64_mask(s, q);
    return _mm512_mask_sub_epi64(s, ge, s, q);
}

/** a - b mod q for reduced inputs. */
inline __m512i
submodx8(__m512i a, __m512i b, __m512i q)
{
    __m512i d = _mm512_sub_epi64(a, b);
    __mmask8 borrow = _mm512_cmplt_epu64_mask(a, b);
    return _mm512_mask_add_epi64(d, borrow, d, q);
}

/** -a mod q (0 stays 0). */
inline __m512i
negmodx8(__m512i a, __m512i q)
{
    __mmask8 nz = _mm512_test_epi64_mask(a, a);
    return _mm512_mask_sub_epi64(_mm512_setzero_si512(), nz, q, a);
}

/** Shoup multiply by constant w, exact canonical result. */
inline __m512i
mulshoupx8(__m512i a, __m512i w, __m512i wpre, __m512i q)
{
    __m512i quot = mulhi64x8(a, wpre);
    __m512i r = _mm512_sub_epi64(_mm512_mullo_epi64(a, w),
                                 _mm512_mullo_epi64(quot, q));
    __mmask8 ge = _mm512_cmpge_epu64_mask(r, q);
    return _mm512_mask_sub_epi64(r, ge, r, q);
}

/** Exact (z_hi·2^64 + z_lo) mod q — reduce128() lane-parallel. */
inline __m512i
barrett128x8(__m512i z_lo, __m512i z_hi, __m512i q, __m512i b_lo,
             __m512i b_hi)
{
    const __m512i one = bcast512(1);
    __m512i c_ll = mulhi64x8(z_lo, b_lo);
    __m512i lh_lo = _mm512_mullo_epi64(z_lo, b_hi);
    __m512i lh_hi = mulhi64x8(z_lo, b_hi);
    __m512i hl_lo = _mm512_mullo_epi64(z_hi, b_lo);
    __m512i hl_hi = mulhi64x8(z_hi, b_lo);
    __m512i hh_lo = _mm512_mullo_epi64(z_hi, b_hi);
    __m512i s1 = _mm512_add_epi64(c_ll, lh_lo);
    __mmask8 carry1 = _mm512_cmplt_epu64_mask(s1, c_ll);
    __m512i s2 = _mm512_add_epi64(s1, hl_lo);
    __mmask8 carry2 = _mm512_cmplt_epu64_mask(s2, hl_lo);
    __m512i q_est = _mm512_add_epi64(
        hh_lo, _mm512_add_epi64(lh_hi, hl_hi));
    q_est = _mm512_mask_add_epi64(q_est, carry1, q_est, one);
    q_est = _mm512_mask_add_epi64(q_est, carry2, q_est, one);
    __m512i r =
        _mm512_sub_epi64(z_lo, _mm512_mullo_epi64(q_est, q));
    __mmask8 ge = _mm512_cmpge_epu64_mask(r, q);
    return _mm512_mask_sub_epi64(r, ge, r, q);
}

/** Forward stage range with t >= 8: zmm lanes, per-block j-subranges
 *  (vector body + scalar tail; unaligned loads allow any start). */
inline void
fwdStageRangeVecZmm(const Modulus &mod, u64 *a, size_t m, size_t t,
                    const u64 *tw, const u64 *twp, __m512i q,
                    size_t bLo, size_t bHi)
{
    size_t iLo = bLo / t;
    size_t iHi = (bHi + t - 1) / t;
    for (size_t i = iLo; i < iHi; ++i) {
        __m512i s = bcast512(tw[m + i]);
        __m512i sp = bcast512(twp[m + i]);
        size_t lo = bLo > i * t ? bLo - i * t : 0;
        size_t hi = bHi < (i + 1) * t ? bHi - i * t : t;
        u64 *p = a + 2 * i * t;
        size_t j = lo;
        for (; j + 8 <= hi; j += 8) {
            __m512i u = loadu512(p + j);
            __m512i v = mulshoupx8(loadu512(p + j + t), s, sp, q);
            storeu512(p + j, addmodx8(u, v, q));
            storeu512(p + j + t, submodx8(u, v, q));
        }
        for (; j < hi; ++j) {
            u64 u = p[j];
            u64 v = mod.mulShoup(p[j + t], tw[m + i], twp[m + i]);
            p[j] = mod.add(u, v);
            p[j + t] = mod.sub(u, v);
        }
    }
}

/** Inverse stage range with t >= 8. */
inline void
invStageRangeVecZmm(const Modulus &mod, u64 *a, size_t h, size_t t,
                    const u64 *tw, const u64 *twp, __m512i q,
                    size_t bLo, size_t bHi)
{
    size_t iLo = bLo / t;
    size_t iHi = (bHi + t - 1) / t;
    for (size_t i = iLo; i < iHi; ++i) {
        __m512i s = bcast512(tw[h + i]);
        __m512i sp = bcast512(twp[h + i]);
        size_t lo = bLo > i * t ? bLo - i * t : 0;
        size_t hi = bHi < (i + 1) * t ? bHi - i * t : t;
        u64 *p = a + 2 * i * t;
        size_t j = lo;
        for (; j + 8 <= hi; j += 8) {
            __m512i u = loadu512(p + j);
            __m512i v = loadu512(p + j + t);
            storeu512(p + j, addmodx8(u, v, q));
            storeu512(p + j + t,
                      mulshoupx8(submodx8(u, v, q), s, sp, q));
        }
        for (; j < hi; ++j) {
            u64 u = p[j];
            u64 v = p[j + t];
            p[j] = mod.add(u, v);
            p[j + t] =
                mod.mulShoup(mod.sub(u, v), tw[h + i], twp[h + i]);
        }
    }
}

/** Final inverse stage (one block, t == n/2 >= 8) with N^{-1} folded
 *  into both butterfly outputs. */
inline void
invStageRangeFusedZmm(const Modulus &mod, u64 *a, size_t t, u64 nInv,
                      u64 nInvP, u64 sL, u64 sLp, __m512i q, size_t bLo,
                      size_t bHi)
{
    __m512i ni = bcast512(nInv);
    __m512i nip = bcast512(nInvP);
    __m512i s = bcast512(sL);
    __m512i sp = bcast512(sLp);
    size_t j = bLo;
    for (; j + 8 <= bHi; j += 8) {
        __m512i u = loadu512(a + j);
        __m512i v = loadu512(a + j + t);
        storeu512(a + j, mulshoupx8(addmodx8(u, v, q), ni, nip, q));
        storeu512(a + j + t,
                  mulshoupx8(submodx8(u, v, q), s, sp, q));
    }
    for (; j < bHi; ++j) {
        u64 u = a[j];
        u64 v = a[j + t];
        a[j] = mod.mulShoup(mod.add(u, v), nInv, nInvP);
        a[j + t] = mod.mulShoup(mod.sub(u, v), sL, sLp);
    }
}

void
nttForwardAvx512(const NttTable &table, u64 *a)
{
    const size_t n = table.n();
    if (n < 8) {
        table.forward(a);
        return;
    }
    const u64 *tw = table.psiBr().data();
    const u64 *twp = table.psiBrPrecon().data();
    const __m512i q = bcast512(table.modulus().value());
    const __m256i q4 = bcast256(table.modulus().value());
    size_t t = n;
    for (size_t m = 1; m < n; m <<= 1) {
        t >>= 1;
        if (t >= 8) {
            for (size_t i = 0; i < m; ++i) {
                __m512i s = bcast512(tw[m + i]);
                __m512i sp = bcast512(twp[m + i]);
                u64 *p = a + 2 * i * t;
                for (size_t j = 0; j < t; j += 8) {
                    __m512i u = loadu512(p + j);
                    __m512i v =
                        mulshoupx8(loadu512(p + j + t), s, sp, q);
                    storeu512(p + j, addmodx8(u, v, q));
                    storeu512(p + j + t, submodx8(u, v, q));
                }
            }
        } else if (t == 4) {
            fwdStageVecYmm(a, m, t, tw, twp, q4);
        } else if (t == 2) {
            fwdStageT2Ymm(a, m, tw, twp, q4);
        } else {
            fwdStageT1Ymm(a, m, tw, twp, q4);
        }
    }
}

void
nttInverseAvx512(const NttTable &table, u64 *a)
{
    const size_t n = table.n();
    if (n < 8) {
        table.inverse(a);
        return;
    }
    const u64 *tw = table.ipsiBr().data();
    const u64 *twp = table.ipsiBrPrecon().data();
    const __m512i q = bcast512(table.modulus().value());
    const __m256i q4 = bcast256(table.modulus().value());
    size_t t = 1;
    for (size_t m = n; m > 1; m >>= 1) {
        size_t h = m >> 1;
        if (t >= 8) {
            for (size_t i = 0; i < h; ++i) {
                __m512i s = bcast512(tw[h + i]);
                __m512i sp = bcast512(twp[h + i]);
                u64 *p = a + 2 * i * t;
                for (size_t j = 0; j < t; j += 8) {
                    __m512i u = loadu512(p + j);
                    __m512i v = loadu512(p + j + t);
                    storeu512(p + j, addmodx8(u, v, q));
                    storeu512(p + j + t,
                              mulshoupx8(submodx8(u, v, q), s, sp, q));
                }
            }
        } else if (t == 4) {
            invStageVecYmm(a, h, t, tw, twp, q4);
        } else if (t == 2) {
            invStageT2Ymm(a, h, tw, twp, q4);
        } else {
            invStageT1Ymm(a, h, tw, twp, q4);
        }
        t <<= 1;
        if (m == 4) {
            break; // final stage handled fused below
        }
    }
    // Final stage with N^{-1} folded into both outputs — replaces the
    // separate whole-vector scaling pass (exact, so bit-identical).
    if (n / 2 >= 8) {
        invStageRangeFusedZmm(table.modulus(), a, n / 2, table.nInv(),
                              table.nInvPrecon(),
                              table.ipsiLastScaled(),
                              table.ipsiLastScaledPrecon(), q, 0,
                              n / 2);
    } else {
        invStageRangeFusedYmm(table.modulus(), a, n / 2, table.nInv(),
                              table.nInvPrecon(),
                              table.ipsiLastScaled(),
                              table.ipsiLastScaledPrecon(), q4, 0,
                              n / 2);
    }
}

void
nttForwardStagesAvx512(const NttTable &table, u64 *a, size_t stage_lo,
                       size_t stage_hi, size_t b_lo, size_t b_hi)
{
    const size_t n = table.n();
    if (n < 8) {
        table.forwardStages(a, stage_lo, stage_hi, b_lo, b_hi);
        return;
    }
    const Modulus &mod = table.modulus();
    const u64 *tw = table.psiBr().data();
    const u64 *twp = table.psiBrPrecon().data();
    const __m512i q = bcast512(mod.value());
    const __m256i q4 = bcast256(mod.value());
    for (size_t s = stage_lo; s < stage_hi; ++s) {
        size_t m = size_t{1} << s;
        size_t t = n >> (s + 1);
        if (t >= 8) {
            fwdStageRangeVecZmm(mod, a, m, t, tw, twp, q, b_lo, b_hi);
        } else if (t == 4) {
            fwdStageRangeVecYmm(mod, a, m, t, tw, twp, q4, b_lo, b_hi);
        } else if (t == 2) {
            fwdStageRangeT2Ymm(mod, a, m, tw, twp, q4, b_lo, b_hi);
        } else {
            fwdStageRangeT1Ymm(mod, a, m, tw, twp, q4, b_lo, b_hi);
        }
    }
}

void
nttInverseStagesAvx512(const NttTable &table, u64 *a, size_t stage_lo,
                       size_t stage_hi, size_t b_lo, size_t b_hi,
                       bool scale_n)
{
    const size_t n = table.n();
    if (n < 8) {
        table.inverseStages(a, stage_lo, stage_hi, b_lo, b_hi, scale_n);
        return;
    }
    const Modulus &mod = table.modulus();
    const u64 *tw = table.ipsiBr().data();
    const u64 *twp = table.ipsiBrPrecon().data();
    const __m512i q = bcast512(mod.value());
    const __m256i q4 = bcast256(mod.value());
    const size_t logn = table.logn();
    for (size_t s = stage_lo; s < stage_hi; ++s) {
        size_t h = n >> (s + 1);
        size_t t = size_t{1} << s;
        if (scale_n && s + 1 == logn) {
            if (t >= 8) {
                invStageRangeFusedZmm(mod, a, t, table.nInv(),
                                      table.nInvPrecon(),
                                      table.ipsiLastScaled(),
                                      table.ipsiLastScaledPrecon(), q,
                                      b_lo, b_hi);
            } else {
                invStageRangeFusedYmm(mod, a, t, table.nInv(),
                                      table.nInvPrecon(),
                                      table.ipsiLastScaled(),
                                      table.ipsiLastScaledPrecon(), q4,
                                      b_lo, b_hi);
            }
        } else if (t >= 8) {
            invStageRangeVecZmm(mod, a, h, t, tw, twp, q, b_lo, b_hi);
        } else if (t == 4) {
            invStageRangeVecYmm(mod, a, h, t, tw, twp, q4, b_lo, b_hi);
        } else if (t == 2) {
            invStageRangeT2Ymm(mod, a, h, tw, twp, q4, b_lo, b_hi);
        } else {
            invStageRangeT1Ymm(mod, a, h, tw, twp, q4, b_lo, b_hi);
        }
    }
}

void mulAddAvx512(u64 *dst, const u64 *a, const u64 *b,
                  const Modulus &mod, size_t n);
void addAvx512(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
               size_t n);

void
nttForwardMulAddAvx512(const NttTable &table, u64 *a, const u64 *b0,
                       u64 *acc0, const u64 *b1, u64 *acc1)
{
    nttForwardAvx512(table, a);
    mulAddAvx512(acc0, a, b0, table.modulus(), table.n());
    if (acc1 != nullptr) {
        mulAddAvx512(acc1, a, b1, table.modulus(), table.n());
    }
}

void
nttInverseAddAvx512(const NttTable &table, u64 *a, u64 *acc)
{
    nttInverseAvx512(table, a);
    addAvx512(acc, acc, a, table.modulus(), table.n());
}

void
addAvx512(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
          size_t n)
{
    const __m512i q = bcast512(mod.value());
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        storeu512(dst + c,
                  addmodx8(loadu512(a + c), loadu512(b + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.add(a[c], b[c]);
    }
}

void
subAvx512(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
          size_t n)
{
    const __m512i q = bcast512(mod.value());
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        storeu512(dst + c,
                  submodx8(loadu512(a + c), loadu512(b + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.sub(a[c], b[c]);
    }
}

void
negAvx512(u64 *dst, const u64 *a, const Modulus &mod, size_t n)
{
    const __m512i q = bcast512(mod.value());
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        storeu512(dst + c, negmodx8(loadu512(a + c), q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.neg(a[c]);
    }
}

void
mulAvx512(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
          size_t n)
{
    const __m512i q = bcast512(mod.value());
    const __m512i b_lo = bcast512(mod.barrettLo());
    const __m512i b_hi = bcast512(mod.barrettHi());
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        __m512i x = loadu512(a + c);
        __m512i y = loadu512(b + c);
        storeu512(dst + c,
                  barrett128x8(_mm512_mullo_epi64(x, y),
                               mulhi64x8(x, y), q, b_lo, b_hi));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mul(a[c], b[c]);
    }
}

void
mulAddAvx512(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
             size_t n)
{
    const __m512i q = bcast512(mod.value());
    const __m512i b_lo = bcast512(mod.barrettLo());
    const __m512i b_hi = bcast512(mod.barrettHi());
    const __m512i one = bcast512(1);
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        __m512i x = loadu512(a + c);
        __m512i y = loadu512(b + c);
        __m512i z_lo = _mm512_mullo_epi64(x, y);
        __m512i z_hi = mulhi64x8(x, y);
        __m512i d = loadu512(dst + c);
        __m512i s = _mm512_add_epi64(z_lo, d);
        __mmask8 carry = _mm512_cmplt_epu64_mask(s, d);
        z_hi = _mm512_mask_add_epi64(z_hi, carry, z_hi, one);
        storeu512(dst + c, barrett128x8(s, z_hi, q, b_lo, b_hi));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mulAdd(a[c], b[c], dst[c]);
    }
}

void
scalarMulAvx512(u64 *dst, const u64 *src, u64 scalar,
                const Modulus &mod, size_t n)
{
    u64 pre = mod.shoupPrecompute(scalar);
    const __m512i q = bcast512(mod.value());
    const __m512i w = bcast512(scalar);
    const __m512i wp = bcast512(pre);
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        storeu512(dst + c, mulshoupx8(loadu512(src + c), w, wp, q));
    }
    for (; c < n; ++c) {
        dst[c] = mod.mulShoup(src[c], scalar, pre);
    }
}

void
automorphismAvx512(u64 *dst, const u64 *src, const u64 *perm,
                   const u64 *sign, const Modulus &mod, size_t n)
{
    const __m512i q = bcast512(mod.value());
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        __m512i x = _mm512_i64gather_epi64(loadu512(perm + c),
                                           src, 8);
        // signMask lanes are 0 or ~0; testing them yields the mask of
        // lanes the table marked negated (0 stays 0 in negmodx8).
        __mmask8 neg =
            _mm512_test_epi64_mask(loadu512(sign + c),
                                   loadu512(sign + c));
        storeu512(dst + c,
                  _mm512_mask_mov_epi64(x, neg, negmodx8(x, q)));
    }
    for (; c < n; ++c) {
        u64 x = src[perm[c]];
        dst[c] = sign[c] ? mod.neg(x) : x;
    }
}

void
bconvPass1Avx512(u64 *v, const u64 *x, u64 w, u64 w_pre,
                 const Modulus &mod, size_t n)
{
    const __m512i q = bcast512(mod.value());
    const __m512i wv = bcast512(w);
    const __m512i wp = bcast512(w_pre);
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        storeu512(v + c, mulshoupx8(loadu512(x + c), wv, wp, q));
    }
    for (; c < n; ++c) {
        v[c] = mod.mulShoup(x[c], w, w_pre);
    }
}

void
bconvPass2Avx512(u64 *y, const u64 *v, size_t v_stride, size_t k,
                 const u64 *w, size_t w_stride, const Modulus &mod,
                 size_t n)
{
    const __m512i q = bcast512(mod.value());
    const __m512i b_lo = bcast512(mod.barrettLo());
    const __m512i b_hi = bcast512(mod.barrettHi());
    const __m512i one = bcast512(1);
    const __m512i zero = _mm512_setzero_si512();
    size_t c = 0;
    for (; c + 8 <= n; c += 8) {
        // Lazy accumulation: raw 128-bit products, one Barrett fold
        // per kBconvChunk terms (v, w < 2^62 keeps the sum in range).
        // The fold is an exact mod, so the running residue equals the
        // scalar kernel's value no matter how the sum is chunked.
        __m512i r = zero;
        size_t i = 0;
        while (i < k) {
            size_t end = i + kBconvChunk < k ? i + kBconvChunk : k;
            __m512i acc_lo = zero;
            __m512i acc_hi = zero;
            for (; i < end; ++i) {
                __m512i vi = loadu512(v + i * v_stride + c);
                __m512i wi = bcast512(w[i * w_stride]);
                __m512i z_lo = _mm512_mullo_epi64(vi, wi);
                __m512i z_hi = mulhi64x8(vi, wi);
                __m512i s = _mm512_add_epi64(acc_lo, z_lo);
                __mmask8 carry = _mm512_cmplt_epu64_mask(s, acc_lo);
                acc_lo = s;
                acc_hi = _mm512_add_epi64(acc_hi, z_hi);
                acc_hi =
                    _mm512_mask_add_epi64(acc_hi, carry, acc_hi, one);
            }
            r = addmodx8(
                r, barrett128x8(acc_lo, acc_hi, q, b_lo, b_hi), q);
        }
        storeu512(y + c, r);
    }
    for (; c < n; ++c) {
        u64 r = 0;
        size_t i = 0;
        while (i < k) {
            size_t end = i + kBconvChunk < k ? i + kBconvChunk : k;
            u128 acc = 0;
            for (; i < end; ++i) {
                acc += static_cast<u128>(v[i * v_stride + c]) *
                       w[i * w_stride];
            }
            r = mod.add(r, mod.reduce128(acc));
        }
        y[c] = r;
    }
}

} // namespace

const KernelSet *
avx512KernelsOrNull()
{
    static const KernelSet set = {
        Level::Avx512,          8,
        nttForwardAvx512,       nttInverseAvx512,
        nttForwardStagesAvx512, nttInverseStagesAvx512,
        nttForwardMulAddAvx512, nttInverseAddAvx512,
        addAvx512,              subAvx512,
        negAvx512,              mulAvx512,
        mulAddAvx512,           scalarMulAvx512,
        automorphismAvx512,     bconvPass1Avx512,
        bconvPass2Avx512,
    };
    return &set;
}

} // namespace simd
} // namespace trinity

#else // !(__AVX512F__ && __AVX512DQ__)

namespace trinity {
namespace simd {

const KernelSet *
avx512KernelsOrNull()
{
    return nullptr;
}

} // namespace simd
} // namespace trinity

#endif // __AVX512F__ && __AVX512DQ__
