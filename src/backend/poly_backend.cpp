#include "backend/poly_backend.h"

#include <vector>

#include "backend/auto_table.h"
#include "backend/command_stream.h"
#include "backend/scratch_arena.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {

std::unique_ptr<CommandStream>
PolyBackend::newStream()
{
    return std::make_unique<EagerStream>(*this);
}

// Observability: every batch entry point opens a wall-clock TraceSpan
// on the calling thread (track = engine name, so each engine gets its
// own pid row in the Chrome trace) and bumps a dispatch counter. Both
// are one relaxed atomic load when tracing/metrics are off; the
// counter references are resolved once per call site via function-
// local statics so the registry map is never touched on the hot path.

namespace {

obs::Counter &
dispatchCounter(const char *name)
{
    return obs::MetricsRegistry::instance().counter(name);
}

} // namespace

// Every named limb kernel — including the automorphism gather and the
// two BConv passes — runs through the installed simd::KernelSet
// (scalar by default, the reference every wider set is bit-identical
// to), scheduled across jobs by parallelFor(). Automorphism fetches
// its permutation/sign tables from AutoTableCache so the per-call cost
// is a pure gather; BConv decomposes into the pass-1 Shoup scaling and
// the pass-2 matrix product the accelerator maps onto CU arrays.

void
PolyBackend::nttForwardBatch(const NttJob *jobs, size_t count)
{
    static obs::Counter &batches = dispatchCounter("kernel.ntt.batches");
    static obs::Counter &njobs = dispatchCounter("kernel.ntt.jobs");
    batches.add();
    njobs.add(count);
    obs::TraceSpan span("nttForwardBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        kernels().nttForward(*jobs[i].table, jobs[i].data);
    });
}

void
PolyBackend::nttInverseBatch(const NttJob *jobs, size_t count)
{
    static obs::Counter &batches = dispatchCounter("kernel.ntt.batches");
    static obs::Counter &njobs = dispatchCounter("kernel.ntt.jobs");
    batches.add();
    njobs.add(count);
    obs::TraceSpan span("nttInverseBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        kernels().nttInverse(*jobs[i].table, jobs[i].data);
    });
}

void
PolyBackend::pointwiseMulBatch(const EltwiseJob *jobs, size_t count)
{
    obs::TraceSpan span("pointwiseMulBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().mul(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::addBatch(const EltwiseJob *jobs, size_t count)
{
    obs::TraceSpan span("addBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().add(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::subBatch(const EltwiseJob *jobs, size_t count)
{
    obs::TraceSpan span("subBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().sub(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::negBatch(const EltwiseJob *jobs, size_t count)
{
    obs::TraceSpan span("negBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().neg(j.dst, j.a, *j.mod, j.n);
    });
}

void
PolyBackend::mulAddBatch(const MulAddJob *jobs, size_t count)
{
    obs::TraceSpan span("mulAddBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        const MulAddJob &j = jobs[i];
        kernels().mulAdd(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::nttForwardMulAddBatch(const NttMulAddJob *jobs,
                                   size_t count)
{
    static obs::Counter &batches = dispatchCounter("kernel.ntt.batches");
    static obs::Counter &njobs = dispatchCounter("kernel.ntt.jobs");
    batches.add();
    njobs.add(count);
    obs::TraceSpan span("nttForwardMulAddBatch", "op", name(), "jobs",
                        count);
    parallelFor(count, [&](size_t i) {
        const NttMulAddJob &j = jobs[i];
        kernels().nttForwardMulAdd(*j.table, j.data, j.b0, j.acc0, j.b1,
                                   j.acc1);
    });
}

void
PolyBackend::nttInverseAddBatch(const NttInvAddJob *jobs, size_t count)
{
    static obs::Counter &batches = dispatchCounter("kernel.ntt.batches");
    static obs::Counter &njobs = dispatchCounter("kernel.ntt.jobs");
    batches.add();
    njobs.add(count);
    obs::TraceSpan span("nttInverseAddBatch", "op", name(), "jobs",
                        count);
    parallelFor(count, [&](size_t i) {
        const NttInvAddJob &j = jobs[i];
        kernels().nttInverseAdd(*j.table, j.data, j.acc);
    });
}

void
PolyBackend::scalarMulBatch(const ScalarMulJob *jobs, size_t count)
{
    obs::TraceSpan span("scalarMulBatch", "op", name(), "jobs", count);
    parallelFor(count, [&](size_t i) {
        const ScalarMulJob &j = jobs[i];
        kernels().scalarMul(j.dst, j.src, j.scalar, *j.mod, j.n);
    });
}

void
PolyBackend::automorphismBatch(const AutoJob *jobs, size_t count)
{
    if (count == 0) {
        return;
    }
    static obs::Counter &njobs = dispatchCounter("kernel.auto.jobs");
    njobs.add(count);
    obs::TraceSpan span("automorphismBatch", "op", name(), "jobs",
                        count);
    // RnsPoly batches share one (n, g) across all limbs — resolve the
    // table once outside the parallel region so workers never contend
    // on the cache mutex for the common case.
    auto shared = AutoTableCache::get(jobs[0].n, jobs[0].g);
    parallelFor(count, [&](size_t i) {
        const AutoJob &j = jobs[i];
        auto table = (j.n == shared->n() && j.g == shared->g())
                         ? shared
                         : AutoTableCache::get(j.n, j.g);
        kernels().automorphism(j.dst, j.src, table->perm(),
                               table->signMask(), *j.mod, j.n);
    });
}

void
PolyBackend::baseConvert(const BConvPlan &plan, const u64 *const *in,
                         u64 *const *out, size_t n)
{
    size_t k = plan.numFrom;
    size_t l = plan.numTo;
    static obs::Counter &calls = dispatchCounter("kernel.bconv.calls");
    static obs::Counter &njobs = dispatchCounter("kernel.bconv.jobs");
    calls.add();
    njobs.add(k + l);
    obs::TraceSpan span("baseConvert", "op", name(), "jobs", k + l);
    // Pass 1 (element-wise): v_i = [x_i * (Q/q_i)^{-1}]_{q_i}.
    // Pooled scratch: after the first conversion of a given (k, n)
    // shape on a thread, the slab comes from the arena — no per-call
    // heap allocation in the BConv hot path.
    ScratchBuffer slab = ScratchArena::local().acquire(k * n);
    u64 *v = slab.data();
    parallelFor(k, [&](size_t i) {
        kernels().bconvPass1(v + i * n, in[i], plan.qhatInv[i],
                             plan.qhatInvPrecon[i], plan.fromMods[i],
                             n);
    });
    // Pass 2 (the matrix product): y_j = sum_i v_i * (Q/q_i) mod p_j.
    parallelFor(l, [&](size_t j) {
        kernels().bconvPass2(out[j], v, n, k, plan.qhatModP + j, l,
                             plan.toMods[j], n);
    });
}

void
PolyBackend::baseConvertPass1Batch(const BConvPass1Job *jobs,
                                   size_t count)
{
    static obs::Counter &njobs = dispatchCounter("kernel.bconv.jobs");
    njobs.add(count);
    obs::TraceSpan span("baseConvertPass1Batch", "op", name(), "jobs",
                        count);
    parallelFor(count, [&](size_t i) {
        const BConvPass1Job &j = jobs[i];
        kernels().bconvPass1(j.v, j.x, j.w, j.wPrecon, *j.mod, j.n);
    });
}

void
PolyBackend::baseConvertPass2Batch(const BConvPass2Job *jobs,
                                   size_t count)
{
    static obs::Counter &njobs = dispatchCounter("kernel.bconv.jobs");
    njobs.add(count);
    obs::TraceSpan span("baseConvertPass2Batch", "op", name(), "jobs",
                        count);
    parallelFor(count, [&](size_t i) {
        const BConvPass2Job &j = jobs[i];
        kernels().bconvPass2(j.y, j.v, j.vStride, j.k, j.w, j.wStride,
                             *j.mod, j.n);
    });
}

} // namespace trinity
