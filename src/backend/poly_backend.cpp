#include "backend/poly_backend.h"

#include <vector>

#include "backend/command_stream.h"
#include "common/logging.h"

namespace trinity {

std::unique_ptr<CommandStream>
PolyBackend::newStream()
{
    return std::make_unique<EagerStream>(*this);
}

// The named limb kernels run through the installed simd::KernelSet
// (scalar by default — the reference every wider set is bit-identical
// to), scheduled across jobs by parallelFor(). Automorphism and BConv
// keep dedicated scalar bodies: both are permutation/matrix shapes the
// accelerator maps onto AutoU / CU structures rather than plain lanes,
// and neither is on the measured hot path the SIMD sets target.

void
PolyBackend::nttForwardBatch(const NttJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        kernels().nttForward(*jobs[i].table, jobs[i].data);
    });
}

void
PolyBackend::nttInverseBatch(const NttJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        kernels().nttInverse(*jobs[i].table, jobs[i].data);
    });
}

void
PolyBackend::pointwiseMulBatch(const EltwiseJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().mul(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::addBatch(const EltwiseJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().add(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::subBatch(const EltwiseJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().sub(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::negBatch(const EltwiseJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const EltwiseJob &j = jobs[i];
        kernels().neg(j.dst, j.a, *j.mod, j.n);
    });
}

void
PolyBackend::mulAddBatch(const MulAddJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const MulAddJob &j = jobs[i];
        kernels().mulAdd(j.dst, j.a, j.b, *j.mod, j.n);
    });
}

void
PolyBackend::scalarMulBatch(const ScalarMulJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const ScalarMulJob &j = jobs[i];
        kernels().scalarMul(j.dst, j.src, j.scalar, *j.mod, j.n);
    });
}

void
PolyBackend::automorphismBatch(const AutoJob *jobs, size_t count)
{
    parallelFor(count, [&](size_t i) {
        const AutoJob &j = jobs[i];
        size_t two_n = 2 * j.n;
        for (size_t c = 0; c < j.n; ++c) {
            u64 e = (static_cast<u64>(c) * j.g) % two_n;
            if (e < j.n) {
                j.dst[e] = j.src[c];
            } else {
                j.dst[e - j.n] = j.mod->neg(j.src[c]);
            }
        }
    });
}

void
PolyBackend::baseConvert(const BConvPlan &plan, const u64 *const *in,
                         u64 *const *out, size_t n)
{
    size_t k = plan.numFrom;
    size_t l = plan.numTo;
    // Pass 1 (element-wise): v_i = [x_i * (Q/q_i)^{-1}]_{q_i}.
    std::vector<u64> v(k * n);
    parallelFor(k, [&](size_t i) {
        const Modulus &qi = plan.fromMods[i];
        u64 w = plan.qhatInv[i];
        u64 pre = plan.qhatInvPrecon[i];
        u64 *vi = v.data() + i * n;
        const u64 *xi = in[i];
        for (size_t c = 0; c < n; ++c) {
            vi[c] = qi.mulShoup(xi[c], w, pre);
        }
    });
    // Pass 2 (the matrix product): y_j = sum_i v_i * (Q/q_i) mod p_j.
    parallelFor(l, [&](size_t j) {
        const Modulus &pj = plan.toMods[j];
        u64 *yj = out[j];
        for (size_t c = 0; c < n; ++c) {
            u128 acc = 0;
            for (size_t i = 0; i < k; ++i) {
                acc += static_cast<u128>(pj.reduce(v[i * n + c])) *
                       plan.qhatModP[i * l + j];
            }
            yj[c] = pj.reduce128(acc);
        }
    });
}

} // namespace trinity
