#include "backend/thread_pool_backend.h"

#include <atomic>
#include <deque>
#include <memory>
#include <utility>

#include "backend/command_stream.h"
#include "common/bitops.h"
#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace trinity {

namespace {

/**
 * Set while a pool worker executes jobs. A kernel that re-enters the
 * backend from inside a job (e.g. a Poly op nested in a fused
 * consumer kernel) must not block on the pool it is running on, so
 * nested batches run inline on the worker instead.
 */
thread_local bool tls_in_worker = false;

size_t
resolveThreadCount(size_t threads)
{
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 1;
    }
    if (threads == 0) {
        u64 parsed = 0;
        if (envU64("TRINITY_THREADS", parsed)) {
            if (parsed == 0) {
                trinity_fatal("invalid TRINITY_THREADS value '0': "
                              "expected a positive integer");
            }
            threads = static_cast<size_t>(parsed);
            if (threads > hw) {
                trinity_warn("TRINITY_THREADS=%zu exceeds hardware "
                             "concurrency (%zu); clamping",
                             threads, hw);
                threads = hw;
            }
        }
    }
    return threads == 0 ? hw : threads;
}

} // namespace

/**
 * Pipelined command-stream executor with per-worker deques and
 * randomized work stealing. Every pool worker (plus the submitting
 * thread) owns a deque of (command, job) pairs; a worker pops its own
 * deque from the back (LIFO — the jobs it just unlocked are hot in its
 * cache) and steals from random victims' fronts (FIFO — the oldest,
 * coldest work travels). The former single mutex-guarded ready queue
 * made every job claim a serialization point, which at ~μs job sizes
 * (one limb kernel) throttled the pool; per-slot locks shrink the
 * critical section to one deque operation and contended claims spread
 * across nslots mutexes.
 *
 * Dependency tracking is atomic: each command counts completed jobs
 * and unresolved dependencies; the worker finishing a command's last
 * job resolves its dependents and pushes any newly-ready command's
 * jobs onto its OWN deque (stealers rebalance if it is slow). Zero-job
 * commands (fences) complete recursively at resolution. Idle workers
 * probe random victims, then sweep every slot once against an epoch
 * counter snapshotted under the idle lock — a pusher bumps the epoch
 * after publishing work, so a worker only parks when its sweep saw a
 * world no push has changed since (no lost wakeups). The seq_cst
 * atomic chains and the deque mutexes establish the happens-before
 * edges of every dependency, so results stay bit-identical to eager
 * record-order execution and the executor is clean under TSan.
 */
class PipelinedStream final : public CommandStream
{
  public:
    using CommandStream::CommandStream;

    bool deferredExecution() const override { return true; }

  protected:
    void
    onRecord(Command &) override
    {
        // Deferred: execution happens at submit().
    }

    void
    onSubmit() override
    {
        // Blocking-path parity: escape-hatch kernels announce their
        // recorded metadata in record order (named ops on this engine
        // never emitted events — there is no decorator here). The
        // events carry their record-time scope, so deliver them
        // without the emission-time restamp.
        if (profilingActive()) {
            for (const Command &c : cmds_) {
                if (c.op == Op::Task) {
                    for (const KernelEvent &ev : c.events) {
                        emitKernelPrestamped(ev);
                    }
                }
            }
        }
        execute();
    }

  private:
    /** One worker's deque. Own pops take the back, steals take the
     *  front; the mutex guards only the deque itself. */
    struct Slot
    {
        std::mutex mtx;
        std::deque<std::pair<u32, u32>> q; ///< (command, job) pairs
    };

    void
    execute()
    {
        size_t n = cmds_.size();
        if (n == 0) {
            return;
        }
        PolyBackend &b = owner_;
        const size_t nslots = b.threadCount();
        std::vector<Slot> slots(nslots);
        std::vector<std::vector<u32>> dependents(n);
        std::unique_ptr<std::atomic<size_t>[]> deps_left(
            new std::atomic<size_t>[n]);
        std::unique_ptr<std::atomic<size_t>[]> done_jobs(
            new std::atomic<size_t>[n]);
        std::atomic<size_t> remaining{n};
        std::mutex idle_mtx;
        std::condition_variable idle_cv;
        u64 epoch = 0; // guarded by idle_mtx

        for (size_t i = 0; i < n; ++i) {
            deps_left[i].store(cmds_[i].deps.size(),
                               std::memory_order_relaxed);
            done_jobs[i].store(0, std::memory_order_relaxed);
            for (u32 d : cmds_[i].deps) {
                dependents[d].push_back(static_cast<u32>(i));
            }
        }

        // Publish-then-bump: work becomes visible in a deque first,
        // the epoch moves second, so a sweep that saw the old epoch
        // and found nothing can safely park — any later push bumps
        // past its snapshot.
        auto wakeAll = [&] {
            {
                std::lock_guard<std::mutex> lk(idle_mtx);
                ++epoch;
            }
            idle_cv.notify_all();
        };

        auto pushJobs = [&](u32 id, size_t slot) {
            size_t total = cmds_[id].jobCount();
            {
                std::lock_guard<std::mutex> lk(slots[slot].mtx);
                for (size_t j = 0; j < total; ++j) {
                    slots[slot].q.emplace_back(id,
                                               static_cast<u32>(j));
                }
            }
            wakeAll();
        };

        std::function<void(u32, size_t)> complete = [&](u32 id,
                                                        size_t slot) {
            for (u32 dep : dependents[id]) {
                if (deps_left[dep].fetch_sub(1) == 1) {
                    if (cmds_[dep].jobCount() == 0) {
                        complete(dep, slot); // fences cascade
                    } else {
                        pushJobs(dep, slot);
                    }
                }
            }
            if (remaining.fetch_sub(1) == 1) {
                wakeAll(); // unpark everyone for termination
            }
        };

        // Seed: jobs of dependency-free commands striped round-robin
        // so the pool starts balanced without any stealing.
        {
            size_t r = 0;
            for (size_t i = 0; i < n; ++i) {
                if (!cmds_[i].deps.empty()) {
                    continue;
                }
                size_t total = cmds_[i].jobCount();
                if (total == 0) {
                    complete(static_cast<u32>(i), 0);
                    continue;
                }
                for (size_t j = 0; j < total; ++j, ++r) {
                    Slot &s = slots[r % nslots];
                    std::lock_guard<std::mutex> lk(s.mtx);
                    s.q.emplace_back(static_cast<u32>(i),
                                     static_cast<u32>(j));
                }
            }
        }

        // Per-worker observability: each executed job gets a wall-clock
        // span named after its command's op (cat "job"), steals leave an
        // instant marker, and park waits show as "idle" spans — the
        // per-worker timeline rows of the Chrome trace. Counters
        // accumulate in locals and fold into the registry once per
        // worker, so the job loop never touches a shared cacheline for
        // stats.
        static obs::Counter &ctr_jobs =
            obs::MetricsRegistry::instance().counter(
                "stream.jobs_executed");
        static obs::Counter &ctr_steals =
            obs::MetricsRegistry::instance().counter("stream.steals");
        const char *track = b.name();
        b.run(nslots, [&](size_t slot) {
            u64 local_jobs = 0;
            u64 local_steals = 0;
            u64 rng =
                (static_cast<u64>(slot) + 1) * 0x9e3779b97f4a7c15ULL;
            auto nextRand = [&rng] {
                rng ^= rng << 13;
                rng ^= rng >> 7;
                rng ^= rng << 17;
                return rng;
            };
            auto tryPop = [&](size_t s, bool own,
                              std::pair<u32, u32> &out) {
                Slot &sl = slots[s];
                std::lock_guard<std::mutex> lk(sl.mtx);
                if (sl.q.empty()) {
                    return false;
                }
                if (own) {
                    out = sl.q.back();
                    sl.q.pop_back();
                } else {
                    out = sl.q.front();
                    sl.q.pop_front();
                }
                return true;
            };
            auto runJob = [&](const std::pair<u32, u32> &job) {
                const Command &c = cmds_[job.first];
                ++local_jobs;
                {
                    obs::TraceSpan span(opName(c.op), "job", track,
                                        "cmd", job.first);
                    executeJob(b, c, job.second);
                }
                if (done_jobs[job.first].fetch_add(1) + 1 ==
                    c.jobCount()) {
                    complete(job.first, slot);
                }
            };
            std::pair<u32, u32> job;
            while (remaining.load() != 0) {
                if (tryPop(slot, /*own=*/true, job)) {
                    runJob(job);
                    continue;
                }
                bool found = false;
                for (size_t t = 0; t < 2 * nslots && !found; ++t) {
                    size_t victim = nextRand() % nslots;
                    if (victim == slot) {
                        continue;
                    }
                    found = tryPop(victim, /*own=*/false, job);
                }
                if (found) {
                    ++local_steals;
                    obs::traceInstant("steal", "steal", track);
                    runJob(job);
                    continue;
                }
                // Park protocol: snapshot the epoch, sweep every slot
                // once, and sleep only when the sweep came up empty —
                // a push after the snapshot moves the epoch and the
                // wait falls through immediately.
                u64 seen;
                {
                    std::lock_guard<std::mutex> lk(idle_mtx);
                    seen = epoch;
                }
                for (size_t s = 0; s < nslots && !found; ++s) {
                    found = tryPop(s, /*own=*/s == slot, job);
                }
                if (found) {
                    runJob(job);
                    continue;
                }
                obs::TraceSpan idle_span("idle", "idle", track);
                std::unique_lock<std::mutex> lk(idle_mtx);
                idle_cv.wait(lk, [&] {
                    return epoch != seen ||
                           remaining.load() == 0;
                });
            }
            if (local_jobs != 0) {
                ctr_jobs.add(local_jobs);
            }
            if (local_steals != 0) {
                ctr_steals.add(local_steals);
            }
        });
    }
};

ThreadPoolBackend::ThreadPoolBackend(size_t threads)
{
    // SIMD within each limb job; threads across the jobs of a batch.
    useKernels(simd::kernelsForLevel(simd::resolveLevel()));
    size_t total = resolveThreadCount(threads);
    // The submitting thread always participates, so spawn total-1.
    workers_.reserve(total - 1);
    for (size_t i = 0; i + 1 < total; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPoolBackend::~ThreadPoolBackend()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_) {
        w.join();
    }
}

std::unique_ptr<CommandStream>
ThreadPoolBackend::newStream()
{
    // Pipelining needs workers to overlap onto; a re-entrant stream
    // (recorded from inside a pool job) must not dispatch on the pool
    // it is running on. Both degrade to record-order execution — but
    // through the coalescing eager executor, which fuses the narrow
    // per-limb commands pipelining-tuned recording sites emit back
    // into wide batches this engine can spread across the pool. The
    // TRINITY_STREAMS=off kill switch takes the same path.
    if (!streamsEnabled() || workers_.empty() || tls_in_worker) {
        return std::make_unique<CoalescingEagerStream>(*this);
    }
    return std::make_unique<PipelinedStream>(*this);
}

bool
ThreadPoolBackend::nttBatchTiled(const NttJob *jobs, size_t count,
                                 bool forward)
{
    // Coefficient-tiled NTT: split one transform across workers
    // through the KernelSet's stage-level entry points, so the tiles
    // run AVX2/AVX-512 butterflies inside each chunk (threads across
    // coefficients, vector lanes within a tile). Every stage's
    // butterflies touch disjoint (j, j+t) pairs, so a stage can be
    // chunked freely with a barrier between stages; and once the CT
    // network's block count reaches `tiles`, the remaining stages
    // decompose into `tiles` independent contiguous regions — one
    // multi-stage kernel call per tile, no barriers (mirrored for the
    // GS inverse network, whose early stages are the local ones). All
    // paths compute the exact canonical butterflies, so tiling never
    // changes a single bit of the result.
    //
    // Tiling pays stage-barrier overhead to recruit idle workers, so
    // engage it only when limb fan-out alone cannot feed the pool:
    // few jobs relative to workers and a transform long enough to
    // amortize the barriers.
    size_t workers = threadCount();
    if (count == 0 || tls_in_worker || count * 2 > workers) {
        return false;
    }
    size_t n = jobs[0].table->n();
    if (n < 1024) {
        return false;
    }
    for (size_t i = 1; i < count; ++i) {
        if (jobs[i].table->n() != n) {
            return false; // mixed lengths: uniform chunking impossible
        }
    }
    size_t tiles = 1;
    while (tiles * 2 * count <= workers) {
        tiles <<= 1;
    }
    while (tiles > 1 && n / tiles < 256) {
        tiles >>= 1;
    }
    if (tiles < 2) {
        return false;
    }
    static obs::Counter &batches =
        obs::MetricsRegistry::instance().counter("kernel.ntt.batches");
    static obs::Counter &njobs =
        obs::MetricsRegistry::instance().counter("kernel.ntt.jobs");
    batches.add();
    njobs.add(count);
    obs::TraceSpan span(forward ? "nttBatchTiled.fwd"
                                : "nttBatchTiled.inv",
                        "op", name(), "tiles", tiles);
    const simd::KernelSet &ks = kernels();
    size_t logn = log2Exact(n);
    size_t log_tiles = log2Exact(tiles);
    size_t units = count * tiles;
    size_t bchunk = (n / 2) / tiles; // butterflies per chunk per stage
    if (forward) {
        // Global stages (few large-span blocks) with a barrier after
        // each, then independent contiguous regions for the bulk of
        // the network.
        for (size_t s = 0; s < log_tiles; ++s) {
            parallelFor(units, [&](size_t u) {
                const NttJob &j = jobs[u / tiles];
                size_t c = u % tiles;
                ks.nttForwardStages(*j.table, j.data, s, s + 1,
                                    c * bchunk, (c + 1) * bchunk);
            });
        }
        parallelFor(units, [&](size_t u) {
            const NttJob &j = jobs[u / tiles];
            size_t c = u % tiles;
            ks.nttForwardStages(*j.table, j.data, log_tiles, logn,
                                c * bchunk, (c + 1) * bchunk);
        });
    } else {
        // Mirror image: independent regions first, then the global
        // stages. scaleN folds the N^{-1} epilogue into the final
        // stage's butterflies — no separate scaling pass.
        parallelFor(units, [&](size_t u) {
            const NttJob &j = jobs[u / tiles];
            size_t c = u % tiles;
            ks.nttInverseStages(*j.table, j.data, 0, logn - log_tiles,
                                c * bchunk, (c + 1) * bchunk,
                                /*scaleN=*/false);
        });
        for (size_t s = logn - log_tiles; s < logn; ++s) {
            parallelFor(units, [&](size_t u) {
                const NttJob &j = jobs[u / tiles];
                size_t c = u % tiles;
                ks.nttInverseStages(*j.table, j.data, s, s + 1,
                                    c * bchunk, (c + 1) * bchunk,
                                    /*scaleN=*/true);
            });
        }
    }
    return true;
}

void
ThreadPoolBackend::nttForwardBatch(const NttJob *jobs, size_t count)
{
    if (nttBatchTiled(jobs, count, true)) {
        return;
    }
    PolyBackend::nttForwardBatch(jobs, count);
}

void
ThreadPoolBackend::nttInverseBatch(const NttJob *jobs, size_t count)
{
    if (nttBatchTiled(jobs, count, false)) {
        return;
    }
    PolyBackend::nttInverseBatch(jobs, count);
}

void
ThreadPoolBackend::drainCurrent()
{
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count_) {
        (*fn_)(i);
    }
}

void
ThreadPoolBackend::workerLoop()
{
    tls_in_worker = true;
    u64 seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mtx_);
            wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) {
                return;
            }
            seen = generation_;
        }
        drainCurrent();
        {
            std::lock_guard<std::mutex> lock(mtx_);
            if (--busy_ == 0) {
                done_.notify_all();
            }
        }
    }
}

void
ThreadPoolBackend::parallelFor(size_t count,
                               const std::function<void(size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    // Inline when parallelism cannot help (single job, no workers) or
    // when called from inside a pool job (re-entrant batch).
    if (count == 1 || workers_.empty() || tls_in_worker) {
        for (size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx_);
        fn_ = &fn;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        busy_ = workers_.size();
        ++generation_;
    }
    wake_.notify_all();
    // The submitting thread participates too. While it drains, any
    // nested backend call it makes must run inline — dispatching a
    // second batch would clobber the state workers are reading.
    tls_in_worker = true;
    drainCurrent();
    tls_in_worker = false;
    std::unique_lock<std::mutex> lock(mtx_);
    done_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
    count_ = 0;
}

} // namespace trinity
