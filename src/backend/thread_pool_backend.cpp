#include "backend/thread_pool_backend.h"

#include <deque>

#include "backend/command_stream.h"
#include "common/env.h"
#include "common/logging.h"

namespace trinity {

namespace {

/**
 * Set while a pool worker executes jobs. A kernel that re-enters the
 * backend from inside a job (e.g. a Poly op nested in a fused
 * consumer kernel) must not block on the pool it is running on, so
 * nested batches run inline on the worker instead.
 */
thread_local bool tls_in_worker = false;

size_t
resolveThreadCount(size_t threads)
{
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 1;
    }
    if (threads == 0) {
        u64 parsed = 0;
        if (envU64("TRINITY_THREADS", parsed)) {
            if (parsed == 0) {
                trinity_fatal("invalid TRINITY_THREADS value '0': "
                              "expected a positive integer");
            }
            threads = static_cast<size_t>(parsed);
            if (threads > hw) {
                trinity_warn("TRINITY_THREADS=%zu exceeds hardware "
                             "concurrency (%zu); clamping",
                             threads, hw);
                threads = hw;
            }
        }
    }
    return threads == 0 ? hw : threads;
}

// ------------------------------------------------------------------
// Coefficient-tiled NTT: split one transform across workers. Every
// stage's butterflies touch disjoint (j, j+t) pairs, so a stage can be
// chunked freely with a barrier between stages; and once the CT
// network's block count reaches `tiles` the remaining stages decompose
// into `tiles` independent contiguous regions (mirrored for the GS
// inverse network, whose early stages are the local ones). All
// arithmetic is the exact canonical butterfly of NttTable::forward/
// inverse, so tiling never changes a single bit of the result.

/** Butterflies [b0, b1) of forward stage m (t = n / 2m). */
void
forwardStageChunk(const NttTable &tb, u64 *a, size_t m, size_t b0,
                  size_t b1)
{
    const Modulus &mod = tb.modulus();
    const auto &tw = tb.psiBr();
    const auto &twp = tb.psiBrPrecon();
    size_t t = tb.n() / (2 * m);
    for (size_t b = b0; b < b1; ++b) {
        size_t i = b / t;
        size_t j = 2 * i * t + (b % t);
        u64 s = tw[m + i];
        u64 sp = twp[m + i];
        u64 u = a[j];
        u64 v = mod.mulShoup(a[j + t], s, sp);
        a[j] = mod.add(u, v);
        a[j + t] = mod.sub(u, v);
    }
}

/** Forward stages m = mFirst..n/2, blocks of region r of `tiles`. */
void
forwardRegion(const NttTable &tb, u64 *a, size_t m_first, size_t tiles,
              size_t r)
{
    size_t n = tb.n();
    const Modulus &mod = tb.modulus();
    const auto &tw = tb.psiBr();
    const auto &twp = tb.psiBrPrecon();
    size_t t = n / (2 * m_first);
    for (size_t m = m_first; m < n; m <<= 1) {
        size_t bpr = m / tiles; // blocks per region at this stage
        for (size_t i = r * bpr; i < (r + 1) * bpr; ++i) {
            u64 s = tw[m + i];
            u64 sp = twp[m + i];
            size_t j0 = 2 * i * t;
            for (size_t j = j0; j < j0 + t; ++j) {
                u64 u = a[j];
                u64 v = mod.mulShoup(a[j + t], s, sp);
                a[j] = mod.add(u, v);
                a[j + t] = mod.sub(u, v);
            }
        }
        t >>= 1;
    }
}

/** Inverse stages m = n..2*tiles (h >= tiles), region r of `tiles`. */
void
inverseRegion(const NttTable &tb, u64 *a, size_t tiles, size_t r)
{
    size_t n = tb.n();
    const Modulus &mod = tb.modulus();
    const auto &tw = tb.ipsiBr();
    const auto &twp = tb.ipsiBrPrecon();
    size_t t = 1;
    for (size_t m = n; m >= 2 * tiles; m >>= 1) {
        size_t h = m >> 1;
        size_t bpr = h / tiles;
        for (size_t i = r * bpr; i < (r + 1) * bpr; ++i) {
            u64 s = tw[h + i];
            u64 sp = twp[h + i];
            size_t j0 = 2 * i * t;
            for (size_t j = j0; j < j0 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = mod.add(u, v);
                a[j + t] = mod.mulShoup(mod.sub(u, v), s, sp);
            }
        }
        t <<= 1;
    }
}

/** Butterflies [b0, b1) of inverse stage m (h = m/2 < tiles). */
void
inverseStageChunk(const NttTable &tb, u64 *a, size_t m, size_t b0,
                  size_t b1)
{
    const Modulus &mod = tb.modulus();
    const auto &tw = tb.ipsiBr();
    const auto &twp = tb.ipsiBrPrecon();
    size_t h = m >> 1;
    size_t t = tb.n() / m;
    for (size_t b = b0; b < b1; ++b) {
        size_t i = b / t;
        size_t j = 2 * i * t + (b % t);
        u64 s = tw[h + i];
        u64 sp = twp[h + i];
        u64 u = a[j];
        u64 v = a[j + t];
        a[j] = mod.add(u, v);
        a[j + t] = mod.mulShoup(mod.sub(u, v), s, sp);
    }
}

/** N^{-1} scaling of coefficients [c0, c1) (inverse epilogue). */
void
inverseScaleChunk(const NttTable &tb, u64 *a, size_t c0, size_t c1)
{
    const Modulus &mod = tb.modulus();
    u64 s = tb.nInv();
    u64 sp = tb.nInvPrecon();
    for (size_t j = c0; j < c1; ++j) {
        a[j] = mod.mulShoup(a[j], s, sp);
    }
}

} // namespace

/**
 * Pipelined command-stream executor: a dependency-counting ready
 * queue drained by every pool worker (plus the submitting thread)
 * through one parallelFor dispatch. Workers claim individual jobs of
 * ready commands, so independent commands overlap freely — the NTT of
 * lockstep step i+1 runs under the MAC of step i — and a whole
 * recorded stream costs one pool wake/sleep cycle instead of one per
 * stage. Mutual exclusion on the scheduling state establishes the
 * happens-before edges of every dependency, so results stay
 * bit-identical to eager record-order execution.
 */
class PipelinedStream final : public CommandStream
{
  public:
    using CommandStream::CommandStream;

    bool deferredExecution() const override { return true; }

  protected:
    void
    onRecord(Command &) override
    {
        // Deferred: execution happens at submit().
    }

    void
    onSubmit() override
    {
        // Blocking-path parity: escape-hatch kernels announce their
        // recorded metadata in record order (named ops on this engine
        // never emitted events — there is no decorator here). The
        // events carry their record-time scope, so deliver them
        // without the emission-time restamp.
        if (profilingActive()) {
            for (const Command &c : cmds_) {
                if (c.op == Op::Task) {
                    for (const KernelEvent &ev : c.events) {
                        emitKernelPrestamped(ev);
                    }
                }
            }
        }
        execute();
    }

  private:
    void
    execute()
    {
        size_t n = cmds_.size();
        if (n == 0) {
            return;
        }
        std::vector<size_t> next_job(n, 0);
        std::vector<size_t> done_jobs(n, 0);
        std::vector<size_t> deps_left(n, 0);
        std::vector<std::vector<u32>> dependents(n);
        std::deque<u32> ready;
        size_t remaining = n;
        std::mutex mtx;
        std::condition_variable cv;

        for (size_t i = 0; i < n; ++i) {
            deps_left[i] = cmds_[i].deps.size();
            for (u32 d : cmds_[i].deps) {
                dependents[d].push_back(static_cast<u32>(i));
            }
        }
        // Completion under the lock: retire the command and cascade —
        // zero-job commands (fences) complete the moment they are
        // unblocked instead of occupying the ready queue.
        std::function<void(u32)> complete = [&](u32 id) {
            --remaining;
            for (u32 dep : dependents[id]) {
                if (--deps_left[dep] == 0) {
                    if (cmds_[dep].jobCount() == 0) {
                        complete(dep);
                    } else {
                        ready.push_back(dep);
                    }
                }
            }
        };
        for (size_t i = 0; i < n; ++i) {
            if (deps_left[i] == 0 && cmds_[i].deps.empty()) {
                if (cmds_[i].jobCount() == 0) {
                    complete(static_cast<u32>(i));
                } else {
                    ready.push_back(static_cast<u32>(i));
                }
            }
        }
        PolyBackend &b = owner_;
        b.run(b.threadCount(), [&](size_t) {
            std::unique_lock<std::mutex> lk(mtx);
            for (;;) {
                if (remaining == 0) {
                    cv.notify_all();
                    return;
                }
                if (ready.empty()) {
                    cv.wait(lk, [&] {
                        return remaining == 0 || !ready.empty();
                    });
                    continue;
                }
                u32 id = ready.front();
                size_t job = next_job[id]++;
                size_t total = cmds_[id].jobCount();
                if (next_job[id] >= total) {
                    ready.pop_front();
                }
                lk.unlock();
                executeJob(b, cmds_[id], job);
                lk.lock();
                if (++done_jobs[id] == total) {
                    complete(id);
                    cv.notify_all();
                }
            }
        });
    }
};

ThreadPoolBackend::ThreadPoolBackend(size_t threads)
{
    // SIMD within each limb job; threads across the jobs of a batch.
    useKernels(simd::kernelsForLevel(simd::resolveLevel()));
    size_t total = resolveThreadCount(threads);
    // The submitting thread always participates, so spawn total-1.
    workers_.reserve(total - 1);
    for (size_t i = 0; i + 1 < total; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPoolBackend::~ThreadPoolBackend()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_) {
        w.join();
    }
}

std::unique_ptr<CommandStream>
ThreadPoolBackend::newStream()
{
    // Pipelining needs workers to overlap onto; a re-entrant stream
    // (recorded from inside a pool job) must not dispatch on the pool
    // it is running on. Both degrade gracefully to eager execution,
    // as does the TRINITY_STREAMS=off kill switch.
    if (!streamsEnabled() || workers_.empty() || tls_in_worker) {
        return std::make_unique<EagerStream>(*this);
    }
    return std::make_unique<PipelinedStream>(*this);
}

bool
ThreadPoolBackend::nttBatchTiled(const NttJob *jobs, size_t count,
                                 bool forward)
{
    // Tiling pays stage-barrier overhead to recruit idle workers, so
    // engage it only when limb fan-out alone cannot feed the pool:
    // few jobs relative to workers, a transform long enough to
    // amortize the barriers, and scalar kernels (wider lanes already
    // sweep a limb's span without any synchronization).
    size_t workers = threadCount();
    if (count == 0 || tls_in_worker || kernels().lanes != 1 ||
        count * 2 > workers) {
        return false;
    }
    size_t n = jobs[0].table->n();
    if (n < 1024) {
        return false;
    }
    for (size_t i = 1; i < count; ++i) {
        if (jobs[i].table->n() != n) {
            return false; // mixed lengths: uniform chunking impossible
        }
    }
    size_t tiles = 1;
    while (tiles * 2 * count <= workers) {
        tiles <<= 1;
    }
    while (tiles > 1 && n / tiles < 256) {
        tiles >>= 1;
    }
    if (tiles < 2) {
        return false;
    }
    size_t units = count * tiles;
    size_t bchunk = (n / 2) / tiles; // butterflies per chunk per stage
    size_t cchunk = n / tiles;       // coefficients per region
    if (forward) {
        // Global stages (few large-span blocks), then independent
        // contiguous regions for the bulk of the network.
        for (size_t m = 1; m < tiles; m <<= 1) {
            parallelFor(units, [&](size_t u) {
                const NttJob &j = jobs[u / tiles];
                size_t c = u % tiles;
                forwardStageChunk(*j.table, j.data, m, c * bchunk,
                                  (c + 1) * bchunk);
            });
        }
        parallelFor(units, [&](size_t u) {
            const NttJob &j = jobs[u / tiles];
            forwardRegion(*j.table, j.data, tiles, tiles, u % tiles);
        });
    } else {
        // Mirror image: independent regions first, then the global
        // stages, then the N^{-1} scaling epilogue.
        parallelFor(units, [&](size_t u) {
            const NttJob &j = jobs[u / tiles];
            inverseRegion(*j.table, j.data, tiles, u % tiles);
        });
        for (size_t m = tiles; m > 1; m >>= 1) {
            parallelFor(units, [&](size_t u) {
                const NttJob &j = jobs[u / tiles];
                size_t c = u % tiles;
                inverseStageChunk(*j.table, j.data, m, c * bchunk,
                                  (c + 1) * bchunk);
            });
        }
        parallelFor(units, [&](size_t u) {
            const NttJob &j = jobs[u / tiles];
            size_t c = u % tiles;
            inverseScaleChunk(*j.table, j.data, c * cchunk,
                              (c + 1) * cchunk);
        });
    }
    return true;
}

void
ThreadPoolBackend::nttForwardBatch(const NttJob *jobs, size_t count)
{
    if (nttBatchTiled(jobs, count, true)) {
        return;
    }
    PolyBackend::nttForwardBatch(jobs, count);
}

void
ThreadPoolBackend::nttInverseBatch(const NttJob *jobs, size_t count)
{
    if (nttBatchTiled(jobs, count, false)) {
        return;
    }
    PolyBackend::nttInverseBatch(jobs, count);
}

void
ThreadPoolBackend::drainCurrent()
{
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count_) {
        (*fn_)(i);
    }
}

void
ThreadPoolBackend::workerLoop()
{
    tls_in_worker = true;
    u64 seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mtx_);
            wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) {
                return;
            }
            seen = generation_;
        }
        drainCurrent();
        {
            std::lock_guard<std::mutex> lock(mtx_);
            if (--busy_ == 0) {
                done_.notify_all();
            }
        }
    }
}

void
ThreadPoolBackend::parallelFor(size_t count,
                               const std::function<void(size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    // Inline when parallelism cannot help (single job, no workers) or
    // when called from inside a pool job (re-entrant batch).
    if (count == 1 || workers_.empty() || tls_in_worker) {
        for (size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx_);
        fn_ = &fn;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        busy_ = workers_.size();
        ++generation_;
    }
    wake_.notify_all();
    // The submitting thread participates too. While it drains, any
    // nested backend call it makes must run inline — dispatching a
    // second batch would clobber the state workers are reading.
    tls_in_worker = true;
    drainCurrent();
    tls_in_worker = false;
    std::unique_lock<std::mutex> lock(mtx_);
    done_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
    count_ = 0;
}

} // namespace trinity
