#include "backend/thread_pool_backend.h"

#include "common/env.h"
#include "common/logging.h"

namespace trinity {

namespace {

/**
 * Set while a pool worker executes jobs. A kernel that re-enters the
 * backend from inside a job (e.g. a Poly op nested in a fused
 * consumer kernel) must not block on the pool it is running on, so
 * nested batches run inline on the worker instead.
 */
thread_local bool tls_in_worker = false;

size_t
resolveThreadCount(size_t threads)
{
    size_t hw = std::thread::hardware_concurrency();
    if (hw == 0) {
        hw = 1;
    }
    if (threads == 0) {
        u64 parsed = 0;
        if (envU64("TRINITY_THREADS", parsed)) {
            if (parsed == 0) {
                trinity_fatal("invalid TRINITY_THREADS value '0': "
                              "expected a positive integer");
            }
            threads = static_cast<size_t>(parsed);
            if (threads > hw) {
                trinity_warn("TRINITY_THREADS=%zu exceeds hardware "
                             "concurrency (%zu); clamping",
                             threads, hw);
                threads = hw;
            }
        }
    }
    return threads == 0 ? hw : threads;
}

} // namespace

ThreadPoolBackend::ThreadPoolBackend(size_t threads)
{
    // SIMD within each limb job; threads across the jobs of a batch.
    useKernels(simd::kernelsForLevel(simd::resolveLevel()));
    size_t total = resolveThreadCount(threads);
    // The submitting thread always participates, so spawn total-1.
    workers_.reserve(total - 1);
    for (size_t i = 0; i + 1 < total; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ThreadPoolBackend::~ThreadPoolBackend()
{
    {
        std::lock_guard<std::mutex> lock(mtx_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_) {
        w.join();
    }
}

void
ThreadPoolBackend::drainCurrent()
{
    size_t i;
    while ((i = next_.fetch_add(1, std::memory_order_relaxed)) < count_) {
        (*fn_)(i);
    }
}

void
ThreadPoolBackend::workerLoop()
{
    tls_in_worker = true;
    u64 seen = 0;
    for (;;) {
        {
            std::unique_lock<std::mutex> lock(mtx_);
            wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
            if (stop_) {
                return;
            }
            seen = generation_;
        }
        drainCurrent();
        {
            std::lock_guard<std::mutex> lock(mtx_);
            if (--busy_ == 0) {
                done_.notify_all();
            }
        }
    }
}

void
ThreadPoolBackend::parallelFor(size_t count,
                               const std::function<void(size_t)> &fn)
{
    if (count == 0) {
        return;
    }
    // Inline when parallelism cannot help (single job, no workers) or
    // when called from inside a pool job (re-entrant batch).
    if (count == 1 || workers_.empty() || tls_in_worker) {
        for (size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mtx_);
        fn_ = &fn;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        busy_ = workers_.size();
        ++generation_;
    }
    wake_.notify_all();
    // The submitting thread participates too. While it drains, any
    // nested backend call it makes must run inline — dispatching a
    // second batch would clobber the state workers are reading.
    tls_in_worker = true;
    drainCurrent();
    tls_in_worker = false;
    std::unique_lock<std::mutex> lock(mtx_);
    done_.wait(lock, [&] { return busy_ == 0; });
    fn_ = nullptr;
    count_ = 0;
}

} // namespace trinity
