#include "backend/auto_table.h"

#include <map>
#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/logging.h"

namespace trinity {

AutoTable::AutoTable(size_t n, u64 g) : perm_(n), signMask_(n), g_(g)
{
    trinity_assert(n > 0, "automorphism table needs n > 0");
    trinity_assert(g % 2 == 1, "automorphism index must be odd");
    u64 two_n = 2 * static_cast<u64>(n);
    u64 step = g % two_n;
    // Walk the forward map incrementally: e(c+1) = e(c) + g (mod 2n),
    // replacing the per-coefficient multiply-and-divide. g is odd and
    // coprime to 2n, so each output slot is written exactly once.
    u64 e = 0;
    for (size_t c = 0; c < n; ++c) {
        if (e < n) {
            perm_[e] = c;
            signMask_[e] = 0;
        } else {
            perm_[e - n] = c;
            signMask_[e - n] = ~u64{0};
        }
        e += step;
        if (e >= two_n) {
            e -= two_n;
        }
    }
}

std::shared_ptr<const AutoTable>
AutoTableCache::get(size_t n, u64 g)
{
    // Same discipline as NttTableCache: hits take a shared (reader)
    // lock so the steady state never serializes the pool, while the
    // O(n) construction runs outside any lock so a cold key does not
    // stall every other thread. Two threads racing on the same cold
    // key build the table twice; the first emplace wins and the
    // loser's copy is dropped — tables are immutable, so correctness
    // is unaffected.
    static std::map<std::pair<size_t, u64>,
                    std::shared_ptr<const AutoTable>> cache;
    static std::shared_mutex mtx;
    auto key = std::make_pair(n, g);
    {
        std::shared_lock<std::shared_mutex> lock(mtx);
        auto it = cache.find(key);
        if (it != cache.end()) {
            return it->second;
        }
    }
    auto table = std::make_shared<const AutoTable>(n, g);
    std::unique_lock<std::shared_mutex> lock(mtx);
    auto [it, inserted] = cache.emplace(key, table);
    return it->second;
}

} // namespace trinity
