/**
 * @file
 * Multithreaded batch engine: fans limb jobs of a batch across a
 * persistent worker pool — threads across limbs — while each job's
 * span executes through the dispatched SIMD KernelSet — SIMD within a
 * limb (the ROADMAP's two-axis composition). Every job touches a
 * disjoint destination limb and every kernel set computes the exact
 * canonical residues of the scalar reference, so results are
 * bit-identical to SerialBackend regardless of scheduling or lane
 * width. TRINITY_SIMD_LEVEL=scalar recovers the pure thread-pool
 * engine of PR 1.
 *
 * Two paths widen beyond plain batch fan-out:
 *  - newStream() returns a pipelined executor: recorded commands run
 *    on the pool the moment their dependencies resolve, so e.g. the
 *    NTT of blind-rotation step i+1 overlaps the MAC of step i
 *    instead of waiting behind a per-stage barrier;
 *  - underfull NTT batches (fewer limb jobs than workers, as in
 *    TFHE's N=1024 PBS shapes) are coefficient-tiled: each transform
 *    splits across workers stage by stage, exploiting that every NTT
 *    stage's butterflies are independent and that the tail (head) of
 *    the CT (GS) network decomposes into disjoint sub-blocks.
 */

#ifndef TRINITY_BACKEND_THREAD_POOL_BACKEND_H
#define TRINITY_BACKEND_THREAD_POOL_BACKEND_H

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/poly_backend.h"

namespace trinity {

class ThreadPoolBackend final : public PolyBackend
{
  public:
    /**
     * @param threads total worker count (including the calling thread,
     *        which participates in every batch). 0 means: use the
     *        TRINITY_THREADS env var if set, else
     *        std::thread::hardware_concurrency().
     */
    explicit ThreadPoolBackend(size_t threads = 0);
    ~ThreadPoolBackend() override;

    ThreadPoolBackend(const ThreadPoolBackend &) = delete;
    ThreadPoolBackend &operator=(const ThreadPoolBackend &) = delete;

    const char *name() const override { return "threads"; }
    size_t threadCount() const override { return workers_.size() + 1; }

    /** Pipelined command-stream executor (dependency-counting ready
     *  queue over the pool); eager when TRINITY_STREAMS=off, when the
     *  pool has no workers, or when called from inside a pool job. */
    std::unique_ptr<CommandStream> newStream() override;

    /** Coefficient-tiled when the batch cannot feed every worker —
     *  see nttBatchTiled() in the implementation. */
    void nttForwardBatch(const NttJob *jobs, size_t count) override;
    void nttInverseBatch(const NttJob *jobs, size_t count) override;

    /**
     * Both parallelism axes want feeding: enough jobs per batch to
     * occupy every worker, and deep enough spans per fused request
     * stream to keep each worker's vector lanes busy. Scale the base
     * hint by half the lane width (empirically lanes saturate before
     * jobs-per-lane does once threads already slice the batch).
     */
    size_t
    preferredBatch() const override
    {
        size_t base = PolyBackend::preferredBatch();
        size_t lanes = kernels().lanes;
        return lanes > 1 ? base * (lanes / 2) : base;
    }

  protected:
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &fn) override;

  private:
    void workerLoop();
    void drainCurrent();
    bool nttBatchTiled(const NttJob *jobs, size_t count, bool forward);

    std::vector<std::thread> workers_;

    std::mutex mtx_;
    std::condition_variable wake_;
    std::condition_variable done_;
    u64 generation_ = 0;
    bool stop_ = false;
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t count_ = 0;
    std::atomic<size_t> next_{0};
    size_t busy_ = 0; ///< workers still inside the current batch
};

} // namespace trinity

#endif // TRINITY_BACKEND_THREAD_POOL_BACKEND_H
