/**
 * @file
 * Multithreaded batch engine: fans limb jobs of a batch across a
 * persistent worker pool. The kernels themselves are the same code the
 * serial reference runs and every job touches a disjoint destination
 * limb, so results are bit-identical to SerialBackend regardless of
 * scheduling.
 */

#ifndef TRINITY_BACKEND_THREAD_POOL_BACKEND_H
#define TRINITY_BACKEND_THREAD_POOL_BACKEND_H

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "backend/poly_backend.h"

namespace trinity {

class ThreadPoolBackend final : public PolyBackend
{
  public:
    /**
     * @param threads total worker count (including the calling thread,
     *        which participates in every batch). 0 means: use the
     *        TRINITY_THREADS env var if set, else
     *        std::thread::hardware_concurrency().
     */
    explicit ThreadPoolBackend(size_t threads = 0);
    ~ThreadPoolBackend() override;

    ThreadPoolBackend(const ThreadPoolBackend &) = delete;
    ThreadPoolBackend &operator=(const ThreadPoolBackend &) = delete;

    const char *name() const override { return "threads"; }
    size_t threadCount() const override { return workers_.size() + 1; }

  protected:
    void parallelFor(size_t count,
                     const std::function<void(size_t)> &fn) override;

  private:
    void workerLoop();
    void drainCurrent();

    std::vector<std::thread> workers_;

    std::mutex mtx_;
    std::condition_variable wake_;
    std::condition_variable done_;
    u64 generation_ = 0;
    bool stop_ = false;
    const std::function<void(size_t)> *fn_ = nullptr;
    size_t count_ = 0;
    std::atomic<size_t> next_{0};
    size_t busy_ = 0; ///< workers still inside the current batch
};

} // namespace trinity

#endif // TRINITY_BACKEND_THREAD_POOL_BACKEND_H
