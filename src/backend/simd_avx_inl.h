/**
 * @file
 * 256-bit (ymm) modular-arithmetic building blocks shared by the AVX2
 * and AVX-512 kernel translation units, plus the shuffle-based NTT
 * stages for butterfly spans narrower than a vector (t ∈ {1, 2}).
 *
 * INTERNAL HEADER: include only from simd_kernels_avx2.cpp /
 * simd_kernels_avx512.cpp. Everything lives in an anonymous namespace
 * on purpose — each TU is compiled with different -m flags, and a
 * linker deduplicating `inline` copies could keep the AVX-512-codegen
 * one and feed it to the AVX2 path on a CPU without AVX-512.
 *
 * Value-range invariants (moduli are < 2^62 repo-wide):
 *  - reduced residues and Shoup remainders stay < 2q < 2^63, so plain
 *    signed 64-bit compares are exact for them;
 *  - full-range 64-bit intermediates (Barrett partial products) use
 *    the sign-flip unsigned compare.
 * Every routine computes the exact canonical residue of the scalar
 * reference (Modulus::add/sub/neg/mulShoup/reduce128), never a lazy
 * representative, so results are bit-identical lane for lane.
 */

#ifndef TRINITY_BACKEND_SIMD_AVX_INL_H
#define TRINITY_BACKEND_SIMD_AVX_INL_H

#if defined(__AVX2__)

#include <immintrin.h>

#include "common/modarith.h"
#include "common/types.h"
#include "poly/ntt.h"

namespace trinity {
namespace simd {
namespace {

inline __m256i
loadu256(const u64 *p)
{
    return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
}

inline void
storeu256(u64 *p, __m256i v)
{
    _mm256_storeu_si256(reinterpret_cast<__m256i *>(p), v);
}

inline __m256i
bcast256(u64 x)
{
    return _mm256_set1_epi64x(static_cast<long long>(x));
}

/** Unsigned a > b per 64-bit lane (sign-flip onto signed compare). */
inline __m256i
cmpgtu64x4(__m256i a, __m256i b)
{
    const __m256i sign = bcast256(0x8000000000000000ULL);
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, sign),
                              _mm256_xor_si256(b, sign));
}

/** High 64 bits of the unsigned 64x64 product per lane. */
inline __m256i
mulhi64x4(__m256i a, __m256i b)
{
    const __m256i m32 = bcast256(0xffffffffULL);
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i lh = _mm256_mul_epu32(a, b_hi);
    __m256i hl = _mm256_mul_epu32(a_hi, b);
    __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
    // carry-save: cross terms cannot overflow (3 * (2^32-1) < 2^64)
    __m256i cross = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, m32)),
        _mm256_and_si256(hl, m32));
    return _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(cross, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                         _mm256_srli_epi64(hl, 32)));
}

/** Low 64 bits of the 64x64 product per lane. */
inline __m256i
mullo64x4(__m256i a, __m256i b)
{
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i cross = _mm256_add_epi64(_mm256_mul_epu32(a, b_hi),
                                     _mm256_mul_epu32(a_hi, b));
    return _mm256_add_epi64(_mm256_mul_epu32(a, b),
                            _mm256_slli_epi64(cross, 32));
}

/** Both product halves, sharing the four 32x32 partials. */
inline void
mul64widex4(__m256i a, __m256i b, __m256i &hi, __m256i &lo)
{
    const __m256i m32 = bcast256(0xffffffffULL);
    __m256i a_hi = _mm256_srli_epi64(a, 32);
    __m256i b_hi = _mm256_srli_epi64(b, 32);
    __m256i ll = _mm256_mul_epu32(a, b);
    __m256i lh = _mm256_mul_epu32(a, b_hi);
    __m256i hl = _mm256_mul_epu32(a_hi, b);
    __m256i hh = _mm256_mul_epu32(a_hi, b_hi);
    __m256i cross = _mm256_add_epi64(
        _mm256_add_epi64(_mm256_srli_epi64(ll, 32),
                         _mm256_and_si256(lh, m32)),
        _mm256_and_si256(hl, m32));
    hi = _mm256_add_epi64(
        _mm256_add_epi64(hh, _mm256_srli_epi64(cross, 32)),
        _mm256_add_epi64(_mm256_srli_epi64(lh, 32),
                         _mm256_srli_epi64(hl, 32)));
    lo = _mm256_add_epi64(ll, _mm256_slli_epi64(
                                  _mm256_add_epi64(lh, hl), 32));
}

/** a + b mod q for reduced inputs (sum < 2^63: signed compare exact). */
inline __m256i
addmodx4(__m256i a, __m256i b, __m256i q)
{
    __m256i s = _mm256_add_epi64(a, b);
    __m256i lt = _mm256_cmpgt_epi64(q, s); // q > s: already reduced
    return _mm256_sub_epi64(s, _mm256_andnot_si256(lt, q));
}

/** a - b mod q for reduced inputs. */
inline __m256i
submodx4(__m256i a, __m256i b, __m256i q)
{
    __m256i d = _mm256_sub_epi64(a, b);
    __m256i borrow = _mm256_cmpgt_epi64(b, a); // b > a: wrapped
    return _mm256_add_epi64(d, _mm256_and_si256(borrow, q));
}

/** -a mod q (0 stays 0). */
inline __m256i
negmodx4(__m256i a, __m256i q)
{
    __m256i zero = _mm256_setzero_si256();
    __m256i is_zero = _mm256_cmpeq_epi64(a, zero);
    return _mm256_andnot_si256(is_zero, _mm256_sub_epi64(q, a));
}

/** Shoup multiply by constant w (wpre = shoupPrecompute(w)), exact. */
inline __m256i
mulshoupx4(__m256i a, __m256i w, __m256i wpre, __m256i q)
{
    __m256i quot = mulhi64x4(a, wpre);
    __m256i r = _mm256_sub_epi64(mullo64x4(a, w), mullo64x4(quot, q));
    __m256i lt = _mm256_cmpgt_epi64(q, r); // r < 2q: signed compare ok
    return _mm256_sub_epi64(r, _mm256_andnot_si256(lt, q));
}

/**
 * Exact (z_hi·2^64 + z_lo) mod q — the reduce128() recurrence with
 * (b_hi, b_lo) = floor(2^128/q). The estimated quotient is off by at
 * most one, so the remainder needs a single conditional subtract, and
 * only its low 64 bits matter (true remainder < 2q < 2^64).
 */
inline __m256i
barrett128x4(__m256i z_lo, __m256i z_hi, __m256i q, __m256i b_lo,
             __m256i b_hi)
{
    __m256i one = bcast256(1);
    __m256i c_ll = mulhi64x4(z_lo, b_lo);
    __m256i lh_hi, lh_lo;
    mul64widex4(z_lo, b_hi, lh_hi, lh_lo);
    __m256i hl_hi, hl_lo;
    mul64widex4(z_hi, b_lo, hl_hi, hl_lo);
    __m256i hh_lo = mullo64x4(z_hi, b_hi);
    // mid = c_ll + lh_lo + hl_lo; carries feed the top word
    __m256i s1 = _mm256_add_epi64(c_ll, lh_lo);
    __m256i carry1 = _mm256_and_si256(cmpgtu64x4(c_ll, s1), one);
    __m256i s2 = _mm256_add_epi64(s1, hl_lo);
    __m256i carry2 = _mm256_and_si256(cmpgtu64x4(hl_lo, s2), one);
    __m256i q_est = _mm256_add_epi64(
        _mm256_add_epi64(hh_lo, _mm256_add_epi64(lh_hi, hl_hi)),
        _mm256_add_epi64(carry1, carry2));
    __m256i r = _mm256_sub_epi64(z_lo, mullo64x4(q_est, q));
    __m256i lt = _mm256_cmpgt_epi64(q, r); // r < 2q < 2^63
    return _mm256_sub_epi64(r, _mm256_andnot_si256(lt, q));
}

// ------------------------------------------------------------------
// Tail NTT stages: butterflies narrower than a ymm register, handled
// by de-interleaving 8 coefficients across two vectors so the full
// network stays vectorized instead of falling back to scalar for the
// last/first log2(lanes) stages. Callers guarantee n >= 8.
// ------------------------------------------------------------------

/** Forward stage with t >= 4: contiguous spans, one twiddle a group. */
inline void
fwdStageVecYmm(u64 *a, size_t m, size_t t, const u64 *tw,
               const u64 *twp, __m256i q)
{
    for (size_t i = 0; i < m; ++i) {
        __m256i s = bcast256(tw[m + i]);
        __m256i sp = bcast256(twp[m + i]);
        u64 *p = a + 2 * i * t;
        for (size_t j = 0; j < t; j += 4) {
            __m256i u = loadu256(p + j);
            __m256i v = mulshoupx4(loadu256(p + j + t), s, sp, q);
            storeu256(p + j, addmodx4(u, v, q));
            storeu256(p + j + t, submodx4(u, v, q));
        }
    }
}

/** Forward stage with t == 2 (two groups per 8 coefficients). */
inline void
fwdStageT2Ymm(u64 *a, size_t m, const u64 *tw, const u64 *twp,
              __m256i q)
{
    for (size_t i = 0; i < m; i += 2) {
        u64 *p = a + 4 * i;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        // u = {a0,a1,a4,a5} (first halves), v = {a2,a3,a6,a7}
        __m256i u = _mm256_permute2x128_si256(x, y, 0x20);
        __m256i v = _mm256_permute2x128_si256(x, y, 0x31);
        // twiddles {t_i, t_i, t_{i+1}, t_{i+1}}
        __m128i t2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tw + m + i));
        __m128i tp2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(twp + m + i));
        __m256i s = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(t2), 0x50);
        __m256i sp = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(tp2), 0x50);
        __m256i w = mulshoupx4(v, s, sp, q);
        __m256i lo = addmodx4(u, w, q);
        __m256i hi = submodx4(u, w, q);
        storeu256(p, _mm256_permute2x128_si256(lo, hi, 0x20));
        storeu256(p + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
    }
}

/** Forward stage with t == 1 (four adjacent-pair butterflies). */
inline void
fwdStageT1Ymm(u64 *a, size_t m, const u64 *tw, const u64 *twp,
              __m256i q)
{
    for (size_t i = 0; i < m; i += 4) {
        u64 *p = a + 2 * i;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        // butterfly order {0,2,1,3}: u = {a0,a4,a2,a6}, v = {a1,a5,a3,a7}
        __m256i u = _mm256_unpacklo_epi64(x, y);
        __m256i v = _mm256_unpackhi_epi64(x, y);
        // twiddles permuted to the same order
        __m256i s = _mm256_permute4x64_epi64(loadu256(tw + m + i), 0xD8);
        __m256i sp =
            _mm256_permute4x64_epi64(loadu256(twp + m + i), 0xD8);
        __m256i w = mulshoupx4(v, s, sp, q);
        __m256i lo = addmodx4(u, w, q);
        __m256i hi = submodx4(u, w, q);
        storeu256(p, _mm256_unpacklo_epi64(lo, hi));
        storeu256(p + 4, _mm256_unpackhi_epi64(lo, hi));
    }
}

/** Inverse stage with t >= 4. */
inline void
invStageVecYmm(u64 *a, size_t h, size_t t, const u64 *tw,
               const u64 *twp, __m256i q)
{
    for (size_t i = 0; i < h; ++i) {
        __m256i s = bcast256(tw[h + i]);
        __m256i sp = bcast256(twp[h + i]);
        u64 *p = a + 2 * i * t;
        for (size_t j = 0; j < t; j += 4) {
            __m256i u = loadu256(p + j);
            __m256i v = loadu256(p + j + t);
            storeu256(p + j, addmodx4(u, v, q));
            storeu256(p + j + t,
                      mulshoupx4(submodx4(u, v, q), s, sp, q));
        }
    }
}

/** Inverse stage with t == 1 (GS butterfly on adjacent pairs). */
inline void
invStageT1Ymm(u64 *a, size_t h, const u64 *tw, const u64 *twp,
              __m256i q)
{
    for (size_t i = 0; i < h; i += 4) {
        u64 *p = a + 2 * i;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        __m256i u = _mm256_unpacklo_epi64(x, y);
        __m256i v = _mm256_unpackhi_epi64(x, y);
        __m256i s = _mm256_permute4x64_epi64(loadu256(tw + h + i), 0xD8);
        __m256i sp =
            _mm256_permute4x64_epi64(loadu256(twp + h + i), 0xD8);
        __m256i lo = addmodx4(u, v, q);
        __m256i hi = mulshoupx4(submodx4(u, v, q), s, sp, q);
        storeu256(p, _mm256_unpacklo_epi64(lo, hi));
        storeu256(p + 4, _mm256_unpackhi_epi64(lo, hi));
    }
}

/** Inverse stage with t == 2. */
inline void
invStageT2Ymm(u64 *a, size_t h, const u64 *tw, const u64 *twp,
              __m256i q)
{
    for (size_t i = 0; i < h; i += 2) {
        u64 *p = a + 4 * i;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        __m256i u = _mm256_permute2x128_si256(x, y, 0x20);
        __m256i v = _mm256_permute2x128_si256(x, y, 0x31);
        __m128i t2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tw + h + i));
        __m128i tp2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(twp + h + i));
        __m256i s = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(t2), 0x50);
        __m256i sp = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(tp2), 0x50);
        __m256i lo = addmodx4(u, v, q);
        __m256i hi = mulshoupx4(submodx4(u, v, q), s, sp, q);
        storeu256(p, _mm256_permute2x128_si256(lo, hi, 0x20));
        storeu256(p + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
    }
}

// ------------------------------------------------------------------
// Butterfly-range stage variants for the stage-level entry points:
// the same networks restricted to butterflies [bLo, bHi) of one
// stage (butterfly b of a stage with span t lives at block i = b/t,
// offset j = b%t). All loads/stores are unaligned, so vector groups
// can start at any butterfly; only the shuffle stages need whole
// blocks per group, handled with scalar edge butterflies.
// ------------------------------------------------------------------

/** One scalar CT butterfly b of a forward stage with span t. */
inline void
fwdButterflyScalar(const Modulus &mod, u64 *a, size_t m, size_t t,
                   const u64 *tw, const u64 *twp, size_t b)
{
    size_t i = b / t;
    size_t j = b % t;
    u64 *p = a + 2 * i * t;
    u64 u = p[j];
    u64 v = mod.mulShoup(p[j + t], tw[m + i], twp[m + i]);
    p[j] = mod.add(u, v);
    p[j + t] = mod.sub(u, v);
}

/** One scalar GS butterfly b of an inverse stage with span t. */
inline void
invButterflyScalar(const Modulus &mod, u64 *a, size_t h, size_t t,
                   const u64 *tw, const u64 *twp, size_t b)
{
    size_t i = b / t;
    size_t j = b % t;
    u64 *p = a + 2 * i * t;
    u64 u = p[j];
    u64 v = p[j + t];
    p[j] = mod.add(u, v);
    p[j + t] = mod.mulShoup(mod.sub(u, v), tw[h + i], twp[h + i]);
}

/** Forward stage range with t >= 4: per-block j-subranges, vector
 *  body plus scalar tail inside each block. */
inline void
fwdStageRangeVecYmm(const Modulus &mod, u64 *a, size_t m, size_t t,
                    const u64 *tw, const u64 *twp, __m256i q,
                    size_t bLo, size_t bHi)
{
    size_t iLo = bLo / t;
    size_t iHi = (bHi + t - 1) / t;
    for (size_t i = iLo; i < iHi; ++i) {
        __m256i s = bcast256(tw[m + i]);
        __m256i sp = bcast256(twp[m + i]);
        size_t lo = bLo > i * t ? bLo - i * t : 0;
        size_t hi = bHi < (i + 1) * t ? bHi - i * t : t;
        u64 *p = a + 2 * i * t;
        size_t j = lo;
        for (; j + 4 <= hi; j += 4) {
            __m256i u = loadu256(p + j);
            __m256i v = mulshoupx4(loadu256(p + j + t), s, sp, q);
            storeu256(p + j, addmodx4(u, v, q));
            storeu256(p + j + t, submodx4(u, v, q));
        }
        for (; j < hi; ++j) {
            u64 u = p[j];
            u64 v = mod.mulShoup(p[j + t], tw[m + i], twp[m + i]);
            p[j] = mod.add(u, v);
            p[j + t] = mod.sub(u, v);
        }
    }
}

/** Forward stage range with t == 2: a vector group covers two whole
 *  blocks (butterflies [2i, 2i+4)), so at most one scalar head
 *  butterfly aligns b to a block start. */
inline void
fwdStageRangeT2Ymm(const Modulus &mod, u64 *a, size_t m, const u64 *tw,
                   const u64 *twp, __m256i q, size_t bLo, size_t bHi)
{
    size_t b = bLo;
    for (; b < bHi && b % 2 != 0; ++b) {
        fwdButterflyScalar(mod, a, m, 2, tw, twp, b);
    }
    for (; b + 4 <= bHi; b += 4) {
        size_t i = b / 2;
        u64 *p = a + 4 * i;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        __m256i u = _mm256_permute2x128_si256(x, y, 0x20);
        __m256i v = _mm256_permute2x128_si256(x, y, 0x31);
        __m128i t2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tw + m + i));
        __m128i tp2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(twp + m + i));
        __m256i s = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(t2), 0x50);
        __m256i sp = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(tp2), 0x50);
        __m256i w = mulshoupx4(v, s, sp, q);
        __m256i lo = addmodx4(u, w, q);
        __m256i hi = submodx4(u, w, q);
        storeu256(p, _mm256_permute2x128_si256(lo, hi, 0x20));
        storeu256(p + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
    }
    for (; b < bHi; ++b) {
        fwdButterflyScalar(mod, a, m, 2, tw, twp, b);
    }
}

/** Forward stage range with t == 1: butterfly b IS block b, so vector
 *  groups of four start anywhere. */
inline void
fwdStageRangeT1Ymm(const Modulus &mod, u64 *a, size_t m, const u64 *tw,
                   const u64 *twp, __m256i q, size_t bLo, size_t bHi)
{
    size_t b = bLo;
    for (; b + 4 <= bHi; b += 4) {
        u64 *p = a + 2 * b;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        __m256i u = _mm256_unpacklo_epi64(x, y);
        __m256i v = _mm256_unpackhi_epi64(x, y);
        __m256i s = _mm256_permute4x64_epi64(loadu256(tw + m + b), 0xD8);
        __m256i sp =
            _mm256_permute4x64_epi64(loadu256(twp + m + b), 0xD8);
        __m256i w = mulshoupx4(v, s, sp, q);
        __m256i lo = addmodx4(u, w, q);
        __m256i hi = submodx4(u, w, q);
        storeu256(p, _mm256_unpacklo_epi64(lo, hi));
        storeu256(p + 4, _mm256_unpackhi_epi64(lo, hi));
    }
    for (; b < bHi; ++b) {
        fwdButterflyScalar(mod, a, m, 1, tw, twp, b);
    }
}

/** Inverse stage range with t >= 4. */
inline void
invStageRangeVecYmm(const Modulus &mod, u64 *a, size_t h, size_t t,
                    const u64 *tw, const u64 *twp, __m256i q,
                    size_t bLo, size_t bHi)
{
    size_t iLo = bLo / t;
    size_t iHi = (bHi + t - 1) / t;
    for (size_t i = iLo; i < iHi; ++i) {
        __m256i s = bcast256(tw[h + i]);
        __m256i sp = bcast256(twp[h + i]);
        size_t lo = bLo > i * t ? bLo - i * t : 0;
        size_t hi = bHi < (i + 1) * t ? bHi - i * t : t;
        u64 *p = a + 2 * i * t;
        size_t j = lo;
        for (; j + 4 <= hi; j += 4) {
            __m256i u = loadu256(p + j);
            __m256i v = loadu256(p + j + t);
            storeu256(p + j, addmodx4(u, v, q));
            storeu256(p + j + t,
                      mulshoupx4(submodx4(u, v, q), s, sp, q));
        }
        for (; j < hi; ++j) {
            u64 u = p[j];
            u64 v = p[j + t];
            p[j] = mod.add(u, v);
            p[j + t] =
                mod.mulShoup(mod.sub(u, v), tw[h + i], twp[h + i]);
        }
    }
}

/** Inverse stage range with t == 1. */
inline void
invStageRangeT1Ymm(const Modulus &mod, u64 *a, size_t h, const u64 *tw,
                   const u64 *twp, __m256i q, size_t bLo, size_t bHi)
{
    size_t b = bLo;
    for (; b + 4 <= bHi; b += 4) {
        u64 *p = a + 2 * b;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        __m256i u = _mm256_unpacklo_epi64(x, y);
        __m256i v = _mm256_unpackhi_epi64(x, y);
        __m256i s = _mm256_permute4x64_epi64(loadu256(tw + h + b), 0xD8);
        __m256i sp =
            _mm256_permute4x64_epi64(loadu256(twp + h + b), 0xD8);
        __m256i lo = addmodx4(u, v, q);
        __m256i hi = mulshoupx4(submodx4(u, v, q), s, sp, q);
        storeu256(p, _mm256_unpacklo_epi64(lo, hi));
        storeu256(p + 4, _mm256_unpackhi_epi64(lo, hi));
    }
    for (; b < bHi; ++b) {
        invButterflyScalar(mod, a, h, 1, tw, twp, b);
    }
}

/** Inverse stage range with t == 2. */
inline void
invStageRangeT2Ymm(const Modulus &mod, u64 *a, size_t h, const u64 *tw,
                   const u64 *twp, __m256i q, size_t bLo, size_t bHi)
{
    size_t b = bLo;
    for (; b < bHi && b % 2 != 0; ++b) {
        invButterflyScalar(mod, a, h, 2, tw, twp, b);
    }
    for (; b + 4 <= bHi; b += 4) {
        size_t i = b / 2;
        u64 *p = a + 4 * i;
        __m256i x = loadu256(p);
        __m256i y = loadu256(p + 4);
        __m256i u = _mm256_permute2x128_si256(x, y, 0x20);
        __m256i v = _mm256_permute2x128_si256(x, y, 0x31);
        __m128i t2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(tw + h + i));
        __m128i tp2 = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(twp + h + i));
        __m256i s = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(t2), 0x50);
        __m256i sp = _mm256_permute4x64_epi64(
            _mm256_castsi128_si256(tp2), 0x50);
        __m256i lo = addmodx4(u, v, q);
        __m256i hi = mulshoupx4(submodx4(u, v, q), s, sp, q);
        storeu256(p, _mm256_permute2x128_si256(lo, hi, 0x20));
        storeu256(p + 4, _mm256_permute2x128_si256(lo, hi, 0x31));
    }
    for (; b < bHi; ++b) {
        invButterflyScalar(mod, a, h, 2, tw, twp, b);
    }
}

/** Final inverse stage with N^{-1} folded into both outputs (one
 *  block: h == 1, t == n/2, butterfly b == offset j). */
inline void
invStageRangeFusedYmm(const Modulus &mod, u64 *a, size_t t, u64 nInv,
                      u64 nInvP, u64 sL, u64 sLp, __m256i q, size_t bLo,
                      size_t bHi)
{
    __m256i ni = bcast256(nInv);
    __m256i nip = bcast256(nInvP);
    __m256i s = bcast256(sL);
    __m256i sp = bcast256(sLp);
    size_t j = bLo;
    for (; j + 4 <= bHi; j += 4) {
        __m256i u = loadu256(a + j);
        __m256i v = loadu256(a + j + t);
        storeu256(a + j, mulshoupx4(addmodx4(u, v, q), ni, nip, q));
        storeu256(a + j + t,
                  mulshoupx4(submodx4(u, v, q), s, sp, q));
    }
    for (; j < bHi; ++j) {
        u64 u = a[j];
        u64 v = a[j + t];
        a[j] = mod.mulShoup(mod.add(u, v), nInv, nInvP);
        a[j + t] = mod.mulShoup(mod.sub(u, v), sL, sLp);
    }
}

} // namespace
} // namespace simd
} // namespace trinity

#endif // __AVX2__
#endif // TRINITY_BACKEND_SIMD_AVX_INL_H
