#include "backend/registry.h"

#include <cstdlib>

#include "accel/configs.h"
#include "backend/serial_backend.h"
#include "backend/sim_backend.h"
#include "backend/simd_backend.h"
#include "backend/thread_pool_backend.h"
#include "common/logging.h"

namespace trinity {

BackendRegistry::BackendRegistry()
{
    registerFactory("serial", [] {
        return std::unique_ptr<PolyBackend>(new SerialBackend());
    });
    registerFactory("threads", [] {
        return std::unique_ptr<PolyBackend>(new ThreadPoolBackend());
    });
    // Single-threaded vector-lane engine; level picked by runtime
    // CPUID dispatch (avx512 -> avx2 -> scalar), forced via
    // TRINITY_SIMD_LEVEL. Also a valid TRINITY_SIM_INNER.
    registerFactory("simd", [] {
        return std::unique_ptr<PolyBackend>(new SimdBackend());
    });
    // The simulated-accelerator timing backend: a functional engine
    // wrapped so every batch charges cycles to a machine model.
    registerFactory("sim", [this] {
        const char *inner_env = std::getenv("TRINITY_SIM_INNER");
        std::string inner_name = inner_env != nullptr ? inner_env
                                                      : "serial";
        if (inner_name == "sim") {
            trinity_fatal("TRINITY_SIM_INNER=sim would wrap the timing "
                          "backend in itself (recursive self-wrapping); "
                          "pick a functional inner engine: %s",
                          listEngines("sim").c_str());
        }
        if (find(inner_name) == nullptr) {
            trinity_fatal("unknown TRINITY_SIM_INNER engine '%s'; valid "
                          "inner engines: %s",
                          inner_name.c_str(), listEngines("sim").c_str());
        }
        const char *machine_env = std::getenv("TRINITY_SIM_MACHINE");
        sim::Machine machine = accel::machineByName(
            machine_env != nullptr ? machine_env : "trinity-ckks");
        return std::unique_ptr<PolyBackend>(new SimBackend(
            create(inner_name), std::move(machine)));
    });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry reg;
    return reg;
}

void
BackendRegistry::registerFactory(const std::string &name, Factory factory)
{
    for (auto &entry : factories_) {
        if (entry.first == name) {
            entry.second = std::move(factory);
            return;
        }
    }
    factories_.emplace_back(name, std::move(factory));
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &entry : factories_) {
        out.push_back(entry.first);
    }
    return out;
}

std::string
BackendRegistry::listEngines(const std::string &exclude) const
{
    std::string out;
    for (const auto &name : names()) {
        if (!exclude.empty() && name == exclude) {
            continue;
        }
        if (!out.empty()) {
            out += ", ";
        }
        out += name;
    }
    return out;
}

const BackendRegistry::Factory *
BackendRegistry::find(const std::string &name) const
{
    for (const auto &entry : factories_) {
        if (entry.first == name) {
            return &entry.second;
        }
    }
    return nullptr;
}

std::unique_ptr<PolyBackend>
BackendRegistry::create(const std::string &name)
{
    if (const Factory *factory = find(name)) {
        return (*factory)();
    }
    trinity_fatal("unknown poly backend '%s'; registered engines: %s",
                  name.c_str(), listEngines().c_str());
}

PolyBackend &
BackendRegistry::active()
{
    if (!active_) {
        const char *env = std::getenv("TRINITY_BACKEND");
        select(env != nullptr ? env : "serial");
    }
    return *active_;
}

void
BackendRegistry::select(const std::string &name)
{
    if (const Factory *factory = find(name)) {
        active_ = (*factory)();
        return;
    }
    trinity_fatal("unknown poly backend '%s' (TRINITY_BACKEND); "
                  "registered engines: %s",
                  name.c_str(), listEngines().c_str());
}

void
BackendRegistry::use(std::unique_ptr<PolyBackend> backend)
{
    trinity_assert(backend != nullptr, "null backend");
    active_ = std::move(backend);
}

PolyBackend &
activeBackend()
{
    return BackendRegistry::instance().active();
}

} // namespace trinity
