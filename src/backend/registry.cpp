#include "backend/registry.h"

#include <cstdlib>

#include "backend/serial_backend.h"
#include "backend/thread_pool_backend.h"
#include "common/logging.h"

namespace trinity {

BackendRegistry::BackendRegistry()
{
    registerFactory("serial", [] {
        return std::unique_ptr<PolyBackend>(new SerialBackend());
    });
    registerFactory("threads", [] {
        return std::unique_ptr<PolyBackend>(new ThreadPoolBackend());
    });
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry reg;
    return reg;
}

void
BackendRegistry::registerFactory(const std::string &name, Factory factory)
{
    for (auto &entry : factories_) {
        if (entry.first == name) {
            entry.second = std::move(factory);
            return;
        }
    }
    factories_.emplace_back(name, std::move(factory));
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(factories_.size());
    for (const auto &entry : factories_) {
        out.push_back(entry.first);
    }
    return out;
}

PolyBackend &
BackendRegistry::active()
{
    if (!active_) {
        const char *env = std::getenv("TRINITY_BACKEND");
        select(env != nullptr ? env : "serial");
    }
    return *active_;
}

void
BackendRegistry::select(const std::string &name)
{
    for (const auto &entry : factories_) {
        if (entry.first == name) {
            active_ = entry.second();
            return;
        }
    }
    trinity_fatal("unknown poly backend '%s' (TRINITY_BACKEND)",
                  name.c_str());
}

void
BackendRegistry::use(std::unique_ptr<PolyBackend> backend)
{
    trinity_assert(backend != nullptr, "null backend");
    active_ = std::move(backend);
}

PolyBackend &
activeBackend()
{
    return BackendRegistry::instance().active();
}

} // namespace trinity
