/**
 * @file
 * Single-threaded engine that executes every limb job through the
 * widest SIMD KernelSet the build + CPU + TRINITY_SIMD_LEVEL allow —
 * the software analogue of one Trinity BU/PE lane group working
 * through a batch in order. Jobs run on the calling thread in
 * submission order (like SerialBackend); the parallelism is *inside*
 * each limb kernel. For threads-across-limbs × SIMD-within-a-limb,
 * use ThreadPoolBackend, which installs the same kernel set.
 *
 * Registered as "simd". Dispatch: AVX-512 → AVX2 → scalar, override
 * with TRINITY_SIMD_LEVEL=scalar|avx2|avx512 (strict; forcing an
 * unavailable level is fatal). Bit-identical to "serial" at every
 * level.
 */

#ifndef TRINITY_BACKEND_SIMD_BACKEND_H
#define TRINITY_BACKEND_SIMD_BACKEND_H

#include "backend/poly_backend.h"
#include "backend/simd_kernels.h"

namespace trinity {

class SimdBackend final : public PolyBackend
{
  public:
    /** Resolve the level from TRINITY_SIMD_LEVEL / CPUID. */
    SimdBackend() : SimdBackend(simd::resolveLevel()) {}

    /** Pin an explicit level (fatal when unavailable) — benches and
     *  tests sweep levels this way without touching the env. */
    explicit SimdBackend(simd::Level level)
    {
        useKernels(simd::kernelsForLevel(level));
    }

    const char *name() const override { return "simd"; }
    size_t threadCount() const override { return 1; }

    simd::Level level() const { return kernels().level; }
    size_t lanes() const { return kernels().lanes; }

    /**
     * Vector units saturate on deep fused batches, not merely on
     * worker count: a PBS batch B× wide turns every backend call into
     * B contiguous same-shape spans, which is exactly what keeps the
     * lanes full. Ask for 4 jobs per lane, floor 8 (the scalar
     * engine's key-reuse sweet spot).
     */
    size_t
    preferredBatch() const override
    {
        size_t want = 4 * lanes();
        return want < 8 ? 8 : want;
    }

  protected:
    void
    parallelFor(size_t count,
                const std::function<void(size_t)> &fn) override
    {
        for (size_t i = 0; i < count; ++i) {
            fn(i);
        }
    }
};

} // namespace trinity

#endif // TRINITY_BACKEND_SIMD_BACKEND_H
