/**
 * @file
 * Precomputed gather tables for the Galois automorphism X -> X^g on
 * the negacyclic ring R_q[X]/(X^n + 1), cached per (n, g) the same way
 * NttTableCache caches twiddle tables per (n, q).
 *
 * The forward map sends coefficient c to exponent e = (c*g) mod 2n:
 * dst[e] = src[c] when e < n, dst[e - n] = -src[c] otherwise. Walking
 * outputs instead of inputs turns the kernel into a pure gather —
 * dst[c] = +-src[perm[c]] — with the sign carried as a full 64-bit
 * lane mask (0 or ~0) so vector engines can blend the negated lane
 * without a branch. The per-coefficient (c*g) % 2n divide of the old
 * scalar body disappears into table construction, which builds the
 * permutation with one add-and-wrap per coefficient.
 */

#ifndef TRINITY_BACKEND_AUTO_TABLE_H
#define TRINITY_BACKEND_AUTO_TABLE_H

#include <cstddef>
#include <memory>
#include <vector>

#include "common/types.h"

namespace trinity {

class AutoTable
{
  public:
    /** Build the gather tables for X -> X^g over n coefficients.
     *  @param g odd automorphism index (gcd(g, 2n) = 1). */
    AutoTable(size_t n, u64 g);

    size_t n() const { return perm_.size(); }
    u64 g() const { return g_; }

    /** Source index per output coefficient: dst[c] reads src[perm[c]]. */
    const u64 *perm() const { return perm_.data(); }

    /** Per-output negate flag as a full lane mask: 0 keeps the gathered
     *  value, ~0 selects its modular negation. */
    const u64 *signMask() const { return signMask_.data(); }

  private:
    std::vector<u64> perm_;
    std::vector<u64> signMask_;
    u64 g_;
};

/**
 * Process-wide cache of automorphism tables keyed by (n, g). CKKS
 * rotations reuse a handful of generators across every call, so the
 * O(n) construction happens once per key; tables are immutable and
 * shared, so concurrent backend workers may hit the cache freely.
 */
class AutoTableCache
{
  public:
    static std::shared_ptr<const AutoTable> get(size_t n, u64 g);
};

} // namespace trinity

#endif // TRINITY_BACKEND_AUTO_TABLE_H
