#include "backend/command_stream.h"

#include <atomic>

#include "backend/kernel_events.h"
#include "common/env.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace trinity {

namespace {

/** -1: follow TRINITY_STREAMS; 0/1: forced by overrideStreams(). */
std::atomic<int> g_streamsOverride{-1};

} // namespace

bool
streamsEnabled()
{
    int forced = g_streamsOverride.load(std::memory_order_relaxed);
    if (forced >= 0) {
        return forced != 0;
    }
    static const bool enabled = [] {
        static const char *const choices[] = {"on", "off"};
        size_t idx = 0;
        if (envChoice("TRINITY_STREAMS", choices, 2, idx)) {
            return idx == 0;
        }
        return true;
    }();
    return enabled;
}

void
overrideStreams(int mode)
{
    g_streamsOverride.store(mode < 0 ? -1 : (mode != 0 ? 1 : 0),
                            std::memory_order_relaxed);
}

CommandStream::CommandStream(PolyBackend &owner) : owner_(owner)
{
    // Ids start at 1 so 0 can mean "no stream" in caller-side caches.
    static std::atomic<u64> next_id{1};
    id_ = next_id.fetch_add(1, std::memory_order_relaxed);
}

void
CommandStream::Command::clearPayload(bool keep_events)
{
    ntt = {};
    elt = {};
    mad = {};
    nma = {};
    nia = {};
    smul = {};
    aut = {};
    bconvIn = {};
    bconvOut = {};
    fn = nullptr;
    if (!keep_events) {
        events = {};
    }
}

size_t
CommandStream::Command::jobCount() const
{
    switch (op) {
    case Op::NttFwd:
    case Op::NttInv:
        return ntt.size();
    case Op::Mul:
    case Op::Add:
    case Op::Sub:
    case Op::Neg:
        return elt.size();
    case Op::MulAdd:
        return mad.size();
    case Op::NttMulAdd:
        return nma.size();
    case Op::NttInvAdd:
        return nia.size();
    case Op::ScalarMul:
        return smul.size();
    case Op::Auto:
        return aut.size();
    case Op::BConv:
        // The two BConv passes carry an internal barrier, so the
        // command schedules as one unit and runs inline on a worker.
        return 1;
    case Op::BConvP1:
        return plan.numFrom; // one scaling job per source limb
    case Op::BConvP2:
        return bconvTiles; // coefficient-tile jobs of one target limb
    case Op::Task:
        return taskCount;
    case Op::Fence:
        return 0;
    }
    return 0;
}

const char *
CommandStream::opName(Op op)
{
    switch (op) {
    case Op::NttFwd:
        return "nttFwd";
    case Op::NttInv:
        return "nttInv";
    case Op::Mul:
        return "mul";
    case Op::Add:
        return "add";
    case Op::Sub:
        return "sub";
    case Op::Neg:
        return "neg";
    case Op::MulAdd:
        return "mulAdd";
    case Op::NttMulAdd:
        return "nttMulAdd";
    case Op::NttInvAdd:
        return "nttInvAdd";
    case Op::ScalarMul:
        return "scalarMul";
    case Op::Auto:
        return "auto";
    case Op::BConv:
        return "bconv";
    case Op::BConvP1:
        return "bconvP1";
    case Op::BConvP2:
        return "bconvP2";
    case Op::Task:
        return "task";
    case Op::Fence:
        return "fence";
    }
    return "?";
}

Job
CommandStream::record(Command c, std::vector<Job> deps)
{
    if (submitted_) {
        trinity_fatal("CommandStream: recording after submit() — a "
                      "stream records once, then executes");
    }
    trinity_assert(cmds_.size() < Job::kInvalid,
                   "CommandStream: too many commands");
    c.deps.reserve(deps.size());
    for (Job d : deps) {
        if (!d.valid()) {
            continue; // first-iteration handles
        }
        trinity_assert(d.id < cmds_.size(),
                       "CommandStream: dependency on a job not "
                       "recorded in this stream");
        c.deps.push_back(d.id);
    }
    // Stamp the record-time op scope into the kernel metadata so
    // deferred executors attribute work to the operation that
    // recorded it, not to whatever runs at execution time.
    for (KernelEvent &ev : c.events) {
        ev.scope = currentOpScope();
    }
    cmds_.push_back(std::move(c));
    onRecord(cmds_.back());
    return Job{static_cast<u32>(cmds_.size() - 1)};
}

Job
CommandStream::nttForward(std::vector<NttJob> jobs, std::vector<Job> deps)
{
    Command c;
    c.op = Op::NttFwd;
    if (recordEvents_) {
        c.events = {kernel_events::ntt(jobs.data(), jobs.size(), true)};
    }
    c.ntt = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::nttInverse(std::vector<NttJob> jobs, std::vector<Job> deps)
{
    Command c;
    c.op = Op::NttInv;
    if (recordEvents_) {
        c.events = {
            kernel_events::ntt(jobs.data(), jobs.size(), false)};
    }
    c.ntt = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::pointwiseMul(std::vector<EltwiseJob> jobs,
                            std::vector<Job> deps)
{
    Command c;
    c.op = Op::Mul;
    if (recordEvents_) {
        c.events = {kernel_events::eltwise(
            sim::KernelType::ModMul, jobs.data(), jobs.size(), 24)};
    }
    c.elt = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::add(std::vector<EltwiseJob> jobs, std::vector<Job> deps)
{
    Command c;
    c.op = Op::Add;
    if (recordEvents_) {
        c.events = {kernel_events::eltwise(
            sim::KernelType::ModAdd, jobs.data(), jobs.size(), 24)};
    }
    c.elt = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::sub(std::vector<EltwiseJob> jobs, std::vector<Job> deps)
{
    Command c;
    c.op = Op::Sub;
    if (recordEvents_) {
        c.events = {kernel_events::eltwise(
            sim::KernelType::ModAdd, jobs.data(), jobs.size(), 24)};
    }
    c.elt = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::neg(std::vector<EltwiseJob> jobs, std::vector<Job> deps)
{
    Command c;
    c.op = Op::Neg;
    if (recordEvents_) {
        c.events = {kernel_events::eltwise(
            sim::KernelType::ModAdd, jobs.data(), jobs.size(), 16)};
    }
    c.elt = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::mulAdd(std::vector<MulAddJob> jobs, std::vector<Job> deps)
{
    Command c;
    c.op = Op::MulAdd;
    if (recordEvents_) {
        c.events = {kernel_events::mulAdd(jobs.data(), jobs.size())};
    }
    c.mad = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::nttForwardMulAdd(std::vector<NttMulAddJob> jobs,
                                std::vector<Job> deps)
{
    Command c;
    c.op = Op::NttMulAdd;
    if (recordEvents_) {
        // Two chained events: the recorder links a command's events
        // sequentially, so the sim prices the transform feeding the
        // MAC exactly as the unfused NTT -> MulAdd pair would.
        c.events = {
            kernel_events::nttOfNttMulAdd(jobs.data(), jobs.size()),
            kernel_events::ipOfNttMulAdd(jobs.data(), jobs.size())};
    }
    c.nma = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::nttInverseAdd(std::vector<NttInvAddJob> jobs,
                             std::vector<Job> deps)
{
    Command c;
    c.op = Op::NttInvAdd;
    if (recordEvents_) {
        c.events = {
            kernel_events::inttOfNttInvAdd(jobs.data(), jobs.size()),
            kernel_events::addOfNttInvAdd(jobs.data(), jobs.size())};
    }
    c.nia = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::scalarMul(std::vector<ScalarMulJob> jobs,
                         std::vector<Job> deps)
{
    Command c;
    c.op = Op::ScalarMul;
    if (recordEvents_) {
        c.events = {
            kernel_events::scalarMul(jobs.data(), jobs.size())};
    }
    c.smul = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::automorphism(std::vector<AutoJob> jobs,
                            std::vector<Job> deps)
{
    Command c;
    c.op = Op::Auto;
    if (recordEvents_) {
        c.events = {
            kernel_events::automorphism(jobs.data(), jobs.size())};
    }
    c.aut = std::move(jobs);
    return record(std::move(c), std::move(deps));
}

Job
CommandStream::baseConvert(const BConvPlan &plan,
                           std::vector<const u64 *> in,
                           std::vector<u64 *> out, size_t n,
                           std::vector<Job> deps)
{
    trinity_assert(in.size() == plan.numFrom && out.size() == plan.numTo,
                   "baseConvert: limb pointer count mismatch");
    Command c;
    c.op = Op::BConv;
    if (recordEvents_) {
        c.events = {kernel_events::baseConvert(plan, n)};
    }
    c.plan = plan;
    c.bconvIn = std::move(in);
    c.bconvOut = std::move(out);
    c.bconvN = n;
    return record(std::move(c), std::move(deps));
}

namespace {

/** Pass-2 tile length: small enough that one target limb's matrix
 *  product splits across several workers at common ring sizes, large
 *  enough that a tile amortizes its scheduling overhead. */
constexpr size_t kBConvTile = 1024;

} // namespace

std::vector<Job>
CommandStream::baseConvertPhased(const BConvPlan &plan,
                                 std::vector<const u64 *> in,
                                 std::vector<u64 *> out, size_t n,
                                 std::vector<Job> deps)
{
    trinity_assert(in.size() == plan.numFrom && out.size() == plan.numTo,
                   "baseConvertPhased: limb pointer count mismatch");
    scratch_.push_back(ScratchArena::local().acquire(plan.numFrom * n));
    u64 *v = scratch_.back().data();

    Command p1;
    p1.op = Op::BConvP1;
    if (recordEvents_) {
        p1.events = {kernel_events::baseConvertPass1(plan, n)};
    }
    p1.plan = plan;
    p1.bconvIn = std::move(in);
    p1.bconvV = v;
    p1.bconvN = n;
    Job pass1 = record(std::move(p1), std::move(deps));

    std::vector<Job> handles(plan.numTo);
    for (size_t j = 0; j < plan.numTo; ++j) {
        Command p2;
        p2.op = Op::BConvP2;
        if (recordEvents_) {
            p2.events = {kernel_events::baseConvertPass2(plan, n)};
        }
        p2.plan = plan;
        p2.bconvOut = {out[j]};
        p2.bconvV = v;
        p2.bconvN = n;
        p2.bconvLimb = j;
        p2.bconvTile = kBConvTile;
        p2.bconvTiles = (n + kBConvTile - 1) / kBConvTile;
        handles[j] = record(std::move(p2), {pass1});
    }
    return handles;
}

Job
CommandStream::task(size_t count, std::function<void(size_t)> fn,
                    std::vector<Job> deps,
                    std::vector<KernelEvent> events)
{
    Command c;
    c.op = Op::Task;
    c.taskCount = count;
    c.fn = std::move(fn);
    c.events = std::move(events);
    return record(std::move(c), std::move(deps));
}

Event
CommandStream::fence()
{
    Command c;
    c.op = Op::Fence;
    std::vector<Job> deps;
    deps.reserve(cmds_.size());
    for (size_t i = 0; i < cmds_.size(); ++i) {
        deps.push_back(Job{static_cast<u32>(i)});
    }
    return record(std::move(c), std::move(deps));
}

void
CommandStream::submit()
{
    if (submitted_) {
        trinity_fatal("CommandStream: submit() called twice");
    }
    submitted_ = true;
    onSubmit();
}

void
CommandStream::wait()
{
    if (!submitted_) {
        trinity_fatal("wait() on an unsubmitted CommandStream (%zu "
                      "recorded commands would never run) — call "
                      "submit() first",
                      cmds_.size());
    }
    onWait();
}

void
CommandStream::executeBlocking(PolyBackend &b, const Command &c)
{
    switch (c.op) {
    case Op::NttFwd:
        b.nttForwardBatch(c.ntt.data(), c.ntt.size());
        break;
    case Op::NttInv:
        b.nttInverseBatch(c.ntt.data(), c.ntt.size());
        break;
    case Op::Mul:
        b.pointwiseMulBatch(c.elt.data(), c.elt.size());
        break;
    case Op::Add:
        b.addBatch(c.elt.data(), c.elt.size());
        break;
    case Op::Sub:
        b.subBatch(c.elt.data(), c.elt.size());
        break;
    case Op::Neg:
        b.negBatch(c.elt.data(), c.elt.size());
        break;
    case Op::MulAdd:
        b.mulAddBatch(c.mad.data(), c.mad.size());
        break;
    case Op::NttMulAdd:
        b.nttForwardMulAddBatch(c.nma.data(), c.nma.size());
        break;
    case Op::NttInvAdd:
        b.nttInverseAddBatch(c.nia.data(), c.nia.size());
        break;
    case Op::ScalarMul:
        b.scalarMulBatch(c.smul.data(), c.smul.size());
        break;
    case Op::Auto:
        b.automorphismBatch(c.aut.data(), c.aut.size());
        break;
    case Op::BConv:
        b.baseConvert(c.plan, c.bconvIn.data(), c.bconvOut.data(),
                      c.bconvN);
        break;
    case Op::BConvP1: {
        std::vector<BConvPass1Job> jobs(c.plan.numFrom);
        for (size_t i = 0; i < c.plan.numFrom; ++i) {
            jobs[i] = {c.bconvV + i * c.bconvN, c.bconvIn[i],
                       c.plan.qhatInv[i],       c.plan.qhatInvPrecon[i],
                       &c.plan.fromMods[i],     c.bconvN};
        }
        b.baseConvertPass1Batch(jobs.data(), jobs.size());
        break;
    }
    case Op::BConvP2: {
        BConvPass2Job j = {c.bconvOut[0],
                           c.bconvV,
                           c.bconvN,
                           c.plan.numFrom,
                           c.plan.qhatModP + c.bconvLimb,
                           c.plan.numTo,
                           &c.plan.toMods[c.bconvLimb],
                           c.bconvN};
        b.baseConvertPass2Batch(&j, 1);
        break;
    }
    case Op::Task:
        b.run(c.taskCount, c.fn);
        break;
    case Op::Fence:
        break;
    }
}

void
CommandStream::executeJob(PolyBackend &b, const Command &c, size_t i)
{
    switch (c.op) {
    case Op::NttFwd:
        b.nttForwardBatch(&c.ntt[i], 1);
        break;
    case Op::NttInv:
        b.nttInverseBatch(&c.ntt[i], 1);
        break;
    case Op::Mul:
        b.pointwiseMulBatch(&c.elt[i], 1);
        break;
    case Op::Add:
        b.addBatch(&c.elt[i], 1);
        break;
    case Op::Sub:
        b.subBatch(&c.elt[i], 1);
        break;
    case Op::Neg:
        b.negBatch(&c.elt[i], 1);
        break;
    case Op::MulAdd:
        b.mulAddBatch(&c.mad[i], 1);
        break;
    case Op::NttMulAdd:
        b.nttForwardMulAddBatch(&c.nma[i], 1);
        break;
    case Op::NttInvAdd:
        b.nttInverseAddBatch(&c.nia[i], 1);
        break;
    case Op::ScalarMul:
        b.scalarMulBatch(&c.smul[i], 1);
        break;
    case Op::Auto:
        b.automorphismBatch(&c.aut[i], 1);
        break;
    case Op::BConv:
        b.baseConvert(c.plan, c.bconvIn.data(), c.bconvOut.data(),
                      c.bconvN);
        break;
    case Op::BConvP1: {
        BConvPass1Job j = {c.bconvV + i * c.bconvN,
                           c.bconvIn[i],
                           c.plan.qhatInv[i],
                           c.plan.qhatInvPrecon[i],
                           &c.plan.fromMods[i],
                           c.bconvN};
        b.baseConvertPass1Batch(&j, 1);
        break;
    }
    case Op::BConvP2: {
        size_t c0 = i * c.bconvTile;
        size_t len = c.bconvN - c0 < c.bconvTile ? c.bconvN - c0
                                                 : c.bconvTile;
        BConvPass2Job j = {c.bconvOut[0] + c0,
                           c.bconvV + c0,
                           c.bconvN,
                           c.plan.numFrom,
                           c.plan.qhatModP + c.bconvLimb,
                           c.plan.numTo,
                           &c.plan.toMods[c.bconvLimb],
                           len};
        b.baseConvertPass2Batch(&j, 1);
        break;
    }
    case Op::Task:
        c.fn(i);
        break;
    case Op::Fence:
        break;
    }
}

void
EagerStream::onRecord(Command &c)
{
    // The blocking path announced escape-hatch kernels via explicit
    // emitKernel() calls before run(); replay the recorded metadata so
    // observers see the same events in the same order. Named batch ops
    // emit through the engine's own decorator (if any), exactly as a
    // direct blocking call would.
    if (c.op == Op::Task && profilingActive()) {
        for (const KernelEvent &ev : c.events) {
            emitKernelPrestamped(ev); // scope stamped at record
        }
    }
    executeBlocking(owner_, c);
    // Nothing reads the command after execution; drop the payload so
    // a long recording does not accumulate every job vector/closure.
    c.clearPayload(/*keep_events=*/false);
}

bool
CoalescingEagerStream::coalescible(Op op)
{
    switch (op) {
    case Op::NttFwd:
    case Op::NttInv:
    case Op::Mul:
    case Op::Add:
    case Op::Sub:
    case Op::Neg:
    case Op::MulAdd:
    case Op::NttMulAdd:
    case Op::NttInvAdd:
    case Op::ScalarMul:
    case Op::Auto:
        return true;
    default:
        // BConv/BConvP1/BConvP2 carry per-command pointers beyond the
        // job vectors; Task closures and fences have no batch form.
        return false;
    }
}

bool
CoalescingEagerStream::depInWindow(const Command &c) const
{
    for (u32 d : c.deps) {
        for (u32 w : window_) {
            if (d == w) {
                return true;
            }
        }
    }
    return false;
}

void
CoalescingEagerStream::executeNow(Command &c)
{
    if (c.op == Op::Task && profilingActive()) {
        for (const KernelEvent &ev : c.events) {
            emitKernelPrestamped(ev); // scope stamped at record
        }
    }
    executeBlocking(owner_, c);
    c.clearPayload(/*keep_events=*/false);
}

void
CoalescingEagerStream::flush()
{
    if (window_.empty()) {
        return;
    }
    if (window_.size() == 1) {
        executeNow(cmds_[window_[0]]);
        window_.clear();
        return;
    }
    // Window members are mutually independent commands of one op;
    // concatenating their job vectors in record order and issuing one
    // wide batch call is exactly the dispatch a single wide recording
    // would have made.
    static obs::Counter &windows =
        obs::MetricsRegistry::instance().counter(
            "stream.coalesced_windows");
    windows.add();
    switch (windowOp_) {
    case Op::NttFwd:
    case Op::NttInv: {
        std::vector<NttJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].ntt.begin(),
                       cmds_[w].ntt.end());
        }
        if (windowOp_ == Op::NttFwd) {
            owner_.nttForwardBatch(all.data(), all.size());
        } else {
            owner_.nttInverseBatch(all.data(), all.size());
        }
        break;
    }
    case Op::Mul:
    case Op::Add:
    case Op::Sub:
    case Op::Neg: {
        std::vector<EltwiseJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].elt.begin(),
                       cmds_[w].elt.end());
        }
        if (windowOp_ == Op::Mul) {
            owner_.pointwiseMulBatch(all.data(), all.size());
        } else if (windowOp_ == Op::Add) {
            owner_.addBatch(all.data(), all.size());
        } else if (windowOp_ == Op::Sub) {
            owner_.subBatch(all.data(), all.size());
        } else {
            owner_.negBatch(all.data(), all.size());
        }
        break;
    }
    case Op::MulAdd: {
        std::vector<MulAddJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].mad.begin(),
                       cmds_[w].mad.end());
        }
        owner_.mulAddBatch(all.data(), all.size());
        break;
    }
    case Op::NttMulAdd: {
        std::vector<NttMulAddJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].nma.begin(),
                       cmds_[w].nma.end());
        }
        owner_.nttForwardMulAddBatch(all.data(), all.size());
        break;
    }
    case Op::NttInvAdd: {
        std::vector<NttInvAddJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].nia.begin(),
                       cmds_[w].nia.end());
        }
        owner_.nttInverseAddBatch(all.data(), all.size());
        break;
    }
    case Op::ScalarMul: {
        std::vector<ScalarMulJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].smul.begin(),
                       cmds_[w].smul.end());
        }
        owner_.scalarMulBatch(all.data(), all.size());
        break;
    }
    case Op::Auto: {
        std::vector<AutoJob> all;
        for (u32 w : window_) {
            all.insert(all.end(), cmds_[w].aut.begin(),
                       cmds_[w].aut.end());
        }
        owner_.automorphismBatch(all.data(), all.size());
        break;
    }
    default:
        trinity_fatal("CoalescingEagerStream: non-batchable op in "
                      "coalescing window");
    }
    for (u32 w : window_) {
        cmds_[w].clearPayload(/*keep_events=*/false);
    }
    window_.clear();
}

void
CoalescingEagerStream::onRecord(Command &c)
{
    u32 idx = static_cast<u32>(cmds_.size() - 1);
    if (!coalescible(c.op)) {
        flush();
        executeNow(c);
        return;
    }
    if (!window_.empty() &&
        (c.op != windowOp_ || depInWindow(c))) {
        flush();
    }
    windowOp_ = c.op;
    window_.push_back(idx);
}

} // namespace trinity
