/**
 * @file
 * Scalar KernelSet (the bit-exact reference lane) and the runtime
 * dispatch gluing CPUID detection, build-time availability, and the
 * TRINITY_SIMD_LEVEL override together.
 */

#include "backend/simd_kernels.h"

#include "common/env.h"
#include "common/logging.h"
#include "poly/ntt.h"

namespace trinity {
namespace simd {

namespace {

void
nttForwardScalar(const NttTable &table, u64 *a)
{
    table.forward(a);
}

void
nttInverseScalar(const NttTable &table, u64 *a)
{
    table.inverse(a);
}

void
nttForwardStagesScalar(const NttTable &table, u64 *a, size_t stage_lo,
                       size_t stage_hi, size_t b_lo, size_t b_hi)
{
    table.forwardStages(a, stage_lo, stage_hi, b_lo, b_hi);
}

void
nttInverseStagesScalar(const NttTable &table, u64 *a, size_t stage_lo,
                       size_t stage_hi, size_t b_lo, size_t b_hi,
                       bool scale_n)
{
    table.inverseStages(a, stage_lo, stage_hi, b_lo, b_hi, scale_n);
}

void
addScalar(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
          size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        dst[c] = mod.add(a[c], b[c]);
    }
}

void
subScalar(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
          size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        dst[c] = mod.sub(a[c], b[c]);
    }
}

void
negScalar(u64 *dst, const u64 *a, const Modulus &mod, size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        dst[c] = mod.neg(a[c]);
    }
}

void
mulScalar(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
          size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        dst[c] = mod.mul(a[c], b[c]);
    }
}

void
mulAddScalar(u64 *dst, const u64 *a, const u64 *b, const Modulus &mod,
             size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        dst[c] = mod.mulAdd(a[c], b[c], dst[c]);
    }
}

void
scalarMulScalar(u64 *dst, const u64 *src, u64 scalar, const Modulus &mod,
                size_t n)
{
    u64 pre = mod.shoupPrecompute(scalar);
    for (size_t c = 0; c < n; ++c) {
        dst[c] = mod.mulShoup(src[c], scalar, pre);
    }
}

void
automorphismScalar(u64 *dst, const u64 *src, const u64 *perm,
                   const u64 *sign, const Modulus &mod, size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        u64 x = src[perm[c]];
        dst[c] = sign[c] ? mod.neg(x) : x;
    }
}

void
bconvPass1Scalar(u64 *v, const u64 *x, u64 w, u64 w_pre,
                 const Modulus &mod, size_t n)
{
    for (size_t c = 0; c < n; ++c) {
        v[c] = mod.mulShoup(x[c], w, w_pre);
    }
}

void
bconvPass2Scalar(u64 *y, const u64 *v, size_t v_stride, size_t k,
                 const u64 *w, size_t w_stride, const Modulus &mod,
                 size_t n)
{
    // Lazy accumulation: with v, w < 2^62 each product is < 2^124, so
    // up to kBconvChunk = 16 raw products fit a u128 without wrapping;
    // one exact fold per chunk replaces a reduction per term. The
    // folded residue equals (sum_i v_i * w_i) mod q — the same value
    // the term-by-term reduction produces — so outputs are unchanged.
    for (size_t c = 0; c < n; ++c) {
        u64 r = 0;
        size_t i = 0;
        while (i < k) {
            size_t end = i + kBconvChunk < k ? i + kBconvChunk : k;
            u128 acc = 0;
            for (; i < end; ++i) {
                acc += static_cast<u128>(v[i * v_stride + c]) *
                       w[i * w_stride];
            }
            r = mod.add(r, mod.reduce128(acc));
        }
        y[c] = r;
    }
}

void
nttForwardMulAddScalar(const NttTable &table, u64 *a, const u64 *b0,
                       u64 *acc0, const u64 *b1, u64 *acc1)
{
    table.forward(a);
    mulAddScalar(acc0, a, b0, table.modulus(), table.n());
    if (acc1 != nullptr) {
        mulAddScalar(acc1, a, b1, table.modulus(), table.n());
    }
}

void
nttInverseAddScalar(const NttTable &table, u64 *a, u64 *acc)
{
    table.inverse(a);
    addScalar(acc, acc, a, table.modulus(), table.n());
}

const char *const kLevelNames[] = {"scalar", "avx2", "avx512"};

const KernelSet *
kernelsOrNull(Level level)
{
    switch (level) {
    case Level::Scalar:
        return &scalarKernels();
    case Level::Avx2:
        return avx2KernelsOrNull();
    case Level::Avx512:
        return avx512KernelsOrNull();
    }
    return nullptr;
}

} // namespace

const KernelSet &
scalarKernels()
{
    static const KernelSet set = {
        Level::Scalar,          1,
        nttForwardScalar,       nttInverseScalar,
        nttForwardStagesScalar, nttInverseStagesScalar,
        nttForwardMulAddScalar, nttInverseAddScalar,
        addScalar,              subScalar,
        negScalar,              mulScalar,
        mulAddScalar,           scalarMulScalar,
        automorphismScalar,     bconvPass1Scalar,
        bconvPass2Scalar,
    };
    return set;
}

const char *
levelName(Level level)
{
    return kLevelNames[static_cast<size_t>(level)];
}

Level
detectCpuLevel()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq")) {
        return Level::Avx512;
    }
    if (__builtin_cpu_supports("avx2")) {
        return Level::Avx2;
    }
#endif
    return Level::Scalar;
}

bool
levelAvailable(Level level)
{
    if (level == Level::Scalar) {
        return true;
    }
    return kernelsOrNull(level) != nullptr && detectCpuLevel() >= level;
}

Level
bestAvailableLevel()
{
    for (Level level : {Level::Avx512, Level::Avx2}) {
        if (levelAvailable(level)) {
            return level;
        }
    }
    return Level::Scalar;
}

std::string
availableLevels()
{
    std::string out = levelName(Level::Scalar);
    for (Level level : {Level::Avx2, Level::Avx512}) {
        if (levelAvailable(level)) {
            out += ", ";
            out += levelName(level);
        }
    }
    return out;
}

Level
resolveLevel()
{
    size_t idx = 0;
    if (!envChoice("TRINITY_SIMD_LEVEL", kLevelNames, 3, idx)) {
        return bestAvailableLevel();
    }
    Level want = static_cast<Level>(idx);
    if (!levelAvailable(want)) {
        const char *why = kernelsOrNull(want) == nullptr
                              ? "this build does not compile it in"
                              : "this CPU does not support it";
        trinity_fatal("TRINITY_SIMD_LEVEL=%s requested but %s; available "
                      "levels: %s",
                      levelName(want), why, availableLevels().c_str());
    }
    return want;
}

const KernelSet &
kernelsForLevel(Level level)
{
    if (!levelAvailable(level)) {
        trinity_fatal("SIMD level '%s' is unavailable (available: %s)",
                      levelName(level), availableLevels().c_str());
    }
    return *kernelsOrNull(level);
}

} // namespace simd
} // namespace trinity
