/**
 * @file
 * Backend instrumentation seam: kernel events, observers, and op
 * scopes.
 *
 * Every batched PolyBackend entry point maps onto one accelerator
 * kernel class (the KernelType mapping documented in
 * src/workload/ckks_ops.h): nttForward/InverseBatch <-> Ntt/Intt,
 * pointwiseMulBatch <-> ModMul, mulAddBatch <-> Ip, baseConvert <->
 * Bconv, automorphismBatch <-> Auto. An ObservedBackend decorator
 * turns each batch into a KernelEvent; scheme layers emit additional
 * events for kernels that run through the untyped run() escape hatch
 * (gadget decomposition, rescale's fused divide, monomial rotations,
 * LWE keyswitch MACs).
 *
 * Observers are process-global so that *any* engine can be profiled —
 * the simulated-accelerator timing backend is just an observer that
 * charges a sim::Machine, but a test can install a plain counting
 * observer around the thread-pool engine equally well.
 *
 * OpScope annotates the current high-level operation (HMult, Rescale,
 * PBS, conversion). Scopes nest; attribution uses the *outermost*
 * label so a keyswitch inside HMult is accounted to HMult, while a
 * keyswitch driven directly (tests) is accounted to itself.
 */

#ifndef TRINITY_BACKEND_OBSERVER_H
#define TRINITY_BACKEND_OBSERVER_H

#include "common/types.h"
#include "sim/kernel.h"

namespace trinity {

/** One executed kernel batch, in accelerator terms. */
struct KernelEvent
{
    sim::KernelType type = sim::KernelType::Ntt;
    /** Total elements processed (MAC lanes for Ip/Bconv — the ledger
     *  counts *executed* lanes; the static workload graphs count
     *  broadcast input elements, see workload/ckks_ops.h). */
    u64 elements = 0;
    /** Polynomial length of the batch's jobs, where meaningful. */
    u64 polyLen = 0;
    /** Off-chip traffic of the batch (operand reads + result writes),
     *  in bytes — the basis for HBM/NoC transfer charges. */
    u64 bytes = 0;
    /** Outermost op-scope label at emission ("" if unscoped). */
    const char *scope = "";
};

/** Receiver for kernel events (see installObserver). */
class BackendObserver
{
  public:
    virtual ~BackendObserver() = default;
    virtual void onKernel(const KernelEvent &ev) = 0;
};

/**
 * Install / remove a process-global observer. The caller keeps
 * ownership and must remove the observer before destroying it.
 */
void installObserver(BackendObserver *obs);
void removeObserver(BackendObserver *obs);

/** True if at least one observer is installed (fast, lock-free). */
bool profilingActive();

/**
 * Deliver @p ev to every installed observer, stamping the current
 * op scope. No-op (one relaxed atomic load) when none is installed.
 */
void emitKernel(KernelEvent ev);

/**
 * Deliver @p ev with its scope field untouched — for deferred
 * executors replaying events recorded (and scope-stamped) earlier,
 * where the emission-time scope may no longer be the recording one.
 */
void emitKernelPrestamped(const KernelEvent &ev);

/** Convenience: emit type/elements with default 16 bytes/element. */
void emitKernel(sim::KernelType type, u64 elements, u64 poly_len);

/**
 * RAII op-scope annotation. The label must be a string literal (or
 * otherwise outlive the scope); scopes are per-thread.
 */
class OpScope
{
  public:
    explicit OpScope(const char *label);
    ~OpScope();

    OpScope(const OpScope &) = delete;
    OpScope &operator=(const OpScope &) = delete;
};

/** Outermost active scope label on this thread ("" if none). */
const char *currentOpScope();

} // namespace trinity

#endif // TRINITY_BACKEND_OBSERVER_H
