#include "backend/sim_backend.h"

#include <algorithm>
#include <map>

#include "backend/command_stream.h"
#include "backend/registry.h"
#include "obs/trace.h"

namespace trinity {

using sim::KernelType;

namespace {

/** Compute-side pricing of one kernel event. */
struct PricedKernel
{
    double cycles = 0;  ///< busy + pipeline fill (0 if unroutable)
    double latency = 0; ///< the fill portion of cycles
    const std::string *pool = nullptr;
};

/**
 * Book one kernel event's cells into @p ledger — the compute charge
 * plus its HBM/NoC transfer companions — and return the compute
 * pricing so callers can also schedule it (streams) or advance the
 * sequential span (eager charging). Shared by the observer and the
 * stream executor so both paths produce identical per-kernel cells.
 */
PricedKernel
priceKernel(const sim::Machine &machine, sim::TimingLedger &ledger,
            const KernelEvent &ev)
{
    PricedKernel out;
    // Compute charge: the batch's busy cycles on its unit pool (one
    // pipeline fill per batch, as schedule() charges per graph node).
    // A kernel class the machine cannot run is still counted so the
    // element totals stay complete, just at zero cycles.
    if (machine.canRun(ev.type)) {
        const sim::Route &route = machine.route(ev.type);
        out.cycles = machine.charge(ev.type, ev.elements, ev.polyLen);
        out.latency = machine.pool(route.pool).latency;
        out.pool = &route.pool;
        ledger.record(ev.scope, ev.type, ev.elements, out.cycles,
                      route.pool);
    } else {
        ledger.record(ev.scope, ev.type, ev.elements, 0, "");
    }
    if (ev.bytes == 0) {
        return out;
    }
    // Off-chip traffic of the batch's operands and results.
    if (machine.canRun(KernelType::HbmXfer)) {
        ledger.record(ev.scope, KernelType::HbmXfer, ev.bytes,
                      machine.charge(KernelType::HbmXfer, ev.bytes),
                      machine.route(KernelType::HbmXfer).pool);
    }
    // Automorphisms and base conversions reshuffle data across
    // clusters: book their volume as NoC layout-switch traffic too.
    if ((ev.type == KernelType::Auto || ev.type == KernelType::Bconv) &&
        machine.canRun(KernelType::NocXfer)) {
        ledger.record(ev.scope, KernelType::NocXfer, ev.bytes,
                      machine.charge(KernelType::NocXfer, ev.bytes),
                      machine.route(KernelType::NocXfer).pool);
    }
    return out;
}

/**
 * Overlap-priced stream executor. Functional execution is eager and
 * goes straight to the inner engine (bypassing the decorator, so
 * nothing is double-charged); submit() replays the recorded DAG
 * through the same event-driven list schedule sim::schedule() applies
 * to static graphs: commands serialize on their unit pool and on
 * their dependencies, and overlap freely otherwise. The resulting
 * makespan — at least the bottleneck pool's busy time, at most the
 * sequential charge — advances the ledger's overlapped estimate.
 */
class SimStream final : public CommandStream
{
  public:
    explicit SimStream(SimBackend &owner)
        : CommandStream(owner), sim_(owner)
    {
        recordEvents_ = true; // pricing needs the named-op events
    }

  protected:
    void
    onRecord(Command &c) override
    {
        executeBlocking(sim_.inner(), c);
        // Pricing at submit() only needs the events and deps; the job
        // descriptors and closures are done the moment they executed.
        c.clearPayload(/*keep_events=*/true);
    }

    void
    onSubmit() override
    {
        const sim::Machine &machine = sim_.machine();
        sim::TimingLedger &ledger = sim_.ledger();
        // Expand the command DAG into one SchedNode per priced event
        // (a fused task's events chain — its rotate feeds its
        // decompose — while distinct commands overlap freely) and run
        // the same earliest-start list schedule sim::schedule()
        // applies to static graphs. Unroutable events and event-less
        // commands become pool-less ordering nodes so dependency
        // chains stay intact.
        std::map<std::string, size_t> pool_ids;
        std::vector<sim::SchedNode> nodes;
        std::vector<const char *> labels; // kernel name per node
        std::vector<size_t> tail(cmds_.size()); // last node per cmd
        for (size_t i = 0; i < cmds_.size(); ++i) {
            const Command &c = cmds_[i];
            std::vector<size_t> deps;
            deps.reserve(c.deps.size());
            for (u32 d : c.deps) {
                deps.push_back(tail[d]);
            }
            size_t first = nodes.size();
            for (const KernelEvent &ev : c.events) {
                PricedKernel p = priceKernel(machine, ledger, ev);
                sim::SchedNode node;
                if (p.pool != nullptr) {
                    auto [it, inserted] =
                        pool_ids.emplace(*p.pool, pool_ids.size());
                    node.pool = it->second;
                    node.busy = p.cycles - p.latency;
                    node.latency = p.latency;
                }
                node.deps = nodes.size() == first
                                ? deps
                                : std::vector<size_t>{nodes.size() - 1};
                nodes.push_back(std::move(node));
                labels.push_back(sim::kernelTypeName(ev.type));
            }
            if (nodes.size() == first) { // fence or unpriced command
                sim::SchedNode node;
                node.deps = std::move(deps);
                nodes.push_back(std::move(node));
                labels.push_back("fence");
            }
            tail[i] = nodes.size() - 1;
        }
        if (!obs::traceActive()) {
            ledger.recordSpan(
                sim::scheduleNodes(nodes, pool_ids.size()));
            return;
        }
        // Virtual-time trace: render the list schedule's per-node
        // issue times under a sim-owned pid, one tid per unit pool,
        // offset by the ledger's running makespan so back-to-back
        // submits concatenate on one timeline.
        std::vector<double> starts;
        double makespan =
            sim::scheduleNodes(nodes, pool_ids.size(), &starts);
        double base_us =
            machine.seconds(ledger.overlappedCycles()) * 1e6;
        const char *track = obs::internTraceStr(
            "sim:" + machine.name + " (virtual)");
        std::vector<const char *> pool_names(pool_ids.size());
        for (const auto &[pname, pid] : pool_ids) {
            pool_names[pid] = obs::internTraceStr(pname);
        }
        for (size_t i = 0; i < nodes.size(); ++i) {
            const sim::SchedNode &node = nodes[i];
            if (node.pool == sim::SchedNode::kNoPool) {
                continue;
            }
            obs::traceVirtualSpan(
                labels[i], "sim", track, static_cast<u32>(node.pool),
                pool_names[node.pool],
                base_us + machine.seconds(starts[i]) * 1e6,
                machine.seconds(node.busy + node.latency) * 1e6);
        }
        ledger.recordSpan(makespan);
    }

  private:
    SimBackend &sim_;
};

} // namespace

MachineTimingObserver::MachineTimingObserver(sim::Machine machine)
    : machine_(std::move(machine))
{
}

void
MachineTimingObserver::onKernel(const KernelEvent &ev)
{
    PricedKernel p = priceKernel(machine_, ledger_, ev);
    // No overlap information exists for an eagerly charged batch: the
    // live-makespan estimate advances by its full compute charge.
    if (p.cycles > 0) {
        if (obs::traceActive() && p.pool != nullptr) {
            // Span before the advance, so it starts at the current
            // virtual makespan and ends where the estimate moves to.
            emitVirtualSpan(ev, *p.pool, p.cycles);
        }
        ledger_.recordSpan(p.cycles);
    }
}

void
MachineTimingObserver::emitVirtualSpan(const KernelEvent &ev,
                                       const std::string &pool,
                                       double cycles)
{
    const char *track;
    PoolRow row;
    {
        std::lock_guard<std::mutex> lock(trace_mtx_);
        if (trace_track_ == nullptr) {
            trace_track_ = obs::internTraceStr(
                "sim:" + machine_.name + " (virtual)");
        }
        track = trace_track_;
        auto [it, inserted] = trace_pools_.emplace(pool, PoolRow{});
        if (inserted) {
            it->second.tid =
                static_cast<u32>(trace_pools_.size() - 1);
            it->second.name = obs::internTraceStr(pool);
        }
        row = it->second;
    }
    double base_us = machine_.seconds(ledger_.overlappedCycles()) * 1e6;
    obs::traceVirtualSpan(sim::kernelTypeName(ev.type), "sim", track,
                          row.tid, row.name, base_us,
                          machine_.seconds(cycles) * 1e6);
}

SimBackend::SimBackend(std::unique_ptr<PolyBackend> inner,
                       sim::Machine machine)
    : ObservedBackend(std::move(inner)), observer_(std::move(machine))
{
    installObserver(&observer_);
}

SimBackend::~SimBackend()
{
    removeObserver(&observer_);
}

std::unique_ptr<CommandStream>
SimBackend::newStream()
{
    if (!streamsEnabled()) {
        return std::make_unique<EagerStream>(*this);
    }
    return std::make_unique<SimStream>(*this);
}

SimBackend *
activeSimBackend()
{
    return dynamic_cast<SimBackend *>(&activeBackend());
}

} // namespace trinity
