#include "backend/sim_backend.h"

#include "backend/registry.h"

namespace trinity {

using sim::KernelType;

MachineTimingObserver::MachineTimingObserver(sim::Machine machine)
    : machine_(std::move(machine))
{
}

void
MachineTimingObserver::onKernel(const KernelEvent &ev)
{
    // Compute charge: the batch's busy cycles on its unit pool (one
    // pipeline fill per batch, as schedule() charges per graph node).
    // A kernel class the machine cannot run is still counted so the
    // element totals stay complete, just at zero cycles.
    if (machine_.canRun(ev.type)) {
        ledger_.record(ev.scope, ev.type, ev.elements,
                       machine_.charge(ev.type, ev.elements,
                                       ev.polyLen),
                       machine_.route(ev.type).pool);
    } else {
        ledger_.record(ev.scope, ev.type, ev.elements, 0, "");
    }
    if (ev.bytes == 0) {
        return;
    }
    // Off-chip traffic of the batch's operands and results.
    if (machine_.canRun(KernelType::HbmXfer)) {
        ledger_.record(ev.scope, KernelType::HbmXfer, ev.bytes,
                       machine_.charge(KernelType::HbmXfer, ev.bytes),
                       machine_.route(KernelType::HbmXfer).pool);
    }
    // Automorphisms and base conversions reshuffle data across
    // clusters: book their volume as NoC layout-switch traffic too.
    if ((ev.type == KernelType::Auto || ev.type == KernelType::Bconv) &&
        machine_.canRun(KernelType::NocXfer)) {
        ledger_.record(ev.scope, KernelType::NocXfer, ev.bytes,
                       machine_.charge(KernelType::NocXfer, ev.bytes),
                       machine_.route(KernelType::NocXfer).pool);
    }
}

SimBackend::SimBackend(std::unique_ptr<PolyBackend> inner,
                       sim::Machine machine)
    : ObservedBackend(std::move(inner)), observer_(std::move(machine))
{
    installObserver(&observer_);
}

SimBackend::~SimBackend()
{
    removeObserver(&observer_);
}

SimBackend *
activeSimBackend()
{
    return dynamic_cast<SimBackend *>(&activeBackend());
}

} // namespace trinity
