/**
 * @file
 * Process-wide backend selection. The active engine is resolved once
 * from the TRINITY_BACKEND env var ("serial" by default, "threads"
 * for the worker-pool engine, "simd" for the vector-lane engine,
 * "sim" for the simulated-accelerator timing backend) and can be
 * switched programmatically — tests use
 * that to compare engines in one process, benches to sweep thread
 * counts. An unknown name is rejected with an error listing every
 * registered engine.
 */

#ifndef TRINITY_BACKEND_REGISTRY_H
#define TRINITY_BACKEND_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "backend/poly_backend.h"

namespace trinity {

class BackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<PolyBackend>()>;

    /** The process-wide registry ("serial", "threads", "simd", and
     *  "sim" built in). */
    static BackendRegistry &instance();

    /** Register a factory under @p name (future engines plug in here). */
    void registerFactory(const std::string &name, Factory factory);

    /** Registered engine names. */
    std::vector<std::string> names() const;

    /** Registered engine names as one comma-separated string — used
     *  by the unknown-engine error and the explorer example.
     *  @p exclude drops one name from the list (the sim backend uses
     *  it to advertise the valid *inner* engines, i.e. everything but
     *  itself). */
    std::string listEngines(const std::string &exclude = "") const;

    /**
     * Build a fresh engine by name without touching the active one;
     * fatal on an unknown name, listing the registered engines.
     */
    std::unique_ptr<PolyBackend> create(const std::string &name);

    /**
     * The active engine. On first use resolves TRINITY_BACKEND (an
     * unknown name is fatal); defaults to "serial".
     */
    PolyBackend &active();

    /** Switch the active engine to a registered name. */
    void select(const std::string &name);

    /**
     * Install a caller-constructed engine (e.g. a ThreadPoolBackend
     * with an explicit thread count) as the active one.
     */
    void use(std::unique_ptr<PolyBackend> backend);

  private:
    BackendRegistry();

    const Factory *find(const std::string &name) const;

    std::vector<std::pair<std::string, Factory>> factories_;
    std::unique_ptr<PolyBackend> active_;
};

/** Shorthand for BackendRegistry::instance().active(). */
PolyBackend &activeBackend();

} // namespace trinity

#endif // TRINITY_BACKEND_REGISTRY_H
