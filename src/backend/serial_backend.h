/**
 * @file
 * Bit-exact single-threaded reference engine. Every other backend is
 * validated against this one; it simply runs each job of a batch in
 * submission order on the calling thread.
 */

#ifndef TRINITY_BACKEND_SERIAL_BACKEND_H
#define TRINITY_BACKEND_SERIAL_BACKEND_H

#include "backend/poly_backend.h"

namespace trinity {

class SerialBackend final : public PolyBackend
{
  public:
    const char *name() const override { return "serial"; }
    size_t threadCount() const override { return 1; }

  protected:
    void
    parallelFor(size_t count,
                const std::function<void(size_t)> &fn) override
    {
        for (size_t i = 0; i < count; ++i) {
            fn(i);
        }
    }
};

} // namespace trinity

#endif // TRINITY_BACKEND_SERIAL_BACKEND_H
