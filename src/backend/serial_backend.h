/**
 * @file
 * Bit-exact single-threaded reference engine. Every other backend is
 * validated against this one; it simply runs each job of a batch in
 * submission order on the calling thread.
 */

#ifndef TRINITY_BACKEND_SERIAL_BACKEND_H
#define TRINITY_BACKEND_SERIAL_BACKEND_H

#include "backend/poly_backend.h"

namespace trinity {

class SerialBackend final : public PolyBackend
{
  public:
    const char *name() const override { return "serial"; }
    size_t threadCount() const override { return 1; }

    /**
     * Reference automorphism: the direct per-coefficient index map
     * (c -> c*g mod 2n with the X^n = -1 sign), written without the
     * cached gather tables the optimized engines use. Every table-
     * driven implementation is verified bit for bit against this.
     */
    void automorphismBatch(const AutoJob *jobs, size_t count) override;

    /**
     * Reference BConv: Shoup-scaled pass 1 and a pass 2 that reduces
     * every term before the 128-bit accumulate — the obviously-in-
     * range recurrence, without the lazy chunked folds of the SIMD
     * kernels (which must produce identical outputs).
     */
    void baseConvert(const BConvPlan &plan, const u64 *const *in,
                     u64 *const *out, size_t n) override;

  protected:
    void
    parallelFor(size_t count,
                const std::function<void(size_t)> &fn) override
    {
        for (size_t i = 0; i < count; ++i) {
            fn(i);
        }
    }
};

} // namespace trinity

#endif // TRINITY_BACKEND_SERIAL_BACKEND_H
