#include "backend/scratch_arena.h"

#include <atomic>

namespace trinity {

namespace {

std::atomic<u64> g_hits{0};
std::atomic<u64> g_misses{0};

} // namespace

ScratchBuffer &
ScratchBuffer::operator=(ScratchBuffer &&other) noexcept
{
    if (this != &other) {
        if (data_ != nullptr) {
            ScratchArena::local().release(std::move(data_), size_);
        }
        data_ = std::move(other.data_);
        size_ = other.size_;
        other.size_ = 0;
    }
    return *this;
}

ScratchBuffer::~ScratchBuffer()
{
    if (data_ != nullptr) {
        ScratchArena::local().release(std::move(data_), size_);
    }
}

ScratchArena &
ScratchArena::local()
{
    static thread_local ScratchArena arena;
    return arena;
}

ScratchBuffer
ScratchArena::acquire(size_t elems)
{
    if (elems == 0) {
        return {};
    }
    auto it = pool_.find(elems);
    if (it != pool_.end() && !it->second.empty()) {
        std::unique_ptr<u64[]> slab = std::move(it->second.back());
        it->second.pop_back();
        g_hits.fetch_add(1, std::memory_order_relaxed);
        return ScratchBuffer(std::move(slab), elems);
    }
    g_misses.fetch_add(1, std::memory_order_relaxed);
    return ScratchBuffer(std::unique_ptr<u64[]>(new u64[elems]), elems);
}

void
ScratchArena::release(std::unique_ptr<u64[]> data, size_t elems)
{
    pool_[elems].push_back(std::move(data));
}

ScratchArena::Stats
ScratchArena::stats()
{
    Stats s;
    s.hits = g_hits.load(std::memory_order_relaxed);
    s.misses = g_misses.load(std::memory_order_relaxed);
    return s;
}

void
ScratchArena::resetStats()
{
    g_hits.store(0, std::memory_order_relaxed);
    g_misses.store(0, std::memory_order_relaxed);
}

} // namespace trinity
