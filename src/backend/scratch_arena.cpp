#include "backend/scratch_arena.h"

#include "obs/metrics.h"

namespace trinity {

// The hit/miss tallies live in the metrics registry
// ("scratch_arena.hits"/"scratch_arena.misses") so stats dumps and
// bench reports see them alongside everything else; stats() and
// resetStats() below are thin views over the same counters.

namespace {

obs::Counter &
hitCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::instance().counter("scratch_arena.hits");
    return c;
}

obs::Counter &
missCounter()
{
    static obs::Counter &c =
        obs::MetricsRegistry::instance().counter("scratch_arena.misses");
    return c;
}

} // namespace

ScratchBuffer &
ScratchBuffer::operator=(ScratchBuffer &&other) noexcept
{
    if (this != &other) {
        if (data_ != nullptr) {
            ScratchArena::local().release(std::move(data_), size_);
        }
        data_ = std::move(other.data_);
        size_ = other.size_;
        other.size_ = 0;
    }
    return *this;
}

ScratchBuffer::~ScratchBuffer()
{
    if (data_ != nullptr) {
        ScratchArena::local().release(std::move(data_), size_);
    }
}

ScratchArena &
ScratchArena::local()
{
    static thread_local ScratchArena arena;
    return arena;
}

ScratchBuffer
ScratchArena::acquire(size_t elems)
{
    if (elems == 0) {
        return {};
    }
    auto it = pool_.find(elems);
    if (it != pool_.end() && !it->second.empty()) {
        std::unique_ptr<u64[]> slab = std::move(it->second.back());
        it->second.pop_back();
        hitCounter().add();
        return ScratchBuffer(std::move(slab), elems);
    }
    missCounter().add();
    return ScratchBuffer(std::unique_ptr<u64[]>(new u64[elems]), elems);
}

void
ScratchArena::release(std::unique_ptr<u64[]> data, size_t elems)
{
    pool_[elems].push_back(std::move(data));
}

ScratchArena::Stats
ScratchArena::stats()
{
    Stats s;
    s.hits = hitCounter().value();
    s.misses = missCounter().value();
    return s;
}

void
ScratchArena::resetStats()
{
    hitCounter().reset();
    missCounter().reset();
}

} // namespace trinity
