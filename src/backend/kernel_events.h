/**
 * @file
 * Shared derivation of KernelEvents from batch job descriptors — the
 * single source of truth for how each batched entry point maps onto an
 * accelerator kernel class and its off-chip byte volume. Used by the
 * ObservedBackend decorator (blocking path) and by CommandStream
 * recording (async path) so both report identical volumes for the
 * same work.
 */

#ifndef TRINITY_BACKEND_KERNEL_EVENTS_H
#define TRINITY_BACKEND_KERNEL_EVENTS_H

#include "backend/observer.h"
#include "backend/poly_backend.h"

namespace trinity {
namespace kernel_events {

/** Sum of job lengths for an array of jobs with an `n` member. */
template <typename JobT>
inline u64
totalElems(const JobT *jobs, size_t count)
{
    u64 sum = 0;
    for (size_t i = 0; i < count; ++i) {
        sum += jobs[i].n;
    }
    return sum;
}

inline KernelEvent
make(sim::KernelType type, u64 elements, u64 poly_len, u64 bytes_per_elem)
{
    KernelEvent ev;
    ev.type = type;
    ev.elements = elements;
    ev.polyLen = poly_len;
    ev.bytes = bytes_per_elem * elements;
    return ev;
}

/** In-place transform: one read + one write per element. */
inline KernelEvent
ntt(const NttJob *jobs, size_t count, bool forward)
{
    u64 n = count > 0 ? jobs[0].table->n() : 0;
    return make(forward ? sim::KernelType::Ntt : sim::KernelType::Intt,
                count * n, n, 16);
}

/** Binary element-wise kernels: two operand reads + one write. */
inline KernelEvent
eltwise(sim::KernelType type, const EltwiseJob *jobs, size_t count,
        u64 bytes_per_elem)
{
    return make(type, totalElems(jobs, count),
                count > 0 ? jobs[0].n : 0, bytes_per_elem);
}

/** Accumulator read + write plus both operand reads. */
inline KernelEvent
mulAdd(const MulAddJob *jobs, size_t count)
{
    return make(sim::KernelType::Ip, totalElems(jobs, count),
                count > 0 ? jobs[0].n : 0, 32);
}

// Fused epilogue commands derive one event per constituent kernel,
// with the same volumes the unfused recording would produce — the
// fusion saves CPU memory traffic, not priced accelerator work. The
// recorder chains a command's events sequentially, so the sim still
// prices NTT -> MAC as dependent work within the command.

/** The transform half of a fused forward-NTT + multiply-accumulate. */
inline KernelEvent
nttOfNttMulAdd(const NttMulAddJob *jobs, size_t count)
{
    u64 n = count > 0 ? jobs[0].table->n() : 0;
    return make(sim::KernelType::Ntt, count * n, n, 16);
}

/** The MAC half: one or two accumulators per job. */
inline KernelEvent
ipOfNttMulAdd(const NttMulAddJob *jobs, size_t count)
{
    u64 elems = 0;
    for (size_t i = 0; i < count; ++i) {
        elems += jobs[i].table->n() * (jobs[i].acc1 != nullptr ? 2 : 1);
    }
    return make(sim::KernelType::Ip, elems,
                count > 0 ? jobs[0].table->n() : 0, 32);
}

/** The transform half of a fused inverse-NTT + accumulate. */
inline KernelEvent
inttOfNttInvAdd(const NttInvAddJob *jobs, size_t count)
{
    u64 n = count > 0 ? jobs[0].table->n() : 0;
    return make(sim::KernelType::Intt, count * n, n, 16);
}

/** The accumulate half (two reads + one write per element). */
inline KernelEvent
addOfNttInvAdd(const NttInvAddJob *jobs, size_t count)
{
    u64 elems = 0;
    for (size_t i = 0; i < count; ++i) {
        elems += jobs[i].table->n();
    }
    return make(sim::KernelType::ModAdd, elems,
                count > 0 ? jobs[0].table->n() : 0, 24);
}

inline KernelEvent
scalarMul(const ScalarMulJob *jobs, size_t count)
{
    return make(sim::KernelType::ModMul, totalElems(jobs, count),
                count > 0 ? jobs[0].n : 0, 16);
}

inline KernelEvent
automorphism(const AutoJob *jobs, size_t count)
{
    return make(sim::KernelType::Auto, totalElems(jobs, count),
                count > 0 ? jobs[0].n : 0, 16);
}

/** The BConv matrix product: k x l MACs per coefficient; traffic is
 *  the limb matrix in and out, not the MAC volume. */
inline KernelEvent
baseConvert(const BConvPlan &plan, size_t n)
{
    KernelEvent ev;
    ev.type = sim::KernelType::Bconv;
    ev.elements = static_cast<u64>(n) * plan.numFrom * plan.numTo;
    ev.polyLen = n;
    ev.bytes = 8 * static_cast<u64>(n) * (plan.numFrom + plan.numTo);
    return ev;
}

// Phase-chunked BConv splits one monolithic event into 1 + numTo
// events whose totals equal the monolithic derivation exactly, so an
// A/B of the two recordings measures scheduling, never accounting:
// the monolithic event prices only the k x l MAC volume (pass-1 Shoup
// scaling was never charged compute), so pass 1 keeps elements = 0 and
// carries the k source limbs' traffic, while each per-target-limb
// pass-2 event charges its n*k MAC row and its own limb written back.

/** BConv pass 1 (Shoup scaling of the k source limbs). */
inline KernelEvent
baseConvertPass1(const BConvPlan &plan, size_t n)
{
    KernelEvent ev;
    ev.type = sim::KernelType::Bconv;
    ev.elements = 0;
    ev.polyLen = n;
    ev.bytes = 8 * static_cast<u64>(n) * plan.numFrom;
    return ev;
}

/** BConv pass 2 for one target limb (the k-deep MAC row). */
inline KernelEvent
baseConvertPass2(const BConvPlan &plan, size_t n)
{
    KernelEvent ev;
    ev.type = sim::KernelType::Bconv;
    ev.elements = static_cast<u64>(n) * plan.numFrom;
    ev.polyLen = n;
    ev.bytes = 8 * static_cast<u64>(n);
    return ev;
}

} // namespace kernel_events
} // namespace trinity

#endif // TRINITY_BACKEND_KERNEL_EVENTS_H
