/**
 * @file
 * Table IX: TFHE -> CKKS scheme-conversion (repacking) latency.
 * The Trinity row is simulated; the CPU baseline row is *measured
 * live* by running this repository's functional PackLWEs + field
 * trace (Algorithms 4/5) at N = 2^14 on the host.
 */

#include "accel/configs.h"
#include "accel/reported.h"
#include "bench/bench_util.h"
#include "conv/conversion.h"
#include "workload/apps.h"

using namespace trinity;
using namespace trinity::bench;

namespace {

double
measureCpuConversionMs(size_t nslot)
{
    // N = 2^14 ring as in the paper's conversion benchmark; packing
    // runs at level 0 (single-modulus RLWE, as in Chen et al.).
    static std::shared_ptr<CkksContext> ctx;
    static std::unique_ptr<CkksKeyGenerator> keygen;
    static std::unique_ptr<LwePacker> packer;
    if (!ctx) {
        CkksParams p;
        p.n = 1ULL << 14;
        p.maxLevel = 2;
        p.dnum = 1;
        ctx = std::make_shared<CkksContext>(p);
        keygen = std::make_unique<CkksKeyGenerator>(ctx, 777);
        packer = std::make_unique<LwePacker>(ctx, *keygen);
    }
    Rng rng(nslot);
    u64 q0 = ctx->qChain()[0];
    std::vector<ConvLwe> lwes;
    for (size_t j = 0; j < nslot; ++j) {
        lwes.push_back(
            convLweEncrypt(q0 / 16, keygen->secretKey(), q0, rng));
    }
    Timer t;
    auto packed = packer->tfheToCkks(lwes);
    (void)packed;
    return t.elapsedMs();
}

} // namespace

int
main()
{
    header("Table IX: Scheme Conversion TFHE->CKKS (ms), N=2^14");
    for (const auto &r : accel::table9Reported()) {
        row(r.scheme, r.metric, r.value, r.unit, "reported");
    }
    auto m = accel::trinityConversion(4);
    for (size_t nslot : {2u, 8u, 32u}) {
        std::string metric = "nslot=" + std::to_string(nslot);
        row("Baseline-CPU (this host)", metric,
            measureCpuConversionMs(nslot), "ms", "measured");
        row("Trinity (this model)", metric,
            workload::conversionMs(m, 1ULL << 14, 8, nslot), "ms",
            "simulated");
    }
    for (const auto &r : accel::trinityPaperResults()) {
        if (r.metric.rfind("Conversion", 0) == 0) {
            row("Trinity (paper)", r.metric, r.value, r.unit,
                "reported");
        }
    }
    note("host rows run the functional Algorithms 4/5 of src/conv "
         "(level-0 packing; the paper's CPU used an i7-4770K)");
    return 0;
}
