/**
 * @file
 * Table XI: circuit area and power by component, and the headline
 * claim that Trinity is ~15% smaller than SHARP + Morphling combined.
 */

#include "accel/area.h"
#include "bench/bench_util.h"

using namespace trinity;
using namespace trinity::bench;

int
main()
{
    header("Table XI: Circuit area and power (TSMC 7nm calibration)");
    accel::AreaModel m(4);
    for (const auto &c : m.clusterComponents()) {
        row(c.name, "per cluster", c.areaMm2, "mm2", "model");
        row(c.name, "per cluster", c.powerW, "W", "model");
    }
    row("cluster", "total", m.clusterArea(), "mm2", "model");
    row("cluster", "total", m.clusterPower(), "W", "model");
    for (const auto &c : m.chipComponents()) {
        row(c.name, "chip", c.areaMm2, "mm2", "model");
        row(c.name, "chip", c.powerW, "W", "model");
    }
    row("Total", "chip", m.totalArea(), "mm2", "model");
    row("Total", "chip", m.totalPower(), "W", "model");

    double combined = accel::AreaModel::sharpAreaMm2() +
                      accel::AreaModel::morphlingAreaMm2();
    note("SHARP(178.8) + Morphling(4.0, 7nm-scaled) = " +
         std::to_string(combined) + " mm2");
    note("Trinity / combined = " +
         std::to_string(m.totalArea() / combined) +
         " (paper: 15% smaller)");
    return 0;
}
