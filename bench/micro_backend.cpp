/**
 * @file
 * Batched-kernel throughput per execution engine — the baseline for
 * the perf trajectory of every future backend (SIMD, GPU, simulated
 * accelerator). Measures the two kernels Trinity spends its area on:
 * the batched NTT and the BConv matrix product, under the serial
 * reference and the thread pool at several worker counts.
 *
 * Usage: bench_micro_backend [N [limbs [reps]]]
 */

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "backend/registry.h"
#include "backend/serial_backend.h"
#include "backend/thread_pool_backend.h"
#include "bench/bench_util.h"
#include "common/primes.h"
#include "common/rng.h"
#include "poly/rns.h"

using namespace trinity;

namespace {

struct Workload
{
    size_t n;
    size_t limbs;
    size_t reps;
    std::vector<u64> qs;
    std::vector<u64> ps;
    RnsPoly poly;
    std::unique_ptr<BaseConverter> bconv;
};

double
timeNtt(Workload &w)
{
    // In-place fwd+inv round trip: iNTT(NTT(x)) == x bit-exactly, so
    // no copy pollutes the timed region with engine-independent cost.
    bench::Timer t;
    for (size_t r = 0; r < w.reps; ++r) {
        w.poly.toEval();
        w.poly.toCoeff();
    }
    return t.elapsedMs();
}

double
timeBconv(Workload &w)
{
    bench::Timer t;
    for (size_t r = 0; r < w.reps; ++r) {
        RnsPoly y = w.bconv->convert(w.poly);
        (void)y;
    }
    return t.elapsedMs();
}

} // namespace

int
main(int argc, char **argv)
{
    size_t n = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 4096;
    size_t limbs = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 16;
    size_t reps = argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 20;

    Workload w;
    w.n = n;
    w.limbs = limbs;
    w.reps = reps;
    w.qs = findNttPrimes(30, 2 * n, limbs);
    w.ps = findNttPrimes(29, 2 * n, limbs + 1);
    Rng rng(1234);
    w.poly = RnsPoly::uniform(n, w.qs, rng);
    w.bconv = std::make_unique<BaseConverter>(w.qs, w.ps);

    bench::header("micro_backend: batched NTT + BConv throughput");
    bench::note("N=" + std::to_string(n) +
                ", limbs=" + std::to_string(limbs) +
                ", reps=" + std::to_string(reps) + ", hw threads=" +
                std::to_string(std::thread::hardware_concurrency()));

    // One warm run builds NTT tables and converter constants so no
    // configuration pays setup cost inside the timed region.
    {
        RnsPoly x = w.poly;
        x.toEval();
        x.toCoeff();
        (void)w.bconv->convert(w.poly);
    }

    struct Config
    {
        const char *label;
        size_t threads; ///< 0 = serial backend
    };
    const Config configs[] = {
        {"serial", 0},          {"threads-1", 1}, {"threads-2", 2},
        {"threads-4", 4},       {"threads-8", 8},
    };

    double serial_ntt = 0;
    double serial_bconv = 0;
    for (const Config &cfg : configs) {
        if (cfg.threads == 0) {
            BackendRegistry::instance().use(
                std::make_unique<SerialBackend>());
        } else {
            BackendRegistry::instance().use(
                std::make_unique<ThreadPoolBackend>(cfg.threads));
        }
        double ntt_ms = timeNtt(w);
        double bconv_ms = timeBconv(w);
        if (cfg.threads == 0) {
            serial_ntt = ntt_ms;
            serial_bconv = bconv_ms;
        }
        // 2 transforms (fwd+inv) per limb per rep.
        double ntts = 2.0 * static_cast<double>(limbs) * reps;
        bench::row(cfg.label, "ntt.batch", ntts / (ntt_ms / 1000.0),
                   "ntt/s", "measured");
        bench::row(cfg.label, "ntt.speedup",
                   ntt_ms > 0 ? serial_ntt / ntt_ms : 0, "x",
                   "measured");
        bench::row(cfg.label, "bconv.batch",
                   static_cast<double>(reps) / (bconv_ms / 1000.0),
                   "conv/s", "measured");
        bench::row(cfg.label, "bconv.speedup",
                   bconv_ms > 0 ? serial_bconv / bconv_ms : 0, "x",
                   "measured");
    }
    BackendRegistry::instance().select("serial");
    return 0;
}
