/**
 * @file
 * Batched-kernel throughput per execution engine — the baseline for
 * the perf trajectory of every backend (serial, SIMD at each dispatch
 * level, thread pool, and future GPU). Measures the two kernels
 * Trinity spends its area on: the batched NTT and the BConv matrix
 * product. The simd rows quantify lane-level speedup on one thread;
 * the threads rows compose workers across limbs with SIMD inside
 * each limb job.
 *
 * Usage: bench_micro_backend [--smoke] [--json=PATH] [N [limbs [reps]]]
 */

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "backend/registry.h"
#include "backend/serial_backend.h"
#include "backend/simd_backend.h"
#include "backend/thread_pool_backend.h"
#include "bench/bench_util.h"
#include "common/primes.h"
#include "common/rng.h"
#include "poly/rns.h"

using namespace trinity;

namespace {

struct Workload
{
    size_t n;
    size_t limbs;
    size_t reps;
    std::vector<u64> qs;
    std::vector<u64> ps;
    RnsPoly poly;
    std::unique_ptr<BaseConverter> bconv;
};

double
timeNtt(Workload &w)
{
    // In-place fwd+inv round trip: iNTT(NTT(x)) == x bit-exactly, so
    // no copy pollutes the timed region with engine-independent cost.
    bench::Timer t;
    for (size_t r = 0; r < w.reps; ++r) {
        w.poly.toEval();
        w.poly.toCoeff();
    }
    return t.elapsedMs();
}

double
timeBconv(Workload &w)
{
    bench::Timer t;
    for (size_t r = 0; r < w.reps; ++r) {
        RnsPoly y = w.bconv->convert(w.poly);
        (void)y;
    }
    return t.elapsedMs();
}

size_t
positionalOr(const bench::BenchArgs &args, size_t idx, size_t fallback)
{
    return idx < args.positional.size()
               ? std::strtoul(args.positional[idx].c_str(), nullptr, 10)
               : fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::parseBenchArgs(argc, argv);
    size_t n = positionalOr(args, 0, 4096);
    size_t limbs = positionalOr(args, 1, args.smoke ? 8 : 16);
    size_t reps = positionalOr(args, 2, args.smoke ? 3 : 20);

    Workload w;
    w.n = n;
    w.limbs = limbs;
    w.reps = reps;
    w.qs = findNttPrimes(30, 2 * n, limbs);
    w.ps = findNttPrimes(29, 2 * n, limbs + 1);
    Rng rng(1234);
    w.poly = RnsPoly::uniform(n, w.qs, rng);
    w.bconv = std::make_unique<BaseConverter>(w.qs, w.ps);

    bench::header("micro_backend: batched NTT + BConv throughput");
    bench::note("N=" + std::to_string(n) +
                ", limbs=" + std::to_string(limbs) +
                ", reps=" + std::to_string(reps) + ", hw threads=" +
                std::to_string(std::thread::hardware_concurrency()));
    bench::note("simd dispatch: available levels = " +
                simd::availableLevels() + ", auto = " +
                simd::levelName(simd::bestAvailableLevel()));

    // One warm run builds NTT tables and converter constants so no
    // configuration pays setup cost inside the timed region.
    {
        RnsPoly x = w.poly;
        x.toEval();
        x.toCoeff();
        (void)w.bconv->convert(w.poly);
    }

    struct Config
    {
        std::string label;
        std::function<std::unique_ptr<PolyBackend>()> make;
    };
    std::vector<Config> configs;
    configs.push_back({"serial", [] {
                           return std::unique_ptr<PolyBackend>(
                               new SerialBackend());
                       }});
    // One single-threaded row per runnable SIMD level: the lane-width
    // ablation the acceptance gate reads (simd >= 2x serial on NTT).
    for (simd::Level level :
         {simd::Level::Scalar, simd::Level::Avx2, simd::Level::Avx512}) {
        if (!simd::levelAvailable(level)) {
            continue;
        }
        configs.push_back(
            {std::string("simd-") + simd::levelName(level), [level] {
                 return std::unique_ptr<PolyBackend>(
                     new SimdBackend(level));
             }});
    }
    // Thread-pool rows compose workers x lanes (auto-dispatched level).
    for (size_t threads : {size_t(1), size_t(2), size_t(4), size_t(8)}) {
        configs.push_back(
            {"threads-" + std::to_string(threads), [threads] {
                 return std::unique_ptr<PolyBackend>(
                     new ThreadPoolBackend(threads));
             }});
    }

    double serial_ntt = 0;
    double serial_bconv = 0;
    for (const Config &cfg : configs) {
        BackendRegistry::instance().use(cfg.make());
        double ntt_ms = timeNtt(w);
        double bconv_ms = timeBconv(w);
        if (cfg.label == "serial") {
            serial_ntt = ntt_ms;
            serial_bconv = bconv_ms;
        }
        // 2 transforms (fwd+inv) per limb per rep.
        double ntts = 2.0 * static_cast<double>(limbs) * reps;
        bench::row(cfg.label, "ntt.batch", ntts / (ntt_ms / 1000.0),
                   "ntt/s", "measured");
        bench::row(cfg.label, "ntt.speedup",
                   ntt_ms > 0 ? serial_ntt / ntt_ms : 0, "x",
                   "measured");
        bench::row(cfg.label, "bconv.batch",
                   static_cast<double>(reps) / (bconv_ms / 1000.0),
                   "conv/s", "measured");
        bench::row(cfg.label, "bconv.speedup",
                   bconv_ms > 0 ? serial_bconv / bconv_ms : 0, "x",
                   "measured");
    }
    BackendRegistry::instance().select("serial");
    // Non-default ring sizes report under their own key so a CI run
    // can merge several invocations (jq -s add clobbers duplicates).
    bench::writeJsonReport(args, n == 4096
                                     ? "micro_backend"
                                     : "micro_backend_n" +
                                           std::to_string(n));
    return 0;
}
