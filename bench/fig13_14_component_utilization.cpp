/**
 * @file
 * Fig. 13 + Fig. 14: per-component utilization within CKKS workloads
 * and TFHE PBS. Pool utilizations map back onto physical components
 * by their capacity share of the pool (members of a shared pool run
 * at the pool's utilization).
 */

#include <cstdio>

#include "accel/configs.h"
#include "bench/bench_util.h"
#include "workload/apps.h"
#include "workload/tfhe_ops.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

int
main()
{
    header("Fig. 13: component utilization within CKKS workloads (%)");
    auto trin = accel::trinityCkks(4);
    std::printf("%-12s %7s %7s %7s %7s %7s %7s %7s %7s %7s\n",
                "Workload", "NTTU", "EWE", "AutoU", "CU-1", "CU-21",
                "CU-22", "CU-23", "CU-24", "CU-3");
    double total = 0;
    int cnt = 0;
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        auto r = runCkksApp(trin, app);
        double cu = 100 * r.utilization("CU");
        std::printf("%-12s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%% "
                    "%6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                    app.name.c_str(), 100 * r.utilization("NTTU"),
                    100 * r.utilization("EWE"),
                    100 * r.utilization("AUTOU"), cu, cu, cu, cu, cu,
                    cu);
        total += (100 * r.utilization("NTTU") +
                  100 * r.utilization("EWE") +
                  100 * r.utilization("AUTOU") + 6 * cu) /
                 9.0;
        ++cnt;
    }
    note("average CKKS utilization: " + std::to_string(total / cnt) +
         "% (paper: exceeds 48%)");

    header("Fig. 14: component utilization within TFHE PBS (%)");
    auto tfhe = accel::trinityTfhe(4);
    std::printf("%-10s %7s %7s %7s %7s %7s\n", "Set", "BFU(NTT)",
                "CU(MAC)", "EWE", "Rotator", "VPU");
    double t2 = 0;
    int c2 = 0;
    for (const auto &p : {TfheParams::setI(), TfheParams::setII(),
                          TfheParams::setIII()}) {
        auto g = pbsGraph(p);
        // Batched steady state: utilization relative to the
        // bottleneck pool's busy time.
        auto busy = sim::poolBusy(g, tfhe);
        double makespan = sim::bottleneckCycles(g, tfhe);
        auto util = [&](const char *pool) {
            auto it = busy.find(pool);
            return it == busy.end() ? 0.0
                                    : 100.0 * it->second / makespan;
        };
        std::printf("%-10s %6.1f%% %6.1f%% %6.1f%% %6.1f%% %6.1f%%\n",
                    p.name.c_str(), util("NTT"), util("MAC"),
                    util("EWE"), util("ROTATOR"), util("VPU"));
        t2 += (util("NTT") + util("MAC") + util("EWE") +
               util("ROTATOR") + util("VPU")) /
              5.0;
        ++c2;
    }
    note("average TFHE utilization: " + std::to_string(t2 / c2) +
         "% (paper: above 64%)");
    return 0;
}
