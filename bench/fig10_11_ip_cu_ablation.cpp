/**
 * @file
 * Fig. 10 + Fig. 11: the Inner-Product-on-CU ablation.
 *  - Fig. 10: utilization of {NTTU, EWE} in Trinity-CKKS_IP-use-EWE
 *    vs {NTTU, EWE, CU} in Trinity, per CKKS workload.
 *  - Fig. 11: normalized latency of both variants (to IP-use-EWE).
 */

#include <cstdio>

#include "accel/configs.h"
#include "bench/bench_util.h"
#include "workload/apps.h"

using namespace trinity;
using namespace trinity::bench;
using namespace trinity::workload;

namespace {

double
groupUtil(const AppResult &r, std::initializer_list<const char *> pools)
{
    double sum = 0;
    int cnt = 0;
    for (const char *p : pools) {
        sum += r.utilization(p);
        ++cnt;
    }
    return sum / cnt;
}

} // namespace

int
main()
{
    header("Fig. 10: compute-engine utilization (%)");
    auto trin = accel::trinityCkks(4);
    auto ewe = accel::trinityCkksIpUseEwe(4);
    std::printf("%-12s %26s %26s\n", "Workload", "NTTU+EWE (IP-use-EWE)",
                "NTTU+EWE+CU (Trinity)");
    double gain = 0;
    int cnt = 0;
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        auto re = runCkksApp(ewe, app);
        auto rt = runCkksApp(trin, app);
        double ue = groupUtil(re, {"NTTU", "EWE"});
        double ut = groupUtil(rt, {"NTTU", "EWE", "CU"});
        std::printf("%-12s %25.1f%% %25.1f%%\n", app.name.c_str(),
                    100 * ue, 100 * ut);
        gain += ut / ue;
        ++cnt;
    }
    note("average utilization gain: " + std::to_string(gain / cnt) +
         "x (paper: 1.08x)");

    header("Fig. 11: normalized CKKS latency (to IP-use-EWE)");
    std::printf("%-12s %16s %16s\n", "Workload", "IP-use-EWE",
                "Trinity");
    for (const auto &app : {packedBootstrap(), helr(), resnet20()}) {
        double le = ckksAppMs(ewe, app);
        double lt = ckksAppMs(trin, app);
        std::printf("%-12s %16.3f %16.3f\n", app.name.c_str(), 1.0,
                    lt / le);
    }
    note("paper: Trinity outperforms IP-use-EWE by 1.12x average, up "
         "to 1.13x on ResNet-20");
    return 0;
}
